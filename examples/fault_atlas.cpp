// Fault atlas: the detectability landscape of every transistor fault in
// every controllable-polarity cell of the library — the expanded version
// of the paper's Table III covering all six gates.
//
// For each (cell, transistor, fault kind) the atlas reports how the fault
// shows up: wrong output value, degraded level, elevated IDDQ, sequence
// (two-pattern) behaviour, or full masking that requires the paper's
// channel-break procedure.
#include <iostream>

#include "atpg/channel_break.hpp"
#include "gates/fault_dictionary.hpp"
#include "util/table.hpp"

int main() {
  using namespace cpsinw;

  for (const gates::CellKind kind : gates::all_cell_kinds()) {
    const auto& tpl = gates::cell(kind);
    std::cout << "=== " << gates::to_string(kind) << " ("
              << (gates::is_dynamic_polarity(kind) ? "dynamic" : "static")
              << " polarity, " << tpl.transistors.size()
              << " transistors) ===\n";

    util::AsciiTable table({"device", "fault", "output", "degraded",
                            "IDDQ", "2-pattern", "CB procedure"});
    for (const gates::CellFault& cf :
         gates::enumerate_transistor_faults(kind)) {
      const gates::FaultAnalysis fa = gates::analyze_fault(kind, cf);
      if (fa.is_benign() &&
          (cf.kind == gates::TransistorFault::kStuckAtNType ||
           cf.kind == gates::TransistorFault::kStuckAtPType)) {
        table.add_row(
            {tpl.transistors[static_cast<std::size_t>(cf.transistor)].label,
             gates::to_string(cf.kind), "-", "-", "-", "-",
             "benign (PG already at rail)"});
        continue;
      }
      std::string cb = "-";
      if (cf.kind == gates::TransistorFault::kStuckOpen &&
          gates::is_dynamic_polarity(kind)) {
        const auto test = atpg::derive_cell_test(kind, cf.transistor);
        if (test)
          cb = test->broken_is_clean ? "yes (clean form)"
                                     : "yes (signature form)";
      }
      table.add_row(
          {tpl.transistors[static_cast<std::size_t>(cf.transistor)].label,
           gates::to_string(cf.kind),
           util::format_yes_no(fa.output_detectable),
           util::format_yes_no(fa.marginal_detectable),
           util::format_yes_no(fa.iddq_detectable),
           util::format_yes_no(fa.needs_sequence), cb});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout
      << "Legend:\n"
         "  output     — a test vector flips the output to a definite "
         "wrong value\n"
         "  degraded   — some vector leaves a weak/undefined level "
         "(at-speed observable)\n"
         "  IDDQ       — some vector creates contention: supply current "
         "rises by ~1e6\n"
         "  2-pattern  — the output floats under some vector: classical "
         "stuck-open testing applies\n"
         "  CB proc.   — masked in normal operation; the paper's "
         "polarity-complement procedure applies\n";
  return 0;
}
