// Full ATPG flow on a user-provided or built-in netlist: fault universe,
// per-method test generation, verification and the final test program.
//
// Usage:
//   atpg_flow                 # runs on the built-in 4-bit ripple adder
//   atpg_flow netlist.cpn     # runs on a .cpn netlist (see docs/ for the
//                             # format; logic/netlist_format.hpp parses it)
#include <fstream>
#include <iostream>

#include "core/test_flow.hpp"
#include "logic/benchmarks.hpp"
#include "logic/netlist_format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cpsinw;

  logic::Circuit ckt;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open netlist '" << argv[1] << "'\n";
      return 1;
    }
    try {
      ckt = logic::read_netlist(file);
    } catch (const std::exception& e) {
      std::cerr << "parse error: " << e.what() << '\n';
      return 1;
    }
    std::cout << "Loaded netlist " << argv[1] << '\n';
  } else {
    ckt = logic::ripple_adder(4);
    std::cout << "Using the built-in 4-bit ripple-carry adder "
                 "(XOR3 + MAJ3 per bit)\n";
  }
  std::cout << "  " << ckt.gate_count() << " gates, "
            << ckt.transistor_count() << " transistors, "
            << ckt.primary_inputs().size() << " inputs, "
            << ckt.primary_outputs().size() << " outputs\n\n";

  const core::TestSuite suite = core::run_test_flow(ckt);

  util::AsciiTable summary({"metric", "value"});
  summary.add_row({"fault universe", std::to_string(suite.outcomes.size())});
  summary.add_row({"coverage",
                   util::format_fixed(100.0 * suite.coverage(), 1) + " %"});
  summary.add_row({"voltage-observed patterns",
                   std::to_string(suite.logic_patterns.size())});
  summary.add_row({"IDDQ patterns",
                   std::to_string(suite.iddq_patterns.size())});
  summary.add_row({"two-pattern tests",
                   std::to_string(suite.two_pattern_tests.size())});
  summary.add_row({"channel-break tests",
                   std::to_string(suite.channel_break_tests.size())});
  summary.print(std::cout);

  std::cout << "\nCoverage by method:\n";
  util::AsciiTable methods({"method", "faults covered"});
  for (const core::CoverageMethod m :
       {core::CoverageMethod::kStuckAtPattern,
        core::CoverageMethod::kFunctionalPattern,
        core::CoverageMethod::kIddqPattern,
        core::CoverageMethod::kTwoPattern,
        core::CoverageMethod::kChannelBreak,
        core::CoverageMethod::kUncovered}) {
    methods.add_row({to_string(m), std::to_string(suite.count(m))});
  }
  methods.print(std::cout);

  // Print the actual test program.
  std::cout << "\nVoltage-observed patterns (after compaction):\n";
  const auto print_pattern = [&](const logic::Pattern& p) {
    std::cout << "  ";
    for (std::size_t i = 0; i < p.size(); ++i)
      std::cout << ckt.net_name(ckt.primary_inputs()[i]) << '='
                << to_string(p[i]) << (i + 1 < p.size() ? " " : "\n");
  };
  for (const logic::Pattern& p : suite.logic_patterns) print_pattern(p);
  std::cout << "\nIDDQ measurement patterns:\n";
  for (const logic::Pattern& p : suite.iddq_patterns) print_pattern(p);
  if (!suite.two_pattern_tests.empty()) {
    std::cout << "\nTwo-pattern sequences (init -> test):\n";
    for (const atpg::TwoPatternTest& t : suite.two_pattern_tests) {
      std::cout << "  [" << t.fault.describe(ckt) << "]\n";
      print_pattern(t.init);
      print_pattern(t.test);
    }
  }
  if (!suite.channel_break_tests.empty()) {
    std::cout << "\nChannel-break procedures (dual-rail test mode):\n";
    for (const atpg::ChannelBreakTest& t : suite.channel_break_tests) {
      std::cout << "  gate " << ckt.gate(t.gate).name << " t"
                << t.transistor + 1 << ": local vector "
                << t.local_vector << ", emulates "
                << gates::to_string(t.emulated_polarity)
                << (t.pi_accessible ? " (PI-accessible)"
                                    : " (needs dual-rail test access)")
                << '\n';
    }
  }
  return 0;
}
