// Scenario example: bring-up of a controllable-polarity arithmetic block.
//
// A 4-bit ripple-carry adder in CP logic needs only 8 transistor cells
// (one XOR3 + one MAJ3 per bit) where static CMOS needs ~28 gates — the
// compactness argument of the paper's introduction.  This example walks
// the complete manufacturing-test story for that block:
//
//   1. inductive fault analysis: what the process can break,
//   2. what the classical test flow catches,
//   3. what escapes it (and why), and
//   4. how the paper's new fault models close the gap.
#include <iostream>

#include "core/cp_fault_models.hpp"
#include "core/test_flow.hpp"
#include "faults/ifa.hpp"
#include "logic/benchmarks.hpp"
#include "util/table.hpp"

int main() {
  using namespace cpsinw;
  const logic::Circuit adder = logic::ripple_adder(4);

  std::cout << "=== CP 4-bit ripple-carry adder bring-up ===\n";
  std::cout << "  " << adder.gate_count() << " gates ("
            << adder.transistor_count()
            << " transistors), all dynamic-polarity\n\n";

  // --- 1. What can the fab break? -----------------------------------------
  faults::IfaOptions ifa_opt;
  ifa_opt.sample_count = 1000;
  const faults::IfaReport ifa = faults::run_ifa(adder, ifa_opt);
  std::cout << "Inductive fault analysis (1000 sampled defects):\n";
  util::AsciiTable mech({"mechanism", "count", "notes"});
  for (const auto& [m, count] : ifa.per_mechanism) {
    std::string note;
    for (const core::CpFaultModel model :
         core::recommended_models(m, /*dynamic_polarity=*/true)) {
      if (!note.empty()) note += ", ";
      note += core::to_string(model);
    }
    mech.add_row({to_string(m), std::to_string(count), note});
  }
  mech.print(std::cout);
  std::cout << "  -> " << ifa.masked_without_cb
            << " sampled channel breaks are masked by the DP redundancy\n\n";

  // --- 2./3. Classical flow and its escapes. ------------------------------
  core::TestFlowOptions classical;
  classical.classical_only = true;
  const core::TestSuite base = core::run_test_flow(adder, classical);
  std::cout << "Classical flow (stuck-at + two-pattern, voltage-observed "
               "only):\n"
            << "  coverage " << 100.0 * base.coverage() << " % — "
            << base.count(core::CoverageMethod::kUncovered)
            << " faults escape\n\n";

  // --- 4. The paper's flow. ------------------------------------------------
  const core::TestSuite full = core::run_test_flow(adder);
  std::cout << "Extended flow (adds IDDQ polarity tests + channel-break "
               "procedure):\n"
            << "  coverage " << 100.0 * full.coverage() << " %\n"
            << "  " << full.count(core::CoverageMethod::kIddqPattern)
            << " faults covered by IDDQ patterns (pull-up polarity "
               "bridges)\n"
            << "  " << full.count(core::CoverageMethod::kChannelBreak)
            << " faults covered by the channel-break procedure\n\n";

  std::cout << "Test program size:\n"
            << "  " << full.logic_patterns.size()
            << " voltage patterns, " << full.iddq_patterns.size()
            << " IDDQ strobes, " << full.channel_break_tests.size()
            << " dual-rail CB applications\n";
  return 0;
}
