// Device explorer: characterize the TIG-SiNWFET compact model — transfer
// and output sweeps for both polarities, defect injection (GOS at each
// gate, partial nanowire breaks), and the table-model export the paper's
// simulation flow uses (TCAD -> lookup table -> SPICE).
#include <fstream>
#include <iostream>

#include "device/carrier_density.hpp"
#include "device/iv_sweep.hpp"
#include "device/table_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace cpsinw;
  const device::TigParams params;
  const device::TigModel ff(params);

  std::cout << "=== TIG-SiNWFET compact model explorer ===\n\n";

  // Both polarities of the same physical device.
  std::cout << "Ambipolar operation (the defining CP property):\n";
  util::AsciiTable modes({"configuration", "conducts?", "current [A]"});
  const double vdd = params.vdd;
  struct Corner {
    const char* name;
    double cg, pg;
  };
  for (const Corner c : {Corner{"n-mode: CG=PGS=PGD=VDD", vdd, vdd},
                         Corner{"p-mode: CG=PGS=PGD=0 (source at VDD)", 0.0,
                                0.0},
                         Corner{"off: CG=VDD, PG=0", vdd, 0.0},
                         Corner{"off: CG=0, PG=VDD", 0.0, vdd}}) {
    const bool p_mode = c.cg == 0.0 && c.pg == 0.0;
    const double i = p_mode
                         ? -ff.ids({.vcg = 0, .vpgs = 0, .vpgd = 0,
                                    .vs = vdd, .vd = 0})
                         : ff.ids({.vcg = c.cg, .vpgs = c.pg, .vpgd = c.pg,
                                   .vs = 0, .vd = vdd});
    modes.add_row({c.name, i > 1e-6 ? "yes" : "no",
                   util::format_sci(i, 3)});
  }
  modes.print(std::cout);

  // Defect sweep: GOS size scaling at each location.
  std::cout << "\nGOS severity sweep (I_DSAT relative to fault-free):\n";
  util::AsciiTable gos({"location", "10 nm^2", "25 nm^2", "50 nm^2"});
  for (const device::GateTerminal where :
       {device::GateTerminal::kPGS, device::GateTerminal::kCG,
        device::GateTerminal::kPGD}) {
    std::vector<std::string> row = {device::to_string(where)};
    for (const double size : {10.0, 25.0, 50.0}) {
      const device::TigModel faulty(params,
                                    device::make_gos_state(where, size));
      row.push_back(util::format_fixed(
          faulty.ids_sat_n() / ff.ids_sat_n(), 3));
    }
    gos.add_row(row);
  }
  gos.print(std::cout);

  // Partial nanowire breaks.
  std::cout << "\nPartial nanowire break (current scaling):\n";
  util::AsciiTable brk({"severity", "I_DSAT ratio"});
  for (const double sev : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const device::TigModel faulty(params, device::make_break_state(sev));
    brk.row().num(sev, 2).sci(faulty.ids_sat_n() / ff.ids_sat_n(), 2);
  }
  brk.print(std::cout);

  // Export the lookup-table compact model (the paper's Verilog-A table
  // model equivalent).
  const device::TableModel table = device::TableModel::build(ff);
  std::ofstream out("tig_table_model.txt");
  table.save(out);
  std::cout << "\nLookup-table compact model written to "
               "tig_table_model.txt\n";

  // Transfer sweep data for plotting.
  const auto sweep = device::transfer_sweep(ff, vdd, vdd, 0.0, vdd, 13);
  std::cout << "\nn-type transfer characteristic (V_DS = V_DD):\n";
  sweep.print(std::cout);
  return 0;
}
