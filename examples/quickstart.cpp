// Quickstart: the 60-second tour of the library.
//
//   1. build the calibrated TIG-SiNWFET device model,
//   2. elaborate a controllable-polarity XOR2 into a SPICE circuit and
//      check its truth table analogically,
//   3. inject the paper's new fault (stuck-at-n-type polarity bridge) and
//      watch the IDDQ observable explode,
//   4. run the complete test-generation flow on a one-bit full adder
//      (one XOR3 + one MAJ3 — the CP showcase circuit).
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
#include <iostream>

#include "core/test_flow.hpp"
#include "device/tig_model.hpp"
#include "gates/spice_builder.hpp"
#include "logic/benchmarks.hpp"
#include "spice/dcop.hpp"
#include "spice/measure.hpp"

int main() {
  using namespace cpsinw;
  constexpr double kVdd = 1.2;

  // --- 1. The device ------------------------------------------------------
  const device::TigModel device_model((device::TigParams()));
  std::cout << "TIG-SiNWFET: I_DSAT(n) = " << device_model.ids_sat_n()
            << " A, I_on/I_off = "
            << device_model.ids_sat_n() / device_model.ioff_n() << "\n\n";

  // --- 2. A dynamic-polarity XOR2 at DC -----------------------------------
  std::cout << "XOR2 truth table, solved analogically:\n";
  for (unsigned v = 0; v < 4; ++v) {
    gates::CellCircuitSpec spec;
    spec.kind = gates::CellKind::kXor2;
    spec.inputs = gates::dc_inputs(gates::CellKind::kXor2, v, kVdd);
    gates::CellCircuit cell = gates::build_cell_circuit(spec);
    const spice::DcResult op = spice::dc_operating_point(cell.ckt);
    std::cout << "  A=" << (v & 1u) << " B=" << ((v >> 1) & 1u)
              << "  ->  out = " << op.voltage(cell.out) << " V\n";
  }

  // --- 3. Inject the paper's new fault ------------------------------------
  gates::CellCircuitSpec faulty;
  faulty.kind = gates::CellKind::kXor2;
  // Excitation vector A=0, B=1 (bit 0 = A): the forced-n t3 fights the
  // pull-up network.
  faulty.inputs = gates::dc_inputs(gates::CellKind::kXor2, 0b10u, kVdd);
  faulty.pg_forces.push_back({2, kVdd});  // t3 stuck-at-n-type
  gates::CellCircuit cell = gates::build_cell_circuit(faulty);
  const spice::DcResult op = spice::dc_operating_point(cell.ckt);
  std::cout << "\nt3 stuck-at-n-type at A=0,B=1: out = "
            << op.voltage(cell.out) << " V (good machine: 1.2 V), IDDQ = "
            << spice::iddq_total(op) << " A\n";

  // --- 4. Full test flow on the CP full adder -----------------------------
  const logic::Circuit adder = logic::full_adder();
  const core::TestSuite suite = core::run_test_flow(adder);
  std::cout << "\nFull adder (XOR3 + MAJ3) test flow:\n"
            << "  fault universe:        " << suite.outcomes.size() << "\n"
            << "  coverage:              " << 100.0 * suite.coverage()
            << " %\n"
            << "  voltage patterns:      " << suite.logic_patterns.size()
            << "\n"
            << "  IDDQ patterns:         " << suite.iddq_patterns.size()
            << "\n"
            << "  channel-break tests:   "
            << suite.channel_break_tests.size() << "\n";
  return 0;
}
