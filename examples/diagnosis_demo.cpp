// Diagnosis scenario: a CP full adder comes back from the tester with
// failing responses.  Which defect is it?
//
// The demo plays the tester: it secretly injects a fault, collects the
// observed responses (output values + IDDQ strobes) for the deterministic
// test set, and hands them to the diagnosis engine, which ranks every
// candidate in the fault universe by how well its dictionary-predicted
// behaviour explains the observations.
#include <iostream>

#include "core/test_flow.hpp"
#include "faults/diagnosis.hpp"
#include "logic/benchmarks.hpp"
#include "util/table.hpp"

int main() {
  using namespace cpsinw;
  const logic::Circuit ckt = logic::full_adder();
  const auto universe = faults::generate_fault_list(ckt);

  // The "truth" the tester does not know: a polarity bridge on the
  // majority gate's t3.
  const faults::Fault injected = faults::Fault::transistor(
      1, 2, gates::TransistorFault::kStuckAtNType);
  std::cout << "Secretly injected defect: " << injected.describe(ckt)
            << "\n\n";

  // Apply the deterministic test program and record responses.
  const core::TestSuite suite = core::run_test_flow(ckt);
  std::vector<faults::Observation> observed;
  for (const logic::Pattern& p : suite.logic_patterns)
    observed.push_back(faults::predict_observation(ckt, injected, p));
  for (const logic::Pattern& p : suite.iddq_patterns)
    observed.push_back(faults::predict_observation(ckt, injected, p));
  std::cout << "Collected " << observed.size()
            << " tester observations (voltage + IDDQ strobes)\n\n";

  // Diagnose.
  const auto ranked = faults::diagnose(ckt, observed, universe);
  std::cout << "Top candidates:\n";
  util::AsciiTable table({"rank", "candidate", "matches", "mismatches",
                          "score"});
  for (std::size_t i = 0; i < ranked.size() && i < 8; ++i) {
    table.row()
        .cell(std::to_string(i + 1))
        .cell(ranked[i].fault.describe(ckt))
        .cell(std::to_string(ranked[i].matches))
        .cell(std::to_string(ranked[i].mismatches))
        .num(ranked[i].score, 3);
  }
  table.print(std::cout);

  int fully = 0;
  bool injected_on_top = false;
  for (const auto& c : ranked) {
    if (!c.explains_all()) break;
    ++fully;
    if (c.fault == injected) injected_on_top = true;
  }
  std::cout << "\n" << fully
            << " candidate(s) fully explain the responses; the injected "
               "defect is "
            << (injected_on_top ? "among them." : "NOT among them (bug!).")
            << "\nEquivalent faults (identical dictionaries) are "
               "indistinguishable by any tester —\nthe ambiguity set is "
               "the diagnosis resolution limit.\n";
  return 0;
}
