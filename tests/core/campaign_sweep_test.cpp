// Coverage for the core::run_benchmark_campaign roster driver: the roster
// itself, per-circuit report sanity, stable JSON ordering, and backend
// passthrough.
#include "core/campaign_sweep.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace cpsinw::core {
namespace {

const std::vector<std::string>& expected_roster() {
  static const std::vector<std::string> names = {
      "c17",            "full_adder", "ripple_adder_4", "parity_tree_8",
      "multiplier_2x2", "alu_slice",  "tmr_voter_3",    "xor3_chain_9"};
  return names;
}

CampaignSweepOptions small_options() {
  CampaignSweepOptions opt;
  opt.random_patterns = 16;
  opt.threads = 2;
  return opt;
}

TEST(CampaignSweep, RosterMatchesTheCoverageExperimentCircuits) {
  const std::vector<engine::CircuitJobSpec> jobs = benchmark_campaign_jobs();
  ASSERT_EQ(jobs.size(), expected_roster().size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_EQ(jobs[j].name, expected_roster()[j]) << "job " << j;
    EXPECT_TRUE(jobs[j].circuit.finalized()) << jobs[j].name;
    EXPECT_GT(jobs[j].circuit.gate_count(), 0) << jobs[j].name;
    EXPECT_GT(jobs[j].circuit.transistor_count(), 0) << jobs[j].name;
    EXPECT_FALSE(jobs[j].circuit.primary_outputs().empty()) << jobs[j].name;
  }
}

TEST(CampaignSweep, PerCircuitReportsAreSane) {
  const engine::CampaignReport report =
      run_benchmark_campaign(small_options());
  ASSERT_TRUE(report.ok()) << report.error;
  ASSERT_EQ(report.jobs.size(), expected_roster().size());

  const std::vector<engine::CircuitJobSpec> jobs = benchmark_campaign_jobs();
  for (std::size_t j = 0; j < report.jobs.size(); ++j) {
    const engine::JobReport& jr = report.jobs[j];
    EXPECT_EQ(jr.circuit, expected_roster()[j]);
    EXPECT_EQ(jr.gate_count, jobs[j].circuit.gate_count());
    EXPECT_EQ(jr.transistor_count, jobs[j].circuit.transistor_count());
    EXPECT_EQ(jr.pattern_count, 16);
    EXPECT_GT(jr.shard_count, 0);
    const engine::ClassStats totals = jr.totals();
    EXPECT_GT(totals.total, 0) << jr.circuit;
    EXPECT_EQ(totals.sampled, totals.total) << jr.circuit;
    EXPECT_GT(totals.detected, 0) << jr.circuit;
    EXPECT_GE(totals.coverage(), 0.0);
    EXPECT_LE(totals.coverage(), 1.0);
    // The roster runs all of the paper's non-bridge fault classes.
    EXPECT_GT(jr.by_class[static_cast<std::size_t>(
                              engine::FaultClass::kLineStuckAt)]
                  .total,
              0)
        << jr.circuit;
    EXPECT_GT(
        jr.by_class[static_cast<std::size_t>(engine::FaultClass::kPolarity)]
            .total,
        0)
        << jr.circuit;
  }
}

TEST(CampaignSweep, StableJsonIsReproducibleAndOrdered) {
  const engine::CampaignReport a = run_benchmark_campaign(small_options());
  const engine::CampaignReport b = run_benchmark_campaign(small_options());
  const std::string json = a.to_json();
  EXPECT_EQ(json, b.to_json());

  // Jobs appear in roster order, and top-level keys in their fixed order.
  std::size_t last = 0;
  for (const std::string& name : expected_roster()) {
    const std::size_t at = json.find("\"" + name + "\"");
    ASSERT_NE(at, std::string::npos) << name;
    EXPECT_GT(at, last) << name << " out of roster order";
    last = at;
  }
  EXPECT_EQ(json.rfind("{\"seed\":", 0), 0u);
  EXPECT_LT(json.find("\"pattern_source\":\"random\""), json.find("\"jobs\""));
  EXPECT_LT(json.find("\"jobs\""), json.rfind("\"totals\""));
}

TEST(CampaignSweep, RemoteExecutorSpecPassesThroughToValidation) {
  // The sweep options carry the whole ExecutorSpec — including the kRemote
  // endpoint list — straight into run_campaign, so a malformed remote
  // config fails spec validation before any roster work runs.
  CampaignSweepOptions opt = small_options();
  opt.executor.backend = engine::ExecutorBackend::kRemote;
  EXPECT_THROW((void)run_benchmark_campaign(opt), std::invalid_argument)
      << "an empty endpoint list must be rejected";
  opt.executor.endpoints = {"not-an-endpoint"};
  EXPECT_THROW((void)run_benchmark_campaign(opt), std::invalid_argument)
      << "a malformed host:port must be rejected";
}

TEST(CampaignSweep, ExecutorBackendPassesThroughWithIdenticalJson) {
  const engine::CampaignReport pooled =
      run_benchmark_campaign(small_options());
  CampaignSweepOptions inline_opt = small_options();
  inline_opt.executor.backend = engine::ExecutorBackend::kInline;
  const engine::CampaignReport serial = run_benchmark_campaign(inline_opt);
  EXPECT_EQ(serial.timing.backend, "inline");
  EXPECT_EQ(pooled.timing.backend, "thread_pool");
  EXPECT_EQ(pooled.to_json(), serial.to_json());
}

}  // namespace
}  // namespace cpsinw::core
