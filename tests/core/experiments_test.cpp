#include "core/experiments.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cpsinw::core {
namespace {

TEST(Experiments, Table2DerivedElectricalsAreCalibrated) {
  const DerivedElectricals e = derived_electricals();
  EXPECT_GT(e.ids_sat_n, 3e-5);
  EXPECT_LT(e.ids_sat_n, 7e-5);
  EXPECT_NEAR(e.ids_sat_n / e.ids_sat_p, 2.0, 0.3);
  EXPECT_GT(e.on_off_ratio, 1e5);
  EXPECT_NEAR(e.vth_n, 0.40, 0.08);
  EXPECT_GT(e.ss_mv_dec, 60.0);
  EXPECT_LT(e.ss_mv_dec, 120.0);
}

TEST(Experiments, Fig3ShapesMatchPaper) {
  const Fig3Data data = run_fig3(41);
  ASSERT_EQ(data.cases.size(), 4u);
  const Fig3Case& ff = data.cases[0];
  const Fig3Case& pgs = data.cases[1];
  const Fig3Case& cg = data.cases[2];
  const Fig3Case& pgd = data.cases[3];

  // Fig. 3a: strong reduction + Delta V_Th = 170 mV at PGS.
  EXPECT_LT(pgs.isat_ratio_vs_ff, 0.5);
  EXPECT_NEAR(pgs.delta_vth_vs_ff, 0.170, 0.04);
  // Fig. 3b: milder than PGS.
  EXPECT_LT(cg.isat_ratio_vs_ff, 1.0);
  EXPECT_GT(cg.isat_ratio_vs_ff, pgs.isat_ratio_vs_ff);
  // Fig. 3c: slight increase, no V_Th shift.
  EXPECT_GT(pgd.isat_ratio_vs_ff, 1.0);
  EXPECT_LT(pgd.isat_ratio_vs_ff, 1.2);
  EXPECT_NEAR(pgd.delta_vth_vs_ff, 0.0, 0.02);
  // Negative I_D at low V_D for the source-side/CG shorts only.
  EXPECT_LT(pgs.min_output_current, 0.0);
  EXPECT_LT(cg.min_output_current, 0.0);
  EXPECT_GE(ff.min_output_current, 0.0);
  // Series data is present for plotting.
  EXPECT_EQ(ff.transfer.size(), 41u);
  EXPECT_EQ(ff.output.size(), 41u);
}

TEST(Experiments, Fig4DensitiesWithinFivePercentOfPaper) {
  const Fig4Data data = run_fig4();
  ASSERT_EQ(data.cases.size(), 4u);
  for (const Fig4Case& c : data.cases) {
    EXPECT_NEAR(c.reported_cm3, c.paper_cm3, 0.05 * c.paper_cm3)
        << c.label;
    EXPECT_GT(c.profile.size(), 100u);
  }
}

TEST(Experiments, Table3MatchesPaperInvariants) {
  const Table3Data data = run_table3();
  ASSERT_EQ(data.rows.size(), 8u);
  for (const Table3Row& row : data.rows) {
    // Every polarity fault is IDDQ-detectable (paper Table III).
    EXPECT_TRUE(row.leakage_detect)
        << "t" << row.transistor + 1 << " " << gates::to_string(row.kind);
    // The SPICE cross-check confirms the leakage swing (>= 4 decades).
    EXPECT_GT(row.iddq_faulty_a, 1e4 * row.iddq_ff_a)
        << "t" << row.transistor + 1 << " " << gates::to_string(row.kind);
    // Pull-up faults: output must stay correct; pull-down: detectable.
    if (row.transistor < 2) {
      EXPECT_FALSE(row.output_detect) << "t" << row.transistor + 1;
    } else {
      EXPECT_TRUE(row.output_detect) << "t" << row.transistor + 1;
    }
  }
}

TEST(Experiments, NandSofReproducesPaperVectors) {
  const NandSofData data = run_nand_sof();
  ASSERT_EQ(data.per_transistor.size(), 4u);
  for (const auto& r : data.per_transistor)
    EXPECT_EQ(r.status, atpg::AtpgStatus::kDetected);
  // Exactly the paper's three two-pattern tests, printed A-first:
  // v1 = (11 -> 01), v2 = (11 -> 10), v3 = (00 -> 11).
  ASSERT_EQ(data.distinct_pairs.size(), 3u);
  EXPECT_NE(std::find(data.distinct_pairs.begin(), data.distinct_pairs.end(),
                      "11->01"),
            data.distinct_pairs.end());
  EXPECT_NE(std::find(data.distinct_pairs.begin(), data.distinct_pairs.end(),
                      "11->10"),
            data.distinct_pairs.end());
  EXPECT_NE(std::find(data.distinct_pairs.begin(), data.distinct_pairs.end(),
                      "00->11"),
            data.distinct_pairs.end());
}

TEST(Experiments, GosDetectabilityMatchesPaperConclusion) {
  const GosDetectData data = run_gos_detectability();
  ASSERT_EQ(data.entries.size(), 12u);  // 4 devices x 3 locations
  for (const GosDetectEntry& e : data.entries) {
    // The paper's conclusion: every GOS shows up in delay and/or leakage.
    EXPECT_TRUE(e.detectable_by_delay || e.detectable_by_iddq)
        << gates::to_string(e.kind) << " t" << e.transistor + 1 << " "
        << device::to_string(e.location);
    // The oxide short leaks gate current in every quiescent state.
    EXPECT_TRUE(e.detectable_by_iddq);
    // Fig. 3 hierarchy: the source-side short degrades drive the most,
    // the drain-side short barely moves the delay.
    if (e.location == device::GateTerminal::kPGS) {
      EXPECT_GT(e.delay_increase_pct, 50.0);
    }
    if (e.location == device::GateTerminal::kPGD) {
      EXPECT_LT(std::abs(e.delay_increase_pct), 30.0);
    }
  }
}

TEST(Experiments, Fig5ShapesAtReducedResolution) {
  // A coarse (7-point) run of the Fig. 5 driver: the paper's qualitative
  // shapes must survive any recalibration.
  Fig5Options opt;
  opt.sweep_points = 7;
  opt.dt = 4e-12;
  const Fig5Data data = run_fig5(opt);
  ASSERT_EQ(data.curves.size(), 12u);  // 3 gates x {t1,t3} x {PGS,PGD}

  const auto find_curve = [&](gates::CellKind kind, const char* label,
                              gates::PgTerminal term) -> const Fig5Curve& {
    for (const Fig5Curve& c : data.curves)
      if (c.gate == kind && c.transistor_label == label &&
          c.cut_terminal == term)
        return c;
    throw std::logic_error("curve not found");
  };

  // INV t1, PGS (injection-side) cut: delay grows with V_cut and the
  // transition eventually fails (stuck-open region beyond ~0.56 V).
  const Fig5Curve& inv_pgs =
      find_curve(gates::CellKind::kInv, "t1", gates::PgTerminal::kPgs);
  EXPECT_NEAR(inv_pgs.points.front().delay_s, inv_pgs.nominal_delay_s,
              0.05 * inv_pgs.nominal_delay_s);
  EXPECT_TRUE(inv_pgs.points.back().transition_failed);

  // INV t1, PGD (collection-side) cut: transition keeps completing, but
  // leakage grows by orders of magnitude toward high V_cut.
  const Fig5Curve& inv_pgd =
      find_curve(gates::CellKind::kInv, "t1", gates::PgTerminal::kPgd);
  EXPECT_FALSE(inv_pgd.points.back().transition_failed);
  EXPECT_GT(inv_pgd.points.back().leakage_a,
            100.0 * inv_pgd.points.front().leakage_a);

  // NAND t3: leakage clamped by the series partner (paper Fig. 5e).
  const Fig5Curve& nand_pgd =
      find_curve(gates::CellKind::kNand2, "t3", gates::PgTerminal::kPgd);
  for (const Fig5Point& pt : nand_pgd.points)
    EXPECT_LT(pt.leakage_a, 2e-9);

  // XOR t1: the function never dies (transmission redundancy) — no SOF
  // anywhere on the sweep.
  const Fig5Curve& xor_pgs =
      find_curve(gates::CellKind::kXor2, "t1", gates::PgTerminal::kPgs);
  for (const Fig5Point& pt : xor_pgs.points)
    EXPECT_FALSE(pt.transition_failed);
}

TEST(Experiments, Sec5cChannelBreakMaskingAndDetection) {
  const Sec5cData data = run_sec5c();
  ASSERT_EQ(data.entries.size(), 4u);
  for (const Sec5cEntry& e : data.entries) {
    // The new procedure must exist and work at both abstraction levels.
    EXPECT_TRUE(e.cb_test_exists) << "t" << e.transistor + 1;
    EXPECT_TRUE(e.cb_distinguishes_cell) << "t" << e.transistor + 1;
    EXPECT_TRUE(e.cb_spice_distinguishes) << "t" << e.transistor + 1;
    EXPECT_GT(e.cb_iddq_intact_a, 1e-6) << "t" << e.transistor + 1;
    EXPECT_LT(e.cb_iddq_broken_a, 1e-7) << "t" << e.transistor + 1;
  }
  // Pull-up breaks leave the DC function fully intact (masked).
  EXPECT_TRUE(data.entries[0].function_preserved_dc);
  EXPECT_TRUE(data.entries[1].function_preserved_dc);
}

}  // namespace
}  // namespace cpsinw::core
