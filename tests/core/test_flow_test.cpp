#include "core/test_flow.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/cp_fault_models.hpp"
#include "logic/benchmarks.hpp"

namespace cpsinw::core {
namespace {

TEST(TestFlow, FullAdderReachesHighCoverageWithNewModels) {
  const logic::Circuit ckt = logic::full_adder();
  const TestSuite suite = run_test_flow(ckt);
  EXPECT_GT(suite.coverage(), 0.95);
  // The DP-only full adder needs the new methods for its transistor
  // faults: both IDDQ patterns and channel-break tests must appear.
  EXPECT_GT(suite.count(CoverageMethod::kIddqPattern), 0);
  EXPECT_GT(suite.count(CoverageMethod::kChannelBreak), 0);
  EXPECT_GT(suite.count(CoverageMethod::kStuckAtPattern), 0);
}

TEST(TestFlow, ClassicalFlowLeavesDpFaultsUncovered) {
  const logic::Circuit ckt = logic::full_adder();
  TestFlowOptions classical;
  classical.classical_only = true;
  const TestSuite base = run_test_flow(ckt, classical);
  const TestSuite full = run_test_flow(ckt);
  EXPECT_LT(base.coverage(), full.coverage());
  EXPECT_EQ(base.count(CoverageMethod::kIddqPattern), 0);
  EXPECT_EQ(base.count(CoverageMethod::kChannelBreak), 0);
  // The coverage gap is exactly the paper's point: DP polarity faults and
  // masked channel breaks escape the classical flow.
  EXPECT_GT(full.coverage() - base.coverage(), 0.15);
}

TEST(TestFlow, SpCircuitUsesTwoPatternTests) {
  const logic::Circuit ckt = logic::c17();
  const TestSuite suite = run_test_flow(ckt);
  EXPECT_GT(suite.count(CoverageMethod::kTwoPattern), 0);
  EXPECT_EQ(suite.count(CoverageMethod::kChannelBreak), 0);  // no DP gates
  EXPECT_GT(suite.coverage(), 0.9);
}

TEST(TestFlow, OutcomesCoverEveryFault) {
  const logic::Circuit ckt = logic::parity_tree(4);
  const TestSuite suite = run_test_flow(ckt);
  faults::FaultListOptions flo;
  flo.collapse = true;
  flo.observe_iddq = true;  // the default flow targets IDDQ tests
  const auto universe = generate_fault_list(ckt, flo);
  EXPECT_EQ(suite.outcomes.size(), universe.size());
  EXPECT_EQ(suite.covered_count(),
            static_cast<int>(suite.outcomes.size()) -
                suite.count(CoverageMethod::kUncovered));
}

TEST(TestFlow, CompactionKeepsPatternsUseful) {
  const logic::Circuit ckt = logic::multiplier_2x2();
  TestFlowOptions with;
  with.compact = true;
  TestFlowOptions without;
  without.compact = false;
  const TestSuite a = run_test_flow(ckt, with);
  const TestSuite b = run_test_flow(ckt, without);
  EXPECT_LE(a.logic_patterns.size(), b.logic_patterns.size());
  EXPECT_NEAR(a.coverage(), b.coverage(), 1e-12);
}

TEST(CpFaultModels, CatalogueIsConsistent) {
  for (const CpFaultModel m :
       {CpFaultModel::kStuckAt, CpFaultModel::kStuckOpen,
        CpFaultModel::kStuckOn, CpFaultModel::kDelayFault,
        CpFaultModel::kIddq, CpFaultModel::kBridge,
        CpFaultModel::kStuckAtNType, CpFaultModel::kStuckAtPType,
        CpFaultModel::kChannelBreakProcedure}) {
    EXPECT_STRNE(to_string(m), "?");
    EXPECT_STRNE(description_of(m), "?");
  }
  EXPECT_TRUE(is_new_model(CpFaultModel::kStuckAtNType));
  EXPECT_TRUE(is_new_model(CpFaultModel::kChannelBreakProcedure));
  EXPECT_FALSE(is_new_model(CpFaultModel::kStuckAt));
}

TEST(CpFaultModels, RecommendationMatrixMatchesPaper) {
  // DP nanowire break -> the new procedure.
  const auto dp_break = recommended_models(
      faults::DefectMechanism::kNanowireBreak, true);
  EXPECT_NE(std::find(dp_break.begin(), dp_break.end(),
                      CpFaultModel::kChannelBreakProcedure),
            dp_break.end());
  // DP gate bridge -> both new polarity models.
  const auto dp_bridge =
      recommended_models(faults::DefectMechanism::kGateBridge, true);
  EXPECT_NE(std::find(dp_bridge.begin(), dp_bridge.end(),
                      CpFaultModel::kStuckAtNType),
            dp_bridge.end());
  EXPECT_NE(std::find(dp_bridge.begin(), dp_bridge.end(),
                      CpFaultModel::kStuckAtPType),
            dp_bridge.end());
  // SP break -> classical stuck-open only.
  const auto sp_break = recommended_models(
      faults::DefectMechanism::kNanowireBreak, false);
  EXPECT_EQ(sp_break.size(), 1u);
  EXPECT_EQ(sp_break.front(), CpFaultModel::kStuckOpen);
}

}  // namespace
}  // namespace cpsinw::core
