#include "device/dg_model.hpp"

#include <gtest/gtest.h>

namespace cpsinw::device {
namespace {

constexpr double kVdd = 1.2;

TEST(DgModel, MatchesTigWithTiedPolarityGates) {
  const TigParams p;
  const DgModel dg(p);
  const TigModel tig(p);
  for (double vcg = 0.0; vcg <= kVdd; vcg += 0.2) {
    for (double vpg = 0.0; vpg <= kVdd; vpg += 0.3) {
      const double i_dg = dg.ids({.vcg = vcg, .vpg = vpg, .vs = 0.0,
                                  .vd = kVdd});
      const double i_tig = tig.ids({.vcg = vcg, .vpgs = vpg, .vpgd = vpg,
                                    .vs = 0.0, .vd = kVdd});
      EXPECT_DOUBLE_EQ(i_dg, i_tig);
    }
  }
}

TEST(DgModel, ConductionRuleCarriesOver) {
  const DgModel dg((TigParams()));
  // On: CG = PG (n at both high; p at both low with source high).
  EXPECT_GT(dg.ids({.vcg = kVdd, .vpg = kVdd, .vs = 0.0, .vd = kVdd}),
            1e-6);
  EXPECT_GT(-dg.ids({.vcg = 0.0, .vpg = 0.0, .vs = kVdd, .vd = 0.0}),
            1e-6);
  // Off: mixed CG/PG.
  EXPECT_LT(dg.ids({.vcg = kVdd, .vpg = 0.0, .vs = 0.0, .vd = kVdd}),
            1e-7);
  EXPECT_LT(dg.ids({.vcg = 0.0, .vpg = kVdd, .vs = 0.0, .vd = kVdd}),
            1e-7);
}

TEST(DgModel, PgShortBehavesLikeWorstCaseTigShort) {
  const TigParams p;
  DgDefectState d;
  d.gos_on_pg = true;
  const DgModel faulty(p, d);
  const DgModel ff(p);
  // The single wrapped PG touches the injection junction: strong I_DSAT
  // collapse, like the TIG source-side case of Fig. 3a.
  const double ratio = faulty.ids_sat_n() / ff.ids_sat_n();
  EXPECT_LT(ratio, 0.5);
  EXPECT_GT(ratio, 0.2);
}

TEST(DgModel, BreakAndCgShortMapThrough) {
  const TigParams p;
  DgDefectState broken;
  broken.nw_break = BreakDefect{1.0};
  EXPECT_LT(DgModel(p, broken).ids_sat_n(), 1e-9);

  DgDefectState cg;
  cg.gos_on_cg = true;
  const double ratio = DgModel(p, cg).ids_sat_n() / DgModel(p).ids_sat_n();
  EXPECT_LT(ratio, 1.0);
  EXPECT_GT(ratio, 0.4);
}

TEST(DgModel, FaultModelsApplyUnchanged) {
  // The logic-level fault models (stuck-at-n/p-type, channel break) depend
  // only on the conduction rule, which the DG adapter preserves — forcing
  // PG to a rail produces the same corner currents.
  const DgModel dg((TigParams()));
  // Stuck-at-n-type: PG bridged to VDD -> conducts iff CG = 1.
  EXPECT_GT(dg.ids({.vcg = kVdd, .vpg = kVdd, .vs = 0.0, .vd = kVdd}),
            1e-6);
  EXPECT_LT(dg.ids({.vcg = 0.0, .vpg = kVdd, .vs = 0.0, .vd = kVdd}),
            1e-7);
}

}  // namespace
}  // namespace cpsinw::device
