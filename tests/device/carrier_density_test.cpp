#include "device/carrier_density.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace cpsinw::device {
namespace {

DefectState gos_at(GateTerminal where) {
  return make_gos_state(where, 25.0);
}

/// Paper Fig. 4 headline numbers, reproduced within a few percent.
TEST(CarrierDensity, Fig4ReportedDensities) {
  const TigParams p;
  const Fig4Reference ref;
  EXPECT_NEAR(reported_density_cm3(p, {}), ref.fault_free,
              0.01 * ref.fault_free);
  EXPECT_NEAR(reported_density_cm3(p, gos_at(GateTerminal::kPGS)),
              ref.gos_pgs, 0.05 * ref.gos_pgs);
  EXPECT_NEAR(reported_density_cm3(p, gos_at(GateTerminal::kCG)),
              ref.gos_cg, 0.05 * ref.gos_cg);
  EXPECT_NEAR(reported_density_cm3(p, gos_at(GateTerminal::kPGD)),
              ref.gos_pgd, 0.05 * ref.gos_pgd);
}

/// GOS at PGS produces the deepest collapse (paper: two orders of
/// magnitude, driven by source-accelerated hole injection).
TEST(CarrierDensity, PgsCaseIsWorst) {
  const TigParams p;
  const double pgs = reported_density_cm3(p, gos_at(GateTerminal::kPGS));
  const double cg = reported_density_cm3(p, gos_at(GateTerminal::kCG));
  const double pgd = reported_density_cm3(p, gos_at(GateTerminal::kPGD));
  EXPECT_LT(pgs, cg);
  EXPECT_LT(pgs, pgd);
}

TEST(CarrierDensity, ProfileHasDipAtGosSite) {
  const TigParams p;
  for (const GateTerminal where :
       {GateTerminal::kPGS, GateTerminal::kCG, GateTerminal::kPGD}) {
    const auto prof = electron_density_profile(p, gos_at(where));
    const auto it = std::min_element(prof.density_cm3.begin(),
                                     prof.density_cm3.end());
    const std::size_t idx =
        static_cast<std::size_t>(it - prof.density_cm3.begin());
    const double x_min = prof.x_nm[idx];
    EXPECT_NEAR(x_min, p.gate_center_nm(where), 6.0)
        << "dip should sit at " << to_string(where);
  }
}

TEST(CarrierDensity, FaultFreeProfileSmoothlyDecreasesTowardDrain) {
  const TigParams p;
  const auto prof = electron_density_profile(p, {});
  ASSERT_GT(prof.density_cm3.size(), 10u);
  EXPECT_GT(prof.density_cm3.front(), prof.density_cm3.back());
  for (std::size_t i = 1; i < prof.density_cm3.size(); ++i)
    EXPECT_LE(prof.density_cm3[i], prof.density_cm3[i - 1] * 1.0001);
}

TEST(CarrierDensity, ProfileSamplesMatchRequestedCount) {
  const TigParams p;
  const auto prof = electron_density_profile(p, {}, 51);
  EXPECT_EQ(prof.x_nm.size(), 51u);
  EXPECT_EQ(prof.density_cm3.size(), 51u);
  EXPECT_DOUBLE_EQ(prof.x_nm.front(), 0.0);
  EXPECT_DOUBLE_EQ(prof.x_nm.back(), p.channel_length_nm());
  EXPECT_THROW((void)electron_density_profile(p, {}, 1),
               std::invalid_argument);
}

TEST(CarrierDensity, BreakDefectDepressesMidChannel) {
  const TigParams p;
  const DefectState broken = make_break_state(1.0);
  const auto prof = electron_density_profile(p, broken);
  const auto ff = electron_density_profile(p, {});
  const std::size_t mid = prof.density_cm3.size() / 2;
  EXPECT_LT(prof.density_cm3[mid], 0.01 * ff.density_cm3[mid]);
}

}  // namespace
}  // namespace cpsinw::device
