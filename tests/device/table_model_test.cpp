#include "device/table_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/rng.hpp"

namespace cpsinw::device {
namespace {

TEST(TableModel, MatchesAnalyticalModelOnGridPoints) {
  const TigModel m((TigParams()));
  const TableModel tm = TableModel::build(m);
  // Grid-aligned biases must match almost exactly.
  const TigBias b{.vcg = 1.2, .vpgs = 1.2, .vpgd = 1.2, .vs = 0.0, .vd = 1.2};
  // 1.2 lies on the default grid only if (1.2 - (-0.4)) / step is integral;
  // with 21 points over [-0.4, 1.6] the step is 0.1 -> yes.
  EXPECT_NEAR(tm.ids(b), m.ids(b), 1e-3 * std::abs(m.ids(b)) + 1e-15);
}

TEST(TableModel, InterpolatesWithinFewPercent) {
  const TigModel m((TigParams()));
  TableGrid grid;
  grid.gate_points = 41;
  grid.vds_points = 29;
  const TableModel tm = TableModel::build(m, grid);
  util::SplitMix64 rng(1234);
  for (int i = 0; i < 300; ++i) {
    const TigBias b{.vcg = rng.uniform(0.0, 1.2),
                    .vpgs = rng.uniform(0.0, 1.2),
                    .vpgd = rng.uniform(0.0, 1.2),
                    .vs = rng.uniform(0.0, 0.6),
                    .vd = rng.uniform(0.0, 1.2)};
    const double exact = m.ids(b);
    const double interp = tm.ids(b);
    EXPECT_NEAR(interp, exact, 0.08 * std::abs(exact) + 2e-8)
        << "bias vcg=" << b.vcg << " vpgs=" << b.vpgs << " vpgd=" << b.vpgd
        << " vs=" << b.vs << " vd=" << b.vd;
  }
}

TEST(TableModel, PreservesAntisymmetry) {
  const TigModel m((TigParams()));
  const TableModel tm = TableModel::build(m);
  const double fwd = tm.ids(
      {.vcg = 0.9, .vpgs = 1.1, .vpgd = 1.1, .vs = 0.1, .vd = 1.0});
  const double rev = tm.ids(
      {.vcg = 0.9, .vpgs = 1.1, .vpgd = 1.1, .vs = 1.0, .vd = 0.1});
  EXPECT_NEAR(fwd, -rev, 1e-12 + 1e-9 * std::abs(fwd));
}

TEST(TableModel, CarriesParasitics) {
  const TigParams p;
  const TigModel m(p);
  const TableModel tm = TableModel::build(m);
  EXPECT_DOUBLE_EQ(tm.c_gate(), p.c_gate_f);
  EXPECT_DOUBLE_EQ(tm.c_sd(), p.c_sd_f);
}

TEST(TableModel, SaveLoadRoundTrip) {
  const TigModel m((TigParams()));
  TableGrid grid;
  grid.gate_points = 7;
  grid.vds_points = 5;
  const TableModel tm = TableModel::build(m, grid);
  std::stringstream ss;
  tm.save(ss);
  const TableModel loaded = TableModel::load(ss);
  util::SplitMix64 rng(99);
  for (int i = 0; i < 50; ++i) {
    const TigBias b{.vcg = rng.uniform(0.0, 1.2),
                    .vpgs = rng.uniform(0.0, 1.2),
                    .vpgd = rng.uniform(0.0, 1.2),
                    .vs = 0.0,
                    .vd = rng.uniform(0.0, 1.2)};
    EXPECT_DOUBLE_EQ(loaded.ids(b), tm.ids(b));
  }
}

TEST(TableModel, LoadRejectsGarbage) {
  std::stringstream ss("not-a-table 123");
  EXPECT_THROW((void)TableModel::load(ss), std::runtime_error);
}

TEST(TableModel, RejectsDegenerateGrid) {
  const TigModel m((TigParams()));
  TableGrid bad;
  bad.gate_points = 1;
  EXPECT_THROW((void)TableModel::build(m, bad), std::invalid_argument);
}

TEST(TableModel, CapturesDefectiveDevices) {
  const TigModel faulty(TigParams{},
                        make_gos_state(GateTerminal::kPGS, 25.0));
  const TableModel tm = TableModel::build(faulty);
  const TigBias sat{.vcg = 1.2, .vpgs = 1.2, .vpgd = 1.2, .vs = 0.0,
                    .vd = 1.2};
  EXPECT_NEAR(tm.ids(sat), faulty.ids(sat),
              0.02 * std::abs(faulty.ids(sat)));
}

}  // namespace
}  // namespace cpsinw::device
