#include "device/tig_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cpsinw::device {
namespace {

constexpr double kVdd = 1.2;

TigModel make_ff() { return TigModel(TigParams{}); }

TEST(TigModel, SaturationCurrentMatchesCalibration) {
  const TigModel m = make_ff();
  // Paper Fig. 3 axis: fault-free I_DSAT ~ 5e-5 A.
  EXPECT_GT(m.ids_sat_n(), 3.0e-5);
  EXPECT_LT(m.ids_sat_n(), 7.0e-5);
}

TEST(TigModel, ElectronHoleDriveRatio) {
  const TigModel m = make_ff();
  const double ratio = m.ids_sat_n() / m.ids_sat_p();
  EXPECT_NEAR(ratio, m.params().mu_ratio, 0.2);
}

TEST(TigModel, OnOffRatioExceedsFiveDecades) {
  const TigModel m = make_ff();
  EXPECT_GT(m.ids_sat_n() / m.ioff_n(), 1e5);
}

TEST(TigModel, ThresholdNearCalibratedValue) {
  const TigModel m = make_ff();
  EXPECT_NEAR(m.vth_n_extracted(), m.params().vth_n, 0.1);
}

/// Paper Sec. III-C conduction rule: the device conducts iff
/// CG = PGS = PGD; mixed gate configurations are off.
TEST(TigModel, ConductionRuleOverAllGateCorners) {
  const TigModel m = make_ff();
  for (unsigned bits = 0; bits < 8; ++bits) {
    const double vcg = (bits & 1u) ? kVdd : 0.0;
    const double vpgs = (bits & 2u) ? kVdd : 0.0;
    const double vpgd = (bits & 4u) ? kVdd : 0.0;
    const double i = std::abs(
        m.ids({.vcg = vcg, .vpgs = vpgs, .vpgd = vpgd, .vs = 0.0,
               .vd = kVdd}));
    const bool should_conduct = (bits == 7u) || (bits == 0u);
    if (should_conduct) {
      EXPECT_GT(i, 1e-6) << "corner " << bits << " should conduct";
    } else {
      EXPECT_LT(i, 1e-7) << "corner " << bits << " should be off";
    }
  }
}

TEST(TigModel, AmbipolarMirrorSymmetry) {
  const TigModel m = make_ff();
  // All-low gates with source high = p-mode; equals n-mode / mu_ratio.
  const double i_n = m.ids(
      {.vcg = kVdd, .vpgs = kVdd, .vpgd = kVdd, .vs = 0.0, .vd = kVdd});
  const double i_p = -m.ids(
      {.vcg = 0.0, .vpgs = 0.0, .vpgd = 0.0, .vs = kVdd, .vd = 0.0});
  EXPECT_NEAR(i_n / i_p, m.params().mu_ratio, 0.05 * m.params().mu_ratio);
}

TEST(TigModel, AntisymmetricUnderTerminalSwap) {
  const TigModel m = make_ff();
  for (const double vcg : {0.0, 0.6, 1.2}) {
    for (const double vpg : {0.0, 0.6, 1.2}) {
      const double fwd = m.ids(
          {.vcg = vcg, .vpgs = vpg, .vpgd = vpg, .vs = 0.2, .vd = 1.0});
      const double rev = m.ids(
          {.vcg = vcg, .vpgs = vpg, .vpgd = vpg, .vs = 1.0, .vd = 0.2});
      EXPECT_NEAR(fwd, -rev, 1e-12 + 1e-9 * std::abs(fwd));
    }
  }
}

TEST(TigModel, ZeroVdsGivesZeroCurrent) {
  const TigModel m = make_ff();
  EXPECT_DOUBLE_EQ(
      m.ids({.vcg = kVdd, .vpgs = kVdd, .vpgd = kVdd, .vs = 0.6, .vd = 0.6}),
      0.0);
}

TEST(TigModel, TransferCurveMonotoneInVcg) {
  const TigModel m = make_ff();
  double prev = -1.0;
  for (double vcg = 0.0; vcg <= 1.2; vcg += 0.05) {
    const double i = m.ids(
        {.vcg = vcg, .vpgs = kVdd, .vpgd = kVdd, .vs = 0.0, .vd = kVdd});
    EXPECT_GE(i, prev) << "at vcg=" << vcg;
    prev = i;
  }
}

TEST(TigModel, OutputCurveMonotoneInVds) {
  const TigModel m = make_ff();
  double prev = -1.0;
  for (double vd = 0.0; vd <= 1.2; vd += 0.05) {
    const double i = m.ids(
        {.vcg = kVdd, .vpgs = kVdd, .vpgd = kVdd, .vs = 0.0, .vd = vd});
    EXPECT_GE(i, prev) << "at vd=" << vd;
    prev = i;
  }
}

/// The injection-side Schottky barrier kills conduction when the polarity
/// gate is pulled ~0.56 V away from its nominal bias — the paper's
/// stuck-open threshold for floating polarity gates (Sec. V-A).
TEST(TigModel, PolarityGateCutThreshold) {
  const TigModel m = make_ff();
  const double i_nominal = m.ids_sat_n();
  // PGS (injection side for vs=0) lowered to vdd - 0.64 = 0.56.
  const double i_cut = m.ids(
      {.vcg = kVdd, .vpgs = 0.56, .vpgd = kVdd, .vs = 0.0, .vd = kVdd});
  EXPECT_LT(i_cut, 0.35 * i_nominal);  // heavily degraded
  EXPECT_GT(i_cut, 0.02 * i_nominal);  // but not yet off
  // Beyond the threshold: effectively off.
  const double i_off = m.ids(
      {.vcg = kVdd, .vpgs = 0.30, .vpgd = kVdd, .vs = 0.0, .vd = kVdd});
  EXPECT_LT(i_off, 0.01 * i_nominal);
}

/// The collection-side barrier is soft (quasi-ballistic transport under the
/// drain-side gate): the same cut hurts far less.
TEST(TigModel, CollectionSideCutIsMilder) {
  const TigModel m = make_ff();
  const double i_nominal = m.ids_sat_n();
  const double i_inj = m.ids(
      {.vcg = kVdd, .vpgs = 0.56, .vpgd = kVdd, .vs = 0.0, .vd = kVdd});
  const double i_col = m.ids(
      {.vcg = kVdd, .vpgs = kVdd, .vpgd = 0.56, .vs = 0.0, .vd = kVdd});
  EXPECT_GT(i_col, 3.0 * i_inj);
  EXPECT_GT(i_col, 0.5 * i_nominal);
}

TEST(TigModel, GateCurrentsZeroWithoutGos) {
  const TigModel m = make_ff();
  const TigCurrents c = m.currents(
      {.vcg = kVdd, .vpgs = kVdd, .vpgd = kVdd, .vs = 0.0, .vd = kVdd});
  EXPECT_DOUBLE_EQ(c.into_cg, 0.0);
  EXPECT_DOUBLE_EQ(c.into_pgs, 0.0);
  EXPECT_DOUBLE_EQ(c.into_pgd, 0.0);
  EXPECT_NEAR(c.into_drain + c.into_source, 0.0, 1e-18);
}

TEST(TigModel, RejectsInvalidParams) {
  TigParams p;
  p.k_n = -1.0;
  EXPECT_THROW(TigModel{p}, std::invalid_argument);
}

}  // namespace
}  // namespace cpsinw::device
