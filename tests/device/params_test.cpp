#include "device/params.hpp"

#include <gtest/gtest.h>

namespace cpsinw::device {
namespace {

TEST(TigParams, DefaultsMatchPaperTable2) {
  const TigParams p;
  EXPECT_DOUBLE_EQ(p.l_cg_nm, 22.0);
  EXPECT_DOUBLE_EQ(p.l_pgs_nm, 22.0);
  EXPECT_DOUBLE_EQ(p.l_pgd_nm, 22.0);
  EXPECT_DOUBLE_EQ(p.l_sp_nm, 18.0);
  EXPECT_DOUBLE_EQ(p.r_nw_nm, 7.5);
  EXPECT_DOUBLE_EQ(p.t_ox_nm, 5.1);
  EXPECT_DOUBLE_EQ(p.phi_b_ev, 0.41);
  EXPECT_DOUBLE_EQ(p.channel_doping_cm3, 1e15);
  EXPECT_DOUBLE_EQ(p.vdd, 1.2);
}

TEST(TigParams, ChannelLengthSumsRegions) {
  const TigParams p;
  EXPECT_DOUBLE_EQ(p.channel_length_nm(), 22.0 + 18.0 + 22.0 + 18.0 + 22.0);
}

TEST(TigParams, GateCentersAreOrdered) {
  const TigParams p;
  const double pgs = p.gate_center_nm(GateTerminal::kPGS);
  const double cg = p.gate_center_nm(GateTerminal::kCG);
  const double pgd = p.gate_center_nm(GateTerminal::kPGD);
  EXPECT_LT(pgs, cg);
  EXPECT_LT(cg, pgd);
  EXPECT_DOUBLE_EQ(pgs, 11.0);
  EXPECT_DOUBLE_EQ(cg, 51.0);
  EXPECT_DOUBLE_EQ(pgd, 91.0);
}

TEST(TigParams, SubthresholdSwingIsPlausible) {
  const TigParams p;
  const double ss = p.subthreshold_swing_mv_dec();
  EXPECT_GT(ss, 60.0);   // thermal limit
  EXPECT_LT(ss, 120.0);  // still a good GAA device
}

TEST(TigParams, ValidateAcceptsDefaults) {
  EXPECT_NO_THROW(TigParams{}.validate());
}

TEST(TigParams, ValidateRejectsBadValues) {
  TigParams p;
  p.vdd = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = TigParams{};
  p.vth_n = 2.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = TigParams{};
  p.k_n = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = TigParams{};
  p.mu_ratio = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = TigParams{};
  p.t_ox_nm = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(GateTerminal, Names) {
  EXPECT_STREQ(to_string(GateTerminal::kPGS), "PGS");
  EXPECT_STREQ(to_string(GateTerminal::kCG), "CG");
  EXPECT_STREQ(to_string(GateTerminal::kPGD), "PGD");
}

}  // namespace
}  // namespace cpsinw::device
