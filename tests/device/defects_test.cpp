#include "device/defects.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "device/iv_sweep.hpp"
#include "device/tig_model.hpp"

namespace cpsinw::device {
namespace {

TigModel make_gos(GateTerminal where) {
  return TigModel(TigParams{}, make_gos_state(where, 25.0));
}

TEST(GosEffect, Fig3aPgsShort) {
  // Paper Fig. 3a: strong I_DSAT reduction and Delta V_Th = +170 mV.
  const TigModel ff((TigParams()));
  const TigModel faulty = make_gos(GateTerminal::kPGS);
  const auto s_ff = summarize_transfer(ff);
  const auto s_f = summarize_transfer(faulty);
  EXPECT_LT(s_f.i_sat, 0.5 * s_ff.i_sat);
  EXPECT_GT(s_f.i_sat, 0.2 * s_ff.i_sat);
  EXPECT_NEAR(s_f.vth - s_ff.vth, 0.170, 0.04);
}

TEST(GosEffect, Fig3bCgShortMilderThanPgs) {
  const TigModel ff((TigParams()));
  const TigModel pgs = make_gos(GateTerminal::kPGS);
  const TigModel cg = make_gos(GateTerminal::kCG);
  const auto s_ff = summarize_transfer(ff);
  const auto s_pgs = summarize_transfer(pgs);
  const auto s_cg = summarize_transfer(cg);
  // Reduced, but less than the PGS case; V_Th shifted but less.
  EXPECT_LT(s_cg.i_sat, s_ff.i_sat);
  EXPECT_GT(s_cg.i_sat, s_pgs.i_sat);
  EXPECT_GT(s_cg.vth, s_ff.vth);
  EXPECT_LT(s_cg.vth - s_ff.vth, s_pgs.vth - s_ff.vth);
}

TEST(GosEffect, Fig3cPgdShortSlightIncreaseNoVthShift) {
  const TigModel ff((TigParams()));
  const TigModel pgd = make_gos(GateTerminal::kPGD);
  const auto s_ff = summarize_transfer(ff);
  const auto s_pgd = summarize_transfer(pgd);
  EXPECT_GT(s_pgd.i_sat, s_ff.i_sat);
  EXPECT_LT(s_pgd.i_sat, 1.2 * s_ff.i_sat);
  EXPECT_NEAR(s_pgd.vth, s_ff.vth, 0.02);
}

/// The paper observes negative I_D at low V_D for a GOS device: the shorted
/// gate injects current into the drain.
TEST(GosEffect, NegativeDrainCurrentAtLowVd) {
  for (const GateTerminal where : {GateTerminal::kPGS, GateTerminal::kCG}) {
    const TigModel faulty = make_gos(where);
    const auto sweep = output_sweep(faulty, 1.2, 1.2, 0.0, 1.2, 25);
    EXPECT_LT(sweep.column(0).front(), 0.0)
        << "GOS@" << to_string(where) << " should push I_D negative at VD=0";
    EXPECT_GT(sweep.column(0).back(), 0.0);
  }
}

TEST(GosEffect, FaultFreeOutputCurveStaysNonNegative) {
  const TigModel ff((TigParams()));
  const auto sweep = output_sweep(ff, 1.2, 1.2, 0.0, 1.2, 25);
  for (const double i : sweep.column(0)) EXPECT_GE(i, 0.0);
}

TEST(GosEffect, SeverityScalesWithSize) {
  const GosDefect small{GateTerminal::kPGS, 10.0};
  const GosDefect large{GateTerminal::kPGS, 50.0};
  const auto e_small = gos_effect(small);
  const auto e_large = gos_effect(large);
  EXPECT_GT(e_small.isat_scale, e_large.isat_scale);
  EXPECT_LT(e_small.delta_vth, e_large.delta_vth);
  EXPECT_LT(e_small.g_gate_s, e_large.g_gate_s);
}

TEST(BreakDefect, FullBreakLeavesTunnelResidue) {
  const double scale = break_current_scale(BreakDefect{1.0});
  EXPECT_LT(scale, 1e-5);
  EXPECT_GT(scale, 0.0);
}

TEST(BreakDefect, PartialBreakScalesCurrent) {
  const TigModel ff((TigParams()));
  const TigModel half(TigParams{}, make_break_state(0.5));
  EXPECT_NEAR(half.ids_sat_n() / ff.ids_sat_n(), 0.5, 0.01);
}

TEST(BreakDefect, FullBreakKillsConduction) {
  const TigModel broken(TigParams{},
                        make_break_state(1.0));
  EXPECT_LT(broken.ids_sat_n(), 1e-9);
}

TEST(DefectState, Describe) {
  EXPECT_EQ(DefectState{}.describe(), "fault-free");
  const DefectState gos = make_gos_state(GateTerminal::kCG, 25.0);
  EXPECT_EQ(gos.describe(), "GOS@CG(25nm2)");
  DefectState both;
  both.gos = GosDefect{GateTerminal::kPGS, 25.0};
  both.nw_break = BreakDefect{1.0};
  EXPECT_NE(both.describe().find("GOS@PGS"), std::string::npos);
  EXPECT_NE(both.describe().find("NW-break"), std::string::npos);
}

}  // namespace
}  // namespace cpsinw::device
