// Cross-class collapse table: every (gate kind, transistor fault) mapping
// onto a line stuck-at representative is pinned against brute-force
// dictionary comparison, and collapsed universes are pinned behaviourally —
// each collapsed-away fault's simulated record equals its representative's
// record — plus byte-identical campaign JSON at 1/2/8 threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "engine/campaign.hpp"
#include "faults/eval_context.hpp"
#include "faults/fault_list.hpp"
#include "faults/fault_sim.hpp"
#include "gates/dictionary_cache.hpp"
#include "gates/fault_dictionary.hpp"
#include "logic/benchmarks.hpp"
#include "util/rng.hpp"

namespace cpsinw::faults {
namespace {

using gates::CellKind;
using gates::FaultAnalysis;
using logic::Circuit;
using logic::LogicV;
using logic::NetId;
using logic::Pattern;

std::vector<Pattern> random_patterns(const Circuit& ckt, int count,
                                     std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  std::vector<Pattern> out;
  for (int k = 0; k < count; ++k) {
    Pattern p(ckt.primary_inputs().size());
    for (LogicV& v : p) v = logic::from_bool(rng.chance(0.5));
    out.push_back(std::move(p));
  }
  return out;
}

/// Brute-force reference for collapse_target: tries the output constants
/// and every (pin, value) forcing independently of the production code's
/// search order shortcuts.
CollapseTarget brute_force_target(CellKind kind, const FaultAnalysis& fa) {
  CollapseTarget t;
  if (!fa.compiled_binary) return t;
  const unsigned combos = static_cast<unsigned>(fa.rows.size());
  bool const0 = true;
  bool const1 = true;
  for (unsigned v = 0; v < combos; ++v) {
    const unsigned fv = (fa.compiled_truth >> v) & 1u;
    const0 &= fv == 0;
    const1 &= fv == 1;
  }
  if (const0 || const1) {
    t.kind = CollapseTarget::Kind::kOutputStuck;
    t.stuck_one = const1;
    t.contends = fa.compiled_contention != 0;
    return t;
  }
  const int n_in = gates::input_count(kind);
  for (int i = 0; i < n_in; ++i) {
    for (const bool b : {false, true}) {
      bool match = true;
      for (unsigned v = 0; v < combos && match; ++v) {
        const unsigned forced = b ? (v | (1u << i))
                                  : (v & ~(1u << static_cast<unsigned>(i)));
        match = ((fa.compiled_truth >> v) & 1u) ==
                gates::good_output(kind, forced);
      }
      if (match) {
        t.kind = CollapseTarget::Kind::kInputStuck;
        t.pin = i;
        t.stuck_one = b;
        t.contends = fa.compiled_contention != 0;
        return t;
      }
    }
  }
  return t;
}

TEST(CollapseTable, EveryMappingMatchesBruteForceDictionaryComparison) {
  int mapped = 0;
  for (const CellKind kind : gates::all_cell_kinds()) {
    for (const gates::CellFault& cf :
         gates::enumerate_transistor_faults(kind)) {
      const FaultAnalysis& fa =
          gates::DictionaryCache::global().lookup(kind, cf);
      const CollapseTarget got = collapse_target(kind, fa);
      const CollapseTarget want = brute_force_target(kind, fa);
      const std::string label = std::string(gates::to_string(kind)) + " t" +
                                std::to_string(cf.transistor) + " " +
                                gates::to_string(cf.kind);
      EXPECT_EQ(static_cast<int>(got.kind), static_cast<int>(want.kind))
          << label;
      EXPECT_EQ(got.pin, want.pin) << label;
      EXPECT_EQ(got.stuck_one, want.stuck_one) << label;
      EXPECT_EQ(got.contends, want.contends) << label;

      // Ineligible dictionaries never map.
      if (!fa.compiled_binary) {
        EXPECT_EQ(got.kind, CollapseTarget::Kind::kNone) << label;
      }
      // A mapping with an IDDQ signature must say so.
      if (got.kind != CollapseTarget::Kind::kNone) {
        EXPECT_EQ(got.contends, fa.compiled_contention != 0) << label;
      }
      // A mapping really is the claimed line fault, row by row.
      if (got.kind == CollapseTarget::Kind::kOutputStuck) {
        for (unsigned v = 0; v < fa.rows.size(); ++v)
          EXPECT_EQ(fa.faulty_logic(v), got.stuck_one ? 1 : 0) << label;
        ++mapped;
      } else if (got.kind == CollapseTarget::Kind::kInputStuck) {
        for (unsigned v = 0; v < fa.rows.size(); ++v) {
          const unsigned forced =
              got.stuck_one
                  ? (v | (1u << static_cast<unsigned>(got.pin)))
                  : (v & ~(1u << static_cast<unsigned>(got.pin)));
          EXPECT_EQ(fa.faulty_logic(v),
                    static_cast<int>(gates::good_output(kind, forced)))
              << label << " row " << v;
        }
        ++mapped;
      }
    }
  }
  // The table is not vacuous: the CP library has faults of both shapes.
  EXPECT_GT(mapped, 0);
}

struct Named {
  std::string name;
  Circuit ckt;
};

std::vector<Named> roster() {
  std::vector<Named> out;
  // Every circuit here contains at least one gate kind with a mappable
  // transistor fault (NAND2/NOR2/XOR2/INV stuck-ons) — pure XOR3/MAJ3
  // designs like full_adder have none and would make the pins vacuous.
  out.push_back({"c17", logic::c17()});
  out.push_back({"multiplier_2x2", logic::multiplier_2x2()});
  out.push_back({"alu_slice", logic::alu_slice()});
  out.push_back({"tmr_voter_3", logic::tmr_voter(3)});
  out.push_back({"random_a", logic::random_circuit(17, 6, 30)});
  out.push_back({"random_b", logic::random_circuit(71, 8, 48)});
  return out;
}

bool same_fault(const Fault& a, const Fault& b) {
  if (a.site != b.site) return false;
  if (a.site == FaultSite::kGateTransistor)
    return a.gate == b.gate &&
           a.cell_fault.transistor == b.cell_fault.transistor &&
           a.cell_fault.kind == b.cell_fault.kind;
  return a.net == b.net && a.gate == b.gate && a.pin == b.pin &&
         a.stuck_at_one == b.stuck_at_one;
}

TEST(CollapseTable, CollapsedFaultRecordsEqualTheirRepresentatives) {
  for (const Named& w : roster()) {
    FaultListOptions with;
    FaultListOptions without;
    without.cross_class_collapse = false;
    const std::vector<Fault> collapsed = generate_fault_list(w.ckt, with);
    const std::vector<Fault> full = generate_fault_list(w.ckt, without);
    ASSERT_LE(collapsed.size(), full.size()) << w.name;

    const EvalContext ctx(w.ckt, random_patterns(w.ckt, 120, 97));
    const FaultSimulator fsim(w.ckt);
    int checked = 0;
    for (const Fault& f : full) {
      if (f.site != FaultSite::kGateTransistor) continue;
      bool kept = false;
      for (const Fault& c : collapsed)
        if (same_fault(f, c)) {
          kept = true;
          break;
        }
      if (kept) continue;
      const gates::FaultAnalysis& fa = ctx.dictionary(
          w.ckt.gate(f.gate).kind, f.cell_fault);
      const CollapseTarget t =
          collapse_target(w.ckt.gate(f.gate).kind, fa);
      if (t.kind == CollapseTarget::Kind::kNone ||
          !collapse_representable(w.ckt, w.ckt.gate(f.gate), t))
        continue;  // removed by the pre-existing within-gate dedup instead
      const logic::GateInst& g = w.ckt.gate(f.gate);
      Fault rep =
          t.kind == CollapseTarget::Kind::kOutputStuck
              ? Fault::net_stuck(g.out, t.stuck_one)
              : (w.ckt.fanout(g.in[static_cast<std::size_t>(t.pin)]).size() >
                         1
                     ? Fault::input_stuck(g.id, t.pin, t.stuck_one)
                     : Fault::net_stuck(
                           g.in[static_cast<std::size_t>(t.pin)],
                           t.stuck_one));
      // A contending mapping is only collapsed when IDDQ is unobserved,
      // and its equivalence claim only covers logic observation.
      for (const bool iddq : {false, true}) {
        if (iddq && t.contends) continue;
        FaultSimOptions options;
        options.observe_iddq = iddq;
        const DetectionRecord got =
            fsim.run_range(ctx, {f}, 0, 1, options)[0];
        const DetectionRecord want =
            fsim.run_range(ctx, {rep}, 0, 1, options)[0];
        const std::string label =
            w.name + " " + f.describe(w.ckt) + " -> " + rep.describe(w.ckt);
        EXPECT_EQ(got.detected_output, want.detected_output) << label;
        EXPECT_EQ(got.detected_iddq, want.detected_iddq) << label;
        EXPECT_EQ(got.potential, want.potential) << label;
        EXPECT_EQ(got.first_pattern, want.first_pattern) << label;
      }
      ++checked;
    }
    // Collapse actually removes cross-class faults on these circuits.
    EXPECT_GT(checked, 0) << w.name;
  }
}

// When the campaign observes IDDQ, contending mappings are disqualified:
// every fault removed relative to the IDDQ-aware list must be
// contention-free, and every contending mapped fault must be kept.
TEST(CollapseTable, IddqObservationKeepsContendingFaults) {
  for (const Named& w : roster()) {
    FaultListOptions logic_only;
    FaultListOptions with_iddq;
    with_iddq.observe_iddq = true;
    const std::vector<Fault> lo = generate_fault_list(w.ckt, logic_only);
    const std::vector<Fault> hi = generate_fault_list(w.ckt, with_iddq);
    ASSERT_LE(lo.size(), hi.size()) << w.name;

    int contending_kept = 0;
    for (const Fault& f : hi) {
      if (f.site != FaultSite::kGateTransistor) continue;
      const gates::CellKind kind = w.ckt.gate(f.gate).kind;
      const FaultAnalysis& fa =
          gates::DictionaryCache::global().lookup(kind, f.cell_fault);
      const CollapseTarget t = collapse_target(kind, fa);
      bool in_logic_only = false;
      for (const Fault& c : lo)
        if (same_fault(f, c)) {
          in_logic_only = true;
          break;
        }
      if (t.kind != CollapseTarget::Kind::kNone && t.contends &&
          collapse_representable(w.ckt, w.ckt.gate(f.gate), t)) {
        EXPECT_FALSE(in_logic_only) << w.name << " " << f.describe(w.ckt);
        ++contending_kept;
      } else {
        EXPECT_TRUE(in_logic_only) << w.name << " " << f.describe(w.ckt);
      }
    }
    EXPECT_GT(contending_kept, 0) << w.name;
  }
}

TEST(CollapseTable, CampaignJsonByteIdenticalAcrossThreadCounts) {
  engine::CampaignSpec spec;
  spec.jobs.push_back({"c17", logic::c17()});
  spec.jobs.push_back({"full_adder", logic::full_adder()});
  spec.patterns.kind = engine::PatternSourceSpec::Kind::kRandom;
  spec.patterns.random_count = 96;
  spec.seed = 20250808;
  spec.shard_size = 7;
  spec.executor.backend = engine::ExecutorBackend::kThreadPool;

  std::string first;
  for (const int threads : {1, 2, 8}) {
    spec.threads = threads;
    const engine::CampaignReport report = engine::run_campaign(spec);
    ASSERT_TRUE(report.ok()) << report.error;
    const std::string json = report.to_json();
    if (first.empty())
      first = json;
    else
      EXPECT_EQ(json, first) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace cpsinw::faults
