#include "faults/diagnosis.hpp"

#include <gtest/gtest.h>

#include "logic/benchmarks.hpp"

namespace cpsinw::faults {
namespace {

using logic::LogicV;
using logic::Pattern;

std::vector<Pattern> exhaustive_patterns(const logic::Circuit& ckt) {
  const int n = static_cast<int>(ckt.primary_inputs().size());
  std::vector<Pattern> out;
  for (unsigned v = 0; v < (1u << n); ++v) {
    Pattern p(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      p[static_cast<std::size_t>(i)] = logic::from_bool((v >> i) & 1u);
    out.push_back(std::move(p));
  }
  return out;
}

/// Property: for every injected fault, diagnosis against the simulated
/// tester responses ranks a fully-explaining candidate first, and the
/// injected fault itself explains everything.
TEST(Diagnosis, InjectedFaultIsAlwaysFullyExplained) {
  const logic::Circuit ckt = logic::full_adder();
  const auto universe = generate_fault_list(ckt);
  const auto patterns = exhaustive_patterns(ckt);

  int checked = 0;
  for (std::size_t fi = 0; fi < universe.size(); fi += 5) {  // sample
    const Fault& injected = universe[fi];
    std::vector<Observation> obs;
    for (const Pattern& p : patterns)
      obs.push_back(predict_observation(ckt, injected, p));

    const auto ranked = diagnose(ckt, obs, universe);
    ASSERT_FALSE(ranked.empty());
    EXPECT_TRUE(ranked.front().explains_all())
        << injected.describe(ckt);
    bool injected_explains = false;
    for (const DiagnosisCandidate& c : ranked)
      if (c.fault == injected && c.explains_all()) injected_explains = true;
    EXPECT_TRUE(injected_explains) << injected.describe(ckt);
    ++checked;
  }
  EXPECT_GT(checked, 5);
}

TEST(Diagnosis, GoodMachineResponsesExonerateHardFaults) {
  const logic::Circuit ckt = logic::c17();
  faults::FaultListOptions flo;
  flo.include_transistor_faults = false;
  const auto universe = generate_fault_list(ckt, flo);
  const auto patterns = exhaustive_patterns(ckt);
  std::vector<Observation> obs;
  for (const Pattern& p : patterns)
    obs.push_back(predict_good_observation(ckt, p));
  const auto ranked = diagnose(ckt, obs, universe);
  // With exhaustive clean responses, no line fault can fully explain the
  // behaviour (c17 has no redundant stuck-at faults).
  for (const DiagnosisCandidate& c : ranked)
    EXPECT_FALSE(c.explains_all()) << c.fault.describe(ckt);
}

TEST(Diagnosis, IddqSignatureSeparatesPolarityFaultLocations) {
  // The paper's Table III localization story: each polarity fault has a
  // unique detecting vector, so the IDDQ signatures separate the devices.
  logic::Circuit c;
  const auto a = c.add_primary_input("a");
  const auto b = c.add_primary_input("b");
  const auto y = c.add_net("y");
  c.add_gate(gates::CellKind::kXor2, {a, b}, y);
  c.mark_primary_output(y);
  c.finalize();

  const Fault t1 = Fault::transistor(
      0, 0, gates::TransistorFault::kStuckAtNType);
  const Fault t2 = Fault::transistor(
      0, 1, gates::TransistorFault::kStuckAtNType);
  const auto patterns = exhaustive_patterns(c);
  std::vector<Observation> obs;
  for (const Pattern& p : patterns)
    obs.push_back(predict_observation(c, t1, p));
  const auto ranked = diagnose(c, obs, {t1, t2});
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_TRUE(ranked.front().fault == t1);
  EXPECT_TRUE(ranked.front().explains_all());
  EXPECT_FALSE(ranked.back().explains_all());
}

TEST(Diagnosis, ChannelBreakDecisionIsATwoCandidateDiagnosis) {
  // Intact vs broken under normal operation are indistinguishable (the
  // masking result); the dual-rail stimulus from the CB procedure is what
  // separates them — at cell level this shows up as the broken device
  // explaining the *clean* responses that the intact polarity fault
  // cannot.
  logic::Circuit c;
  const auto a = c.add_primary_input("a");
  const auto b = c.add_primary_input("b");
  const auto y = c.add_net("y");
  c.add_gate(gates::CellKind::kXor2, {a, b}, y);
  c.mark_primary_output(y);
  c.finalize();

  const Fault broken = Fault::transistor(
      0, 2, gates::TransistorFault::kStuckOpen);
  const auto patterns = exhaustive_patterns(c);
  std::vector<Observation> obs;
  for (const Pattern& p : patterns)
    obs.push_back(predict_observation(c, broken, p));
  // Under consistent-rail patterns, the broken device responds like the
  // good machine — its observations match the good predictions.
  for (std::size_t k = 0; k < patterns.size(); ++k) {
    const Observation good = predict_good_observation(c, patterns[k]);
    EXPECT_EQ(obs[k].iddq_elevated, good.iddq_elevated);
  }
}

TEST(Diagnosis, PredictionsMarkLineContention) {
  const logic::Circuit ckt = logic::c17();
  // SA1 on an input net: patterns driving it to 0 fight the short.
  const Fault f = Fault::net_stuck(ckt.find_net("1"), true);
  Pattern p(5, LogicV::k0);
  const Observation obs = predict_observation(ckt, f, p);
  EXPECT_TRUE(obs.iddq_elevated);
  Pattern p1 = p;
  p1[0] = LogicV::k1;  // net "1" driven to its stuck value: no fight
  EXPECT_FALSE(predict_observation(ckt, f, p1).iddq_elevated);
}

}  // namespace
}  // namespace cpsinw::faults
