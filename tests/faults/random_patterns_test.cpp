#include "faults/random_patterns.hpp"

#include <gtest/gtest.h>

#include "logic/benchmarks.hpp"

namespace cpsinw::faults {
namespace {

TEST(RandomPatterns, CoverageCurveIsMonotoneAndReproducible) {
  const logic::Circuit ckt = logic::c17();
  const auto faults = generate_fault_list(ckt);
  RandomPatternOptions opt;
  opt.seed = 7;
  opt.max_patterns = 64;
  const RandomPatternResult a = run_random_patterns(ckt, faults, opt);
  const RandomPatternResult b = run_random_patterns(ckt, faults, opt);
  ASSERT_FALSE(a.curve.empty());
  ASSERT_EQ(a.curve.size(), b.curve.size());
  double prev = 0.0;
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_GE(a.curve[i].coverage, prev);
    prev = a.curve[i].coverage;
    EXPECT_DOUBLE_EQ(a.curve[i].coverage, b.curve[i].coverage);
  }
}

TEST(RandomPatterns, IddqObservationLiftsTheCeiling) {
  // The paper's message as a random-pattern experiment: without IDDQ the
  // pull-up polarity faults of DP logic cap the achievable coverage.
  const logic::Circuit ckt = logic::full_adder();
  const auto faults = generate_fault_list(ckt);
  RandomPatternOptions with;
  with.max_patterns = 128;
  RandomPatternOptions without = with;
  without.sim.observe_iddq = false;
  const double cov_with =
      run_random_patterns(ckt, faults, with).final_coverage();
  const double cov_without =
      run_random_patterns(ckt, faults, without).final_coverage();
  EXPECT_GT(cov_with, cov_without + 0.1);
}

TEST(RandomPatterns, SequentialSimulationCatchesStuckOpens) {
  // With retention threaded between consecutive random patterns, SP
  // stuck-opens become detectable by chance two-pattern sequences.
  const logic::Circuit ckt = logic::c17();
  std::vector<Fault> opens;
  for (const logic::GateInst& g : ckt.gates())
    for (int t = 0; t < 4; ++t)
      opens.push_back(
          Fault::transistor(g.id, t, gates::TransistorFault::kStuckOpen));
  RandomPatternOptions opt;
  opt.max_patterns = 192;
  opt.sim.sequential_patterns = true;
  const RandomPatternResult r = run_random_patterns(ckt, opens, opt);
  EXPECT_GT(r.final_coverage(), 0.5);
}

TEST(RandomPatterns, StaleLimitStopsEarly) {
  const logic::Circuit ckt = logic::c17();
  faults::FaultListOptions flo;
  flo.include_transistor_faults = false;
  const auto faults = generate_fault_list(ckt, flo);
  RandomPatternOptions opt;
  opt.max_patterns = 10000;
  opt.stale_limit = 8;
  const RandomPatternResult r = run_random_patterns(ckt, faults, opt);
  EXPECT_LT(static_cast<int>(r.patterns.size()), 10000);
}

TEST(RandomPatterns, ValidatesOptions) {
  const logic::Circuit ckt = logic::c17();
  RandomPatternOptions bad;
  bad.max_patterns = 0;
  EXPECT_THROW((void)run_random_patterns(ckt, {}, bad),
               std::invalid_argument);
  bad = RandomPatternOptions{};
  bad.one_probability = 1.0;
  EXPECT_THROW((void)run_random_patterns(ckt, {}, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace cpsinw::faults
