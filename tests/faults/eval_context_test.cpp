// Golden-equivalence suite for the shared evaluation context: the
// context-based run/run_range paths — including the packed 64-pattern
// transistor batch — must be bit-identical to the seed's serial
// algorithm, re-implemented here verbatim as the reference.
#include "faults/eval_context.hpp"

#include <gtest/gtest.h>

#include "atpg/two_pattern.hpp"
#include "faults/fault_sim.hpp"
#include "gates/fault_dictionary.hpp"
#include "logic/benchmarks.hpp"
#include "util/rng.hpp"

namespace cpsinw::faults {
namespace {

using logic::LogicV;
using logic::Pattern;

std::vector<Pattern> random_patterns(const logic::Circuit& ckt, int count,
                                     std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  std::vector<Pattern> out;
  for (int k = 0; k < count; ++k) {
    Pattern p(ckt.primary_inputs().size());
    for (LogicV& v : p) v = logic::from_bool(rng.chance(0.5));
    out.push_back(std::move(p));
  }
  return out;
}

/// The seed's serial transistor-fault algorithm, verbatim: scalar good
/// machine per pattern, ad-hoc analyze_fault, retained-state threading.
DetectionRecord reference_transistor(const logic::Circuit& ckt,
                                     const Fault& fault,
                                     const std::vector<Pattern>& patterns,
                                     const FaultSimOptions& options) {
  const logic::Simulator sim(ckt);
  const logic::GateFault gf{fault.gate, fault.cell_fault};
  const gates::FaultAnalysis fa =
      gates::analyze_fault(ckt.gate(fault.gate).kind, fault.cell_fault);

  DetectionRecord rec;
  std::vector<LogicV> state;
  for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
    const Pattern& p = patterns[pi];
    const logic::SimResult good = sim.simulate(p);
    const logic::SimResult bad = sim.simulate_faulty_with(
        p, gf, fa, options.sequential_patterns && !state.empty() ? &state
                                                                 : nullptr);
    if (options.sequential_patterns) state = bad.net_values;

    bool hit = false;
    if (bad.iddq_flag && options.observe_iddq) {
      rec.detected_iddq = true;
      hit = true;
    }
    for (const logic::NetId po : ckt.primary_outputs()) {
      const LogicV g = good.value(po);
      const LogicV b = bad.value(po);
      if (is_binary(g) && is_binary(b) && g != b) {
        rec.detected_output = true;
        hit = true;
      } else if (is_binary(g) && !is_binary(b)) {
        rec.potential = true;
      }
    }
    if (hit && rec.first_pattern < 0)
      rec.first_pattern = static_cast<int>(pi);
  }
  return rec;
}

/// Reference for line faults: the untouched single-pattern check, one
/// pattern at a time (equivalent to the seed's packed batches).
DetectionRecord reference_line(const FaultSimulator& fsim, const Fault& fault,
                               const std::vector<Pattern>& patterns) {
  DetectionRecord rec;
  for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
    if (fsim.line_fault_detected(fault, patterns[pi])) {
      rec.detected_output = true;
      rec.first_pattern = static_cast<int>(pi);
      break;
    }
  }
  return rec;
}

void expect_record_eq(const DetectionRecord& got, const DetectionRecord& want,
                      const std::string& label) {
  EXPECT_EQ(got.detected_output, want.detected_output) << label;
  EXPECT_EQ(got.detected_iddq, want.detected_iddq) << label;
  EXPECT_EQ(got.potential, want.potential) << label;
  EXPECT_EQ(got.first_pattern, want.first_pattern) << label;
}

struct Workload {
  std::string name;
  logic::Circuit ckt;
  std::vector<Fault> faults;
  std::vector<Pattern> patterns;
};

std::vector<Workload> workloads() {
  std::vector<Workload> out;
  {
    Workload w;
    w.name = "full_adder";
    w.ckt = logic::full_adder();
    FaultListOptions flo;
    flo.collapse = false;  // keep every dictionary shape in play
    w.faults = generate_fault_list(w.ckt, flo);
    // 70 patterns: crosses the 64-pattern batch boundary.
    w.patterns = random_patterns(w.ckt, 70, 11);
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "multiplier_2x2";
    w.ckt = logic::multiplier_2x2();
    w.faults = generate_fault_list(w.ckt, {});
    w.patterns = random_patterns(w.ckt, 66, 23);
    out.push_back(std::move(w));
  }
  return out;
}

TEST(EvalContext, RunMatchesSeedSerialReferenceForAllFaultClasses) {
  for (const Workload& w : workloads()) {
    const FaultSimulator fsim(w.ckt);
    const EvalContext ctx(w.ckt, w.patterns);
    ASSERT_TRUE(ctx.packed()) << w.name;
    for (const bool observe_iddq : {true, false}) {
      for (const bool sequential : {true, false}) {
        FaultSimOptions opt;
        opt.observe_iddq = observe_iddq;
        opt.sequential_patterns = sequential;
        const FaultSimReport got = fsim.run(ctx, w.faults, opt);
        ASSERT_EQ(got.records.size(), w.faults.size());
        for (std::size_t fi = 0; fi < w.faults.size(); ++fi) {
          const Fault& f = w.faults[fi];
          const DetectionRecord want =
              f.site == FaultSite::kGateTransistor
                  ? reference_transistor(w.ckt, f, w.patterns, opt)
                  : reference_line(fsim, f, w.patterns);
          expect_record_eq(got.records[fi], want,
                           w.name + " fault " + std::to_string(fi) +
                               " iddq=" + std::to_string(observe_iddq) +
                               " seq=" + std::to_string(sequential));
        }
      }
    }
  }
}

TEST(EvalContext, PackedTransistorBatchIsBitIdenticalToSerialPath) {
  for (const Workload& w : workloads()) {
    const FaultSimulator fsim(w.ckt);
    const EvalContext ctx(w.ckt, w.patterns);

    // The universe must actually exercise both paths.
    int packed_eligible = 0, serial_only = 0;
    for (const Fault& f : w.faults) {
      if (f.site != FaultSite::kGateTransistor) continue;
      const gates::FaultAnalysis& fa =
          ctx.dictionary(w.ckt.gate(f.gate).kind, f.cell_fault);
      (!fa.needs_sequence && !fa.marginal_detectable) ? ++packed_eligible
                                                      : ++serial_only;
    }
    ASSERT_GT(packed_eligible, 0) << w.name;
    ASSERT_GT(serial_only, 0) << w.name;

    FaultSimOptions batched;
    FaultSimOptions serial;
    serial.batch_transistor_faults = false;
    const FaultSimReport a = fsim.run(ctx, w.faults, batched);
    const FaultSimReport b = fsim.run(ctx, w.faults, serial);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t fi = 0; fi < a.records.size(); ++fi)
      expect_record_eq(a.records[fi], b.records[fi],
                       w.name + " fault " + std::to_string(fi));
  }
}

TEST(EvalContext, RunRangePartitionConcatenationMatchesWholeRun) {
  const Workload w = workloads()[0];
  const FaultSimulator fsim(w.ckt);
  const EvalContext ctx(w.ckt, w.patterns);
  const FaultSimReport whole = fsim.run(ctx, w.faults);

  std::vector<DetectionRecord> stitched;
  const std::size_t step = 7;
  for (std::size_t begin = 0; begin < w.faults.size(); begin += step) {
    const std::size_t end = std::min(w.faults.size(), begin + step);
    const auto part = fsim.run_range(ctx, w.faults, begin, end, {});
    stitched.insert(stitched.end(), part.begin(), part.end());
  }
  ASSERT_EQ(stitched.size(), whole.records.size());
  for (std::size_t fi = 0; fi < stitched.size(); ++fi)
    expect_record_eq(stitched[fi], whole.records[fi],
                     "fault " + std::to_string(fi));
}

TEST(EvalContext, ContextFreeWrappersMatchContextPath) {
  const Workload w = workloads()[1];
  const FaultSimulator fsim(w.ckt);
  const EvalContext ctx(w.ckt, w.patterns);
  const FaultSimReport via_ctx = fsim.run(ctx, w.faults);
  const FaultSimReport via_wrapper = fsim.run(w.faults, w.patterns);
  ASSERT_EQ(via_ctx.records.size(), via_wrapper.records.size());
  for (std::size_t fi = 0; fi < via_ctx.records.size(); ++fi)
    expect_record_eq(via_ctx.records[fi], via_wrapper.records[fi],
                     "fault " + std::to_string(fi));
}

TEST(EvalContext, TwoPatternStuckOpenSequencesRetainState) {
  // c17 is NAND-only: its stuck-opens have floating rows, so two-pattern
  // retention tests exist (dynamic-polarity XOR cells have none).
  const logic::Circuit ckt = logic::c17();
  const FaultSimulator fsim(ckt);
  int verified = 0;
  for (const logic::GateInst& g : ckt.gates()) {
    const int nt = static_cast<int>(gates::cell(g.kind).transistors.size());
    for (int t = 0; t < nt; ++t) {
      const Fault f =
          Fault::transistor(g.id, t, gates::TransistorFault::kStuckOpen);
      const atpg::TwoPatternResult r = atpg::generate_two_pattern(ckt, f, {});
      if (r.status != atpg::AtpgStatus::kDetected || !r.test) continue;
      ++verified;
      // The (init, test) retention sequence must detect through the
      // context path exactly as through the seed serial check, with
      // batching enabled and disabled (floating dictionaries always take
      // the retained-state serial path).
      const EvalContext ctx(ckt, {r.test->init, r.test->test});
      for (const bool batching : {true, false}) {
        FaultSimOptions opt;
        opt.batch_transistor_faults = batching;
        const FaultSimReport rep = fsim.run(ctx, {f}, opt);
        EXPECT_TRUE(rep.records[0].detected_output)
            << g.name << ".t" << t << " batching=" << batching;
        EXPECT_EQ(rep.records[0].first_pattern, 1)
            << g.name << ".t" << t << " batching=" << batching;
      }
      // Without sequence threading the retained value is lost: the same
      // two patterns must not report a definite output detection.
      FaultSimOptions no_seq;
      no_seq.sequential_patterns = false;
      const FaultSimReport rep =
          fsim.run(ctx, {f}, no_seq);
      EXPECT_FALSE(rep.records[0].detected_output) << g.name << ".t" << t;
    }
  }
  EXPECT_GT(verified, 0);
}

TEST(EvalContext, XBearingPatternsStayScalarAndRejectLineFaults) {
  const logic::Circuit ckt = logic::full_adder();
  std::vector<Pattern> patterns = random_patterns(ckt, 4, 3);
  patterns[2][0] = LogicV::kX;
  const EvalContext ctx(ckt, patterns);
  EXPECT_FALSE(ctx.packed());
  EXPECT_TRUE(ctx.batches().empty());

  const FaultSimulator fsim(ckt);
  // Transistor faults still simulate (scalar serial path)...
  std::vector<Fault> trans;
  for (const Fault& f : generate_fault_list(ckt, {}))
    if (f.site == FaultSite::kGateTransistor) trans.push_back(f);
  ASSERT_FALSE(trans.empty());
  const FaultSimReport got = fsim.run(ctx, trans, {});
  ASSERT_EQ(got.records.size(), trans.size());
  for (std::size_t fi = 0; fi < trans.size(); ++fi)
    expect_record_eq(got.records[fi],
                     reference_transistor(ckt, trans[fi], patterns, {}),
                     "fault " + std::to_string(fi));

  // ...while the packed line path refuses, like the seed did.
  const Fault line = Fault::net_stuck(ckt.primary_outputs()[0], false);
  EXPECT_THROW((void)fsim.run(ctx, {line}, {}), std::invalid_argument);
}

TEST(EvalContext, LineFaultDetectedOverloadMatchesSinglePatternCheck) {
  const Workload w = workloads()[0];
  const FaultSimulator fsim(w.ckt);
  const EvalContext ctx(w.ckt, w.patterns);
  int line_faults = 0;
  for (const Fault& f : w.faults) {
    if (f.site == FaultSite::kGateTransistor) continue;
    if (++line_faults % 3 != 0) continue;  // subsample for speed
    for (std::size_t pi = 0; pi < w.patterns.size(); pi += 5)
      EXPECT_EQ(fsim.line_fault_detected(ctx, f, pi),
                fsim.line_fault_detected(f, w.patterns[pi]))
          << "pattern " << pi;
  }
  EXPECT_GT(line_faults, 0);
}

TEST(EvalContext, RejectsForeignCircuitAndBadRanges) {
  const logic::Circuit a = logic::full_adder();
  const logic::Circuit b = logic::c17();
  const FaultSimulator fsim(a);
  const EvalContext ctx_b(b, random_patterns(b, 4, 5));
  EXPECT_THROW((void)fsim.run(ctx_b, {}, {}), std::invalid_argument);

  const EvalContext ctx_a(a, random_patterns(a, 4, 5));
  const std::vector<Fault> faults = generate_fault_list(a, {});
  EXPECT_THROW(
      (void)fsim.run_range(ctx_a, faults, 2, 1, {}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)fsim.run_range(ctx_a, faults, 0, faults.size() + 1, {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace cpsinw::faults
