#include "faults/ifa.hpp"

#include <gtest/gtest.h>

#include "logic/benchmarks.hpp"

namespace cpsinw::faults {
namespace {

TEST(Ifa, TableOneMappingIsComplete) {
  // Every process step lists at least one defect mechanism (paper Table I).
  for (const ProcessStep step : all_process_steps()) {
    EXPECT_FALSE(mechanisms_of(step).empty()) << to_string(step);
    EXPECT_STRNE(outcome_of(step), "?");
    EXPECT_STRNE(to_string(step), "?");
  }
  // Spot-check the paper's rows.
  EXPECT_EQ(mechanisms_of(ProcessStep::kOxidation).front(),
            DefectMechanism::kGateOxideShort);
  EXPECT_EQ(mechanisms_of(ProcessStep::kBoschEtch).front(),
            DefectMechanism::kNanowireBreak);
  EXPECT_EQ(mechanisms_of(ProcessStep::kPolyDeposition).front(),
            DefectMechanism::kGateBridge);
  EXPECT_EQ(mechanisms_of(ProcessStep::kMetallization).size(), 2u);
}

TEST(Ifa, CoverageMatrixMatchesPaperConclusions) {
  // Nanowire break: SOF in SP gates, new procedure in DP gates.
  const auto sp_break =
      coverage_for(DefectMechanism::kNanowireBreak, false);
  EXPECT_TRUE(sp_break.stuck_open);
  EXPECT_FALSE(sp_break.needs_cb_procedure);
  const auto dp_break = coverage_for(DefectMechanism::kNanowireBreak, true);
  EXPECT_TRUE(dp_break.needs_cb_procedure);
  EXPECT_FALSE(dp_break.stuck_open);

  // Polarity bridge: the new stuck-at-n/p models in DP gates.
  const auto dp_bridge = coverage_for(DefectMechanism::kGateBridge, true);
  EXPECT_TRUE(dp_bridge.stuck_at_polarity);
  EXPECT_TRUE(dp_bridge.iddq);
  const auto sp_bridge = coverage_for(DefectMechanism::kGateBridge, false);
  EXPECT_TRUE(sp_bridge.stuck_open);

  // GOS: parametric (delay + IDDQ).
  const auto gos = coverage_for(DefectMechanism::kGateOxideShort, true);
  EXPECT_TRUE(gos.delay_fault);
  EXPECT_TRUE(gos.iddq);

  // Floating gate: V_cut-dependent combination (paper Sec. V-A).
  const auto fl = coverage_for(DefectMechanism::kFloatingGate, false);
  EXPECT_TRUE(fl.delay_fault);
  EXPECT_TRUE(fl.stuck_on);
  EXPECT_TRUE(fl.stuck_open);
}

TEST(Ifa, SamplingIsDeterministicAndComplete) {
  const logic::Circuit ckt = logic::ripple_adder(2);
  IfaOptions opt;
  opt.seed = 42;
  opt.sample_count = 500;
  const IfaReport a = run_ifa(ckt, opt);
  const IfaReport b = run_ifa(ckt, opt);
  ASSERT_EQ(a.defects.size(), 500u);
  ASSERT_EQ(b.defects.size(), 500u);
  for (std::size_t i = 0; i < a.defects.size(); ++i) {
    EXPECT_EQ(a.defects[i].step, b.defects[i].step);
    EXPECT_EQ(a.defects[i].mechanism, b.defects[i].mechanism);
  }
  int sum = 0;
  for (const auto& [step, count] : a.per_step) sum += count;
  EXPECT_EQ(sum, 500);
}

TEST(Ifa, DpCircuitsAccumulateMaskedBreaks) {
  // A pure-DP circuit: every sampled nanowire break needs the procedure.
  const logic::Circuit dp = logic::xor3_parity_chain(9);
  IfaOptions opt;
  opt.sample_count = 400;
  const IfaReport rep = run_ifa(dp, opt);
  int breaks = 0;
  for (const auto& d : rep.defects)
    if (d.mechanism == DefectMechanism::kNanowireBreak) ++breaks;
  EXPECT_GT(breaks, 0);
  EXPECT_EQ(rep.masked_without_cb, breaks);
}

TEST(Ifa, GosDefectsAreParametricOnly) {
  const logic::Circuit ckt = logic::full_adder();
  IfaOptions opt;
  opt.sample_count = 300;
  const IfaReport rep = run_ifa(ckt, opt);
  for (const auto& d : rep.defects) {
    if (d.mechanism == DefectMechanism::kGateOxideShort) {
      EXPECT_FALSE(d.fault.has_value());
    }
    if (d.mechanism == DefectMechanism::kGateBridge) {
      ASSERT_TRUE(d.fault.has_value());
      const bool polarity =
          d.fault->cell_fault.kind ==
              gates::TransistorFault::kStuckAtNType ||
          d.fault->cell_fault.kind == gates::TransistorFault::kStuckAtPType;
      EXPECT_TRUE(polarity);
    }
  }
  EXPECT_GT(rep.parametric_only, 0);
}

TEST(Ifa, ValidatesOptions) {
  const logic::Circuit ckt = logic::full_adder();
  IfaOptions bad;
  bad.sample_count = -1;
  EXPECT_THROW((void)run_ifa(ckt, bad), std::invalid_argument);
  bad = IfaOptions{};
  bad.step_weights = {1.0};
  EXPECT_THROW((void)run_ifa(ckt, bad), std::invalid_argument);
  bad = IfaOptions{};
  bad.step_weights = {0, 0, 0, 0, 0};
  EXPECT_THROW((void)run_ifa(ckt, bad), std::invalid_argument);
}

}  // namespace
}  // namespace cpsinw::faults
