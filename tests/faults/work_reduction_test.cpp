// Work-reduction equivalence suite: fault dropping and critical-path
// tracing must be invisible in full detection mode (bit-identical records
// with every switch combination), the first-only detection mode must be a
// well-defined truncation contract that serial and packed paths agree on,
// and sampled-coverage accounting must survive shard failures.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "engine/campaign.hpp"
#include "engine/executor.hpp"
#include "engine/shard.hpp"
#include "faults/eval_context.hpp"
#include "faults/fault_list.hpp"
#include "faults/fault_sim.hpp"
#include "logic/benchmarks.hpp"
#include "util/rng.hpp"

namespace cpsinw::faults {
namespace {

using logic::Circuit;
using logic::LogicV;
using logic::Pattern;

std::vector<Pattern> random_patterns(const Circuit& ckt, int count,
                                     std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  std::vector<Pattern> out;
  for (int k = 0; k < count; ++k) {
    Pattern p(ckt.primary_inputs().size());
    for (LogicV& v : p) v = logic::from_bool(rng.chance(0.5));
    out.push_back(std::move(p));
  }
  return out;
}

struct Named {
  std::string name;
  Circuit ckt;
};

std::vector<Named> roster() {
  std::vector<Named> out;
  out.push_back({"c17", logic::c17()});
  out.push_back({"full_adder", logic::full_adder()});
  out.push_back({"alu_slice", logic::alu_slice()});
  out.push_back({"parity_tree_9", logic::parity_tree(9)});
  out.push_back({"ripple_adder_4", logic::ripple_adder(4)});
  out.push_back({"random_a", logic::random_circuit(11, 6, 30)});
  out.push_back({"random_b", logic::random_circuit(23, 8, 60)});
  return out;
}

void expect_record_eq(const DetectionRecord& got, const DetectionRecord& want,
                      const std::string& label) {
  EXPECT_EQ(got.detected_output, want.detected_output) << label;
  EXPECT_EQ(got.detected_iddq, want.detected_iddq) << label;
  EXPECT_EQ(got.potential, want.potential) << label;
  EXPECT_EQ(got.first_pattern, want.first_pattern) << label;
}

// In full detection mode every combination of the work-reduction switches
// must produce bit-identical records: dropping, critical-path tracing,
// batching, for universes mixing all fault classes, with and without IDDQ
// observation.  The all-off corner is the PR-7 baseline.
TEST(WorkReduction, FullModeRecordsIdenticalAcrossAllSwitches) {
  for (const Named& w : roster()) {
    // 130 patterns: > 2 words, so the strip schedule (4-word first strip,
    // 16-word wide strips) exercises narrow, wide and ragged strips.
    const EvalContext ctx(w.ckt, random_patterns(w.ckt, 130, 7));
    const FaultSimulator fsim(w.ckt);
    FaultListOptions flo;
    flo.cross_class_collapse = false;  // keep every class in the universe
    const std::vector<Fault> universe = generate_fault_list(w.ckt, flo);

    for (const bool iddq : {false, true}) {
      FaultSimOptions base;
      base.observe_iddq = iddq;
      base.drop_detected = false;
      base.critical_path_tracing = false;
      const std::vector<DetectionRecord> want =
          fsim.run_range(ctx, universe, 0, universe.size(), base);

      for (const bool drop : {false, true}) {
        for (const bool cpt : {false, true}) {
          for (const bool batch : {false, true}) {
            FaultSimOptions opt = base;
            opt.drop_detected = drop;
            opt.critical_path_tracing = cpt;
            opt.batch_line_faults = batch;
            const std::vector<DetectionRecord> got =
                fsim.run_range(ctx, universe, 0, universe.size(), opt);
            ASSERT_EQ(got.size(), want.size());
            for (std::size_t i = 0; i < got.size(); ++i)
              expect_record_eq(
                  got[i], want[i],
                  w.name + " iddq=" + std::to_string(iddq) + " drop=" +
                      std::to_string(drop) + " cpt=" + std::to_string(cpt) +
                      " batch=" + std::to_string(batch) + " fault " +
                      std::to_string(i));
          }
        }
      }
    }
  }
}

// Critical-path tracing only arms on single-output fan-out-free cones and
// resolves the whole line universe there without a kernel pass.
TEST(WorkReduction, CriticalPathTracingQualificationAndStats) {
  const Circuit tree = logic::parity_tree(9);
  const EvalContext tree_ctx(tree, random_patterns(tree, 200, 11));
  EXPECT_TRUE(tree_ctx.cpt_available());

  const Circuit c17 = logic::c17();  // fanout stems and two POs
  const EvalContext c17_ctx(c17, random_patterns(c17, 64, 11));
  EXPECT_FALSE(c17_ctx.cpt_available());

  FaultListOptions flo;
  flo.include_transistor_faults = false;
  const std::vector<Fault> universe = generate_fault_list(tree, flo);
  FaultSimOptions opt;
  opt.critical_path_tracing = true;
  LineBatchStats stats;
  const FaultSimulator fsim(tree);
  (void)fsim.run_range(tree_ctx, universe, 0, universe.size(), opt, &stats);
  EXPECT_EQ(stats.cpt_faults, universe.size());
  EXPECT_EQ(stats.groups, 0u);

  LineBatchStats no_cpt_stats;
  FaultSimOptions no_cpt = opt;
  no_cpt.critical_path_tracing = false;
  (void)fsim.run_range(tree_ctx, universe, 0, universe.size(), no_cpt,
                       &no_cpt_stats);
  EXPECT_EQ(no_cpt_stats.cpt_faults, 0u);
  EXPECT_GT(no_cpt_stats.groups, 0u);
}

// First-only mode: a fault's record equals the full-mode record of the
// pattern list truncated right after the full-mode first_pattern — and the
// serial and packed transistor paths agree on it.
TEST(WorkReduction, FirstOnlyModeIsExactTruncationAndPathsAgree) {
  for (const Named& w : roster()) {
    const auto patterns = random_patterns(w.ckt, 130, 23);
    const EvalContext ctx(w.ckt, patterns);
    const FaultSimulator fsim(w.ckt);
    FaultListOptions flo;
    flo.cross_class_collapse = false;
    const std::vector<Fault> universe = generate_fault_list(w.ckt, flo);

    for (const bool iddq : {false, true}) {
      FaultSimOptions full;
      full.observe_iddq = iddq;
      FaultSimOptions first = full;
      first.detection_mode = DetectionMode::kFirstOnly;
      FaultSimOptions first_serial = first;
      first_serial.batch_transistor_faults = false;
      first_serial.batch_line_faults = false;
      first_serial.drop_detected = false;
      first_serial.critical_path_tracing = false;

      const auto full_rec =
          fsim.run_range(ctx, universe, 0, universe.size(), full);
      const auto got =
          fsim.run_range(ctx, universe, 0, universe.size(), first);
      const auto serial =
          fsim.run_range(ctx, universe, 0, universe.size(), first_serial);

      for (std::size_t i = 0; i < universe.size(); ++i) {
        const std::string label = w.name + " iddq=" + std::to_string(iddq) +
                                  " fault " + std::to_string(i);
        // Packed/batched first-only equals serial first-only.
        expect_record_eq(got[i], serial[i], label + " (paths)");
        // Same first counted detection as full mode; flags are the
        // truncated-pattern-list reference.
        EXPECT_EQ(got[i].first_pattern, full_rec[i].first_pattern) << label;
        if (full_rec[i].first_pattern < 0) {
          expect_record_eq(got[i], full_rec[i], label + " (undetected)");
        } else {
          const std::vector<Pattern> prefix(
              patterns.begin(),
              patterns.begin() + full_rec[i].first_pattern + 1);
          const EvalContext trunc_ctx(w.ckt, prefix);
          const DetectionRecord want =
              fsim.run_range(trunc_ctx, universe, i, i + 1, full)[0];
          expect_record_eq(got[i], want, label + " (truncation)");
        }
      }
    }
  }
}

// Campaign level: dropping (and CPT) off vs on is byte-identical in full
// mode, including under fault sampling — work reduction must never touch
// the sampled universe that forms the coverage denominator.
TEST(WorkReduction, CampaignJsonIdenticalWithWorkReductionToggled) {
  for (const double fraction : {1.0, 0.6}) {
    engine::CampaignSpec spec;
    spec.jobs.push_back({"c17", logic::c17()});
    spec.jobs.push_back({"parity_tree_7", logic::parity_tree(7)});
    spec.patterns.kind = engine::PatternSourceSpec::Kind::kRandom;
    spec.patterns.random_count = 128;
    spec.seed = 99;
    spec.shard_size = 5;
    spec.threads = 2;
    spec.fault_sample_fraction = fraction;
    spec.executor.backend = engine::ExecutorBackend::kThreadPool;

    spec.sim.drop_detected = true;
    spec.sim.critical_path_tracing = true;
    const engine::CampaignReport on = engine::run_campaign(spec);
    ASSERT_TRUE(on.ok()) << on.error;

    spec.sim.drop_detected = false;
    spec.sim.critical_path_tracing = false;
    const engine::CampaignReport off = engine::run_campaign(spec);
    ASSERT_TRUE(off.ok()) << off.error;

    EXPECT_EQ(on.to_json(), off.to_json()) << "fraction=" << fraction;
  }
}

// The first-only detection mode is an explicit campaign field: it flows to
// every shard, merges deterministically, and marks the report JSON.
TEST(WorkReduction, FirstOnlyCampaignDeterministicAndMarked) {
  engine::CampaignSpec spec;
  spec.jobs.push_back({"alu_slice", logic::alu_slice()});
  spec.patterns.kind = engine::PatternSourceSpec::Kind::kRandom;
  spec.patterns.random_count = 96;
  spec.seed = 7;
  spec.shard_size = 6;
  spec.detection_mode = DetectionMode::kFirstOnly;
  spec.executor.backend = engine::ExecutorBackend::kThreadPool;

  std::string first;
  for (const int threads : {1, 2, 8}) {
    spec.threads = threads;
    const engine::CampaignReport report = engine::run_campaign(spec);
    ASSERT_TRUE(report.ok()) << report.error;
    const std::string json = report.to_json();
    EXPECT_NE(json.find("\"detection_mode\":\"first_only\""),
              std::string::npos);
    if (first.empty())
      first = json;
    else
      EXPECT_EQ(json, first) << "threads=" << threads;
  }

  // Default (full) mode leaves the historical JSON untouched.
  spec.detection_mode = DetectionMode::kFull;
  spec.threads = 1;
  const engine::CampaignReport full = engine::run_campaign(spec);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.to_json().find("detection_mode"), std::string::npos);
}

// A failed shard's placeholder replays the shard's sampling decisions, so
// the coverage denominator matches what a successful run would have used.
TEST(WorkReduction, FailedShardPlaceholderReplaysSampling) {
  const Circuit ckt = logic::c17();
  std::vector<engine::CampaignFault> universe;
  FaultListOptions flo;
  for (const Fault& f : generate_fault_list(ckt, flo)) {
    engine::CampaignFault cf;
    cf.cls = engine::classify(f);
    cf.fault = f;
    universe.push_back(cf);
  }
  const util::SplitMix64 job_rng(1234);
  const std::vector<engine::Shard> shards =
      engine::make_shards(0, universe.size(), 8, job_rng);

  const EvalContext ctx(ckt, random_patterns(ckt, 64, 5));
  engine::ShardExecOptions options;
  options.fault_sample_fraction = 0.5;
  for (const engine::Shard& shard : shards) {
    const engine::ShardResult real =
        engine::run_shard(ctx, universe, shard, options);
    engine::ShardResult placeholder;
    engine::fill_failed_shard(universe, shard,
                              options.fault_sample_fraction, placeholder);
    ASSERT_EQ(placeholder.results.size(), real.results.size());
    bool any_sampled_out = false;
    for (std::size_t i = 0; i < real.results.size(); ++i) {
      EXPECT_EQ(placeholder.results[i].sampled_out,
                real.results[i].sampled_out)
          << "shard " << shard.index << " slot " << i;
      EXPECT_EQ(placeholder.results[i].cls, real.results[i].cls);
      any_sampled_out |= real.results[i].sampled_out;
    }
    EXPECT_FALSE(placeholder.results.empty());
    (void)any_sampled_out;
  }
}

}  // namespace
}  // namespace cpsinw::faults
