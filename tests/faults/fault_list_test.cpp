#include "faults/fault_list.hpp"

#include <gtest/gtest.h>

#include "logic/benchmarks.hpp"

namespace cpsinw::faults {
namespace {

TEST(FaultList, CountsForFullAdder) {
  const logic::Circuit ckt = logic::full_adder();
  FaultListOptions opt;
  opt.collapse = false;
  const auto faults = generate_fault_list(ckt, opt);
  // Uncollapsed lines: 5 nets x 2 + branch faults on fanout stems:
  // a, b, cin each feed 2 gates -> 3 stems x 2 branches x 2 polarities.
  EXPECT_EQ(count_line_faults(faults), 5 * 2 + 3 * 2 * 2);
  // Transistors: 8 devices x 4 fault kinds.
  EXPECT_EQ(count_transistor_faults(faults), 32);
}

TEST(FaultList, CollapseRemovesFanoutFreeBranches) {
  const logic::Circuit ckt = logic::full_adder();
  FaultListOptions collapsed;
  collapsed.collapse = true;
  FaultListOptions uncollapsed;
  uncollapsed.collapse = false;
  const auto a = generate_fault_list(ckt, collapsed);
  const auto b = generate_fault_list(ckt, uncollapsed);
  EXPECT_LE(a.size(), b.size());
  // With fanout on every PI (each feeds both gates), branch faults remain.
  EXPECT_EQ(count_line_faults(a), count_line_faults(b));
}

TEST(FaultList, CollapseDropsEquivalentTransistorFaults) {
  // In a NAND2, the two parallel pull-up transistors have symmetric but
  // input-distinct faults; equivalence collapsing must still deduplicate
  // faults with identical dictionaries (e.g. stuck-on pairs).
  logic::Circuit c;
  const auto a = c.add_primary_input("a");
  const auto b = c.add_primary_input("b");
  const auto y = c.add_net("y");
  c.add_gate(gates::CellKind::kNand2, {a, b}, y);
  c.mark_primary_output(y);
  c.finalize();
  FaultListOptions collapsed;
  collapsed.collapse = true;
  FaultListOptions full;
  full.collapse = false;
  const int n_collapsed =
      count_transistor_faults(generate_fault_list(c, collapsed));
  const int n_full = count_transistor_faults(generate_fault_list(c, full));
  // 16 raw faults minus the 4 benign polarity bridges (each SP device's
  // PG bridged to the rail it is already tied to has no effect).
  EXPECT_EQ(n_full, 12);
  EXPECT_LT(n_collapsed, n_full);
}

TEST(FaultList, BenignRailBridgesAreExcluded) {
  // stuck-at-p-type on an SP pull-up (PG tied to GND) is effect-free and
  // must not appear in the universe.
  logic::Circuit c;
  const auto a = c.add_primary_input("a");
  const auto y = c.add_net("y");
  c.add_gate(gates::CellKind::kInv, {a}, y);
  c.mark_primary_output(y);
  c.finalize();
  FaultListOptions full;
  full.collapse = false;
  for (const Fault& f : generate_fault_list(c, full)) {
    if (f.site != FaultSite::kGateTransistor) continue;
    const bool benign_combo =
        (f.cell_fault.transistor == 0 &&
         f.cell_fault.kind == gates::TransistorFault::kStuckAtPType) ||
        (f.cell_fault.transistor == 1 &&
         f.cell_fault.kind == gates::TransistorFault::kStuckAtNType);
    EXPECT_FALSE(benign_combo) << f.describe(c);
  }
}

TEST(FaultList, OptionsDisableClasses) {
  const logic::Circuit ckt = logic::c17();
  FaultListOptions lines_only;
  lines_only.include_transistor_faults = false;
  EXPECT_EQ(count_transistor_faults(generate_fault_list(ckt, lines_only)), 0);
  FaultListOptions trans_only;
  trans_only.include_line_stuck_at = false;
  EXPECT_EQ(count_line_faults(generate_fault_list(ckt, trans_only)), 0);
}

TEST(Fault, DescribeIsReadable) {
  const logic::Circuit ckt = logic::full_adder();
  const Fault net_fault = Fault::net_stuck(ckt.find_net("sum"), true);
  EXPECT_EQ(net_fault.describe(ckt), "net sum SA1");
  const Fault t_fault =
      Fault::transistor(0, 1, gates::TransistorFault::kStuckAtPType);
  EXPECT_NE(t_fault.describe(ckt).find("t2 stuck-at-p-type"),
            std::string::npos);
  const Fault pin_fault = Fault::input_stuck(1, 2, false);
  EXPECT_NE(pin_fault.describe(ckt).find(".in2 SA0"), std::string::npos);
}

}  // namespace
}  // namespace cpsinw::faults
