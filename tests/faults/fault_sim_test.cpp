#include "faults/fault_sim.hpp"

#include <gtest/gtest.h>

#include "logic/benchmarks.hpp"

namespace cpsinw::faults {
namespace {

using logic::LogicV;
using logic::Pattern;

Pattern bits_to_pattern(unsigned bits, int n) {
  Pattern p(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    p[static_cast<std::size_t>(i)] = logic::from_bool((bits >> i) & 1u);
  return p;
}

std::vector<Pattern> exhaustive_patterns(const logic::Circuit& ckt) {
  const int n = static_cast<int>(ckt.primary_inputs().size());
  std::vector<Pattern> out;
  for (unsigned v = 0; v < (1u << n); ++v)
    out.push_back(bits_to_pattern(v, n));
  return out;
}

TEST(FaultSim, ExhaustivePatternsDetectAllLineFaultsOnC17) {
  const logic::Circuit ckt = logic::c17();
  const FaultSimulator fsim(ckt);
  FaultListOptions flo;
  flo.include_transistor_faults = false;
  const auto faults = generate_fault_list(ckt, flo);
  const auto report = fsim.run(faults, exhaustive_patterns(ckt));
  // c17 has no redundant stuck-at faults: exhaustive coverage is 100 %.
  EXPECT_DOUBLE_EQ(report.coverage(), 1.0);
  for (const auto& rec : report.records) EXPECT_GE(rec.first_pattern, 0);
}

TEST(FaultSim, SingleBadPatternDetectsNothingItShouldnt) {
  const logic::Circuit ckt = logic::c17();
  const FaultSimulator fsim(ckt);
  const Fault f = Fault::net_stuck(ckt.find_net("22"), false);
  // Pattern driving output 22 to 0 cannot reveal SA0 on it.
  for (const Pattern& p : exhaustive_patterns(ckt)) {
    const bool detected = fsim.line_fault_detected(f, p);
    const auto words = logic::pack_patterns(ckt, {p});
    const auto good = logic::simulate_packed(ckt, words);
    const bool out_is_one =
        (good[static_cast<std::size_t>(ckt.find_net("22"))] & 1ull) != 0;
    EXPECT_EQ(detected, out_is_one);
  }
}

TEST(FaultSim, PolarityFaultsOnXorDetectedViaIddqAndOutput) {
  logic::Circuit c;
  const auto a = c.add_primary_input("a");
  const auto b = c.add_primary_input("b");
  const auto y = c.add_net("y");
  c.add_gate(gates::CellKind::kXor2, {a, b}, y);
  c.mark_primary_output(y);
  c.finalize();
  const FaultSimulator fsim(c);
  const auto patterns = exhaustive_patterns(c);

  // Pull-up faults (t1, t2): IDDQ only.
  for (const int t : {0, 1}) {
    const auto rec = fsim.simulate_transistor_fault(
        Fault::transistor(0, t, gates::TransistorFault::kStuckAtNType),
        patterns);
    EXPECT_TRUE(rec.detected_iddq) << "t" << t + 1;
    EXPECT_FALSE(rec.detected_output) << "t" << t + 1;
  }
  // Pull-down stuck-at-n (t3, t4): output flip.
  for (const int t : {2, 3}) {
    const auto rec = fsim.simulate_transistor_fault(
        Fault::transistor(0, t, gates::TransistorFault::kStuckAtNType),
        patterns);
    EXPECT_TRUE(rec.detected_output) << "t" << t + 1;
  }
}

TEST(FaultSim, IddqObservationCanBeDisabled) {
  logic::Circuit c;
  const auto a = c.add_primary_input("a");
  const auto b = c.add_primary_input("b");
  const auto y = c.add_net("y");
  c.add_gate(gates::CellKind::kXor2, {a, b}, y);
  c.mark_primary_output(y);
  c.finalize();
  const FaultSimulator fsim(c);
  FaultSimOptions opt;
  opt.observe_iddq = false;
  const auto rec = fsim.simulate_transistor_fault(
      Fault::transistor(0, 0, gates::TransistorFault::kStuckAtNType),
      exhaustive_patterns(c), opt);
  EXPECT_FALSE(rec.detected(opt.observe_iddq));
}

TEST(FaultSim, StuckOpenNeedsTheRightPatternOrder) {
  // NAND2: t1 stuck-open detected by (11 -> 01) but not by (01 -> 11).
  logic::Circuit c;
  const auto a = c.add_primary_input("a");
  const auto b = c.add_primary_input("b");
  const auto y = c.add_net("y");
  c.add_gate(gates::CellKind::kNand2, {a, b}, y);
  c.mark_primary_output(y);
  c.finalize();
  const FaultSimulator fsim(c);
  const Fault f =
      Fault::transistor(0, 0, gates::TransistorFault::kStuckOpen);
  const Pattern p11 = bits_to_pattern(0b11u, 2);
  const Pattern p01 = bits_to_pattern(0b01u, 2);  // A=1, B=0
  const Pattern p10 = bits_to_pattern(0b10u, 2);  // A=0, B=1
  // t1 is the pull-up on input A: it must pull up when A = 0.
  EXPECT_TRUE(fsim.stuck_open_detected(f, p11, p10));
  EXPECT_FALSE(fsim.stuck_open_detected(f, p10, p11));
  // The other pull-up's vector does not touch t1.
  EXPECT_FALSE(fsim.stuck_open_detected(f, p11, p01));
}

TEST(FaultSim, ReportAggregates) {
  const logic::Circuit ckt = logic::full_adder();
  const FaultSimulator fsim(ckt);
  const auto faults = generate_fault_list(ckt);
  const auto report = fsim.run(faults, exhaustive_patterns(ckt));
  EXPECT_EQ(report.records.size(), faults.size());
  EXPECT_GT(report.detected_count(), 0);
  EXPECT_GT(report.coverage(), 0.5);
  EXPECT_LE(report.coverage(), 1.0);
}

TEST(FaultSim, RejectsWrongSiteKinds) {
  const logic::Circuit ckt = logic::full_adder();
  const FaultSimulator fsim(ckt);
  EXPECT_THROW((void)fsim.line_fault_detected(
                   Fault::transistor(0, 0,
                                     gates::TransistorFault::kStuckOpen),
                   bits_to_pattern(0, 3)),
               std::invalid_argument);
  EXPECT_THROW((void)fsim.simulate_transistor_fault(
                   Fault::net_stuck(0, false), {bits_to_pattern(0, 3)}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cpsinw::faults
