#include "faults/bridge.hpp"

#include <gtest/gtest.h>

#include "atpg/bridge_atpg.hpp"
#include "logic/benchmarks.hpp"

namespace cpsinw::faults {
namespace {

using logic::LogicV;
using logic::Pattern;

Pattern bits_to_pattern(unsigned bits, int n) {
  Pattern p(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    p[static_cast<std::size_t>(i)] = logic::from_bool((bits >> i) & 1u);
  return p;
}

TEST(Bridge, EnumerationCoversAdjacentPairsWithFourBehaviours) {
  const logic::Circuit ckt = logic::full_adder();
  const auto bridges = enumerate_adjacent_bridges(ckt);
  EXPECT_FALSE(bridges.empty());
  EXPECT_EQ(bridges.size() % 4, 0u);
  for (const BridgeFault& f : bridges) EXPECT_NE(f.a, f.b);
}

TEST(Bridge, WiredSemantics) {
  // Two inverters driving independent outputs: bridge their outputs.
  logic::Circuit c;
  const auto a = c.add_primary_input("a");
  const auto b = c.add_primary_input("b");
  const auto ya = c.add_net("ya");
  const auto yb = c.add_net("yb");
  c.add_gate(gates::CellKind::kInv, {a}, ya);
  c.add_gate(gates::CellKind::kInv, {b}, yb);
  c.mark_primary_output(ya);
  c.mark_primary_output(yb);
  c.finalize();

  const Pattern p01 = {LogicV::k0, LogicV::k1};  // ya=1, yb=0

  const auto and_vals =
      simulate_bridge(c, {ya, yb, BridgeBehavior::kWiredAnd}, p01);
  EXPECT_EQ(and_vals[static_cast<std::size_t>(ya)], LogicV::k0);
  EXPECT_EQ(and_vals[static_cast<std::size_t>(yb)], LogicV::k0);

  const auto or_vals =
      simulate_bridge(c, {ya, yb, BridgeBehavior::kWiredOr}, p01);
  EXPECT_EQ(or_vals[static_cast<std::size_t>(ya)], LogicV::k1);
  EXPECT_EQ(or_vals[static_cast<std::size_t>(yb)], LogicV::k1);

  const auto dom_a =
      simulate_bridge(c, {ya, yb, BridgeBehavior::kDominantA}, p01);
  EXPECT_EQ(dom_a[static_cast<std::size_t>(yb)], LogicV::k1);

  const auto dom_b =
      simulate_bridge(c, {ya, yb, BridgeBehavior::kDominantB}, p01);
  EXPECT_EQ(dom_b[static_cast<std::size_t>(ya)], LogicV::k0);
}

TEST(Bridge, NoEffectWhenNetsAgree) {
  logic::Circuit c;
  const auto a = c.add_primary_input("a");
  const auto ya = c.add_net("ya");
  const auto yb = c.add_net("yb");
  c.add_gate(gates::CellKind::kInv, {a}, ya);
  c.add_gate(gates::CellKind::kInv, {a}, yb);
  c.mark_primary_output(ya);
  c.mark_primary_output(yb);
  c.finalize();
  // Both nets always carry the same value: never excited, never visible.
  for (unsigned v = 0; v < 2; ++v) {
    const Pattern p = bits_to_pattern(v, 1);
    for (const BridgeBehavior beh :
         {BridgeBehavior::kWiredAnd, BridgeBehavior::kWiredOr,
          BridgeBehavior::kDominantA}) {
      EXPECT_FALSE(bridge_excited_for_iddq(c, {ya, yb, beh}, p));
      EXPECT_FALSE(bridge_detected_by_output(c, {ya, yb, beh}, p));
    }
  }
}

TEST(Bridge, IddqTestGenerationJustifiesOppositeValues) {
  const logic::Circuit ckt = logic::c17();
  for (const BridgeFault& f : enumerate_adjacent_bridges(ckt)) {
    const atpg::BridgeTestResult r =
        atpg::generate_bridge_iddq_test(ckt, f);
    if (r.status != atpg::AtpgStatus::kDetected) continue;
    EXPECT_TRUE(bridge_excited_for_iddq(ckt, f, *r.pattern));
  }
}

TEST(Bridge, CoverageOnBenchmarks) {
  for (const auto& make :
       {+[] { return logic::c17(); }, +[] { return logic::full_adder(); },
        +[] { return logic::multiplier_2x2(); }}) {
    const logic::Circuit ckt = make();
    const atpg::BridgeCoverage cov = atpg::generate_all_bridge_tests(ckt);
    EXPECT_GT(cov.total, 0);
    // Adjacent nets in these benchmarks are almost never logically equal:
    // nearly everything is IDDQ-coverable.
    EXPECT_GT(cov.coverage(), 0.9);
    // Each excited pair needs exactly one pattern.
    EXPECT_LE(static_cast<int>(cov.iddq_patterns.size()),
              cov.total / 4 + 1);
  }
}

TEST(Bridge, FeedbackBridgeResolvesWithoutHanging) {
  // Bridge a gate's output to its own input: a feedback loop.  The
  // simulation must terminate and produce a defined or X result.
  logic::Circuit c;
  const auto a = c.add_primary_input("a");
  const auto y = c.add_net("y");
  c.add_gate(gates::CellKind::kInv, {a}, y);
  c.mark_primary_output(y);
  c.finalize();
  const BridgeFault f{a, y, BridgeBehavior::kWiredAnd};
  const auto vals = simulate_bridge(c, f, {LogicV::k1});
  // wired-AND of a=1, y=NOT(a)=0 -> both 0; re-evaluating: y=NOT(0)=1,
  // wired again -> oscillation or stable 0 depending on the driver; either
  // a binary fixpoint or X is acceptable, a hang is not.
  SUCCEED() << "terminated with y="
            << to_string(vals[static_cast<std::size_t>(y)]);
}

TEST(Bridge, RejectsBadPairs) {
  const logic::Circuit ckt = logic::c17();
  EXPECT_THROW((void)simulate_bridge(ckt, {3, 3, BridgeBehavior::kWiredOr},
                                     bits_to_pattern(0, 5)),
               std::invalid_argument);
}

TEST(Bridge, BehaviorNames) {
  EXPECT_STREQ(to_string(BridgeBehavior::kWiredAnd), "wired-AND");
  EXPECT_STREQ(to_string(BridgeBehavior::kDominantB), "dominant-B");
}

}  // namespace
}  // namespace cpsinw::faults
