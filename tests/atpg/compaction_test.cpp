#include "atpg/compaction.hpp"

#include <gtest/gtest.h>

#include "atpg/podem.hpp"
#include "logic/benchmarks.hpp"

namespace cpsinw::atpg {
namespace {

using faults::Fault;
using logic::LogicV;
using logic::Pattern;

std::vector<Pattern> exhaustive_patterns(const logic::Circuit& ckt) {
  const int n = static_cast<int>(ckt.primary_inputs().size());
  std::vector<Pattern> out;
  for (unsigned v = 0; v < (1u << n); ++v) {
    Pattern p(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      p[static_cast<std::size_t>(i)] = logic::from_bool((v >> i) & 1u);
    out.push_back(std::move(p));
  }
  return out;
}

TEST(Compaction, PreservesCoverageWhileShrinking) {
  const logic::Circuit ckt = logic::c17();
  faults::FaultListOptions flo;
  flo.include_transistor_faults = false;
  const auto faults = generate_fault_list(ckt, flo);
  const auto patterns = exhaustive_patterns(ckt);  // 32 patterns

  faults::FaultSimOptions fso;
  fso.observe_iddq = false;
  fso.sequential_patterns = false;
  const CompactionResult r = compact_patterns(ckt, faults, patterns, fso);
  EXPECT_EQ(r.original_count, 32);
  EXPECT_LT(r.patterns.size(), 32u);
  EXPECT_GE(r.coverage_after, r.coverage_before);
  EXPECT_DOUBLE_EQ(r.coverage_after, 1.0);
  // c17's minimal complete stuck-at test set is famously tiny.
  EXPECT_LE(r.patterns.size(), 10u);
}

TEST(Compaction, EmptyInputsAreHandled) {
  const logic::Circuit ckt = logic::c17();
  faults::FaultListOptions flo;
  flo.include_transistor_faults = false;
  const auto faults = generate_fault_list(ckt, flo);
  const CompactionResult r = compact_patterns(ckt, faults, {});
  EXPECT_TRUE(r.patterns.empty());
  EXPECT_EQ(r.original_count, 0);
}

TEST(Compaction, AtpgSetCompactsWithoutCoverageLoss) {
  const logic::Circuit ckt = logic::multiplier_2x2();
  const PodemEngine engine(ckt);
  faults::FaultListOptions flo;
  flo.include_transistor_faults = false;
  const auto faults = generate_fault_list(ckt, flo);

  std::vector<Pattern> patterns;
  for (const Fault& f : faults) {
    const AtpgResult r = engine.generate_line(f);
    if (r.status == AtpgStatus::kDetected) patterns.push_back(r.pattern);
  }
  faults::FaultSimOptions fso;
  fso.observe_iddq = false;
  fso.sequential_patterns = false;
  const CompactionResult r = compact_patterns(ckt, faults, patterns, fso);
  EXPECT_LT(r.patterns.size(), patterns.size());
  EXPECT_GE(r.coverage_after, r.coverage_before - 1e-12);
}

}  // namespace
}  // namespace cpsinw::atpg
