#include "atpg/channel_break.hpp"

#include <gtest/gtest.h>

#include "logic/benchmarks.hpp"

namespace cpsinw::atpg {
namespace {

using gates::CellKind;

/// The paper's central claim (Sec. V-C): the polarity-complement procedure
/// distinguishes intact from channel-broken devices in every DP cell.
class CellChannelBreak : public ::testing::TestWithParam<CellKind> {};

TEST_P(CellChannelBreak, EveryTransistorGetsADistinguishingTest) {
  const CellKind kind = GetParam();
  const int nt = static_cast<int>(gates::cell(kind).transistors.size());
  for (int t = 0; t < nt; ++t) {
    const auto test = derive_cell_test(kind, t);
    ASSERT_TRUE(test.has_value())
        << gates::to_string(kind) << " t" << t + 1;
    const ChannelBreakOutcome outcome = evaluate_cell_test(kind, *test);
    EXPECT_TRUE(outcome.distinguishes())
        << gates::to_string(kind) << " t" << t + 1;
    EXPECT_EQ(outcome.intact, test->expected_intact);
    EXPECT_EQ(outcome.broken, test->expected_broken);
  }
}

TEST(ChannelBreak, Xor2AdmitsTheCanonicalCleanForm) {
  // For the paper's own example (the 2-input XOR) every transistor has a
  // test where the broken device responds completely clean.
  for (int t = 0; t < 4; ++t) {
    const auto test = derive_cell_test(CellKind::kXor2, t);
    ASSERT_TRUE(test.has_value()) << "t" << t + 1;
    EXPECT_TRUE(test->broken_is_clean) << "t" << t + 1;
  }
}

TEST(ChannelBreak, Maj3SharedDataRailsFallBackToSignatureForm) {
  // MAJ3 routes input A to both polarity gates and pass-data sources;
  // polarity-complementing A also alters the data, so t1's test separates
  // by signature difference rather than by a clean broken response.
  const auto test = derive_cell_test(CellKind::kMaj3, 0);
  ASSERT_TRUE(test.has_value());
  const ChannelBreakOutcome outcome =
      evaluate_cell_test(CellKind::kMaj3, *test);
  EXPECT_TRUE(outcome.distinguishes());
}

INSTANTIATE_TEST_SUITE_P(DpCells, CellChannelBreak,
                         ::testing::Values(CellKind::kXor2, CellKind::kXor3,
                                           CellKind::kMaj3),
                         [](const auto& info) {
                           return std::string(gates::to_string(info.param));
                         });

TEST(ChannelBreak, RailsAreDeliberatelyInconsistent) {
  const auto test = derive_cell_test(CellKind::kXor2, 2);  // t3
  ASSERT_TRUE(test.has_value());
  const int n = gates::input_count(CellKind::kXor2);
  const unsigned mask = (1u << n) - 1u;
  // A consistent assignment satisfies bar == ~true; the CB test must not.
  EXPECT_NE(test->rails.bar_bits & mask,
            ~test->rails.true_bits & mask);
}

TEST(ChannelBreak, SpCellsAreNotTargets) {
  EXPECT_FALSE(derive_cell_test(CellKind::kInv, 0).has_value());
  EXPECT_FALSE(derive_cell_test(CellKind::kNand2, 0).has_value());
  EXPECT_THROW((void)derive_cell_test(CellKind::kXor2, 9),
               std::invalid_argument);
}

TEST(ChannelBreak, CircuitLevelGenerationJustifiesLocalVectors) {
  const logic::Circuit ckt = logic::ripple_adder(2);
  const auto tests = generate_channel_break_tests(ckt);
  // 4 DP gates (2 XOR3 + 2 MAJ3) x 4 transistors.
  EXPECT_EQ(tests.size(), 16u);
  int justified = 0;
  for (const ChannelBreakTest& t : tests) {
    EXPECT_GE(t.gate, 0);
    if (t.pattern) ++justified;
    // The emulated fault is one of the paper's two polarity models.
    const bool polarity =
        t.emulated_polarity == gates::TransistorFault::kStuckAtNType ||
        t.emulated_polarity == gates::TransistorFault::kStuckAtPType;
    EXPECT_TRUE(polarity);
  }
  EXPECT_GT(justified, 12);  // nearly all local vectors reachable
}

TEST(ChannelBreak, PiAccessibilityIsTracked) {
  // full_adder: both gates read PIs directly.
  const auto fa_tests =
      generate_channel_break_tests(logic::full_adder());
  for (const auto& t : fa_tests) EXPECT_TRUE(t.pi_accessible);

  // parity chain: deeper XOR3 gates read internal nets.
  const auto chain_tests =
      generate_channel_break_tests(logic::xor3_parity_chain(5));
  bool some_internal = false;
  for (const auto& t : chain_tests)
    if (!t.pi_accessible) some_internal = true;
  EXPECT_TRUE(some_internal);
}

}  // namespace
}  // namespace cpsinw::atpg
