#include "atpg/two_pattern.hpp"

#include <gtest/gtest.h>

#include <set>

#include "logic/benchmarks.hpp"

namespace cpsinw::atpg {
namespace {

using faults::Fault;

logic::Circuit single_gate(gates::CellKind kind) {
  logic::Circuit c;
  std::vector<logic::NetId> ins;
  for (int i = 0; i < gates::input_count(kind); ++i)
    ins.push_back(c.add_primary_input(std::string(1, char('a' + i))));
  const auto y = c.add_net("y");
  c.add_gate(kind, ins, y);
  c.mark_primary_output(y);
  c.finalize();
  return c;
}

/// The paper's NAND2 result: all four channel breaks covered by the set
/// v1=(11->01), v2=(11->10), v3=(00->11).
TEST(TwoPattern, NandSetMatchesPaper) {
  const logic::Circuit ckt = single_gate(gates::CellKind::kNand2);
  std::set<std::pair<unsigned, unsigned>> pairs;
  for (int t = 0; t < 4; ++t) {
    const TwoPatternResult r = generate_two_pattern(
        ckt, Fault::transistor(0, t, gates::TransistorFault::kStuckOpen));
    ASSERT_EQ(r.status, AtpgStatus::kDetected) << "t" << t + 1;
    ASSERT_TRUE(r.test.has_value());
    pairs.insert({r.test->init_cube, r.test->test_cube});
  }
  // Expected local-cube pairs (bit0 = A, bit1 = B):
  //   t1 (pull-up on A): 11 -> A=0 (cube 0b10 has B=1, A=0)
  //   t2 (pull-up on B): 11 -> B=0 (cube 0b01)
  //   t3, t4 (series pull-down): 00 -> 11.
  const std::set<std::pair<unsigned, unsigned>> expected = {
      {0b11u, 0b10u}, {0b11u, 0b01u}, {0b00u, 0b11u}};
  EXPECT_EQ(pairs, expected);
}

TEST(TwoPattern, InverterOpensNeedBothEdges) {
  const logic::Circuit ckt = single_gate(gates::CellKind::kInv);
  const TwoPatternResult up = generate_two_pattern(
      ckt, Fault::transistor(0, 0, gates::TransistorFault::kStuckOpen));
  ASSERT_EQ(up.status, AtpgStatus::kDetected);
  EXPECT_EQ(up.test->init_cube, 1u);  // in=1 initializes out=0
  EXPECT_EQ(up.test->test_cube, 0u);  // in=0 should raise out, but floats
  const TwoPatternResult dn = generate_two_pattern(
      ckt, Fault::transistor(0, 1, gates::TransistorFault::kStuckOpen));
  ASSERT_EQ(dn.status, AtpgStatus::kDetected);
  EXPECT_EQ(dn.test->init_cube, 0u);
  EXPECT_EQ(dn.test->test_cube, 1u);
}

TEST(TwoPattern, DpXorOpensHaveNoTwoPatternTest) {
  // The pass-transistor redundancy masks DP stuck-opens: no floating row
  // exists, so no two-pattern test can be built (paper Sec. V-C).
  const logic::Circuit ckt = single_gate(gates::CellKind::kXor2);
  for (int t = 0; t < 4; ++t) {
    const TwoPatternResult r = generate_two_pattern(
        ckt, Fault::transistor(0, t, gates::TransistorFault::kStuckOpen));
    EXPECT_EQ(r.status, AtpgStatus::kUntestable) << "t" << t + 1;
  }
}

TEST(TwoPattern, WorksThroughSurroundingLogic) {
  // NAND stuck-opens inside c17: initialization and excitation must be
  // justified through the other gates, and the effect propagated.
  const logic::Circuit ckt = logic::c17();
  int detected = 0;
  const auto all = generate_all_stuck_open_tests(ckt);
  EXPECT_EQ(all.size(), 24u);  // 6 NAND2 gates x 4 transistors
  for (const TwoPatternResult& r : all)
    if (r.status == AtpgStatus::kDetected) ++detected;
  // The vast majority of c17 stuck-opens are testable.
  EXPECT_GE(detected, 20);
}

TEST(TwoPattern, RejectsNonStuckOpenFaults) {
  const logic::Circuit ckt = single_gate(gates::CellKind::kNand2);
  EXPECT_THROW(
      (void)generate_two_pattern(
          ckt,
          Fault::transistor(0, 0, gates::TransistorFault::kStuckAtNType)),
      std::invalid_argument);
  EXPECT_THROW((void)generate_two_pattern(ckt, Fault::net_stuck(0, false)),
               std::invalid_argument);
}

}  // namespace
}  // namespace cpsinw::atpg
