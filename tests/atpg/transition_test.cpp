#include "atpg/transition.hpp"

#include <gtest/gtest.h>

#include "logic/benchmarks.hpp"

namespace cpsinw::atpg {
namespace {

using logic::LogicV;
using logic::Pattern;

TEST(Transition, EnumerationSkipsConstants) {
  logic::Circuit c;
  const auto a = c.add_primary_input("a");
  const auto one = c.add_constant(LogicV::k1);
  const auto y = c.add_net("y");
  c.add_gate(gates::CellKind::kNand2, {a, one}, y);
  c.mark_primary_output(y);
  c.finalize();
  const auto faults = enumerate_transition_faults(c);
  // Nets a and y, two faults each; the constant net has none.
  EXPECT_EQ(faults.size(), 4u);
  for (const TransitionFault& f : faults) EXPECT_NE(f.net, one);
}

TEST(Transition, InverterPairIsFound) {
  logic::Circuit c;
  const auto a = c.add_primary_input("a");
  const auto y = c.add_net("y");
  c.add_gate(gates::CellKind::kInv, {a}, y);
  c.mark_primary_output(y);
  c.finalize();
  // Slow-to-rise on y: launch a=1 (y=0), capture a=0 (y should rise).
  const TransitionResult r =
      generate_transition_test(c, {y, /*slow_to_rise=*/true});
  ASSERT_EQ(r.status, AtpgStatus::kDetected);
  EXPECT_EQ(r.test->launch[0], LogicV::k1);
  EXPECT_EQ(r.test->capture[0], LogicV::k0);
}

TEST(Transition, DetectionRequiresActualTransition) {
  logic::Circuit c;
  const auto a = c.add_primary_input("a");
  const auto y = c.add_net("y");
  c.add_gate(gates::CellKind::kBuf, {a}, y);
  c.mark_primary_output(y);
  c.finalize();
  const TransitionFault str{y, true};  // slow-to-rise
  const Pattern lo = {LogicV::k0};
  const Pattern hi = {LogicV::k1};
  EXPECT_TRUE(transition_detected(c, str, lo, hi));
  EXPECT_FALSE(transition_detected(c, str, hi, hi));  // no launch
  EXPECT_FALSE(transition_detected(c, str, lo, lo));  // no transition
}

/// Soundness sweep: every generated launch/capture pair verifies, and the
/// irredundant benchmarks reach full transition coverage.
class TransitionSoundness : public ::testing::TestWithParam<const char*> {};

TEST_P(TransitionSoundness, AllGeneratedTestsVerify) {
  const std::string name = GetParam();
  logic::Circuit ckt;
  if (name == "c17") ckt = logic::c17();
  else if (name == "full_adder") ckt = logic::full_adder();
  else if (name == "parity_tree_6") ckt = logic::parity_tree(6);
  else if (name == "multiplier_2x2") ckt = logic::multiplier_2x2();
  else FAIL();

  const TransitionCoverage cov = generate_all_transition_tests(ckt);
  EXPECT_EQ(cov.total, cov.detected + cov.untestable + cov.aborted);
  EXPECT_GT(cov.coverage(), 0.9);
  for (const TransitionTest& t : cov.tests)
    EXPECT_TRUE(transition_detected(ckt, t.fault, t.launch, t.capture));
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, TransitionSoundness,
                         ::testing::Values("c17", "full_adder",
                                           "parity_tree_6",
                                           "multiplier_2x2"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(Transition, RejectsBadInputs) {
  const logic::Circuit ckt = logic::c17();
  EXPECT_THROW(
      (void)generate_transition_test(ckt, {-1, true}),
      std::invalid_argument);
  const PodemEngine engine(ckt);
  EXPECT_THROW((void)engine.justify_net_value(0, LogicV::kX),
               std::invalid_argument);
  EXPECT_THROW((void)engine.justify_net_value(-1, LogicV::k0),
               std::invalid_argument);
}

}  // namespace
}  // namespace cpsinw::atpg
