#include "atpg/podem.hpp"

#include <gtest/gtest.h>

#include "faults/fault_sim.hpp"
#include "logic/benchmarks.hpp"

namespace cpsinw::atpg {
namespace {

using faults::Fault;
using faults::FaultListOptions;
using faults::FaultSimulator;

/// Soundness property: every PODEM-generated line test is confirmed by an
/// independent fault simulator, for every line fault of each benchmark.
class PodemSoundness : public ::testing::TestWithParam<const char*> {
 protected:
  static logic::Circuit make(const std::string& name) {
    if (name == "c17") return logic::c17();
    if (name == "full_adder") return logic::full_adder();
    if (name == "ripple_adder_3") return logic::ripple_adder(3);
    if (name == "parity_tree_6") return logic::parity_tree(6);
    if (name == "multiplier_2x2") return logic::multiplier_2x2();
    if (name == "alu_slice") return logic::alu_slice();
    throw std::logic_error("unknown benchmark");
  }
};

TEST_P(PodemSoundness, EveryLineTestVerifies) {
  const logic::Circuit ckt = make(GetParam());
  const PodemEngine engine(ckt);
  const FaultSimulator fsim(ckt);
  FaultListOptions flo;
  flo.include_transistor_faults = false;
  const auto faults = generate_fault_list(ckt, flo);
  int detected = 0;
  for (const Fault& f : faults) {
    const AtpgResult r = engine.generate_line(f);
    if (r.status == AtpgStatus::kDetected) {
      ++detected;
      EXPECT_TRUE(fsim.line_fault_detected(f, r.pattern))
          << f.describe(ckt) << " pattern fails verification";
    }
  }
  // These benchmarks are essentially irredundant: expect near-full success.
  EXPECT_GT(detected, static_cast<int>(faults.size() * 9) / 10);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, PodemSoundness,
                         ::testing::Values("c17", "full_adder",
                                           "ripple_adder_3", "parity_tree_6",
                                           "multiplier_2x2", "alu_slice"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(Podem, DetectsSpecificC17Fault) {
  const logic::Circuit ckt = logic::c17();
  const PodemEngine engine(ckt);
  const FaultSimulator fsim(ckt);
  const Fault f = Fault::net_stuck(ckt.find_net("11"), true);
  const AtpgResult r = engine.generate_line(f);
  ASSERT_EQ(r.status, AtpgStatus::kDetected);
  EXPECT_TRUE(fsim.line_fault_detected(f, r.pattern));
}

TEST(Podem, ReportsUntestableForRedundantFault) {
  // y = NAND(a, a') is constant 1: SA1 on y is undetectable.
  logic::Circuit c;
  const auto a = c.add_primary_input("a");
  const auto an = c.add_net("an");
  c.add_gate(gates::CellKind::kInv, {a}, an);
  const auto y = c.add_net("y");
  c.add_gate(gates::CellKind::kNand2, {a, an}, y);
  c.mark_primary_output(y);
  c.finalize();
  const PodemEngine engine(c);
  const AtpgResult r =
      engine.generate_line(Fault::net_stuck(y, true));
  EXPECT_EQ(r.status, AtpgStatus::kUntestable);
}

TEST(Podem, FunctionalFaultOnEmbeddedXor) {
  // XOR2 inside a parity tree: pull-down polarity faults must be excited
  // and propagated through the surrounding gates.
  const logic::Circuit ckt = logic::parity_tree(4);
  const PodemEngine engine(ckt);
  const FaultSimulator fsim(ckt);
  int functional_gates = 0;
  for (const logic::GateInst& g : ckt.gates()) {
    if (g.kind != gates::CellKind::kXor2 &&
        g.kind != gates::CellKind::kXor3)
      continue;
    ++functional_gates;
    const Fault f = Fault::transistor(
        g.id, 2, gates::TransistorFault::kStuckAtNType);
    const AtpgResult r = engine.generate_functional(f);
    ASSERT_EQ(r.status, AtpgStatus::kDetected) << g.name;
    const auto rec = fsim.simulate_transistor_fault(f, {r.pattern});
    EXPECT_TRUE(rec.detected_output) << g.name;
  }
  EXPECT_GT(functional_gates, 0);
}

TEST(Podem, IddqTestForPullUpPolarityFault) {
  const logic::Circuit ckt = logic::parity_tree(4);
  const PodemEngine engine(ckt);
  const FaultSimulator fsim(ckt);
  for (const logic::GateInst& g : ckt.gates()) {
    if (!gates::is_dynamic_polarity(g.kind)) continue;
    const Fault f = Fault::transistor(
        g.id, 0, gates::TransistorFault::kStuckAtNType);
    const AtpgResult r = engine.generate_iddq(f);
    ASSERT_EQ(r.status, AtpgStatus::kDetected) << g.name;
    const auto rec = fsim.simulate_transistor_fault(f, {r.pattern});
    EXPECT_TRUE(rec.detected_iddq) << g.name;
  }
}

TEST(Podem, JustifyGateCube) {
  const logic::Circuit ckt = logic::c17();
  const PodemEngine engine(ckt);
  // Justify input cube 0b11 at the last NAND (g23 reads nets 16 and 19).
  const int gate = 5;
  const AtpgResult r = engine.justify_gate_cube(gate, 0b11u);
  ASSERT_EQ(r.status, AtpgStatus::kDetected);
  const auto words = logic::pack_patterns(ckt, {r.pattern});
  const auto values = logic::simulate_packed(ckt, words);
  const logic::GateInst& g = ckt.gate(gate);
  EXPECT_NE(values[static_cast<std::size_t>(g.in[0])] & 1ull, 0ull);
  EXPECT_NE(values[static_cast<std::size_t>(g.in[1])] & 1ull, 0ull);
}

TEST(Podem, JustifyImpossibleCubeIsUntestable) {
  // NAND(a, a) can never see inputs (0, 1).
  logic::Circuit c;
  const auto a = c.add_primary_input("a");
  const auto y = c.add_net("y");
  c.add_gate(gates::CellKind::kNand2, {a, a}, y);
  c.mark_primary_output(y);
  c.finalize();
  const PodemEngine engine(c);
  const AtpgResult r = engine.justify_gate_cube(0, 0b10u);
  EXPECT_EQ(r.status, AtpgStatus::kUntestable);
}

TEST(Podem, RejectsWrongFaultKinds) {
  const logic::Circuit ckt = logic::c17();
  const PodemEngine engine(ckt);
  EXPECT_THROW((void)engine.generate_line(Fault::transistor(
                   0, 0, gates::TransistorFault::kStuckOpen)),
               std::invalid_argument);
  EXPECT_THROW(
      (void)engine.generate_functional(Fault::net_stuck(0, false)),
      std::invalid_argument);
  EXPECT_THROW((void)engine.generate_iddq(Fault::net_stuck(0, false)),
               std::invalid_argument);
  EXPECT_THROW((void)engine.justify_gate_cube(99, 0),
               std::invalid_argument);
}

TEST(V5, CalculusHelpers) {
  EXPECT_TRUE(V5::d().is_d());
  EXPECT_TRUE(V5::dbar().is_dbar());
  EXPECT_TRUE(V5::d().is_fault_effect());
  EXPECT_FALSE(V5::one().is_fault_effect());
  EXPECT_TRUE(V5::zero().is_definite_equal());
  EXPECT_FALSE(V5::x().is_definite_equal());
  EXPECT_STREQ(to_string(V5::d()), "D");
  EXPECT_STREQ(to_string(V5::dbar()), "D'");
  EXPECT_STREQ(to_string(V5::x()), "X");
}

}  // namespace
}  // namespace cpsinw::atpg
