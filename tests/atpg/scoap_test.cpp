#include "atpg/scoap.hpp"

#include <gtest/gtest.h>

#include "logic/benchmarks.hpp"

namespace cpsinw::atpg {
namespace {

TEST(Scoap, PrimaryInputsCostOne) {
  const logic::Circuit ckt = logic::c17();
  const auto t = compute_scoap(ckt);
  for (const logic::NetId pi : ckt.primary_inputs()) {
    EXPECT_EQ(t[static_cast<std::size_t>(pi)].cc0, 1);
    EXPECT_EQ(t[static_cast<std::size_t>(pi)].cc1, 1);
  }
}

TEST(Scoap, InverterSwapsControllabilities) {
  logic::Circuit c;
  const auto a = c.add_primary_input("a");
  const auto y = c.add_net("y");
  c.add_gate(gates::CellKind::kInv, {a}, y);
  c.mark_primary_output(y);
  c.finalize();
  const auto t = compute_scoap(c);
  // CC0(y) = CC1(a) + 1 = 2; CC1(y) = CC0(a) + 1 = 2.
  EXPECT_EQ(t[static_cast<std::size_t>(y)].cc0, 2);
  EXPECT_EQ(t[static_cast<std::size_t>(y)].cc1, 2);
  EXPECT_EQ(t[static_cast<std::size_t>(y)].obs, 0);
  EXPECT_EQ(t[static_cast<std::size_t>(a)].obs, 1);
}

TEST(Scoap, NandAsymmetry) {
  logic::Circuit c;
  const auto a = c.add_primary_input("a");
  const auto b = c.add_primary_input("b");
  const auto y = c.add_net("y");
  c.add_gate(gates::CellKind::kNand2, {a, b}, y);
  c.mark_primary_output(y);
  c.finalize();
  const auto t = compute_scoap(c);
  // NAND: out=0 needs both inputs 1 (cost 1+1+1=3); out=1 needs one 0
  // (cost 1+1=2).
  EXPECT_EQ(t[static_cast<std::size_t>(y)].cc0, 3);
  EXPECT_EQ(t[static_cast<std::size_t>(y)].cc1, 2);
  // Observing a requires b=1: obs = 1 (side) + 1 (gate) + 0.
  EXPECT_EQ(t[static_cast<std::size_t>(a)].obs, 2);
}

TEST(Scoap, XorBothValuesEquallyHard) {
  logic::Circuit c;
  const auto a = c.add_primary_input("a");
  const auto b = c.add_primary_input("b");
  const auto y = c.add_net("y");
  c.add_gate(gates::CellKind::kXor2, {a, b}, y);
  c.mark_primary_output(y);
  c.finalize();
  const auto t = compute_scoap(c);
  EXPECT_EQ(t[static_cast<std::size_t>(y)].cc0,
            t[static_cast<std::size_t>(y)].cc1);
  EXPECT_EQ(t[static_cast<std::size_t>(y)].cc0, 3);
}

TEST(Scoap, ConstantsAreFreeOneWayImpossibleTheOther) {
  logic::Circuit c;
  const auto a = c.add_primary_input("a");
  const auto one = c.add_constant(logic::LogicV::k1);
  const auto y = c.add_net("y");
  c.add_gate(gates::CellKind::kNand2, {a, one}, y);
  c.mark_primary_output(y);
  c.finalize();
  const auto t = compute_scoap(c);
  EXPECT_EQ(t[static_cast<std::size_t>(one)].cc1, 0);
  EXPECT_GT(t[static_cast<std::size_t>(one)].cc0, 1 << 20);  // unreachable
  // y behaves like NOT a.
  EXPECT_EQ(t[static_cast<std::size_t>(y)].cc0, 2);
}

TEST(Scoap, DepthIncreasesCost) {
  const logic::Circuit chain = logic::xor3_parity_chain(9);
  const auto t = compute_scoap(chain);
  const auto po = chain.primary_outputs().front();
  // Four cascaded XOR3 stages: controllability grows with depth.
  EXPECT_GT(t[static_cast<std::size_t>(po)].cc1, 4);
  // The first PI is buried under all stages for observability.
  EXPECT_GT(t[static_cast<std::size_t>(chain.primary_inputs()[0])].obs, 3);
}

TEST(Scoap, RejectsUnfinalizedCircuit) {
  logic::Circuit c;
  c.add_primary_input("a");
  EXPECT_THROW((void)compute_scoap(c), std::invalid_argument);
}

}  // namespace
}  // namespace cpsinw::atpg
