#include "spice/measure.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace cpsinw::spice {
namespace {

constexpr double kVdd = 1.2;

std::shared_ptr<const device::TigModel> ff_model() {
  static const auto model =
      std::make_shared<const device::TigModel>(device::TigParams{});
  return model;
}

TEST(Measure, PropagationDelayOfInverter) {
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add_vsource("VDD", vdd, 0, Waveform::dc(kVdd));
  ckt.add_vsource("VIN", in, 0, Waveform::step(kVdd, 0.0, 0.2e-9, 10e-12));
  ckt.add_tig("tp", ff_model(), in, 0, 0, vdd, out);
  ckt.add_tig("tn", ff_model(), in, vdd, vdd, 0, out);
  ckt.add_capacitor("CL", out, 0, 8e-15);
  TranOptions opt;
  opt.t_stop = 2.0e-9;
  opt.dt = 1e-12;
  const TranResult tr = transient(ckt, opt);
  ASSERT_TRUE(tr.converged);
  const DelayMeasurement d = propagation_delay(tr, in, out, kVdd / 2.0);
  ASSERT_TRUE(d.valid);
  // Calibration target: FO4-class inverter delay of tens to hundreds of ps
  // (paper Fig. 5a plots 0..400 ps).
  EXPECT_GT(d.delay, 10e-12);
  EXPECT_LT(d.delay, 500e-12);
}

TEST(Measure, DelayInvalidWhenOutputNeverSwitches) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add_vsource("VIN", in, 0, Waveform::step(0.0, kVdd, 0.1e-9, 10e-12));
  ckt.add_resistor("R", out, 0, 1e6);  // output pinned low
  TranOptions opt;
  opt.t_stop = 1e-9;
  opt.dt = 2e-12;
  const TranResult tr = transient(ckt, opt);
  ASSERT_TRUE(tr.converged);
  const DelayMeasurement d = propagation_delay(tr, in, out, kVdd / 2.0);
  EXPECT_FALSE(d.valid);
}

TEST(Measure, ReadLogicThresholds) {
  const LogicThresholds th;
  EXPECT_EQ(read_logic(0.1, th.v_lo, th.v_hi), LogicRead::kZero);
  EXPECT_EQ(read_logic(1.1, th.v_lo, th.v_hi), LogicRead::kOne);
  EXPECT_EQ(read_logic(0.6, th.v_lo, th.v_hi), LogicRead::kUndefined);
}

}  // namespace
}  // namespace cpsinw::spice
