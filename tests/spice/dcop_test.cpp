#include "spice/dcop.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "spice/measure.hpp"

namespace cpsinw::spice {
namespace {

constexpr double kVdd = 1.2;

std::shared_ptr<const device::TigModel> ff_model() {
  static const auto model =
      std::make_shared<const device::TigModel>(device::TigParams{});
  return model;
}

TEST(DcOp, ResistorDivider) {
  Circuit ckt;
  const NodeId top = ckt.node("top");
  const NodeId mid = ckt.node("mid");
  ckt.add_vsource("V1", top, 0, Waveform::dc(2.0));
  ckt.add_resistor("R1", top, mid, 1000.0);
  ckt.add_resistor("R2", mid, 0, 1000.0);
  const DcResult r = dc_operating_point(ckt);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.voltage(mid), 1.0, 1e-6);
  // Source delivers 1 mA into the divider.
  EXPECT_NEAR(r.supply_current(ckt, "V1"), 1e-3, 1e-8);
}

TEST(DcOp, FloatingNodePulledByGmin) {
  Circuit ckt;
  const NodeId lonely = ckt.node("lonely");
  ckt.add_resistor("R1", lonely, 0, 1e9);
  const DcResult r = dc_operating_point(ckt);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.voltage(lonely), 0.0, 1e-9);
}

TEST(DcOp, TigInverterLevels) {
  // Hand-built inverter: p pull-up (PG=0), n pull-down (PG=1).
  for (const double vin : {0.0, kVdd}) {
    Circuit ckt;
    const NodeId vdd = ckt.node("vdd");
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add_vsource("VDD", vdd, 0, Waveform::dc(kVdd));
    ckt.add_vsource("VIN", in, 0, Waveform::dc(vin));
    ckt.add_tig("tp", ff_model(), in, 0, 0, vdd, out);
    ckt.add_tig("tn", ff_model(), in, vdd, vdd, 0, out);
    const DcResult r = dc_operating_point(ckt);
    ASSERT_TRUE(r.converged) << "vin=" << vin;
    const double vout = r.voltage(out);
    if (vin == 0.0) {
      EXPECT_GT(vout, 0.9 * kVdd);
    } else {
      EXPECT_LT(vout, 0.1 * kVdd);
    }
  }
}

TEST(DcOp, TigInverterLeakageIsSmall) {
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add_vsource("VDD", vdd, 0, Waveform::dc(kVdd));
  ckt.add_vsource("VIN", in, 0, Waveform::dc(kVdd));
  ckt.add_tig("tp", ff_model(), in, 0, 0, vdd, out);
  ckt.add_tig("tn", ff_model(), in, vdd, vdd, 0, out);
  const DcResult r = dc_operating_point(ckt);
  ASSERT_TRUE(r.converged);
  // Quiescent supply current: subthreshold only (nA scale, paper Fig. 5).
  EXPECT_LT(iddq(ckt, r, "VDD"), 5e-9);
  EXPECT_GT(iddq(ckt, r, "VDD"), 1e-15);
}

TEST(DcOp, ContentionDrawsMicroamps) {
  // n pull-down fighting a rail-shorted pull-up: the IDDQ signature of the
  // paper's polarity faults (>1e6 leakage increase).
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId out = ckt.node("out");
  ckt.add_vsource("VDD", vdd, 0, Waveform::dc(kVdd));
  // p-type pull-up fully on (gates at 0).
  ckt.add_tig("tp", ff_model(), 0, 0, 0, vdd, out);
  // n-type pull-down fully on (gates at vdd).
  ckt.add_tig("tn", ff_model(), vdd, vdd, vdd, 0, out);
  const DcResult r = dc_operating_point(ckt);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(iddq(ckt, r, "VDD"), 1e-6);
  // n drive exceeds p drive: the output resolves low-ish.
  EXPECT_LT(r.voltage(out), 0.5 * kVdd);
}

TEST(DcOp, SetVsourceWaveUpdatesSolution) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_vsource("VA", a, 0, Waveform::dc(1.0));
  ckt.add_resistor("R", a, 0, 100.0);
  DcResult r = dc_operating_point(ckt);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.voltage(a), 1.0, 1e-9);
  ckt.set_vsource_wave("VA", Waveform::dc(0.25));
  r = dc_operating_point(ckt);
  EXPECT_NEAR(r.voltage(a), 0.25, 1e-9);
  EXPECT_THROW(ckt.set_vsource_wave("nope", Waveform::dc(0.0)),
               std::out_of_range);
}

TEST(Circuit, NodeManagement) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  EXPECT_EQ(ckt.node("a"), a);
  EXPECT_EQ(ckt.find_node("a"), a);
  EXPECT_THROW((void)ckt.find_node("missing"), std::out_of_range);
  EXPECT_EQ(ckt.node_name(0), "0");
  EXPECT_THROW(ckt.add_resistor("R", a, 99, 1.0), std::out_of_range);
  EXPECT_THROW(ckt.add_resistor("R", a, 0, -5.0), std::invalid_argument);
  EXPECT_THROW(ckt.add_capacitor("C", a, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(ckt.add_tig("T", nullptr, a, a, a, a, a),
               std::invalid_argument);
}

}  // namespace
}  // namespace cpsinw::spice
