#include "spice/waveform.hpp"

#include <gtest/gtest.h>

namespace cpsinw::spice {
namespace {

TEST(Waveform, DcIsConstant) {
  const Waveform w = Waveform::dc(1.2);
  EXPECT_DOUBLE_EQ(w.at(0.0), 1.2);
  EXPECT_DOUBLE_EQ(w.at(1e-9), 1.2);
  EXPECT_TRUE(w.is_dc());
}

TEST(Waveform, PwlInterpolates) {
  const Waveform w = Waveform::pwl({{0.0, 0.0}, {1e-9, 1.2}});
  EXPECT_DOUBLE_EQ(w.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.at(0.5e-9), 0.6);
  EXPECT_DOUBLE_EQ(w.at(2e-9), 1.2);
  EXPECT_FALSE(w.is_dc());
}

TEST(Waveform, PwlRejectsNonIncreasingTimes) {
  EXPECT_THROW((void)Waveform::pwl({{1.0, 0.0}, {1.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW((void)Waveform::pwl({}), std::invalid_argument);
}

TEST(Waveform, StepEdge) {
  const Waveform w = Waveform::step(0.0, 1.2, 1e-9, 10e-12);
  EXPECT_DOUBLE_EQ(w.at(0.5e-9), 0.0);
  EXPECT_NEAR(w.at(1e-9 + 5e-12), 0.6, 1e-9);
  EXPECT_DOUBLE_EQ(w.at(2e-9), 1.2);
  EXPECT_THROW((void)Waveform::step(0.0, 1.0, 0.0, 0.0),
               std::invalid_argument);
}

TEST(Waveform, TwoPatternHoldsThenSwitches) {
  const Waveform w = Waveform::two_pattern(1.2, 0.0, 2e-9, 10e-12);
  EXPECT_DOUBLE_EQ(w.at(1e-9), 1.2);
  EXPECT_DOUBLE_EQ(w.at(3e-9), 0.0);
  // Identical levels collapse to DC.
  EXPECT_TRUE(Waveform::two_pattern(1.2, 1.2, 2e-9, 10e-12).is_dc());
}

TEST(Waveform, ComplementMirrorsAroundVdd) {
  const Waveform w = Waveform::step(0.0, 1.2, 1e-9, 10e-12);
  const Waveform wb = w.complemented(1.2);
  EXPECT_DOUBLE_EQ(wb.at(0.0), 1.2);
  EXPECT_DOUBLE_EQ(wb.at(2e-9), 0.0);
  EXPECT_NEAR(w.at(1e-9 + 5e-12) + wb.at(1e-9 + 5e-12), 1.2, 1e-9);
}

}  // namespace
}  // namespace cpsinw::spice
