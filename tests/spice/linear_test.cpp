#include "spice/linear.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace cpsinw::spice {
namespace {

TEST(Matrix, StoresEntries) {
  Matrix m(3);
  m.at(0, 1) = 2.5;
  m.at(2, 2) = -1.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(m.at(2, 2), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
  m.clear();
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_THROW(Matrix(0), std::invalid_argument);
}

TEST(LuSolve, Solves2x2) {
  Matrix a(2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  std::vector<double> b = {5.0, 10.0};
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(LuSolve, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix a(2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  std::vector<double> b = {2.0, 3.0};
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(LuSolve, DetectsSingular) {
  Matrix a(2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  std::vector<double> b = {1.0, 2.0};
  EXPECT_FALSE(lu_solve(a, b));
}

TEST(LuSolve, RandomSystemsRoundTrip) {
  util::SplitMix64 rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 1 + static_cast<int>(rng.below(12));
    Matrix a(n);
    std::vector<double> x_ref(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      x_ref[static_cast<std::size_t>(i)] = rng.uniform(-2.0, 2.0);
      for (int j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1.0, 1.0);
      a.at(i, i) += static_cast<double>(n);  // diagonally dominant
    }
    // b = A * x_ref
    std::vector<double> b(static_cast<std::size_t>(n), 0.0);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        b[static_cast<std::size_t>(i)] +=
            a.at(i, j) * x_ref[static_cast<std::size_t>(j)];
    Matrix a_copy = a;
    ASSERT_TRUE(lu_solve(a_copy, b));
    for (int i = 0; i < n; ++i)
      EXPECT_NEAR(b[static_cast<std::size_t>(i)],
                  x_ref[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(LuSolve, RejectsDimensionMismatch) {
  Matrix a(2);
  std::vector<double> b = {1.0};
  EXPECT_THROW((void)lu_solve(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace cpsinw::spice
