#include "spice/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace cpsinw::spice {
namespace {

constexpr double kVdd = 1.2;

std::shared_ptr<const device::TigModel> ff_model() {
  static const auto model =
      std::make_shared<const device::TigModel>(device::TigParams{});
  return model;
}

TEST(Transient, RcChargingMatchesAnalyticSolution) {
  // R = 1k, C = 1pF -> tau = 1ns.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add_vsource("V1", in, 0, Waveform::step(0.0, 1.0, 0.1e-9, 1e-12));
  ckt.add_resistor("R", in, out, 1000.0);
  ckt.add_capacitor("C", out, 0, 1e-12);
  TranOptions opt;
  opt.t_stop = 3e-9;
  opt.dt = 2e-12;
  const TranResult tr = transient(ckt, opt);
  ASSERT_TRUE(tr.converged);
  // Compare against v(t) = 1 - exp(-(t-t0)/tau) at a few instants.
  for (const double t_probe : {0.5e-9, 1.0e-9, 2.0e-9}) {
    std::size_t idx = 0;
    while (idx + 1 < tr.time.size() && tr.time[idx] < t_probe) ++idx;
    const double expected = 1.0 - std::exp(-(tr.time[idx] - 0.101e-9) / 1e-9);
    EXPECT_NEAR(tr.v[static_cast<std::size_t>(out)][idx], expected, 0.02);
  }
}

TEST(Transient, CapacitorRetainsChargeWhenFloating) {
  // Charge a cap through a resistor, no discharge path: final voltage holds.
  Circuit ckt;
  const NodeId top = ckt.node("top");
  ckt.add_vsource("V1", top, 0, Waveform::dc(1.0));
  const NodeId store = ckt.node("store");
  ckt.add_resistor("R", top, store, 100.0);
  ckt.add_capacitor("C", store, 0, 1e-12);
  TranOptions opt;
  opt.t_stop = 2e-9;
  opt.dt = 2e-12;
  const TranResult tr = transient(ckt, opt);
  ASSERT_TRUE(tr.converged);
  EXPECT_NEAR(tr.final_voltage(store), 1.0, 1e-3);
}

TEST(Transient, InverterSwitchesWithPlausibleDelay) {
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add_vsource("VDD", vdd, 0, Waveform::dc(kVdd));
  ckt.add_vsource("VIN", in, 0, Waveform::step(kVdd, 0.0, 0.2e-9, 10e-12));
  ckt.add_tig("tp", ff_model(), in, 0, 0, vdd, out);
  ckt.add_tig("tn", ff_model(), in, vdd, vdd, 0, out);
  ckt.add_capacitor("CL", out, 0, 8e-15);
  TranOptions opt;
  opt.t_stop = 2.0e-9;
  opt.dt = 1e-12;
  const TranResult tr = transient(ckt, opt);
  ASSERT_TRUE(tr.converged);
  // Output starts low (in = vdd) and ends high after the edge.
  EXPECT_LT(tr.v[static_cast<std::size_t>(out)].front(), 0.15);
  EXPECT_GT(tr.final_voltage(out), 0.9 * kVdd);
}

TEST(Transient, RejectsBadOptions) {
  Circuit ckt;
  TranOptions opt;
  opt.dt = 0.0;
  EXPECT_THROW((void)transient(ckt, opt), std::invalid_argument);
  opt.dt = 1e-12;
  opt.t_stop = -1.0;
  EXPECT_THROW((void)transient(ckt, opt), std::invalid_argument);
}

}  // namespace
}  // namespace cpsinw::spice
