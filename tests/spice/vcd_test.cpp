#include "spice/vcd.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

namespace cpsinw::spice {
namespace {

TranResult make_rc_tran(Circuit& ckt) {
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add_vsource("V1", in, 0, Waveform::step(0.0, 1.0, 0.1e-9, 1e-12));
  ckt.add_resistor("R", in, out, 1000.0);
  ckt.add_capacitor("C", out, 0, 1e-12);
  TranOptions opt;
  opt.t_stop = 1e-9;
  opt.dt = 10e-12;
  return transient(ckt, opt);
}

TEST(Vcd, EmitsHeaderVariablesAndChanges) {
  Circuit ckt;
  const TranResult tran = make_rc_tran(ckt);
  ASSERT_TRUE(tran.converged);
  std::ostringstream oss;
  write_vcd(oss, ckt, tran);
  const std::string vcd = oss.str();
  EXPECT_NE(vcd.find("$timescale 1 ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var real 64"), std::string::npos);
  EXPECT_NE(vcd.find("v(in)"), std::string::npos);
  EXPECT_NE(vcd.find("v(out)"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("#1000"), std::string::npos);  // 1 ns at 1 ps scale
  EXPECT_NE(vcd.find('r'), std::string::npos);      // real value changes
}

TEST(Vcd, SelectedNodesOnly) {
  Circuit ckt;
  const TranResult tran = make_rc_tran(ckt);
  std::ostringstream oss;
  write_vcd(oss, ckt, tran, {ckt.find_node("out")});
  const std::string vcd = oss.str();
  EXPECT_EQ(vcd.find("v(in)"), std::string::npos);
  EXPECT_NE(vcd.find("v(out)"), std::string::npos);
}

TEST(Vcd, QuietNodesEmitOnce) {
  Circuit ckt;
  const TranResult tran = make_rc_tran(ckt);
  std::ostringstream oss;
  VcdOptions opt;
  write_vcd(oss, ckt, tran, {ckt.find_node("in")}, opt);
  // The input steps once: the dump must be small (header + 2-3 stamps),
  // not one entry per timestep.
  const std::string vcd = oss.str();
  int stamps = 0;
  for (const char c : vcd)
    if (c == '#') ++stamps;
  EXPECT_LT(stamps, 8);
}

TEST(Vcd, RejectsBadInputs) {
  Circuit ckt;
  TranResult empty;
  std::ostringstream oss;
  EXPECT_THROW(write_vcd(oss, ckt, empty), std::invalid_argument);
  const TranResult tran = make_rc_tran(ckt);
  VcdOptions bad;
  bad.timescale_s = 0.0;
  EXPECT_THROW(write_vcd(oss, ckt, tran, {}, bad), std::invalid_argument);
}

}  // namespace
}  // namespace cpsinw::spice
