// Solver robustness: convergence fallbacks, stiff element values, and
// measurement edge cases.
#include <gtest/gtest.h>

#include <memory>

#include "spice/dcop.hpp"
#include "spice/measure.hpp"
#include "spice/transient.hpp"

namespace cpsinw::spice {
namespace {

constexpr double kVdd = 1.2;

std::shared_ptr<const device::TigModel> ff_model() {
  static const auto model =
      std::make_shared<const device::TigModel>(device::TigParams{});
  return model;
}

TEST(Robustness, SourceSteppingRescuesColdStart) {
  // A long chain of inverters with a tight Newton budget: the plain solve
  // may struggle from the zero initial guess; continuation must converge.
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  ckt.add_vsource("VDD", vdd, 0, Waveform::dc(kVdd));
  NodeId in = ckt.node("in");
  ckt.add_vsource("VIN", in, 0, Waveform::dc(0.0));
  for (int i = 0; i < 8; ++i) {
    const NodeId out = ckt.node("n" + std::to_string(i));
    ckt.add_tig("p" + std::to_string(i), ff_model(), in, 0, 0, vdd, out);
    ckt.add_tig("n" + std::to_string(i), ff_model(), in, vdd, vdd, 0, out);
    in = out;
  }
  NewtonOptions opt;
  opt.max_iterations = 25;  // deliberately tight
  const DcResult r = dc_operating_point(ckt, 0.0, opt);
  ASSERT_TRUE(r.converged);
  // Eight inversions of a 0: the last node is low... chain alternates.
  const double v_last = r.voltage(in);
  EXPECT_TRUE(v_last < 0.1 || v_last > 1.1);
}

TEST(Robustness, ExtremeResistorSpreadStaysSolvable) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add_vsource("V", a, 0, Waveform::dc(1.0));
  ckt.add_resistor("Rsmall", a, b, 1e-1);
  ckt.add_resistor("Rbig", b, 0, 1e9);
  const DcResult r = dc_operating_point(ckt);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.voltage(b), 1.0, 1e-6);
}

TEST(Robustness, TransientWithMultipleCapsConservesMonotonicity) {
  // Cascade of two RC stages: the second node must lag the first and both
  // must settle at the source level without overshoot (trapezoidal on an
  // RC ladder is non-oscillatory at these steps).
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId m = ckt.node("m");
  const NodeId out = ckt.node("out");
  ckt.add_vsource("V", in, 0, Waveform::step(0.0, 1.0, 0.05e-9, 1e-12));
  ckt.add_resistor("R1", in, m, 1e3);
  ckt.add_capacitor("C1", m, 0, 0.2e-12);
  ckt.add_resistor("R2", m, out, 1e3);
  ckt.add_capacitor("C2", out, 0, 0.2e-12);
  TranOptions opt;
  opt.t_stop = 3e-9;
  opt.dt = 2e-12;
  const TranResult tr = transient(ckt, opt);
  ASSERT_TRUE(tr.converged);
  for (std::size_t i = 0; i < tr.time.size(); ++i) {
    EXPECT_LE(tr.v[static_cast<std::size_t>(out)][i],
              tr.v[static_cast<std::size_t>(m)][i] + 1e-6);
    EXPECT_LE(tr.v[static_cast<std::size_t>(out)][i], 1.0 + 1e-6);
  }
  EXPECT_NEAR(tr.final_voltage(out), 1.0, 0.01);
}

TEST(Robustness, BranchCurrentSignConvention) {
  // Source delivering current: branch current is negative (pos->neg
  // internal flow), supply_current positive.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V", a, 0, Waveform::dc(2.0));
  ckt.add_resistor("R", a, 0, 1000.0);
  const DcResult r = dc_operating_point(ckt);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.branch_current[0], 0.0);
  EXPECT_NEAR(r.supply_current(ckt, "V"), 2e-3, 1e-9);
  EXPECT_NEAR(iddq_total(r), 2e-3, 1e-9);
}

TEST(Robustness, BackToBackSourcesShareCurrent) {
  // Two sources at different levels joined by a resistor: one delivers,
  // one absorbs; iddq_total counts only the delivered part.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add_vsource("VA", a, 0, Waveform::dc(1.0));
  ckt.add_vsource("VB", b, 0, Waveform::dc(0.0));
  ckt.add_resistor("R", a, b, 1000.0);
  const DcResult r = dc_operating_point(ckt);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(iddq_total(r), 1e-3, 1e-9);
}

TEST(Robustness, TimeDependentSourcesEvaluateAtRequestedTime) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V", a, 0, Waveform::step(0.2, 0.9, 1e-9, 0.2e-9));
  ckt.add_resistor("R", a, 0, 1e6);
  const DcResult early = dc_operating_point(ckt, 0.0);
  const DcResult late = dc_operating_point(ckt, 5e-9);
  ASSERT_TRUE(early.converged);
  ASSERT_TRUE(late.converged);
  EXPECT_NEAR(early.voltage(a), 0.2, 1e-6);
  EXPECT_NEAR(late.voltage(a), 0.9, 1e-6);
}

}  // namespace
}  // namespace cpsinw::spice
