#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cpsinw::util {
namespace {

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(SplitMix64, DoublesInUnitInterval) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64, UniformRespectsBounds) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform(-2.0, 3.0);
    EXPECT_GE(d, -2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(SplitMix64, BelowCoversRange) {
  SplitMix64 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
  for (const auto v : seen) EXPECT_LT(v, 5u);
}

TEST(SplitMix64, ChanceIsRoughlyCalibrated) {
  SplitMix64 rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.25)) ++hits;
  const double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(SplitMix64Fork, DeterministicAndOrderIndependent) {
  const SplitMix64 parent(123);
  SplitMix64 a = parent.fork(7);
  SplitMix64 b = parent.fork(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());

  // Forking does not advance the parent: fork(3) after fork(7) equals
  // fork(3) taken first.
  SplitMix64 parent2(123);
  SplitMix64 c = parent2.fork(3);
  (void)parent.fork(7);
  SplitMix64 d = parent.fork(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c.next_u64(), d.next_u64());
}

TEST(SplitMix64Fork, AdjacentStreamsDivergeStatistically) {
  // Shard streams are forked with consecutive indices; their outputs must
  // look independent.  Across adjacent pairs, XOR of the two streams
  // should flip about half of all bits.
  const SplitMix64 parent(2024);
  const int streams = 16;
  const int draws = 256;
  for (int s = 0; s + 1 < streams; ++s) {
    SplitMix64 a = parent.fork(static_cast<std::uint64_t>(s));
    SplitMix64 b = parent.fork(static_cast<std::uint64_t>(s + 1));
    long long differing_bits = 0;
    for (int i = 0; i < draws; ++i)
      differing_bits += __builtin_popcountll(a.next_u64() ^ b.next_u64());
    const double rate =
        static_cast<double>(differing_bits) / (64.0 * draws);
    EXPECT_NEAR(rate, 0.5, 0.05) << "streams " << s << "," << s + 1;
  }
}

TEST(SplitMix64Fork, StreamsDifferFromParentAndEachOther) {
  const SplitMix64 parent(9);
  SplitMix64 parent_draw(9);
  std::set<std::uint64_t> first_draws;
  first_draws.insert(parent_draw.next_u64());
  for (int s = 0; s < 64; ++s) {
    SplitMix64 child = parent.fork(static_cast<std::uint64_t>(s));
    first_draws.insert(child.next_u64());
  }
  // 1 parent draw + 64 child draws, all distinct.
  EXPECT_EQ(first_draws.size(), 65u);
}

}  // namespace
}  // namespace cpsinw::util
