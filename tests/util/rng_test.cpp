#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cpsinw::util {
namespace {

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(SplitMix64, DoublesInUnitInterval) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64, UniformRespectsBounds) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform(-2.0, 3.0);
    EXPECT_GE(d, -2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(SplitMix64, BelowCoversRange) {
  SplitMix64 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
  for (const auto v : seen) EXPECT_LT(v, 5u);
}

TEST(SplitMix64, ChanceIsRoughlyCalibrated) {
  SplitMix64 rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.25)) ++hits;
  const double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

}  // namespace
}  // namespace cpsinw::util
