#include "util/series.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cpsinw::util {
namespace {

TEST(DataSeries, StoresColumnsAndSamples) {
  DataSeries s("test", "x");
  const int c0 = s.add_column("y0");
  const int c1 = s.add_column("y1");
  s.add_sample(0.0, {1.0, 2.0});
  s.add_sample(1.0, {3.0, 4.0});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.column_count(), 2);
  EXPECT_DOUBLE_EQ(s.column(c0)[1], 3.0);
  EXPECT_DOUBLE_EQ(s.column(c1)[0], 2.0);
  EXPECT_EQ(s.column_label(1), "y1");
}

TEST(DataSeries, RejectsArityMismatch) {
  DataSeries s("test", "x");
  s.add_column("y");
  EXPECT_THROW(s.add_sample(0.0, {1.0, 2.0}), std::invalid_argument);
}

TEST(DataSeries, WritesCsv) {
  DataSeries s("test", "t");
  s.add_column("v");
  s.add_sample(0.5, {2.5});
  std::ostringstream oss;
  s.write_csv(oss);
  EXPECT_EQ(oss.str(), "t,v\n0.5,2.5\n");
}

TEST(DataSeries, PrintsReadableTable) {
  DataSeries s("demo", "x");
  s.add_column("y");
  s.add_sample(1.0, {2.0});
  std::ostringstream oss;
  s.print(oss);
  EXPECT_NE(oss.str().find("# demo"), std::string::npos);
  EXPECT_NE(oss.str().find("y"), std::string::npos);
}

}  // namespace
}  // namespace cpsinw::util
