#include "util/numeric.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cpsinw::util {
namespace {

TEST(Sigmoid, MatchesReferenceValues) {
  EXPECT_NEAR(sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(sigmoid(1.0), 1.0 / (1.0 + std::exp(-1.0)), 1e-12);
  EXPECT_NEAR(sigmoid(-1.0), 1.0 - sigmoid(1.0), 1e-12);
}

TEST(Sigmoid, StableForLargeArguments) {
  EXPECT_NEAR(sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-1000.0), 0.0, 1e-12);
  EXPECT_TRUE(std::isfinite(sigmoid(700.0)));
  EXPECT_TRUE(std::isfinite(sigmoid(-700.0)));
}

TEST(Sigmoid, Monotone) {
  double prev = sigmoid(-10.0);
  for (double x = -9.5; x <= 10.0; x += 0.5) {
    const double cur = sigmoid(x);
    EXPECT_GT(cur, prev) << "at x=" << x;
    prev = cur;
  }
}

TEST(Softplus, MatchesLogForm) {
  EXPECT_NEAR(softplus(0.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(softplus(2.0), std::log1p(std::exp(2.0)), 1e-12);
}

TEST(Softplus, AsymptoticBehaviour) {
  EXPECT_NEAR(softplus(50.0), 50.0, 1e-9);
  EXPECT_NEAR(softplus(-50.0), std::exp(-50.0), 1e-24);
  EXPECT_GT(softplus(-50.0), 0.0);
}

TEST(ClampChecked, ClampsAndValidates) {
  EXPECT_EQ(clamp_checked(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(clamp_checked(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(clamp_checked(0.5, 0.0, 1.0), 0.5);
  EXPECT_THROW((void)clamp_checked(0.0, 1.0, 0.0), std::invalid_argument);
}

TEST(ApproxEqual, RespectsTolerances) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.01));
  EXPECT_TRUE(approx_equal(1.0, 1.005, 1e-2));
}

TEST(PiecewiseLinear, InterpolatesAndExtrapolatesFlat) {
  PiecewiseLinear f({0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
  EXPECT_NEAR(f(0.5), 5.0, 1e-12);
  EXPECT_NEAR(f(1.5), 5.0, 1e-12);
  EXPECT_NEAR(f(-1.0), 0.0, 1e-12);
  EXPECT_NEAR(f(3.0), 0.0, 1e-12);
}

TEST(PiecewiseLinear, RejectsBadInput) {
  EXPECT_THROW(PiecewiseLinear({}, {}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinear({0.0, 0.0}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(PiecewiseLinear({0.0, 1.0}, {1.0}), std::invalid_argument);
}

TEST(Linspace, CoversRangeInclusive) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_NEAR(v[2], 0.5, 1e-12);
  EXPECT_THROW((void)linspace(0.0, 1.0, 1), std::invalid_argument);
}

TEST(Logspace, GeometricSpacing) {
  const auto v = logspace(1.0, 100.0, 3);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_NEAR(v[0], 1.0, 1e-9);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_NEAR(v[2], 100.0, 1e-9);
  EXPECT_THROW((void)logspace(0.0, 1.0, 3), std::invalid_argument);
}

TEST(FindCrossing, LocatesRisingAndFalling) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> rising = {0.0, 0.0, 1.0, 1.0};
  EXPECT_NEAR(find_crossing(x, rising, 0.5), 1.5, 1e-12);
  const std::vector<double> falling = {1.0, 1.0, 0.0, 0.0};
  EXPECT_NEAR(find_crossing(x, falling, 0.5), 1.5, 1e-12);
  const std::vector<double> flat = {0.0, 0.0, 0.0, 0.0};
  EXPECT_TRUE(std::isnan(find_crossing(x, flat, 0.5)));
}

}  // namespace
}  // namespace cpsinw::util
