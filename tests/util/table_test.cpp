#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cpsinw::util {
namespace {

TEST(AsciiTable, RendersAlignedCells) {
  AsciiTable t({"fault", "vector"});
  t.add_row({"t1 SA-N", "00"});
  t.add_row({"t2", "11"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| fault  "), std::string::npos);
  EXPECT_NE(s.find("| t1 SA-N"), std::string::npos);
  EXPECT_NE(s.find("+--------"), std::string::npos);
}

TEST(AsciiTable, RejectsArityMismatch) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(AsciiTable({}), std::invalid_argument);
}

TEST(AsciiTable, RowBuilderCommitsOnDestruction) {
  AsciiTable t({"name", "value", "flag"});
  { t.row().cell("x").num(1.25, 2).boolean(true); }
  EXPECT_EQ(t.row_count(), 1u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("Yes"), std::string::npos);
}

TEST(Format, FixedSciAndYesNo) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_sci(12345.0, 2), "1.23e+04");
  EXPECT_EQ(format_yes_no(true), "Yes");
  EXPECT_EQ(format_yes_no(false), "No");
}

}  // namespace
}  // namespace cpsinw::util
