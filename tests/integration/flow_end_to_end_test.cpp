// End-to-end integration: the complete test flow's artifacts are verified
// by independent fault simulation — every pattern the flow emits must
// detect the fault it was generated for, through the observation protocol
// it was assigned.
#include <gtest/gtest.h>

#include "core/test_flow.hpp"
#include "logic/benchmarks.hpp"
#include "logic/netlist_format.hpp"

#include <sstream>

namespace cpsinw {
namespace {

/// Checks one suite against its circuit fault-by-fault.
void verify_suite(const logic::Circuit& ckt, const core::TestSuite& suite) {
  const faults::FaultSimulator fsim(ckt);
  for (const core::FaultOutcome& outcome : suite.outcomes) {
    switch (outcome.method) {
      case core::CoverageMethod::kStuckAtPattern: {
        // Some pattern in the combinational set detects it (compaction may
        // have merged the original one away).
        bool hit = false;
        for (const logic::Pattern& p : suite.logic_patterns)
          if (fsim.line_fault_detected(outcome.fault, p)) hit = true;
        EXPECT_TRUE(hit) << outcome.fault.describe(ckt);
        break;
      }
      case core::CoverageMethod::kFunctionalPattern: {
        bool hit = false;
        for (const logic::Pattern& p : suite.logic_patterns) {
          faults::FaultSimOptions fso;
          fso.observe_iddq = false;
          if (fsim.simulate_transistor_fault(outcome.fault, {p}, fso)
                  .detected_output)
            hit = true;
        }
        EXPECT_TRUE(hit) << outcome.fault.describe(ckt);
        break;
      }
      case core::CoverageMethod::kIddqPattern: {
        bool hit = false;
        for (const logic::Pattern& p : suite.iddq_patterns)
          if (fsim.simulate_transistor_fault(outcome.fault, {p})
                  .detected_iddq)
            hit = true;
        EXPECT_TRUE(hit) << outcome.fault.describe(ckt);
        break;
      }
      case core::CoverageMethod::kTwoPattern: {
        bool hit = false;
        for (const atpg::TwoPatternTest& t : suite.two_pattern_tests)
          if (t.fault == outcome.fault &&
              fsim.stuck_open_detected(outcome.fault, t.init, t.test))
            hit = true;
        EXPECT_TRUE(hit) << outcome.fault.describe(ckt);
        break;
      }
      case core::CoverageMethod::kChannelBreak: {
        bool found = false;
        for (const atpg::ChannelBreakTest& t : suite.channel_break_tests) {
          if (t.gate != outcome.fault.gate ||
              t.transistor != outcome.fault.cell_fault.transistor)
            continue;
          found = true;
          const auto cell_outcome = atpg::evaluate_cell_test(
              ckt.gate(t.gate).kind, t);
          EXPECT_TRUE(cell_outcome.distinguishes())
              << outcome.fault.describe(ckt);
        }
        EXPECT_TRUE(found) << outcome.fault.describe(ckt);
        break;
      }
      case core::CoverageMethod::kUncovered:
        break;
    }
  }
}

class FlowEndToEnd : public ::testing::TestWithParam<const char*> {};

TEST_P(FlowEndToEnd, EveryEmittedTestVerifies) {
  const std::string name = GetParam();
  logic::Circuit ckt;
  if (name == "c17") ckt = logic::c17();
  else if (name == "full_adder") ckt = logic::full_adder();
  else if (name == "ripple_adder_3") ckt = logic::ripple_adder(3);
  else if (name == "tmr_voter_2") ckt = logic::tmr_voter(2);
  else if (name == "parity_tree_5") ckt = logic::parity_tree(5);
  else FAIL() << "unknown benchmark";

  const core::TestSuite suite = core::run_test_flow(ckt);
  verify_suite(ckt, suite);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, FlowEndToEnd,
                         ::testing::Values("c17", "full_adder",
                                           "ripple_adder_3", "tmr_voter_2",
                                           "parity_tree_5"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(FlowEndToEnd, NetlistRoundTripPreservesFlowResults) {
  // Serialize a circuit, parse it back, run the flow on both: coverage and
  // method mix must match.
  const logic::Circuit original = logic::ripple_adder(2);
  std::istringstream is(logic::to_netlist_string(original));
  const logic::Circuit parsed = logic::read_netlist(is);
  const core::TestSuite a = core::run_test_flow(original);
  const core::TestSuite b = core::run_test_flow(parsed);
  EXPECT_DOUBLE_EQ(a.coverage(), b.coverage());
  EXPECT_EQ(a.count(core::CoverageMethod::kIddqPattern),
            b.count(core::CoverageMethod::kIddqPattern));
  EXPECT_EQ(a.count(core::CoverageMethod::kChannelBreak),
            b.count(core::CoverageMethod::kChannelBreak));
}

}  // namespace
}  // namespace cpsinw
