// Randomized property sweeps: pseudo-random circuits exercise the whole
// stack — simulators must agree with each other, ATPG must stay sound,
// serialization must round-trip — across many seeds.
#include <gtest/gtest.h>

#include <sstream>

#include "atpg/podem.hpp"
#include "faults/fault_sim.hpp"
#include "logic/benchmarks.hpp"
#include "logic/netlist_format.hpp"
#include "util/rng.hpp"

namespace cpsinw {
namespace {

using logic::LogicV;
using logic::Pattern;

Pattern random_pattern(util::SplitMix64& rng, std::size_t n) {
  Pattern p(n);
  for (auto& v : p) v = logic::from_bool(rng.chance(0.5));
  return p;
}

class RandomCircuits : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCircuits, PackedSimMatchesScalarSim) {
  const logic::Circuit ckt = logic::random_circuit(GetParam(), 6, 30);
  const logic::Simulator sim(ckt);
  util::SplitMix64 rng(GetParam() * 977 + 1);
  std::vector<Pattern> patterns;
  for (int k = 0; k < 48; ++k)
    patterns.push_back(random_pattern(rng, ckt.primary_inputs().size()));
  const auto words = logic::pack_patterns(ckt, patterns);
  const auto packed = logic::simulate_packed(ckt, words);
  for (std::size_t k = 0; k < patterns.size(); ++k) {
    const logic::SimResult r = sim.simulate(patterns[k]);
    for (const logic::NetId po : ckt.primary_outputs()) {
      const bool bit = (packed[static_cast<std::size_t>(po)] >> k) & 1ull;
      ASSERT_EQ(logic::from_bool(bit), r.value(po))
          << "seed=" << GetParam() << " pattern=" << k;
    }
  }
}

TEST_P(RandomCircuits, PodemStaysSoundOnLineFaults) {
  const logic::Circuit ckt = logic::random_circuit(GetParam(), 5, 20);
  const atpg::PodemEngine engine(ckt);
  const faults::FaultSimulator fsim(ckt);
  faults::FaultListOptions flo;
  flo.include_transistor_faults = false;
  for (const faults::Fault& f : generate_fault_list(ckt, flo)) {
    const atpg::AtpgResult r = engine.generate_line(f);
    if (r.status != atpg::AtpgStatus::kDetected) continue;
    ASSERT_TRUE(fsim.line_fault_detected(f, r.pattern))
        << "seed=" << GetParam() << " " << f.describe(ckt);
  }
}

TEST_P(RandomCircuits, UntestableVerdictsAreTrueOnExhaustiveCheck) {
  // Small circuits: exhaustive simulation can certify an "untestable"
  // verdict — PODEM must never declare a detectable fault untestable.
  const logic::Circuit ckt = logic::random_circuit(GetParam(), 4, 12);
  const atpg::PodemEngine engine(ckt);
  const faults::FaultSimulator fsim(ckt);
  std::vector<Pattern> all;
  for (unsigned v = 0; v < 16u; ++v) {
    Pattern p(4);
    for (int i = 0; i < 4; ++i)
      p[static_cast<std::size_t>(i)] = logic::from_bool((v >> i) & 1u);
    all.push_back(std::move(p));
  }
  faults::FaultListOptions flo;
  flo.include_transistor_faults = false;
  for (const faults::Fault& f : generate_fault_list(ckt, flo)) {
    const atpg::AtpgResult r = engine.generate_line(f);
    if (r.status != atpg::AtpgStatus::kUntestable) continue;
    for (const Pattern& p : all)
      ASSERT_FALSE(fsim.line_fault_detected(f, p))
          << "seed=" << GetParam() << " " << f.describe(ckt)
          << " declared untestable but a pattern detects it";
  }
}

TEST_P(RandomCircuits, NetlistRoundTripPreservesSimulation) {
  const logic::Circuit ckt = logic::random_circuit(GetParam(), 5, 25);
  std::istringstream is(logic::to_netlist_string(ckt));
  const logic::Circuit back = logic::read_netlist(is);
  const logic::Simulator sim_a(ckt);
  const logic::Simulator sim_b(back);
  util::SplitMix64 rng(GetParam() + 5);
  for (int k = 0; k < 20; ++k) {
    const Pattern p = random_pattern(rng, ckt.primary_inputs().size());
    const logic::SimResult ra = sim_a.simulate(p);
    const logic::SimResult rb = sim_b.simulate(p);
    for (std::size_t i = 0; i < ckt.primary_outputs().size(); ++i)
      ASSERT_EQ(ra.value(ckt.primary_outputs()[i]),
                rb.value(back.primary_outputs()[i]));
  }
}

TEST_P(RandomCircuits, ScoapIsFiniteOnReachableNets) {
  const logic::Circuit ckt = logic::random_circuit(GetParam(), 6, 30);
  const auto scoap = atpg::compute_scoap(ckt);
  // Every net must be settable to at least one value, and every net that
  // feeds a PO cone must be observable.
  for (logic::NetId n = 0; n < ckt.net_count(); ++n) {
    EXPECT_LT(std::min(scoap[static_cast<std::size_t>(n)].cc0,
                       scoap[static_cast<std::size_t>(n)].cc1),
              1 << 20)
        << "net " << ckt.net_name(n);
  }
  for (const logic::NetId po : ckt.primary_outputs())
    EXPECT_EQ(scoap[static_cast<std::size_t>(po)].obs, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuits,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

}  // namespace
}  // namespace cpsinw
