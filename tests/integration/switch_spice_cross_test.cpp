// Cross-validation of the two independent behavioural models:
// the discrete switch-level evaluator (gates/switch_level) and the analog
// SPICE solution of the transistor netlist (spice + device).  For every
// cell, every input vector and every transistor fault the two must agree
// on the output classification and the IDDQ observation.
//
// This is the load-bearing property test of the whole reproduction: the
// logic-level fault dictionaries that ATPG relies on are proven against
// the physics-level model that reproduces the paper's device behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "gates/fault_dictionary.hpp"
#include "gates/spice_builder.hpp"
#include "gates/switch_level.hpp"
#include "spice/dcop.hpp"
#include "spice/measure.hpp"
#include "spice/transient.hpp"

namespace cpsinw {
namespace {

constexpr double kVdd = 1.2;
/// IDDQ threshold separating contention (tens of uA) from subthreshold
/// leakage (sub-nA): generous margins on both sides.
constexpr double kIddqThreshold = 0.5e-6;

/// Analog interpretation aligned with the switch-level value classes.
enum class AnalogClass { kZero, kOne, kMarginal };

AnalogClass classify_voltage(double v) {
  if (v <= 0.45) return AnalogClass::kZero;
  if (v >= 0.75) return AnalogClass::kOne;
  return AnalogClass::kMarginal;
}

/// Expected DC class of a switch-level value.  Weak0 is excluded here: a
/// p-mode device passing 0 keeps discharging through its exponential
/// barrier tails, so its *DC* equilibrium reads 0 while the *at-speed*
/// sample sits mid-band — those rows are verified by transient below.
std::optional<AnalogClass> expected_dc_class(gates::SwitchValue v) {
  switch (v) {
    case gates::SwitchValue::kStrong0: return AnalogClass::kZero;
    case gates::SwitchValue::kStrong1: return AnalogClass::kOne;
    // Weak1 settles near VDD - V_barrier (~0.8+ V): a degraded one.
    case gates::SwitchValue::kWeak1: return AnalogClass::kOne;
    case gates::SwitchValue::kWeak0: return std::nullopt;
    case gates::SwitchValue::kX: return std::nullopt;  // analog tie varies
    case gates::SwitchValue::kZ: return std::nullopt;
  }
  return std::nullopt;
}

/// At-speed verification of a Weak0 row: starting from an initialization
/// vector whose (faulty) output is a solid 1, switch to the target vector
/// and sample after 3 ns.  A weak-0 drive must have left the output
/// distinctly degraded: below the valid-1 threshold but visibly above a
/// clean 0 (the paper's "wrong output voltage" observation).
void verify_weak0_at_speed(gates::CellKind kind, unsigned target,
                           const gates::CellFault& fault,
                           gates::CellCircuitSpec spec_template) {
  // Find an initialization vector that reads 1 under the fault.
  const gates::FaultAnalysis fa = gates::analyze_fault(kind, fault);
  std::optional<unsigned> init;
  for (const gates::FaultRow& row : fa.rows) {
    if (gates::logic_value(row.faulty.out) == 1 && row.good == 1) {
      init = row.input;
      break;
    }
  }
  if (!init) return;  // nothing to initialize from; skip

  constexpr double kSwitch = 0.3e-9;
  gates::CellCircuitSpec spec = std::move(spec_template);
  spec.inputs.clear();
  for (int i = 0; i < gates::input_count(kind); ++i) {
    const double v0 = ((*init >> i) & 1u) ? kVdd : 0.0;
    const double v1 = ((target >> i) & 1u) ? kVdd : 0.0;
    spec.inputs.push_back(
        spice::Waveform::two_pattern(v0, v1, kSwitch, 10e-12));
  }
  gates::CellCircuit cc = gates::build_cell_circuit(spec);
  spice::TranOptions opt;
  opt.t_stop = 3e-9;
  opt.dt = 4e-12;
  const spice::TranResult tr = spice::transient(cc.ckt, opt);
  ASSERT_TRUE(tr.converged);
  const double sampled = tr.final_voltage(cc.out);
  EXPECT_LT(sampled, 0.75) << gates::to_string(kind) << " v=" << target
                           << " weak-0 should not read as a valid 1";
  EXPECT_GT(sampled, 0.1) << gates::to_string(kind) << " v=" << target
                          << " weak-0 should be visibly degraded at speed";
}

struct CrossCase {
  gates::CellKind kind;
  gates::CellFault fault;  // kNone for the fault-free sweep
};

class SwitchSpiceCross : public ::testing::TestWithParam<gates::CellKind> {};

TEST_P(SwitchSpiceCross, FaultFreeAgreesEverywhere) {
  const gates::CellKind kind = GetParam();
  const unsigned combos = 1u << gates::input_count(kind);
  for (unsigned v = 0; v < combos; ++v) {
    const gates::SwitchEval sw = gates::eval_switch(kind, v);

    gates::CellCircuitSpec spec;
    spec.kind = kind;
    spec.inputs = gates::dc_inputs(kind, v, kVdd);
    gates::CellCircuit cc = gates::build_cell_circuit(spec);
    const spice::DcResult op = spice::dc_operating_point(cc.ckt);
    ASSERT_TRUE(op.converged) << gates::to_string(kind) << " v=" << v;

    const auto expect = expected_dc_class(sw.out);
    ASSERT_TRUE(expect.has_value());
    EXPECT_EQ(classify_voltage(op.voltage(cc.out)), *expect)
        << gates::to_string(kind) << " v=" << v
        << " vout=" << op.voltage(cc.out);
    const double iddq = spice::iddq_total(op);
    EXPECT_EQ(iddq > kIddqThreshold, sw.contention)
        << gates::to_string(kind) << " v=" << v << " iddq=" << iddq;
  }
}

/// Polarity faults: the dictionary's output class and contention flag must
/// match the SPICE solution with the PG contact bridged to the rail.
TEST_P(SwitchSpiceCross, PolarityFaultsAgreeEverywhere) {
  const gates::CellKind kind = GetParam();
  const auto& tpl = gates::cell(kind);
  const unsigned combos = 1u << gates::input_count(kind);
  for (std::size_t t = 0; t < tpl.transistors.size(); ++t) {
    for (const gates::TransistorFault tf :
         {gates::TransistorFault::kStuckAtNType,
          gates::TransistorFault::kStuckAtPType}) {
      const double force =
          tf == gates::TransistorFault::kStuckAtNType ? kVdd : 0.0;
      for (unsigned v = 0; v < combos; ++v) {
        const gates::SwitchEval sw =
            gates::eval_switch(kind, v, {static_cast<int>(t), tf});

        gates::CellCircuitSpec spec;
        spec.kind = kind;
        spec.inputs = gates::dc_inputs(kind, v, kVdd);
        spec.pg_forces.push_back({static_cast<int>(t), force});
        gates::CellCircuit cc = gates::build_cell_circuit(spec);
        const spice::DcResult op = spice::dc_operating_point(cc.ckt);
        ASSERT_TRUE(op.converged)
            << gates::to_string(kind) << " t" << t + 1 << " v=" << v;

        const double vout = op.voltage(cc.out);
        const double iddq = spice::iddq_total(op);
        const auto expect = expected_dc_class(sw.out);
        if (expect.has_value()) {
          EXPECT_EQ(classify_voltage(vout), *expect)
              << gates::to_string(kind) << " t" << t + 1 << " "
              << gates::to_string(tf) << " v=" << v << " vout=" << vout;
        } else if (sw.out == gates::SwitchValue::kWeak0) {
          gates::CellCircuitSpec weak_spec;
          weak_spec.kind = kind;
          weak_spec.pg_forces.push_back({static_cast<int>(t), force});
          verify_weak0_at_speed(kind, v, {static_cast<int>(t), tf},
                                std::move(weak_spec));
        }
        EXPECT_EQ(iddq > kIddqThreshold, sw.contention)
            << gates::to_string(kind) << " t" << t + 1 << " "
            << gates::to_string(tf) << " v=" << v << " iddq=" << iddq;
      }
    }
  }
}

/// Channel breaks: a broken device (full nanowire break at SPICE level,
/// stuck-open at switch level) must agree on output classification; the
/// floating SP cases are checked for near-zero supply current instead of
/// a level (the DC level of a floating node is gmin-determined).
TEST_P(SwitchSpiceCross, StuckOpenAgreesOnDrivenOutputs) {
  const gates::CellKind kind = GetParam();
  const auto& tpl = gates::cell(kind);
  const unsigned combos = 1u << gates::input_count(kind);
  for (std::size_t t = 0; t < tpl.transistors.size(); ++t) {
    for (unsigned v = 0; v < combos; ++v) {
      const gates::SwitchEval sw = gates::eval_switch(
          kind, v, {static_cast<int>(t),
                    gates::TransistorFault::kStuckOpen});

      gates::CellCircuitSpec spec;
      spec.kind = kind;
      spec.inputs = gates::dc_inputs(kind, v, kVdd);
      spec.device_defects.push_back(
          {static_cast<int>(t), device::make_break_state(1.0)});
      gates::CellCircuit cc = gates::build_cell_circuit(spec);
      const spice::DcResult op = spice::dc_operating_point(cc.ckt);
      ASSERT_TRUE(op.converged)
          << gates::to_string(kind) << " t" << t + 1 << " v=" << v;

      const auto expect = expected_dc_class(sw.out);
      if (expect.has_value()) {
        EXPECT_EQ(classify_voltage(op.voltage(cc.out)), *expect)
            << gates::to_string(kind) << " t" << t + 1 << " v=" << v
            << " vout=" << op.voltage(cc.out);
      } else if (sw.out == gates::SwitchValue::kWeak0) {
        gates::CellCircuitSpec weak_spec;
        weak_spec.kind = kind;
        weak_spec.device_defects.push_back(
            {static_cast<int>(t), device::make_break_state(1.0)});
        verify_weak0_at_speed(
            kind, v,
            {static_cast<int>(t), gates::TransistorFault::kStuckOpen},
            std::move(weak_spec));
      }
      // No single stuck-open can create a crowbar path.
      EXPECT_LT(spice::iddq_total(op), kIddqThreshold)
          << gates::to_string(kind) << " t" << t + 1 << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCells, SwitchSpiceCross,
                         ::testing::ValuesIn(gates::all_cell_kinds()),
                         [](const auto& info) {
                           return std::string(gates::to_string(info.param));
                         });

}  // namespace
}  // namespace cpsinw
