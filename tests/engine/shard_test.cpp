#include "engine/shard.hpp"

#include <gtest/gtest.h>

#include "engine/campaign.hpp"
#include "logic/benchmarks.hpp"

namespace cpsinw::engine {
namespace {

TEST(Shard, MakeShardsPartitionsExactly) {
  const util::SplitMix64 rng(17);
  const std::vector<Shard> shards = make_shards(3, 103, 16, rng);
  ASSERT_EQ(shards.size(), 7u);
  std::size_t expected_begin = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(shards[i].job, 3);
    EXPECT_EQ(shards[i].index, static_cast<int>(i));
    EXPECT_EQ(shards[i].begin, expected_begin);
    EXPECT_LE(shards[i].end - shards[i].begin, 16u);
    expected_begin = shards[i].end;
  }
  EXPECT_EQ(expected_begin, 103u);
  // Tail shard carries the remainder.
  EXPECT_EQ(shards.back().end - shards.back().begin, 103u % 16u);
}

TEST(Shard, MakeShardsIsReproducible) {
  const util::SplitMix64 rng(5);
  std::vector<Shard> a = make_shards(0, 64, 8, rng);
  std::vector<Shard> b = make_shards(0, 64, 8, rng);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // The forked streams must generate identical sequences.
    for (int k = 0; k < 8; ++k)
      EXPECT_EQ(a[i].rng.next_u64(), b[i].rng.next_u64());
  }
}

TEST(Shard, MakeShardsRejectsZeroShardSize) {
  EXPECT_THROW((void)make_shards(0, 10, 0, util::SplitMix64(1)),
               std::invalid_argument);
}

TEST(Shard, ClassifyCoversEveryFaultKind) {
  EXPECT_EQ(classify(faults::Fault::net_stuck(0, false)),
            FaultClass::kLineStuckAt);
  EXPECT_EQ(classify(faults::Fault::input_stuck(0, 1, true)),
            FaultClass::kLineStuckAt);
  EXPECT_EQ(
      classify(faults::Fault::transistor(
          0, 0, gates::TransistorFault::kStuckOpen)),
      FaultClass::kStuckOpen);
  EXPECT_EQ(classify(faults::Fault::transistor(
                0, 1, gates::TransistorFault::kStuckOn)),
            FaultClass::kStuckOn);
  EXPECT_EQ(classify(faults::Fault::transistor(
                0, 2, gates::TransistorFault::kStuckAtNType)),
            FaultClass::kPolarity);
  EXPECT_EQ(classify(faults::Fault::transistor(
                0, 3, gates::TransistorFault::kStuckAtPType)),
            FaultClass::kPolarity);
}

TEST(Shard, SingleShardMatchesSerialRunRecordForRecord) {
  const logic::Circuit ckt = logic::c17();
  const std::vector<CampaignFault> universe =
      build_universe(ckt, FaultModelSelection{});
  const std::vector<logic::Pattern> patterns =
      build_patterns(ckt, PatternSourceSpec{}, util::SplitMix64(3));

  Shard shard;
  shard.begin = 0;
  shard.end = universe.size();
  const ShardResult result =
      run_shard(ckt, universe, patterns, shard, ShardExecOptions{});

  std::vector<faults::Fault> serial_faults;
  for (const CampaignFault& cf : universe) serial_faults.push_back(cf.fault);
  const faults::FaultSimulator fsim(ckt);
  const faults::FaultSimReport serial = fsim.run(serial_faults, patterns);

  ASSERT_EQ(result.results.size(), serial.records.size());
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    const faults::DetectionRecord& a = result.results[i].record;
    const faults::DetectionRecord& b = serial.records[i];
    EXPECT_EQ(a.detected_output, b.detected_output) << "fault " << i;
    EXPECT_EQ(a.detected_iddq, b.detected_iddq) << "fault " << i;
    EXPECT_EQ(a.potential, b.potential) << "fault " << i;
    EXPECT_EQ(a.first_pattern, b.first_pattern) << "fault " << i;
    EXPECT_FALSE(result.results[i].sampled_out);
  }
}

TEST(Shard, SplitShardsConcatenateToTheSerialRun) {
  const logic::Circuit ckt = logic::full_adder();
  const std::vector<CampaignFault> universe =
      build_universe(ckt, FaultModelSelection{});
  PatternSourceSpec src;
  src.random_count = 48;
  const std::vector<logic::Pattern> patterns =
      build_patterns(ckt, src, util::SplitMix64(11));

  const std::vector<Shard> shards =
      make_shards(0, universe.size(), 7, util::SplitMix64(1));
  std::vector<FaultResult> merged;
  for (const Shard& s : shards) {
    const ShardResult r =
        run_shard(ckt, universe, patterns, s, ShardExecOptions{});
    merged.insert(merged.end(), r.results.begin(), r.results.end());
  }

  std::vector<faults::Fault> serial_faults;
  for (const CampaignFault& cf : universe) serial_faults.push_back(cf.fault);
  const faults::FaultSimulator fsim(ckt);
  const faults::FaultSimReport serial = fsim.run(serial_faults, patterns);

  ASSERT_EQ(merged.size(), serial.records.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].record.detected_output,
              serial.records[i].detected_output);
    EXPECT_EQ(merged[i].record.detected_iddq,
              serial.records[i].detected_iddq);
    EXPECT_EQ(merged[i].record.first_pattern,
              serial.records[i].first_pattern);
  }
}

TEST(Shard, SamplingSkipsFaultsDeterministically) {
  const logic::Circuit ckt = logic::c17();
  const std::vector<CampaignFault> universe =
      build_universe(ckt, FaultModelSelection{});
  PatternSourceSpec src;
  src.random_count = 16;
  const std::vector<logic::Pattern> patterns =
      build_patterns(ckt, src, util::SplitMix64(2));

  Shard shard;
  shard.begin = 0;
  shard.end = universe.size();
  shard.rng = util::SplitMix64(99);
  ShardExecOptions opt;
  opt.fault_sample_fraction = 0.3;

  const ShardResult a = run_shard(ckt, universe, patterns, shard, opt);
  const ShardResult b = run_shard(ckt, universe, patterns, shard, opt);
  ASSERT_EQ(a.results.size(), b.results.size());
  int sampled_out = 0;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].sampled_out, b.results[i].sampled_out);
    if (a.results[i].sampled_out) {
      ++sampled_out;
      // Skipped faults carry an untouched record.
      EXPECT_FALSE(a.results[i].record.detected_output);
      EXPECT_EQ(a.results[i].record.first_pattern, -1);
    }
  }
  EXPECT_GT(sampled_out, 0);
  EXPECT_LT(sampled_out, static_cast<int>(a.results.size()));
}

TEST(Shard, RejectsOutOfRangeSlice) {
  const logic::Circuit ckt = logic::c17();
  const std::vector<CampaignFault> universe =
      build_universe(ckt, FaultModelSelection{});
  Shard shard;
  shard.begin = 0;
  shard.end = universe.size() + 1;
  EXPECT_THROW(
      (void)run_shard(ckt, universe, {}, shard, ShardExecOptions{}),
      std::invalid_argument);
}

}  // namespace
}  // namespace cpsinw::engine
