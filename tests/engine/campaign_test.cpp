#include "engine/campaign.hpp"

#include <gtest/gtest.h>

#include "core/campaign_sweep.hpp"
#include "core/experiments.hpp"
#include "faults/fault_sim.hpp"
#include "logic/benchmarks.hpp"

namespace cpsinw::engine {
namespace {

CampaignSpec two_circuit_spec() {
  CampaignSpec spec;
  spec.jobs.push_back({"ripple_adder_8", logic::ripple_adder(8)});
  spec.jobs.push_back({"tmr_voter_4", logic::tmr_voter(4)});
  spec.patterns.kind = PatternSourceSpec::Kind::kRandom;
  spec.patterns.random_count = 96;
  spec.shard_size = 16;
  return spec;
}

TEST(Campaign, ReportIsBitIdenticalAcrossThreadCounts) {
  CampaignSpec spec = two_circuit_spec();
  spec.threads = 1;
  const CampaignReport r1 = run_campaign(spec);
  spec.threads = 2;
  const CampaignReport r2 = run_campaign(spec);
  spec.threads = 8;
  const CampaignReport r8 = run_campaign(spec);

  const std::string json1 = r1.to_json();
  EXPECT_EQ(json1, r2.to_json());
  EXPECT_EQ(json1, r8.to_json());
  // Sanity: the deterministic JSON carries real content.
  EXPECT_NE(json1.find("ripple_adder_8"), std::string::npos);
  EXPECT_NE(json1.find("tmr_voter_4"), std::string::npos);
  EXPECT_GT(r1.totals().detected, 0);
}

TEST(Campaign, MatchesSerialFaultSimulatorExactly) {
  const CampaignSpec spec = two_circuit_spec();
  CampaignSpec parallel = spec;
  parallel.threads = 8;
  const CampaignReport report = run_campaign(parallel);
  ASSERT_EQ(report.jobs.size(), spec.jobs.size());

  const util::SplitMix64 campaign_rng(spec.seed);
  for (std::size_t j = 0; j < spec.jobs.size(); ++j) {
    // Reconstruct exactly what the campaign simulated...
    const logic::Circuit& ckt = spec.jobs[j].circuit;
    const std::vector<CampaignFault> universe =
        build_universe(ckt, spec.models, spec.sim.observe_iddq);
    const std::vector<logic::Pattern> patterns = build_patterns(
        ckt, spec.patterns, campaign_rng.fork(2 * j));

    // ...and run it through the untouched serial path.
    std::vector<faults::Fault> serial_faults;
    for (const CampaignFault& cf : universe) serial_faults.push_back(cf.fault);
    const faults::FaultSimulator fsim(ckt);
    const faults::FaultSimReport serial =
        fsim.run(serial_faults, patterns, spec.sim);

    const JobReport& job = report.jobs[j];
    ASSERT_EQ(job.totals().total, static_cast<int>(universe.size()));
    EXPECT_EQ(job.totals().detected, serial.detected_count());
    EXPECT_DOUBLE_EQ(job.totals().coverage(), serial.coverage());

    // Per-class detection counts agree with a direct classification of the
    // serial records.
    std::array<int, kFaultClassCount> serial_detected{};
    for (std::size_t i = 0; i < universe.size(); ++i)
      if (serial.records[i].detected(spec.sim.observe_iddq))
        ++serial_detected[static_cast<std::size_t>(universe[i].cls)];
    for (int c = 0; c < kFaultClassCount; ++c)
      EXPECT_EQ(job.by_class[static_cast<std::size_t>(c)].detected,
                serial_detected[static_cast<std::size_t>(c)])
          << to_string(static_cast<FaultClass>(c));
  }
}

TEST(Campaign, BenchmarkSweepMatchesExperimentsSerialPath) {
  // The engine-backed roster must see the exact fault universe the serial
  // experiments.cpp coverage driver enumerates, circuit by circuit.
  core::CampaignSweepOptions opt;
  opt.threads = 4;
  opt.random_patterns = 48;
  const CampaignReport report = core::run_benchmark_campaign(opt);
  const core::AtpgCoverageData serial = core::run_atpg_coverage();

  ASSERT_EQ(report.jobs.size(), serial.rows.size());
  for (std::size_t j = 0; j < serial.rows.size(); ++j) {
    EXPECT_EQ(report.jobs[j].circuit, serial.rows[j].circuit);
    EXPECT_EQ(report.jobs[j].gate_count, serial.rows[j].gate_count);
    EXPECT_EQ(report.jobs[j].transistor_count,
              serial.rows[j].transistor_count);
    EXPECT_EQ(report.jobs[j].totals().total, serial.rows[j].fault_count);
  }
}

TEST(Campaign, AtpgPatternSourceCoversAllLineFaultsOnC17) {
  CampaignSpec spec;
  spec.jobs.push_back({"c17", logic::c17()});
  spec.patterns.kind = PatternSourceSpec::Kind::kAtpg;
  spec.threads = 2;
  const CampaignReport report = run_campaign(spec);
  ASSERT_EQ(report.jobs.size(), 1u);
  // c17 has no redundant stuck-at faults and PODEM tests them all; fault
  // simulating those patterns must confirm every line fault.
  const ClassStats& line = report.jobs[0].by_class[static_cast<std::size_t>(
      FaultClass::kLineStuckAt)];
  EXPECT_GT(line.total, 0);
  EXPECT_DOUBLE_EQ(line.coverage(), 1.0);
}

TEST(Campaign, ExplicitExhaustiveSourceOnFullAdder) {
  CampaignSpec spec;
  logic::Circuit ckt = logic::full_adder();
  const int n = static_cast<int>(ckt.primary_inputs().size());
  for (unsigned v = 0; v < (1u << n); ++v) {
    logic::Pattern p(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      p[static_cast<std::size_t>(i)] = logic::from_bool((v >> i) & 1u);
    spec.patterns.explicit_patterns.push_back(std::move(p));
  }
  spec.patterns.kind = PatternSourceSpec::Kind::kExplicit;
  spec.jobs.push_back({"full_adder", std::move(ckt)});
  spec.threads = 2;
  spec.shard_size = 8;
  const CampaignReport report = run_campaign(spec);
  // Exhaustive stimulation detects every line stuck-at fault.
  const ClassStats& line = report.jobs[0].by_class[static_cast<std::size_t>(
      FaultClass::kLineStuckAt)];
  EXPECT_DOUBLE_EQ(line.coverage(), 1.0);
  EXPECT_EQ(report.jobs[0].pattern_count, 1 << n);
}

TEST(Campaign, BridgeUniverseIsCountedAndThreadInvariant) {
  CampaignSpec spec;
  spec.jobs.push_back({"c17", logic::c17()});
  spec.models.bridge = true;
  spec.patterns.random_count = 32;
  spec.shard_size = 8;
  spec.threads = 1;
  const CampaignReport r1 = run_campaign(spec);
  spec.threads = 4;
  const CampaignReport r4 = run_campaign(spec);
  EXPECT_EQ(r1.to_json(), r4.to_json());

  const std::size_t bridges =
      faults::enumerate_adjacent_bridges(spec.jobs[0].circuit).size();
  const ClassStats& cls = r1.jobs[0].by_class[static_cast<std::size_t>(
      FaultClass::kBridge)];
  EXPECT_EQ(cls.total, static_cast<int>(bridges));
  EXPECT_GT(cls.detected, 0);
}

TEST(Campaign, FaultSamplingIsDeterministicAndPartial) {
  CampaignSpec spec = two_circuit_spec();
  spec.fault_sample_fraction = 0.5;
  spec.threads = 1;
  const CampaignReport r1 = run_campaign(spec);
  spec.threads = 4;
  const CampaignReport r4 = run_campaign(spec);
  EXPECT_EQ(r1.to_json(), r4.to_json());

  const ClassStats totals = r1.totals();
  EXPECT_GT(totals.sampled, 0);
  EXPECT_LT(totals.sampled, totals.total);
}

TEST(Campaign, RejectsBadSpecs) {
  CampaignSpec spec = two_circuit_spec();
  spec.fault_sample_fraction = 0.0;
  EXPECT_THROW((void)run_campaign(spec), std::invalid_argument);

  CampaignSpec unfinalized;
  unfinalized.jobs.push_back({"empty", logic::Circuit()});
  EXPECT_THROW((void)run_campaign(unfinalized), std::invalid_argument);

  // Explicit patterns whose arity does not match a job's PI count are
  // rejected up front (naming the job), not mid-campaign from a worker.
  CampaignSpec mismatched;
  mismatched.jobs.push_back({"c17", logic::c17()});
  mismatched.patterns.kind = PatternSourceSpec::Kind::kExplicit;
  mismatched.patterns.explicit_patterns.push_back(logic::Pattern(3));
  try {
    (void)run_campaign(mismatched);
    FAIL() << "arity mismatch not rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("c17"), std::string::npos);
  }
}

TEST(Campaign, RejectsZeroShardSize) {
  CampaignSpec spec = two_circuit_spec();
  spec.shard_size = 0;
  try {
    (void)run_campaign(spec);
    FAIL() << "shard_size == 0 not rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("shard_size"), std::string::npos)
        << e.what();
  }
}

TEST(Campaign, RejectsNegativeThreads) {
  CampaignSpec spec = two_circuit_spec();
  spec.threads = -1;
  try {
    (void)run_campaign(spec);
    FAIL() << "negative threads not rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("threads"), std::string::npos)
        << e.what();
  }
  // Zero stays valid: it selects the hardware concurrency.
  spec.threads = 0;
  EXPECT_NO_THROW((void)run_campaign(spec));
}

TEST(Campaign, TimingIsReportedButExcludedFromStableJson) {
  CampaignSpec spec = two_circuit_spec();
  spec.threads = 2;
  const CampaignReport report = run_campaign(spec);
  EXPECT_GT(report.timing.wall_s, 0.0);
  EXPECT_EQ(report.timing.threads, 2);
  EXPECT_EQ(report.timing.backend, "thread_pool");
  EXPECT_GT(report.timing.shard_count, 0);
  EXPECT_EQ(report.to_json(false).find("timing"), std::string::npos);
  EXPECT_NE(report.to_json(true).find("timing"), std::string::npos);
}

}  // namespace
}  // namespace cpsinw::engine
