#include "engine/report.hpp"

#include <gtest/gtest.h>

namespace cpsinw::engine {
namespace {

FaultResult make_result(FaultClass cls, bool output, bool iddq,
                        int first_pattern, bool sampled_out = false) {
  FaultResult r;
  r.cls = cls;
  r.record.detected_output = output;
  r.record.detected_iddq = iddq;
  r.record.first_pattern = first_pattern;
  r.sampled_out = sampled_out;
  return r;
}

TEST(Report, EmptyClassCoversTrivially) {
  ClassStats stats;
  EXPECT_DOUBLE_EQ(stats.coverage(), 1.0);
}

TEST(Report, FullySampledOutClassReportsZeroCoverage) {
  // A non-empty class in which fault sampling skipped every member has no
  // detection evidence; claiming full coverage would be maximally wrong.
  ClassStats stats;
  stats.total = 6;
  stats.sampled = 0;
  EXPECT_DOUBLE_EQ(stats.coverage(), 0.0);
}

TEST(Report, AccumulateShardCountsClassesAndHistogram) {
  JobReport job;
  ShardResult shard;
  const int patterns = 32;
  shard.results.push_back(
      make_result(FaultClass::kLineStuckAt, true, false, 0));
  shard.results.push_back(
      make_result(FaultClass::kPolarity, false, true, 31));  // IDDQ-only
  shard.results.push_back(
      make_result(FaultClass::kStuckOpen, false, false, -1));
  shard.results.push_back(
      make_result(FaultClass::kBridge, true, true, 16));
  shard.results.push_back(
      make_result(FaultClass::kStuckOn, true, false, 5, /*sampled_out=*/true));
  shard.elapsed_s = 0.25;

  accumulate_shard(job, shard, patterns, /*observe_iddq=*/true);

  const auto& cls = job.by_class;
  EXPECT_EQ(cls[static_cast<std::size_t>(FaultClass::kLineStuckAt)].detected,
            1);
  EXPECT_EQ(cls[static_cast<std::size_t>(FaultClass::kPolarity)].iddq_only,
            1);
  EXPECT_EQ(cls[static_cast<std::size_t>(FaultClass::kPolarity)].detected, 1);
  EXPECT_EQ(cls[static_cast<std::size_t>(FaultClass::kStuckOpen)].detected,
            0);
  // Sampled-out fault counts toward total but not sampled/detected.
  EXPECT_EQ(cls[static_cast<std::size_t>(FaultClass::kStuckOn)].total, 1);
  EXPECT_EQ(cls[static_cast<std::size_t>(FaultClass::kStuckOn)].sampled, 0);

  const ClassStats totals = job.totals();
  EXPECT_EQ(totals.total, 5);
  EXPECT_EQ(totals.sampled, 4);
  EXPECT_EQ(totals.detected, 3);
  EXPECT_EQ(totals.iddq_only, 1);

  // Histogram: first_pattern 0 -> bucket 0, 16 -> bucket 8, 31 -> last.
  EXPECT_EQ(job.first_detect_histogram[0], 1);
  EXPECT_EQ(job.first_detect_histogram[kHistogramBuckets / 2], 1);
  EXPECT_EQ(job.first_detect_histogram[kHistogramBuckets - 1], 1);
  int histogram_sum = 0;
  for (const int n : job.first_detect_histogram) histogram_sum += n;
  EXPECT_EQ(histogram_sum, totals.detected);

  EXPECT_EQ(job.shard_count, 1);
  EXPECT_DOUBLE_EQ(job.shard_time_sum_s, 0.25);
}

TEST(Report, IddqObservationOffChangesDetection) {
  JobReport job;
  ShardResult shard;
  shard.results.push_back(
      make_result(FaultClass::kPolarity, false, true, 3));
  accumulate_shard(job, shard, 8, /*observe_iddq=*/false);
  const ClassStats totals = job.totals();
  EXPECT_EQ(totals.detected, 0);
  // The anomaly is still recorded as IDDQ-only for diagnosis.
  EXPECT_EQ(totals.iddq_only, 1);
  int histogram_sum = 0;
  for (const int n : job.first_detect_histogram) histogram_sum += n;
  EXPECT_EQ(histogram_sum, 0);
}

TEST(Report, JsonIsStableAndTimingIsOptIn) {
  CampaignReport report;
  report.seed = 42;
  report.shard_size = 16;
  report.pattern_source = "random";
  JobReport job;
  job.circuit = "c17";
  job.gate_count = 6;
  job.pattern_count = 8;
  ShardResult shard;
  shard.results.push_back(
      make_result(FaultClass::kLineStuckAt, true, false, 2));
  accumulate_shard(job, shard, 8, true);
  report.jobs.push_back(job);
  report.timing.threads = 4;
  report.timing.wall_s = 1.5;

  const std::string stable = report.to_json(false);
  EXPECT_EQ(stable, report.to_json(false));  // reproducible
  EXPECT_EQ(stable.find("timing"), std::string::npos);
  EXPECT_EQ(stable.find("wall_s"), std::string::npos);
  EXPECT_NE(stable.find("\"circuit\":\"c17\""), std::string::npos);
  EXPECT_NE(stable.find("\"line_stuck_at\""), std::string::npos);
  // Empty classes are omitted from the per-class map.
  EXPECT_EQ(stable.find("\"bridge\""), std::string::npos);

  const std::string timed = report.to_json(true);
  EXPECT_NE(timed.find("\"timing\""), std::string::npos);
  EXPECT_NE(timed.find("\"threads\":4"), std::string::npos);
  // The deterministic prefix is unchanged by the timing suffix.
  EXPECT_EQ(timed.compare(0, stable.size() - 1, stable, 0,
                          stable.size() - 1),
            0);
}

TEST(Report, JsonEscapesCircuitNames) {
  CampaignReport report;
  report.pattern_source = "random";
  JobReport job;
  job.circuit = "mux2\"wide\\v1\n";
  report.jobs.push_back(job);
  const std::string json = report.to_json(false);
  EXPECT_NE(json.find("\"circuit\":\"mux2\\\"wide\\\\v1\\n\""),
            std::string::npos);
}

TEST(Report, HistogramLastBucketClamps) {
  JobReport job;
  ShardResult shard;
  shard.results.push_back(
      make_result(FaultClass::kLineStuckAt, true, false, 15));
  accumulate_shard(job, shard, /*pattern_count=*/16, true);
  EXPECT_EQ(job.first_detect_histogram[kHistogramBuckets - 1], 1);
}

}  // namespace
}  // namespace cpsinw::engine
