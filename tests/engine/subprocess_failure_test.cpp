// Failure injection for the subprocess backend: workers that crash, hang
// past the timeout, emit garbage, or exit nonzero must each surface on
// CampaignReport::error while every healthy shard still contributes its
// records (the lower-bound merge contract).  The worker's --fail-mode /
// --fail-index flags misbehave on purpose after consuming stdin.
#include <gtest/gtest.h>

#include <string>

#include "engine/campaign.hpp"
#include "logic/benchmarks.hpp"

namespace cpsinw::engine {
namespace {

std::string worker_path() {
#ifdef CPSINW_SHARD_WORKER_PATH
  return CPSINW_SHARD_WORKER_PATH;
#else
  return {};
#endif
}

/// One job with several shards, so exactly one shard failing still leaves
/// healthy shards to merge.
CampaignSpec base_spec() {
  CampaignSpec spec;
  spec.jobs.push_back({"parity_tree_8", logic::parity_tree(8)});
  spec.patterns.kind = PatternSourceSpec::Kind::kRandom;
  spec.patterns.random_count = 32;
  spec.shard_size = 16;
  spec.threads = 2;
  spec.executor.backend = ExecutorBackend::kSubprocess;
  spec.executor.worker_path = worker_path();
  return spec;
}

/// Injects `mode` into the shard with index 0 of job 0 and checks the
/// shared contract; returns the report error text for mode-specific
/// assertions.
std::string run_with_failure(const std::string& mode, double timeout_s) {
  CampaignSpec clean = base_spec();
  const CampaignReport healthy = run_campaign(clean);
  EXPECT_TRUE(healthy.ok()) << healthy.error;
  EXPECT_GT(healthy.timing.shard_count, 1)
      << "fixture must decompose into several shards";

  CampaignSpec spec = base_spec();
  spec.executor.worker_args = {"--fail-mode", mode, "--fail-index", "0"};
  spec.executor.worker_timeout_s = timeout_s;
  const CampaignReport report = run_campaign(spec);

  EXPECT_FALSE(report.ok()) << "mode '" << mode << "' did not surface";
  EXPECT_NE(report.error.find("job 0, shard 0"), std::string::npos)
      << report.error;

  // Lower-bound merge: the failed shard's faults stay in the totals as
  // simulated-but-undetected, every healthy shard is still counted.
  EXPECT_EQ(report.totals().total, healthy.totals().total);
  EXPECT_EQ(report.totals().sampled, healthy.totals().sampled);
  EXPECT_GT(report.totals().detected, 0)
      << "healthy shards must still contribute detections";
  EXPECT_LT(report.totals().detected, healthy.totals().detected)
      << "the failed shard's detections must be absent";

  // The error is serialized into the stable JSON (and only then).
  EXPECT_NE(report.to_json().find("\"error\""), std::string::npos);
  EXPECT_EQ(healthy.to_json().find("\"error\""), std::string::npos);
  return report.error;
}

TEST(SubprocessFailure, CrashingWorkerSurfacesAsSignal) {
  const std::string error = run_with_failure("crash", 60.0);
  EXPECT_NE(error.find("killed by signal"), std::string::npos) << error;
}

TEST(SubprocessFailure, HangingWorkerIsKilledAtTheTimeout) {
  const std::string error = run_with_failure("hang", 1.0);
  EXPECT_NE(error.find("timed out"), std::string::npos) << error;
}

TEST(SubprocessFailure, MalformedOutputIsRejected) {
  const std::string error = run_with_failure("garbage", 60.0);
  EXPECT_NE(error.find("malformed result"), std::string::npos) << error;
}

TEST(SubprocessFailure, NonzeroExitCodeIsReported) {
  const std::string error = run_with_failure("exit", 60.0);
  EXPECT_NE(error.find("exited with code 3"), std::string::npos) << error;
}

TEST(SubprocessFailure, MissingWorkerBinaryFailsEveryShardButStillMerges) {
  CampaignSpec spec = base_spec();
  spec.executor.worker_path = "/nonexistent/cpsinw_shard_worker";
  const CampaignReport report = run_campaign(spec);
  EXPECT_FALSE(report.ok());
  // exec failure is reported through the reserved exit code 127.
  EXPECT_NE(report.error.find("127"), std::string::npos) << report.error;
  EXPECT_GT(report.totals().total, 0);
  EXPECT_EQ(report.totals().detected, 0);
}

TEST(SubprocessFailure, EmptyWorkerPathIsASpecError) {
  CampaignSpec spec = base_spec();
  spec.executor.worker_path.clear();
  EXPECT_THROW((void)run_campaign(spec), std::invalid_argument);

  CampaignSpec bad_timeout = base_spec();
  bad_timeout.executor.worker_timeout_s = 0.0;
  EXPECT_THROW((void)run_campaign(bad_timeout), std::invalid_argument);
}

}  // namespace
}  // namespace cpsinw::engine
