// Shared fixture plumbing for the kRemote backend tests: healthy loopback
// cpsinw_shard_server endpoints, spawned once per test binary — or taken
// from the CPSINW_REMOTE_ENDPOINTS environment variable (comma-separated
// host:port list) when CI manages the servers itself (the remote-loopback
// job starts two instances and points the suite at them).
#pragma once

#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "engine/net.hpp"

namespace cpsinw::engine::test_util {

inline std::string server_path() {
#ifdef CPSINW_SHARD_SERVER_PATH
  return CPSINW_SHARD_SERVER_PATH;
#else
  return {};
#endif
}

/// Two healthy shard-server endpoints, shared by every test in the
/// binary.  Spawned servers live until process exit (their
/// LocalServerProcess destructors kill them).
inline const std::vector<std::string>& loopback_endpoints() {
  static const std::vector<std::string> endpoints = [] {
    std::vector<std::string> out;
    if (const char* env = std::getenv("CPSINW_REMOTE_ENDPOINTS")) {
      const std::string text = env;
      std::size_t start = 0;
      while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::string item =
            text.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!item.empty()) out.push_back(item);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      return out;
    }
    static std::vector<std::unique_ptr<net::LocalServerProcess>> servers;
    for (int i = 0; i < 2; ++i) {
      servers.push_back(
          std::make_unique<net::LocalServerProcess>(server_path()));
      if (servers.back()->ok()) out.push_back(servers.back()->endpoint());
    }
    return out;
  }();
  return endpoints;
}

/// A loopback port with nothing listening on it (bind an ephemeral
/// listener, note its port, close it): connections there are refused.
inline std::string refused_endpoint() {
  std::string error;
  const int fd = net::listen_on_loopback(0, &error);
  if (fd < 0) return "127.0.0.1:1";  // port 1: virtually always refused too
  const std::uint16_t port = net::local_port(fd);
  ::close(fd);
  return "127.0.0.1:" + std::to_string(port);
}

}  // namespace cpsinw::engine::test_util
