// Unit coverage for the kRemote transport layer: endpoint parsing, the
// length-prefixed frame (round trip, clean EOF, malformed and oversized
// headers, truncation, deadlines) and the loopback listener plumbing the
// server and the tests build on.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "engine/net.hpp"

namespace cpsinw::engine::net {
namespace {

/// A connected AF_UNIX stream pair (frames do not care about the address
/// family; this keeps the tests free of port allocation).
struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) close(a);
    if (b >= 0) close(b);
  }
};

TEST(NetEndpoint, ParsesHostColonPort) {
  const Endpoint ep = parse_endpoint("127.0.0.1:8080");
  EXPECT_EQ(ep.host, "127.0.0.1");
  EXPECT_EQ(ep.port, 8080);

  const Endpoint named = parse_endpoint("localhost:65535");
  EXPECT_EQ(named.host, "localhost");
  EXPECT_EQ(named.port, 65535);
}

TEST(NetEndpoint, RejectsMalformedText) {
  for (const char* bad : {"", "localhost", "host:", ":123", "host:abc",
                          "host:0", "host:65536", "host:99999", "a:b:c",
                          "host:12x"}) {
    EXPECT_THROW((void)parse_endpoint(bad), std::invalid_argument)
        << "'" << bad << "' must be rejected";
  }
}

TEST(NetEndpoint, ListRejectsEmptyAndPropagatesEntries) {
  EXPECT_THROW((void)parse_endpoints({}), std::invalid_argument);
  EXPECT_THROW((void)parse_endpoints({"ok:1", "bad"}),
               std::invalid_argument);
  const std::vector<Endpoint> eps =
      parse_endpoints({"a:1", "b:2"});
  ASSERT_EQ(eps.size(), 2u);
  EXPECT_EQ(eps[1].host, "b");
  EXPECT_EQ(eps[1].port, 2);
}

TEST(NetFrame, RoundTripsPayloads) {
  SocketPair pair;
  const Deadline deadline = deadline_after(10.0);
  std::string error;
  // The large payload stays under the socketpair buffer: sender and
  // receiver share this thread, so a payload past the buffer would wedge.
  for (const std::string payload :
       {std::string(""), std::string("{\"version\":1}"),
        std::string(1 << 15, 'x')}) {
    ASSERT_TRUE(send_frame(pair.a, payload, deadline, &error)) << error;
    std::string got;
    ASSERT_TRUE(
        recv_frame(pair.b, &got, deadline, kMaxFrameBytes, &error))
        << error;
    EXPECT_EQ(got, payload);
  }
}

TEST(NetFrame, BackToBackFramesStayDelimited) {
  SocketPair pair;
  const Deadline deadline = deadline_after(10.0);
  std::string error;
  ASSERT_TRUE(send_frame(pair.a, "first", deadline, &error));
  ASSERT_TRUE(send_frame(pair.a, "second", deadline, &error));
  std::string got;
  ASSERT_TRUE(recv_frame(pair.b, &got, deadline, kMaxFrameBytes, &error));
  EXPECT_EQ(got, "first");
  ASSERT_TRUE(recv_frame(pair.b, &got, deadline, kMaxFrameBytes, &error));
  EXPECT_EQ(got, "second");
}

TEST(NetFrame, CleanEofBetweenFramesLeavesTheErrorEmpty) {
  SocketPair pair;
  close(pair.a);
  pair.a = -1;
  std::string got;
  std::string error = "sentinel";
  EXPECT_FALSE(
      recv_frame(pair.b, &got, deadline_after(10.0), kMaxFrameBytes, &error));
  EXPECT_TRUE(error.empty()) << error;
}

TEST(NetFrame, GarbageHeaderIsRejected) {
  SocketPair pair;
  const std::string junk = "HTTP/1.1 200 OK\n";
  ASSERT_EQ(write(pair.a, junk.data(), junk.size()),
            static_cast<ssize_t>(junk.size()));
  std::string got;
  std::string error;
  EXPECT_FALSE(
      recv_frame(pair.b, &got, deadline_after(10.0), kMaxFrameBytes, &error));
  EXPECT_NE(error.find("bad frame header"), std::string::npos) << error;
}

TEST(NetFrame, OversizedDeclarationIsRejectedBeforeThePayload) {
  SocketPair pair;
  const std::string header =
      std::string(kFrameMagic) + " " + std::to_string(kMaxFrameBytes + 1) +
      "\n";
  ASSERT_EQ(write(pair.a, header.data(), header.size()),
            static_cast<ssize_t>(header.size()));
  std::string got;
  std::string error;
  EXPECT_FALSE(
      recv_frame(pair.b, &got, deadline_after(10.0), kMaxFrameBytes, &error));
  EXPECT_NE(error.find("exceeds"), std::string::npos) << error;
}

TEST(NetFrame, TruncatedPayloadIsAnError) {
  SocketPair pair;
  const std::string header = std::string(kFrameMagic) + " 100\n";
  const std::string partial = "only a few bytes";
  ASSERT_EQ(write(pair.a, header.data(), header.size()),
            static_cast<ssize_t>(header.size()));
  ASSERT_EQ(write(pair.a, partial.data(), partial.size()),
            static_cast<ssize_t>(partial.size()));
  close(pair.a);
  pair.a = -1;
  std::string got;
  std::string error;
  EXPECT_FALSE(
      recv_frame(pair.b, &got, deadline_after(10.0), kMaxFrameBytes, &error));
  EXPECT_NE(error.find("closed mid-frame"), std::string::npos) << error;
}

TEST(NetFrame, MissedDeadlineReportsTimeout) {
  SocketPair pair;
  std::string got;
  std::string error;
  EXPECT_FALSE(
      recv_frame(pair.b, &got, deadline_after(0.05), kMaxFrameBytes, &error));
  EXPECT_NE(error.find("timed out"), std::string::npos) << error;
}

TEST(NetListener, LoopbackRoundTrip) {
  std::string error;
  const int listener = listen_on_loopback(0, &error);
  ASSERT_GE(listener, 0) << error;
  const std::uint16_t port = local_port(listener);
  ASSERT_GT(port, 0);

  const Deadline deadline = deadline_after(10.0);
  const int client =
      connect_endpoint({"127.0.0.1", port}, deadline, &error);
  ASSERT_GE(client, 0) << error;
  const int server = accept_connection(listener, &error);
  ASSERT_GE(server, 0) << error;

  ASSERT_TRUE(send_frame(client, "ping", deadline, &error)) << error;
  std::string got;
  ASSERT_TRUE(recv_frame(server, &got, deadline, kMaxFrameBytes, &error))
      << error;
  EXPECT_EQ(got, "ping");

  close(client);
  close(server);
  close(listener);
}

TEST(NetListener, ConnectionToAClosedPortIsRefused) {
  std::string error;
  const int listener = listen_on_loopback(0, &error);
  ASSERT_GE(listener, 0) << error;
  const std::uint16_t port = local_port(listener);
  close(listener);  // nothing listens here anymore

  const int fd =
      connect_endpoint({"127.0.0.1", port}, deadline_after(5.0), &error);
  EXPECT_LT(fd, 0);
  EXPECT_NE(error.find("connect to 127.0.0.1:"), std::string::npos) << error;
}

}  // namespace
}  // namespace cpsinw::engine::net
