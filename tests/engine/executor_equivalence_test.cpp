// Cross-backend determinism: the stable campaign JSON must be
// byte-identical whether shards run inline, on the thread pool (at any
// thread count), in forked cpsinw_shard_worker processes, or on remote
// cpsinw_shard_server endpoints (1 or 2 of them).  This is the guarantee
// that lets large fault-mode sweeps fan out — across threads, processes,
// and hosts — without their statistics depending on where the work
// happened to execute.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/campaign.hpp"
#include "logic/benchmarks.hpp"
#include "remote_test_util.hpp"

namespace cpsinw::engine {
namespace {

std::string worker_path() {
#ifdef CPSINW_SHARD_WORKER_PATH
  return CPSINW_SHARD_WORKER_PATH;
#else
  return {};
#endif
}

CampaignReport run_on(CampaignSpec spec, ExecutorBackend backend,
                      int threads) {
  spec.executor.backend = backend;
  if (backend == ExecutorBackend::kSubprocess)
    spec.executor.worker_path = worker_path();
  spec.threads = threads;
  return run_campaign(spec);
}

/// Runs `spec` on every backend (thread pool at 1/2/8 threads) and
/// asserts one stable JSON, returned for further checks.
std::string assert_all_backends_identical(const CampaignSpec& spec,
                                          const char* label) {
  const CampaignReport inline_report =
      run_on(spec, ExecutorBackend::kInline, 1);
  EXPECT_TRUE(inline_report.ok()) << label << ": " << inline_report.error;
  const std::string reference = inline_report.to_json();

  for (const int threads : {1, 2, 8}) {
    const CampaignReport r = run_on(spec, ExecutorBackend::kThreadPool,
                                    threads);
    EXPECT_TRUE(r.ok()) << label << ": " << r.error;
    EXPECT_EQ(reference, r.to_json())
        << label << ": thread_pool(" << threads << ") diverged from inline";
  }

  const CampaignReport sub = run_on(spec, ExecutorBackend::kSubprocess, 2);
  EXPECT_TRUE(sub.ok()) << label << ": " << sub.error;
  EXPECT_EQ(reference, sub.to_json())
      << label << ": subprocess diverged from inline";

  // Remote loopback: the determinism guarantee widens from "any backend
  // on one host" to "any set of hosts" — one endpoint, then the work
  // spread over two.
  const std::vector<std::string>& endpoints =
      test_util::loopback_endpoints();
  EXPECT_GE(endpoints.size(), 2u) << "loopback shard servers failed to start";
  for (std::size_t count : {std::size_t{1}, std::size_t{2}}) {
    if (endpoints.size() < count) continue;
    CampaignSpec remote = spec;
    remote.executor.backend = ExecutorBackend::kRemote;
    remote.executor.endpoints.assign(endpoints.begin(),
                                     endpoints.begin() +
                                         static_cast<std::ptrdiff_t>(count));
    remote.threads = 2;
    const CampaignReport r = run_campaign(remote);
    EXPECT_TRUE(r.ok()) << label << ": " << r.error;
    EXPECT_EQ(reference, r.to_json())
        << label << ": remote(" << count << " endpoints) diverged from inline";
  }
  return reference;
}

TEST(ExecutorEquivalence, ExplicitSourceAllFiveFaultClasses) {
  CampaignSpec spec;
  logic::Circuit ckt = logic::full_adder();
  const int n = static_cast<int>(ckt.primary_inputs().size());
  for (unsigned v = 0; v < (1u << n); ++v) {
    logic::Pattern p(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      p[static_cast<std::size_t>(i)] = logic::from_bool((v >> i) & 1u);
    spec.patterns.explicit_patterns.push_back(std::move(p));
  }
  spec.patterns.kind = PatternSourceSpec::Kind::kExplicit;
  spec.jobs.push_back({"full_adder", std::move(ckt)});
  spec.models.bridge = true;  // all five classes in one universe
  spec.shard_size = 8;

  const std::string json = assert_all_backends_identical(spec, "explicit");

  // The spec really covered every fault class the paper models.
  const CampaignReport r = run_on(spec, ExecutorBackend::kInline, 1);
  for (int c = 0; c < kFaultClassCount; ++c)
    EXPECT_GT(r.jobs[0].by_class[static_cast<std::size_t>(c)].total, 0)
        << to_string(static_cast<FaultClass>(c));
  EXPECT_NE(json.find("bridge"), std::string::npos);
}

TEST(ExecutorEquivalence, RandomSourceTwoJobsWithFaultSampling) {
  CampaignSpec spec;
  spec.jobs.push_back({"c17", logic::c17()});
  spec.jobs.push_back({"parity_tree_8", logic::parity_tree(8)});
  spec.models.bridge = true;
  spec.patterns.kind = PatternSourceSpec::Kind::kRandom;
  spec.patterns.random_count = 64;
  spec.shard_size = 16;
  spec.seed = 1234;
  // Fault sampling consumes the shard RNG stream: byte-identical output
  // proves the stream state crossed the process boundary intact.
  spec.fault_sample_fraction = 0.8;

  (void)assert_all_backends_identical(spec, "random");
}

TEST(ExecutorEquivalence, AtpgSourceGeneratesInWorkersIdentically) {
  CampaignSpec spec;
  spec.jobs.push_back({"c17", logic::c17()});
  spec.jobs.push_back({"full_adder", logic::full_adder()});
  spec.patterns.kind = PatternSourceSpec::Kind::kAtpg;
  spec.shard_size = 16;

  (void)assert_all_backends_identical(spec, "atpg");
}

/// Randomized CampaignSpec property test: seeded specs over benchmark
/// circuits, varying pattern source, shard size, sampling, IDDQ
/// observation and the bridge universe — every draw must be byte-identical
/// across the three backends.
TEST(ExecutorEquivalence, RandomizedSpecPropertyTest) {
  util::SplitMix64 rng(20260729);
  const auto make_circuit = [](std::uint64_t pick) {
    switch (pick % 4) {
      case 0: return std::make_pair(std::string("c17"), logic::c17());
      case 1:
        return std::make_pair(std::string("full_adder"),
                              logic::full_adder());
      case 2:
        return std::make_pair(std::string("parity_tree_8"),
                              logic::parity_tree(8));
      default:
        return std::make_pair(std::string("tmr_voter_3"),
                              logic::tmr_voter(3));
    }
  };

  for (int iter = 0; iter < 4; ++iter) {
    CampaignSpec spec;
    auto [name, ckt] = make_circuit(rng.next_u64());
    const std::size_t pis = ckt.primary_inputs().size();

    const std::uint64_t source = rng.next_u64() % 3;
    if (source == 0) {
      spec.patterns.kind = PatternSourceSpec::Kind::kExplicit;
      const int count = 4 + static_cast<int>(rng.below(12));
      for (int k = 0; k < count; ++k) {
        logic::Pattern p(pis);
        for (logic::LogicV& v : p) v = logic::from_bool(rng.chance(0.5));
        spec.patterns.explicit_patterns.push_back(std::move(p));
      }
    } else if (source == 1) {
      spec.patterns.kind = PatternSourceSpec::Kind::kRandom;
      spec.patterns.random_count = 16 + static_cast<int>(rng.below(48));
    } else {
      spec.patterns.kind = PatternSourceSpec::Kind::kAtpg;
    }

    spec.jobs.push_back({name, std::move(ckt)});
    spec.seed = rng.next_u64();
    spec.shard_size = 1 + rng.below(24);
    spec.models.bridge = rng.chance(0.5);
    spec.sim.observe_iddq = rng.chance(0.75);
    spec.fault_sample_fraction = rng.chance(0.5) ? 1.0 : 0.6;

    const std::string label =
        "iter " + std::to_string(iter) + " (" + name + ", " +
        to_string(spec.patterns.kind) + ", shard_size " +
        std::to_string(spec.shard_size) +
        (spec.models.bridge ? ", bridges" : "") + ")";
    SCOPED_TRACE(label);
    (void)assert_all_backends_identical(spec, label.c_str());
  }
}

}  // namespace
}  // namespace cpsinw::engine
