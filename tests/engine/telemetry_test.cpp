// Campaign telemetry: exact concurrent metric accounting, Chrome
// trace-event export with well-formed per-lane spans, the shard_io
// `stats` round trip against a live loopback server, and — most load-
// bearing of all — the guarantee that all of it is invisible in the
// stable campaign JSON unless explicitly opted into.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "engine/campaign.hpp"
#include "engine/json_reader.hpp"
#include "engine/remote_executor.hpp"
#include "engine/shard_io.hpp"
#include "engine/telemetry.hpp"
#include "logic/benchmarks.hpp"
#include "remote_test_util.hpp"
#include "util/log.hpp"

namespace cpsinw::engine {
namespace {

// ------------------------------------------------------------- registry

TEST(TelemetryRegistry, ConcurrentHammeringSumsExactly) {
  telemetry::Registry reg;
  telemetry::Counter& counter = reg.counter("hammer.counter");
  telemetry::Gauge& gauge = reg.gauge("hammer.gauge");
  telemetry::Histogram& hist = reg.histogram("hammer.hist");

  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &gauge, &hist, t] {
      for (int i = 0; i < kIters; ++i) {
        counter.add();
        gauge.add(t % 2 == 0 ? 1 : -1);
        hist.record(1e-6 * static_cast<double>(i % 64));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(gauge.value(), 0);  // half the threads add, half subtract
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kIters);

  const telemetry::RegistrySnapshot snap = reg.snapshot();
  ASSERT_NE(snap.find_counter("hammer.counter"), nullptr);
  EXPECT_EQ(snap.find_counter("hammer.counter")->value, counter.value());
  const telemetry::HistogramValue* hv = snap.find_histogram("hammer.hist");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->count, hist.count());
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t b : hv->buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, hv->count);
}

TEST(TelemetryRegistry, SameNameReturnsSameMetric) {
  telemetry::Registry reg;
  telemetry::Counter& a = reg.counter("x");
  telemetry::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(TelemetryHistogram, BucketBoundaries) {
  using H = telemetry::Histogram;
  EXPECT_EQ(H::bucket_of(0.0), 0);
  EXPECT_EQ(H::bucket_of(-1.0), 0);
  EXPECT_EQ(H::bucket_of(0.5e-6), 0);    // < 1 us
  EXPECT_EQ(H::bucket_of(1.0e-6), 1);    // [1, 2) us
  EXPECT_EQ(H::bucket_of(1.9e-6), 1);
  EXPECT_EQ(H::bucket_of(2.0e-6), 2);    // [2, 4) us
  EXPECT_EQ(H::bucket_of(1.0e-3), 10);   // 1000 us -> [512, 1024) us
  EXPECT_EQ(H::bucket_of(1.0), 20);      // 1 s -> [2^19, 2^20) us
  EXPECT_EQ(H::bucket_of(1e9), H::kBucketCount - 1);  // overflow bucket
}

TEST(TelemetryHistogram, QuantilesInterpolate) {
  telemetry::HistogramValue hv;
  hv.buckets.assign(telemetry::Histogram::kBucketCount, 0);
  EXPECT_EQ(hv.quantile_s(0.5), 0.0);  // empty

  // 100 samples in bucket 3 ([4, 8) us): every quantile lands inside it.
  hv.buckets[3] = 100;
  hv.count = 100;
  const double p50 = hv.quantile_s(0.5);
  EXPECT_GE(p50, 4e-6);
  EXPECT_LE(p50, 8e-6);
  EXPECT_LE(hv.quantile_s(0.1), p50);
  EXPECT_LE(p50, hv.quantile_s(0.99));
}

// ----------------------------------------------------------- structured log

TEST(StructuredLog, ParseLogLevel) {
  util::LogLevel level = util::LogLevel::kWarn;
  EXPECT_TRUE(util::parse_log_level("debug", &level));
  EXPECT_EQ(level, util::LogLevel::kDebug);
  EXPECT_TRUE(util::parse_log_level("error", &level));
  EXPECT_EQ(level, util::LogLevel::kError);
  EXPECT_FALSE(util::parse_log_level("verbose", &level));
  EXPECT_EQ(level, util::LogLevel::kError);  // untouched on failure
}

TEST(StructuredLog, KeyValueLineShape) {
  const util::LogLevel saved = util::log_level();
  util::set_log_level(util::LogLevel::kInfo);
  testing::internal::CaptureStderr();
  util::log_kv(util::LogLevel::kInfo, "shard",
               {{"job", 3},
                {"context", "hit"},
                {"error", "connect: connection refused"},
                {"ratio", 0.5}});
  util::log_kv(util::LogLevel::kDebug, "dropped", {});  // below threshold
  const std::string captured = testing::internal::GetCapturedStderr();
  util::set_log_level(saved);

  EXPECT_EQ(captured,
            "[cpsinw:INFO] shard job=3 context=hit "
            "error=\"connect: connection refused\" ratio=0.5\n");
}

// ------------------------------------------------------------ trace export

/// Parses trace JSON and checks the trace-event contract: every event is
/// a complete "X" span, and the spans of any one lane (tid) are either
/// disjoint or properly nested — never partially overlapping.
void check_trace_json(const std::string& text) {
  const JsonValue doc = parse_json(text);
  const std::vector<JsonValue>& events =
      doc.at("traceEvents").as_array("traceEvents");
  ASSERT_FALSE(events.empty());

  struct Span {
    double begin, end;
  };
  std::vector<std::pair<int, Span>> spans;
  for (const JsonValue& ev : events) {
    EXPECT_EQ(ev.at("ph").as_string("ph"), "X");
    EXPECT_FALSE(ev.at("name").as_string("name").empty());
    const double ts = ev.at("ts").as_double("ts");
    const double dur = ev.at("dur").as_double("dur");
    EXPECT_GE(ts, 0.0);
    EXPECT_GE(dur, 0.0);
    spans.push_back({ev.at("tid").as_int("tid"), {ts, ts + dur}});
  }
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (std::size_t k = i + 1; k < spans.size(); ++k) {
      if (spans[i].first != spans[k].first) continue;
      const Span& a = spans[i].second;
      const Span& b = spans[k].second;
      const bool disjoint = a.end <= b.begin || b.end <= a.begin;
      const bool nested = (a.begin <= b.begin && b.end <= a.end) ||
                          (b.begin <= a.begin && a.end <= b.end);
      EXPECT_TRUE(disjoint || nested)
          << "lane " << spans[i].first << " spans [" << a.begin << ", "
          << a.end << ") and [" << b.begin << ", " << b.end
          << ") partially overlap";
    }
  }
}

CampaignSpec small_campaign_spec() {
  CampaignSpec spec;
  spec.jobs.push_back({"parity8", logic::parity_tree(8)});
  spec.jobs.push_back({"c17", logic::c17()});
  spec.patterns.kind = PatternSourceSpec::Kind::kRandom;
  spec.patterns.random_count = 24;
  spec.seed = 7;
  spec.shard_size = 16;
  return spec;
}

std::string read_file(const std::string& path) {
  std::string text;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

TEST(TraceExport, TwoThreadCampaignProducesWellFormedSpans) {
  const std::string path =
      testing::TempDir() + "/cpsinw_trace_thread_pool.json";
  CampaignSpec spec = small_campaign_spec();
  spec.executor.backend = ExecutorBackend::kThreadPool;
  spec.threads = 2;
  spec.trace_path = path;
  const CampaignReport report = run_campaign(spec);
  ASSERT_TRUE(report.ok()) << report.error;

  const std::string text = read_file(path);
  ASSERT_FALSE(text.empty()) << "trace file missing: " << path;
  check_trace_json(text);

  // The campaign phases and the per-shard spans must all be present.
  for (const char* needle :
       {"campaign:validate", "campaign:setup", "campaign:shards",
        "campaign:merge", "thread_pool:shard"})
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  std::remove(path.c_str());
}

TEST(TraceExport, RemoteCampaignTraceSpansAllThreeSides) {
  const std::vector<std::string>& endpoints =
      test_util::loopback_endpoints();
  ASSERT_FALSE(endpoints.empty()) << "loopback shard servers failed to start";

  const std::string path = testing::TempDir() + "/cpsinw_trace_remote.json";
  CampaignSpec spec = small_campaign_spec();
  spec.executor.backend = ExecutorBackend::kRemote;
  spec.executor.endpoints = endpoints;
  spec.threads = 2;
  spec.trace_path = path;
  const CampaignReport report = run_campaign(spec);
  ASSERT_TRUE(report.ok()) << report.error;

  const std::string text = read_file(path);
  ASSERT_FALSE(text.empty()) << "trace file missing: " << path;
  check_trace_json(text);

  // Client (campaign phases), executor (per-shard dispatch spans), and
  // server sides (execution spans reconstructed from the reported
  // elapsed time, tagged with the endpoint they ran on) all show up.
  const std::vector<std::string> needles = {
      "campaign:shards", "remote:shard", "server:run_shard",
      "remote:" + endpoints[0]};
  for (const std::string& needle : needles)
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  std::remove(path.c_str());
}

TEST(TraceExport, DisabledRecorderKeepsNoSpans) {
  telemetry::TraceRecorder rec;
  rec.add_span("x", "y", telemetry::Clock::now(), telemetry::Clock::now());
  { telemetry::ScopedSpan span(&rec, "scoped"); }
  telemetry::ScopedSpan null_span(nullptr, "null-recorder");  // must not crash
  EXPECT_TRUE(rec.events().empty());
}

// --------------------------------------------------------------- stats RPC

TEST(StatsIo, RequestClassification) {
  const std::string req = serialize_stats_request();
  EXPECT_TRUE(is_stats_request(req));
  EXPECT_FALSE(is_stats_request("{}"));
  EXPECT_FALSE(is_stats_request("{\"version\":1}"));
  EXPECT_FALSE(is_stats_request("not json at all"));
  // A shard work document is big and must be rejected on length alone.
  EXPECT_FALSE(is_stats_request(std::string(4096, 'x')));
}

TEST(StatsIo, ResponseRoundTripsExactly) {
  ServerStats stats;
  stats.uptime_s = 12.25;
  stats.metrics.counters.push_back({"server.shards_served", 12345678901ull});
  stats.metrics.counters.push_back({"server.cache_hits", 41});
  stats.metrics.gauges.push_back({"queue.depth", -3});
  telemetry::HistogramValue hv;
  hv.name = "server.shard_exec_s";
  hv.buckets.assign(telemetry::Histogram::kBucketCount, 0);
  hv.buckets[5] = 9;
  hv.buckets[27] = 1;
  hv.count = 10;
  hv.sum_s = 0.5;
  stats.metrics.histograms.push_back(hv);

  const ServerStats parsed =
      parse_stats_response(serialize_stats_response(stats));
  EXPECT_EQ(parsed.uptime_s, stats.uptime_s);
  ASSERT_EQ(parsed.metrics.counters.size(), 2u);
  EXPECT_EQ(parsed.metrics.counters[0].name, "server.shards_served");
  const telemetry::CounterValue* served =
      parsed.metrics.find_counter("server.shards_served");
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served->value, 12345678901ull);
  ASSERT_EQ(parsed.metrics.gauges.size(), 1u);
  EXPECT_EQ(parsed.metrics.gauges[0].value, -3);
  const telemetry::HistogramValue* h =
      parsed.metrics.find_histogram("server.shard_exec_s");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 10u);
  EXPECT_EQ(h->buckets[5], 9u);
  EXPECT_EQ(h->buckets[27], 1u);
  EXPECT_EQ(h->sum_s, 0.5);
}

TEST(StatsIo, LiveServerScrapeAfterRemoteCampaign) {
  const std::vector<std::string>& endpoints =
      test_util::loopback_endpoints();
  ASSERT_FALSE(endpoints.empty()) << "loopback shard servers failed to start";

  CampaignSpec spec = small_campaign_spec();
  spec.executor.backend = ExecutorBackend::kRemote;
  spec.executor.endpoints = endpoints;
  spec.threads = 2;
  const CampaignReport report = run_campaign(spec);
  ASSERT_TRUE(report.ok()) << report.error;

  std::uint64_t shards_served = 0;
  for (const std::string& endpoint : endpoints) {
    ServerStats stats;
    std::string error;
    ASSERT_TRUE(query_server_stats(endpoint, 10.0, &stats, &error))
        << endpoint << ": " << error;
    EXPECT_GT(stats.uptime_s, 0.0);
    const telemetry::CounterValue* served =
        stats.metrics.find_counter("server.shards_served");
    ASSERT_NE(served, nullptr) << endpoint;
    shards_served += served->value;
    // Shards of one job share a compiled context: with more shards than
    // jobs, at least one hit must have happened somewhere.
    EXPECT_NE(stats.metrics.find_counter("server.cache_hits"), nullptr);
    EXPECT_NE(stats.metrics.find_histogram("server.shard_exec_s"), nullptr);
  }
  // Every shard of the campaign landed on some scraped endpoint (the
  // servers may have served other campaigns too, hence >=).
  std::size_t campaign_shards = 0;
  for (const JobReport& jr : report.jobs)
    campaign_shards += static_cast<std::size_t>(jr.shard_count);
  EXPECT_GE(shards_served, campaign_shards);
}

TEST(StatsIo, QueryRefusedEndpointFailsCleanly) {
  ServerStats stats;
  std::string error;
  EXPECT_FALSE(query_server_stats(test_util::refused_endpoint(), 2.0, &stats,
                                  &error));
  EXPECT_FALSE(error.empty());
}

// ----------------------------------------------- stable-JSON preservation

TEST(TelemetryReport, StableJsonUnchangedByTelemetry) {
  const CampaignSpec base = small_campaign_spec();

  CampaignSpec inline_spec = base;
  inline_spec.executor.backend = ExecutorBackend::kInline;
  const std::string reference = run_campaign(inline_spec).to_json();

  // Telemetry off (default): byte-identical at 1/2/8 threads on both
  // in-process backends.
  for (const int threads : {1, 2, 8}) {
    CampaignSpec spec = base;
    spec.executor.backend = ExecutorBackend::kThreadPool;
    spec.threads = threads;
    EXPECT_EQ(reference, run_campaign(spec).to_json())
        << "thread_pool(" << threads << ") diverged";
  }

  // Telemetry *collection* on (registry + trace): the stable JSON must
  // still not move — only the opt-in telemetry block may differ.
  const std::string path = testing::TempDir() + "/cpsinw_trace_stable.json";
  for (const int threads : {1, 2}) {
    CampaignSpec spec = base;
    spec.executor.backend = ExecutorBackend::kThreadPool;
    spec.threads = threads;
    spec.emit_telemetry = true;
    spec.trace_path = path;
    const CampaignReport report = run_campaign(spec);
    EXPECT_TRUE(report.ok()) << report.error;
    CampaignReport stable = report;
    stable.emit_telemetry = false;
    EXPECT_EQ(reference, stable.to_json())
        << "telemetry collection changed the stable JSON at " << threads
        << " threads";
    // With the block on, the telemetry keys must actually appear.
    const std::string with_telemetry = report.to_json();
    EXPECT_NE(with_telemetry.find("\"telemetry\""), std::string::npos);
    EXPECT_NE(with_telemetry.find("thread_pool.shard_exec_s"),
              std::string::npos);
    EXPECT_EQ(reference.find("\"telemetry\""), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(TelemetryReport, TimingGainsPhaseFieldsOnlyWhenOptedIn) {
  CampaignSpec spec = small_campaign_spec();
  spec.executor.backend = ExecutorBackend::kInline;

  const std::string plain = run_campaign(spec).to_json(true);
  EXPECT_EQ(plain.find("setup_s"), std::string::npos);
  EXPECT_EQ(plain.find("merge_s"), std::string::npos);

  spec.emit_telemetry = true;
  const std::string opted = run_campaign(spec).to_json(true);
  EXPECT_NE(opted.find("\"setup_s\""), std::string::npos);
  EXPECT_NE(opted.find("\"merge_s\""), std::string::npos);
}

}  // namespace
}  // namespace cpsinw::engine
