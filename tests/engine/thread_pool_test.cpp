#include "engine/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace cpsinw::engine {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIdleWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1);
  EXPECT_EQ(pool.thread_count(), ThreadPool::hardware_threads());
}

TEST(ThreadPool, SingleThreadPoolStillDrains) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, TasksMaySubmitMoreTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&pool, &count] {
      ++count;
      for (int k = 0; k < 4; ++k)
        pool.submit([&count] { ++count; });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 16 + 16 * 4);
}

TEST(ThreadPool, StealingDrainsUnbalancedWork) {
  // More tasks than threads with wildly uneven durations: completion of
  // everything (without wait_idle hanging) exercises the steal path.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&count, i] {
      if (i % 8 == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      ++count;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, DestructorFinishesOutstandingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i)
      pool.submit([&count] { ++count; });
    // No wait_idle: teardown must drain before joining.
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, FirstEscapedExceptionIsCapturedNotSwallowed) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.first_exception(), nullptr);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i)
    pool.submit([&count, i] {
      if (i == 25) throw std::runtime_error("task 25 failed");
      ++count;
    });
  pool.wait_idle();
  // The throwing task did not kill its worker or lose other tasks...
  EXPECT_EQ(count.load(), 49);
  // ...and its exception is retrievable instead of silently dropped.
  const std::exception_ptr err = pool.first_exception();
  ASSERT_NE(err, nullptr);
  try {
    std::rethrow_exception(err);
    FAIL() << "expected a runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 25 failed");
  }

  // The pool stays usable and the captured exception stays sticky.
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
  EXPECT_NE(pool.first_exception(), nullptr);
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 50; ++i)
      pool.submit([&count] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), (wave + 1) * 50);
  }
}

}  // namespace
}  // namespace cpsinw::engine
