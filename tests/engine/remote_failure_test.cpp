// Failure injection for the remote backend: endpoints that refuse
// connections, disconnect mid-shard, answer with garbage or an oversized
// frame, or hang past the per-shard timeout must each surface on
// CampaignReport::error (first failure in canonical shard order) while
// every healthy shard still merges — and when a second endpoint is
// available, failover must keep the campaign clean and byte-identical.
// The server's --fail-mode / --fail-index flags misbehave on purpose
// after parsing the request.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "engine/campaign.hpp"
#include "logic/benchmarks.hpp"
#include "remote_test_util.hpp"

namespace cpsinw::engine {
namespace {

/// One job with several shards, so exactly one shard failing still leaves
/// healthy shards to merge.
CampaignSpec base_spec() {
  CampaignSpec spec;
  spec.jobs.push_back({"parity_tree_8", logic::parity_tree(8)});
  spec.patterns.kind = PatternSourceSpec::Kind::kRandom;
  spec.patterns.random_count = 32;
  spec.shard_size = 16;
  spec.threads = 2;
  spec.executor.backend = ExecutorBackend::kRemote;
  return spec;
}

/// The same campaign on the inline reference backend.
CampaignReport healthy_reference() {
  CampaignSpec spec = base_spec();
  spec.executor.backend = ExecutorBackend::kInline;
  return run_campaign(spec);
}

/// Spawns one misbehaving server (`--fail-mode mode --fail-index 0`),
/// runs the campaign against it alone, and checks the shared contract:
/// the error names the canonical first failing shard, the failed shard's
/// faults stay in the totals as undetected, healthy shards still count.
/// Returns the error text for mode-specific assertions.
std::string run_with_failure(const std::string& mode, double timeout_s) {
  const CampaignReport healthy = healthy_reference();
  EXPECT_TRUE(healthy.ok()) << healthy.error;
  EXPECT_GT(healthy.timing.shard_count, 1)
      << "fixture must decompose into several shards";

  net::LocalServerProcess server(
      test_util::server_path(), {"--fail-mode", mode, "--fail-index", "0"});
  EXPECT_TRUE(server.ok()) << server.error();

  CampaignSpec spec = base_spec();
  spec.executor.endpoints = {server.endpoint()};
  spec.executor.worker_timeout_s = timeout_s;
  const CampaignReport report = run_campaign(spec);

  EXPECT_FALSE(report.ok()) << "mode '" << mode << "' did not surface";
  EXPECT_NE(report.error.find("job 0, shard 0"), std::string::npos)
      << report.error;

  // Lower-bound merge: totals stay complete, the failed shard's
  // detections are absent, every healthy shard still contributes.
  EXPECT_EQ(report.totals().total, healthy.totals().total);
  EXPECT_EQ(report.totals().sampled, healthy.totals().sampled);
  EXPECT_GT(report.totals().detected, 0)
      << "healthy shards must still contribute detections";
  EXPECT_LT(report.totals().detected, healthy.totals().detected)
      << "the failed shard's detections must be absent";

  // The error is serialized into the stable JSON (and only then).
  EXPECT_NE(report.to_json().find("\"error\""), std::string::npos);
  return report.error;
}

TEST(RemoteFailure, RefusedConnectionsFailEveryShardButStillMerge) {
  const CampaignReport healthy = healthy_reference();

  CampaignSpec spec = base_spec();
  spec.executor.endpoints = {test_util::refused_endpoint()};
  // Quarantine off (execution order is scheduler-dependent, so any shard
  // could otherwise be the one that finds the endpoint already retired):
  // every shard attempts, and every error is the real refusal.
  spec.executor.remote_quarantine_failures = 1 << 20;
  const CampaignReport report = run_campaign(spec);

  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.error.find("job 0, shard 0"), std::string::npos)
      << report.error;
  EXPECT_NE(report.error.find("connect to 127.0.0.1:"), std::string::npos)
      << report.error;
  EXPECT_EQ(report.totals().total, healthy.totals().total);
  EXPECT_EQ(report.totals().detected, 0);
}

TEST(RemoteFailure, MidShardDisconnectSurfaces) {
  const std::string error = run_with_failure("disconnect", 60.0);
  EXPECT_NE(error.find("connection closed"), std::string::npos) << error;
}

TEST(RemoteFailure, GarbageResponseIsRejected) {
  const std::string error = run_with_failure("garbage", 60.0);
  EXPECT_NE(error.find("malformed result"), std::string::npos) << error;
}

TEST(RemoteFailure, OversizedResponseIsRejectedBeforeItIsRead) {
  const std::string error = run_with_failure("oversized", 60.0);
  EXPECT_NE(error.find("exceeds"), std::string::npos) << error;
}

TEST(RemoteFailure, SlowEndpointHitsThePerShardTimeout) {
  const std::string error = run_with_failure("hang", 1.0);
  EXPECT_NE(error.find("timed out"), std::string::npos) << error;
}

TEST(RemoteFailure, FailoverToTheSecondEndpointKeepsTheCampaignClean) {
  const CampaignReport healthy = healthy_reference();

  // Endpoint A drops every connection mid-shard; endpoint B is healthy.
  // Every shard that lands on A retries on B, so the campaign stays clean
  // and byte-identical to the inline reference.
  net::LocalServerProcess bad(test_util::server_path(),
                              {"--fail-mode", "disconnect"});
  net::LocalServerProcess good(test_util::server_path());
  ASSERT_TRUE(bad.ok()) << bad.error();
  ASSERT_TRUE(good.ok()) << good.error();

  CampaignSpec spec = base_spec();
  spec.executor.endpoints = {bad.endpoint(), good.endpoint()};
  const CampaignReport report = run_campaign(spec);

  EXPECT_TRUE(report.ok()) << report.error;
  EXPECT_EQ(report.to_json(), healthy.to_json());
}

TEST(RemoteFailure, QuarantineStopsPayingTheTimeoutPerShard) {
  // A hanging endpoint costs one timeout per attempt.  With quarantine
  // after a single failure and failover to a healthy endpoint, the
  // campaign pays the 1s timeout once — not once per shard (the fixture
  // has ~10 shards; without quarantine this would take ~10s serially).
  net::LocalServerProcess slow(test_util::server_path(),
                               {"--fail-mode", "hang"});
  net::LocalServerProcess good(test_util::server_path());
  ASSERT_TRUE(slow.ok()) << slow.error();
  ASSERT_TRUE(good.ok()) << good.error();

  CampaignSpec spec = base_spec();
  spec.threads = 1;  // serialize: per-shard timeouts would sum
  spec.executor.endpoints = {slow.endpoint(), good.endpoint()};
  spec.executor.worker_timeout_s = 1.0;
  spec.executor.remote_quarantine_failures = 1;
  const CampaignReport report = run_campaign(spec);

  EXPECT_TRUE(report.ok()) << report.error;
  EXPECT_GT(report.timing.shard_count, 3);
  // Without quarantine every serialized shard would pay the full 1s
  // timeout (~shard_count seconds); with it, only the first attempt
  // does.  Half the no-quarantine floor keeps the assertion meaningful
  // while leaving slack for a loaded single-core CI runner.
  EXPECT_LT(report.timing.wall_s,
            0.5 * static_cast<double>(report.timing.shard_count) * 1.0)
      << "quarantine must retire the hanging endpoint after one timeout";
}

TEST(RemoteFailure, SpecValidationRejectsBadEndpointLists) {
  CampaignSpec spec = base_spec();  // endpoints left empty
  EXPECT_THROW((void)run_campaign(spec), std::invalid_argument);

  for (const char* bad : {"localhost", "host:", ":123", "host:abc",
                          "host:99999", "a:b:c", ""}) {
    CampaignSpec malformed = base_spec();
    malformed.executor.endpoints = {bad};
    EXPECT_THROW((void)run_campaign(malformed), std::invalid_argument)
        << "endpoint '" << bad << "' must be rejected";
  }

  CampaignSpec bad_timeout = base_spec();
  bad_timeout.executor.endpoints = {"127.0.0.1:1"};
  bad_timeout.executor.worker_timeout_s = 0.0;
  EXPECT_THROW((void)run_campaign(bad_timeout), std::invalid_argument);

  CampaignSpec bad_in_flight = base_spec();
  bad_in_flight.executor.endpoints = {"127.0.0.1:1"};
  bad_in_flight.executor.remote_max_in_flight = 0;
  EXPECT_THROW((void)run_campaign(bad_in_flight), std::invalid_argument);

  CampaignSpec bad_quarantine = base_spec();
  bad_quarantine.executor.endpoints = {"127.0.0.1:1"};
  bad_quarantine.executor.remote_quarantine_failures = 0;
  EXPECT_THROW((void)run_campaign(bad_quarantine), std::invalid_argument);
}

}  // namespace
}  // namespace cpsinw::engine
