// Campaign-level guarantees of the shared evaluation context: shards of a
// job reading one context produce byte-identical reports at every thread
// count for all five fault classes, the legacy per-shard (re-packing)
// entry point agrees with the shared-context path, and shard failures
// surface on the report's error slot instead of vanishing.
#include <gtest/gtest.h>

#include "engine/campaign.hpp"
#include "faults/eval_context.hpp"
#include "logic/benchmarks.hpp"

namespace cpsinw::engine {
namespace {

CampaignSpec all_classes_spec() {
  CampaignSpec spec;
  spec.jobs.push_back({"c17", logic::c17()});
  spec.jobs.push_back({"full_adder", logic::full_adder()});
  spec.models.bridge = true;
  spec.patterns.kind = PatternSourceSpec::Kind::kRandom;
  spec.patterns.random_count = 96;  // crosses the 64-pattern batch boundary
  spec.shard_size = 16;
  return spec;
}

TEST(ContextEquivalence, AllFiveClassesByteIdenticalAcrossThreadCounts) {
  CampaignSpec spec = all_classes_spec();
  spec.threads = 1;
  const CampaignReport r1 = run_campaign(spec);
  spec.threads = 2;
  const CampaignReport r2 = run_campaign(spec);
  spec.threads = 8;
  const CampaignReport r8 = run_campaign(spec);
  EXPECT_EQ(r1.to_json(), r2.to_json());
  EXPECT_EQ(r1.to_json(), r8.to_json());

  // Every class of the paper is present and exercised (full_adder's XOR
  // cells bring dynamic-polarity dictionaries into the packed batch path).
  for (int c = 0; c < kFaultClassCount; ++c) {
    int total = 0, detected = 0;
    for (const JobReport& job : r1.jobs) {
      total += job.by_class[static_cast<std::size_t>(c)].total;
      detected += job.by_class[static_cast<std::size_t>(c)].detected;
    }
    EXPECT_GT(total, 0) << to_string(static_cast<FaultClass>(c));
    EXPECT_GT(detected, 0) << to_string(static_cast<FaultClass>(c));
  }
  EXPECT_TRUE(r1.ok());
}

TEST(ContextEquivalence, SharedContextShardsMatchLegacyPerShardEntryPoint) {
  const logic::Circuit ckt = logic::full_adder();
  CampaignSpec spec = all_classes_spec();
  const std::vector<CampaignFault> universe =
      build_universe(ckt, spec.models, spec.sim.observe_iddq);
  const std::vector<logic::Pattern> patterns = build_patterns(
      ckt, spec.patterns, util::SplitMix64(7));
  const std::vector<Shard> shards =
      make_shards(0, universe.size(), 16, util::SplitMix64(9));
  ASSERT_GT(shards.size(), 1u);

  const faults::EvalContext ctx(ckt, patterns);
  ShardExecOptions exec;
  for (const Shard& shard : shards) {
    const ShardResult shared = run_shard(ctx, universe, shard, exec);
    const ShardResult legacy =
        run_shard(ckt, universe, patterns, shard, exec);
    ASSERT_EQ(shared.results.size(), legacy.results.size());
    for (std::size_t i = 0; i < shared.results.size(); ++i) {
      const FaultResult& a = shared.results[i];
      const FaultResult& b = legacy.results[i];
      EXPECT_EQ(a.cls, b.cls);
      EXPECT_EQ(a.sampled_out, b.sampled_out);
      EXPECT_EQ(a.record.detected_output, b.record.detected_output);
      EXPECT_EQ(a.record.detected_iddq, b.record.detected_iddq);
      EXPECT_EQ(a.record.potential, b.record.potential);
      EXPECT_EQ(a.record.first_pattern, b.record.first_pattern);
    }
  }
}

TEST(ContextEquivalence, ShardFailureSurfacesOnReportErrorSlot) {
  // An X in an explicit pattern passes the up-front arity validation but
  // makes the packed line-fault path refuse inside the shards.  The
  // campaign must complete and carry the failure on the error slot.
  CampaignSpec spec;
  logic::Circuit ckt = logic::c17();
  logic::Pattern p(ckt.primary_inputs().size(), logic::LogicV::k0);
  p[0] = logic::LogicV::kX;
  spec.patterns.kind = PatternSourceSpec::Kind::kExplicit;
  spec.patterns.explicit_patterns.push_back(std::move(p));
  spec.jobs.push_back({"c17", std::move(ckt)});
  spec.threads = 2;

  const CampaignReport report = run_campaign(spec);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.error.find("packable"), std::string::npos)
      << report.error;
  EXPECT_NE(report.to_json().find("\"error\""), std::string::npos);

  // The failed shard's faults stay in the totals as undetected, keeping
  // every count a lower bound rather than silently shrinking the universe.
  const std::size_t universe_size =
      build_universe(logic::c17(), FaultModelSelection{},
                     spec.sim.observe_iddq)
          .size();
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].totals().total,
            static_cast<int>(universe_size));
  EXPECT_EQ(report.jobs[0].totals().sampled,
            static_cast<int>(universe_size));
  const ClassStats& line = report.jobs[0].by_class[static_cast<std::size_t>(
      FaultClass::kLineStuckAt)];
  EXPECT_GT(line.total, 0);
  EXPECT_EQ(line.detected, 0);  // its shards failed: lower bound is 0
}

TEST(ContextEquivalence, CleanReportHasNoErrorKey) {
  CampaignSpec spec = all_classes_spec();
  spec.threads = 2;
  const CampaignReport report = run_campaign(spec);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.to_json().find("\"error\""), std::string::npos);
  EXPECT_EQ(report.to_json(true).find("\"error\""), std::string::npos);
}

}  // namespace
}  // namespace cpsinw::engine
