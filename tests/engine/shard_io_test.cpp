#include "engine/shard_io.hpp"

#include <gtest/gtest.h>

#include "engine/campaign.hpp"
#include "faults/eval_context.hpp"
#include "logic/benchmarks.hpp"

namespace cpsinw::engine {
namespace {

/// A universe carrying every fault class (bridges included) plus a pattern
/// set with X values, over a circuit with constants and multiple cells.
struct Fixture {
  logic::Circuit ckt = logic::c17();
  std::vector<CampaignFault> universe;
  std::vector<logic::Pattern> patterns;
  Shard shard;
  ShardExecOptions options;

  explicit Fixture(bool with_x_pattern = true) {
    FaultModelSelection models;
    models.bridge = true;
    universe = build_universe(ckt, models);
    const std::size_t pis = ckt.primary_inputs().size();
    for (unsigned v = 0; v < 8; ++v) {
      logic::Pattern p(pis);
      for (std::size_t i = 0; i < pis; ++i)
        p[i] = logic::from_bool((v >> (i % 3)) & 1u);
      patterns.push_back(std::move(p));
    }
    // One partially specified pattern exercises the X path in the wire
    // format (campaigns with line faults require packable patterns, so
    // the execution test below opts out of it).
    if (with_x_pattern) {
      logic::Pattern x_pattern(pis, logic::LogicV::k1);
      x_pattern[0] = logic::LogicV::kX;
      patterns.push_back(std::move(x_pattern));
    }

    shard.job = 2;
    shard.index = 5;
    shard.begin = 0;
    shard.end = universe.size();
    shard.rng = util::SplitMix64(99).fork(7);
    options.fault_sample_fraction = 0.85;
  }
};

TEST(ShardIo, InputSurvivesARoundTripByteIdentically) {
  const Fixture fx;
  const std::string doc = serialize_shard_input(fx.ckt, fx.patterns,
                                                fx.universe, fx.shard,
                                                fx.options);
  const ShardWorkInput parsed = parse_shard_input(doc);

  EXPECT_EQ(parsed.shard.job, fx.shard.job);
  EXPECT_EQ(parsed.shard.index, fx.shard.index);
  EXPECT_EQ(parsed.shard.begin, 0u);
  EXPECT_EQ(parsed.shard.end, fx.universe.size());
  EXPECT_EQ(parsed.shard.rng.state(), fx.shard.rng.state());
  EXPECT_EQ(parsed.patterns, fx.patterns);
  EXPECT_DOUBLE_EQ(parsed.options.fault_sample_fraction,
                   fx.options.fault_sample_fraction);

  // Re-serializing the parsed document reproduces the original bytes: the
  // encoding has one canonical form, so nothing was lost or reordered.
  const std::string again =
      serialize_shard_input(parsed.circuit, parsed.patterns, parsed.faults,
                            parsed.shard, parsed.options);
  EXPECT_EQ(doc, again);
}

TEST(ShardIo, CircuitIdsAndStructureArePreserved) {
  const Fixture fx;
  const ShardWorkInput parsed = parse_shard_input(serialize_shard_input(
      fx.ckt, fx.patterns, fx.universe, fx.shard, fx.options));

  ASSERT_EQ(parsed.circuit.net_count(), fx.ckt.net_count());
  ASSERT_EQ(parsed.circuit.gate_count(), fx.ckt.gate_count());
  for (logic::NetId n = 0; n < fx.ckt.net_count(); ++n) {
    EXPECT_EQ(parsed.circuit.net_name(n), fx.ckt.net_name(n));
    EXPECT_EQ(parsed.circuit.is_primary_input(n),
              fx.ckt.is_primary_input(n));
    EXPECT_EQ(parsed.circuit.driver_of(n), fx.ckt.driver_of(n));
  }
  for (int g = 0; g < fx.ckt.gate_count(); ++g) {
    EXPECT_EQ(parsed.circuit.gate(g).kind, fx.ckt.gate(g).kind);
    EXPECT_EQ(parsed.circuit.gate(g).in, fx.ckt.gate(g).in);
    EXPECT_EQ(parsed.circuit.gate(g).out, fx.ckt.gate(g).out);
  }
  EXPECT_EQ(parsed.circuit.primary_inputs(), fx.ckt.primary_inputs());
  EXPECT_EQ(parsed.circuit.primary_outputs(), fx.ckt.primary_outputs());
}

TEST(ShardIo, AllFaultClassesRoundTrip) {
  const Fixture fx;
  const ShardWorkInput parsed = parse_shard_input(serialize_shard_input(
      fx.ckt, fx.patterns, fx.universe, fx.shard, fx.options));

  ASSERT_EQ(parsed.faults.size(), fx.universe.size());
  bool saw_class[kFaultClassCount] = {};
  for (std::size_t i = 0; i < fx.universe.size(); ++i) {
    const CampaignFault& a = fx.universe[i];
    const CampaignFault& b = parsed.faults[i];
    ASSERT_EQ(a.cls, b.cls) << "fault " << i;
    saw_class[static_cast<std::size_t>(a.cls)] = true;
    if (a.cls == FaultClass::kBridge)
      EXPECT_EQ(a.bridge, b.bridge) << "fault " << i;
    else
      EXPECT_EQ(a.fault, b.fault) << "fault " << i;
  }
  for (int c = 0; c < kFaultClassCount; ++c)
    EXPECT_TRUE(saw_class[c]) << to_string(static_cast<FaultClass>(c));
}

TEST(ShardIo, ParsedShardExecutesBitIdenticallyToTheOriginal) {
  const Fixture fx(/*with_x_pattern=*/false);
  const faults::EvalContext ctx(fx.ckt, fx.patterns);
  const ShardResult direct = run_shard(ctx, fx.universe, fx.shard, fx.options);

  ShardWorkInput parsed = parse_shard_input(serialize_shard_input(
      fx.ckt, fx.patterns, fx.universe, fx.shard, fx.options));
  const faults::EvalContext worker_ctx(parsed.circuit,
                                       std::move(parsed.patterns));
  const ShardResult remote =
      run_shard(worker_ctx, parsed.faults, parsed.shard, parsed.options);

  // The worker-side result serializes to the same bytes as the in-process
  // one (modulo timing, which the comparison below zeroes out).
  ShardResult a = direct;
  ShardResult b = remote;
  a.elapsed_s = 0.0;
  b.elapsed_s = 0.0;
  EXPECT_EQ(serialize_shard_result(a), serialize_shard_result(b));
}

TEST(ShardIo, ResultSurvivesARoundTripByteIdentically) {
  ShardResult result;
  result.job = 1;
  result.index = 4;
  result.elapsed_s = 0.25;
  FaultResult r;
  r.cls = FaultClass::kPolarity;
  r.record.detected_iddq = true;
  r.record.first_pattern = 3;
  result.results.push_back(r);
  r = {};
  r.cls = FaultClass::kBridge;
  r.sampled_out = true;
  result.results.push_back(r);
  r = {};
  r.cls = FaultClass::kStuckOpen;
  r.record.detected_output = true;
  r.record.potential = true;
  r.record.first_pattern = 0;
  result.results.push_back(r);

  const std::string doc = serialize_shard_result(result);
  const ShardResult parsed = parse_shard_result(doc);
  EXPECT_EQ(serialize_shard_result(parsed), doc);
  ASSERT_EQ(parsed.results.size(), result.results.size());
  EXPECT_EQ(parsed.results[0].record.first_pattern, 3);
  EXPECT_TRUE(parsed.results[1].sampled_out);
}

TEST(ShardIo, MalformedDocumentsThrowInsteadOfMisbehaving) {
  const Fixture fx;
  const std::string doc = serialize_shard_input(fx.ckt, fx.patterns,
                                                fx.universe, fx.shard,
                                                fx.options);
  EXPECT_THROW((void)parse_shard_input(""), std::runtime_error);
  EXPECT_THROW((void)parse_shard_input("not json at all"),
               std::runtime_error);
  EXPECT_THROW((void)parse_shard_input(doc.substr(0, doc.size() / 2)),
               std::runtime_error);
  EXPECT_THROW((void)parse_shard_input("{}"), std::runtime_error);
  EXPECT_THROW((void)parse_shard_result("{\"version\":1}"),
               std::runtime_error);

  // A future protocol version is rejected, not half-parsed.
  std::string wrong_version = doc;
  const std::size_t at = wrong_version.find("\"version\":1");
  ASSERT_NE(at, std::string::npos);
  wrong_version.replace(at, 11, "\"version\":9");
  EXPECT_THROW((void)parse_shard_input(wrong_version), std::runtime_error);
}

}  // namespace
}  // namespace cpsinw::engine
