#include "gates/switch_level.hpp"

#include <gtest/gtest.h>

namespace cpsinw::gates {
namespace {

/// Property: every fault-free cell produces a strong, contention-free,
/// driven output equal to its boolean function on every input vector.
class FaultFreeSwitchEval
    : public ::testing::TestWithParam<CellKind> {};

TEST_P(FaultFreeSwitchEval, MatchesTruthTableStrongly) {
  const CellKind kind = GetParam();
  const unsigned combos = 1u << input_count(kind);
  for (unsigned v = 0; v < combos; ++v) {
    const SwitchEval e = eval_switch(kind, v);
    EXPECT_FALSE(e.contention) << to_string(kind) << " v=" << v;
    EXPECT_FALSE(e.floating) << to_string(kind) << " v=" << v;
    EXPECT_TRUE(is_definite(e.out)) << to_string(kind) << " v=" << v;
    EXPECT_EQ(logic_value(e.out), good_output(kind, v))
        << to_string(kind) << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCells, FaultFreeSwitchEval,
                         ::testing::ValuesIn(all_cell_kinds()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(SwitchEval, StuckOpenInverterFloatsOneSide) {
  // t1 (pull-up) open: input 0 should drive out high but cannot.
  const SwitchEval e =
      eval_switch(CellKind::kInv, 0u, {0, TransistorFault::kStuckOpen});
  EXPECT_TRUE(e.floating);
  EXPECT_EQ(e.out, SwitchValue::kZ);
  // Input 1: pull-down intact, unaffected.
  const SwitchEval e1 =
      eval_switch(CellKind::kInv, 1u, {0, TransistorFault::kStuckOpen});
  EXPECT_EQ(logic_value(e1.out), 0);
}

TEST(SwitchEval, StuckOnInverterCausesContention) {
  // t1 (pull-up) stuck-on: at input 1 both networks conduct.
  const SwitchEval e =
      eval_switch(CellKind::kInv, 1u, {0, TransistorFault::kStuckOn});
  EXPECT_TRUE(e.contention);
  // n pull-down (strength 4) beats the shorted pull-up (strength 2).
  EXPECT_EQ(logic_value(e.out), 0);
}

TEST(SwitchEval, Xor2PullUpPolarityFaultLeaksWithoutFlipping) {
  // Paper Table III: pull-up polarity faults are IDDQ-only detectable.
  bool found_leak_only = false;
  for (const int t : {0, 1}) {
    for (const TransistorFault k :
         {TransistorFault::kStuckAtNType, TransistorFault::kStuckAtPType}) {
      for (unsigned v = 0; v < 4; ++v) {
        const SwitchEval e = eval_switch(CellKind::kXor2, v, {t, k});
        const int good = good_output(CellKind::kXor2, v);
        const int lv = logic_value(e.out);
        EXPECT_FALSE(lv >= 0 && lv != good)
            << "pull-up fault must not flip the output: t" << t + 1
            << " v=" << v;
        if (e.contention) found_leak_only = true;
      }
    }
  }
  EXPECT_TRUE(found_leak_only);
}

TEST(SwitchEval, Xor2PullDownStuckAtNFlipsOutput) {
  // Paper Table III: pull-down stuck-at-n-type faults are detectable at
  // the output (wrong value) in addition to IDDQ.
  bool t3_flip = false;
  bool t4_flip = false;
  for (unsigned v = 0; v < 4; ++v) {
    const SwitchEval e3 = eval_switch(CellKind::kXor2, v,
                                      {2, TransistorFault::kStuckAtNType});
    if (logic_value(e3.out) == 0 && good_output(CellKind::kXor2, v) == 1) {
      t3_flip = true;
      EXPECT_TRUE(e3.contention);
    }
    const SwitchEval e4 = eval_switch(CellKind::kXor2, v,
                                      {3, TransistorFault::kStuckAtNType});
    if (logic_value(e4.out) == 0 && good_output(CellKind::kXor2, v) == 1)
      t4_flip = true;
  }
  EXPECT_TRUE(t3_flip);
  EXPECT_TRUE(t4_flip);
}

TEST(SwitchEval, Xor2StuckOpenIsMaskedByTransmissionPartner) {
  // Paper Sec. V-C: channel break in a DP gate never floats the output —
  // the parallel pass structure masks it.
  for (int t = 0; t < 4; ++t) {
    for (unsigned v = 0; v < 4; ++v) {
      const SwitchEval e =
          eval_switch(CellKind::kXor2, v, {t, TransistorFault::kStuckOpen});
      EXPECT_FALSE(e.floating) << "t" << t + 1 << " v=" << v;
      const int lv = logic_value(e.out);
      EXPECT_FALSE(lv >= 0 && lv != good_output(CellKind::kXor2, v))
          << "channel break must not flip XOR output";
    }
  }
}

TEST(SwitchEval, NandStuckOpenNeedsSequence) {
  // SP gates do float under stuck-open: classical two-pattern territory.
  // t3 (series pull-down, output side) open, input 11: no path.
  const SwitchEval e =
      eval_switch(CellKind::kNand2, 0b11u, {2, TransistorFault::kStuckOpen});
  EXPECT_TRUE(e.floating);
}

TEST(SwitchEval, InconsistentDualRailsCreateContention) {
  // The channel-break test mode: drive A and A-bar both high at logical
  // vector 01 -> the intact t3 conducts against the pull-up.
  const DualRailBits rails{0b11u, 0b10u};  // A=1, B=1, Abar=0... see below
  // For XOR2: true_bits bit0 = A, bit1 = B; bar_bits bit0 = Abar.
  // Here: A=1, B=1, Abar=0, Bbar=1 -> t1 (CG=Bbar=1, PG=A=1) n-conducts
  // from VDD while t3 (CG=B=1, PG=A=1) n-conducts from GND.
  const SwitchEval e = eval_switch_dual(CellKind::kXor2, rails);
  EXPECT_TRUE(e.contention);
}

TEST(SwitchEval, RejectsBadFaultIndex) {
  EXPECT_THROW(
      (void)eval_switch(CellKind::kInv, 0u,
                        {7, TransistorFault::kStuckOpen}),
      std::invalid_argument);
}

TEST(SwitchValue, Helpers) {
  EXPECT_TRUE(is_definite(SwitchValue::kStrong0));
  EXPECT_FALSE(is_definite(SwitchValue::kWeak1));
  EXPECT_EQ(logic_value(SwitchValue::kWeak1), 1);
  EXPECT_EQ(logic_value(SwitchValue::kWeak0), -1);
  EXPECT_EQ(logic_value(SwitchValue::kZ), -1);
  EXPECT_STREQ(to_string(SwitchValue::kX), "X");
}

}  // namespace
}  // namespace cpsinw::gates
