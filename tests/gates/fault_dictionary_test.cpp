#include "gates/fault_dictionary.hpp"

#include <gtest/gtest.h>

namespace cpsinw::gates {
namespace {

TEST(FaultDictionary, EnumeratesFourKindsPerTransistor) {
  const auto faults = enumerate_transistor_faults(CellKind::kXor2);
  EXPECT_EQ(faults.size(), 16u);  // 4 transistors x 4 fault kinds
  const auto inv_faults = enumerate_transistor_faults(CellKind::kInv);
  EXPECT_EQ(inv_faults.size(), 8u);
}

TEST(FaultDictionary, RowsCoverAllInputVectors) {
  const FaultAnalysis fa = analyze_fault(
      CellKind::kXor3, {0, TransistorFault::kStuckOpen});
  EXPECT_EQ(fa.rows.size(), 8u);
  for (unsigned v = 0; v < 8; ++v) EXPECT_EQ(fa.rows[v].input, v);
}

/// Paper Table III invariant: every polarity fault of the XOR2 is
/// IDDQ-detectable.
TEST(FaultDictionary, AllXor2PolarityFaultsIddqDetectable) {
  for (int t = 0; t < 4; ++t) {
    for (const TransistorFault k :
         {TransistorFault::kStuckAtNType, TransistorFault::kStuckAtPType}) {
      const FaultAnalysis fa = analyze_fault(CellKind::kXor2, {t, k});
      EXPECT_TRUE(fa.iddq_detectable)
          << "t" << t + 1 << " " << to_string(k);
      EXPECT_TRUE(fa.first_iddq_vector.has_value());
    }
  }
}

/// Paper Table III invariant: pull-up polarity faults are *not* detectable
/// at the output (the pull-down network wins every contention), pull-down
/// faults are (wrong value or degraded level).
TEST(FaultDictionary, Xor2OutputDetectabilitySplitsByNetwork) {
  for (const TransistorFault k :
       {TransistorFault::kStuckAtNType, TransistorFault::kStuckAtPType}) {
    for (const int t : {0, 1}) {  // pull-up t1, t2
      const FaultAnalysis fa = analyze_fault(CellKind::kXor2, {t, k});
      EXPECT_FALSE(fa.output_detectable)
          << "pull-up t" << t + 1 << " " << to_string(k);
    }
    for (const int t : {2, 3}) {  // pull-down t3, t4
      const FaultAnalysis fa = analyze_fault(CellKind::kXor2, {t, k});
      EXPECT_TRUE(fa.output_detectable || fa.marginal_detectable)
          << "pull-down t" << t + 1 << " " << to_string(k);
    }
  }
}

/// Each polarity fault has a unique detecting vector on the 2-input XOR
/// (paper Table III lists exactly one per transistor).
TEST(FaultDictionary, Xor2PolarityFaultsHaveSingleIddqVector) {
  for (int t = 0; t < 4; ++t) {
    for (const TransistorFault k :
         {TransistorFault::kStuckAtNType, TransistorFault::kStuckAtPType}) {
      const FaultAnalysis fa = analyze_fault(CellKind::kXor2, {t, k});
      int leak_rows = 0;
      for (const FaultRow& row : fa.rows)
        if (row.faulty.contention) ++leak_rows;
      EXPECT_EQ(leak_rows, 1) << "t" << t + 1 << " " << to_string(k);
    }
  }
}

/// Stuck-open on SP gates requires two-pattern testing (floating rows);
/// stuck-open on the XOR2 is masked combinationally (paper Sec. V-C).
TEST(FaultDictionary, StuckOpenSequenceRequirementSplitsByFamily) {
  for (int t = 0; t < 4; ++t) {
    const FaultAnalysis nand_fa = analyze_fault(
        CellKind::kNand2, {t, TransistorFault::kStuckOpen});
    EXPECT_TRUE(nand_fa.needs_sequence) << "NAND t" << t + 1;
  }
  for (int t = 0; t < 4; ++t) {
    const FaultAnalysis xor_fa = analyze_fault(
        CellKind::kXor2, {t, TransistorFault::kStuckOpen});
    EXPECT_FALSE(xor_fa.needs_sequence) << "XOR t" << t + 1;
    EXPECT_FALSE(xor_fa.output_detectable) << "XOR t" << t + 1;
    EXPECT_FALSE(xor_fa.iddq_detectable) << "XOR t" << t + 1;
  }
}

TEST(FaultDictionary, FaultyLogicEncodesZAndX) {
  const FaultAnalysis fa = analyze_fault(
      CellKind::kInv, {0, TransistorFault::kStuckOpen});
  EXPECT_EQ(fa.faulty_logic(0u), -2);  // floating
  EXPECT_EQ(fa.faulty_logic(1u), 0);   // pull-down still works
}

TEST(FaultDictionary, EquivalenceIsReflexiveAndDiscriminating) {
  const FaultAnalysis a = analyze_fault(
      CellKind::kXor2, {0, TransistorFault::kStuckOpen});
  const FaultAnalysis b = analyze_fault(
      CellKind::kXor2, {0, TransistorFault::kStuckOpen});
  const FaultAnalysis c = analyze_fault(
      CellKind::kXor2, {2, TransistorFault::kStuckAtNType});
  EXPECT_TRUE(a.equivalent_to(b));
  EXPECT_FALSE(a.equivalent_to(c));
}

TEST(FaultDictionary, AllFaultAnalysesCoversEveryFault) {
  const auto all = all_fault_analyses(CellKind::kMaj3);
  EXPECT_EQ(all.size(), 16u);
}

TEST(FaultDictionary, ClassifyRowSpectrum) {
  FaultRow row;
  row.good = 1;
  row.faulty.floating = true;
  row.faulty.out = SwitchValue::kZ;
  EXPECT_EQ(classify_row(row), RowEffect::kFloating);

  row.faulty.floating = false;
  row.faulty.out = SwitchValue::kStrong0;
  EXPECT_EQ(classify_row(row), RowEffect::kWrongValue);

  row.faulty.out = SwitchValue::kX;
  EXPECT_EQ(classify_row(row), RowEffect::kMarginal);

  row.faulty.out = SwitchValue::kStrong1;
  row.faulty.contention = true;
  EXPECT_EQ(classify_row(row), RowEffect::kIddqOnly);

  row.faulty.contention = false;
  EXPECT_EQ(classify_row(row), RowEffect::kNone);
}

}  // namespace
}  // namespace cpsinw::gates
