// Exhaustive dual-rail sweeps of the switch-level evaluator: every cell is
// evaluated under every (true_bits, bar_bits) combination — including all
// rail-inconsistent test-mode assignments — with and without faults.  The
// evaluator must never crash, and a family of invariants must hold on the
// full space.
#include <gtest/gtest.h>

#include "gates/fault_dictionary.hpp"
#include "gates/switch_level.hpp"

namespace cpsinw::gates {
namespace {

class DualRailSweep : public ::testing::TestWithParam<CellKind> {};

TEST_P(DualRailSweep, EvaluatorIsTotalOverRailSpace) {
  const CellKind kind = GetParam();
  const int n = input_count(kind);
  const unsigned combos = 1u << n;
  for (unsigned t = 0; t < combos; ++t) {
    for (unsigned b = 0; b < combos; ++b) {
      const SwitchEval e = eval_switch_dual(kind, {t, b});
      // Flags must be mutually consistent.
      EXPECT_FALSE(e.contention && e.floating);
      if (e.floating) {
        EXPECT_EQ(e.out, SwitchValue::kZ);
      }
      if (e.out == SwitchValue::kZ) {
        EXPECT_TRUE(e.floating);
      }
      EXPECT_EQ(e.contention, e.drive0 > 0.0 && e.drive1 > 0.0);
      // Strong values require a winning drive of matching strength class.
      if (e.out == SwitchValue::kStrong0) {
        EXPECT_GE(e.drive0, 4.0);
      }
      if (e.out == SwitchValue::kStrong1) {
        EXPECT_GE(e.drive1, 2.0);
      }
    }
  }
}

TEST_P(DualRailSweep, ConsistentRailsNeverLeakFaultFree) {
  const CellKind kind = GetParam();
  const int n = input_count(kind);
  for (unsigned v = 0; v < (1u << n); ++v) {
    const SwitchEval e =
        eval_switch_dual(kind, DualRailBits::consistent(v, n));
    EXPECT_FALSE(e.contention) << to_string(kind) << " v=" << v;
    EXPECT_FALSE(e.floating) << to_string(kind) << " v=" << v;
  }
}

TEST_P(DualRailSweep, FaultsNeverCrashOnInconsistentRails) {
  const CellKind kind = GetParam();
  const int n = input_count(kind);
  const unsigned combos = 1u << n;
  for (const CellFault& f : enumerate_transistor_faults(kind)) {
    for (unsigned t = 0; t < combos; ++t) {
      for (unsigned b = 0; b < combos; ++b) {
        const SwitchEval e = eval_switch_dual(kind, {t, b}, f);
        EXPECT_FALSE(e.contention && e.floating);
      }
    }
  }
}

TEST_P(DualRailSweep, StuckOpenOnlyRemovesDrive) {
  // Removing a device can only lower drives — never create new contention.
  const CellKind kind = GetParam();
  const int n = input_count(kind);
  const int nt = static_cast<int>(cell(kind).transistors.size());
  const unsigned combos = 1u << n;
  for (int t = 0; t < nt; ++t) {
    for (unsigned tv = 0; tv < combos; ++tv) {
      for (unsigned bv = 0; bv < combos; ++bv) {
        const SwitchEval base = eval_switch_dual(kind, {tv, bv});
        const SwitchEval open = eval_switch_dual(
            kind, {tv, bv}, {t, TransistorFault::kStuckOpen});
        EXPECT_LE(open.drive0, base.drive0);
        EXPECT_LE(open.drive1, base.drive1);
        if (!base.contention) {
          EXPECT_FALSE(open.contention);
        }
      }
    }
  }
}

TEST_P(DualRailSweep, StuckOnOnlyAddsDrive) {
  const CellKind kind = GetParam();
  // The monotonicity argument is per conduction network: in a multi-stage
  // cell (BUF) a stuck-on device can drive the inter-stage net into X,
  // which legitimately *disables* the second stage.
  if (cell(kind).n_internal > 0) GTEST_SKIP();
  const int n = input_count(kind);
  const int nt = static_cast<int>(cell(kind).transistors.size());
  const unsigned combos = 1u << n;
  for (int t = 0; t < nt; ++t) {
    for (unsigned tv = 0; tv < combos; ++tv) {
      for (unsigned bv = 0; bv < combos; ++bv) {
        const SwitchEval base = eval_switch_dual(kind, {tv, bv});
        const SwitchEval on = eval_switch_dual(
            kind, {tv, bv}, {t, TransistorFault::kStuckOn});
        EXPECT_GE(on.drive0, base.drive0);
        EXPECT_GE(on.drive1, base.drive1);
        if (base.floating) continue;
        EXPECT_FALSE(on.floating);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCells, DualRailSweep,
                         ::testing::ValuesIn(all_cell_kinds()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace cpsinw::gates
