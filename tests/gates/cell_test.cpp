#include "gates/cell.hpp"

#include <gtest/gtest.h>

namespace cpsinw::gates {
namespace {

TEST(Cell, LibraryContainsAllSixPaperGatesPlusBuf) {
  EXPECT_EQ(all_cell_kinds().size(), 7u);
}

TEST(Cell, InputCounts) {
  EXPECT_EQ(input_count(CellKind::kInv), 1);
  EXPECT_EQ(input_count(CellKind::kBuf), 1);
  EXPECT_EQ(input_count(CellKind::kNand2), 2);
  EXPECT_EQ(input_count(CellKind::kNor2), 2);
  EXPECT_EQ(input_count(CellKind::kXor2), 2);
  EXPECT_EQ(input_count(CellKind::kXor3), 3);
  EXPECT_EQ(input_count(CellKind::kMaj3), 3);
}

TEST(Cell, PolarityClassMatchesPaperFig2) {
  // SP family: INV, NAND, NOR; DP family: XOR2, XOR3, MAJ.
  EXPECT_FALSE(is_dynamic_polarity(CellKind::kInv));
  EXPECT_FALSE(is_dynamic_polarity(CellKind::kNand2));
  EXPECT_FALSE(is_dynamic_polarity(CellKind::kNor2));
  EXPECT_TRUE(is_dynamic_polarity(CellKind::kXor2));
  EXPECT_TRUE(is_dynamic_polarity(CellKind::kXor3));
  EXPECT_TRUE(is_dynamic_polarity(CellKind::kMaj3));
}

TEST(Cell, TruthTables) {
  EXPECT_EQ(good_output(CellKind::kInv, 0u), 1);
  EXPECT_EQ(good_output(CellKind::kInv, 1u), 0);
  EXPECT_EQ(good_output(CellKind::kNand2, 0b11u), 0);
  EXPECT_EQ(good_output(CellKind::kNand2, 0b01u), 1);
  EXPECT_EQ(good_output(CellKind::kNor2, 0b00u), 1);
  EXPECT_EQ(good_output(CellKind::kNor2, 0b10u), 0);
  EXPECT_EQ(good_output(CellKind::kXor2, 0b01u), 1);
  EXPECT_EQ(good_output(CellKind::kXor2, 0b11u), 0);
  EXPECT_EQ(good_output(CellKind::kXor3, 0b111u), 1);
  EXPECT_EQ(good_output(CellKind::kXor3, 0b011u), 0);
  EXPECT_EQ(good_output(CellKind::kMaj3, 0b011u), 1);
  EXPECT_EQ(good_output(CellKind::kMaj3, 0b100u), 0);
}

TEST(Cell, DpCellsUseFourTransistors) {
  // The compactness claim of the paper's Fig. 2: XOR2/XOR3/MAJ in 4
  // devices (vs 8+ in static CMOS).
  EXPECT_EQ(cell(CellKind::kXor2).transistors.size(), 4u);
  EXPECT_EQ(cell(CellKind::kXor3).transistors.size(), 4u);
  EXPECT_EQ(cell(CellKind::kMaj3).transistors.size(), 4u);
}

TEST(Cell, SpCellsUseRailTiedPolarityGates) {
  for (const CellKind kind :
       {CellKind::kInv, CellKind::kNand2, CellKind::kNor2}) {
    for (const TransistorSpec& t : cell(kind).transistors) {
      const bool rail_pg = t.pg.kind == Sig::Kind::kGnd ||
                           t.pg.kind == Sig::Kind::kVdd;
      EXPECT_TRUE(rail_pg) << to_string(kind) << " " << t.label;
    }
  }
}

TEST(Cell, DpCellsDrivePolarityGatesFromInputs) {
  for (const CellKind kind :
       {CellKind::kXor2, CellKind::kXor3, CellKind::kMaj3}) {
    for (const TransistorSpec& t : cell(kind).transistors) {
      const bool input_pg = t.pg.kind == Sig::Kind::kIn ||
                            t.pg.kind == Sig::Kind::kInBar;
      EXPECT_TRUE(input_pg) << to_string(kind) << " " << t.label;
    }
  }
}

TEST(Cell, TransistorLabelsFollowPaperConvention) {
  const auto& inv = cell(CellKind::kInv);
  ASSERT_EQ(inv.transistors.size(), 2u);
  EXPECT_EQ(inv.transistors[0].label, "t1");
  EXPECT_EQ(inv.transistors[1].label, "t3");
  const auto& xor2 = cell(CellKind::kXor2);
  EXPECT_EQ(xor2.transistors[0].label, "t1");
  EXPECT_EQ(xor2.transistors[3].label, "t4");
}

TEST(CellFault, NoneSemantics) {
  EXPECT_TRUE(CellFault{}.is_none());
  EXPECT_FALSE((CellFault{0, TransistorFault::kStuckOpen}).is_none());
  EXPECT_TRUE((CellFault{-1, TransistorFault::kStuckOpen}).is_none());
}

TEST(Cell, Names) {
  EXPECT_STREQ(to_string(CellKind::kXor2), "XOR2");
  EXPECT_STREQ(to_string(TransistorFault::kStuckAtNType),
               "stuck-at-n-type");
}

}  // namespace
}  // namespace cpsinw::gates
