// Cross-cell invariants of the fault dictionaries: structural properties
// that must hold for every cell and every transistor fault, tying the
// dictionary flags to the row data they summarize.
#include <gtest/gtest.h>

#include "gates/fault_dictionary.hpp"

namespace cpsinw::gates {
namespace {

class DictionaryInvariants : public ::testing::TestWithParam<CellKind> {};

TEST_P(DictionaryInvariants, FlagsSummarizeRowsExactly) {
  const CellKind kind = GetParam();
  for (const FaultAnalysis& fa : all_fault_analyses(kind)) {
    bool output = false, marginal = false, iddq = false, seq = false;
    for (const FaultRow& row : fa.rows) {
      switch (classify_row(row)) {
        case RowEffect::kWrongValue: output = true; break;
        case RowEffect::kMarginal: marginal = true; break;
        case RowEffect::kFloating: seq = true; break;
        default: break;
      }
      if (row.faulty.contention) iddq = true;
    }
    EXPECT_EQ(fa.output_detectable, output);
    EXPECT_EQ(fa.marginal_detectable, marginal);
    EXPECT_EQ(fa.iddq_detectable, iddq);
    EXPECT_EQ(fa.needs_sequence, seq);
    if (fa.first_output_vector) {
      EXPECT_EQ(classify_row(fa.rows[*fa.first_output_vector]),
                RowEffect::kWrongValue);
    }
    if (fa.first_iddq_vector) {
      EXPECT_TRUE(fa.rows[*fa.first_iddq_vector].faulty.contention);
    }
  }
}

TEST_P(DictionaryInvariants, RowsCarryTheGoodMachine) {
  const CellKind kind = GetParam();
  for (const FaultAnalysis& fa : all_fault_analyses(kind)) {
    ASSERT_EQ(fa.rows.size(), 1u << input_count(kind));
    for (unsigned v = 0; v < fa.rows.size(); ++v) {
      EXPECT_EQ(fa.rows[v].input, v);
      EXPECT_EQ(fa.rows[v].good, good_output(kind, v));
    }
  }
}

TEST_P(DictionaryInvariants, BenignImpliesNoFlags) {
  const CellKind kind = GetParam();
  for (const FaultAnalysis& fa : all_fault_analyses(kind)) {
    if (!fa.is_benign()) continue;
    EXPECT_FALSE(fa.output_detectable);
    EXPECT_FALSE(fa.marginal_detectable);
    EXPECT_FALSE(fa.iddq_detectable);
    EXPECT_FALSE(fa.needs_sequence);
  }
}

TEST_P(DictionaryInvariants, EquivalenceIsSymmetricOnFullEnumeration) {
  const CellKind kind = GetParam();
  const auto all = all_fault_analyses(kind);
  for (std::size_t i = 0; i < all.size(); ++i)
    for (std::size_t j = 0; j < all.size(); ++j)
      EXPECT_EQ(all[i].equivalent_to(all[j]), all[j].equivalent_to(all[i]));
}

TEST_P(DictionaryInvariants, StuckOpenNeverCausesContention) {
  // A missing device can never create a crowbar path in a single cell.
  const CellKind kind = GetParam();
  const int nt = static_cast<int>(cell(kind).transistors.size());
  for (int t = 0; t < nt; ++t) {
    const FaultAnalysis fa =
        analyze_fault(kind, {t, TransistorFault::kStuckOpen});
    EXPECT_FALSE(fa.iddq_detectable)
        << to_string(kind) << " t" << t + 1;
  }
}

TEST_P(DictionaryInvariants, PolarityFaultsAreIddqOrBenign) {
  // The paper's headline claim generalized to every cell in the library:
  // a polarity bridge either produces a contention vector (IDDQ test) or a
  // hard output error somewhere — unless it is the benign bridge onto the
  // rail the PG already uses.
  const CellKind kind = GetParam();
  const int nt = static_cast<int>(cell(kind).transistors.size());
  for (int t = 0; t < nt; ++t) {
    for (const TransistorFault k :
         {TransistorFault::kStuckAtNType, TransistorFault::kStuckAtPType}) {
      const FaultAnalysis fa = analyze_fault(kind, {t, k});
      EXPECT_TRUE(fa.is_benign() || fa.iddq_detectable ||
                  fa.output_detectable)
          << to_string(kind) << " t" << t + 1 << " " << to_string(k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCells, DictionaryInvariants,
                         ::testing::ValuesIn(all_cell_kinds()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace cpsinw::gates
