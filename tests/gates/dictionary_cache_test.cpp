#include "gates/dictionary_cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace cpsinw::gates {
namespace {

TEST(DictionaryCache, LookupMatchesAnalyzeFault) {
  DictionaryCache cache;
  for (const CellKind kind : all_cell_kinds()) {
    for (const CellFault& cf : enumerate_transistor_faults(kind)) {
      const FaultAnalysis& cached = cache.lookup(kind, cf);
      const FaultAnalysis fresh = analyze_fault(kind, cf);
      ASSERT_EQ(cached.rows.size(), fresh.rows.size());
      EXPECT_TRUE(cached.equivalent_to(fresh));
      EXPECT_EQ(cached.output_detectable, fresh.output_detectable);
      EXPECT_EQ(cached.marginal_detectable, fresh.marginal_detectable);
      EXPECT_EQ(cached.iddq_detectable, fresh.iddq_detectable);
      EXPECT_EQ(cached.needs_sequence, fresh.needs_sequence);
      EXPECT_EQ(cached.first_output_vector, fresh.first_output_vector);
      EXPECT_EQ(cached.first_iddq_vector, fresh.first_iddq_vector);
      for (std::size_t r = 0; r < fresh.rows.size(); ++r)
        EXPECT_EQ(cached.faulty_logic(static_cast<unsigned>(r)),
                  fresh.faulty_logic(static_cast<unsigned>(r)));
    }
  }
}

TEST(DictionaryCache, MemoizesAndHandsOutStableReferences) {
  DictionaryCache cache;
  const CellFault cf{1, TransistorFault::kStuckAtNType};
  const FaultAnalysis& first = cache.lookup(CellKind::kXor2, cf);
  EXPECT_EQ(cache.size(), 1u);

  // Filling the cache with every other dictionary must not move `first`.
  for (const CellKind kind : all_cell_kinds())
    for (const CellFault& f : enumerate_transistor_faults(kind))
      (void)cache.lookup(kind, f);
  const std::size_t full = cache.size();
  EXPECT_GT(full, 1u);

  const FaultAnalysis& again = cache.lookup(CellKind::kXor2, cf);
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(cache.size(), full);  // no re-derivation
}

TEST(DictionaryCache, ConcurrentLookupsAgree) {
  DictionaryCache cache;
  constexpr int kThreads = 8;
  std::vector<std::vector<const FaultAnalysis*>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &seen, t] {
      for (const CellKind kind : all_cell_kinds())
        for (const CellFault& f : enumerate_transistor_faults(kind))
          seen[static_cast<std::size_t>(t)].push_back(&cache.lookup(kind, f));
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[static_cast<std::size_t>(t)]);
}

TEST(DictionaryCache, GlobalInstanceIsShared) {
  EXPECT_EQ(&DictionaryCache::global(), &DictionaryCache::global());
  const CellFault cf{0, TransistorFault::kStuckOpen};
  EXPECT_EQ(&DictionaryCache::global().lookup(CellKind::kInv, cf),
            &DictionaryCache::global().lookup(CellKind::kInv, cf));
}

}  // namespace
}  // namespace cpsinw::gates
