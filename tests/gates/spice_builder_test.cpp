#include "gates/spice_builder.hpp"

#include <gtest/gtest.h>

#include "spice/dcop.hpp"
#include "spice/measure.hpp"
#include "spice/transient.hpp"

namespace cpsinw::gates {
namespace {

constexpr double kVdd = 1.2;

/// Property sweep: every cell's SPICE elaboration reproduces its truth
/// table at DC, for every input vector.  This validates the transistor
/// topologies of Fig. 2 against the analog device model.
class CellSpiceDc : public ::testing::TestWithParam<CellKind> {};

TEST_P(CellSpiceDc, TruthTableAtDc) {
  const CellKind kind = GetParam();
  const unsigned combos = 1u << input_count(kind);
  for (unsigned v = 0; v < combos; ++v) {
    CellCircuitSpec spec;
    spec.kind = kind;
    spec.inputs = dc_inputs(kind, v, kVdd);
    CellCircuit cc = build_cell_circuit(spec);
    const spice::DcResult op = spice::dc_operating_point(cc.ckt);
    ASSERT_TRUE(op.converged) << to_string(kind) << " v=" << v;
    const double vout = op.voltage(cc.out);
    if (good_output(kind, v) == 1) {
      EXPECT_GT(vout, 0.75) << to_string(kind) << " v=" << v;
    } else {
      EXPECT_LT(vout, 0.45) << to_string(kind) << " v=" << v;
    }
  }
}

TEST_P(CellSpiceDc, QuiescentLeakageIsNanoampScale) {
  const CellKind kind = GetParam();
  const unsigned combos = 1u << input_count(kind);
  for (unsigned v = 0; v < combos; ++v) {
    CellCircuitSpec spec;
    spec.kind = kind;
    spec.inputs = dc_inputs(kind, v, kVdd);
    CellCircuit cc = build_cell_circuit(spec);
    const spice::DcResult op = spice::dc_operating_point(cc.ckt);
    ASSERT_TRUE(op.converged);
    EXPECT_LT(spice::iddq(cc.ckt, op, CellCircuit::vdd_source()), 50e-9)
        << to_string(kind) << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCells, CellSpiceDc,
                         ::testing::ValuesIn(all_cell_kinds()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(SpiceBuilder, PolarityBridgeRaisesIddqByOrders) {
  // Stuck-at-n-type on XOR2 t1 at its excitation vector: the paper reports
  // a >1e6 leakage increase.
  CellCircuitSpec ff;
  ff.kind = CellKind::kXor2;
  ff.inputs = dc_inputs(CellKind::kXor2, 0b00u, kVdd);
  CellCircuit cc_ff = build_cell_circuit(ff);
  const spice::DcResult op_ff = spice::dc_operating_point(cc_ff.ckt);
  ASSERT_TRUE(op_ff.converged);
  const double i_ff = spice::iddq(cc_ff.ckt, op_ff, CellCircuit::vdd_source());

  CellCircuitSpec faulty = ff;
  faulty.pg_forces.push_back({0, kVdd});  // t1 stuck-at-n-type
  CellCircuit cc_f = build_cell_circuit(faulty);
  const spice::DcResult op_f = spice::dc_operating_point(cc_f.ckt);
  ASSERT_TRUE(op_f.converged);
  const double i_f = spice::iddq(cc_f.ckt, op_f, CellCircuit::vdd_source());

  EXPECT_GT(i_f / i_ff, 1e4);
  EXPECT_GT(i_f, 1e-6);
}

TEST(SpiceBuilder, FloatingPgKillsConductionBeyondThreshold) {
  // INV t1 (p pull-up) with PGS cut held at V_cut = 0.9: beyond the paper's
  // 0.56 V threshold the pull-up is a stuck-open — the low-to-high output
  // transition cannot complete within a normal timing window (statically
  // the node would still drift high through the picoamp residue, which is
  // exactly why SOF needs transition testing).
  CellCircuitSpec spec;
  spec.kind = CellKind::kInv;
  spec.inputs = {spice::Waveform::step(kVdd, 0.0, 0.2e-9, 10e-12)};
  spec.pg_floats.push_back({0, PgTerminal::kPgs, 0.9});
  CellCircuit cc = build_cell_circuit(spec);
  spice::TranOptions opt;
  opt.t_stop = 3e-9;
  opt.dt = 2e-12;
  const spice::TranResult tr = spice::transient(cc.ckt, opt);
  ASSERT_TRUE(tr.converged);
  EXPECT_LT(tr.final_voltage(cc.out), 0.6);

  // Same stimulus, fault-free: the transition completes comfortably.
  CellCircuitSpec ff = spec;
  ff.pg_floats.clear();
  CellCircuit cc_ff = build_cell_circuit(ff);
  const spice::TranResult tr_ff = spice::transient(cc_ff.ckt, opt);
  ASSERT_TRUE(tr_ff.converged);
  EXPECT_GT(tr_ff.final_voltage(cc_ff.out), 0.9 * kVdd);
}

TEST(SpiceBuilder, DeviceDefectInjection) {
  // Full nanowire break on INV t1: output stuck low at in = 0 (DC; the
  // transient retention is what two-pattern tests exploit).
  CellCircuitSpec spec;
  spec.kind = CellKind::kInv;
  spec.inputs = {spice::Waveform::dc(0.0)};
  spec.device_defects.push_back(
      {0, device::make_break_state(1.0)});
  CellCircuit cc = build_cell_circuit(spec);
  const spice::DcResult op = spice::dc_operating_point(cc.ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_LT(op.voltage(cc.out), 0.4);
}

TEST(SpiceBuilder, DualRailOverrideIsHonoured) {
  // Drive A and A-bar inconsistently (both high): XOR2 exposes contention.
  CellCircuitSpec spec;
  spec.kind = CellKind::kXor2;
  spec.inputs = {spice::Waveform::dc(kVdd), spice::Waveform::dc(kVdd)};
  spec.input_bars = {spice::Waveform::dc(kVdd),   // Abar forced high too
                     std::nullopt};               // Bbar = complement
  CellCircuit cc = build_cell_circuit(spec);
  const spice::DcResult op = spice::dc_operating_point(cc.ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_GT(spice::iddq(cc.ckt, op, CellCircuit::vdd_source()), 1e-6);
}

TEST(SpiceBuilder, ValidatesSpec) {
  CellCircuitSpec spec;
  spec.kind = CellKind::kNand2;
  spec.inputs = {spice::Waveform::dc(0.0)};  // arity mismatch
  EXPECT_THROW((void)build_cell_circuit(spec), std::invalid_argument);

  spec.inputs = dc_inputs(CellKind::kNand2, 0u, kVdd);
  spec.pg_forces.push_back({9, 0.0});
  EXPECT_THROW((void)build_cell_circuit(spec), std::invalid_argument);
}

TEST(SpiceBuilder, DcInputsEncodeBits) {
  const auto ws = dc_inputs(CellKind::kXor3, 0b101u, kVdd);
  ASSERT_EQ(ws.size(), 3u);
  EXPECT_DOUBLE_EQ(ws[0].at(0.0), kVdd);
  EXPECT_DOUBLE_EQ(ws[1].at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ws[2].at(0.0), kVdd);
}

}  // namespace
}  // namespace cpsinw::gates
