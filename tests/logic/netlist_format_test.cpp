#include "logic/netlist_format.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "logic/benchmarks.hpp"
#include "logic/logic_sim.hpp"

namespace cpsinw::logic {
namespace {

TEST(NetlistFormat, RoundTripPreservesBehaviour) {
  const Circuit original = full_adder();
  const std::string text = to_netlist_string(original);
  std::istringstream is(text);
  const Circuit parsed = read_netlist(is);

  ASSERT_EQ(parsed.primary_inputs().size(), original.primary_inputs().size());
  ASSERT_EQ(parsed.primary_outputs().size(),
            original.primary_outputs().size());
  const Simulator sim_a(original);
  const Simulator sim_b(parsed);
  for (unsigned v = 0; v < 8; ++v) {
    Pattern p;
    for (int i = 0; i < 3; ++i) p.push_back(from_bool((v >> i) & 1u));
    const SimResult ra = sim_a.simulate(p);
    const SimResult rb = sim_b.simulate(p);
    for (std::size_t k = 0; k < original.primary_outputs().size(); ++k)
      EXPECT_EQ(ra.value(original.primary_outputs()[k]),
                rb.value(parsed.primary_outputs()[k]));
  }
}

TEST(NetlistFormat, ParsesHandWrittenNetlist) {
  const std::string text = R"(# demo
input a b
output y
gate XOR2 y = a b
)";
  std::istringstream is(text);
  const Circuit ckt = read_netlist(is);
  EXPECT_EQ(ckt.gate_count(), 1);
  const Simulator sim(ckt);
  EXPECT_EQ(sim.simulate({LogicV::k1, LogicV::k0}).value(ckt.find_net("y")),
            LogicV::k1);
}

TEST(NetlistFormat, ParsesConstants) {
  const std::string text = R"(
input a
output y
const1 one
gate NAND2 y = a one
)";
  std::istringstream is(text);
  const Circuit ckt = read_netlist(is);
  const Simulator sim(ckt);
  EXPECT_EQ(sim.simulate({LogicV::k1}).value(ckt.find_net("y")), LogicV::k0);
  EXPECT_EQ(sim.simulate({LogicV::k0}).value(ckt.find_net("y")), LogicV::k1);
}

TEST(NetlistFormat, DiagnosesErrorsWithLineNumbers) {
  const auto expect_error = [](const std::string& text,
                               const std::string& needle) {
    std::istringstream is(text);
    try {
      (void)read_netlist(is);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("gate FROB y = a\n", "unknown cell");
  expect_error("input a\ngate XOR2 y = a\n", "wrong input count");
  expect_error("frobnicate\n", "unknown directive");
  expect_error("input a\noutput zzz\n", "never defined");
  expect_error("input a a\n", "duplicate net");
}

}  // namespace
}  // namespace cpsinw::logic
