// Coverage for the foreign-netlist front end: `.bench` and
// structural-Verilog parsing, line/column-numbered error paths, the
// foreign-gate cell mapping, cross-format round trips, and the committed
// + generated fixtures under tests/data/.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "logic/bench_format.hpp"
#include "logic/benchmarks.hpp"
#include "logic/cell_mapping.hpp"
#include "logic/logic_sim.hpp"
#include "logic/net_registry.hpp"
#include "logic/netlist_format.hpp"
#include "logic/netlist_ingest.hpp"
#include "logic/verilog_format.hpp"
#include "util/rng.hpp"

namespace cpsinw::logic {
namespace {

/// Drives both circuits with the same pattern and compares every primary
/// output (index-aligned: all our readers/writers preserve PI/PO order).
void expect_equivalent(const Circuit& a, const Circuit& b,
                       std::uint64_t seed, int patterns) {
  ASSERT_EQ(a.primary_inputs().size(), b.primary_inputs().size());
  ASSERT_EQ(a.primary_outputs().size(), b.primary_outputs().size());
  const Simulator sim_a(a);
  const Simulator sim_b(b);
  util::SplitMix64 rng(seed);
  for (int t = 0; t < patterns; ++t) {
    Pattern p;
    for (std::size_t i = 0; i < a.primary_inputs().size(); ++i)
      p.push_back(from_bool(rng.below(2) == 1));
    const SimResult ra = sim_a.simulate(p);
    const SimResult rb = sim_b.simulate(p);
    for (std::size_t k = 0; k < a.primary_outputs().size(); ++k)
      EXPECT_EQ(ra.value(a.primary_outputs()[k]),
                rb.value(b.primary_outputs()[k]))
          << "pattern " << t << ", output " << k;
  }
}

// ------------------------------------------------------------- .bench

TEST(BenchFormat, ParsesC17) {
  const std::string text = R"(# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
  const Circuit parsed = read_bench_string(text);
  EXPECT_EQ(parsed.gate_count(), 6);
  EXPECT_EQ(parsed.primary_inputs().size(), 5u);
  EXPECT_EQ(parsed.primary_outputs().size(), 2u);
  expect_equivalent(parsed, c17(), 7, 64);
}

TEST(BenchFormat, DecomposesForeignGatesFaithfully) {
  // 4-input versions of every foreign gate, checked against the packed
  // cell evaluator through a hand-rolled truth table.
  const std::string text = R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y_and)
OUTPUT(y_nand)
OUTPUT(y_or)
OUTPUT(y_nor)
OUTPUT(y_xor)
OUTPUT(y_xnor)
y_and = AND(a, b, c, d)
y_nand = NAND(a, b, c, d)
y_or = OR(a, b, c, d)
y_nor = NOR(a, b, c, d)
y_xor = XOR(a, b, c, d)
y_xnor = XNOR(a, b, c, d)
)";
  const Circuit ckt = read_bench_string(text);
  const Simulator sim(ckt);
  for (unsigned v = 0; v < 16; ++v) {
    Pattern p;
    for (int i = 0; i < 4; ++i) p.push_back(from_bool((v >> i) & 1u));
    const SimResult r = sim.simulate(p);
    const bool all = v == 15;
    const bool any = v != 0;
    const bool parity = __builtin_popcount(v) % 2 == 1;
    EXPECT_EQ(r.value(ckt.find_net("y_and")), from_bool(all)) << v;
    EXPECT_EQ(r.value(ckt.find_net("y_nand")), from_bool(!all)) << v;
    EXPECT_EQ(r.value(ckt.find_net("y_or")), from_bool(any)) << v;
    EXPECT_EQ(r.value(ckt.find_net("y_nor")), from_bool(!any)) << v;
    EXPECT_EQ(r.value(ckt.find_net("y_xor")), from_bool(parity)) << v;
    EXPECT_EQ(r.value(ckt.find_net("y_xnor")), from_bool(!parity)) << v;
  }
}

TEST(BenchFormat, ErrorPathsCarryLineAndColumn) {
  const auto expect_error = [](const std::string& text,
                               const std::string& needle, int line) {
    try {
      (void)read_bench_string(text);
      FAIL() << "expected parse error for: " << text;
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
      EXPECT_EQ(e.line(), line) << e.what();
      EXPECT_NE(std::string(e.what()).find("bench line "),
                std::string::npos)
          << e.what();
    }
  };
  // Duplicate driver cites both statements.
  expect_error("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n",
               "already has a driver (line 3)", 4);
  // Driving a declared input.
  expect_error("INPUT(a)\nINPUT(b)\nOUTPUT(b)\nb = NOT(a)\n",
               "declared input", 4);
  // Sequential elements are rejected, not mis-mapped.
  expect_error("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n", "sequential element",
               3);
  // Unknown gate vocabulary.
  expect_error("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n", "unsupported gate",
               3);
  // Arity violations on the 1-input gates.
  expect_error("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n",
               "takes 1 input", 4);
  expect_error("INPUT(a)\nOUTPUT(y)\ny = AND()\n", "no inputs", 3);
  // Truncated statement (file ends mid-argument-list).
  expect_error("INPUT(a)\nOUTPUT(y)\ny = AND(a,", "unexpected end of line",
               3);
  // Undriven net, reported at its first use.
  expect_error("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n", "never driven",
               3);
  // Undefined output.
  expect_error("INPUT(a)\nOUTPUT(nowhere)\n", "never driven", 2);
  // '$' is reserved for synthesized decomposition nets.
  expect_error("INPUT(a$0)\n", "reserved for synthesized nets", 1);
}

TEST(BenchFormat, ColumnsPointAtTheOffendingToken) {
  try {
    (void)read_bench_string("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n");
    FAIL() << "expected parse error";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_EQ(e.column(), 5);  // "y = FROB(" — FROB starts at column 5
  }
}

TEST(BenchFormat, WriterExpandsMaj3AndReadsBack) {
  const Circuit original = full_adder();  // XOR3 + MAJ3
  const std::string text = to_bench_string(original);
  // MAJ3 is not .bench vocabulary: the writer must emit AND/OR instead.
  EXPECT_EQ(text.find("MAJ"), std::string::npos) << text;
  const Circuit parsed = read_bench_string(text);
  expect_equivalent(original, parsed, 11, 32);
}

TEST(BenchFormat, WriterManglesForeignNamesUniquely) {
  // A parsed foreign circuit carries synthesized "<out>$k" nets; writing
  // it back must mangle them into the .bench charset without collisions.
  const Circuit parsed = read_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = AND(a, b, c)\n");
  const std::string text = to_bench_string(parsed);
  EXPECT_EQ(text.find('$'), std::string::npos) << text;
  expect_equivalent(parsed, read_bench_string(text), 13, 16);
}

// ------------------------------------------------------ cell mapping

TEST(CellMapping, TableCoversEveryForeignGate) {
  const auto& table = cell_mapping_table();
  EXPECT_EQ(table.size(), 8u);
  for (const ForeignGate g :
       {ForeignGate::kAnd, ForeignGate::kNand, ForeignGate::kOr,
        ForeignGate::kNor, ForeignGate::kXor, ForeignGate::kXnor,
        ForeignGate::kNot, ForeignGate::kBuf}) {
    bool found = false;
    for (const CellMappingRow& row : table)
      if (std::string(row.foreign).find(to_string(g)) != std::string::npos)
        found = true;
    EXPECT_TRUE(found) << to_string(g);
  }
}

TEST(CellMapping, BalancedDecompositionDepth) {
  // 32-input AND: balanced halving must give log2 depth (5 NAND2/INV
  // levels = 10 gate levels), not a 31-level chain.
  std::ostringstream text;
  text << "OUTPUT(y)\n";
  for (int i = 0; i < 32; ++i) text << "INPUT(i" << i << ")\n";
  text << "y = AND(";
  for (int i = 0; i < 32; ++i) text << (i != 0 ? ", " : "") << "i" << i;
  text << ")\n";
  const Circuit ckt = read_bench_string(text.str());
  EXPECT_EQ(circuit_stats(ckt).levels, 10);
}

// ------------------------------------------------------------ verilog

TEST(VerilogFormat, ParsesFullAdderSubset) {
  const std::string text = R"(// adder
module full_adder (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  xor (sum, a, b, cin);
  MAJ3 u_carry (.Y(cout), .A(a), .B(b), .C(cin));
endmodule
)";
  const Circuit parsed = read_verilog_string(text);
  EXPECT_EQ(parsed.gate_count(), 2);
  expect_equivalent(parsed, full_adder(), 17, 8);
}

TEST(VerilogFormat, AcceptsCommentsEscapesAndForwardRefs) {
  const std::string text =
      "/* block\n   comment */\n"
      "module m (a, y);\n"
      "  input a;\n"
      "  output y;\n"
      "  wire \\t$mp ;  // escaped identifier\n"
      "  not n1 (y, \\t$mp );\n"
      "  buf (\\t$mp , a);  // driver appears after the use\n"
      "endmodule\n";
  const Circuit ckt = read_verilog_string(text);
  EXPECT_EQ(ckt.gate_count(), 2);
  const Simulator sim(ckt);
  EXPECT_EQ(sim.simulate({LogicV::k1}).value(ckt.find_net("y")),
            LogicV::k0);
}

TEST(VerilogFormat, ErrorPathsCarryLineAndColumn) {
  const auto expect_error = [](const std::string& text,
                               const std::string& needle, int line) {
    try {
      (void)read_verilog_string(text);
      FAIL() << "expected parse error for: " << text;
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
      EXPECT_EQ(e.line(), line) << e.what();
      EXPECT_NE(std::string(e.what()).find("verilog line "),
                std::string::npos)
          << e.what();
    }
  };
  const std::string head =
      "module m (a, b, y);\n  input a, b;\n  output y;\n";
  // Undeclared net.
  expect_error(head + "  nand (y, a, ghost);\nendmodule\n",
               "undeclared net 'ghost'", 4);
  // Duplicate driver cites the earlier statement.
  expect_error(head + "  not (y, a);\n  not (y, b);\nendmodule\n",
               "already has a driver (line 4)", 5);
  // Behavioral constructs are rejected by name.
  expect_error(head + "  assign y = a;\nendmodule\n",
               "'assign' is not supported", 4);
  expect_error(head + "  reg q;\nendmodule\n", "'reg' declarations", 4);
  // Vectors are rejected at the lexer with a targeted message.
  expect_error("module m (a, y);\n  input [3:0] a;\n", "vector", 2);
  // ANSI-style headers are rejected.
  expect_error("module m (input a, output y);\nendmodule\n",
               "ANSI-style", 1);
  // Named-cell arity and port checks.
  expect_error(head + "  NAND2 u (.Y(y), .A(a));\nendmodule\n",
               "port 'B' is not connected", 4);
  expect_error(head + "  NAND2 u (.Y(y), .A(a), .Q(b));\nendmodule\n",
               "has no port 'Q'", 4);
  expect_error(head + "  NAND2 u (y, a);\nendmodule\n", "takes 3 terminals",
               4);
  // Unknown cells and mis-cased primitives.
  expect_error(head + "  FROB u (y, a, b);\nendmodule\n",
               "unknown cell 'FROB'", 4);
  expect_error(head + "  NAND u (y, a, b);\nendmodule\n",
               "lowercase", 4);
  // Truncated file.
  expect_error(head + "  nand (y, a, b);\n",
               "unexpected end of file, expected 'endmodule'", 5);
  expect_error("module m (a, y);\n  /* unterminated\n", "unterminated", 2);
}

TEST(VerilogFormat, WriterRoundTripsExactly) {
  // Verilog keeps MAJ3/XOR3 structurally exact: same gate count back.
  const Circuit original = alu_slice();
  const std::string text = to_verilog_string(original, "alu_slice");
  const Circuit parsed = read_verilog_string(text);
  EXPECT_EQ(parsed.gate_count(), original.gate_count());
  expect_equivalent(original, parsed, 19, 64);
}

TEST(VerilogFormat, WriterEscapesForeignNames) {
  // Synthesized "<out>$k" nets from a .bench decomposition must survive
  // a Verilog round trip via escaped identifiers.
  const Circuit parsed = read_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = XNOR(a, b, c)\n");
  const std::string text = to_verilog_string(parsed);
  EXPECT_NE(text.find('\\'), std::string::npos) << text;
  expect_equivalent(parsed, read_verilog_string(text), 23, 16);
}

// --------------------------------------------------------- round trips

TEST(NetlistIngest, BenchToCircuitToCpnToCircuit) {
  // The satellite contract: .bench -> Circuit -> .cpn -> Circuit keeps
  // behavior; synthesized '$' nets are legal .cpn tokens.
  const std::string bench = R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
OUTPUT(z)
t0 = AND(a, b, c)
t1 = XNOR(c, d)
y = OR(t0, t1)
z = NAND(t0, t1, d)
)";
  const Circuit first = read_bench_string(bench);
  const std::string cpn = to_netlist_string(first);
  std::istringstream is(cpn);
  const Circuit second = read_netlist(is);
  EXPECT_EQ(first.gate_count(), second.gate_count());
  expect_equivalent(first, second, 29, 64);
}

TEST(NetlistIngest, FormatFromPathDispatch) {
  EXPECT_EQ(format_from_path("x/y/c17.bench"), NetlistFormat::kBench);
  EXPECT_EQ(format_from_path("a.CPN"), NetlistFormat::kCpn);
  EXPECT_EQ(format_from_path("top.v"), NetlistFormat::kVerilog);
  EXPECT_EQ(format_from_path("top.sv"), NetlistFormat::kVerilog);
  EXPECT_THROW((void)format_from_path("top.vhdl"), std::invalid_argument);
  EXPECT_THROW((void)format_from_path("noext"), std::invalid_argument);
}

TEST(NetlistIngest, StatsJsonShape) {
  const CircuitStats stats = circuit_stats(c17());
  EXPECT_EQ(stats.gates, 6);
  EXPECT_EQ(stats.primary_inputs, 5);
  EXPECT_EQ(stats.primary_outputs, 2);
  EXPECT_EQ(stats.levels, 3);
  const std::string json = stats_json(stats);
  EXPECT_NE(json.find("\"gates\":6"), std::string::npos) << json;
  EXPECT_NE(json.find("\"NAND2\":6"), std::string::npos) << json;
}

// ------------------------------------------------------------ fixtures

TEST(NetlistIngest, CommittedFixturesParse) {
  const std::string dir = CPSINW_TEST_DATA_DIR;
  const Circuit c17_fixture = load_circuit_file(dir + "/c17.bench");
  expect_equivalent(c17_fixture, c17(), 31, 64);

  const Circuit fa_v = load_circuit_file(dir + "/full_adder.v");
  expect_equivalent(fa_v, full_adder(), 37, 8);

  const Circuit fa_cpn = load_circuit_file(dir + "/full_adder.cpn");
  expect_equivalent(fa_cpn, full_adder(), 41, 8);

  const Circuit voter = load_circuit_file(dir + "/voter_cells.v");
  EXPECT_EQ(voter.gate_count(), 4);
  expect_equivalent(voter, tmr_voter(2), 43, 64);
}

TEST(NetlistIngest, GeneratedLargeFixtureMatchesGenerator) {
  // The build emits alu_array_64.bench via the CLI; parsing it back must
  // agree with the in-process generator and clear the 1000-gate floor.
  const std::string path =
      std::string(CPSINW_GEN_DATA_DIR) + "/alu_array_64.bench";
  const Circuit parsed = load_circuit_file(path);
  EXPECT_GE(parsed.gate_count(), 1000);
  expect_equivalent(parsed, alu_array(64), 47, 16);
}

}  // namespace
}  // namespace cpsinw::logic
