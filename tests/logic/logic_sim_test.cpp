#include "logic/logic_sim.hpp"

#include <gtest/gtest.h>

#include "logic/benchmarks.hpp"

namespace cpsinw::logic {
namespace {

using gates::CellKind;

Pattern bits_to_pattern(unsigned bits, int n) {
  Pattern p(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    p[static_cast<std::size_t>(i)] = from_bool((bits >> i) & 1u);
  return p;
}

TEST(Simulator, FullAdderTruthTableExhaustive) {
  const Circuit ckt = full_adder();
  const Simulator sim(ckt);
  for (unsigned v = 0; v < 8; ++v) {
    const SimResult r = sim.simulate(bits_to_pattern(v, 3));
    const unsigned a = v & 1u, b = (v >> 1) & 1u, cin = (v >> 2) & 1u;
    const unsigned total = a + b + cin;
    EXPECT_EQ(r.value(ckt.find_net("sum")), from_bool(total & 1u))
        << "v=" << v;
    EXPECT_EQ(r.value(ckt.find_net("cout")), from_bool(total >= 2))
        << "v=" << v;
  }
}

TEST(Simulator, RippleAdderAddsExhaustively) {
  const int bits = 3;
  const Circuit ckt = ripple_adder(bits);
  const Simulator sim(ckt);
  for (unsigned a = 0; a < 8u; ++a) {
    for (unsigned b = 0; b < 8u; ++b) {
      for (unsigned cin = 0; cin < 2u; ++cin) {
        Pattern p;
        for (int i = 0; i < bits; ++i) p.push_back(from_bool((a >> i) & 1u));
        for (int i = 0; i < bits; ++i) p.push_back(from_bool((b >> i) & 1u));
        p.push_back(from_bool(cin));
        const SimResult r = sim.simulate(p);
        const unsigned expected = a + b + cin;
        unsigned got = 0;
        for (int i = 0; i < bits; ++i)
          if (r.value(ckt.find_net("s" + std::to_string(i))) == LogicV::k1)
            got |= 1u << i;
        if (r.value(ckt.find_net("c" + std::to_string(bits - 1))) ==
            LogicV::k1)
          got |= 1u << bits;
        EXPECT_EQ(got, expected) << "a=" << a << " b=" << b << " c=" << cin;
      }
    }
  }
}

TEST(Simulator, MultiplierMultipliesExhaustively) {
  const Circuit ckt = multiplier_2x2();
  const Simulator sim(ckt);
  for (unsigned a = 0; a < 4u; ++a) {
    for (unsigned b = 0; b < 4u; ++b) {
      Pattern p = {from_bool(a & 1u), from_bool((a >> 1) & 1u),
                   from_bool(b & 1u), from_bool((b >> 1) & 1u)};
      const SimResult r = sim.simulate(p);
      unsigned got = 0;
      if (r.value(ckt.find_net("p00")) == LogicV::k1) got |= 1u;
      if (r.value(ckt.find_net("m1")) == LogicV::k1) got |= 2u;
      if (r.value(ckt.find_net("m2")) == LogicV::k1) got |= 4u;
      if (r.value(ckt.find_net("ha2_and")) == LogicV::k1) got |= 8u;
      EXPECT_EQ(got, a * b) << "a=" << a << " b=" << b;
    }
  }
}

TEST(Simulator, AluSliceSelectsOperations) {
  const Circuit ckt = alu_slice();
  const Simulator sim(ckt);
  // PI order: a, b, cin, s0, s1.
  const auto run = [&](unsigned a, unsigned b, unsigned cin, unsigned s0,
                       unsigned s1) {
    const SimResult r = sim.simulate({from_bool(a), from_bool(b),
                                      from_bool(cin), from_bool(s0),
                                      from_bool(s1)});
    return r.value(ckt.find_net("out"));
  };
  for (unsigned a = 0; a < 2; ++a) {
    for (unsigned b = 0; b < 2; ++b) {
      EXPECT_EQ(run(a, b, 0, 0, 0), from_bool(a & b));
      EXPECT_EQ(run(a, b, 0, 1, 0), from_bool(a | b));
      EXPECT_EQ(run(a, b, 0, 0, 1), from_bool(a ^ b));
      for (unsigned cin = 0; cin < 2; ++cin)
        EXPECT_EQ(run(a, b, cin, 1, 1), from_bool((a + b + cin) & 1u));
    }
  }
}

TEST(Simulator, XPropagatesConservativelyButPrecisely) {
  Circuit c;
  const NetId a = c.add_primary_input("a");
  const NetId b = c.add_primary_input("b");
  const NetId y = c.add_net("y");
  c.add_gate(CellKind::kNand2, {a, b}, y);
  c.mark_primary_output(y);
  c.finalize();
  const Simulator sim(c);
  // NAND(0, X) = 1 — definite despite the X.
  EXPECT_EQ(sim.simulate({LogicV::k0, LogicV::kX}).value(y), LogicV::k1);
  // NAND(1, X) = X.
  EXPECT_EQ(sim.simulate({LogicV::k1, LogicV::kX}).value(y), LogicV::kX);
}

TEST(Simulator, FaultySimulationUsesDictionary) {
  // XOR2 with t3 stuck-at-n-type: output flips at the excitation vector
  // and the IDDQ flag raises.
  Circuit c;
  const NetId a = c.add_primary_input("a");
  const NetId b = c.add_primary_input("b");
  const NetId y = c.add_net("y");
  const int g = c.add_gate(CellKind::kXor2, {a, b}, y);
  c.mark_primary_output(y);
  c.finalize();
  const Simulator sim(c);
  const GateFault fault{g, {2, gates::TransistorFault::kStuckAtNType}};

  bool flipped = false;
  bool iddq = false;
  for (unsigned v = 0; v < 4; ++v) {
    const SimResult good = sim.simulate(bits_to_pattern(v, 2));
    const SimResult bad = sim.simulate_faulty(bits_to_pattern(v, 2), fault);
    if (bad.iddq_flag) iddq = true;
    if (is_binary(bad.value(y)) && bad.value(y) != good.value(y))
      flipped = true;
  }
  EXPECT_TRUE(flipped);
  EXPECT_TRUE(iddq);
}

TEST(Simulator, StuckOpenRetainsPreviousValue) {
  // INV with t1 (pull-up) open: pattern 1 -> out=0; then input 0 floats
  // the output, which retains 0 (the two-pattern observable).
  Circuit c;
  const NetId a = c.add_primary_input("a");
  const NetId y = c.add_net("y");
  const int g = c.add_gate(CellKind::kInv, {a}, y);
  c.mark_primary_output(y);
  c.finalize();
  const Simulator sim(c);
  const GateFault fault{g, {0, gates::TransistorFault::kStuckOpen}};

  const SimResult first = sim.simulate_faulty({LogicV::k1}, fault);
  EXPECT_EQ(first.value(y), LogicV::k0);
  const SimResult second =
      sim.simulate_faulty({LogicV::k0}, fault, &first.net_values);
  EXPECT_EQ(second.value(y), LogicV::k0);  // wrong: good machine gives 1
  // Without history the retained value is unknown.
  const SimResult blind = sim.simulate_faulty({LogicV::k0}, fault);
  EXPECT_EQ(blind.value(y), LogicV::kX);
}

TEST(PackedSim, MatchesScalarSimulatorOnC17) {
  const Circuit ckt = c17();
  const Simulator sim(ckt);
  std::vector<Pattern> patterns;
  for (unsigned v = 0; v < 32; ++v) patterns.push_back(bits_to_pattern(v, 5));
  const auto words = pack_patterns(ckt, patterns);
  const auto packed = simulate_packed(ckt, words);
  for (unsigned v = 0; v < 32; ++v) {
    const SimResult r = sim.simulate(patterns[v]);
    for (const NetId po : ckt.primary_outputs()) {
      const bool bit =
          (packed[static_cast<std::size_t>(po)] >> v) & 1ull;
      EXPECT_EQ(from_bool(bit), r.value(po)) << "v=" << v;
    }
  }
}

TEST(PackedSim, RejectsOverAndUnderSpecification) {
  const Circuit ckt = c17();
  std::vector<Pattern> too_many(65, bits_to_pattern(0, 5));
  EXPECT_THROW((void)pack_patterns(ckt, too_many), std::invalid_argument);
  Pattern with_x = bits_to_pattern(0, 5);
  with_x[0] = LogicV::kX;
  EXPECT_THROW((void)pack_patterns(ckt, {with_x}), std::invalid_argument);
}

TEST(EvalCellX, PrecisionOnAllCells) {
  EXPECT_EQ(eval_cell_x(CellKind::kNor2, LogicV::k1, LogicV::kX),
            LogicV::k0);
  EXPECT_EQ(eval_cell_x(CellKind::kMaj3, LogicV::k1, LogicV::k1, LogicV::kX),
            LogicV::k1);
  EXPECT_EQ(eval_cell_x(CellKind::kMaj3, LogicV::k1, LogicV::k0, LogicV::kX),
            LogicV::kX);
  EXPECT_EQ(eval_cell_x(CellKind::kXor3, LogicV::k1, LogicV::k1, LogicV::kX),
            LogicV::kX);
  EXPECT_EQ(eval_cell_x(CellKind::kInv, LogicV::kX), LogicV::kX);
}

}  // namespace
}  // namespace cpsinw::logic
