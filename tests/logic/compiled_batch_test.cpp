// Randomized property suite for the vectorized compiled core: the
// multi-fault batch kernel (every batch size 1..kBatchLanes, ragged
// pattern tails) and every SIMD backend must be bit-identical to the
// single-fault PR-5 kernels — which the golden-equivalence suite in
// compiled_circuit_test.cpp pins to the seed's interpreted evaluators, so
// transitively everything here is pinned to the seed too.  Covers all
// five fault classes (line stuck-at stems and branches, transistor
// stuck-open/stuck-on, polarity via IDDQ dictionaries, bridges through
// the shard path) plus X-bearing pattern sets.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "engine/shard.hpp"
#include "faults/bridge.hpp"
#include "faults/eval_context.hpp"
#include "faults/fault_list.hpp"
#include "faults/fault_sim.hpp"
#include "logic/benchmarks.hpp"
#include "logic/compiled_circuit.hpp"
#include "logic/logic_sim.hpp"
#include "logic/simd.hpp"
#include "util/rng.hpp"

namespace cpsinw::logic {
namespace {

using faults::DetectionRecord;
using faults::EvalContext;
using faults::Fault;
using faults::FaultSimOptions;
using faults::FaultSimulator;
using faults::FaultSite;
using faults::LineBatchStats;

std::vector<Pattern> random_patterns(const Circuit& ckt, int count,
                                     std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  std::vector<Pattern> out;
  for (int k = 0; k < count; ++k) {
    Pattern p(ckt.primary_inputs().size());
    for (LogicV& v : p) v = from_bool(rng.chance(0.5));
    out.push_back(std::move(p));
  }
  return out;
}

struct Named {
  std::string name;
  Circuit ckt;
};

/// Generators plus random circuits: structure diversity for the batch
/// kernel's event machinery (stems on PIs, deep branches, fanout).
std::vector<Named> roster() {
  std::vector<Named> out;
  out.push_back({"c17", c17()});
  out.push_back({"alu_slice", alu_slice()});
  out.push_back({"parity_tree_9", parity_tree(9)});
  out.push_back({"tmr_voter_3", tmr_voter(3)});
  out.push_back({"ripple_adder_4", ripple_adder(4)});
  out.push_back({"random_a", random_circuit(11, 6, 30)});
  out.push_back({"random_b", random_circuit(23, 8, 60)});
  out.push_back({"random_c", random_circuit(47, 5, 16)});
  return out;
}

/// Every line stuck-at fault of a circuit: stems on all nets, branches on
/// all pins.
std::vector<Fault> all_line_faults(const Circuit& ckt) {
  std::vector<Fault> out;
  for (NetId n = 0; n < ckt.net_count(); ++n)
    for (const bool sa1 : {false, true})
      out.push_back(Fault::net_stuck(n, sa1));
  for (const GateInst& g : ckt.gates())
    for (int pin = 0; pin < g.input_count(); ++pin)
      for (const bool sa1 : {false, true})
        out.push_back(Fault::input_stuck(g.id, pin, sa1));
  return out;
}

/// Reference per-word detection words via the single-fault PR-5 kernel:
/// one init_packed + eval_packed_line per (fault, word).
std::vector<std::uint64_t> reference_det_words(const Circuit& ckt,
                                               const EvalContext& ctx,
                                               const Fault& f) {
  const CompiledCircuit& cc = ctx.compiled();
  const auto lf = faults::checked_line_fault(ckt, f);
  std::vector<std::uint64_t> det(ctx.word_count(), 0);
  std::vector<std::uint64_t> values;
  for (std::size_t w = 0; w < ctx.word_count(); ++w) {
    const EvalContext::Batch& batch = ctx.batches()[w];
    cc.init_packed(batch.pi_words, values);
    cc.eval_packed_line(values, lf);
    std::uint64_t diff = 0;
    for (const NetId po : ckt.primary_outputs())
      diff |= ctx.good_plane(po)[w] ^ values[static_cast<std::size_t>(po)];
    det[w] = diff & batch.active;
  }
  return det;
}

void expect_record_eq(const DetectionRecord& got, const DetectionRecord& want,
                      const std::string& label) {
  EXPECT_EQ(got.detected_output, want.detected_output) << label;
  EXPECT_EQ(got.detected_iddq, want.detected_iddq) << label;
  EXPECT_EQ(got.potential, want.potential) << label;
  EXPECT_EQ(got.first_pattern, want.first_pattern) << label;
}

/// RAII pin of the portable backend (tests must not leak the override).
struct ForcePortable {
  explicit ForcePortable(bool on) { simd::force_portable(on); }
  ~ForcePortable() { simd::force_portable(false); }
};

// ---------------------------------------------------------------------------

TEST(CompiledBatch, PlaneGoodMachineMatchesWordKernel) {
  // Pattern counts straddle every word boundary and the SIMD group width.
  const int counts[] = {1, 63, 64, 65, 100, 128, 200, 256};
  std::size_t ci = 0;
  for (const Named& w : roster()) {
    const int count = counts[ci++ % (sizeof(counts) / sizeof(counts[0]))];
    const auto patterns = random_patterns(w.ckt, count, 101 + ci);
    const EvalContext ctx(w.ckt, patterns);
    ASSERT_TRUE(ctx.packed());
    ASSERT_EQ(ctx.word_count(), (patterns.size() + 63) / 64);
    ASSERT_EQ(ctx.plane_stride() % CompiledCircuit::kSimdWords, 0u);
    const CompiledCircuit& cc = ctx.compiled();
    std::vector<std::uint64_t> values;
    for (std::size_t b = 0; b < ctx.batches().size(); ++b) {
      cc.init_packed(ctx.batches()[b].pi_words, values);
      cc.eval_packed(values);
      for (NetId n = 0; n < w.ckt.net_count(); ++n)
        ASSERT_EQ(ctx.good_plane(n)[b],
                  values[static_cast<std::size_t>(n)])
            << w.name << " word " << b << " net " << n;
    }
  }
}

TEST(CompiledBatch, BatchKernelMatchesSingleFaultKernelAllBatchSizes) {
  const int counts[] = {1, 63, 65, 100, 128, 200};
  std::size_t ci = 0;
  for (const Named& w : roster()) {
    const int count = counts[ci++ % (sizeof(counts) / sizeof(counts[0]))];
    const auto patterns = random_patterns(w.ckt, count, 7 + ci);
    const EvalContext ctx(w.ckt, patterns);
    ASSERT_TRUE(ctx.packed());
    const CompiledCircuit& cc = ctx.compiled();
    const std::vector<Fault> universe = all_line_faults(w.ckt);
    const std::size_t n_words = ctx.word_count();

    // Reference detection words, one fault at a time.
    std::vector<std::vector<std::uint64_t>> want;
    std::vector<CompiledCircuit::LineFault> lfs;
    for (const Fault& f : universe) {
      want.push_back(reference_det_words(w.ckt, ctx, f));
      lfs.push_back(faults::checked_line_fault(w.ckt, f));
    }

    // Every batch size, over windows sliding through the universe so
    // stems/branches/sa0/sa1 mix within one group.
    std::vector<std::uint64_t> det(CompiledCircuit::kBatchLanes * n_words);
    std::vector<std::uint64_t> scratch;
    for (std::size_t n = 1; n <= CompiledCircuit::kBatchLanes; ++n) {
      for (std::size_t g = 0; g + n <= universe.size(); g += n) {
        const std::size_t words_done = cc.eval_packed_line_batch(
            ctx.good_planes(), ctx.plane_stride(), n_words,
            ctx.active_words().data(), lfs.data() + g, n, det.data(),
            scratch);
        ASSERT_GE(words_done, 1u);
        ASSERT_LE(words_done, n_words);
        for (std::size_t j = 0; j < n; ++j) {
          bool detected = false;
          for (std::size_t wd = 0; wd < words_done; ++wd) {
            ASSERT_EQ(det[j * n_words + wd], want[g + j][wd])
                << w.name << " batch " << n << " fault " << (g + j)
                << " word " << wd;
            detected |= det[j * n_words + wd] != 0;
          }
          // Early exit is only legal once every lane has a detection.
          if (words_done < n_words) {
            ASSERT_TRUE(detected);
          }
        }
      }
    }
  }
}

TEST(CompiledBatch, RunRangeBatchedMatchesSingleFaultPath) {
  for (const Named& w : roster()) {
    const auto patterns = random_patterns(w.ckt, 90, 31);
    const EvalContext ctx(w.ckt, patterns);
    const FaultSimulator fsim(w.ckt);
    faults::FaultListOptions flo;
    flo.collapse = false;
    const std::vector<Fault> universe = faults::generate_fault_list(w.ckt, flo);

    FaultSimOptions batched;
    batched.batch_line_faults = true;
    FaultSimOptions single;
    single.batch_line_faults = false;

    LineBatchStats stats;
    const auto got =
        fsim.run_range(ctx, universe, 0, universe.size(), batched, &stats);
    const auto ref = fsim.run_range(ctx, universe, 0, universe.size(), single);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      expect_record_eq(got[i], ref[i], w.name + " fault " + std::to_string(i));

    // Occupancy accounting is consistent with the universe.
    std::size_t line_faults = 0;
    for (const Fault& f : universe)
      if (f.site != FaultSite::kGateTransistor) ++line_faults;
    EXPECT_EQ(stats.faults, line_faults) << w.name;
    // lane_slots counts lanes actually occupied, so it never exceeds the
    // full-group capacity and always matches the fill histogram exactly.
    EXPECT_LE(stats.lane_slots,
              stats.groups * CompiledCircuit::kBatchLanes);
    std::size_t fill_sum = 0;
    for (std::size_t k = 0; k < stats.fill.size(); ++k)
      fill_sum += stats.fill[k] * (k + 1);
    EXPECT_EQ(fill_sum, stats.lane_slots) << w.name;
    // Every fault is either routed through the kernel (dropping strips may
    // route one through several invocations) or resolved by critical-path
    // tracing with no kernel pass at all.
    EXPECT_GE(stats.lane_slots + stats.cpt_faults, stats.faults) << w.name;
    if (stats.groups > 0) {
      EXPECT_GT(stats.words, 0u) << w.name;
    }
    if (stats.cpt_faults > 0) {
      EXPECT_EQ(stats.cpt_faults, stats.faults);
    }

    // Concatenating sub-range records equals the whole-list run (the
    // campaign sharding contract), with batching on.
    const std::size_t cut = universe.size() / 3 + 1;
    std::vector<DetectionRecord> cat;
    for (std::size_t b = 0; b < universe.size(); b += cut) {
      const std::size_t e = std::min(universe.size(), b + cut);
      const auto part = fsim.run_range(ctx, universe, b, e, batched);
      cat.insert(cat.end(), part.begin(), part.end());
    }
    ASSERT_EQ(cat.size(), got.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      expect_record_eq(cat[i], got[i], w.name + " concat " + std::to_string(i));
  }
}

TEST(CompiledBatch, ShardResultsIdenticalWithBatchingToggledAllClasses) {
  for (const Named& w : roster()) {
    const auto patterns = random_patterns(w.ckt, 80, 53);

    std::vector<engine::CampaignFault> universe;
    faults::FaultListOptions flo;
    flo.collapse = false;
    for (const Fault& f : faults::generate_fault_list(w.ckt, flo))
      universe.push_back(engine::CampaignFault::from_fault(f));
    for (const auto& br : faults::enumerate_adjacent_bridges(w.ckt))
      universe.push_back(engine::CampaignFault::from_bridge(br));

    engine::Shard shard;
    shard.begin = 0;
    shard.end = universe.size();
    engine::ShardExecOptions batched;
    batched.sim.batch_line_faults = true;
    engine::ShardExecOptions single;
    single.sim.batch_line_faults = false;
    single.sim.batch_transistor_faults = false;

    const auto got = engine::run_shard(w.ckt, universe, patterns, shard,
                                       batched);
    const auto ref = engine::run_shard(w.ckt, universe, patterns, shard,
                                       single);
    ASSERT_EQ(got.results.size(), ref.results.size());
    for (std::size_t i = 0; i < got.results.size(); ++i)
      expect_record_eq(got.results[i].record, ref.results[i].record,
                       w.name + " fault " + std::to_string(i));
  }
}

TEST(CompiledBatch, SimdBackendBitIdenticalToPortable) {
  if (simd::compiled_backend() == simd::Backend::kPortable)
    GTEST_SKIP() << "no wide backend in this build/CPU";
  for (const Named& w : roster()) {
    const auto patterns = random_patterns(w.ckt, 200, 77);

    // Contexts built under each backend must hold identical plane bytes
    // (including padding words — seeds are backend-independent).
    std::vector<std::uint64_t> portable_planes;
    {
      ForcePortable pin(true);
      const EvalContext ctx(w.ckt, patterns);
      portable_planes.assign(
          ctx.good_planes(),
          ctx.good_planes() +
              static_cast<std::size_t>(w.ckt.net_count()) *
                  ctx.plane_stride());
    }
    const EvalContext ctx(w.ckt, patterns);  // wide backend
    ASSERT_TRUE(ctx.packed());
    const std::vector<std::uint64_t> wide_planes(
        ctx.good_planes(),
        ctx.good_planes() + static_cast<std::size_t>(w.ckt.net_count()) *
                                ctx.plane_stride());
    ASSERT_EQ(wide_planes, portable_planes) << w.name;

    // Batch kernel: identical detection words under both backends.
    const CompiledCircuit& cc = ctx.compiled();
    const std::vector<Fault> universe = all_line_faults(w.ckt);
    std::vector<CompiledCircuit::LineFault> lfs;
    for (const Fault& f : universe)
      lfs.push_back(faults::checked_line_fault(w.ckt, f));
    const std::size_t n_words = ctx.word_count();
    std::vector<std::uint64_t> det_wide(CompiledCircuit::kBatchLanes *
                                        n_words);
    std::vector<std::uint64_t> det_port(det_wide.size());
    std::vector<std::uint64_t> scratch;
    for (std::size_t g = 0; g < lfs.size();
         g += CompiledCircuit::kBatchLanes) {
      const std::size_t n =
          std::min(CompiledCircuit::kBatchLanes, lfs.size() - g);
      const std::size_t words_wide = cc.eval_packed_line_batch(
          ctx.good_planes(), ctx.plane_stride(), n_words,
          ctx.active_words().data(), lfs.data() + g, n, det_wide.data(),
          scratch);
      std::size_t words_port = 0;
      {
        ForcePortable pin(true);
        words_port = cc.eval_packed_line_batch(
            ctx.good_planes(), ctx.plane_stride(), n_words,
            ctx.active_words().data(), lfs.data() + g, n, det_port.data(),
            scratch);
      }
      ASSERT_EQ(words_wide, words_port) << w.name << " group " << g;
      ASSERT_EQ(det_wide, det_port) << w.name << " group " << g;
    }

    // Full run_range (line + transistor planes paths) under each backend.
    const FaultSimulator fsim(w.ckt);
    faults::FaultListOptions flo;
    flo.collapse = false;
    const std::vector<Fault> all = faults::generate_fault_list(w.ckt, flo);
    const auto wide = fsim.run_range(ctx, all, 0, all.size());
    ForcePortable pin(true);
    const auto port = fsim.run_range(ctx, all, 0, all.size());
    ASSERT_EQ(wide.size(), port.size());
    for (std::size_t i = 0; i < wide.size(); ++i)
      expect_record_eq(wide[i], port[i],
                       w.name + " fault " + std::to_string(i));
  }
}

TEST(CompiledBatch, XBearingPatternsKeepScalarPathsAndRejectLineFaults) {
  const Circuit ckt = alu_slice();
  std::vector<Pattern> patterns = random_patterns(ckt, 8, 13);
  patterns[2][1] = LogicV::kX;
  patterns[6][0] = LogicV::kX;
  const EvalContext ctx(ckt, patterns);
  EXPECT_FALSE(ctx.packed());
  EXPECT_EQ(ctx.word_count(), 0u);
  const FaultSimulator fsim(ckt);

  std::vector<Fault> trans;
  for (const Fault& f : faults::generate_fault_list(ckt, {}))
    if (f.site == FaultSite::kGateTransistor) trans.push_back(f);
  ASSERT_FALSE(trans.empty());
  FaultSimOptions batched;
  batched.batch_line_faults = true;
  FaultSimOptions single;
  single.batch_line_faults = false;
  const auto got = fsim.run_range(ctx, trans, 0, trans.size(), batched);
  const auto ref = fsim.run_range(ctx, trans, 0, trans.size(), single);
  for (std::size_t i = 0; i < trans.size(); ++i)
    expect_record_eq(got[i], ref[i], "trans " + std::to_string(i));

  // Line faults still demand packable patterns, batched or not.
  const std::vector<Fault> line = {Fault::net_stuck(0, true)};
  EXPECT_THROW((void)fsim.run_range(ctx, line, 0, 1, batched),
               std::invalid_argument);
  EXPECT_THROW((void)fsim.run_range(ctx, line, 0, 1, single),
               std::invalid_argument);
}

TEST(CompiledBatch, EmptyPatternSetYieldsUndetectedRecords) {
  const Circuit ckt = c17();
  const EvalContext ctx(ckt, std::vector<Pattern>{});
  const FaultSimulator fsim(ckt);
  const std::vector<Fault> line = all_line_faults(ckt);
  const auto recs = fsim.run_range(ctx, line, 0, line.size());
  for (const DetectionRecord& r : recs) {
    EXPECT_FALSE(r.detected_output);
    EXPECT_EQ(r.first_pattern, -1);
  }
}

}  // namespace
}  // namespace cpsinw::logic
