// Golden-equivalence suite for the compiled circuit core: every kernel of
// logic::CompiledCircuit — scalar good/faulty, packed good, packed line
// fault, packed transistor substitution — must be bit-identical to the
// seed's interpreted evaluators, re-implemented here verbatim as the
// frozen reference (the library itself no longer carries the interpreted
// walk, so the reference lives in this test).
#include "logic/compiled_circuit.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "atpg/transition.hpp"
#include "engine/shard.hpp"
#include "faults/bridge.hpp"
#include "faults/eval_context.hpp"
#include "faults/fault_list.hpp"
#include "faults/fault_sim.hpp"
#include "gates/fault_dictionary.hpp"
#include "logic/benchmarks.hpp"
#include "logic/logic_sim.hpp"
#include "util/rng.hpp"

namespace cpsinw::logic {
namespace {

using faults::DetectionRecord;
using faults::Fault;
using faults::FaultSimOptions;
using faults::FaultSite;

// ---------------------------------------------------------------------------
// Interpreted reference: the seed algorithms, frozen.  These walk GateInst
// records through Circuit::topo_order() and re-consult dictionaries per
// gate, exactly like the pre-compiled-core library did.
namespace interp {

LogicV eval_gate(const Circuit& ckt, const GateInst& g,
                 const std::vector<LogicV>& values) {
  const auto bits = Simulator::local_input(g, values);
  if (!bits) {
    const auto in_at = [&](int i) {
      return g.in[static_cast<std::size_t>(i)] >= 0
                 ? values[static_cast<std::size_t>(
                       g.in[static_cast<std::size_t>(i)])]
                 : LogicV::kX;
    };
    return eval_cell_x(g.kind, in_at(0), in_at(1), in_at(2));
  }
  (void)ckt;
  return from_bool(gates::good_output(g.kind, *bits) != 0);
}

std::vector<LogicV> seed_values(const Circuit& ckt, const Pattern& pattern) {
  std::vector<LogicV> values(static_cast<std::size_t>(ckt.net_count()),
                             LogicV::kX);
  for (NetId n = 0; n < ckt.net_count(); ++n) {
    const LogicV c = ckt.constant_of(n);
    if (is_binary(c)) values[static_cast<std::size_t>(n)] = c;
  }
  for (std::size_t i = 0; i < pattern.size(); ++i)
    values[static_cast<std::size_t>(ckt.primary_inputs()[i])] = pattern[i];
  return values;
}

SimResult simulate(const Circuit& ckt, const Pattern& pattern) {
  SimResult r;
  r.net_values = seed_values(ckt, pattern);
  for (const int gid : ckt.topo_order()) {
    const GateInst& g = ckt.gate(gid);
    r.net_values[static_cast<std::size_t>(g.out)] =
        eval_gate(ckt, g, r.net_values);
  }
  return r;
}

SimResult simulate_faulty(const Circuit& ckt, const Pattern& pattern,
                          int fault_gate, const gates::FaultAnalysis& fa,
                          const std::vector<LogicV>* previous_state) {
  SimResult r;
  r.net_values = seed_values(ckt, pattern);
  for (const int gid : ckt.topo_order()) {
    const GateInst& g = ckt.gate(gid);
    if (gid != fault_gate) {
      r.net_values[static_cast<std::size_t>(g.out)] =
          eval_gate(ckt, g, r.net_values);
      continue;
    }
    const auto bits = Simulator::local_input(g, r.net_values);
    if (!bits) {
      r.net_values[static_cast<std::size_t>(g.out)] = LogicV::kX;
      continue;
    }
    const gates::FaultRow& row = fa.rows[*bits];
    if (row.faulty.contention) r.iddq_flag = true;
    const int fv = row.faulty.floating
                       ? -2
                       : gates::logic_value(row.faulty.out);
    LogicV out = LogicV::kX;
    if (fv == 0) {
      out = LogicV::k0;
    } else if (fv == 1) {
      out = LogicV::k1;
    } else if (fv == -2) {
      out = previous_state != nullptr
                ? (*previous_state)[static_cast<std::size_t>(g.out)]
                : LogicV::kX;
      if (out == LogicV::kZ) out = LogicV::kX;
    }
    r.net_values[static_cast<std::size_t>(g.out)] = out;
  }
  return r;
}

std::vector<std::uint64_t> packed_line(const Circuit& ckt,
                                       const std::vector<std::uint64_t>& pi,
                                       const Fault& fault) {
  std::vector<std::uint64_t> values(
      static_cast<std::size_t>(ckt.net_count()), 0);
  for (NetId n = 0; n < ckt.net_count(); ++n)
    if (ckt.constant_of(n) == LogicV::k1)
      values[static_cast<std::size_t>(n)] = ~0ull;
  for (std::size_t i = 0; i < pi.size(); ++i)
    values[static_cast<std::size_t>(ckt.primary_inputs()[i])] = pi[i];

  const std::uint64_t forced = fault.stuck_at_one ? ~0ull : 0ull;
  if (fault.site == FaultSite::kNet)
    values[static_cast<std::size_t>(fault.net)] = forced;

  for (const int gid : ckt.topo_order()) {
    const GateInst& g = ckt.gate(gid);
    std::uint64_t in[3] = {0, 0, 0};
    for (int i = 0; i < g.input_count(); ++i) {
      in[i] =
          values[static_cast<std::size_t>(g.in[static_cast<std::size_t>(i)])];
      if (fault.site == FaultSite::kGateInput && fault.gate == gid &&
          fault.pin == i)
        in[i] = forced;
    }
    std::uint64_t out = eval_cell_packed(g.kind, in[0], in[1], in[2]);
    if (fault.site == FaultSite::kNet && g.out == fault.net) out = forced;
    values[static_cast<std::size_t>(g.out)] = out;
  }
  return values;
}

DetectionRecord transistor_serial(const Circuit& ckt, const Fault& fault,
                                  const std::vector<Pattern>& patterns,
                                  const FaultSimOptions& options) {
  const gates::FaultAnalysis fa =
      gates::analyze_fault(ckt.gate(fault.gate).kind, fault.cell_fault);
  DetectionRecord rec;
  std::vector<LogicV> state;
  for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
    const SimResult good = simulate(ckt, patterns[pi]);
    const SimResult bad = simulate_faulty(
        ckt, patterns[pi], fault.gate, fa,
        options.sequential_patterns && !state.empty() ? &state : nullptr);
    if (options.sequential_patterns) state = bad.net_values;

    bool hit = false;
    if (bad.iddq_flag && options.observe_iddq) {
      rec.detected_iddq = true;
      hit = true;
    }
    for (const NetId po : ckt.primary_outputs()) {
      const LogicV g = good.net_values[static_cast<std::size_t>(po)];
      const LogicV b = bad.net_values[static_cast<std::size_t>(po)];
      if (is_binary(g) && is_binary(b) && g != b) {
        rec.detected_output = true;
        hit = true;
      } else if (is_binary(g) && !is_binary(b)) {
        rec.potential = true;
      }
    }
    if (hit && rec.first_pattern < 0) rec.first_pattern = static_cast<int>(pi);
  }
  return rec;
}

/// The pre-refactor run_range over line faults: packed batches, fault
/// dropping, first detecting bit.
DetectionRecord line_fault(const Circuit& ckt, const Fault& fault,
                           const std::vector<Pattern>& patterns) {
  DetectionRecord rec;
  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    if (rec.detected_output) break;
    const std::size_t count = std::min<std::size_t>(64, patterns.size() - base);
    const std::vector<Pattern> slice(
        patterns.begin() + static_cast<long>(base),
        patterns.begin() + static_cast<long>(base + count));
    const auto pi_words = pack_patterns(ckt, slice);
    const auto good = simulate_packed(ckt, pi_words);
    const auto bad = packed_line(ckt, pi_words, fault);
    const std::uint64_t active =
        count == 64 ? ~0ull : ((1ull << count) - 1ull);
    std::uint64_t diff = 0;
    for (const NetId po : ckt.primary_outputs())
      diff |= (good[static_cast<std::size_t>(po)] ^
               bad[static_cast<std::size_t>(po)]);
    diff &= active;
    if (diff != 0) {
      rec.detected_output = true;
      rec.first_pattern = static_cast<int>(base) + __builtin_ctzll(diff);
    }
  }
  return rec;
}

/// Reference bridge evaluation, mirroring the engine's hit semantics.
DetectionRecord bridge_fault(const Circuit& ckt,
                             const faults::BridgeFault& bridge,
                             const std::vector<Pattern>& patterns,
                             const FaultSimOptions& options) {
  DetectionRecord rec;
  for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
    const SimResult good = simulate(ckt, patterns[pi]);
    bool hit = false;
    if (!rec.detected_output) {
      const std::vector<LogicV> bad =
          faults::simulate_bridge(ckt, bridge, patterns[pi]);
      for (const NetId po : ckt.primary_outputs()) {
        const LogicV g = good.net_values[static_cast<std::size_t>(po)];
        const LogicV b = bad[static_cast<std::size_t>(po)];
        if (is_binary(g) && is_binary(b) && g != b) {
          rec.detected_output = true;
          hit = true;
          break;
        }
      }
    }
    if (options.observe_iddq) {
      const LogicV va = good.net_values[static_cast<std::size_t>(bridge.a)];
      const LogicV vb = good.net_values[static_cast<std::size_t>(bridge.b)];
      if (is_binary(va) && is_binary(vb) && va != vb) {
        rec.detected_iddq = true;
        hit = true;
      }
    }
    if (hit && rec.first_pattern < 0) rec.first_pattern = static_cast<int>(pi);
    if (rec.detected_output && (rec.detected_iddq || !options.observe_iddq))
      break;
  }
  return rec;
}

}  // namespace interp

// ---------------------------------------------------------------------------

std::vector<Pattern> random_patterns(const Circuit& ckt, int count,
                                     std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  std::vector<Pattern> out;
  for (int k = 0; k < count; ++k) {
    Pattern p(ckt.primary_inputs().size());
    for (LogicV& v : p) v = from_bool(rng.chance(0.5));
    out.push_back(std::move(p));
  }
  return out;
}

struct Named {
  std::string name;
  Circuit ckt;
};

/// Every logic::benchmarks generator.
std::vector<Named> benchmark_roster() {
  std::vector<Named> out;
  out.push_back({"full_adder", full_adder()});
  out.push_back({"ripple_adder_4", ripple_adder(4)});
  out.push_back({"parity_tree_9", parity_tree(9)});
  out.push_back({"multiplier_2x2", multiplier_2x2()});
  out.push_back({"tmr_voter_3", tmr_voter(3)});
  out.push_back({"c17", c17()});
  out.push_back({"alu_slice", alu_slice()});
  out.push_back({"xor3_parity_chain_5", xor3_parity_chain(5)});
  return out;
}

void expect_record_eq(const DetectionRecord& got, const DetectionRecord& want,
                      const std::string& label) {
  EXPECT_EQ(got.detected_output, want.detected_output) << label;
  EXPECT_EQ(got.detected_iddq, want.detected_iddq) << label;
  EXPECT_EQ(got.potential, want.potential) << label;
  EXPECT_EQ(got.first_pattern, want.first_pattern) << label;
}

TEST(CompiledCircuit, StructureMirrorsTopoOrderAndTables) {
  for (const Named& w : benchmark_roster()) {
    const CompiledCircuit cc(w.ckt);
    ASSERT_EQ(cc.gates().size(), w.ckt.topo_order().size()) << w.name;
    for (std::size_t k = 0; k < cc.gates().size(); ++k) {
      const CompiledCircuit::GateRec& r = cc.gates()[k];
      const int gid = w.ckt.topo_order()[k];
      EXPECT_EQ(r.id, gid) << w.name;
      EXPECT_EQ(cc.position_of(gid), k) << w.name;
      const GateInst& g = w.ckt.gate(gid);
      EXPECT_EQ(r.kind, g.kind);
      EXPECT_EQ(r.out, g.out);
      for (int i = 0; i < g.input_count(); ++i)
        EXPECT_EQ(r.in[static_cast<std::size_t>(i)],
                  g.in[static_cast<std::size_t>(i)]);
    }
  }
  // Tables agree with good_output on binary codes and eval_cell_x on all.
  const LogicV decode[3] = {LogicV::k0, LogicV::k1, LogicV::kX};
  for (const gates::CellKind kind : gates::all_cell_kinds()) {
    const LogicV* table = CompiledCircuit::good_table(kind);
    for (unsigned a = 0; a < 3; ++a)
      for (unsigned b = 0; b < 3; ++b)
        for (unsigned c = 0; c < 3; ++c) {
          const LogicV got = table[a | (b << 2) | (c << 4)];
          EXPECT_EQ(got, eval_cell_x(kind, decode[a], decode[b], decode[c]));
        }
    const int n = gates::input_count(kind);
    for (unsigned v = 0; v < (1u << n); ++v) {
      const unsigned idx = (v & 1u) | (((v >> 1) & 1u) << 2) |
                           (((v >> 2) & 1u) << 4);
      EXPECT_EQ(table[idx], from_bool(gates::good_output(kind, v) != 0));
    }
  }
}

TEST(CompiledCircuit, ScalarGoodMatchesInterpretedReference) {
  for (const Named& w : benchmark_roster()) {
    const Simulator sim(w.ckt);
    std::vector<Pattern> patterns = random_patterns(w.ckt, 24, 7);
    // X-bearing patterns exercise the 4-valued table paths.
    util::SplitMix64 rng(13);
    for (int k = 0; k < 12; ++k) {
      Pattern p(w.ckt.primary_inputs().size());
      for (LogicV& v : p)
        v = rng.chance(0.3) ? LogicV::kX : from_bool(rng.chance(0.5));
      patterns.push_back(std::move(p));
    }
    for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
      const SimResult got = sim.simulate(patterns[pi]);
      const SimResult want = interp::simulate(w.ckt, patterns[pi]);
      ASSERT_EQ(got.net_values, want.net_values)
          << w.name << " pattern " << pi;
    }
  }
}

TEST(CompiledCircuit, ScalarFaultyMatchesInterpretedReference) {
  for (const Named& w : benchmark_roster()) {
    const Simulator sim(w.ckt);
    std::vector<Pattern> patterns = random_patterns(w.ckt, 10, 19);
    patterns[3][0] = LogicV::kX;  // X at the fault site's cone
    for (const GateInst& g : w.ckt.gates()) {
      for (const gates::CellFault& cf :
           gates::enumerate_transistor_faults(g.kind)) {
        const gates::FaultAnalysis fa = gates::analyze_fault(g.kind, cf);
        std::vector<LogicV> state_got;
        std::vector<LogicV> state_want;
        for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
          const SimResult got = sim.simulate_faulty_with(
              patterns[pi], GateFault{g.id, cf}, fa,
              state_got.empty() ? nullptr : &state_got);
          const SimResult want = interp::simulate_faulty(
              w.ckt, patterns[pi], g.id, fa,
              state_want.empty() ? nullptr : &state_want);
          ASSERT_EQ(got.net_values, want.net_values)
              << w.name << " gate " << g.id << " t" << cf.transistor
              << " pattern " << pi;
          ASSERT_EQ(got.iddq_flag, want.iddq_flag)
              << w.name << " gate " << g.id << " t" << cf.transistor;
          state_got = got.net_values;
          state_want = want.net_values;
        }
      }
    }
  }
}

TEST(CompiledCircuit, PackedGoodMatchesInterpretedSimulatePacked) {
  for (const Named& w : benchmark_roster()) {
    const std::vector<Pattern> patterns = random_patterns(w.ckt, 64, 31);
    const auto pi_words = pack_patterns(w.ckt, patterns);
    // The free simulate_packed() is the interpreted reference the library
    // keeps on purpose.
    const auto want = simulate_packed(w.ckt, pi_words);
    const CompiledCircuit cc(w.ckt);
    std::vector<std::uint64_t> got;
    cc.init_packed(pi_words, got);
    cc.eval_packed(got);
    EXPECT_EQ(got, want) << w.name;
    // Context good planes are built by the compiled plane kernel; word 0
    // of every net's row must match the interpreted single-word words.
    const faults::EvalContext ctx(w.ckt, patterns);
    ASSERT_TRUE(ctx.packed());
    ASSERT_EQ(ctx.batches().size(), 1u);
    ASSERT_EQ(ctx.word_count(), 1u);
    for (logic::NetId n = 0; n < w.ckt.net_count(); ++n)
      EXPECT_EQ(ctx.good_plane(n)[0], want[static_cast<std::size_t>(n)])
          << w.name << " net " << n;
  }
}

TEST(CompiledCircuit, AllFiveFaultClassesMatchInterpretedReferences) {
  for (const Named& w : benchmark_roster()) {
    // Keep the biggest circuits to a subsample for runtime.
    const std::vector<Pattern> patterns = random_patterns(w.ckt, 70, 43);

    std::vector<engine::CampaignFault> universe;
    faults::FaultListOptions flo;
    flo.collapse = false;  // keep every dictionary shape in play
    for (const Fault& f : faults::generate_fault_list(w.ckt, flo))
      universe.push_back(engine::CampaignFault::from_fault(f));
    const auto bridges = faults::enumerate_adjacent_bridges(w.ckt);
    for (std::size_t i = 0; i < bridges.size(); i += 5)
      universe.push_back(engine::CampaignFault::from_bridge(bridges[i]));

    bool seen[engine::kFaultClassCount] = {};
    for (const engine::CampaignFault& cf : universe)
      seen[static_cast<int>(cf.cls)] = true;
    for (int c = 0; c < engine::kFaultClassCount; ++c)
      ASSERT_TRUE(seen[c]) << w.name << " class " << c;

    engine::Shard shard;
    shard.begin = 0;
    shard.end = universe.size();
    const engine::ShardExecOptions options;
    const engine::ShardResult got =
        engine::run_shard(w.ckt, universe, patterns, shard, options);
    ASSERT_EQ(got.results.size(), universe.size());

    for (std::size_t i = 0; i < universe.size(); ++i) {
      const engine::CampaignFault& cf = universe[i];
      DetectionRecord want;
      if (cf.cls == engine::FaultClass::kBridge)
        want = interp::bridge_fault(w.ckt, cf.bridge, patterns, options.sim);
      else if (cf.fault.site == FaultSite::kGateTransistor)
        want = interp::transistor_serial(w.ckt, cf.fault, patterns,
                                         options.sim);
      else
        want = interp::line_fault(w.ckt, cf.fault, patterns);
      expect_record_eq(got.results[i].record, want,
                       w.name + " fault " + std::to_string(i));
    }
  }
}

TEST(CompiledCircuit, XBearingPatternsMatchInterpretedScalarPath) {
  const Circuit ckt = alu_slice();
  std::vector<Pattern> patterns = random_patterns(ckt, 6, 3);
  patterns[1][0] = LogicV::kX;
  patterns[4][2] = LogicV::kX;
  const faults::EvalContext ctx(ckt, patterns);
  EXPECT_FALSE(ctx.packed());
  const faults::FaultSimulator fsim(ckt);
  std::vector<Fault> trans;
  for (const Fault& f : faults::generate_fault_list(ckt, {}))
    if (f.site == FaultSite::kGateTransistor) trans.push_back(f);
  ASSERT_FALSE(trans.empty());
  const faults::FaultSimReport got = fsim.run(ctx, trans, {});
  for (std::size_t i = 0; i < trans.size(); ++i)
    expect_record_eq(got.records[i],
                     interp::transistor_serial(ckt, trans[i], patterns, {}),
                     "fault " + std::to_string(i));
}

TEST(CompiledCircuit, TwoPatternStuckOpenRetentionMatchesReference) {
  // c17 is NAND-only: its stuck-opens have floating rows, so retention
  // across an (init, test) sequence is what detection hinges on.
  const Circuit ckt = c17();
  const faults::FaultSimulator fsim(ckt);
  const std::vector<Pattern> seqs = random_patterns(ckt, 40, 57);
  int exercised = 0;
  for (const GateInst& g : ckt.gates()) {
    const int nt = static_cast<int>(gates::cell(g.kind).transistors.size());
    for (int t = 0; t < nt; ++t) {
      const Fault f =
          Fault::transistor(g.id, t, gates::TransistorFault::kStuckOpen);
      for (std::size_t k = 0; k + 1 < seqs.size(); k += 2) {
        const std::vector<Pattern> pair = {seqs[k], seqs[k + 1]};
        const DetectionRecord want =
            interp::transistor_serial(ckt, f, pair, {});
        const faults::EvalContext ctx(ckt, pair);
        const faults::FaultSimReport got = fsim.run(ctx, {f}, {});
        expect_record_eq(got.records[0], want,
                         g.name + ".t" + std::to_string(t) + " seq " +
                             std::to_string(k));
        EXPECT_EQ(fsim.stuck_open_detected(f, pair[0], pair[1]),
                  want.detected_output);
        ++exercised;
      }
    }
  }
  EXPECT_GT(exercised, 0);
}

TEST(CompiledCircuit, MalformedLineFaultsAreRejectedNotUndefined) {
  // The compiled kernels index fault fields unchecked, so the public
  // entry points must validate them: out-of-range pins/gates/nets (e.g.
  // from a hostile shard_io document) throw instead of corrupting memory.
  const Circuit ckt = c17();
  const faults::FaultSimulator fsim(ckt);
  const std::vector<Pattern> patterns = random_patterns(ckt, 4, 9);
  const faults::EvalContext ctx(ckt, patterns);
  EXPECT_THROW((void)fsim.run(ctx, {Fault::input_stuck(0, 5, false)}, {}),
               std::invalid_argument);
  EXPECT_THROW((void)fsim.run(ctx, {Fault::input_stuck(99, 0, false)}, {}),
               std::invalid_argument);
  EXPECT_THROW((void)fsim.run(ctx, {Fault::net_stuck(ckt.net_count(), true)},
                              {}),
               std::invalid_argument);
  EXPECT_THROW((void)atpg::transition_detected(
                   ckt, atpg::TransitionFault{ckt.net_count(), true},
                   patterns[0], patterns[1]),
               std::invalid_argument);
}

TEST(CompiledCircuit, RandomizedCircuitPropertyTest) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    const Circuit ckt =
        random_circuit(seed, 4 + static_cast<int>(seed % 3), 18);
    const std::string label = "seed " + std::to_string(seed);
    const Simulator sim(ckt);
    const std::vector<Pattern> patterns = random_patterns(ckt, 70, seed * 97);

    // Scalar equivalence.
    for (const Pattern& p : patterns)
      ASSERT_EQ(sim.simulate(p).net_values,
                interp::simulate(ckt, p).net_values)
          << label;

    // Full fault-simulation equivalence (line + transistor).
    faults::FaultListOptions flo;
    flo.collapse = false;
    const std::vector<Fault> universe = faults::generate_fault_list(ckt, flo);
    const faults::FaultSimulator fsim(ckt);
    const faults::EvalContext ctx(ckt, patterns);
    const faults::FaultSimReport got = fsim.run(ctx, universe, {});
    ASSERT_EQ(got.records.size(), universe.size()) << label;
    for (std::size_t i = 0; i < universe.size(); ++i) {
      const Fault& f = universe[i];
      const DetectionRecord want =
          f.site == FaultSite::kGateTransistor
              ? interp::transistor_serial(ckt, f, patterns, {})
              : interp::line_fault(ckt, f, patterns);
      expect_record_eq(got.records[i], want,
                       label + " fault " + std::to_string(i));
    }
  }
}

}  // namespace
}  // namespace cpsinw::logic
