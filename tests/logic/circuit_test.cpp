#include "logic/circuit.hpp"

#include <gtest/gtest.h>

#include "logic/benchmarks.hpp"

namespace cpsinw::logic {
namespace {

using gates::CellKind;

TEST(Circuit, BuildsAndFinalizes) {
  Circuit c;
  const NetId a = c.add_primary_input("a");
  const NetId b = c.add_primary_input("b");
  const NetId y = c.add_net("y");
  const int g = c.add_gate(CellKind::kNand2, {a, b}, y);
  c.mark_primary_output(y);
  c.finalize();
  EXPECT_TRUE(c.finalized());
  EXPECT_EQ(c.net_count(), 3);
  EXPECT_EQ(c.gate_count(), 1);
  EXPECT_EQ(c.driver_of(y), g);
  EXPECT_EQ(c.driver_of(a), -1);
  EXPECT_TRUE(c.is_primary_input(a));
  EXPECT_FALSE(c.is_primary_input(y));
  EXPECT_EQ(c.fanout(a).size(), 1u);
  EXPECT_EQ(c.find_net("y"), y);
  EXPECT_THROW((void)c.find_net("zzz"), std::out_of_range);
}

TEST(Circuit, RejectsDoubleDrivenNets) {
  Circuit c;
  const NetId a = c.add_primary_input("a");
  const NetId y = c.add_net("y");
  c.add_gate(CellKind::kInv, {a}, y);
  EXPECT_THROW(c.add_gate(CellKind::kBuf, {a}, y), std::invalid_argument);
  EXPECT_THROW(c.add_gate(CellKind::kInv, {y}, a), std::invalid_argument);
}

TEST(Circuit, RejectsArityMismatch) {
  Circuit c;
  const NetId a = c.add_primary_input("a");
  const NetId y = c.add_net("y");
  EXPECT_THROW(c.add_gate(CellKind::kNand2, {a}, y), std::invalid_argument);
}

TEST(Circuit, DetectsUndrivenNets) {
  Circuit c;
  const NetId a = c.add_primary_input("a");
  const NetId floating = c.add_net("floating");
  const NetId y = c.add_net("y");
  c.add_gate(CellKind::kNand2, {a, floating}, y);
  EXPECT_THROW(c.finalize(), std::runtime_error);
}

TEST(Circuit, TopoOrderRespectsDependencies) {
  const Circuit c = ripple_adder(4);
  std::vector<int> position(static_cast<std::size_t>(c.gate_count()), -1);
  const auto& order = c.topo_order();
  for (std::size_t i = 0; i < order.size(); ++i)
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  for (const GateInst& g : c.gates()) {
    for (int i = 0; i < g.input_count(); ++i) {
      const int drv = c.driver_of(g.in[static_cast<std::size_t>(i)]);
      if (drv >= 0) {
        EXPECT_LT(position[static_cast<std::size_t>(drv)],
                  position[static_cast<std::size_t>(g.id)]);
      }
    }
  }
}

TEST(Circuit, ConstantsAreSharedAndValidated) {
  Circuit c;
  const NetId one_a = c.add_constant(LogicV::k1);
  const NetId one_b = c.add_constant(LogicV::k1);
  EXPECT_EQ(one_a, one_b);
  EXPECT_EQ(c.constant_of(one_a), LogicV::k1);
  EXPECT_THROW((void)c.add_constant(LogicV::kX), std::invalid_argument);
}

TEST(Circuit, TransistorCountSumsCells) {
  const Circuit fa = full_adder();
  // XOR3 (4) + MAJ3 (4).
  EXPECT_EQ(fa.transistor_count(), 8);
}

TEST(Benchmarks, SizesAreAsDocumented) {
  EXPECT_EQ(full_adder().gate_count(), 2);
  EXPECT_EQ(ripple_adder(4).gate_count(), 8);
  EXPECT_EQ(c17().gate_count(), 6);
  EXPECT_EQ(c17().primary_inputs().size(), 5u);
  EXPECT_EQ(c17().primary_outputs().size(), 2u);
  EXPECT_GT(multiplier_2x2().gate_count(), 10);
  EXPECT_EQ(tmr_voter(3).primary_inputs().size(), 9u);
  EXPECT_THROW((void)ripple_adder(0), std::invalid_argument);
  EXPECT_THROW((void)parity_tree(1), std::invalid_argument);
  EXPECT_THROW((void)xor3_parity_chain(4), std::invalid_argument);
}

}  // namespace
}  // namespace cpsinw::logic
