// One-bit full adder in the structural subset: sum via a gate primitive,
// carry via a named CP cell (MAJ3 has no Verilog primitive).
module full_adder (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;

  xor (sum, a, b, cin);
  MAJ3 u_carry (.Y(cout), .A(a), .B(b), .C(cin));
endmodule
