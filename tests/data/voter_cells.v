/* Two-channel TMR voter written entirely with named CP cells —
 * exercises positional terminals, named ports, and forward references
 * (vote1 is used before its driver appears). */
module voter_cells (x0, x1, x2, y0, y1, y2, vote0, vote1, good);
  input x0, x1, x2;
  input y0, y1, y2;
  output vote0, vote1, good;
  wire nboth;

  MAJ3 m0 (vote0, x0, x1, x2);          // positional: output first
  NAND2 g0 (.A(vote0), .B(vote1), .Y(nboth));
  MAJ3 m1 (.Y(vote1), .A(y0), .B(y1), .C(y2));
  INV g1 (good, nboth);
endmodule
