// cpsinw_shard_worker: executes one campaign shard per invocation.
//
// Protocol (shard_io version 1): a serialized shard work document arrives
// on stdin (circuit with preserved ids, the job's pattern set, the shard's
// universe slice, the shard's forked RNG state, execution options); the
// versioned ShardResult JSON leaves on stdout.  Exit codes: 0 success,
// 2 malformed input, 127 reserved (exec failure, reported by the parent).
//
// The --fail-mode flags deliberately misbehave *after* consuming stdin so
// the parent's failure paths (crash, timeout, malformed output, nonzero
// exit) can be exercised by tests without a second binary.
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

#include "engine/shard.hpp"
#include "engine/shard_io.hpp"
#include "faults/eval_context.hpp"
#include "util/log.hpp"

namespace {

constexpr const char* kUsage =
    "usage: cpsinw_shard_worker [--log-level debug|info|warn|error]\n"
    "                           [--fail-mode crash|hang|garbage|exit]\n"
    "                           [--fail-index N]\n"
    "Reads a shard_io v1 work document on stdin, writes the ShardResult\n"
    "JSON on stdout.  --log-level sets the stderr threshold (default\n"
    "warn).  --fail-mode misbehaves on purpose (test hook); --fail-index\n"
    "restricts it to the shard with that index (default: every shard).\n";

}  // namespace

int main(int argc, char** argv) {
  std::string fail_mode;
  int fail_index = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--log-level" && i + 1 < argc) {
      cpsinw::util::LogLevel level = cpsinw::util::LogLevel::kWarn;
      const std::string text = argv[++i];
      if (!cpsinw::util::parse_log_level(text, &level)) {
        std::cerr << "cpsinw_shard_worker: bad --log-level '" << text
                  << "'\n";
        return 2;
      }
      cpsinw::util::set_log_level(level);
    } else if (arg == "--fail-mode" && i + 1 < argc) {
      fail_mode = argv[++i];
    } else if (arg == "--fail-index" && i + 1 < argc) {
      fail_index = std::atoi(argv[++i]);
    } else {
      std::cerr << "cpsinw_shard_worker: unknown argument '" << arg << "'\n"
                << kUsage;
      return 2;
    }
  }

  std::string text;
  {
    char buf[1 << 16];
    std::streamsize n = 0;
    while ((std::cin.read(buf, sizeof buf), n = std::cin.gcount()) > 0)
      text.append(buf, static_cast<std::size_t>(n));
  }

  using namespace cpsinw;
  try {
    engine::ShardWorkInput input = engine::parse_shard_input(text);

    if (!fail_mode.empty() &&
        (fail_index < 0 || fail_index == input.shard.index)) {
      if (fail_mode == "crash") {
        (void)raise(SIGKILL);  // simulate a hard crash, no cleanup
      } else if (fail_mode == "hang") {
        for (;;) sleep(1000);  // simulate a wedged worker (parent kills us)
      } else if (fail_mode == "garbage") {
        std::cout << "this is not a shard result {{{" << std::endl;
        return 0;
      } else if (fail_mode == "exit") {
        return 3;
      } else {
        util::log_kv(util::LogLevel::kError, "unknown_fail_mode",
                     {{"fail_mode", fail_mode}});
        return 2;
      }
    }

    util::log_kv(util::LogLevel::kDebug, "shard",
                 {{"job", input.shard.job},
                  {"index", input.shard.index},
                  {"faults", static_cast<unsigned long long>(
                                 input.faults.size())}});
    const faults::EvalContext ctx(input.circuit, std::move(input.patterns));
    const engine::ShardResult result =
        engine::run_shard(ctx, input.faults, input.shard, input.options);
    std::cout << engine::serialize_shard_result(result) << "\n";
    return 0;
  } catch (const std::exception& e) {
    util::log_kv(util::LogLevel::kError, "shard_failed", {{"error", e.what()}});
    return 2;
  }
}
