// cpsinw_shard_stats: scrapes one or more live cpsinw_shard_server
// endpoints with the shard_io v1 `stats` request and prints each
// endpoint's telemetry snapshot as JSON on stdout (one line per
// endpoint, prefixed with "host:port "), so operators and CI can watch
// a serving fleet without restarting anything.
//
// Exit codes: 0 all endpoints answered (and passed --require-nonzero if
// given), 1 any endpoint failed to answer or failed the check, 2 usage
// error.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "engine/remote_executor.hpp"
#include "engine/shard_io.hpp"
#include "util/log.hpp"

namespace {

constexpr const char* kUsage =
    "usage: cpsinw_shard_stats [--timeout S] [--require-nonzero COUNTER]\n"
    "                          host:port [host:port ...]\n"
    "Sends the shard_io v1 `stats` request to every endpoint and prints\n"
    "each response as one JSON line prefixed with the endpoint.\n"
    "--require-nonzero exits 1 unless COUNTER is present and > 0 on every\n"
    "endpoint (e.g. server.cache_hits — CI uses this to assert the\n"
    "context cache actually served hits).\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace cpsinw;

  double timeout_s = 10.0;
  std::string require_nonzero;
  std::vector<std::string> endpoints;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--timeout" && i + 1 < argc) {
      timeout_s = std::atof(argv[++i]);
      if (!(timeout_s > 0.0)) {
        std::cerr << "cpsinw_shard_stats: bad --timeout\n";
        return 2;
      }
    } else if (arg == "--require-nonzero" && i + 1 < argc) {
      require_nonzero = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "cpsinw_shard_stats: unknown argument '" << arg << "'\n"
                << kUsage;
      return 2;
    } else {
      endpoints.push_back(arg);
    }
  }
  if (endpoints.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  bool ok = true;
  for (const std::string& endpoint : endpoints) {
    engine::ServerStats stats;
    std::string error;
    if (!engine::query_server_stats(endpoint, timeout_s, &stats, &error)) {
      util::log_kv(util::LogLevel::kError, "stats_failed",
                   {{"endpoint", endpoint}, {"error", error}});
      ok = false;
      continue;
    }
    std::cout << endpoint << " " << engine::serialize_stats_response(stats)
              << "\n";
    if (!require_nonzero.empty()) {
      const engine::telemetry::CounterValue* c =
          stats.metrics.find_counter(require_nonzero);
      if (c == nullptr || c->value == 0) {
        util::log_kv(util::LogLevel::kError, "counter_check_failed",
                     {{"endpoint", endpoint},
                      {"counter", require_nonzero},
                      {"value", c == nullptr ? 0ULL : c->value}});
        ok = false;
      }
    }
  }
  return ok ? 0 : 1;
}
