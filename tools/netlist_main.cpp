// cpsinw_netlist: the netlist ingestion CLI over the three accepted
// formats (.cpn, ISCAS-85 .bench, structural-Verilog subset; format
// picked by extension — see docs/FORMATS.md).
//
//   validate FILE...      parse + finalize each file, report diagnostics
//   stats FILE...         one JSON line of summary statistics per file
//   convert IN OUT        read IN, write OUT (formats from extensions)
//   gen NAME OUT          emit a generated benchmark circuit to OUT
//   gen --list            list the generator roster
//
// `gen` is how the 1k–10k-gate `.bench` fixtures under tests/data/ are
// produced at build time (parameterized names: alu_array_64,
// adder_tree_16x64, parity_tree_4096, ripple_adder_256, ...).
//
// Exit codes: 0 success, 1 any file failed to parse/convert, 2 usage
// error.
#include <exception>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "logic/benchmarks.hpp"
#include "logic/netlist_ingest.hpp"

namespace {

constexpr const char* kUsage =
    "usage: cpsinw_netlist validate FILE...\n"
    "       cpsinw_netlist stats FILE...\n"
    "       cpsinw_netlist convert IN OUT\n"
    "       cpsinw_netlist gen NAME OUT | gen --list\n"
    "Formats are selected by extension: .cpn (native), .bench (ISCAS-85\n"
    "combinational subset), .v/.sv (structural-Verilog subset).  See\n"
    "docs/FORMATS.md for the grammars and the foreign-gate cell mapping.\n";

/// Parses "<prefix>_<n>" into n; returns false when `name` does not
/// start with `prefix` + '_' or the tail is not a positive integer.
bool match_param(const std::string& name, const std::string& prefix,
                 int* n) {
  if (name.size() <= prefix.size() + 1 || name.compare(0, prefix.size(), prefix) != 0 ||
      name[prefix.size()] != '_')
    return false;
  const std::string tail = name.substr(prefix.size() + 1);
  for (const char c : tail)
    if (c < '0' || c > '9') return false;
  *n = std::stoi(tail);
  return *n > 0;
}

/// Parses "adder_tree_<ops>x<bits>".
bool match_adder_tree(const std::string& name, int* ops, int* bits) {
  const std::string prefix = "adder_tree_";
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  const std::string tail = name.substr(prefix.size());
  const auto x = tail.find('x');
  if (x == std::string::npos || x == 0 || x + 1 >= tail.size()) return false;
  for (std::size_t i = 0; i < tail.size(); ++i)
    if (i != x && (tail[i] < '0' || tail[i] > '9')) return false;
  *ops = std::stoi(tail.substr(0, x));
  *bits = std::stoi(tail.substr(x + 1));
  return *ops > 1 && *bits > 0;
}

constexpr const char* kGenRoster =
    "c17                  the classic 6-NAND benchmark\n"
    "full_adder           XOR3 + MAJ3 single-bit adder\n"
    "ripple_adder_<N>     N-bit ripple-carry adder\n"
    "parity_tree_<N>      N-leaf XOR3/XOR2 parity tree\n"
    "xor3_chain_<N>       N-leaf XOR3-only parity chain (odd N)\n"
    "alu_array_<N>        N carry-chained ALU slices (~24 gates each)\n"
    "adder_tree_<N>x<B>   sum of N B-bit words via a ripple-adder tree\n"
    "tmr_voter_<N>        N-channel MAJ3 voter with AND-reduce\n";

cpsinw::logic::Circuit generate(const std::string& name) {
  using namespace cpsinw::logic;
  int n = 0;
  int bits = 0;
  if (name == "c17") return c17();
  if (name == "full_adder") return full_adder();
  if (match_param(name, "ripple_adder", &n)) return ripple_adder(n);
  if (match_param(name, "parity_tree", &n)) return parity_tree(n);
  if (match_param(name, "xor3_chain", &n)) return xor3_parity_chain(n);
  if (match_param(name, "alu_array", &n)) return alu_array(n);
  if (match_param(name, "tmr_voter", &n)) return tmr_voter(n);
  if (match_adder_tree(name, &n, &bits)) return adder_tree(n, bits);
  throw std::invalid_argument("unknown generator '" + name +
                              "' (try: gen --list)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpsinw;

  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    std::cout << kUsage;
    return args.empty() ? 2 : 0;
  }
  const std::string cmd = args[0];

  if (cmd == "validate" || cmd == "stats") {
    if (args.size() < 2) {
      std::cerr << kUsage;
      return 2;
    }
    bool ok = true;
    for (std::size_t i = 1; i < args.size(); ++i) {
      const std::string& path = args[i];
      try {
        const logic::Circuit ckt = logic::load_circuit_file(path);
        const logic::CircuitStats stats = logic::circuit_stats(ckt);
        if (cmd == "stats") {
          std::string json = logic::stats_json(stats);
          std::cout << "{\"file\":\"" << path << "\",\"format\":\""
                    << logic::to_string(logic::format_from_path(path))
                    << "\"," << json.substr(1) << "\n";
        } else {
          std::cout << path << ": OK (" << stats.gates << " gates, "
                    << stats.nets << " nets, " << stats.levels
                    << " levels)\n";
        }
      } catch (const std::exception& e) {
        std::cerr << path << ": " << e.what() << "\n";
        ok = false;
      }
    }
    return ok ? 0 : 1;
  }

  if (cmd == "convert") {
    if (args.size() != 3) {
      std::cerr << kUsage;
      return 2;
    }
    try {
      const logic::Circuit ckt = logic::load_circuit_file(args[1]);
      logic::save_circuit_file(ckt, args[2]);
      const logic::CircuitStats stats = logic::circuit_stats(ckt);
      std::cout << args[1] << " -> " << args[2] << " (" << stats.gates
                << " gates)\n";
    } catch (const std::exception& e) {
      std::cerr << "convert: " << e.what() << "\n";
      return 1;
    }
    return 0;
  }

  if (cmd == "gen") {
    if (args.size() == 2 && args[1] == "--list") {
      std::cout << kGenRoster;
      return 0;
    }
    if (args.size() != 3) {
      std::cerr << kUsage;
      return 2;
    }
    try {
      const logic::Circuit ckt = generate(args[1]);
      logic::save_circuit_file(ckt, args[2]);
      const logic::CircuitStats stats = logic::circuit_stats(ckt);
      std::cout << args[1] << " -> " << args[2] << " (" << stats.gates
                << " gates, " << stats.levels << " levels)\n";
    } catch (const std::exception& e) {
      std::cerr << "gen: " << e.what() << "\n";
      return 1;
    }
    return 0;
  }

  std::cerr << "cpsinw_netlist: unknown command '" << cmd << "'\n"
            << kUsage;
  return 2;
}
