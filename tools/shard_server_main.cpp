// cpsinw_shard_server: serves campaign shards to remote campaigns over
// TCP.  One listening socket, one thread per accepted connection; each
// connection carries any number of framed shard_io v1 exchanges — the
// client sends a shard work document in a net frame, the server answers
// with the framed ShardResult JSON.  The documents are byte-identical to
// the subprocess worker's stdin/stdout, so a shard produces the same
// bytes whether it runs inline, in a forked worker, or on another host.
//
// stdout carries exactly one line ("... listening on <port>") so a
// spawner using --port 0 can discover the kernel-assigned port; all
// diagnostics go to stderr.
//
// The --fail-mode flags misbehave on purpose *after* parsing the request
// so tests can exercise every client failure path: disconnect (close with
// no reply), garbage (a well-framed non-result payload), oversized (a
// header declaring a payload past the frame limit), hang (never reply —
// the client's per-shard deadline fires), exit (the whole server dies —
// later connections are refused).
//
// Context caching: shards of one job share a (circuit, pattern set), so
// the server memoizes the last compiled faults::EvalContext by content
// fingerprint (engine::context_fingerprint — exact byte equality, never a
// hash comparison).  Every shard of a job after the first skips circuit
// compilation and the good-machine simulation; hit/miss counters ride on
// the per-shard log line.
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/net.hpp"
#include "engine/shard.hpp"
#include "engine/shard_io.hpp"
#include "faults/eval_context.hpp"

namespace {

namespace net = cpsinw::engine::net;

constexpr const char* kUsage =
    "usage: cpsinw_shard_server [--port N]\n"
    "                           [--fail-mode disconnect|garbage|oversized|"
    "hang|exit]\n"
    "                           [--fail-index N]\n"
    "Serves framed shard_io v1 work documents over loopback TCP (port 0 =\n"
    "kernel-assigned, advertised on stdout).  --fail-mode misbehaves on\n"
    "purpose (test hook); --fail-index restricts it to the shard with that\n"
    "index (default: every shard).\n";

struct ServerConfig {
  std::string fail_mode;
  int fail_index = -1;
};

/// One memoized (circuit, pattern set) compilation.  The circuit is owned
/// here because the EvalContext borrows it; shared_ptr keeps an entry
/// alive for in-flight shards even after a newer job replaces it.
struct CachedJob {
  explicit CachedJob(cpsinw::logic::Circuit c) : circuit(std::move(c)) {}
  cpsinw::logic::Circuit circuit;
  std::optional<cpsinw::faults::EvalContext> ctx;
};

/// Last-job context cache shared by every connection thread.
struct ContextCache {
  std::mutex mutex;
  std::string fingerprint;
  std::shared_ptr<const CachedJob> entry;
  std::size_t hits = 0;
  std::size_t misses = 0;
};

ContextCache g_context_cache;

/// An idle client connection is held open this long before the server
/// gives up on it (clients open one connection per shard and close it).
constexpr double kIdleTimeoutS = 3600.0;

void serve_connection(int fd, const ServerConfig& config) {
  using namespace cpsinw;
  while (true) {
    std::string request;
    std::string error;
    if (!net::recv_frame(fd, &request, net::deadline_after(kIdleTimeoutS),
                         net::kMaxFrameBytes, &error)) {
      // Empty error = the client closed between frames: a normal goodbye.
      if (!error.empty())
        std::cerr << "cpsinw_shard_server: recv: " << error << "\n";
      break;
    }

    engine::ShardWorkInput input;
    try {
      input = engine::parse_shard_input(request);
    } catch (const std::exception& e) {
      std::cerr << "cpsinw_shard_server: bad request: " << e.what() << "\n";
      break;
    }

    if (!config.fail_mode.empty() &&
        (config.fail_index < 0 || config.fail_index == input.shard.index)) {
      if (config.fail_mode == "disconnect") break;
      if (config.fail_mode == "garbage") {
        (void)net::send_frame(fd, "this is not a shard result {{{",
                              net::deadline_after(kIdleTimeoutS), &error);
        continue;
      }
      if (config.fail_mode == "oversized") {
        // A frame header declaring more than any client will accept; the
        // client must reject it before reading a single payload byte.
        const std::string header =
            std::string(net::kFrameMagic) + " " +
            std::to_string(net::kMaxFrameBytes * 4) + "\n";
        const ssize_t n = write(fd, header.data(), header.size());
        (void)n;  // header only: the declared payload never comes
        break;
      }
      if (config.fail_mode == "hang") {
        for (;;) sleep(1000);  // wedged endpoint; the client deadline fires
      }
      if (config.fail_mode == "exit") {
        std::cerr << "cpsinw_shard_server: --fail-mode exit\n";
        _exit(3);
      }
      std::cerr << "cpsinw_shard_server: unknown --fail-mode '"
                << config.fail_mode << "'\n";
      break;
    }

    // Everything downstream of the parse can still throw (a semantically
    // inconsistent fault list, an unbuildable context, bad_alloc on a
    // huge document); an escape here would std::terminate the whole
    // server from a detached thread.  One bad request costs one
    // connection, never the endpoint.
    try {
      const std::string fp =
          engine::context_fingerprint(input.circuit, input.patterns);
      std::shared_ptr<const CachedJob> job;
      bool hit = false;
      std::size_t hits = 0;
      std::size_t misses = 0;
      {
        std::lock_guard<std::mutex> lock(g_context_cache.mutex);
        if (g_context_cache.entry != nullptr &&
            g_context_cache.fingerprint == fp) {
          job = g_context_cache.entry;
          hit = true;
          hits = ++g_context_cache.hits;
          misses = g_context_cache.misses;
        }
      }
      if (job == nullptr) {
        // Compile outside the lock: a slow build must not stall the
        // shards of another connection that already have their context.
        auto built = std::make_shared<CachedJob>(std::move(input.circuit));
        built->ctx.emplace(built->circuit, std::move(input.patterns));
        job = built;
        std::lock_guard<std::mutex> lock(g_context_cache.mutex);
        g_context_cache.fingerprint = fp;
        g_context_cache.entry = job;
        misses = ++g_context_cache.misses;
        hits = g_context_cache.hits;
      }
      std::cerr << "cpsinw_shard_server: shard job=" << input.shard.job
                << " index=" << input.shard.index << " context "
                << (hit ? "hit" : "miss") << " fp=" << std::hex
                << engine::fingerprint_hash(fp) << std::dec
                << " (hits=" << hits << " misses=" << misses << ")\n";
      const engine::ShardResult result =
          engine::run_shard(*job->ctx, input.faults, input.shard,
                            input.options);
      if (!net::send_frame(fd, engine::serialize_shard_result(result),
                           net::deadline_after(kIdleTimeoutS), &error)) {
        std::cerr << "cpsinw_shard_server: send: " << error << "\n";
        break;
      }
    } catch (const std::exception& e) {
      std::cerr << "cpsinw_shard_server: shard failed: " << e.what() << "\n";
      break;  // close with no reply; the client fails over
    }
  }
  close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpsinw;

  // A client that hits its deadline closes mid-reply; the resulting EPIPE
  // must not take the whole server (and every other campaign) down.
  std::signal(SIGPIPE, SIG_IGN);

  long port = 0;
  ServerConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--port" && i + 1 < argc) {
      const std::string text = argv[++i];
      // Digits only: a typo must be a usage error, not a silent fallback
      // to port 0 (kernel-assigned) that nothing points at.
      if (text.empty() ||
          text.find_first_not_of("0123456789") != std::string::npos) {
        std::cerr << "cpsinw_shard_server: bad --port '" << text << "'\n";
        return 2;
      }
      port = std::strtol(text.c_str(), nullptr, 10);
      if (port > 65535) {
        std::cerr << "cpsinw_shard_server: bad --port '" << text << "'\n";
        return 2;
      }
    } else if (arg == "--fail-mode" && i + 1 < argc) {
      config.fail_mode = argv[++i];
    } else if (arg == "--fail-index" && i + 1 < argc) {
      config.fail_index = std::atoi(argv[++i]);
    } else {
      std::cerr << "cpsinw_shard_server: unknown argument '" << arg << "'\n"
                << kUsage;
      return 2;
    }
  }

  std::string error;
  const int listen_fd =
      net::listen_on_loopback(static_cast<std::uint16_t>(port), &error);
  if (listen_fd < 0) {
    std::cerr << "cpsinw_shard_server: " << error << "\n";
    return 1;
  }

  std::cout << "cpsinw_shard_server listening on " << net::local_port(listen_fd)
            << std::endl;  // the only stdout line; spawners parse it

  while (true) {
    const int fd = net::accept_connection(listen_fd, &error);
    if (fd < 0) {
      // Transient accept failures (EMFILE/ENFILE when connection threads
      // hold many fds, resource pressure) must not down the endpoint for
      // every campaign pointed at it: log, back off, keep serving.
      std::cerr << "cpsinw_shard_server: " << error << "\n";
      usleep(100 * 1000);
      continue;
    }
    std::thread(serve_connection, fd, config).detach();
  }
}
