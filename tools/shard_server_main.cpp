// cpsinw_shard_server: serves campaign shards to remote campaigns over
// TCP.  One listening socket, one thread per accepted connection; each
// connection carries any number of framed shard_io v1 exchanges — the
// client sends a shard work document in a net frame, the server answers
// with the framed ShardResult JSON.  The documents are byte-identical to
// the subprocess worker's stdin/stdout, so a shard produces the same
// bytes whether it runs inline, in a forked worker, or on another host.
//
// Besides work documents, a connection may send the tiny shard_io v1
// `stats` request and gets a live telemetry snapshot back (uptime,
// shards served, context-cache hit counters, per-shard latency
// histogram) — see `cpsinw_shard_stats` for a ready-made scraper.
//
// stdout carries exactly one line ("... listening on <port>") so a
// spawner using --port 0 can discover the kernel-assigned port; all
// diagnostics go to stderr through the structured logger (leveled
// `event key=value` lines, one atomic write each; --log-level picks the
// threshold, default info).
//
// The --fail-mode flags misbehave on purpose *after* parsing the request
// so tests can exercise every client failure path: disconnect (close with
// no reply), garbage (a well-framed non-result payload), oversized (a
// header declaring a payload past the frame limit), hang (never reply —
// the client's per-shard deadline fires), exit (the whole server dies —
// later connections are refused).
//
// Context caching: shards of one job share a (circuit, pattern set), so
// the server memoizes the last compiled faults::EvalContext by content
// fingerprint (engine::context_fingerprint — exact byte equality, never a
// hash comparison).  Every shard of a job after the first skips circuit
// compilation and the good-machine simulation; hit/miss counters ride on
// the per-shard log line and on the stats snapshot.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/net.hpp"
#include "engine/shard.hpp"
#include "engine/shard_io.hpp"
#include "engine/telemetry.hpp"
#include "faults/eval_context.hpp"
#include "util/log.hpp"

namespace {

namespace net = cpsinw::engine::net;
namespace telemetry = cpsinw::engine::telemetry;
using cpsinw::util::LogLevel;

constexpr const char* kUsage =
    "usage: cpsinw_shard_server [--port N]\n"
    "                           [--log-level debug|info|warn|error]\n"
    "                           [--fail-mode disconnect|garbage|oversized|"
    "hang|exit]\n"
    "                           [--fail-index N]\n"
    "Serves framed shard_io v1 work documents over loopback TCP (port 0 =\n"
    "kernel-assigned, advertised on stdout).  Also answers the shard_io\n"
    "`stats` request with a live telemetry snapshot.  --log-level sets the\n"
    "stderr threshold (default info).  --fail-mode misbehaves on purpose\n"
    "(test hook); --fail-index restricts it to the shard with that index\n"
    "(default: every shard).\n";

struct ServerConfig {
  std::string fail_mode;
  int fail_index = -1;
};

/// One memoized (circuit, pattern set) compilation.  The circuit is owned
/// here because the EvalContext borrows it; shared_ptr keeps an entry
/// alive for in-flight shards even after a newer job replaces it.
struct CachedJob {
  explicit CachedJob(cpsinw::logic::Circuit c) : circuit(std::move(c)) {}
  cpsinw::logic::Circuit circuit;
  std::optional<cpsinw::faults::EvalContext> ctx;
};

/// Last-job context cache shared by every connection thread.
struct ContextCache {
  std::mutex mutex;
  std::string fingerprint;
  std::shared_ptr<const CachedJob> entry;
  std::size_t hits = 0;
  std::size_t misses = 0;
};

ContextCache g_context_cache;

/// Server start time, for the uptime_s field of the stats response.
telemetry::TimePoint g_start_time;

/// An idle client connection is held open this long before the server
/// gives up on it (clients open one connection per shard and close it).
constexpr double kIdleTimeoutS = 3600.0;

void serve_connection(int fd, const ServerConfig& config) {
  using namespace cpsinw;
  // Metric references are resolved once per connection, never per frame.
  telemetry::Registry& reg = telemetry::Registry::global();
  telemetry::Counter& shards_served = reg.counter("server.shards_served");
  telemetry::Counter& stats_served = reg.counter("server.stats_served");
  telemetry::Counter& cache_hits = reg.counter("server.cache_hits");
  telemetry::Counter& cache_misses = reg.counter("server.cache_misses");
  telemetry::Counter& bad_requests = reg.counter("server.bad_requests");
  telemetry::Histogram& shard_exec_s = reg.histogram("server.shard_exec_s");
  telemetry::Histogram& compile_s = reg.histogram("server.context_compile_s");

  while (true) {
    std::string request;
    std::string error;
    if (!net::recv_frame(fd, &request, net::deadline_after(kIdleTimeoutS),
                         net::kMaxFrameBytes, &error)) {
      // Empty error = the client closed between frames: a normal goodbye.
      if (!error.empty())
        util::log_kv(LogLevel::kWarn, "recv_failed", {{"error", error}});
      break;
    }

    if (engine::is_stats_request(request)) {
      engine::ServerStats stats;
      stats.uptime_s = std::chrono::duration<double>(telemetry::Clock::now() -
                                                     g_start_time)
                           .count();
      stats_served.add();
      stats.metrics = reg.snapshot();
      if (!net::send_frame(fd, engine::serialize_stats_response(stats),
                           net::deadline_after(kIdleTimeoutS), &error)) {
        util::log_kv(LogLevel::kWarn, "send_failed", {{"error", error}});
        break;
      }
      continue;
    }

    engine::ShardWorkInput input;
    try {
      input = engine::parse_shard_input(request);
    } catch (const std::exception& e) {
      bad_requests.add();
      util::log_kv(LogLevel::kWarn, "bad_request", {{"error", e.what()}});
      break;
    }

    if (!config.fail_mode.empty() &&
        (config.fail_index < 0 || config.fail_index == input.shard.index)) {
      if (config.fail_mode == "disconnect") break;
      if (config.fail_mode == "garbage") {
        (void)net::send_frame(fd, "this is not a shard result {{{",
                              net::deadline_after(kIdleTimeoutS), &error);
        continue;
      }
      if (config.fail_mode == "oversized") {
        // A frame header declaring more than any client will accept; the
        // client must reject it before reading a single payload byte.
        const std::string header =
            std::string(net::kFrameMagic) + " " +
            std::to_string(net::kMaxFrameBytes * 4) + "\n";
        const ssize_t n = write(fd, header.data(), header.size());
        (void)n;  // header only: the declared payload never comes
        break;
      }
      if (config.fail_mode == "hang") {
        for (;;) sleep(1000);  // wedged endpoint; the client deadline fires
      }
      if (config.fail_mode == "exit") {
        util::log_kv(LogLevel::kError, "fail_mode_exit", {});
        _exit(3);
      }
      util::log_kv(LogLevel::kError, "unknown_fail_mode",
                   {{"fail_mode", config.fail_mode}});
      break;
    }

    // Everything downstream of the parse can still throw (a semantically
    // inconsistent fault list, an unbuildable context, bad_alloc on a
    // huge document); an escape here would std::terminate the whole
    // server from a detached thread.  One bad request costs one
    // connection, never the endpoint.
    try {
      const std::string fp =
          engine::context_fingerprint(input.circuit, input.patterns);
      std::shared_ptr<const CachedJob> job;
      bool hit = false;
      std::size_t hits = 0;
      std::size_t misses = 0;
      {
        std::lock_guard<std::mutex> lock(g_context_cache.mutex);
        if (g_context_cache.entry != nullptr &&
            g_context_cache.fingerprint == fp) {
          job = g_context_cache.entry;
          hit = true;
          hits = ++g_context_cache.hits;
          misses = g_context_cache.misses;
        }
      }
      if (job == nullptr) {
        // Compile outside the lock: a slow build must not stall the
        // shards of another connection that already have their context.
        const telemetry::TimePoint compile_start = telemetry::Clock::now();
        auto built = std::make_shared<CachedJob>(std::move(input.circuit));
        built->ctx.emplace(built->circuit, std::move(input.patterns));
        compile_s.record_since(compile_start);
        job = built;
        std::lock_guard<std::mutex> lock(g_context_cache.mutex);
        g_context_cache.fingerprint = fp;
        g_context_cache.entry = job;
        misses = ++g_context_cache.misses;
        hits = g_context_cache.hits;
      }
      if (hit)
        cache_hits.add();
      else
        cache_misses.add();
      {
        char fp_hex[24];
        std::snprintf(fp_hex, sizeof(fp_hex), "%llx",
                      static_cast<unsigned long long>(
                          engine::fingerprint_hash(fp)));
        util::log_kv(LogLevel::kInfo, "shard",
                     {{"job", input.shard.job},
                      {"index", input.shard.index},
                      {"context", hit ? "hit" : "miss"},
                      {"fp", fp_hex},
                      {"hits", static_cast<unsigned long long>(hits)},
                      {"misses", static_cast<unsigned long long>(misses)}});
      }
      const telemetry::TimePoint exec_start = telemetry::Clock::now();
      const engine::ShardResult result =
          engine::run_shard(*job->ctx, input.faults, input.shard,
                            input.options);
      shard_exec_s.record_since(exec_start);
      shards_served.add();
      if (!net::send_frame(fd, engine::serialize_shard_result(result),
                           net::deadline_after(kIdleTimeoutS), &error)) {
        util::log_kv(LogLevel::kWarn, "send_failed", {{"error", error}});
        break;
      }
    } catch (const std::exception& e) {
      bad_requests.add();
      util::log_kv(LogLevel::kError, "shard_failed", {{"error", e.what()}});
      break;  // close with no reply; the client fails over
    }
  }
  close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpsinw;

  // A client that hits its deadline closes mid-reply; the resulting EPIPE
  // must not take the whole server (and every other campaign) down.
  std::signal(SIGPIPE, SIG_IGN);

  // Long-running endpoint: per-shard lines are the operational log, so
  // the default threshold is info (the library default is warn).
  util::set_log_level(util::LogLevel::kInfo);

  long port = 0;
  ServerConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--port" && i + 1 < argc) {
      const std::string text = argv[++i];
      // Digits only: a typo must be a usage error, not a silent fallback
      // to port 0 (kernel-assigned) that nothing points at.
      if (text.empty() ||
          text.find_first_not_of("0123456789") != std::string::npos) {
        std::cerr << "cpsinw_shard_server: bad --port '" << text << "'\n";
        return 2;
      }
      port = std::strtol(text.c_str(), nullptr, 10);
      if (port > 65535) {
        std::cerr << "cpsinw_shard_server: bad --port '" << text << "'\n";
        return 2;
      }
    } else if (arg == "--log-level" && i + 1 < argc) {
      util::LogLevel level = util::LogLevel::kInfo;
      const std::string text = argv[++i];
      if (!util::parse_log_level(text, &level)) {
        std::cerr << "cpsinw_shard_server: bad --log-level '" << text
                  << "'\n";
        return 2;
      }
      util::set_log_level(level);
    } else if (arg == "--fail-mode" && i + 1 < argc) {
      config.fail_mode = argv[++i];
    } else if (arg == "--fail-index" && i + 1 < argc) {
      config.fail_index = std::atoi(argv[++i]);
    } else {
      std::cerr << "cpsinw_shard_server: unknown argument '" << arg << "'\n"
                << kUsage;
      return 2;
    }
  }

  std::string error;
  const int listen_fd =
      net::listen_on_loopback(static_cast<std::uint16_t>(port), &error);
  if (listen_fd < 0) {
    util::log_kv(util::LogLevel::kError, "listen_failed", {{"error", error}});
    return 1;
  }

  g_start_time = telemetry::Clock::now();

  std::cout << "cpsinw_shard_server listening on " << net::local_port(listen_fd)
            << std::endl;  // the only stdout line; spawners parse it

  while (true) {
    const int fd = net::accept_connection(listen_fd, &error);
    if (fd < 0) {
      // Transient accept failures (EMFILE/ENFILE when connection threads
      // hold many fds, resource pressure) must not down the endpoint for
      // every campaign pointed at it: log, back off, keep serving.
      util::log_kv(util::LogLevel::kWarn, "accept_failed", {{"error", error}});
      usleep(100 * 1000);
      continue;
    }
    telemetry::Registry::global().counter("server.connections").add();
    std::thread(serve_connection, fd, config).detach();
  }
}
