#include "logic/circuit.hpp"

#include <queue>
#include <stdexcept>

namespace cpsinw::logic {

NetId Circuit::add_net(std::string name) {
  if (name.empty()) name = "_n" + std::to_string(anon_counter_++);
  if (net_by_name_.count(name) != 0)
    throw std::invalid_argument("Circuit: duplicate net '" + name + "'");
  const NetId id = static_cast<NetId>(net_names_.size());
  net_names_.push_back(name);
  net_by_name_.emplace(std::move(name), id);
  driver_.push_back(-1);
  constants_.push_back(LogicV::kX);
  is_pi_.push_back(0);
  fanout_.emplace_back();
  finalized_ = false;
  return id;
}

NetId Circuit::add_primary_input(std::string name) {
  const NetId id = add_net(std::move(name));
  is_pi_[static_cast<std::size_t>(id)] = 1;
  pis_.push_back(id);
  return id;
}

NetId Circuit::add_constant(LogicV value, std::string name) {
  if (!is_binary(value))
    throw std::invalid_argument("Circuit: constants must be 0 or 1");
  if (name.empty())
    name = value == LogicV::k1 ? "_const1" : "_const0";
  const auto it = net_by_name_.find(name);
  if (it != net_by_name_.end()) return it->second;  // share constant nets
  const NetId id = add_net(std::move(name));
  constants_[static_cast<std::size_t>(id)] = value;
  return id;
}

void Circuit::mark_primary_output(NetId net) {
  check_net(net);
  pos_.push_back(net);
}

int Circuit::add_gate(gates::CellKind kind, const std::vector<NetId>& ins,
                      NetId out, std::string name) {
  const int arity = gates::input_count(kind);
  if (static_cast<int>(ins.size()) != arity)
    throw std::invalid_argument("Circuit: gate arity mismatch");
  for (const NetId n : ins) check_net(n);
  check_net(out);
  if (driver_[static_cast<std::size_t>(out)] != -1 ||
      is_pi_[static_cast<std::size_t>(out)] != 0 ||
      is_binary(constants_[static_cast<std::size_t>(out)]))
    throw std::invalid_argument("Circuit: net '" + net_name(out) +
                                "' already driven");
  GateInst g;
  g.id = static_cast<int>(gates_.size());
  g.kind = kind;
  for (std::size_t i = 0; i < ins.size(); ++i) g.in[i] = ins[i];
  g.out = out;
  g.name = name.empty() ? std::string(gates::to_string(kind)) + "_" +
                              std::to_string(g.id)
                        : std::move(name);
  driver_[static_cast<std::size_t>(out)] = g.id;
  for (const NetId n : ins) fanout_[static_cast<std::size_t>(n)].push_back(g.id);
  gates_.push_back(g);
  finalized_ = false;
  return g.id;
}

void Circuit::finalize() {
  // Every net must be driven by exactly one of: gate, PI, constant.
  for (NetId n = 0; n < net_count(); ++n) {
    const bool driven = driver_[static_cast<std::size_t>(n)] != -1 ||
                        is_pi_[static_cast<std::size_t>(n)] != 0 ||
                        is_binary(constants_[static_cast<std::size_t>(n)]);
    if (!driven)
      throw std::runtime_error("Circuit: undriven net '" + net_name(n) + "'");
  }
  // Kahn topological sort over gate dependencies.
  std::vector<int> indeg(gates_.size(), 0);
  for (const GateInst& g : gates_) {
    for (int i = 0; i < g.input_count(); ++i) {
      const int d = driver_[static_cast<std::size_t>(g.in[static_cast<std::size_t>(i)])];
      if (d != -1) ++indeg[static_cast<std::size_t>(g.id)];
    }
  }
  std::queue<int> ready;
  for (const GateInst& g : gates_)
    if (indeg[static_cast<std::size_t>(g.id)] == 0) ready.push(g.id);
  topo_.clear();
  topo_.reserve(gates_.size());
  while (!ready.empty()) {
    const int gid = ready.front();
    ready.pop();
    topo_.push_back(gid);
    const GateInst& g = gates_[static_cast<std::size_t>(gid)];
    for (const int succ : fanout_[static_cast<std::size_t>(g.out)]) {
      if (--indeg[static_cast<std::size_t>(succ)] == 0) ready.push(succ);
    }
  }
  if (topo_.size() != gates_.size())
    throw std::runtime_error("Circuit: combinational cycle detected");
  finalized_ = true;
}

const std::vector<int>& Circuit::topo_order() const {
  if (!finalized_)
    throw std::runtime_error("Circuit: call finalize() before topo_order()");
  return topo_;
}

bool Circuit::is_primary_input(NetId net) const {
  check_net(net);
  return is_pi_[static_cast<std::size_t>(net)] != 0;
}

NetId Circuit::find_net(std::string_view name) const {
  const auto it = net_by_name_.find(std::string(name));
  if (it == net_by_name_.end())
    throw std::out_of_range("Circuit: unknown net '" + std::string(name) +
                            "'");
  return it->second;
}

int Circuit::transistor_count() const {
  int total = 0;
  for (const GateInst& g : gates_)
    total += static_cast<int>(gates::cell(g.kind).transistors.size());
  return total;
}

void Circuit::check_net(NetId net) const {
  if (net < 0 || net >= net_count())
    throw std::out_of_range("Circuit: net id out of range");
}

}  // namespace cpsinw::logic
