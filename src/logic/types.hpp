// Four-valued logic for gate-level simulation.
#pragma once

#include <cstdint>

namespace cpsinw::logic {

/// Simulation value of a net.
enum class LogicV : std::int8_t {
  k0 = 0,
  k1 = 1,
  kX = -1,  ///< unknown / unresolvable
  kZ = -2,  ///< floating (only transiently at a faulty gate output)
};

/// Readable value name ("0", "1", "X", "Z").
[[nodiscard]] constexpr const char* to_string(LogicV v) {
  switch (v) {
    case LogicV::k0: return "0";
    case LogicV::k1: return "1";
    case LogicV::kX: return "X";
    case LogicV::kZ: return "Z";
  }
  return "?";
}

/// True for a defined binary value.
[[nodiscard]] constexpr bool is_binary(LogicV v) {
  return v == LogicV::k0 || v == LogicV::k1;
}

/// Converts a bool to LogicV.
[[nodiscard]] constexpr LogicV from_bool(bool b) {
  return b ? LogicV::k1 : LogicV::k0;
}

/// Inverts a value (X/Z stay X).
[[nodiscard]] constexpr LogicV logic_not(LogicV v) {
  if (v == LogicV::k0) return LogicV::k1;
  if (v == LogicV::k1) return LogicV::k0;
  return LogicV::kX;
}

}  // namespace cpsinw::logic
