// Gate-level logic simulation: scalar 4-valued evaluation (good machine and
// single-fault machines based on the switch-level fault dictionaries) and
// 64-pattern-parallel bit-level evaluation for fast fault simulation.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "gates/fault_dictionary.hpp"
#include "logic/circuit.hpp"
#include "logic/compiled_circuit.hpp"

namespace cpsinw::logic {

/// One fully- or partially-specified input pattern (indexed like
/// Circuit::primary_inputs()).
using Pattern = std::vector<LogicV>;

/// A transistor fault attached to a circuit gate.
struct GateFault {
  int gate = -1;
  gates::CellFault cell_fault;

  [[nodiscard]] bool operator==(const GateFault&) const = default;
};

/// Result of one scalar simulation pass.
struct SimResult {
  std::vector<LogicV> net_values;  ///< indexed by NetId
  /// True when the faulted gate sat in a contention row (elevated IDDQ) —
  /// the circuit-level IDDQ observable of the paper's polarity faults.
  bool iddq_flag = false;

  [[nodiscard]] LogicV value(NetId n) const {
    // Hot path: net ids come from the compiler / the circuit itself, so
    // bounds are a debug assertion, not a per-read check.
    assert(n >= 0 && static_cast<std::size_t>(n) < net_values.size());
    return net_values[static_cast<std::size_t>(n)];
  }
};

/// Scalar simulator.  Stateless between calls unless the caller threads a
/// `state` vector through (needed for the floating-output retention of
/// stuck-open faults across two-pattern sequences).  Construction compiles
/// the circuit once (logic::CompiledCircuit); every pass then runs off the
/// levelized table-driven kernels.
class Simulator {
 public:
  /// @param ckt finalized circuit (kept by reference; must outlive this)
  explicit Simulator(const Circuit& ckt);

  /// Good-machine evaluation.
  [[nodiscard]] SimResult simulate(const Pattern& pattern) const;

  /// Single-fault evaluation.  The faulted gate's output is produced by its
  /// switch-level fault dictionary; a floating (Z) output retains the value
  /// from `previous_state` (or X when absent).
  [[nodiscard]] SimResult simulate_faulty(
      const Pattern& pattern, const GateFault& fault,
      const std::vector<LogicV>* previous_state = nullptr) const;

  /// As simulate_faulty, but with a caller-provided (cached) dictionary —
  /// the fault-simulation hot path avoids re-deriving it per pattern.
  [[nodiscard]] SimResult simulate_faulty_with(
      const Pattern& pattern, const GateFault& fault,
      const gates::FaultAnalysis& analysis,
      const std::vector<LogicV>* previous_state = nullptr) const;

  /// Local input vector seen by a gate given net values; bit i = pin i.
  /// Returns nullopt when any pin is non-binary.
  [[nodiscard]] static std::optional<unsigned> local_input(
      const GateInst& gate, const std::vector<LogicV>& values);

  [[nodiscard]] const Circuit& circuit() const { return ckt_; }

  /// The one-time compilation backing every pass (shared with the fault
  /// simulator's packed paths).
  [[nodiscard]] const CompiledCircuit& compiled() const { return cc_; }

 private:
  const Circuit& ckt_;
  CompiledCircuit cc_;
};

/// 64-pattern-parallel words: bit k of `ones`/`zeros` tells whether the net
/// is 1/0 in pattern k.  Patterns must be fully specified.
struct PackedValues {
  std::vector<std::uint64_t> word;  ///< per net: bit k = value in pattern k
};

/// Packs up to 64 fully-specified patterns (bit k = pattern index k).
/// @throws std::invalid_argument for >64 patterns or X inputs
[[nodiscard]] std::vector<std::uint64_t> pack_patterns(
    const Circuit& ckt, const std::vector<Pattern>& patterns);

/// Parallel good-machine simulation of up to 64 packed patterns.
/// Interpreted reference implementation (walks GateInst records directly);
/// the hot paths run CompiledCircuit::eval_packed instead, which is
/// bit-identical — the golden suites compare the two.
/// @param pi_words per-PI packed values (as from pack_patterns)
/// @returns per-net packed values
[[nodiscard]] std::vector<std::uint64_t> simulate_packed(
    const Circuit& ckt, const std::vector<std::uint64_t>& pi_words);

/// Word-level evaluation of one cell function.
[[nodiscard]] std::uint64_t eval_cell_packed(gates::CellKind kind,
                                             std::uint64_t a,
                                             std::uint64_t b,
                                             std::uint64_t c);

/// X-aware scalar evaluation of one cell: enumerates the binary
/// completions of X inputs and returns the output when they all agree,
/// X otherwise (no false pessimism on e.g. NAND(0, X) = 1).
[[nodiscard]] LogicV eval_cell_x(gates::CellKind kind, LogicV a,
                                 LogicV b = LogicV::kX,
                                 LogicV c = LogicV::kX);

}  // namespace cpsinw::logic
