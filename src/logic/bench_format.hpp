// ISCAS-85/89-style `.bench` netlist format.  Example:
//
//   # c17-like fragment
//   INPUT(G1)
//   INPUT(G2)
//   OUTPUT(G22)
//   G10 = NAND(G1, G3)
//   G22 = NAND(G10, G16)
//
// The reader accepts the combinational subset: `INPUT(x)`, `OUTPUT(y)`,
// `dest = GATE(a, b, ...)` with GATE in
// AND/NAND/OR/NOR/XOR/XNOR/NOT/BUF(F) at any arity, `#` comments, and one
// statement per line.  Sequential elements (DFF) are rejected with a
// clear diagnostic.  Foreign gates are decomposed onto the CP cell
// library per logic/cell_mapping.hpp; every diagnostic is a
// logic::ParseError carrying the 1-based line and column.
//
// The writer emits any finalized Circuit (gates in topo order); MAJ3 has
// no `.bench` equivalent and is expanded to AND/AND/AND + OR.  Constant
// nets are not representable and raise std::invalid_argument.
#pragma once

#include <iosfwd>
#include <string>

#include "logic/circuit.hpp"

namespace cpsinw::logic {

/// Parses a `.bench` netlist and returns the finalized circuit.
/// @throws ParseError ("bench line L:C: ...") on malformed input
[[nodiscard]] Circuit read_bench(std::istream& is);

/// Parses a `.bench` netlist held in a string (test/tool convenience).
[[nodiscard]] Circuit read_bench_string(const std::string& text);

/// Writes a circuit in `.bench` format.  Net names outside the `.bench`
/// charset ([A-Za-z0-9_\[\].], e.g. synthesized "<out>$k" nets) are
/// mangled to '_' and uniquified, so the output always reads back.
/// @throws std::invalid_argument when the circuit has constant nets
void write_bench(std::ostream& os, const Circuit& ckt);

/// Round-trip helper used by tests and the CLI.
[[nodiscard]] std::string to_bench_string(const Circuit& ckt);

}  // namespace cpsinw::logic
