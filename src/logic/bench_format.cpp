#include "logic/bench_format.hpp"

#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "logic/cell_mapping.hpp"
#include "logic/net_registry.hpp"

namespace cpsinw::logic {

namespace {

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '[' || c == ']' || c == '.';
}

std::string upper(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s)
    out.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  return out;
}

/// One-line scanner with column tracking (statements never span lines in
/// `.bench`).  Tokens: words, '(', ')', '=', ','.
class LineScanner {
 public:
  LineScanner(const NetRegistry& reg, const std::string& line, int line_no)
      : reg_(reg), line_(line), line_no_(line_no) {}

  [[nodiscard]] SourceLoc here() const {
    return {line_no_, static_cast<int>(pos_) + 1};
  }

  /// Skips whitespace; true when the line still has tokens.
  bool more() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_])) != 0)
      ++pos_;
    return pos_ < line_.size();
  }

  /// Next token must be a word; returns it and its location.
  std::string word(SourceLoc* loc = nullptr) {
    if (!more()) reg_.fail(here(), "unexpected end of line, expected a name");
    const SourceLoc at = here();
    if (!is_word_char(line_[pos_])) {
      if (line_[pos_] == '$')
        reg_.fail(at, "unexpected character '$' "
                      "(reserved for synthesized nets)");
      reg_.fail(at, std::string("unexpected character '") + line_[pos_] +
                        "', expected a name");
    }
    std::string out;
    while (pos_ < line_.size() && is_word_char(line_[pos_]))
      out.push_back(line_[pos_++]);
    if (loc != nullptr) *loc = at;
    return out;
  }

  /// Next token must be the symbol `c`.
  void sym(char c) {
    if (!more())
      reg_.fail(here(), std::string("unexpected end of line, expected '") +
                            c + "'");
    if (line_[pos_] != c) {
      if (line_[pos_] == '$')
        reg_.fail(here(), "unexpected character '$' "
                          "(reserved for synthesized nets)");
      reg_.fail(here(), std::string("expected '") + c + "', got '" +
                            line_[pos_] + "'");
    }
    ++pos_;
  }

  /// True (and consumes) when the next token is the symbol `c`.
  bool accept(char c) {
    if (!more() || line_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  /// Fails unless the line is exhausted.
  void end() {
    if (more())
      reg_.fail(here(), std::string("trailing text '") +
                            line_.substr(pos_) + "'");
  }

 private:
  const NetRegistry& reg_;
  const std::string& line_;
  int line_no_;
  std::size_t pos_ = 0;
};

}  // namespace

Circuit read_bench(std::istream& is) {
  NetRegistry reg("bench");
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    LineScanner scan(reg, line, line_no);
    if (!scan.more()) continue;

    SourceLoc head_loc;
    const std::string head = scan.word(&head_loc);
    const std::string head_up = upper(head);
    if (head_up == "INPUT" || head_up == "OUTPUT") {
      scan.sym('(');
      const std::string name = scan.word();
      scan.sym(')');
      scan.end();
      if (head_up == "INPUT")
        reg.add_input(name, head_loc);
      else
        reg.add_output(name, head_loc);
      continue;
    }

    // dest = GATE(a, b, ...)
    scan.sym('=');
    SourceLoc gate_loc;
    const std::string gate_name = scan.word(&gate_loc);
    const std::string gate_up = upper(gate_name);
    if (gate_up == "DFF" || gate_up == "DFFSR" || gate_up == "LATCH")
      reg.fail(gate_loc, "sequential element '" + gate_name +
                             "' is not supported (the reader accepts the "
                             "combinational subset only)");
    const auto gate = foreign_gate_from(gate_name);
    if (!gate)
      reg.fail(gate_loc, "unsupported gate '" + gate_name +
                             "' (supported: AND NAND OR NOR XOR XNOR NOT "
                             "BUF)");
    scan.sym('(');
    std::vector<std::string> ins;
    if (!scan.accept(')')) {
      ins.push_back(scan.word());
      while (scan.accept(',')) ins.push_back(scan.word());
      scan.sym(')');
    }
    scan.end();
    reg.add_foreign_gate(*gate, head, ins, head_loc);
  }
  return reg.finish();
}

Circuit read_bench_string(const std::string& text) {
  std::istringstream iss(text);
  return read_bench(iss);
}

namespace {

/// Per-writer name table: mangles names into the `.bench` charset and
/// keeps them unique.
class BenchNames {
 public:
  explicit BenchNames(const Circuit& ckt) : names_(ckt.net_count()) {
    for (NetId n = 0; n < ckt.net_count(); ++n)
      names_[static_cast<std::size_t>(n)] = claim(ckt.net_name(n));
  }

  [[nodiscard]] const std::string& of(NetId n) const {
    return names_[static_cast<std::size_t>(n)];
  }

  /// Reserves a fresh name derived from `hint` (for MAJ3 expansion nets).
  std::string fresh(const std::string& hint) { return claim(hint); }

 private:
  std::string claim(const std::string& raw) {
    std::string name;
    name.reserve(raw.size());
    for (const char c : raw) name.push_back(is_word_char(c) ? c : '_');
    if (name.empty()) name = "n";
    while (!used_.insert(name).second) name += "_";
    return name;
  }

  std::vector<std::string> names_;
  std::unordered_set<std::string> used_;
};

}  // namespace

void write_bench(std::ostream& os, const Circuit& ckt) {
  for (NetId n = 0; n < ckt.net_count(); ++n)
    if (ckt.constant_of(n) != LogicV::kX)
      throw std::invalid_argument(
          "write_bench: constant net '" + ckt.net_name(n) +
          "' is not representable in .bench");

  BenchNames names(ckt);
  os << "# cpsinw .bench export: " << ckt.gate_count() << " gates, "
     << ckt.net_count() << " nets\n";
  for (const NetId n : ckt.primary_inputs())
    os << "INPUT(" << names.of(n) << ")\n";
  for (const NetId n : ckt.primary_outputs())
    os << "OUTPUT(" << names.of(n) << ")\n";

  using gates::CellKind;
  for (const int gid : ckt.topo_order()) {
    const GateInst& g = ckt.gate(gid);
    const std::string& out = names.of(g.out);
    const auto in = [&](int i) -> const std::string& {
      return names.of(g.in[static_cast<std::size_t>(i)]);
    };
    switch (g.kind) {
      case CellKind::kInv:
        os << out << " = NOT(" << in(0) << ")\n";
        break;
      case CellKind::kBuf:
        os << out << " = BUFF(" << in(0) << ")\n";
        break;
      case CellKind::kNand2:
        os << out << " = NAND(" << in(0) << ", " << in(1) << ")\n";
        break;
      case CellKind::kNor2:
        os << out << " = NOR(" << in(0) << ", " << in(1) << ")\n";
        break;
      case CellKind::kXor2:
        os << out << " = XOR(" << in(0) << ", " << in(1) << ")\n";
        break;
      case CellKind::kXor3:
        os << out << " = XOR(" << in(0) << ", " << in(1) << ", " << in(2)
           << ")\n";
        break;
      case CellKind::kMaj3: {
        // MAJ(a,b,c) = ab + ac + bc — no .bench equivalent.
        const std::string m0 = names.fresh(out + "_m0");
        const std::string m1 = names.fresh(out + "_m1");
        const std::string m2 = names.fresh(out + "_m2");
        os << m0 << " = AND(" << in(0) << ", " << in(1) << ")\n";
        os << m1 << " = AND(" << in(0) << ", " << in(2) << ")\n";
        os << m2 << " = AND(" << in(1) << ", " << in(2) << ")\n";
        os << out << " = OR(" << m0 << ", " << m1 << ", " << m2 << ")\n";
        break;
      }
    }
  }
}

std::string to_bench_string(const Circuit& ckt) {
  std::ostringstream oss;
  write_bench(oss, ckt);
  return oss.str();
}

}  // namespace cpsinw::logic
