#include "logic/simd.hpp"

#include <atomic>

namespace cpsinw::logic::simd {

namespace {

std::atomic<bool> g_force_portable{false};

Backend detect_backend() {
#if defined(CPSINW_SIMD_OFF)
  return Backend::kPortable;
#elif defined(__aarch64__)
  // NEON is architecturally guaranteed on aarch64.
  return Backend::kNeon;
#else
  // Widest-first: the TUs compiled into this build set the macros, the
  // running CPU gets the final say (the binary may land on older
  // x86-64).
#if defined(CPSINW_SIMD_AVX512)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512vl"))
    return Backend::kAvx512;
#endif
#if defined(CPSINW_SIMD_AVX2)
  if (__builtin_cpu_supports("avx2")) return Backend::kAvx2;
#endif
  return Backend::kPortable;
#endif
}

}  // namespace

Backend compiled_backend() {
  static const Backend b = detect_backend();
  return b;
}

Backend active_backend() {
  return g_force_portable.load(std::memory_order_relaxed)
             ? Backend::kPortable
             : compiled_backend();
}

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kPortable:
      return "portable";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
    case Backend::kNeon:
      return "neon";
  }
  return "portable";
}

void force_portable(bool on) {
  g_force_portable.store(on, std::memory_order_relaxed);
}

bool forced_portable() {
  return g_force_portable.load(std::memory_order_relaxed);
}

}  // namespace cpsinw::logic::simd
