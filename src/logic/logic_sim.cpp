#include "logic/logic_sim.hpp"

#include <stdexcept>

#include "gates/dictionary_cache.hpp"

namespace cpsinw::logic {

namespace {

const Circuit& require_finalized(const Circuit& ckt, const char* what) {
  if (!ckt.finalized()) throw std::invalid_argument(what);
  return ckt;
}

}  // namespace

Simulator::Simulator(const Circuit& ckt)
    : ckt_(ckt),
      cc_(require_finalized(ckt, "Simulator: circuit not finalized")) {}

std::optional<unsigned> Simulator::local_input(
    const GateInst& gate, const std::vector<LogicV>& values) {
  unsigned bits = 0;
  for (int i = 0; i < gate.input_count(); ++i) {
    const LogicV v =
        values[static_cast<std::size_t>(gate.in[static_cast<std::size_t>(i)])];
    if (!is_binary(v)) return std::nullopt;
    if (v == LogicV::k1) bits |= 1u << i;
  }
  return bits;
}

LogicV eval_cell_x(gates::CellKind kind, LogicV a, LogicV b, LogicV c) {
  const int n = gates::input_count(kind);
  const LogicV in_v[3] = {a, b, c};
  // Enumerate binary completions of X/Z inputs; if all agree the output is
  // defined (no false pessimism on e.g. NAND(0, X) = 1).
  LogicV agreed = LogicV::kZ;  // sentinel: not yet set
  for (unsigned fill = 0; fill < (1u << n); ++fill) {
    unsigned v = 0;
    bool compatible = true;
    for (int i = 0; i < n; ++i) {
      const bool bit = (fill >> i) & 1u;
      if (in_v[i] == LogicV::k0 && bit) compatible = false;
      if (in_v[i] == LogicV::k1 && !bit) compatible = false;
      if (bit) v |= 1u << i;
    }
    if (!compatible) continue;
    const LogicV out = from_bool(gates::good_output(kind, v) != 0);
    if (agreed == LogicV::kZ) {
      agreed = out;
    } else if (agreed != out) {
      return LogicV::kX;
    }
  }
  return agreed == LogicV::kZ ? LogicV::kX : agreed;
}

SimResult Simulator::simulate(const Pattern& pattern) const {
  if (pattern.size() != ckt_.primary_inputs().size())
    throw std::invalid_argument("Simulator: pattern arity mismatch");
  SimResult r;
  cc_.init_scalar(pattern, r.net_values);
  cc_.eval_scalar(r.net_values);
  return r;
}

SimResult Simulator::simulate_faulty(
    const Pattern& pattern, const GateFault& fault,
    const std::vector<LogicV>* previous_state) const {
  if (fault.gate < 0 || fault.gate >= ckt_.gate_count())
    throw std::invalid_argument("simulate_faulty: bad gate id");
  const gates::FaultAnalysis& fa = gates::DictionaryCache::global().lookup(
      ckt_.gate(fault.gate).kind, fault.cell_fault);
  return simulate_faulty_with(pattern, fault, fa, previous_state);
}

SimResult Simulator::simulate_faulty_with(
    const Pattern& pattern, const GateFault& fault,
    const gates::FaultAnalysis& fa,
    const std::vector<LogicV>* previous_state) const {
  if (fault.gate < 0 || fault.gate >= ckt_.gate_count())
    throw std::invalid_argument("simulate_faulty: bad gate id");
  if (pattern.size() != ckt_.primary_inputs().size())
    throw std::invalid_argument("Simulator: pattern arity mismatch");
  SimResult r;
  cc_.init_scalar(pattern, r.net_values);
  r.iddq_flag =
      cc_.eval_scalar_faulty(r.net_values, fault.gate, fa, previous_state);
  return r;
}

std::uint64_t eval_cell_packed(gates::CellKind kind, std::uint64_t a,
                               std::uint64_t b, std::uint64_t c) {
  using gates::CellKind;
  switch (kind) {
    case CellKind::kInv: return ~a;
    case CellKind::kBuf: return a;
    case CellKind::kNand2: return ~(a & b);
    case CellKind::kNor2: return ~(a | b);
    case CellKind::kXor2: return a ^ b;
    case CellKind::kXor3: return a ^ b ^ c;
    case CellKind::kMaj3: return (a & b) | (b & c) | (a & c);
  }
  return 0;
}

std::vector<std::uint64_t> pack_patterns(const Circuit& ckt,
                                         const std::vector<Pattern>& patterns) {
  if (patterns.size() > 64)
    throw std::invalid_argument("pack_patterns: more than 64 patterns");
  const std::size_t n_pi = ckt.primary_inputs().size();
  std::vector<std::uint64_t> words(n_pi, 0);
  for (std::size_t k = 0; k < patterns.size(); ++k) {
    const Pattern& p = patterns[k];
    if (p.size() != n_pi)
      throw std::invalid_argument("pack_patterns: pattern arity mismatch");
    for (std::size_t i = 0; i < n_pi; ++i) {
      if (!is_binary(p[i]))
        throw std::invalid_argument("pack_patterns: X in packed pattern");
      if (p[i] == LogicV::k1) words[i] |= 1ull << k;
    }
  }
  return words;
}

std::vector<std::uint64_t> simulate_packed(
    const Circuit& ckt, const std::vector<std::uint64_t>& pi_words) {
  if (pi_words.size() != ckt.primary_inputs().size())
    throw std::invalid_argument("simulate_packed: arity mismatch");
  std::vector<std::uint64_t> values(
      static_cast<std::size_t>(ckt.net_count()), 0);
  for (NetId n = 0; n < ckt.net_count(); ++n)
    if (ckt.constant_of(n) == LogicV::k1)
      values[static_cast<std::size_t>(n)] = ~0ull;
  for (std::size_t i = 0; i < pi_words.size(); ++i)
    values[static_cast<std::size_t>(ckt.primary_inputs()[i])] = pi_words[i];
  for (const int gid : ckt.topo_order()) {
    const GateInst& g = ckt.gate(gid);
    const std::uint64_t a =
        values[static_cast<std::size_t>(g.in[0] >= 0 ? g.in[0] : 0)];
    const std::uint64_t b =
        g.in[1] >= 0 ? values[static_cast<std::size_t>(g.in[1])] : 0;
    const std::uint64_t c =
        g.in[2] >= 0 ? values[static_cast<std::size_t>(g.in[2])] : 0;
    values[static_cast<std::size_t>(g.out)] =
        eval_cell_packed(g.kind, a, b, c);
  }
  return values;
}

}  // namespace cpsinw::logic
