// Internal: the SoA plane kernels behind CompiledCircuit's packed
// evaluation, written once as templates over a 4x64-bit vector type and
// instantiated per SIMD backend — U64x4 (portable, always built; also the
// NEON shape on aarch64, where the compiler lowers it to q-register ops)
// in compiled_circuit.cpp, an __m256i wrapper in
// compiled_circuit_avx2.cpp (the only TU compiled with -mavx2), and an
// __m256i + VPTERNLOGQ wrapper in compiled_circuit_avx512.cpp (the only
// TU compiled with -mavx512f -mavx512vl; the gate-evaluation overload of
// eval_cell_vec collapses every cell to one ternary-logic instruction).
//
// The vector concept: load/store/splat, the four bitwise ops, and scalar
// lane access.  Lane access is deliberately rare — it appears only at
// fault-injection events and when extracting per-word detection results,
// never in the per-gate walk.
//
// Not installed API: include only from compiled_circuit*.cpp.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "logic/compiled_circuit.hpp"

#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace cpsinw::logic::kernels {

// ---- portable vector ------------------------------------------------------

/// The vector concept's reference model: 4x64 bits as a plain struct,
/// every op a 4-iteration loop the compiler unrolls (and, where the
/// baseline ISA allows, auto-vectorizes).  Always built; the backend the
/// SIMD instantiations are pinned bit-identical against.
struct U64x4 {
  std::uint64_t w[4];

  static U64x4 load(const std::uint64_t* p) {
    return U64x4{{p[0], p[1], p[2], p[3]}};
  }
  static void store(std::uint64_t* p, const U64x4& v) {
    p[0] = v.w[0];
    p[1] = v.w[1];
    p[2] = v.w[2];
    p[3] = v.w[3];
  }
  static U64x4 splat(std::uint64_t x) { return U64x4{{x, x, x, x}}; }
  void set_lane(std::size_t i, std::uint64_t x) { w[i] = x; }
  [[nodiscard]] std::uint64_t lane(std::size_t i) const { return w[i]; }

  friend U64x4 operator&(const U64x4& a, const U64x4& b) {
    return U64x4{{a.w[0] & b.w[0], a.w[1] & b.w[1], a.w[2] & b.w[2],
                  a.w[3] & b.w[3]}};
  }
  friend U64x4 operator|(const U64x4& a, const U64x4& b) {
    return U64x4{{a.w[0] | b.w[0], a.w[1] | b.w[1], a.w[2] | b.w[2],
                  a.w[3] | b.w[3]}};
  }
  friend U64x4 operator^(const U64x4& a, const U64x4& b) {
    return U64x4{{a.w[0] ^ b.w[0], a.w[1] ^ b.w[1], a.w[2] ^ b.w[2],
                  a.w[3] ^ b.w[3]}};
  }
  friend U64x4 operator~(const U64x4& a) {
    return U64x4{{~a.w[0], ~a.w[1], ~a.w[2], ~a.w[3]}};
  }
};

#if defined(__aarch64__)

/// The NEON shape of the vector concept: two uint64x2_t q registers.
/// Lane ops need immediate indices, hence the switches (cold paths only).
struct U64x2x2 {
  uint64x2_t v[2];

  static U64x2x2 load(const std::uint64_t* p) {
    return U64x2x2{{vld1q_u64(p), vld1q_u64(p + 2)}};
  }
  static void store(std::uint64_t* p, const U64x2x2& x) {
    vst1q_u64(p, x.v[0]);
    vst1q_u64(p + 2, x.v[1]);
  }
  static U64x2x2 splat(std::uint64_t x) {
    const uint64x2_t s = vdupq_n_u64(x);
    return U64x2x2{{s, s}};
  }
  void set_lane(std::size_t i, std::uint64_t x) {
    switch (i) {
      case 0: v[0] = vsetq_lane_u64(x, v[0], 0); break;
      case 1: v[0] = vsetq_lane_u64(x, v[0], 1); break;
      case 2: v[1] = vsetq_lane_u64(x, v[1], 0); break;
      default: v[1] = vsetq_lane_u64(x, v[1], 1); break;
    }
  }
  [[nodiscard]] std::uint64_t lane(std::size_t i) const {
    switch (i) {
      case 0: return vgetq_lane_u64(v[0], 0);
      case 1: return vgetq_lane_u64(v[0], 1);
      case 2: return vgetq_lane_u64(v[1], 0);
      default: return vgetq_lane_u64(v[1], 1);
    }
  }

  friend U64x2x2 operator&(const U64x2x2& a, const U64x2x2& b) {
    return U64x2x2{{vandq_u64(a.v[0], b.v[0]), vandq_u64(a.v[1], b.v[1])}};
  }
  friend U64x2x2 operator|(const U64x2x2& a, const U64x2x2& b) {
    return U64x2x2{{vorrq_u64(a.v[0], b.v[0]), vorrq_u64(a.v[1], b.v[1])}};
  }
  friend U64x2x2 operator^(const U64x2x2& a, const U64x2x2& b) {
    return U64x2x2{{veorq_u64(a.v[0], b.v[0]), veorq_u64(a.v[1], b.v[1])}};
  }
  friend U64x2x2 operator~(const U64x2x2& a) {
    const uint64x2_t ones = vdupq_n_u64(~0ull);
    return U64x2x2{{veorq_u64(a.v[0], ones), veorq_u64(a.v[1], ones)}};
  }
};

#endif  // __aarch64__

// ---- shared kernel bodies -------------------------------------------------

/// Vector form of eval_cell_packed: on binary planes the 4-valued tables
/// collapse to these bitwise forms (pinned against the table kernel by
/// tests/logic/compiled_batch_test.cpp).
template <class V>
inline V eval_cell_vec(gates::CellKind kind, const V& a, const V& b,
                       const V& c) {
  using gates::CellKind;
  switch (kind) {
    case CellKind::kInv: return ~a;
    case CellKind::kBuf: return a;
    case CellKind::kNand2: return ~(a & b);
    case CellKind::kNor2: return ~(a | b);
    case CellKind::kXor2: return a ^ b;
    case CellKind::kXor3: return a ^ b ^ c;
    case CellKind::kMaj3: return (a & b) | (b & c) | (a & c);
  }
  return V::splat(0);
}

/// Good-machine pass over SoA planes, kSimdWords words per step.
template <class V>
void eval_planes_t(const CompiledCircuit& cc, std::uint64_t* planes,
                   std::size_t stride) {
  const auto& gates = cc.gates();
  for (std::size_t wg = 0; wg < stride; wg += CompiledCircuit::kSimdWords) {
    for (const CompiledCircuit::GateRec& g : gates) {
      const V a = V::load(planes + static_cast<std::size_t>(g.in[0]) * stride +
                          wg);
      const V b = V::load(planes + static_cast<std::size_t>(g.in[1]) * stride +
                          wg);
      const V c = V::load(planes + static_cast<std::size_t>(g.in[2]) * stride +
                          wg);
      V::store(planes + static_cast<std::size_t>(g.out) * stride + wg,
               eval_cell_vec(g.kind, a, b, c));
    }
  }
}

/// Batched line-fault kernel: kBatchLanes faults, one per SIMD lane, one
/// forward walk per pattern word starting at the earliest injection
/// position.  See CompiledCircuit::eval_packed_line_batch for the
/// contract; this body is shared verbatim by every backend, so the
/// backends are bit-identical by construction.
template <class V>
std::size_t eval_line_batch_t(const CompiledCircuit& cc,
                              const std::uint64_t* good, std::size_t stride,
                              std::size_t n_words, const std::uint64_t* active,
                              const CompiledCircuit::LineFault* faults,
                              std::size_t n_faults, std::uint64_t* det,
                              std::vector<std::uint64_t>& lane_scratch) {
  constexpr std::size_t kLanes = CompiledCircuit::kBatchLanes;
  // Words walked together per strip: the walk keeps one lane vector per
  // word, so a strip carries up to kGroups independent dependency chains —
  // on the cone-restricted suffixes the single-word walk is latency-bound
  // on its gate-to-gate chain, and the extra chains fill the idle ALU
  // slots while the scalar epoch bookkeeping is paid once per strip.  The
  // first strip stays narrow: most line faults detect within the first
  // couple of words, and a wide first strip would evaluate words the
  // word-granular early exit never needed.  Survivors get full-width
  // strips, where the ILP is worth the coarser exit.
  constexpr std::size_t kGroups = 4;
  constexpr std::size_t kFirstStrip = 2;
  const auto& gates = cc.gates();
  const Circuit& ckt = cc.circuit();
  const std::size_t n_net = static_cast<std::size_t>(ckt.net_count());
  // Lane storage plus a per-net epoch tail and a running epoch counter: a
  // net's lanes are only valid when its epoch equals the current strip's;
  // every other net reads straight from the good planes.  This keeps the
  // per-word cost proportional to the walked suffix, not to net_count (a
  // full per-word broadcast of the good machine would cost as much as the
  // single-fault path's init_packed and cancel the batching win).  The
  // counter persists across calls sharing the scratch, so the epochs are
  // zeroed once per scratch lifetime, not once per kernel call.
  const std::size_t need = n_net * (kLanes * kGroups + 1) + 1;
  if (lane_scratch.size() != need) lane_scratch.assign(need, 0);
  std::uint64_t* const lanes = lane_scratch.data();
  std::uint64_t* const epoch = lane_scratch.data() + n_net * kLanes * kGroups;
  std::uint64_t& counter = lane_scratch[need - 1];
  std::fill_n(det, n_faults * n_words, 0ull);

  // Injection plan.  A stem fault forces its net's lane at seed time and
  // re-forces it right after the driver's write (a post event); a branch
  // fault overrides one pin of one gate's local inputs (a pre event).
  // Gates before the earliest event position would recompute the good
  // machine, so the walk skips them — their values come from `good`.
  struct Seed {
    NetId net;
    std::size_t lane;
    std::uint64_t word;
  };
  struct Event {
    std::size_t pos;
    std::size_t lane;
    int pin;  ///< >= 0: pre-compute pin override; < 0: post-compute re-force
    std::uint64_t word;
  };
  Seed seeds[kLanes];
  Event events[kLanes];
  std::size_t n_seed = 0;
  std::size_t n_ev = 0;
  std::size_t min_pos = gates.size();
  for (std::size_t f = 0; f < n_faults; ++f) {
    const CompiledCircuit::LineFault& lf = faults[f];
    const std::uint64_t forced = lf.stuck_one ? ~0ull : 0ull;
    if (lf.net >= 0) {
      seeds[n_seed++] = {lf.net, f, forced};
      const int driver = ckt.driver_of(lf.net);
      if (driver < 0) {
        min_pos = 0;  // a PI/constant stem: every reader must see the force
      } else {
        const std::size_t pos = cc.position_of(driver);
        events[n_ev++] = {pos, f, -1, forced};
        min_pos = std::min(min_pos, pos);
      }
    } else {
      const std::size_t pos = cc.position_of(lf.gate);
      events[n_ev++] = {pos, f, lf.pin, forced};
      min_pos = std::min(min_pos, pos);
    }
  }
  // Insertion sort by position: at most kLanes events, and the walk only
  // needs same-position events adjacent (they touch disjoint lanes, so
  // their relative order is immaterial).
  for (std::size_t i = 1; i < n_ev; ++i) {
    const Event e = events[i];
    std::size_t j = i;
    for (; j > 0 && events[j - 1].pos > e.pos; --j) events[j] = events[j - 1];
    events[j] = e;
  }

  std::uint64_t undetected = (1ull << n_faults) - 1ull;

  // One strip: NW consecutive pattern words walked together (NW is a
  // compile-time constant so the per-word loops fully unroll and the NW
  // dependency chains stay in registers).
  const auto strip = [&]<std::size_t NW>(std::size_t w, std::uint64_t cur) {
    // Lanes diverge from the good machine only at seeded nets and walked
    // gate outputs; everything else reads the good plane lazily below.
    for (std::size_t s = 0; s < n_seed; ++s) {
      const std::size_t n = static_cast<std::size_t>(seeds[s].net);
      if (epoch[n] != cur) {
        for (std::size_t gi = 0; gi < NW; ++gi)
          V::store(lanes + n * kLanes * kGroups + gi * kLanes,
                   V::splat(good[n * stride + w + gi]));
        epoch[n] = cur;
      }
      for (std::size_t gi = 0; gi < NW; ++gi)
        lanes[n * kLanes * kGroups + gi * kLanes + seeds[s].lane] =
            seeds[s].word;
    }

    std::size_t ei = 0;
    for (std::size_t k = min_pos; k < gates.size(); ++k) {
      const CompiledCircuit::GateRec& g = gates[k];
      const std::size_t n0 = static_cast<std::size_t>(g.in[0]);
      const std::size_t n1 = static_cast<std::size_t>(g.in[1]);
      const std::size_t n2 = static_cast<std::size_t>(g.in[2]);
      const bool d0 = epoch[n0] == cur;
      const bool d1 = epoch[n1] == cur;
      const bool d2 = epoch[n2] == cur;
      // Cone restriction: a gate with no diverged input and no injection
      // event computes exactly the good machine — skip it, leaving its
      // output epoch stale so downstream readers take the good plane.
      if (!d0 && !d1 && !d2 && !(ei < n_ev && events[ei].pos == k)) continue;
      V a[NW], b[NW], c[NW];
      for (std::size_t gi = 0; gi < NW; ++gi) {
        a[gi] = d0 ? V::load(lanes + n0 * kLanes * kGroups + gi * kLanes)
                   : V::splat(good[n0 * stride + w + gi]);
        b[gi] = d1 ? V::load(lanes + n1 * kLanes * kGroups + gi * kLanes)
                   : V::splat(good[n1 * stride + w + gi]);
        c[gi] = d2 ? V::load(lanes + n2 * kLanes * kGroups + gi * kLanes)
                   : V::splat(good[n2 * stride + w + gi]);
      }
      std::size_t post_n = 0;
      Seed post[kLanes];
      while (ei < n_ev && events[ei].pos == k) {
        const Event& e = events[ei++];
        if (e.pin < 0) {
          post[post_n++] = {g.out, e.lane, e.word};
        } else {
          V* const dst = e.pin == 0 ? a : e.pin == 1 ? b : c;
          for (std::size_t gi = 0; gi < NW; ++gi)
            dst[gi].set_lane(e.lane, e.word);
        }
      }
      for (std::size_t gi = 0; gi < NW; ++gi)
        V::store(lanes + static_cast<std::size_t>(g.out) * kLanes * kGroups +
                     gi * kLanes,
                 eval_cell_vec(g.kind, a[gi], b[gi], c[gi]));
      epoch[static_cast<std::size_t>(g.out)] = cur;
      for (std::size_t p = 0; p < post_n; ++p)
        for (std::size_t gi = 0; gi < NW; ++gi)
          lanes[static_cast<std::size_t>(post[p].net) * kLanes * kGroups +
                gi * kLanes + post[p].lane] = post[p].word;
    }

    // A PO the walk never wrote still equals the good machine in every
    // lane — zero contribution, skipped.
    V diff[NW];
    for (std::size_t gi = 0; gi < NW; ++gi) diff[gi] = V::splat(0);
    for (const NetId po : ckt.primary_outputs()) {
      const std::size_t n = static_cast<std::size_t>(po);
      if (epoch[n] != cur) continue;
      for (std::size_t gi = 0; gi < NW; ++gi)
        diff[gi] = diff[gi] | (V::load(lanes + n * kLanes * kGroups +
                                       gi * kLanes) ^
                               V::splat(good[n * stride + w + gi]));
    }
    // One vector store, then scalar reads: per-lane extract instructions
    // would round-trip through memory once per lane on AVX2.
    for (std::size_t gi = 0; gi < NW; ++gi) {
      alignas(32) std::uint64_t dbuf[kLanes];
      V::store(dbuf, diff[gi]);
      const std::uint64_t act = active[w + gi];
      for (std::size_t f = 0; f < n_faults; ++f) {
        const std::uint64_t d = dbuf[f] & act;
        det[f * n_words + w + gi] = d;
        if (d != 0) undetected &= ~(1ull << f);
      }
    }
  };

  std::size_t w = 0;
  bool first = true;
  while (w < n_words && undetected != 0) {
    const std::uint64_t cur = ++counter;  // never reused: epochs stay valid
    const std::size_t rem = n_words - w;
    if (!first && rem >= kGroups) {
      strip.template operator()<kGroups>(w, cur);
      w += kGroups;
    } else if (rem >= kFirstStrip) {
      strip.template operator()<kFirstStrip>(w, cur);
      w += kFirstStrip;
      first = false;
    } else {
      strip.template operator()<1>(w, cur);
      w += 1;
      first = false;
    }
  }
  return w;
}

/// Plane-wide transistor kernel: minterm expansion of the compiled
/// truth/contention masks over kSimdWords words per step.
template <class V>
void eval_faulty_planes_t(const CompiledCircuit& cc, const std::uint64_t* good,
                          std::size_t stride, std::size_t n_words,
                          int fault_gate, const gates::FaultAnalysis& fa,
                          std::uint64_t* diff, std::uint64_t* contention,
                          std::vector<std::uint64_t>& lane_scratch) {
  constexpr std::size_t kW = CompiledCircuit::kSimdWords;
  // Strip widening: independent word-group chains walked together hide
  // the gate-to-gate latency (a single chain is serial through each cone
  // gate) and amortize the per-fault scalar costs.  Wider than the line
  // kernel's strips because this kernel has no early exit to lose.
  constexpr std::size_t kGroups = 4;
  const auto& gates = cc.gates();
  const Circuit& ckt = cc.circuit();
  const std::size_t n_net = static_cast<std::size_t>(ckt.net_count());
  const std::size_t n_po = ckt.primary_outputs().size();
  // Lane storage for the faulted cone, followed by the cached cone
  // itself.  The fan-out cone of the faulted gate — which gates diverge,
  // which of their inputs read lanes vs. good planes, which POs can
  // differ — is a property of the graph, not of the pattern words, so it
  // is discovered once (versioned marks + persistent counter) and reused
  // by every strip and by consecutive faults on the same gate (fault
  // lists enumerate several transistor faults per gate back to back).
  // With the cone precomputed the strip walk is branch-free vector work.
  //
  // Layout: [lanes: n_net * kW * kGroups][marks: n_net][counter]
  //         [cone key][cone length][cone: n_gates][po count][po list]
  const std::size_t n_gates = gates.size();
  const std::size_t lanes_sz = n_net * kW * kGroups;
  const std::size_t need = lanes_sz + n_net + 4 + n_gates + n_po;
  if (lane_scratch.size() != need) lane_scratch.assign(need, 0);
  std::uint64_t* const lv = lane_scratch.data();
  std::uint64_t* const marks = lv + lanes_sz;
  std::uint64_t& counter = lv[lanes_sz + n_net];
  std::uint64_t& cone_key = lv[lanes_sz + n_net + 1];
  std::uint64_t& cone_len = lv[lanes_sz + n_net + 2];
  std::uint64_t* const cone = lv + lanes_sz + n_net + 3;
  std::uint64_t& po_len = cone[n_gates];
  std::uint64_t* const po_list = cone + n_gates + 1;
  const std::size_t pos = cc.position_of(fault_gate);
  const CompiledCircuit::GateRec& fg = gates[pos];
  const unsigned combos = 1u << fg.n_in;
  const unsigned rows = fa.compiled_truth | fa.compiled_contention;

  if (cone_key != static_cast<std::uint64_t>(fault_gate) + 1) {
    const std::uint64_t cur = ++counter;  // never reused: marks stay valid
    marks[static_cast<std::size_t>(fg.out)] = cur;
    std::uint64_t len = 0;
    for (std::size_t k = pos + 1; k < n_gates; ++k) {
      const CompiledCircuit::GateRec& g = gates[k];
      const std::uint64_t dmask =
          (marks[static_cast<std::size_t>(g.in[0])] == cur ? 1u : 0u) |
          (marks[static_cast<std::size_t>(g.in[1])] == cur ? 2u : 0u) |
          (marks[static_cast<std::size_t>(g.in[2])] == cur ? 4u : 0u);
      if (dmask == 0) continue;  // outside the faulted gate's cone
      marks[static_cast<std::size_t>(g.out)] = cur;
      cone[len++] = (static_cast<std::uint64_t>(k) << 3) | dmask;
    }
    cone_len = len;
    std::uint64_t plen = 0;
    for (const NetId po : ckt.primary_outputs())
      if (marks[static_cast<std::size_t>(po)] == cur)
        po_list[plen++] = static_cast<std::uint64_t>(po);
    po_len = plen;
    cone_key = static_cast<std::uint64_t>(fault_gate) + 1;
  }

  // Clamped group store: full groups go straight to the output array
  // (shallow cones spend more time extracting than walking, so a scalar
  // roundtrip here would be the kernel's largest fixed cost); only the
  // ragged tail takes the buffered path.
  const auto store_group = [&](std::uint64_t* dst, std::size_t base, V v) {
    if (base >= n_words) return;
    if (n_words - base >= kW) {
      V::store(dst + base, v);
      return;
    }
    alignas(32) std::uint64_t buf[kW];
    V::store(buf, v);
    const std::size_t lim = n_words - base;
    for (std::size_t j = 0; j < lim; ++j) dst[base + j] = buf[j];
  };

  // One strip: NW word groups (NW * kW pattern words) walked together.
  // No vector value stays live across the sub-loops (contention is final
  // at expansion time, PO diffs accumulate per group), so wide strips add
  // independent chains without spilling registers.
  const auto strip = [&]<std::size_t NW>(std::size_t wg) {
    // Faulted gate: its local inputs equal the good machine's (single
    // faulted gate, acyclic circuit — they cannot be in its own cone), so
    // the contention accumulation is the per-pattern IDDQ excitation mask.
    for (std::size_t gi = 0; gi < NW; ++gi) {
      const V in[3] = {
          V::load(good + static_cast<std::size_t>(fg.in[0]) * stride + wg +
                  gi * kW),
          V::load(good + static_cast<std::size_t>(fg.in[1]) * stride + wg +
                  gi * kW),
          V::load(good + static_cast<std::size_t>(fg.in[2]) * stride + wg +
                  gi * kW)};
      V out = V::splat(0);
      V cont = V::splat(0);
      for (unsigned vec = 0; vec < combos; ++vec) {
        if (((rows >> vec) & 1u) == 0) continue;
        V minterm = V::splat(~0ull);
        for (unsigned i = 0; i < fg.n_in; ++i)
          minterm = minterm & (((vec >> i) & 1u) != 0 ? in[i] : ~in[i]);
        if (((fa.compiled_truth >> vec) & 1u) != 0) out = out | minterm;
        if (((fa.compiled_contention >> vec) & 1u) != 0)
          cont = cont | minterm;
      }
      V::store(lv + static_cast<std::size_t>(fg.out) * kW * kGroups + gi * kW,
               out);
      store_group(contention, wg + gi * kW, cont);
    }

    // Cone walk: topological order guarantees every lane slot read below
    // was stored earlier in this strip (by the faulted gate or a cone
    // predecessor), so no per-gate validity checks remain.
    for (std::size_t idx = 0; idx < cone_len; ++idx) {
      const std::uint64_t e = cone[idx];
      const CompiledCircuit::GateRec& g = gates[e >> 3];
      const std::size_t n0 = static_cast<std::size_t>(g.in[0]);
      const std::size_t n1 = static_cast<std::size_t>(g.in[1]);
      const std::size_t n2 = static_cast<std::size_t>(g.in[2]);
      for (std::size_t gi = 0; gi < NW; ++gi) {
        const V a = (e & 1) != 0 ? V::load(lv + n0 * kW * kGroups + gi * kW)
                                 : V::load(good + n0 * stride + wg + gi * kW);
        const V b = (e & 2) != 0 ? V::load(lv + n1 * kW * kGroups + gi * kW)
                                 : V::load(good + n1 * stride + wg + gi * kW);
        const V c = (e & 4) != 0 ? V::load(lv + n2 * kW * kGroups + gi * kW)
                                 : V::load(good + n2 * stride + wg + gi * kW);
        V::store(
            lv + static_cast<std::size_t>(g.out) * kW * kGroups + gi * kW,
            eval_cell_vec(g.kind, a, b, c));
      }
    }

    for (std::size_t gi = 0; gi < NW; ++gi) {
      V d = V::splat(0);
      for (std::size_t i = 0; i < po_len; ++i) {
        const std::size_t n = static_cast<std::size_t>(po_list[i]);
        d = d | (V::load(lv + n * kW * kGroups + gi * kW) ^
                 V::load(good + n * stride + wg + gi * kW));
      }
      store_group(diff, wg + gi * kW, d);
    }
  };

  for (std::size_t wg = 0; wg < n_words; wg += kW * kGroups) {
    // Groups whose first word is in range: their loads stay inside the
    // kSimdWords-padded plane stride even when the last word group is
    // partial (the extraction loop clamps what is written back).
    switch (std::min(kGroups, (n_words - wg + kW - 1) / kW)) {
      case 8: strip.template operator()<8>(wg); break;
      case 7: strip.template operator()<7>(wg); break;
      case 6: strip.template operator()<6>(wg); break;
      case 5: strip.template operator()<5>(wg); break;
      case 4: strip.template operator()<4>(wg); break;
      case 3: strip.template operator()<3>(wg); break;
      case 2: strip.template operator()<2>(wg); break;
      default: strip.template operator()<1>(wg); break;
    }
  }
}

// ---- AVX2 entry points (defined in compiled_circuit_avx2.cpp) -------------

// The __m256i instantiations of the three template kernels above, behind
// out-of-line entry points so -mavx2 code exists in exactly one TU.
// Contracts (arguments, results, scratch reuse) are identical to the
// templates'; compiled_circuit.cpp dispatches here when the running CPU
// reports AVX2.
#if defined(CPSINW_SIMD_AVX2)
void eval_planes_avx2(const CompiledCircuit& cc, std::uint64_t* planes,
                      std::size_t stride);
std::size_t eval_line_batch_avx2(const CompiledCircuit& cc,
                                 const std::uint64_t* good, std::size_t stride,
                                 std::size_t n_words,
                                 const std::uint64_t* active,
                                 const CompiledCircuit::LineFault* faults,
                                 std::size_t n_faults, std::uint64_t* det,
                                 std::vector<std::uint64_t>& lane_scratch);
void eval_faulty_planes_avx2(const CompiledCircuit& cc,
                             const std::uint64_t* good, std::size_t stride,
                             std::size_t n_words, int fault_gate,
                             const gates::FaultAnalysis& fa,
                             std::uint64_t* diff, std::uint64_t* contention,
                             std::vector<std::uint64_t>& lane_scratch);
#endif

// ---- AVX-512VL entry points (defined in compiled_circuit_avx512.cpp) ------

// Same 256-bit planes as AVX2, but eval_cell_vec collapses every gate to
// one VPTERNLOGQ; the only TU built with -mavx512f -mavx512vl.  Taken
// when the CPU reports AVX512F + AVX512VL.
#if defined(CPSINW_SIMD_AVX512)
void eval_planes_avx512(const CompiledCircuit& cc, std::uint64_t* planes,
                        std::size_t stride);
std::size_t eval_line_batch_avx512(
    const CompiledCircuit& cc, const std::uint64_t* good, std::size_t stride,
    std::size_t n_words, const std::uint64_t* active,
    const CompiledCircuit::LineFault* faults, std::size_t n_faults,
    std::uint64_t* det, std::vector<std::uint64_t>& lane_scratch);
void eval_faulty_planes_avx512(const CompiledCircuit& cc,
                               const std::uint64_t* good, std::size_t stride,
                               std::size_t n_words, int fault_gate,
                               const gates::FaultAnalysis& fa,
                               std::uint64_t* diff, std::uint64_t* contention,
                               std::vector<std::uint64_t>& lane_scratch);
#endif

}  // namespace cpsinw::logic::kernels
