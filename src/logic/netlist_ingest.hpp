// Format-dispatching netlist ingestion: one entry point over the three
// accepted on-disk formats (.cpn native, ISCAS-85 `.bench`, structural
// Verilog subset), selected by file extension.  This is what the
// `cpsinw_netlist` CLI and the fixture-driven tests use; the per-format
// readers/writers live in netlist_format.hpp, bench_format.hpp, and
// verilog_format.hpp.  docs/FORMATS.md is the user-facing reference.
#pragma once

#include <array>
#include <string>

#include "logic/circuit.hpp"

namespace cpsinw::logic {

/// On-disk netlist format.
enum class NetlistFormat {
  kCpn,      ///< native .cpn (netlist_format.hpp)
  kBench,    ///< ISCAS-85 .bench (bench_format.hpp)
  kVerilog,  ///< structural-Verilog subset (verilog_format.hpp)
};

/// Short format name ("cpn", "bench", "verilog").
[[nodiscard]] const char* to_string(NetlistFormat format);

/// Infers the format from a path's extension: .cpn, .bench, .v / .sv.
/// @throws std::invalid_argument on an unrecognized extension
[[nodiscard]] NetlistFormat format_from_path(const std::string& path);

/// Reads and finalizes a circuit from `path`, dispatching on extension.
/// @throws std::runtime_error on I/O failure or malformed input (parse
///   failures are ParseError with a line:column prefix)
[[nodiscard]] Circuit load_circuit_file(const std::string& path);

/// Writes `ckt` to `path` in the format implied by its extension.
/// @throws std::runtime_error on I/O failure; std::invalid_argument when
///   the circuit cannot be expressed in the target format
void save_circuit_file(const Circuit& ckt, const std::string& path);

/// Summary statistics of a finalized circuit (the `cpsinw_netlist stats`
/// payload).
struct CircuitStats {
  int gates = 0;
  int nets = 0;
  int primary_inputs = 0;
  int primary_outputs = 0;
  int levels = 0;       ///< longest gate path (logic depth)
  int transistors = 0;  ///< sum over cell templates
  /// Gate count per CellKind, indexed by all_cell_kinds() order.
  std::array<int, 7> per_cell = {};
};

/// Computes summary statistics (the circuit must be finalized).
[[nodiscard]] CircuitStats circuit_stats(const Circuit& ckt);

/// Renders stats as a stable single-object JSON string (keys: file-free;
/// callers add context).  Used by the CLI and the CI artifact.
[[nodiscard]] std::string stats_json(const CircuitStats& stats);

}  // namespace cpsinw::logic
