#include "logic/netlist_format.hpp"

#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace cpsinw::logic {

namespace {

gates::CellKind parse_cell(const std::string& token, int line) {
  for (const gates::CellKind kind : gates::all_cell_kinds())
    if (token == gates::to_string(kind)) return kind;
  throw std::runtime_error("netlist line " + std::to_string(line) +
                           ": unknown cell '" + token + "'");
}

}  // namespace

void write_netlist(std::ostream& os, const Circuit& ckt) {
  os << "# cpsinw netlist: " << ckt.gate_count() << " gates, "
     << ckt.net_count() << " nets\n";
  os << "input";
  for (const NetId n : ckt.primary_inputs()) os << ' ' << ckt.net_name(n);
  os << '\n';
  os << "output";
  for (const NetId n : ckt.primary_outputs()) os << ' ' << ckt.net_name(n);
  os << '\n';
  for (NetId n = 0; n < ckt.net_count(); ++n) {
    const LogicV c = ckt.constant_of(n);
    if (c == LogicV::k0) os << "const0 " << ckt.net_name(n) << '\n';
    if (c == LogicV::k1) os << "const1 " << ckt.net_name(n) << '\n';
  }
  for (const int gid : ckt.topo_order()) {
    const GateInst& g = ckt.gate(gid);
    os << "gate " << gates::to_string(g.kind) << ' ' << ckt.net_name(g.out)
       << " =";
    for (int i = 0; i < g.input_count(); ++i)
      os << ' ' << ckt.net_name(g.in[static_cast<std::size_t>(i)]);
    os << '\n';
  }
}

Circuit read_netlist(std::istream& is) {
  Circuit ckt;
  std::map<std::string, NetId> known;
  const auto net = [&](const std::string& name) {
    const auto it = known.find(name);
    if (it != known.end()) return it->second;
    const NetId id = ckt.add_net(name);
    known.emplace(name, id);
    return id;
  };

  std::string line;
  int line_no = 0;
  std::vector<std::string> outputs;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string head;
    if (!(ls >> head)) continue;

    if (head == "input") {
      std::string name;
      while (ls >> name) {
        if (known.count(name) != 0)
          throw std::runtime_error("netlist line " + std::to_string(line_no) +
                                   ": duplicate net '" + name + "'");
        known.emplace(name, ckt.add_primary_input(name));
      }
    } else if (head == "output") {
      std::string name;
      while (ls >> name) outputs.push_back(name);
    } else if (head == "const0" || head == "const1") {
      std::string name;
      if (!(ls >> name))
        throw std::runtime_error("netlist line " + std::to_string(line_no) +
                                 ": const needs a net name");
      if (known.count(name) != 0)
        throw std::runtime_error("netlist line " + std::to_string(line_no) +
                                 ": duplicate net '" + name + "'");
      known.emplace(name, ckt.add_constant(head == "const1" ? LogicV::k1
                                                            : LogicV::k0,
                                           name));
    } else if (head == "gate") {
      std::string cell_name, out_name, eq;
      if (!(ls >> cell_name >> out_name >> eq) || eq != "=")
        throw std::runtime_error("netlist line " + std::to_string(line_no) +
                                 ": expected 'gate CELL out = in...'");
      const gates::CellKind kind = parse_cell(cell_name, line_no);
      std::vector<NetId> ins;
      std::string in_name;
      while (ls >> in_name) ins.push_back(net(in_name));
      if (static_cast<int>(ins.size()) != gates::input_count(kind))
        throw std::runtime_error("netlist line " + std::to_string(line_no) +
                                 ": wrong input count for " + cell_name);
      ckt.add_gate(kind, ins, net(out_name));
    } else {
      throw std::runtime_error("netlist line " + std::to_string(line_no) +
                               ": unknown directive '" + head + "'");
    }
  }
  for (const std::string& name : outputs) {
    const auto it = known.find(name);
    if (it == known.end())
      throw std::runtime_error("netlist: output '" + name +
                               "' never defined");
    ckt.mark_primary_output(it->second);
  }
  ckt.finalize();
  return ckt;
}

std::string to_netlist_string(const Circuit& ckt) {
  std::ostringstream oss;
  write_netlist(oss, ckt);
  return oss.str();
}

}  // namespace cpsinw::logic
