// Gate-level netlist built from the CP cell library.
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "gates/cell.hpp"
#include "logic/types.hpp"

namespace cpsinw::logic {

/// Net identifier within a Circuit.
using NetId = int;

/// One gate instance.
struct GateInst {
  int id = -1;
  gates::CellKind kind = gates::CellKind::kInv;
  std::array<NetId, 3> in = {-1, -1, -1};  ///< unused pins = -1
  NetId out = -1;
  std::string name;

  [[nodiscard]] int input_count() const {
    return gates::input_count(kind);
  }
};

/// A combinational gate-level circuit.  Nets have a single driver (a gate,
/// a primary input, or a constant); cycles are rejected at validation.
class Circuit {
 public:
  /// Creates a named net (auto-named when empty); returns its id.
  NetId add_net(std::string name = "");

  /// Creates a net driven as a primary input.
  NetId add_primary_input(std::string name);

  /// Creates a net tied to a constant value.
  NetId add_constant(LogicV value, std::string name = "");

  /// Marks an existing net as a primary output (a net may be both an
  /// internal fanout source and a PO).
  void mark_primary_output(NetId net);

  /// Adds a gate driving `out` from `ins`.
  /// @returns the gate id
  /// @throws std::invalid_argument on arity mismatch or double-driven net
  int add_gate(gates::CellKind kind, const std::vector<NetId>& ins,
               NetId out, std::string name = "");

  /// Validates structure and computes the topological order.
  /// @throws std::runtime_error on combinational cycles or undriven nets
  void finalize();

  [[nodiscard]] bool finalized() const { return finalized_; }

  [[nodiscard]] int net_count() const {
    return static_cast<int>(net_names_.size());
  }
  [[nodiscard]] int gate_count() const {
    return static_cast<int>(gates_.size());
  }
  [[nodiscard]] const GateInst& gate(int id) const {
    return gates_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] const std::vector<GateInst>& gates() const { return gates_; }

  [[nodiscard]] const std::vector<NetId>& primary_inputs() const {
    return pis_;
  }
  [[nodiscard]] const std::vector<NetId>& primary_outputs() const {
    return pos_;
  }

  /// Topologically sorted gate ids (valid after finalize()).
  [[nodiscard]] const std::vector<int>& topo_order() const;

  /// Gate driving a net, or -1 for PI/constant nets.
  [[nodiscard]] int driver_of(NetId net) const {
    return driver_.at(static_cast<std::size_t>(net));
  }

  /// Constant value of a net (kX when the net is not a constant).
  [[nodiscard]] LogicV constant_of(NetId net) const {
    return constants_.at(static_cast<std::size_t>(net));
  }

  /// True when the net is a primary input.
  [[nodiscard]] bool is_primary_input(NetId net) const;

  /// Gates reading a net.
  [[nodiscard]] const std::vector<int>& fanout(NetId net) const {
    return fanout_.at(static_cast<std::size_t>(net));
  }

  [[nodiscard]] const std::string& net_name(NetId net) const {
    return net_names_.at(static_cast<std::size_t>(net));
  }

  /// Net lookup by name.
  /// @throws std::out_of_range when missing
  [[nodiscard]] NetId find_net(std::string_view name) const;

  /// Total transistor count over all gate instances.
  [[nodiscard]] int transistor_count() const;

 private:
  void check_net(NetId net) const;

  std::vector<std::string> net_names_;
  std::unordered_map<std::string, NetId> net_by_name_;
  std::vector<int> driver_;          ///< per net: gate id or -1
  std::vector<LogicV> constants_;    ///< per net: constant value or kX
  std::vector<char> is_pi_;          ///< per net
  std::vector<std::vector<int>> fanout_;
  std::vector<GateInst> gates_;
  std::vector<NetId> pis_;
  std::vector<NetId> pos_;
  std::vector<int> topo_;
  bool finalized_ = false;
  int anon_counter_ = 0;
};

}  // namespace cpsinw::logic
