// AVX-512VL instantiations of the SoA plane kernels.  Same 256-bit shape
// as the AVX2 TU (so plane layout, batch lanes, and strip logic are
// untouched), but every gate evaluation lowers to one VPTERNLOGQ — the
// 3-input truth-table instruction — instead of the 2–5 bitwise ops the
// generic template needs (maj3 alone is five).  This is the only TU
// compiled with -mavx512f -mavx512vl (see the CPSINW_SIMD block in
// CMakeLists.txt); when the build disables or cannot use AVX-512 the
// macro is absent and the TU compiles empty.  The entry points are
// reached only after simd::active_backend() confirmed the running CPU
// has AVX512F + AVX512VL.
#if defined(CPSINW_SIMD_AVX512)

#include <immintrin.h>

#include "logic/packed_kernels.hpp"

namespace cpsinw::logic::kernels {

namespace {

/// __m256i wrapper satisfying the packed-kernel vector concept; identical
/// to the AVX2 wrapper except that eval_cell_vec is overloaded below to
/// use ternary-logic instructions.
struct M256T {
  __m256i v;

  static M256T load(const std::uint64_t* p) {
    return M256T{_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static void store(std::uint64_t* p, const M256T& x) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), x.v);
  }
  static M256T splat(std::uint64_t x) {
    return M256T{_mm256_set1_epi64x(static_cast<long long>(x))};
  }
  void set_lane(std::size_t i, std::uint64_t x) {
    alignas(32) std::uint64_t tmp[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    tmp[i] = x;
    v = _mm256_load_si256(reinterpret_cast<const __m256i*>(tmp));
  }
  [[nodiscard]] std::uint64_t lane(std::size_t i) const {
    alignas(32) std::uint64_t tmp[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    return tmp[i];
  }

  friend M256T operator&(const M256T& a, const M256T& b) {
    return M256T{_mm256_and_si256(a.v, b.v)};
  }
  friend M256T operator|(const M256T& a, const M256T& b) {
    return M256T{_mm256_or_si256(a.v, b.v)};
  }
  friend M256T operator^(const M256T& a, const M256T& b) {
    return M256T{_mm256_xor_si256(a.v, b.v)};
  }
  friend M256T operator~(const M256T& a) {
    return M256T{_mm256_xor_si256(a.v, _mm256_set1_epi64x(-1))};
  }
};

/// One VPTERNLOGQ per gate: imm8 bit ((a<<2)|(b<<1)|c) is the cell's
/// output for that input combination — the same truth tables the
/// interpreted evaluator collapses to on binary planes, so this stays
/// bit-identical to every other backend by construction.
inline M256T eval_cell_vec(gates::CellKind kind, const M256T& a,
                           const M256T& b, const M256T& c) {
  using gates::CellKind;
  switch (kind) {
    case CellKind::kInv:
      return M256T{_mm256_ternarylogic_epi64(a.v, b.v, c.v, 0x0F)};
    case CellKind::kBuf:
      return M256T{_mm256_ternarylogic_epi64(a.v, b.v, c.v, 0xF0)};
    case CellKind::kNand2:
      return M256T{_mm256_ternarylogic_epi64(a.v, b.v, c.v, 0x3F)};
    case CellKind::kNor2:
      return M256T{_mm256_ternarylogic_epi64(a.v, b.v, c.v, 0x03)};
    case CellKind::kXor2:
      return M256T{_mm256_ternarylogic_epi64(a.v, b.v, c.v, 0x3C)};
    case CellKind::kXor3:
      return M256T{_mm256_ternarylogic_epi64(a.v, b.v, c.v, 0x96)};
    case CellKind::kMaj3:
      return M256T{_mm256_ternarylogic_epi64(a.v, b.v, c.v, 0xE8)};
  }
  return M256T::splat(0);
}

}  // namespace

void eval_planes_avx512(const CompiledCircuit& cc, std::uint64_t* planes,
                        std::size_t stride) {
  eval_planes_t<M256T>(cc, planes, stride);
}

std::size_t eval_line_batch_avx512(
    const CompiledCircuit& cc, const std::uint64_t* good, std::size_t stride,
    std::size_t n_words, const std::uint64_t* active,
    const CompiledCircuit::LineFault* faults, std::size_t n_faults,
    std::uint64_t* det, std::vector<std::uint64_t>& lane_scratch) {
  return eval_line_batch_t<M256T>(cc, good, stride, n_words, active, faults,
                                  n_faults, det, lane_scratch);
}

void eval_faulty_planes_avx512(const CompiledCircuit& cc,
                               const std::uint64_t* good, std::size_t stride,
                               std::size_t n_words, int fault_gate,
                               const gates::FaultAnalysis& fa,
                               std::uint64_t* diff, std::uint64_t* contention,
                               std::vector<std::uint64_t>& lane_scratch) {
  eval_faulty_planes_t<M256T>(cc, good, stride, n_words, fault_gate, fa, diff,
                              contention, lane_scratch);
}

}  // namespace cpsinw::logic::kernels

#endif  // CPSINW_SIMD_AVX512
