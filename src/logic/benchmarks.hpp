// Benchmark circuit generators built from the CP cell library.  These are
// the workloads the ATPG/fault-simulation experiments run on; the adder and
// voter showcase the XOR/MAJ-friendliness of controllable-polarity logic
// (a full adder is exactly one XOR3 plus one MAJ3).
#pragma once

#include <cstdint>

#include "logic/circuit.hpp"

namespace cpsinw::logic {

/// Single-bit full adder: sum = XOR3(a,b,cin), cout = MAJ3(a,b,cin).
[[nodiscard]] Circuit full_adder();

/// n-bit ripple-carry adder (2n gates).
/// @param bits word width (>= 1)
[[nodiscard]] Circuit ripple_adder(int bits);

/// n-input XOR parity tree built from XOR3/XOR2 cells.
/// @param inputs number of leaves (>= 2)
[[nodiscard]] Circuit parity_tree(int inputs);

/// 2x2 combinational multiplier (NAND/INV partial products + adders).
[[nodiscard]] Circuit multiplier_2x2();

/// Triple-modular-redundancy voter over `channels` triplicated signals:
/// one MAJ3 per channel plus an AND-reduce of the votes.
[[nodiscard]] Circuit tmr_voter(int channels);

/// The classic c17 benchmark (6 NAND2 gates, 5 inputs, 2 outputs).
[[nodiscard]] Circuit c17();

/// One ALU bit-slice: op-selectable AND / OR / XOR / ADD with carry chain
/// folded in (uses NAND, NOR, XOR2, XOR3, MAJ3 and INV cells).
[[nodiscard]] Circuit alu_slice();

/// Array of carry-chained ALU bit-slices sharing one select bus: slice i
/// adds PIs a<i>/b<i>, the carry ripples slice to slice (~24 gates per
/// slice).  64 slices lands ~1.5k gates, 384 ~9k — the circuit-scale
/// workloads behind the large `.bench` fixtures.
/// @param slices number of bit-slices (>= 1)
[[nodiscard]] Circuit alu_array(int slices);

/// Multi-operand adder: sums `operands` words of `bits` bits through a
/// balanced tree of ripple adders (XOR3/MAJ3 full adders, half adders at
/// the chain ends — no constant nets, so the circuit exports to .bench).
/// @param operands number of input words (>= 2)
/// @param bits word width (>= 1)
[[nodiscard]] Circuit adder_tree(int operands, int bits);

/// Odd-parity checker with dynamic-polarity XOR3 cells only.
/// @param inputs number of leaves, must satisfy inputs % 2 == 1 and >= 3
[[nodiscard]] Circuit xor3_parity_chain(int inputs);

/// Pseudo-random combinational circuit for property testing: `gates`
/// gates over `inputs` primary inputs, with every dangling net promoted to
/// a primary output.  Deterministic in `seed`.
/// @param inputs number of PIs (>= 2)
/// @param gates number of gates (>= 1)
[[nodiscard]] Circuit random_circuit(std::uint64_t seed, int inputs,
                                     int gates);

}  // namespace cpsinw::logic
