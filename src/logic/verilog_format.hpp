// Structural-Verilog subset reader/writer.  Example:
//
//   // one-bit full adder on CP cells
//   module full_adder (a, b, cin, sum, cout);
//     input a, b, cin;
//     output sum, cout;
//     xor (sum, a, b, cin);
//     MAJ3 u1 (.Y(cout), .A(a), .B(b), .C(cin));
//   endmodule
//
// Accepted constructs: one module with a non-ANSI port list; `input` /
// `output` / `wire` scalar declarations; gate primitives (and nand or
// nor xor xnor not buf, optional instance name, positional terminals,
// output first); CP named-cell instantiations (INV BUF NAND2 NOR2 XOR2
// XOR3 MAJ3, case-insensitive, positional or named `.Y/.A/.B/.C` ports);
// `//` and `/* */` comments; escaped identifiers (`\name `).  Every net
// referenced by an instantiation must be declared.  `assign`, `always`,
// `initial`, `reg`, vectors, and ANSI-style header declarations are
// rejected with targeted diagnostics.  All diagnostics are
// logic::ParseError ("verilog line L:C: ...").
//
// The writer emits structurally exact Verilog (MAJ3 as a named-cell
// instantiation, XOR3 as a 3-input xor primitive); names outside the
// identifier charset are emitted as escaped identifiers, so output
// always reads back.  Constant nets raise std::invalid_argument.
#pragma once

#include <iosfwd>
#include <string>

#include "logic/circuit.hpp"

namespace cpsinw::logic {

/// Parses the structural-Verilog subset and returns the finalized circuit.
/// @throws ParseError ("verilog line L:C: ...") on malformed input
[[nodiscard]] Circuit read_verilog(std::istream& is);

/// Parses Verilog held in a string (test/tool convenience).
[[nodiscard]] Circuit read_verilog_string(const std::string& text);

/// Writes a circuit as one structural-Verilog module named `module_name`.
/// @throws std::invalid_argument when the circuit has constant nets
void write_verilog(std::ostream& os, const Circuit& ckt,
                   const std::string& module_name = "cpsinw_circuit");

/// Round-trip helper used by tests and the CLI.
[[nodiscard]] std::string to_verilog_string(
    const Circuit& ckt, const std::string& module_name = "cpsinw_circuit");

}  // namespace cpsinw::logic
