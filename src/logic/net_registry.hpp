// Name-keyed netlist construction shared by the foreign-format readers
// (.bench, structural Verilog).  The registry is a two-phase builder:
// parsers record declarations and gate instantiations against *names*
// (forward references are legal in both formats), and finish() resolves
// everything into the repo's id-based logic::Circuit — primary inputs in
// declaration order, referenced nets in first-reference order, gates in
// file order, foreign gates decomposed onto the CP cell library through
// logic::cell_mapping.  Every diagnostic carries the 1-based line and
// column of the offending token (ParseError), matching the line-numbered
// contract of the `.cpn` reader in logic/netlist_format.hpp.
#pragma once

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "gates/cell.hpp"
#include "logic/cell_mapping.hpp"
#include "logic/circuit.hpp"

namespace cpsinw::logic {

/// Source location of a token inside a netlist file (1-based; column 0 =
/// whole line).
struct SourceLoc {
  int line = 0;
  int column = 0;
};

/// Parse failure with source coordinates.  what() is preformatted as
/// "<format> line L:C: message" so callers that only know
/// std::runtime_error (the `.cpn` contract) still surface a line-numbered
/// diagnostic.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& format, SourceLoc loc,
             const std::string& message);

  [[nodiscard]] int line() const { return loc_.line; }
  [[nodiscard]] int column() const { return loc_.column; }

 private:
  SourceLoc loc_;
};

/// Collects a netlist by name and materializes it as a logic::Circuit.
///
/// Duplicate-driver, duplicate-declaration, and undriven-net conditions
/// are diagnosed with the location of both the offense and the earlier
/// conflicting statement.  Foreign gates of any arity are accepted and
/// decomposed at finish() (see cell_mapping.hpp); CP cells are
/// arity-checked at add time.
class NetRegistry {
 public:
  /// @param format short reader name used as the diagnostic prefix
  ///   ("bench", "verilog")
  explicit NetRegistry(std::string format);

  /// Declares a primary input (PI order = declaration order).
  /// @throws ParseError on a duplicate declaration or an already-driven net
  void add_input(const std::string& name, SourceLoc loc);

  /// Declares a primary output (resolved at finish(); the net may be
  /// defined later in the file).
  void add_output(const std::string& name, SourceLoc loc);

  /// Records a foreign gate driving `out` (decomposed at finish()).
  /// @throws ParseError on arity 0, NOT/BUF arity != 1, or a duplicate
  ///   driver for `out`
  void add_foreign_gate(ForeignGate gate, const std::string& out,
                        const std::vector<std::string>& ins, SourceLoc loc);

  /// Records a CP library cell driving `out`.
  /// @throws ParseError on an arity mismatch or a duplicate driver
  void add_cp_gate(gates::CellKind kind, const std::string& out,
                   const std::vector<std::string>& ins, SourceLoc loc);

  /// Number of gate statements recorded so far (pre-decomposition).
  [[nodiscard]] std::size_t statement_count() const {
    return gates_.size();
  }

  /// Resolves names, decomposes foreign gates, marks outputs, and returns
  /// the finalized circuit.
  /// @throws ParseError on an undriven net or an undefined output;
  ///   std::runtime_error on a combinational cycle (no single source line
  ///   owns a cycle)
  [[nodiscard]] Circuit finish();

  /// Raises a ParseError with this registry's format prefix (shared by
  /// the parsers so every diagnostic is formatted one way).
  [[noreturn]] void fail(SourceLoc loc, const std::string& message) const;

 private:
  struct NetEntry {
    SourceLoc first_use;          ///< earliest reference (any role)
    SourceLoc driver_loc;         ///< valid when driven
    bool is_input = false;
    bool driven = false;
  };
  struct GateEntry {
    bool foreign = false;
    ForeignGate fg = ForeignGate::kAnd;
    gates::CellKind cp = gates::CellKind::kInv;
    std::string out;
    std::vector<std::string> ins;
    SourceLoc loc;
  };

  NetEntry& touch(const std::string& name, SourceLoc loc);
  void claim_driver(const std::string& name, SourceLoc loc);

  std::string format_;
  std::unordered_map<std::string, NetEntry> nets_;
  std::vector<std::string> net_order_;  ///< first-reference order
  std::vector<std::string> inputs_;
  std::vector<std::pair<std::string, SourceLoc>> outputs_;
  std::vector<GateEntry> gates_;
};

}  // namespace cpsinw::logic
