// The documented mapping from foreign gate vocabularies (ISCAS `.bench`,
// Verilog gate primitives) onto the CP cell library, so the fault
// universe of an ingested circuit is well-defined: every foreign gate
// lowers to a fixed composition of the seven Fig. 2 cells, and the fault
// models then apply to those cells exactly as they do to native circuits.
//
//   foreign    arity   CP expansion
//   ---------  ------  ----------------------------------------------
//   NOT        1       INV
//   BUF/BUFF   1       BUF
//   AND        n >= 1  balanced NAND2/INV tree, final INV(NAND2(l, r))
//   NAND       n >= 1  AND halves, final NAND2 (1 input: INV)
//   OR         n >= 1  balanced NOR2/INV tree, final INV(NOR2(l, r))
//   NOR        n >= 1  OR halves, final NOR2 (1 input: INV)
//   XOR        n >= 1  balanced XOR3/XOR2 parity tree
//   XNOR       n >= 1  XOR tree, final INV (1 input: INV)
//
// Single-input AND/OR/XOR degenerate to BUF.  Decomposition is balanced
// (tree depth ceil(log of arity)), deterministic, and synthesized
// intermediate nets are named "<out>$k" — '$' cannot appear in a `.bench`
// or Verilog-subset net name, so synthesized names never collide with
// user nets (they do survive `.cpn` round trips, by design).
// docs/FORMATS.md renders this table for users.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "logic/circuit.hpp"

namespace cpsinw::logic {

/// Gate vocabulary accepted from foreign netlist formats.
enum class ForeignGate {
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kNot,
  kBuf,
};

/// Canonical upper-case name ("AND", "XNOR", ...).
[[nodiscard]] const char* to_string(ForeignGate gate);

/// Parses a foreign gate name case-insensitively ("BUFF" is accepted as
/// BUF — the ISCAS-85 spelling); nullopt when unknown.
[[nodiscard]] std::optional<ForeignGate> foreign_gate_from(
    std::string_view token);

/// One row of the documented mapping table (what docs/FORMATS.md and the
/// CLI print; the authoritative behavior is emit_foreign_gate).
struct CellMappingRow {
  const char* foreign;    ///< foreign gate name(s)
  const char* arity;      ///< accepted arity, human-readable
  const char* expansion;  ///< CP cell composition
};

/// The full foreign-to-CP mapping table, in a stable order.
[[nodiscard]] const std::vector<CellMappingRow>& cell_mapping_table();

/// Appends the CP expansion of one foreign gate to `ckt`: inputs `ins`,
/// result driving `out`.  Intermediate nets are created as
/// "<prefix>$0", "<prefix>$1", ... (the caller guarantees the '$'
/// namespace is free of user nets).  Gate count grows by the expansion
/// size; exactly one gate drives `out`.
/// @throws std::invalid_argument on arity 0, or NOT/BUF with arity != 1
///   (parsers check first and report with source locations)
void emit_foreign_gate(Circuit& ckt, ForeignGate gate,
                       const std::vector<NetId>& ins, NetId out,
                       const std::string& prefix);

}  // namespace cpsinw::logic
