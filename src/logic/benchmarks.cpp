#include "logic/benchmarks.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "util/rng.hpp"

namespace cpsinw::logic {

using gates::CellKind;

Circuit full_adder() {
  Circuit c;
  const NetId a = c.add_primary_input("a");
  const NetId b = c.add_primary_input("b");
  const NetId cin = c.add_primary_input("cin");
  const NetId sum = c.add_net("sum");
  const NetId cout = c.add_net("cout");
  c.add_gate(CellKind::kXor3, {a, b, cin}, sum, "sum_xor");
  c.add_gate(CellKind::kMaj3, {a, b, cin}, cout, "carry_maj");
  c.mark_primary_output(sum);
  c.mark_primary_output(cout);
  c.finalize();
  return c;
}

Circuit ripple_adder(int bits) {
  if (bits < 1) throw std::invalid_argument("ripple_adder: bits >= 1");
  Circuit c;
  std::vector<NetId> a(static_cast<std::size_t>(bits));
  std::vector<NetId> b(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i)
    a[static_cast<std::size_t>(i)] =
        c.add_primary_input("a" + std::to_string(i));
  for (int i = 0; i < bits; ++i)
    b[static_cast<std::size_t>(i)] =
        c.add_primary_input("b" + std::to_string(i));
  NetId carry = c.add_primary_input("cin");
  for (int i = 0; i < bits; ++i) {
    const std::string suffix = std::to_string(i);
    const NetId sum = c.add_net("s" + suffix);
    const NetId cout = c.add_net("c" + suffix);
    c.add_gate(CellKind::kXor3,
               {a[static_cast<std::size_t>(i)],
                b[static_cast<std::size_t>(i)], carry},
               sum, "fa_sum" + suffix);
    c.add_gate(CellKind::kMaj3,
               {a[static_cast<std::size_t>(i)],
                b[static_cast<std::size_t>(i)], carry},
               cout, "fa_carry" + suffix);
    c.mark_primary_output(sum);
    carry = cout;
  }
  c.mark_primary_output(carry);
  c.finalize();
  return c;
}

Circuit parity_tree(int inputs) {
  if (inputs < 2) throw std::invalid_argument("parity_tree: inputs >= 2");
  Circuit c;
  std::vector<NetId> level;
  for (int i = 0; i < inputs; ++i)
    level.push_back(c.add_primary_input("x" + std::to_string(i)));
  int stage = 0;
  while (level.size() > 1) {
    std::vector<NetId> next;
    std::size_t i = 0;
    while (i < level.size()) {
      const std::size_t remaining = level.size() - i;
      if (remaining >= 3) {
        const NetId out = c.add_net();
        c.add_gate(CellKind::kXor3, {level[i], level[i + 1], level[i + 2]},
                   out, "px3_" + std::to_string(stage) + "_" +
                            std::to_string(i));
        next.push_back(out);
        i += 3;
      } else if (remaining == 2) {
        const NetId out = c.add_net();
        c.add_gate(CellKind::kXor2, {level[i], level[i + 1]}, out,
                   "px2_" + std::to_string(stage) + "_" + std::to_string(i));
        next.push_back(out);
        i += 2;
      } else {
        next.push_back(level[i]);
        i += 1;
      }
    }
    level = std::move(next);
    ++stage;
  }
  c.mark_primary_output(level.front());
  c.finalize();
  return c;
}

Circuit multiplier_2x2() {
  Circuit c;
  const NetId a0 = c.add_primary_input("a0");
  const NetId a1 = c.add_primary_input("a1");
  const NetId b0 = c.add_primary_input("b0");
  const NetId b1 = c.add_primary_input("b1");

  // AND = NAND + INV in this library.
  const auto make_and = [&c](NetId x, NetId y, const std::string& name) {
    const NetId n = c.add_net(name + "_n");
    const NetId o = c.add_net(name);
    c.add_gate(CellKind::kNand2, {x, y}, n, name + "_nand");
    c.add_gate(CellKind::kInv, {n}, o, name + "_inv");
    return o;
  };

  const NetId p00 = make_and(a0, b0, "p00");  // bit 0
  const NetId p01 = make_and(a0, b1, "p01");
  const NetId p10 = make_and(a1, b0, "p10");
  const NetId p11 = make_and(a1, b1, "p11");

  // m1 = p01 xor p10; carry k = p01 and p10.
  const NetId m1 = c.add_net("m1");
  c.add_gate(CellKind::kXor2, {p01, p10}, m1, "ha1_xor");
  const NetId k = make_and(p01, p10, "ha1_and");

  // m2 = p11 xor k; m3 = p11 and k.
  const NetId m2 = c.add_net("m2");
  c.add_gate(CellKind::kXor2, {p11, k}, m2, "ha2_xor");
  const NetId m3 = make_and(p11, k, "ha2_and");

  c.mark_primary_output(p00);
  c.mark_primary_output(m1);
  c.mark_primary_output(m2);
  c.mark_primary_output(m3);
  c.finalize();
  return c;
}

Circuit tmr_voter(int channels) {
  if (channels < 1) throw std::invalid_argument("tmr_voter: channels >= 1");
  Circuit c;
  std::vector<NetId> votes;
  for (int ch = 0; ch < channels; ++ch) {
    const std::string suffix = std::to_string(ch);
    const NetId x0 = c.add_primary_input("ch" + suffix + "_0");
    const NetId x1 = c.add_primary_input("ch" + suffix + "_1");
    const NetId x2 = c.add_primary_input("ch" + suffix + "_2");
    const NetId vote = c.add_net("vote" + suffix);
    c.add_gate(CellKind::kMaj3, {x0, x1, x2}, vote, "maj" + suffix);
    c.mark_primary_output(vote);
    votes.push_back(vote);
  }
  // AND-reduce the votes into an all-good flag (NAND + INV pairs).
  NetId acc = votes.front();
  for (std::size_t i = 1; i < votes.size(); ++i) {
    const NetId n = c.add_net();
    const NetId o = c.add_net();
    c.add_gate(CellKind::kNand2, {acc, votes[i]}, n);
    c.add_gate(CellKind::kInv, {n}, o);
    acc = o;
  }
  if (votes.size() > 1) c.mark_primary_output(acc);
  c.finalize();
  return c;
}

Circuit c17() {
  Circuit c;
  const NetId n1 = c.add_primary_input("1");
  const NetId n2 = c.add_primary_input("2");
  const NetId n3 = c.add_primary_input("3");
  const NetId n6 = c.add_primary_input("6");
  const NetId n7 = c.add_primary_input("7");
  const NetId n10 = c.add_net("10");
  const NetId n11 = c.add_net("11");
  const NetId n16 = c.add_net("16");
  const NetId n19 = c.add_net("19");
  const NetId n22 = c.add_net("22");
  const NetId n23 = c.add_net("23");
  c.add_gate(CellKind::kNand2, {n1, n3}, n10, "g10");
  c.add_gate(CellKind::kNand2, {n3, n6}, n11, "g11");
  c.add_gate(CellKind::kNand2, {n2, n11}, n16, "g16");
  c.add_gate(CellKind::kNand2, {n11, n7}, n19, "g19");
  c.add_gate(CellKind::kNand2, {n10, n16}, n22, "g22");
  c.add_gate(CellKind::kNand2, {n16, n19}, n23, "g23");
  c.mark_primary_output(n22);
  c.mark_primary_output(n23);
  c.finalize();
  return c;
}

Circuit alu_slice() {
  Circuit c;
  const NetId a = c.add_primary_input("a");
  const NetId b = c.add_primary_input("b");
  const NetId cin = c.add_primary_input("cin");
  const NetId s0 = c.add_primary_input("s0");
  const NetId s1 = c.add_primary_input("s1");

  // Function units.
  const NetId nand_ab = c.add_net("nand_ab");
  c.add_gate(CellKind::kNand2, {a, b}, nand_ab, "u_nand");
  const NetId and_ab = c.add_net("and_ab");
  c.add_gate(CellKind::kInv, {nand_ab}, and_ab, "u_and");
  const NetId nor_ab = c.add_net("nor_ab");
  c.add_gate(CellKind::kNor2, {a, b}, nor_ab, "u_nor");
  const NetId or_ab = c.add_net("or_ab");
  c.add_gate(CellKind::kInv, {nor_ab}, or_ab, "u_or");
  const NetId xor_ab = c.add_net("xor_ab");
  c.add_gate(CellKind::kXor2, {a, b}, xor_ab, "u_xor");
  const NetId sum = c.add_net("sum");
  c.add_gate(CellKind::kXor3, {a, b, cin}, sum, "u_sum");
  const NetId cout = c.add_net("cout");
  c.add_gate(CellKind::kMaj3, {a, b, cin}, cout, "u_cout");

  // 4:1 mux out = s1 ? (s0 ? sum : xor) : (s0 ? or : and), built from
  // NAND2/INV (sel lines inverted once).
  const NetId s0n = c.add_net("s0n");
  c.add_gate(CellKind::kInv, {s0}, s0n, "inv_s0");
  const NetId s1n = c.add_net("s1n");
  c.add_gate(CellKind::kInv, {s1}, s1n, "inv_s1");

  const auto gated = [&c](NetId x, NetId g0, NetId g1,
                          const std::string& name) {
    // term = NAND(x, AND(g0,g1)) -> build AND(g0,g1) then NAND with x.
    const NetId gn = c.add_net(name + "_gn");
    c.add_gate(CellKind::kNand2, {g0, g1}, gn, name + "_gnand");
    const NetId ga = c.add_net(name + "_ga");
    c.add_gate(CellKind::kInv, {gn}, ga, name + "_ginv");
    const NetId term = c.add_net(name + "_t");
    c.add_gate(CellKind::kNand2, {x, ga}, term, name + "_term");
    return term;  // active-low product term
  };

  const NetId t0 = gated(and_ab, s0n, s1n, "m_and");
  const NetId t1 = gated(or_ab, s0, s1n, "m_or");
  const NetId t2 = gated(xor_ab, s0n, s1, "m_xor");
  const NetId t3 = gated(sum, s0, s1, "m_sum");

  // out = OR of the four products = NAND over all four active-low terms:
  // AND pairs first (NAND2 + INV), then a final NAND2.
  const NetId u = c.add_net("mux_u");
  c.add_gate(CellKind::kNand2, {t0, t1}, u, "mux_u_nand");
  const NetId v = c.add_net("mux_v");
  c.add_gate(CellKind::kNand2, {t2, t3}, v, "mux_v_nand");
  const NetId un = c.add_net("mux_un");
  c.add_gate(CellKind::kInv, {u}, un, "mux_u_inv");
  const NetId vn = c.add_net("mux_vn");
  c.add_gate(CellKind::kInv, {v}, vn, "mux_v_inv");
  const NetId out = c.add_net("out");
  c.add_gate(CellKind::kNand2, {un, vn}, out, "mux_out");

  c.mark_primary_output(out);
  c.mark_primary_output(cout);
  c.finalize();
  return c;
}

Circuit alu_array(int slices) {
  if (slices < 1) throw std::invalid_argument("alu_array: slices >= 1");
  Circuit c;
  std::vector<NetId> a(static_cast<std::size_t>(slices));
  std::vector<NetId> b(static_cast<std::size_t>(slices));
  for (int i = 0; i < slices; ++i)
    a[static_cast<std::size_t>(i)] =
        c.add_primary_input("a" + std::to_string(i));
  for (int i = 0; i < slices; ++i)
    b[static_cast<std::size_t>(i)] =
        c.add_primary_input("b" + std::to_string(i));
  NetId carry = c.add_primary_input("cin");
  const NetId s0 = c.add_primary_input("s0");
  const NetId s1 = c.add_primary_input("s1");

  // Shared inverted select bus.
  const NetId s0n = c.add_net("s0n");
  c.add_gate(CellKind::kInv, {s0}, s0n, "inv_s0");
  const NetId s1n = c.add_net("s1n");
  c.add_gate(CellKind::kInv, {s1}, s1n, "inv_s1");

  for (int i = 0; i < slices; ++i) {
    const std::string p = "u" + std::to_string(i) + "_";
    const NetId ai = a[static_cast<std::size_t>(i)];
    const NetId bi = b[static_cast<std::size_t>(i)];

    // Function units (same structure as alu_slice()).
    const NetId nand_ab = c.add_net(p + "nand_ab");
    c.add_gate(CellKind::kNand2, {ai, bi}, nand_ab, p + "u_nand");
    const NetId and_ab = c.add_net(p + "and_ab");
    c.add_gate(CellKind::kInv, {nand_ab}, and_ab, p + "u_and");
    const NetId nor_ab = c.add_net(p + "nor_ab");
    c.add_gate(CellKind::kNor2, {ai, bi}, nor_ab, p + "u_nor");
    const NetId or_ab = c.add_net(p + "or_ab");
    c.add_gate(CellKind::kInv, {nor_ab}, or_ab, p + "u_or");
    const NetId xor_ab = c.add_net(p + "xor_ab");
    c.add_gate(CellKind::kXor2, {ai, bi}, xor_ab, p + "u_xor");
    const NetId sum = c.add_net(p + "sum");
    c.add_gate(CellKind::kXor3, {ai, bi, carry}, sum, p + "u_sum");
    const NetId cout = c.add_net(p + "cout");
    c.add_gate(CellKind::kMaj3, {ai, bi, carry}, cout, p + "u_cout");

    const auto gated = [&c](NetId x, NetId g0, NetId g1,
                            const std::string& name) {
      const NetId gn = c.add_net(name + "_gn");
      c.add_gate(CellKind::kNand2, {g0, g1}, gn, name + "_gnand");
      const NetId ga = c.add_net(name + "_ga");
      c.add_gate(CellKind::kInv, {gn}, ga, name + "_ginv");
      const NetId term = c.add_net(name + "_t");
      c.add_gate(CellKind::kNand2, {x, ga}, term, name + "_term");
      return term;  // active-low product term
    };

    const NetId t0 = gated(and_ab, s0n, s1n, p + "m_and");
    const NetId t1 = gated(or_ab, s0, s1n, p + "m_or");
    const NetId t2 = gated(xor_ab, s0n, s1, p + "m_xor");
    const NetId t3 = gated(sum, s0, s1, p + "m_sum");

    const NetId u = c.add_net(p + "mux_u");
    c.add_gate(CellKind::kNand2, {t0, t1}, u, p + "mux_u_nand");
    const NetId v = c.add_net(p + "mux_v");
    c.add_gate(CellKind::kNand2, {t2, t3}, v, p + "mux_v_nand");
    const NetId un = c.add_net(p + "mux_un");
    c.add_gate(CellKind::kInv, {u}, un, p + "mux_u_inv");
    const NetId vn = c.add_net(p + "mux_vn");
    c.add_gate(CellKind::kInv, {v}, vn, p + "mux_v_inv");
    const NetId out = c.add_net(p + "out");
    c.add_gate(CellKind::kNand2, {un, vn}, out, p + "mux_out");

    c.mark_primary_output(out);
    carry = cout;
  }
  c.mark_primary_output(carry);
  c.finalize();
  return c;
}

Circuit adder_tree(int operands, int bits) {
  if (operands < 2) throw std::invalid_argument("adder_tree: operands >= 2");
  if (bits < 1) throw std::invalid_argument("adder_tree: bits >= 1");
  Circuit c;

  const auto make_and = [&c](NetId x, NetId y, const std::string& name) {
    const NetId n = c.add_net(name + "_n");
    c.add_gate(CellKind::kNand2, {x, y}, n);
    const NetId o = c.add_net(name);
    c.add_gate(CellKind::kInv, {n}, o);
    return o;
  };

  // Adds two words (LSB first, possibly different widths); no constants.
  int adder_id = 0;
  const auto add_words = [&](std::vector<NetId> x, std::vector<NetId> y) {
    if (x.size() < y.size()) std::swap(x, y);
    const std::string p = "add" + std::to_string(adder_id++) + "_";
    std::vector<NetId> out;
    NetId carry = -1;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const std::string s = p + std::to_string(i);
      const bool has_y = i < y.size();
      if (has_y && carry >= 0) {
        const NetId sum = c.add_net(s + "_s");
        c.add_gate(CellKind::kXor3, {x[i], y[i], carry}, sum);
        const NetId cout = c.add_net(s + "_c");
        c.add_gate(CellKind::kMaj3, {x[i], y[i], carry}, cout);
        out.push_back(sum);
        carry = cout;
      } else if (has_y || carry >= 0) {
        const NetId other = has_y ? y[i] : carry;
        const NetId sum = c.add_net(s + "_s");
        c.add_gate(CellKind::kXor2, {x[i], other}, sum);
        carry = make_and(x[i], other, s + "_c");
        out.push_back(sum);
      } else {
        out.push_back(x[i]);  // nothing left to add into this bit
      }
    }
    if (carry >= 0) out.push_back(carry);
    return out;
  };

  std::vector<std::vector<NetId>> words(
      static_cast<std::size_t>(operands));
  for (int w = 0; w < operands; ++w)
    for (int i = 0; i < bits; ++i)
      words[static_cast<std::size_t>(w)].push_back(c.add_primary_input(
          "x" + std::to_string(w) + "_" + std::to_string(i)));

  // Balanced pairwise reduction.
  while (words.size() > 1) {
    std::vector<std::vector<NetId>> next;
    std::size_t i = 0;
    for (; i + 1 < words.size(); i += 2)
      next.push_back(add_words(std::move(words[i]), std::move(words[i + 1])));
    if (i < words.size()) next.push_back(std::move(words[i]));
    words = std::move(next);
  }
  for (const NetId n : words.front()) c.mark_primary_output(n);
  c.finalize();
  return c;
}

Circuit random_circuit(std::uint64_t seed, int inputs, int gates) {
  if (inputs < 2) throw std::invalid_argument("random_circuit: inputs >= 2");
  if (gates < 1) throw std::invalid_argument("random_circuit: gates >= 1");
  util::SplitMix64 rng(seed);
  Circuit c;
  std::vector<NetId> pool;
  for (int i = 0; i < inputs; ++i)
    pool.push_back(c.add_primary_input("x" + std::to_string(i)));

  static const CellKind kKinds[] = {
      CellKind::kInv,  CellKind::kBuf,  CellKind::kNand2, CellKind::kNor2,
      CellKind::kXor2, CellKind::kXor3, CellKind::kMaj3};
  std::vector<char> read(pool.size(), 0);
  for (int g = 0; g < gates; ++g) {
    const CellKind kind = kKinds[rng.below(std::size(kKinds))];
    std::vector<NetId> ins;
    for (int i = 0; i < gates::input_count(kind); ++i) {
      const std::size_t pick = rng.below(pool.size());
      ins.push_back(pool[pick]);
      read[pick] = 1;
    }
    const NetId out = c.add_net("g" + std::to_string(g));
    c.add_gate(kind, ins, out);
    pool.push_back(out);
    read.push_back(0);
  }
  // Dangling nets become primary outputs so everything is observable.
  bool have_po = false;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (read[i] == 0 && !c.is_primary_input(pool[i])) {
      c.mark_primary_output(pool[i]);
      have_po = true;
    }
  }
  if (!have_po) c.mark_primary_output(pool.back());
  c.finalize();
  return c;
}

Circuit xor3_parity_chain(int inputs) {
  if (inputs < 3 || inputs % 2 == 0)
    throw std::invalid_argument("xor3_parity_chain: odd inputs >= 3");
  Circuit c;
  std::vector<NetId> pis;
  for (int i = 0; i < inputs; ++i)
    pis.push_back(c.add_primary_input("x" + std::to_string(i)));
  NetId acc = pis[0];
  int stage = 0;
  for (std::size_t i = 1; i + 1 < pis.size(); i += 2) {
    const NetId out = c.add_net("p" + std::to_string(stage++));
    c.add_gate(CellKind::kXor3, {acc, pis[i], pis[i + 1]}, out);
    acc = out;
  }
  c.mark_primary_output(acc);
  c.finalize();
  return c;
}

}  // namespace cpsinw::logic
