// One-time compilation of a finalized Circuit into levelized, table-driven
// arrays: the single evaluation kernel under scalar simulation, packed
// 64-pattern fault simulation, and the ATPG forward-implication passes.
//
// The compiler flattens the gate list into topological order (exactly
// Circuit::topo_order(), so every consumer sees the same evaluation
// sequence as the interpreted walk it replaced), resolves every pin to a
// value slot (slot == NetId; unused pins alias slot 0, whose value the
// tables ignore), and attaches to each record the 64-entry 4-valued
// good-machine truth table of its cell kind.  A faulty gate substitutes a
// compiled table derived from its switch-level fault dictionary
// (gates::FaultAnalysis::compiled_*), so the fault-simulation hot loops
// never re-consult dictionary rows per pattern.
//
// Invariants:
//   * the circuit is borrowed and must outlive the CompiledCircuit;
//   * a Circuit is immutable after finalize(), so the tables are built
//     once per CompiledCircuit and never rebuilt — a new Circuit object
//     needs a new compilation;
//   * every kernel is bit-identical to the interpreted evaluator it
//     replaced (pinned by tests/logic/compiled_circuit_test.cpp and the
//     campaign engine's byte-identical-JSON suites).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "gates/fault_dictionary.hpp"
#include "logic/circuit.hpp"
#include "logic/types.hpp"

namespace cpsinw::logic {

class CompiledCircuit {
 public:
  /// Scalar table codes, 2 bits per pin: k0 -> 0, k1 -> 1, kX/kZ -> 2.
  static constexpr unsigned kCode0 = 0;
  static constexpr unsigned kCode1 = 1;
  static constexpr unsigned kCodeX = 2;

  /// One levelized gate record.  `table` points at the shared 64-entry
  /// 4-valued good table of the cell kind, indexed by the packed codes of
  /// the three pins (unused pins contribute don't-care bits: every entry
  /// that differs only in them holds the same value).
  struct GateRec {
    const LogicV* table = nullptr;
    gates::CellKind kind = gates::CellKind::kInv;
    std::uint8_t n_in = 1;
    int id = -1;                          ///< original Circuit gate id
    std::array<NetId, 3> in = {0, 0, 0};  ///< input slots (unused -> 0)
    NetId out = 0;
  };

  /// A line stuck-at fault at the logic layer: either a stem (`net` >= 0)
  /// or an input branch (`gate`, `pin`).
  struct LineFault {
    NetId net = -1;
    int gate = -1;
    int pin = -1;
    bool stuck_one = false;
  };

  /// @param ckt finalized circuit; borrowed, must outlive this object
  /// @throws std::invalid_argument when not finalized
  explicit CompiledCircuit(const Circuit& ckt);

  [[nodiscard]] const Circuit& circuit() const { return *ckt_; }

  /// Gate records in Circuit::topo_order() order.
  [[nodiscard]] const std::vector<GateRec>& gates() const { return gates_; }

  /// Levelized position of a gate id inside gates().
  [[nodiscard]] std::size_t position_of(int gate_id) const {
    assert(gate_id >= 0 &&
           static_cast<std::size_t>(gate_id) < position_.size());
    return position_[static_cast<std::size_t>(gate_id)];
  }

  /// Scalar table code of a value (kZ reads as kX, exactly like the
  /// interpreted X-aware evaluation treated it).
  [[nodiscard]] static unsigned code(LogicV v) {
    constexpr unsigned kCodes[4] = {kCodeX, kCodeX, kCode0, kCode1};
    return kCodes[(static_cast<unsigned>(static_cast<int>(v)) + 2u) & 3u];
  }

  /// The 64-entry 4-valued good table of a cell kind (shared static
  /// storage, derived once per process from eval_cell_x / good_output).
  [[nodiscard]] static const LogicV* good_table(gates::CellKind kind);

  // ---- scalar kernels -----------------------------------------------------

  /// Seeds `values` for a scalar pass: X everywhere, binary constants,
  /// then the pattern over the primary inputs (pattern arity must match;
  /// asserted in debug, callers validate).
  void init_scalar(const std::vector<LogicV>& pattern,
                   std::vector<LogicV>& values) const;

  /// Good-machine forward pass over the whole circuit, in place.
  void eval_scalar(std::vector<LogicV>& values) const;

  /// Forward pass with `fault_gate`'s output produced by the compiled
  /// faulty table of `fa`: binary local inputs index compiled_logic
  /// (floating rows retain `previous_state`, marginal rows read X); any X
  /// local input yields X.  @returns true when a contention row was
  /// excited (the IDDQ observable).
  bool eval_scalar_faulty(std::vector<LogicV>& values, int fault_gate,
                          const gates::FaultAnalysis& fa,
                          const std::vector<LogicV>* previous_state) const;

  // ---- packed 64-pattern kernels -------------------------------------------

  /// Seeds `values` for a packed pass: 0 everywhere, ~0 on constant-1
  /// slots, the packed PI words over the primary inputs.
  void init_packed(const std::vector<std::uint64_t>& pi_words,
                   std::vector<std::uint64_t>& values) const;

  /// Packed good-machine forward pass, in place.
  void eval_packed(std::vector<std::uint64_t>& values) const;

  /// Packed pass with one line forced to a constant.  A stem fault skips
  /// the forced net's driver entirely; a branch fault overrides one pin of
  /// one gate — no per-gate fault checks remain in the loop.
  void eval_packed_line(std::vector<std::uint64_t>& values,
                        const LineFault& fault) const;

  /// Packed pass with `fault_gate` substituted by the compiled
  /// truth/contention masks of `fa` (valid only when fa.compiled_binary).
  /// @returns the contention word (bit k: pattern k excites a contention
  ///   row — the per-pattern IDDQ excitation mask)
  std::uint64_t eval_packed_faulty(std::vector<std::uint64_t>& values,
                                   int fault_gate,
                                   const gates::FaultAnalysis& fa) const;

  // ---- SoA bit-plane kernels (multi-word, multi-fault, SIMD) ---------------
  //
  // Layout: planes[net * stride + w] holds pattern word `w` of net `net` —
  // structure-of-arrays, so one net's words are contiguous and a group of
  // kSimdWords words is one aligned-width vector load.  `stride` must come
  // from plane_stride(): padded to a multiple of kSimdWords so the group
  // kernels have no tail loop (padding words are computed but never read —
  // callers mask by their active words).  Packed contexts are binary-only
  // (EvalContext falls back to scalar on any X), so there is one value
  // plane per net and no X plane.

  /// Pattern words processed per SIMD step (4 x 64 = 256 patterns).
  static constexpr std::size_t kSimdWords = 4;
  /// Line faults evaluated per eval_packed_line_batch pass (one per SIMD
  /// lane).
  static constexpr std::size_t kBatchLanes = 4;

  /// Plane stride in words for `n_words` pattern words.
  [[nodiscard]] static constexpr std::size_t plane_stride(
      std::size_t n_words) {
    return (n_words + kSimdWords - 1) / kSimdWords * kSimdWords;
  }

  /// Seeds the SoA plane buffer: 0 everywhere, ~0 on constant-1 rows, and
  /// the PI plane rows copied in.  `pi_planes` uses the same layout with
  /// one row per primary input (pack_patterns order).
  void init_packed_planes(const std::uint64_t* pi_planes, std::size_t stride,
                          std::vector<std::uint64_t>& planes) const;

  /// Good-machine forward pass over every plane word, in place.  Walks
  /// kSimdWords-word groups in the outer loop so each group's working set
  /// is one vector register per net.  Bit-identical to eval_packed per
  /// word on every backend (the 2-input cells' 4-valued tables reduce to
  /// the same bitwise forms on binary planes).
  void eval_packed_planes(std::vector<std::uint64_t>& planes,
                          std::size_t stride) const;

  /// Multi-fault batched line kernel: up to kBatchLanes faults share one
  /// forward walk per pattern word.  The fault-free prefix comes straight
  /// from `good_planes` (broadcast into the lanes), and the walk starts at
  /// the earliest injection position; per-fault overrides (stem forces,
  /// branch pin overrides) are applied as per-lane events at their gate
  /// positions.  For fault f and word w, `det[f * n_words + w]` receives
  /// the PO-difference word masked by `active[w]`.  Early exit: once every
  /// fault in the batch has at least one nonzero detection word, remaining
  /// words are skipped (their det words stay zero) — callers that only
  /// need (detected, first_pattern) observe no difference.
  /// @param faults validated descriptors (see faults::checked_line_fault);
  ///   n_faults must be in [1, kBatchLanes]
  /// @param lane_scratch reused across calls; resized internally
  /// @returns the number of pattern words actually evaluated
  std::size_t eval_packed_line_batch(const std::uint64_t* good_planes,
                                     std::size_t stride, std::size_t n_words,
                                     const std::uint64_t* active,
                                     const LineFault* faults,
                                     std::size_t n_faults, std::uint64_t* det,
                                     std::vector<std::uint64_t>& lane_scratch)
      const;

  /// Plane-wide transistor-fault kernel: eval_packed_faulty over all
  /// pattern words in kSimdWords groups, sharing the good planes as the
  /// fault-free prefix.  Writes the per-word PO-difference and contention
  /// words (unmasked — callers AND with their active words).  No early
  /// exit: IDDQ-only excitations in late words must still be observed,
  /// exactly like the per-batch loop it replaces.
  void eval_packed_faulty_planes(const std::uint64_t* good_planes,
                                 std::size_t stride, std::size_t n_words,
                                 int fault_gate, const gates::FaultAnalysis& fa,
                                 std::uint64_t* diff, std::uint64_t* contention,
                                 std::vector<std::uint64_t>& lane_scratch)
      const;

 private:
  void eval_scalar_range(LogicV* values, std::size_t from,
                         std::size_t to) const;
  void eval_packed_range(std::uint64_t* values, std::size_t from,
                         std::size_t to) const;

  const Circuit* ckt_;
  std::vector<GateRec> gates_;          ///< levelized (topo) order
  std::vector<std::size_t> position_;   ///< gate id -> index into gates_
  std::vector<NetId> const_one_;        ///< slots tied to constant 1
  /// Binary constants for scalar seeding (net, value).
  std::vector<std::pair<NetId, LogicV>> const_binary_;
};

}  // namespace cpsinw::logic
