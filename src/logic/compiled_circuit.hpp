// One-time compilation of a finalized Circuit into levelized, table-driven
// arrays: the single evaluation kernel under scalar simulation, packed
// 64-pattern fault simulation, and the ATPG forward-implication passes.
//
// The compiler flattens the gate list into topological order (exactly
// Circuit::topo_order(), so every consumer sees the same evaluation
// sequence as the interpreted walk it replaced), resolves every pin to a
// value slot (slot == NetId; unused pins alias slot 0, whose value the
// tables ignore), and attaches to each record the 64-entry 4-valued
// good-machine truth table of its cell kind.  A faulty gate substitutes a
// compiled table derived from its switch-level fault dictionary
// (gates::FaultAnalysis::compiled_*), so the fault-simulation hot loops
// never re-consult dictionary rows per pattern.
//
// Invariants:
//   * the circuit is borrowed and must outlive the CompiledCircuit;
//   * a Circuit is immutable after finalize(), so the tables are built
//     once per CompiledCircuit and never rebuilt — a new Circuit object
//     needs a new compilation;
//   * every kernel is bit-identical to the interpreted evaluator it
//     replaced (pinned by tests/logic/compiled_circuit_test.cpp and the
//     campaign engine's byte-identical-JSON suites).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "gates/fault_dictionary.hpp"
#include "logic/circuit.hpp"
#include "logic/types.hpp"

namespace cpsinw::logic {

class CompiledCircuit {
 public:
  /// Scalar table codes, 2 bits per pin: k0 -> 0, k1 -> 1, kX/kZ -> 2.
  static constexpr unsigned kCode0 = 0;
  static constexpr unsigned kCode1 = 1;
  static constexpr unsigned kCodeX = 2;

  /// One levelized gate record.  `table` points at the shared 64-entry
  /// 4-valued good table of the cell kind, indexed by the packed codes of
  /// the three pins (unused pins contribute don't-care bits: every entry
  /// that differs only in them holds the same value).
  struct GateRec {
    const LogicV* table = nullptr;
    gates::CellKind kind = gates::CellKind::kInv;
    std::uint8_t n_in = 1;
    int id = -1;                          ///< original Circuit gate id
    std::array<NetId, 3> in = {0, 0, 0};  ///< input slots (unused -> 0)
    NetId out = 0;
  };

  /// A line stuck-at fault at the logic layer: either a stem (`net` >= 0)
  /// or an input branch (`gate`, `pin`).
  struct LineFault {
    NetId net = -1;
    int gate = -1;
    int pin = -1;
    bool stuck_one = false;
  };

  /// @param ckt finalized circuit; borrowed, must outlive this object
  /// @throws std::invalid_argument when not finalized
  explicit CompiledCircuit(const Circuit& ckt);

  [[nodiscard]] const Circuit& circuit() const { return *ckt_; }

  /// Gate records in Circuit::topo_order() order.
  [[nodiscard]] const std::vector<GateRec>& gates() const { return gates_; }

  /// Levelized position of a gate id inside gates().
  [[nodiscard]] std::size_t position_of(int gate_id) const {
    assert(gate_id >= 0 &&
           static_cast<std::size_t>(gate_id) < position_.size());
    return position_[static_cast<std::size_t>(gate_id)];
  }

  /// Scalar table code of a value (kZ reads as kX, exactly like the
  /// interpreted X-aware evaluation treated it).
  [[nodiscard]] static unsigned code(LogicV v) {
    constexpr unsigned kCodes[4] = {kCodeX, kCodeX, kCode0, kCode1};
    return kCodes[(static_cast<unsigned>(static_cast<int>(v)) + 2u) & 3u];
  }

  /// The 64-entry 4-valued good table of a cell kind (shared static
  /// storage, derived once per process from eval_cell_x / good_output).
  [[nodiscard]] static const LogicV* good_table(gates::CellKind kind);

  // ---- scalar kernels -----------------------------------------------------

  /// Seeds `values` for a scalar pass: X everywhere, binary constants,
  /// then the pattern over the primary inputs (pattern arity must match;
  /// asserted in debug, callers validate).
  void init_scalar(const std::vector<LogicV>& pattern,
                   std::vector<LogicV>& values) const;

  /// Good-machine forward pass over the whole circuit, in place.
  void eval_scalar(std::vector<LogicV>& values) const;

  /// Forward pass with `fault_gate`'s output produced by the compiled
  /// faulty table of `fa`: binary local inputs index compiled_logic
  /// (floating rows retain `previous_state`, marginal rows read X); any X
  /// local input yields X.  @returns true when a contention row was
  /// excited (the IDDQ observable).
  bool eval_scalar_faulty(std::vector<LogicV>& values, int fault_gate,
                          const gates::FaultAnalysis& fa,
                          const std::vector<LogicV>* previous_state) const;

  // ---- packed 64-pattern kernels -------------------------------------------

  /// Seeds `values` for a packed pass: 0 everywhere, ~0 on constant-1
  /// slots, the packed PI words over the primary inputs.
  void init_packed(const std::vector<std::uint64_t>& pi_words,
                   std::vector<std::uint64_t>& values) const;

  /// Packed good-machine forward pass, in place.
  void eval_packed(std::vector<std::uint64_t>& values) const;

  /// Packed pass with one line forced to a constant.  A stem fault skips
  /// the forced net's driver entirely; a branch fault overrides one pin of
  /// one gate — no per-gate fault checks remain in the loop.
  void eval_packed_line(std::vector<std::uint64_t>& values,
                        const LineFault& fault) const;

  /// Packed pass with `fault_gate` substituted by the compiled
  /// truth/contention masks of `fa` (valid only when fa.compiled_binary).
  /// @returns the contention word (bit k: pattern k excites a contention
  ///   row — the per-pattern IDDQ excitation mask)
  std::uint64_t eval_packed_faulty(std::vector<std::uint64_t>& values,
                                   int fault_gate,
                                   const gates::FaultAnalysis& fa) const;

 private:
  void eval_scalar_range(LogicV* values, std::size_t from,
                         std::size_t to) const;
  void eval_packed_range(std::uint64_t* values, std::size_t from,
                         std::size_t to) const;

  const Circuit* ckt_;
  std::vector<GateRec> gates_;          ///< levelized (topo) order
  std::vector<std::size_t> position_;   ///< gate id -> index into gates_
  std::vector<NetId> const_one_;        ///< slots tied to constant 1
  /// Binary constants for scalar seeding (net, value).
  std::vector<std::pair<NetId, LogicV>> const_binary_;
};

}  // namespace cpsinw::logic
