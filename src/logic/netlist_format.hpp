// Plain-text netlist exchange format (.cpn — "controllable-polarity
// netlist").  Example:
//
//   # one-bit full adder
//   input a b cin
//   output sum cout
//   gate XOR3 sum = a b cin
//   gate MAJ3 cout = a b cin
//
// Supported directives: `input`, `output`, `const0/const1 <net>`,
// `gate <CELL> <out> = <in...>`, comments with '#'.
#pragma once

#include <iosfwd>
#include <string>

#include "logic/circuit.hpp"

namespace cpsinw::logic {

/// Writes a circuit in .cpn format.
void write_netlist(std::ostream& os, const Circuit& ckt);

/// Parses a .cpn netlist and returns the finalized circuit.
/// @throws std::runtime_error with a line-numbered diagnostic on malformed
///   input
[[nodiscard]] Circuit read_netlist(std::istream& is);

/// Round-trip helper used by tests.
[[nodiscard]] std::string to_netlist_string(const Circuit& ckt);

}  // namespace cpsinw::logic
