#include "logic/net_registry.hpp"

#include <utility>

namespace cpsinw::logic {

namespace {

std::string format_what(const std::string& format, SourceLoc loc,
                        const std::string& message) {
  std::string out = format + " line " + std::to_string(loc.line);
  if (loc.column > 0) out += ":" + std::to_string(loc.column);
  out += ": " + message;
  return out;
}

}  // namespace

ParseError::ParseError(const std::string& format, SourceLoc loc,
                       const std::string& message)
    : std::runtime_error(format_what(format, loc, message)), loc_(loc) {}

NetRegistry::NetRegistry(std::string format) : format_(std::move(format)) {}

void NetRegistry::fail(SourceLoc loc, const std::string& message) const {
  throw ParseError(format_, loc, message);
}

NetRegistry::NetEntry& NetRegistry::touch(const std::string& name,
                                          SourceLoc loc) {
  auto [it, inserted] = nets_.try_emplace(name);
  if (inserted) {
    it->second.first_use = loc;
    net_order_.push_back(name);
  }
  return it->second;
}

void NetRegistry::claim_driver(const std::string& name, SourceLoc loc) {
  NetEntry& entry = touch(name, loc);
  if (entry.is_input)
    fail(loc, "net '" + name + "' is a declared input and cannot be driven "
                               "by a gate (input declared at line " +
                  std::to_string(entry.driver_loc.line) + ")");
  if (entry.driven)
    fail(loc, "net '" + name + "' already has a driver (line " +
                  std::to_string(entry.driver_loc.line) + ")");
  entry.driven = true;
  entry.driver_loc = loc;
}

void NetRegistry::add_input(const std::string& name, SourceLoc loc) {
  NetEntry& entry = touch(name, loc);
  if (entry.is_input)
    fail(loc, "input '" + name + "' declared twice (first at line " +
                  std::to_string(entry.driver_loc.line) + ")");
  if (entry.driven)
    fail(loc, "net '" + name + "' is driven by a gate (line " +
                  std::to_string(entry.driver_loc.line) +
                  ") and cannot also be an input");
  entry.is_input = true;
  entry.driven = true;
  entry.driver_loc = loc;
  inputs_.push_back(name);
}

void NetRegistry::add_output(const std::string& name, SourceLoc loc) {
  touch(name, loc);
  outputs_.emplace_back(name, loc);
}

void NetRegistry::add_foreign_gate(ForeignGate gate, const std::string& out,
                                   const std::vector<std::string>& ins,
                                   SourceLoc loc) {
  if (ins.empty())
    fail(loc, std::string(to_string(gate)) + " gate '" + out +
                  "' has no inputs");
  if ((gate == ForeignGate::kNot || gate == ForeignGate::kBuf) &&
      ins.size() != 1)
    fail(loc, std::string(to_string(gate)) + " gate '" + out + "' takes 1 "
                  "input, got " + std::to_string(ins.size()));
  claim_driver(out, loc);
  for (const std::string& in : ins) touch(in, loc);
  GateEntry entry;
  entry.foreign = true;
  entry.fg = gate;
  entry.out = out;
  entry.ins = ins;
  entry.loc = loc;
  gates_.push_back(std::move(entry));
}

void NetRegistry::add_cp_gate(gates::CellKind kind, const std::string& out,
                              const std::vector<std::string>& ins,
                              SourceLoc loc) {
  const std::size_t want = static_cast<std::size_t>(gates::input_count(kind));
  if (ins.size() != want)
    fail(loc, std::string(gates::to_string(kind)) + " cell '" + out +
                  "' takes " + std::to_string(want) + " input" +
                  (want == 1 ? "" : "s") + ", got " +
                  std::to_string(ins.size()));
  claim_driver(out, loc);
  for (const std::string& in : ins) touch(in, loc);
  GateEntry entry;
  entry.cp = kind;
  entry.out = out;
  entry.ins = ins;
  entry.loc = loc;
  gates_.push_back(std::move(entry));
}

Circuit NetRegistry::finish() {
  Circuit ckt;

  // Primary inputs first, in declaration order, then every other
  // referenced net in first-reference order.  Ids are therefore stable
  // for a given file, independent of gate ordering.
  for (const std::string& name : inputs_) ckt.add_primary_input(name);
  for (const std::string& name : net_order_) {
    if (!nets_.at(name).is_input) ckt.add_net(name);
  }

  for (const GateEntry& gate : gates_) {
    std::vector<NetId> ins;
    ins.reserve(gate.ins.size());
    for (const std::string& in : gate.ins) ins.push_back(ckt.find_net(in));
    const NetId out = ckt.find_net(gate.out);
    if (gate.foreign) {
      emit_foreign_gate(ckt, gate.fg, ins, out, gate.out);
    } else {
      ckt.add_gate(gate.cp, ins, out);
    }
  }

  for (const auto& [name, loc] : outputs_) {
    const NetEntry& entry = nets_.at(name);
    if (!entry.driven)
      fail(loc, "output '" + name + "' is never driven");
    ckt.mark_primary_output(ckt.find_net(name));
  }

  // Undriven interior nets: report at the first place the file used them.
  for (const std::string& name : net_order_) {
    const NetEntry& entry = nets_.at(name);
    if (!entry.driven)
      fail(entry.first_use, "net '" + name + "' is never driven");
  }

  ckt.finalize();  // cycles propagate as std::runtime_error
  return ckt;
}

}  // namespace cpsinw::logic
