#include "logic/cell_mapping.hpp"

#include <cctype>
#include <stdexcept>

namespace cpsinw::logic {

using gates::CellKind;

const char* to_string(ForeignGate gate) {
  switch (gate) {
    case ForeignGate::kAnd: return "AND";
    case ForeignGate::kNand: return "NAND";
    case ForeignGate::kOr: return "OR";
    case ForeignGate::kNor: return "NOR";
    case ForeignGate::kXor: return "XOR";
    case ForeignGate::kXnor: return "XNOR";
    case ForeignGate::kNot: return "NOT";
    case ForeignGate::kBuf: return "BUF";
  }
  return "?";
}

std::optional<ForeignGate> foreign_gate_from(std::string_view token) {
  std::string up;
  up.reserve(token.size());
  for (const char c : token)
    up.push_back(static_cast<char>(
        std::toupper(static_cast<unsigned char>(c))));
  if (up == "AND") return ForeignGate::kAnd;
  if (up == "NAND") return ForeignGate::kNand;
  if (up == "OR") return ForeignGate::kOr;
  if (up == "NOR") return ForeignGate::kNor;
  if (up == "XOR") return ForeignGate::kXor;
  if (up == "XNOR") return ForeignGate::kXnor;
  if (up == "NOT" || up == "INV") return ForeignGate::kNot;
  if (up == "BUF" || up == "BUFF") return ForeignGate::kBuf;
  return std::nullopt;
}

const std::vector<CellMappingRow>& cell_mapping_table() {
  static const std::vector<CellMappingRow> kTable = {
      {"NOT / INV", "1", "INV"},
      {"BUF / BUFF", "1", "BUF"},
      {"AND", ">= 1", "balanced NAND2+INV tree (1 input: BUF)"},
      {"NAND", ">= 1", "AND halves + final NAND2 (1 input: INV)"},
      {"OR", ">= 1", "balanced NOR2+INV tree (1 input: BUF)"},
      {"NOR", ">= 1", "OR halves + final NOR2 (1 input: INV)"},
      {"XOR", ">= 1", "balanced XOR3/XOR2 parity tree (1 input: BUF)"},
      {"XNOR", ">= 1", "XOR tree + final INV (1 input: INV)"},
  };
  return kTable;
}

namespace {

/// Fresh-net factory for one expansion: "<prefix>$0", "<prefix>$1", ...
struct FreshNets {
  Circuit& ckt;
  const std::string& prefix;
  int next = 0;

  NetId make() {
    return ckt.add_net(prefix + "$" + std::to_string(next++));
  }
};

// AND/OR reduction of [begin, end) to a single fresh net.  `nand_kind`
// selects the dual: kNand2 builds AND (INV(NAND2)), kNor2 builds OR.
NetId and_or_reduce(FreshNets& fresh, const std::vector<NetId>& ins,
                    std::size_t begin, std::size_t end,
                    CellKind nand_kind) {
  if (end - begin == 1) return ins[begin];
  const std::size_t mid = begin + (end - begin + 1) / 2;
  const NetId l = and_or_reduce(fresh, ins, begin, mid, nand_kind);
  const NetId r = and_or_reduce(fresh, ins, mid, end, nand_kind);
  const NetId n = fresh.make();
  fresh.ckt.add_gate(nand_kind, {l, r}, n);
  const NetId o = fresh.make();
  fresh.ckt.add_gate(CellKind::kInv, {n}, o);
  return o;
}

}  // namespace

void emit_foreign_gate(Circuit& ckt, ForeignGate gate,
                       const std::vector<NetId>& ins, NetId out,
                       const std::string& prefix) {
  const std::size_t n = ins.size();
  if (n == 0)
    throw std::invalid_argument("emit_foreign_gate: arity 0");
  if ((gate == ForeignGate::kNot || gate == ForeignGate::kBuf) && n != 1)
    throw std::invalid_argument("emit_foreign_gate: NOT/BUF need arity 1");
  FreshNets fresh{ckt, prefix};

  switch (gate) {
    case ForeignGate::kNot:
      ckt.add_gate(CellKind::kInv, {ins[0]}, out);
      return;
    case ForeignGate::kBuf:
      ckt.add_gate(CellKind::kBuf, {ins[0]}, out);
      return;

    case ForeignGate::kAnd:
    case ForeignGate::kOr: {
      if (n == 1) {
        ckt.add_gate(CellKind::kBuf, {ins[0]}, out);
        return;
      }
      const CellKind dual =
          gate == ForeignGate::kAnd ? CellKind::kNand2 : CellKind::kNor2;
      const std::size_t mid = (n + 1) / 2;
      const NetId l = and_or_reduce(fresh, ins, 0, mid, dual);
      const NetId r = and_or_reduce(fresh, ins, mid, n, dual);
      const NetId neg = fresh.make();
      ckt.add_gate(dual, {l, r}, neg);
      ckt.add_gate(CellKind::kInv, {neg}, out);
      return;
    }

    case ForeignGate::kNand:
    case ForeignGate::kNor: {
      const CellKind dual =
          gate == ForeignGate::kNand ? CellKind::kNand2 : CellKind::kNor2;
      if (n == 1) {
        ckt.add_gate(CellKind::kInv, {ins[0]}, out);
        return;
      }
      const std::size_t mid = (n + 1) / 2;
      const NetId l = and_or_reduce(fresh, ins, 0, mid, dual);
      const NetId r = and_or_reduce(fresh, ins, mid, n, dual);
      ckt.add_gate(dual, {l, r}, out);
      return;
    }

    case ForeignGate::kXor:
    case ForeignGate::kXnor: {
      if (n == 1) {
        ckt.add_gate(gate == ForeignGate::kXor ? CellKind::kBuf
                                               : CellKind::kInv,
                     {ins[0]}, out);
        return;
      }
      // Reduce to <= 3 nets, then land the final XOR directly on `out`
      // (XNOR lands on a fresh net and inverts into `out`).
      std::vector<NetId> level(ins.begin(), ins.end());
      while (level.size() > 3) {
        // One reduction step over the level keeps the tree balanced.
        std::vector<NetId> next;
        std::size_t i = 0;
        while (i < level.size()) {
          const std::size_t remaining = level.size() - i;
          if (remaining >= 3) {
            const NetId o = fresh.make();
            ckt.add_gate(CellKind::kXor3,
                         {level[i], level[i + 1], level[i + 2]}, o);
            next.push_back(o);
            i += 3;
          } else if (remaining == 2) {
            const NetId o = fresh.make();
            ckt.add_gate(CellKind::kXor2, {level[i], level[i + 1]}, o);
            next.push_back(o);
            i += 2;
          } else {
            next.push_back(level[i]);
            i += 1;
          }
        }
        level = std::move(next);
      }
      const NetId dst = gate == ForeignGate::kXor ? out : fresh.make();
      if (level.size() == 3) {
        ckt.add_gate(CellKind::kXor3, {level[0], level[1], level[2]}, dst);
      } else {
        ckt.add_gate(CellKind::kXor2, {level[0], level[1]}, dst);
      }
      if (gate == ForeignGate::kXnor)
        ckt.add_gate(CellKind::kInv, {dst}, out);
      return;
    }
  }
}

}  // namespace cpsinw::logic
