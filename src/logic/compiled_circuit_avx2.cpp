// AVX2 instantiations of the SoA plane kernels.  This is the only TU in
// the library compiled with -mavx2 (see the CPSINW_SIMD block in
// CMakeLists.txt); when the build disables or cannot use AVX2 the macro is
// absent and the TU compiles empty.  The entry points are reached only
// after simd::active_backend() confirmed the running CPU has AVX2.
#if defined(CPSINW_SIMD_AVX2)

#include <immintrin.h>

#include "logic/packed_kernels.hpp"

namespace cpsinw::logic::kernels {

namespace {

/// __m256i wrapper satisfying the packed-kernel vector concept.  Lane
/// access goes through memory (the intrinsics want immediate indices);
/// it only appears at fault-injection events and result extraction.
struct M256 {
  __m256i v;

  static M256 load(const std::uint64_t* p) {
    return M256{_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static void store(std::uint64_t* p, const M256& x) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), x.v);
  }
  static M256 splat(std::uint64_t x) {
    return M256{_mm256_set1_epi64x(static_cast<long long>(x))};
  }
  void set_lane(std::size_t i, std::uint64_t x) {
    alignas(32) std::uint64_t tmp[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    tmp[i] = x;
    v = _mm256_load_si256(reinterpret_cast<const __m256i*>(tmp));
  }
  [[nodiscard]] std::uint64_t lane(std::size_t i) const {
    alignas(32) std::uint64_t tmp[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    return tmp[i];
  }

  friend M256 operator&(const M256& a, const M256& b) {
    return M256{_mm256_and_si256(a.v, b.v)};
  }
  friend M256 operator|(const M256& a, const M256& b) {
    return M256{_mm256_or_si256(a.v, b.v)};
  }
  friend M256 operator^(const M256& a, const M256& b) {
    return M256{_mm256_xor_si256(a.v, b.v)};
  }
  friend M256 operator~(const M256& a) {
    return M256{_mm256_xor_si256(a.v, _mm256_set1_epi64x(-1))};
  }
};

}  // namespace

void eval_planes_avx2(const CompiledCircuit& cc, std::uint64_t* planes,
                      std::size_t stride) {
  eval_planes_t<M256>(cc, planes, stride);
}

std::size_t eval_line_batch_avx2(const CompiledCircuit& cc,
                                 const std::uint64_t* good, std::size_t stride,
                                 std::size_t n_words,
                                 const std::uint64_t* active,
                                 const CompiledCircuit::LineFault* faults,
                                 std::size_t n_faults, std::uint64_t* det,
                                 std::vector<std::uint64_t>& lane_scratch) {
  return eval_line_batch_t<M256>(cc, good, stride, n_words, active, faults,
                                 n_faults, det, lane_scratch);
}

void eval_faulty_planes_avx2(const CompiledCircuit& cc,
                             const std::uint64_t* good, std::size_t stride,
                             std::size_t n_words, int fault_gate,
                             const gates::FaultAnalysis& fa,
                             std::uint64_t* diff, std::uint64_t* contention,
                             std::vector<std::uint64_t>& lane_scratch) {
  eval_faulty_planes_t<M256>(cc, good, stride, n_words, fault_gate, fa, diff,
                             contention, lane_scratch);
}

}  // namespace cpsinw::logic::kernels

#endif  // CPSINW_SIMD_AVX2
