// SIMD backend selection for the packed evaluation kernels.
//
// The compiled kernels in logic/packed_kernels.hpp are templates over a
// 4x64-bit vector type; this header picks which instantiation runs:
//
//   * kPortable — a plain `struct { uint64_t w[4]; }` the compiler
//     auto-vectorizes as far as the baseline ISA allows.  Always built,
//     always correct, and the bit-identical reference the SIMD paths are
//     pinned against.
//   * kAvx2 — __m256i kernels in logic/compiled_circuit_avx2.cpp, built
//     only when the compiler accepts -mavx2 on x86-64 (the TU carries the
//     flag; nothing else in the library does) and taken only when the
//     running CPU reports AVX2.
//   * kAvx512 — __m256i kernels again (same 256-bit width, so plane
//     layout and batch shape are identical), but every gate evaluation is
//     one VPTERNLOGQ 3-input truth-table instruction
//     (logic/compiled_circuit_avx512.cpp, the only TU built with
//     -mavx512f -mavx512vl); taken only when the running CPU reports
//     AVX512F + AVX512VL, else falls back to kAvx2.
//   * kNeon — uint64x2_t pair kernels on aarch64 (NEON is baseline there,
//     no flag or runtime probe needed).
//
// Build-time control: configure with -DCPSINW_SIMD=off to force the
// portable backend everywhere (the CI `simd-off` leg); `auto` (default)
// compiles whatever the toolchain supports and dispatches at runtime.
// Run-time control: force_portable(true) pins the portable backend from
// code — the bench and the bit-identity tests use it to compare backends
// inside one process.
#pragma once

namespace cpsinw::logic::simd {

enum class Backend {
  kPortable,
  kAvx2,
  kAvx512,
  kNeon,
};

/// The widest backend this build + this CPU can run (ignores the
/// force_portable override; cached after the first call).
[[nodiscard]] Backend compiled_backend();

/// The backend the kernels will actually dispatch to right now:
/// compiled_backend(), unless force_portable(true) is in effect.
[[nodiscard]] Backend active_backend();

/// Short stable name for reports/telemetry: "portable", "avx2",
/// "avx512", "neon".
[[nodiscard]] const char* backend_name(Backend b);

/// Pins every subsequent kernel dispatch to the portable backend (process
/// wide).  Test/bench hook — the kernels are bit-identical across
/// backends, so flipping this mid-run changes speed, never results.
void force_portable(bool on);
[[nodiscard]] bool forced_portable();

}  // namespace cpsinw::logic::simd
