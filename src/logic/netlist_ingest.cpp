#include "logic/netlist_ingest.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "gates/cell.hpp"
#include "logic/bench_format.hpp"
#include "logic/netlist_format.hpp"
#include "logic/verilog_format.hpp"

namespace cpsinw::logic {

const char* to_string(NetlistFormat format) {
  switch (format) {
    case NetlistFormat::kCpn: return "cpn";
    case NetlistFormat::kBench: return "bench";
    case NetlistFormat::kVerilog: return "verilog";
  }
  return "?";
}

NetlistFormat format_from_path(const std::string& path) {
  const auto dot = path.rfind('.');
  std::string ext =
      dot == std::string::npos ? std::string() : path.substr(dot);
  std::transform(ext.begin(), ext.end(), ext.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (ext == ".cpn") return NetlistFormat::kCpn;
  if (ext == ".bench") return NetlistFormat::kBench;
  if (ext == ".v" || ext == ".sv") return NetlistFormat::kVerilog;
  throw std::invalid_argument(
      "unrecognized netlist extension on '" + path +
      "' (expected .cpn, .bench, .v, or .sv)");
}

Circuit load_circuit_file(const std::string& path) {
  std::ifstream is(path);
  if (!is)
    throw std::runtime_error("cannot open '" + path + "' for reading");
  switch (format_from_path(path)) {
    case NetlistFormat::kCpn: return read_netlist(is);
    case NetlistFormat::kBench: return read_bench(is);
    case NetlistFormat::kVerilog: return read_verilog(is);
  }
  throw std::logic_error("unreachable");
}

void save_circuit_file(const Circuit& ckt, const std::string& path) {
  const NetlistFormat format = format_from_path(path);
  std::ofstream os(path);
  if (!os)
    throw std::runtime_error("cannot open '" + path + "' for writing");
  switch (format) {
    case NetlistFormat::kCpn: write_netlist(os, ckt); break;
    case NetlistFormat::kBench: write_bench(os, ckt); break;
    case NetlistFormat::kVerilog: write_verilog(os, ckt); break;
  }
  os.flush();
  if (!os) throw std::runtime_error("write to '" + path + "' failed");
}

CircuitStats circuit_stats(const Circuit& ckt) {
  CircuitStats stats;
  stats.gates = ckt.gate_count();
  stats.nets = ckt.net_count();
  stats.primary_inputs = static_cast<int>(ckt.primary_inputs().size());
  stats.primary_outputs = static_cast<int>(ckt.primary_outputs().size());
  stats.transistors = ckt.transistor_count();

  const auto& kinds = gates::all_cell_kinds();
  for (const GateInst& g : ckt.gates()) {
    for (std::size_t i = 0; i < kinds.size() && i < stats.per_cell.size();
         ++i) {
      if (kinds[i] == g.kind) {
        ++stats.per_cell[i];
        break;
      }
    }
  }

  // Logic depth: longest gate chain, following the topo order.
  std::vector<int> depth(static_cast<std::size_t>(ckt.net_count()), 0);
  for (const int gid : ckt.topo_order()) {
    const GateInst& g = ckt.gate(gid);
    int d = 0;
    for (int i = 0; i < g.input_count(); ++i)
      d = std::max(d, depth[static_cast<std::size_t>(
                       g.in[static_cast<std::size_t>(i)])]);
    depth[static_cast<std::size_t>(g.out)] = d + 1;
    stats.levels = std::max(stats.levels, d + 1);
  }
  return stats;
}

std::string stats_json(const CircuitStats& stats) {
  std::ostringstream os;
  os << "{\"gates\":" << stats.gates << ",\"nets\":" << stats.nets
     << ",\"primary_inputs\":" << stats.primary_inputs
     << ",\"primary_outputs\":" << stats.primary_outputs
     << ",\"levels\":" << stats.levels
     << ",\"transistors\":" << stats.transistors << ",\"per_cell\":{";
  const auto& kinds = gates::all_cell_kinds();
  for (std::size_t i = 0; i < kinds.size() && i < stats.per_cell.size();
       ++i) {
    if (i != 0) os << ',';
    os << '"' << gates::to_string(kinds[i]) << "\":" << stats.per_cell[i];
  }
  os << "}}";
  return os.str();
}

}  // namespace cpsinw::logic
