#include "logic/compiled_circuit.hpp"

#include <algorithm>
#include <stdexcept>

#include "logic/logic_sim.hpp"
#include "logic/packed_kernels.hpp"
#include "logic/simd.hpp"

namespace cpsinw::logic {

namespace {

/// CellKind enumerator count (kInv..kMaj3); checked against
/// all_cell_kinds() when the tables are derived.
constexpr std::size_t kKindCount = 7;

}  // namespace

const LogicV* CompiledCircuit::good_table(gates::CellKind kind) {
  // Derived once per process: entry [kind][idx] is the X-aware good output
  // with pin i holding the value decoded from bits (idx >> 2i) & 3.  Codes
  // of pins past the cell's arity are don't-cares (eval_cell_x ignores
  // them), so reading an aliased slot for an unused pin is harmless.
  static const auto tables = [] {
    std::array<std::array<LogicV, 64>, kKindCount> t{};
    const LogicV decode[4] = {LogicV::k0, LogicV::k1, LogicV::kX, LogicV::kX};
    for (const gates::CellKind kind : gates::all_cell_kinds()) {
      const auto ki = static_cast<std::size_t>(kind);
      if (ki >= kKindCount)
        throw std::logic_error("good_table: cell kind out of range");
      for (unsigned idx = 0; idx < 64; ++idx)
        t[ki][idx] = eval_cell_x(kind, decode[idx & 3u],
                                 decode[(idx >> 2) & 3u],
                                 decode[(idx >> 4) & 3u]);
    }
    return t;
  }();
  return tables[static_cast<std::size_t>(kind)].data();
}

CompiledCircuit::CompiledCircuit(const Circuit& ckt) : ckt_(&ckt) {
  if (!ckt.finalized())
    throw std::invalid_argument("CompiledCircuit: circuit not finalized");

  gates_.reserve(static_cast<std::size_t>(ckt.gate_count()));
  position_.assign(static_cast<std::size_t>(ckt.gate_count()), 0);
  for (const int gid : ckt.topo_order()) {
    const GateInst& g = ckt.gate(gid);
    GateRec r;
    r.table = good_table(g.kind);
    r.kind = g.kind;
    r.n_in = static_cast<std::uint8_t>(g.input_count());
    r.id = gid;
    for (int i = 0; i < 3; ++i)
      r.in[static_cast<std::size_t>(i)] =
          i < g.input_count() ? g.in[static_cast<std::size_t>(i)] : 0;
    r.out = g.out;
    position_[static_cast<std::size_t>(gid)] = gates_.size();
    gates_.push_back(r);
  }

  for (NetId n = 0; n < ckt.net_count(); ++n) {
    const LogicV c = ckt.constant_of(n);
    if (!is_binary(c)) continue;
    const_binary_.emplace_back(n, c);
    if (c == LogicV::k1) const_one_.push_back(n);
  }
}

// ---- scalar kernels -------------------------------------------------------

void CompiledCircuit::init_scalar(const std::vector<LogicV>& pattern,
                                  std::vector<LogicV>& values) const {
  assert(pattern.size() == ckt_->primary_inputs().size());
  values.assign(static_cast<std::size_t>(ckt_->net_count()), LogicV::kX);
  for (const auto& [net, v] : const_binary_)
    values[static_cast<std::size_t>(net)] = v;
  const std::vector<NetId>& pis = ckt_->primary_inputs();
  for (std::size_t i = 0; i < pattern.size(); ++i)
    values[static_cast<std::size_t>(pis[i])] = pattern[i];
}

void CompiledCircuit::eval_scalar_range(LogicV* values, std::size_t from,
                                        std::size_t to) const {
  for (std::size_t k = from; k < to; ++k) {
    const GateRec& g = gates_[k];
    const unsigned idx =
        code(values[g.in[0]]) | (code(values[g.in[1]]) << 2) |
        (code(values[g.in[2]]) << 4);
    values[g.out] = g.table[idx];
  }
}

void CompiledCircuit::eval_scalar(std::vector<LogicV>& values) const {
  assert(values.size() == static_cast<std::size_t>(ckt_->net_count()));
  eval_scalar_range(values.data(), 0, gates_.size());
}

bool CompiledCircuit::eval_scalar_faulty(
    std::vector<LogicV>& values, int fault_gate,
    const gates::FaultAnalysis& fa,
    const std::vector<LogicV>* previous_state) const {
  assert(values.size() == static_cast<std::size_t>(ckt_->net_count()));
  LogicV* const v = values.data();
  const std::size_t pos = position_of(fault_gate);
  eval_scalar_range(v, 0, pos);

  const GateRec& g = gates_[pos];
  bool iddq = false;
  unsigned bits = 0;
  bool binary = true;
  for (unsigned i = 0; i < g.n_in; ++i) {
    const LogicV in_v = v[g.in[i]];
    if (!is_binary(in_v)) {
      binary = false;
      break;
    }
    if (in_v == LogicV::k1) bits |= 1u << i;
  }
  LogicV out = LogicV::kX;
  if (binary) {
    if (((fa.compiled_contention >> bits) & 1u) != 0) iddq = true;
    const int fv = fa.compiled_logic[bits];
    if (fv == 0) {
      out = LogicV::k0;
    } else if (fv == 1) {
      out = LogicV::k1;
    } else if (fv == -2) {
      // Floating output: retain the previous charge when known.
      out = previous_state != nullptr
                ? (*previous_state)[static_cast<std::size_t>(g.out)]
                : LogicV::kX;
      if (out == LogicV::kZ) out = LogicV::kX;
    }
  }
  v[g.out] = out;

  eval_scalar_range(v, pos + 1, gates_.size());
  return iddq;
}

// ---- packed kernels -------------------------------------------------------

void CompiledCircuit::init_packed(const std::vector<std::uint64_t>& pi_words,
                                  std::vector<std::uint64_t>& values) const {
  assert(pi_words.size() == ckt_->primary_inputs().size());
  values.assign(static_cast<std::size_t>(ckt_->net_count()), 0);
  for (const NetId n : const_one_)
    values[static_cast<std::size_t>(n)] = ~0ull;
  const std::vector<NetId>& pis = ckt_->primary_inputs();
  for (std::size_t i = 0; i < pi_words.size(); ++i)
    values[static_cast<std::size_t>(pis[i])] = pi_words[i];
}

void CompiledCircuit::eval_packed_range(std::uint64_t* values,
                                        std::size_t from,
                                        std::size_t to) const {
  for (std::size_t k = from; k < to; ++k) {
    const GateRec& g = gates_[k];
    values[g.out] = eval_cell_packed(g.kind, values[g.in[0]], values[g.in[1]],
                                     values[g.in[2]]);
  }
}

void CompiledCircuit::eval_packed(std::vector<std::uint64_t>& values) const {
  assert(values.size() == static_cast<std::size_t>(ckt_->net_count()));
  eval_packed_range(values.data(), 0, gates_.size());
}

void CompiledCircuit::eval_packed_line(std::vector<std::uint64_t>& values,
                                       const LineFault& fault) const {
  assert(values.size() == static_cast<std::size_t>(ckt_->net_count()));
  std::uint64_t* const v = values.data();
  const std::uint64_t forced = fault.stuck_one ? ~0ull : 0ull;

  if (fault.net >= 0) {
    // Stem: the net holds the forced word everywhere, so its driver's
    // write is dead — skip the driver instead of overriding per gate.
    v[fault.net] = forced;
    const int driver = ckt_->driver_of(fault.net);
    if (driver < 0) {
      eval_packed_range(v, 0, gates_.size());
      return;
    }
    const std::size_t pos = position_of(driver);
    eval_packed_range(v, 0, pos);
    eval_packed_range(v, pos + 1, gates_.size());
    return;
  }

  // Branch: exactly one pin of one gate sees the forced word.
  const std::size_t pos = position_of(fault.gate);
  eval_packed_range(v, 0, pos);
  const GateRec& g = gates_[pos];
  assert(fault.pin >= 0 && fault.pin < g.n_in);
  std::uint64_t in[3] = {v[g.in[0]], v[g.in[1]], v[g.in[2]]};
  in[fault.pin] = forced;
  v[g.out] = eval_cell_packed(g.kind, in[0], in[1], in[2]);
  eval_packed_range(v, pos + 1, gates_.size());
}

std::uint64_t CompiledCircuit::eval_packed_faulty(
    std::vector<std::uint64_t>& values, int fault_gate,
    const gates::FaultAnalysis& fa) const {
  assert(values.size() == static_cast<std::size_t>(ckt_->net_count()));
  assert(fa.compiled_binary);
  std::uint64_t* const v = values.data();
  const std::size_t pos = position_of(fault_gate);
  eval_packed_range(v, 0, pos);

  // Faulted gate: minterm expansion of the compiled truth/contention
  // masks.  Its local inputs equal the good machine's (the circuit is
  // acyclic and this is the only faulted gate), so the contention word
  // doubles as the per-pattern IDDQ excitation mask.
  const GateRec& g = gates_[pos];
  const std::uint64_t in[3] = {v[g.in[0]], v[g.in[1]], v[g.in[2]]};
  std::uint64_t out = 0;
  std::uint64_t contention = 0;
  const unsigned combos = 1u << g.n_in;
  // Only rows < combos carry bits (the dictionary has exactly 2^n rows).
  const unsigned active = fa.compiled_truth | fa.compiled_contention;
  for (unsigned vec = 0; vec < combos; ++vec) {
    if (((active >> vec) & 1u) == 0) continue;
    std::uint64_t minterm = ~0ull;
    for (unsigned i = 0; i < g.n_in; ++i)
      minterm &= ((vec >> i) & 1u) != 0 ? in[i] : ~in[i];
    if (((fa.compiled_truth >> vec) & 1u) != 0) out |= minterm;
    if (((fa.compiled_contention >> vec) & 1u) != 0) contention |= minterm;
  }
  v[g.out] = out;

  eval_packed_range(v, pos + 1, gates_.size());
  return contention;
}

// ---- SoA bit-plane kernels ------------------------------------------------
//
// The bodies live in logic/packed_kernels.hpp as templates over a 4x64-bit
// vector; this TU instantiates the portable U64x4 shape (and the NEON pair
// on aarch64), while compiled_circuit_avx2.cpp — the only TU built with
// -mavx2 — provides the __m256i instantiations behind the *_avx2 entry
// points and compiled_circuit_avx512.cpp — the only TU built with
// -mavx512f -mavx512vl — the VPTERNLOGQ variants behind *_avx512.  Dispatch is per call on simd::active_backend(), so the bench
// and the bit-identity tests can flip backends inside one process.

void CompiledCircuit::init_packed_planes(
    const std::uint64_t* pi_planes, std::size_t stride,
    std::vector<std::uint64_t>& planes) const {
  assert(stride % kSimdWords == 0);
  const std::size_t n_net = static_cast<std::size_t>(ckt_->net_count());
  planes.assign(n_net * stride, 0);
  // Padding words get the same seeds as real ones, so every backend
  // computes identical plane buffers end to end.
  for (const NetId n : const_one_)
    std::fill_n(planes.begin() +
                    static_cast<std::ptrdiff_t>(
                        static_cast<std::size_t>(n) * stride),
                stride, ~0ull);
  const std::vector<NetId>& pis = ckt_->primary_inputs();
  for (std::size_t i = 0; i < pis.size(); ++i)
    std::copy_n(pi_planes + i * stride, stride,
                planes.begin() +
                    static_cast<std::ptrdiff_t>(
                        static_cast<std::size_t>(pis[i]) * stride));
}

void CompiledCircuit::eval_packed_planes(std::vector<std::uint64_t>& planes,
                                         std::size_t stride) const {
  assert(stride % kSimdWords == 0);
  assert(planes.size() ==
         static_cast<std::size_t>(ckt_->net_count()) * stride);
#if defined(CPSINW_SIMD_AVX512)
  if (simd::active_backend() == simd::Backend::kAvx512)
    return kernels::eval_planes_avx512(*this, planes.data(), stride);
#endif
#if defined(CPSINW_SIMD_AVX2)
  if (simd::active_backend() == simd::Backend::kAvx2)
    return kernels::eval_planes_avx2(*this, planes.data(), stride);
#endif
#if defined(__aarch64__) && !defined(CPSINW_SIMD_OFF)
  if (simd::active_backend() == simd::Backend::kNeon)
    return kernels::eval_planes_t<kernels::U64x2x2>(*this, planes.data(),
                                                    stride);
#endif
  kernels::eval_planes_t<kernels::U64x4>(*this, planes.data(), stride);
}

std::size_t CompiledCircuit::eval_packed_line_batch(
    const std::uint64_t* good_planes, std::size_t stride, std::size_t n_words,
    const std::uint64_t* active, const LineFault* faults, std::size_t n_faults,
    std::uint64_t* det, std::vector<std::uint64_t>& lane_scratch) const {
  assert(n_faults >= 1 && n_faults <= kBatchLanes);
  assert(n_words <= stride);
  if (n_words == 0) return 0;
#if defined(CPSINW_SIMD_AVX512)
  if (simd::active_backend() == simd::Backend::kAvx512)
    return kernels::eval_line_batch_avx512(*this, good_planes, stride,
                                           n_words, active, faults, n_faults,
                                           det, lane_scratch);
#endif
#if defined(CPSINW_SIMD_AVX2)
  if (simd::active_backend() == simd::Backend::kAvx2)
    return kernels::eval_line_batch_avx2(*this, good_planes, stride, n_words,
                                         active, faults, n_faults, det,
                                         lane_scratch);
#endif
#if defined(__aarch64__) && !defined(CPSINW_SIMD_OFF)
  if (simd::active_backend() == simd::Backend::kNeon)
    return kernels::eval_line_batch_t<kernels::U64x2x2>(
        *this, good_planes, stride, n_words, active, faults, n_faults, det,
        lane_scratch);
#endif
  return kernels::eval_line_batch_t<kernels::U64x4>(
      *this, good_planes, stride, n_words, active, faults, n_faults, det,
      lane_scratch);
}

void CompiledCircuit::eval_packed_faulty_planes(
    const std::uint64_t* good_planes, std::size_t stride, std::size_t n_words,
    int fault_gate, const gates::FaultAnalysis& fa, std::uint64_t* diff,
    std::uint64_t* contention, std::vector<std::uint64_t>& lane_scratch) const {
  assert(fa.compiled_binary);
  assert(n_words <= stride);
  if (n_words == 0) return;
#if defined(CPSINW_SIMD_AVX512)
  if (simd::active_backend() == simd::Backend::kAvx512)
    return kernels::eval_faulty_planes_avx512(*this, good_planes, stride,
                                              n_words, fault_gate, fa, diff,
                                              contention, lane_scratch);
#endif
#if defined(CPSINW_SIMD_AVX2)
  if (simd::active_backend() == simd::Backend::kAvx2)
    return kernels::eval_faulty_planes_avx2(*this, good_planes, stride,
                                            n_words, fault_gate, fa, diff,
                                            contention, lane_scratch);
#endif
#if defined(__aarch64__) && !defined(CPSINW_SIMD_OFF)
  if (simd::active_backend() == simd::Backend::kNeon)
    return kernels::eval_faulty_planes_t<kernels::U64x2x2>(
        *this, good_planes, stride, n_words, fault_gate, fa, diff, contention,
        lane_scratch);
#endif
  kernels::eval_faulty_planes_t<kernels::U64x4>(*this, good_planes, stride,
                                                n_words, fault_gate, fa, diff,
                                                contention, lane_scratch);
}

}  // namespace cpsinw::logic
