#include "logic/verilog_format.hpp"

#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "gates/cell.hpp"
#include "logic/cell_mapping.hpp"
#include "logic/net_registry.hpp"

namespace cpsinw::logic {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string upper(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s)
    out.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  return out;
}

bool is_all_lower(const std::string& s) {
  for (const char c : s)
    if (std::isupper(static_cast<unsigned char>(c)) != 0) return false;
  return true;
}

/// One token of the Verilog subset: an identifier (plain or escaped) or a
/// single-character symbol.
struct Tok {
  bool end = false;   ///< end of input
  bool word = false;  ///< identifier (text set) vs. symbol (sym set)
  std::string text;
  char sym = 0;
  SourceLoc loc;
};

/// Whole-stream scanner with line/column tracking, `//` and `/* */`
/// comments, and escaped identifiers (`\name `).
class Lexer {
 public:
  Lexer(const NetRegistry& reg, std::string text)
      : reg_(reg), text_(std::move(text)) {}

  const Tok& peek() {
    if (!has_peek_) {
      peeked_ = lex();
      has_peek_ = true;
    }
    return peeked_;
  }

  Tok next() {
    if (has_peek_) {
      has_peek_ = false;
      return peeked_;
    }
    return lex();
  }

  /// Next token must be a plain/escaped identifier.
  Tok expect_word(const char* what) {
    Tok t = next();
    if (!t.word)
      reg_.fail(t.loc, std::string("expected ") + what +
                           (t.end ? ", got end of file"
                                  : std::string(", got '") + t.sym + "'"));
    return t;
  }

  /// Next token must be the symbol `c`.
  Tok expect_sym(char c) {
    Tok t = next();
    if (t.end)
      reg_.fail(t.loc, std::string("unexpected end of file, expected '") +
                           c + "'");
    if (t.word || t.sym != c)
      reg_.fail(t.loc, std::string("expected '") + c + "', got '" +
                           (t.word ? t.text : std::string(1, t.sym)) + "'");
    return t;
  }

 private:
  [[nodiscard]] SourceLoc here() const { return {line_, col_}; }

  char cur() const { return text_[pos_]; }
  bool done() const { return pos_ >= text_.size(); }

  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void skip_space_and_comments() {
    while (!done()) {
      if (std::isspace(static_cast<unsigned char>(cur())) != 0) {
        advance();
      } else if (cur() == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (!done() && cur() != '\n') advance();
      } else if (cur() == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '*') {
        const SourceLoc open = here();
        advance();
        advance();
        while (true) {
          if (done()) reg_.fail(open, "unterminated block comment");
          if (cur() == '*' && pos_ + 1 < text_.size() &&
              text_[pos_ + 1] == '/') {
            advance();
            advance();
            break;
          }
          advance();
        }
      } else {
        return;
      }
    }
  }

  Tok lex() {
    skip_space_and_comments();
    Tok t;
    t.loc = here();
    if (done()) {
      t.end = true;
      return t;
    }
    const char c = cur();
    if (c == '\\') {
      advance();
      while (!done() &&
             std::isspace(static_cast<unsigned char>(cur())) == 0) {
        t.text.push_back(cur());
        advance();
      }
      if (t.text.empty()) reg_.fail(t.loc, "empty escaped identifier");
      t.word = true;
      return t;
    }
    if (is_ident_char(c)) {
      while (!done() && is_ident_char(cur())) {
        t.text.push_back(cur());
        advance();
      }
      t.word = true;
      return t;
    }
    if (c == '[')
      reg_.fail(t.loc,
                "vector/bit-select syntax is not supported (scalar nets "
                "only)");
    if (c == '(' || c == ')' || c == ',' || c == ';' || c == '.' ||
        c == '=') {
      t.sym = c;
      advance();
      return t;
    }
    reg_.fail(t.loc, std::string("unexpected character '") + c + "'");
  }

  const NetRegistry& reg_;
  std::string text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool has_peek_ = false;
  Tok peeked_;
};

std::optional<gates::CellKind> cp_cell_from(const std::string& token) {
  const std::string up = upper(token);
  for (const gates::CellKind kind : gates::all_cell_kinds())
    if (up == gates::to_string(kind)) return kind;
  return std::nullopt;
}

}  // namespace

Circuit read_verilog(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  NetRegistry reg("verilog");
  Lexer lex(reg, buf.str());
  std::unordered_set<std::string> declared;

  const auto require_declared = [&](const Tok& t) {
    if (declared.count(t.text) == 0)
      reg.fail(t.loc, "undeclared net '" + t.text +
                          "' (declare it as input, output, or wire)");
  };

  // module <name> ( port, list ) ;
  {
    const Tok kw = lex.expect_word("'module'");
    if (kw.text != "module")
      reg.fail(kw.loc, "expected 'module', got '" + kw.text + "'");
    lex.expect_word("a module name");
    lex.expect_sym('(');
    if (!(!lex.peek().word && lex.peek().sym == ')')) {
      while (true) {
        const Tok port = lex.expect_word("a port name");
        if (port.text == "input" || port.text == "output" ||
            port.text == "wire")
          reg.fail(port.loc,
                   "ANSI-style port declarations are not supported; use a "
                   "plain port list and declare directions in the body");
        const Tok sep = lex.next();
        if (!sep.word && sep.sym == ')') break;
        if (sep.word || sep.sym != ',')
          reg.fail(sep.loc, "expected ',' or ')' in the port list");
      }
    } else {
      lex.next();  // consume ')'
    }
    lex.expect_sym(';');
  }

  // Body statements until endmodule.
  while (true) {
    const Tok head = lex.next();
    if (head.end)
      reg.fail(head.loc, "unexpected end of file, expected 'endmodule'");
    if (!head.word)
      reg.fail(head.loc, std::string("unexpected '") + head.sym + "'");
    if (head.text == "endmodule") break;

    if (head.text == "input" || head.text == "output" ||
        head.text == "wire") {
      while (true) {
        const Tok name = lex.expect_word("a net name");
        declared.insert(name.text);
        if (head.text == "input")
          reg.add_input(name.text, name.loc);
        else if (head.text == "output")
          reg.add_output(name.text, name.loc);
        const Tok sep = lex.next();
        if (!sep.word && sep.sym == ';') break;
        if (sep.word || sep.sym != ',')
          reg.fail(sep.loc, "expected ',' or ';' in the declaration");
      }
      continue;
    }

    if (head.text == "assign")
      reg.fail(head.loc,
               "'assign' is not supported (structural subset: gate "
               "primitives and cell instantiations only)");
    if (head.text == "always" || head.text == "initial")
      reg.fail(head.loc, "'" + head.text +
                             "' blocks are not supported (structural "
                             "subset only)");
    if (head.text == "reg")
      reg.fail(head.loc,
               "'reg' declarations are not supported (combinational "
               "subset only)");

    const auto primitive = foreign_gate_from(head.text);
    const auto cp = cp_cell_from(head.text);
    if (primitive && is_all_lower(head.text) && !cp) {
      // Gate primitive: [instance] ( out, in... ) ;
      if (lex.peek().word) lex.next();  // optional instance name
      lex.expect_sym('(');
      std::vector<Tok> terms;
      while (true) {
        terms.push_back(lex.expect_word("a net name"));
        const Tok sep = lex.next();
        if (!sep.word && sep.sym == ')') break;
        if (sep.word || sep.sym != ',')
          reg.fail(sep.loc, "expected ',' or ')' in the terminal list");
      }
      lex.expect_sym(';');
      if (terms.size() < 2)
        reg.fail(head.loc, "gate primitive '" + head.text +
                               "' needs an output and at least one input");
      for (const Tok& t : terms) require_declared(t);
      std::vector<std::string> ins;
      for (std::size_t i = 1; i < terms.size(); ++i)
        ins.push_back(terms[i].text);
      reg.add_foreign_gate(*primitive, terms[0].text, ins, head.loc);
      continue;
    }

    if (cp) {
      // Named cell: CELL [instance] ( .Y(y), .A(a)... | y, a... ) ;
      const int arity = gates::input_count(*cp);
      if (lex.peek().word) lex.next();  // optional instance name
      lex.expect_sym('(');
      std::string out;
      std::vector<std::string> ins(static_cast<std::size_t>(arity));
      std::vector<bool> seen(static_cast<std::size_t>(arity), false);
      bool out_seen = false;
      if (!lex.peek().word && lex.peek().sym == '.') {
        while (true) {
          lex.expect_sym('.');
          const Tok port = lex.expect_word("a port name");
          lex.expect_sym('(');
          const Tok net = lex.expect_word("a net name");
          lex.expect_sym(')');
          require_declared(net);
          const std::string pu = upper(port.text);
          if (pu == "Y") {
            if (out_seen)
              reg.fail(port.loc, "port 'Y' connected twice");
            out = net.text;
            out_seen = true;
          } else if (pu.size() == 1 && pu[0] >= 'A' &&
                     pu[0] < 'A' + arity) {
            const auto idx = static_cast<std::size_t>(pu[0] - 'A');
            if (seen[idx])
              reg.fail(port.loc,
                       "port '" + port.text + "' connected twice");
            ins[idx] = net.text;
            seen[idx] = true;
          } else {
            reg.fail(port.loc,
                     std::string(gates::to_string(*cp)) + " has no port '" +
                         port.text + "' (ports: Y = output, inputs A" +
                         (arity > 1 ? ".." : "") +
                         (arity > 1
                              ? std::string(1, static_cast<char>(
                                                   'A' + arity - 1))
                              : "") +
                         ")");
          }
          const Tok sep = lex.next();
          if (!sep.word && sep.sym == ')') break;
          if (sep.word || sep.sym != ',')
            reg.fail(sep.loc, "expected ',' or ')' in the port list");
        }
        if (!out_seen)
          reg.fail(head.loc, "output port 'Y' is not connected");
        for (int i = 0; i < arity; ++i)
          if (!seen[static_cast<std::size_t>(i)])
            reg.fail(head.loc,
                     std::string("input port '") +
                         static_cast<char>('A' + i) + "' is not connected");
      } else {
        // Positional: output first, then inputs.
        std::vector<Tok> terms;
        while (true) {
          terms.push_back(lex.expect_word("a net name"));
          const Tok sep = lex.next();
          if (!sep.word && sep.sym == ')') break;
          if (sep.word || sep.sym != ',')
            reg.fail(sep.loc, "expected ',' or ')' in the terminal list");
        }
        for (const Tok& t : terms) require_declared(t);
        if (static_cast<int>(terms.size()) != arity + 1)
          reg.fail(head.loc,
                   std::string(gates::to_string(*cp)) + " takes " +
                       std::to_string(arity + 1) +
                       " terminals (output first), got " +
                       std::to_string(terms.size()));
        out = terms[0].text;
        for (int i = 0; i < arity; ++i)
          ins[static_cast<std::size_t>(i)] =
              terms[static_cast<std::size_t>(i) + 1].text;
      }
      lex.expect_sym(';');
      reg.add_cp_gate(*cp, out, ins, head.loc);
      continue;
    }

    if (primitive) {
      std::string lower;
      for (const char c : head.text)
        lower.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
      reg.fail(head.loc, "gate primitives are lowercase in Verilog (use '" +
                             lower + "', not '" + head.text + "')");
    }
    reg.fail(head.loc,
             "unsupported construct or unknown cell '" + head.text +
                 "' (primitives: and nand or nor xor xnor not buf; cells: "
                 "INV BUF NAND2 NOR2 XOR2 XOR3 MAJ3)");
  }

  const Tok tail = lex.next();
  if (!tail.end)
    reg.fail(tail.loc, "only a single module per file is supported");
  return reg.finish();
}

Circuit read_verilog_string(const std::string& text) {
  std::istringstream iss(text);
  return read_verilog(iss);
}

namespace {

/// Emits `name` as a legal Verilog identifier, escaping when needed.  The
/// escaped form includes its terminating space.
std::string vname(const std::string& name) {
  bool simple = !name.empty() &&
                (std::isalpha(static_cast<unsigned char>(name[0])) != 0 ||
                 name[0] == '_');
  if (simple)
    for (const char c : name)
      if (!is_ident_char(c)) {
        simple = false;
        break;
      }
  if (simple) return name;
  return "\\" + name + " ";
}

}  // namespace

void write_verilog(std::ostream& os, const Circuit& ckt,
                   const std::string& module_name) {
  for (NetId n = 0; n < ckt.net_count(); ++n)
    if (ckt.constant_of(n) != LogicV::kX)
      throw std::invalid_argument(
          "write_verilog: constant net '" + ckt.net_name(n) +
          "' is not representable in the structural subset");

  std::unordered_set<NetId> port_nets;
  std::vector<NetId> outputs;  // POs deduplicated, order preserved
  for (const NetId n : ckt.primary_outputs())
    if (port_nets.insert(n).second) outputs.push_back(n);
  for (const NetId n : ckt.primary_inputs()) port_nets.insert(n);

  os << "// cpsinw verilog export: " << ckt.gate_count() << " gates, "
     << ckt.net_count() << " nets\n";
  os << "module " << module_name << " (";
  bool first = true;
  for (const NetId n : ckt.primary_inputs()) {
    os << (first ? "" : ", ") << vname(ckt.net_name(n));
    first = false;
  }
  for (const NetId n : outputs) {
    os << (first ? "" : ", ") << vname(ckt.net_name(n));
    first = false;
  }
  os << ");\n";
  for (const NetId n : ckt.primary_inputs())
    os << "  input " << vname(ckt.net_name(n)) << ";\n";
  for (const NetId n : outputs)
    os << "  output " << vname(ckt.net_name(n)) << ";\n";
  for (NetId n = 0; n < ckt.net_count(); ++n)
    if (port_nets.count(n) == 0)
      os << "  wire " << vname(ckt.net_name(n)) << ";\n";

  using gates::CellKind;
  for (const int gid : ckt.topo_order()) {
    const GateInst& g = ckt.gate(gid);
    const std::string out = vname(ckt.net_name(g.out));
    const auto in = [&](int i) {
      return vname(ckt.net_name(g.in[static_cast<std::size_t>(i)]));
    };
    switch (g.kind) {
      case CellKind::kInv:
        os << "  not (" << out << ", " << in(0) << ");\n";
        break;
      case CellKind::kBuf:
        os << "  buf (" << out << ", " << in(0) << ");\n";
        break;
      case CellKind::kNand2:
        os << "  nand (" << out << ", " << in(0) << ", " << in(1) << ");\n";
        break;
      case CellKind::kNor2:
        os << "  nor (" << out << ", " << in(0) << ", " << in(1) << ");\n";
        break;
      case CellKind::kXor2:
        os << "  xor (" << out << ", " << in(0) << ", " << in(1) << ");\n";
        break;
      case CellKind::kXor3:
        os << "  xor (" << out << ", " << in(0) << ", " << in(1) << ", "
           << in(2) << ");\n";
        break;
      case CellKind::kMaj3:
        os << "  MAJ3 u" << gid << " (.Y(" << out << "), .A(" << in(0)
           << "), .B(" << in(1) << "), .C(" << in(2) << "));\n";
        break;
    }
  }
  os << "endmodule\n";
}

std::string to_verilog_string(const Circuit& ckt,
                              const std::string& module_name) {
  std::ostringstream oss;
  write_verilog(oss, ckt, module_name);
  return oss.str();
}

}  // namespace cpsinw::logic
