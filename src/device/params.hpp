// Structural, physical and calibration parameters of the TIG-SiNWFET.
//
// The geometry block reproduces Table II of the paper; the electrical block
// holds the calibration constants of the analytical transport model that
// substitutes for the authors' TCAD deck (see DESIGN.md section 2).
#pragma once

#include <string>

namespace cpsinw::device {

/// Which of the three gates of a TIG-SiNWFET a quantity refers to.
/// PGS is the polarity gate on the source side, PGD on the drain side,
/// CG the central control gate (paper Fig. 1).
enum class GateTerminal { kPGS, kCG, kPGD };

/// Human-readable name ("PGS", "CG", "PGD").
[[nodiscard]] const char* to_string(GateTerminal t);

/// Complete parameter set for one TIG-SiNWFET.
///
/// Defaults reproduce the paper's Table II device at V_DD = 1.2 V (22 nm
/// node).  All voltages in volts, currents in amps, lengths in nanometers,
/// capacitances in farads.
struct TigParams {
  // --- Geometry and process (paper Table II) -----------------------------
  double l_cg_nm = 22.0;           ///< control gate length
  double l_pgs_nm = 22.0;          ///< source-side polarity gate length
  double l_pgd_nm = 22.0;          ///< drain-side polarity gate length
  double l_sp_nm = 18.0;           ///< spacer between CG and each PG
  double r_nw_nm = 7.5;            ///< nanowire radius
  double t_ox_nm = 5.1;            ///< gate oxide thickness
  double phi_b_ev = 0.41;          ///< Schottky barrier height (NiSi/Si)
  double channel_doping_cm3 = 1e15;///< p-type channel doping

  // --- Operating point ----------------------------------------------------
  double vdd = 1.2;                ///< supply voltage

  // --- Transport calibration (TCAD substitute) ---------------------------
  /// CG threshold of the electron branch (relative to source).
  double vth_n = 0.40;
  /// CG threshold magnitude of the hole branch.
  double vth_p = 0.40;
  /// Subthreshold ideality factor (SS = ideality * ln10 * phi_t ~ 86mV/dec,
  /// good for a gate-all-around Schottky device).
  double ss_ideality = 1.45;
  /// Electron transconductance scale [A/V]; calibrated so that the
  /// fault-free n-branch saturates near 4.7e-5 A (paper Fig. 3 axis).
  double k_n = 5.5e-5;
  /// Electron/hole drive ratio (mu_n / mu_p).
  double mu_ratio = 2.0;

  // --- Schottky polarity-gate barrier model -------------------------------
  /// Overdrive at which the *injection-side* barrier becomes transparent.
  /// Calibrated so a floating polarity gate stops conduction at
  /// |V_cut - nominal| ~ 0.56 V (paper Sec. V-A).
  double pg_onset_inj = 0.75;
  /// Logistic slope of the injection-side barrier transparency [V].
  double pg_slope_inj = 0.060;
  /// Overdrive for the *collection-side* barrier (drain side for electrons):
  /// transport there is quasi-ballistic so the gate is less critical
  /// (paper Sec. V-A discussion of PGD) — the onset sits lower and the
  /// mixed-gate off-state still holds (conduction rule of Sec. III-C).
  double pg_onset_col = 0.42;
  /// Logistic slope of the collection-side barrier transparency [V].
  double pg_slope_col = 0.065;
  /// Fraction of V_DS assisting collection-barrier thinning (DIBL-like).
  /// Kept at zero by default: any assist softens the mixed-gate off-state.
  double dibl_col = 0.0;

  // --- Output characteristic ----------------------------------------------
  double v_dsat = 0.22;            ///< drain saturation voltage scale
  double lambda = 0.05;            ///< channel length modulation [1/V]

  // --- Parasitics (companion data of the table compact model) ------------
  double c_gate_f = 1.0e-15;       ///< per-gate-terminal capacitance
  double c_sd_f = 0.6e-15;         ///< source/drain junction capacitance

  /// Total source-to-drain channel length [nm]: PGS + spacer + CG + spacer
  /// + PGD (102 nm for the default geometry).
  [[nodiscard]] double channel_length_nm() const {
    return l_pgs_nm + l_sp_nm + l_cg_nm + l_sp_nm + l_pgd_nm;
  }

  /// Center coordinate [nm] of a gate region along the channel (x = 0 at
  /// the source contact).
  [[nodiscard]] double gate_center_nm(GateTerminal t) const;

  /// Thermal voltage used throughout (300 K).
  [[nodiscard]] double phi_t() const;

  /// Subthreshold linearization scale for the CG charge term [V].
  [[nodiscard]] double s_cg() const { return ss_ideality * phi_t(); }

  /// Subthreshold swing [mV/decade] implied by the calibration.
  [[nodiscard]] double subthreshold_swing_mv_dec() const;

  /// Validates physical consistency; throws std::invalid_argument with a
  /// diagnostic message when a parameter is out of its physical range.
  void validate() const;
};

}  // namespace cpsinw::device
