// 4-D lookup-table compact model — the C++ equivalent of the paper's
// Verilog-A table model (Sec. III-D): "the result of the TCAD simulations
// makes a look-up table model characterizing the channel conductivity as a
// function of V_CG, V_PGS and V_PGD" (plus V_DS), together with terminal
// capacitances.
//
// The table is built once from a TigModel (our TCAD substitute) and then
// evaluated by 4-D multilinear interpolation.  Circuit simulation can use
// either the analytical device or this table; agreement between the two is
// covered by tests.
#pragma once

#include <array>
#include <iosfwd>
#include <vector>

#include "device/tig_model.hpp"

namespace cpsinw::device {

/// Axis specification of the lookup grid.
struct TableGrid {
  double gate_min = -0.4;  ///< gate voltages relative to source [V]
  double gate_max = 1.6;
  int gate_points = 21;
  double vds_min = 0.0;    ///< normalized drain-source voltage [V]
  double vds_max = 1.4;
  int vds_points = 15;
};

/// Immutable sampled compact model.
class TableModel {
 public:
  /// Samples the electron-branch core current of `model` over the grid.
  /// The hole branch is reconstructed by the ambipolar mirror at eval time,
  /// so only one 4-D table is stored.
  /// @throws std::invalid_argument for degenerate grids.
  static TableModel build(const TigModel& model, const TableGrid& grid = {});

  /// Drain-source current for absolute terminal voltages, interpolated.
  /// Matches TigModel::ids within interpolation error.
  [[nodiscard]] double ids(const TigBias& bias) const;

  /// Terminal capacitances copied from the device parameters (the paper's
  /// table model also carries parasitics).
  [[nodiscard]] double c_gate() const { return c_gate_; }
  [[nodiscard]] double c_sd() const { return c_sd_; }

  [[nodiscard]] const TableGrid& grid() const { return grid_; }

  /// Serializes the table in a plain-text format (header + samples).
  void save(std::ostream& os) const;

  /// Deserializes a table written by save().
  /// @throws std::runtime_error on malformed input.
  static TableModel load(std::istream& is);

 private:
  TableModel() = default;

  /// Electron-core interpolation on (g, ps, pd, u) relative voltages.
  [[nodiscard]] double electron_core(double g, double ps, double pd,
                                     double u) const;

  [[nodiscard]] std::size_t index(int ig, int is, int id, int iu) const;

  TableGrid grid_;
  std::vector<double> samples_;
  double mu_ratio_ = 2.0;
  double c_gate_ = 0.0;
  double c_sd_ = 0.0;
};

}  // namespace cpsinw::device
