#include "device/iv_sweep.hpp"

#include "util/numeric.hpp"

namespace cpsinw::device {

util::DataSeries transfer_sweep(const TigModel& model, double vpg, double vds,
                                double vcg_min, double vcg_max, int points) {
  util::DataSeries s("transfer " + model.defects().describe(), "VCG [V]");
  s.add_column("ID [A]");
  for (const double vcg : util::linspace(vcg_min, vcg_max, points)) {
    const double i = model.ids(
        {.vcg = vcg, .vpgs = vpg, .vpgd = vpg, .vs = 0.0, .vd = vds});
    s.add_sample(vcg, {i});
  }
  return s;
}

util::DataSeries output_sweep(const TigModel& model, double vpg, double vcg,
                              double vd_min, double vd_max, int points) {
  util::DataSeries s("output " + model.defects().describe(), "VD [V]");
  s.add_column("ID [A]");
  for (const double vd : util::linspace(vd_min, vd_max, points)) {
    // Measured drain current includes the GOS gate-leak path: what an
    // external ammeter at the drain sees (paper's negative-ID observation).
    const TigCurrents c = model.currents(
        {.vcg = vcg, .vpgs = vpg, .vpgd = vpg, .vs = 0.0, .vd = vd});
    s.add_sample(vd, {c.into_drain});
  }
  return s;
}

TransferSummary summarize_transfer(const TigModel& model) {
  const double vdd = model.params().vdd;
  TransferSummary out;
  out.i_sat = model.ids(
      {.vcg = vdd, .vpgs = vdd, .vpgd = vdd, .vs = 0.0, .vd = vdd});
  out.i_off = model.ids(
      {.vcg = 0.0, .vpgs = vdd, .vpgd = vdd, .vs = 0.0, .vd = vdd});
  out.vth = model.vth_n_extracted();
  return out;
}

}  // namespace cpsinw::device
