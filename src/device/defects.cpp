#include "device/defects.hpp"

#include <algorithm>
#include <sstream>

namespace cpsinw::device {

double GosDefect::severity() const {
  return std::clamp(size_nm2 / 25.0, 0.0, 4.0);
}

std::string DefectState::describe() const {
  if (is_fault_free()) return "fault-free";
  std::ostringstream oss;
  bool first = true;
  if (gos) {
    oss << "GOS@" << to_string(gos->location) << '(' << gos->size_nm2
        << "nm2)";
    first = false;
  }
  if (nw_break) {
    if (!first) oss << '+';
    oss << "NW-break(sev=" << nw_break->severity << ')';
  }
  return oss.str();
}

GosElectricalEffect gos_effect(const GosDefect& gos) {
  // Reference effects at severity 1 (25 nm^2 cuboid), calibrated against
  // paper Fig. 3a-c.  The gate->channel ohmic path splits between the
  // source and drain side according to the defect position; its total
  // conductance (2 uS) reproduces the negative-I_D magnitude at low V_D.
  GosElectricalEffect ref;
  constexpr double kGosPathSiemens = 2.0e-6;
  switch (gos.location) {
    case GateTerminal::kPGS:
      ref.isat_scale = 0.35;   // Fig. 3a: strong I_DSAT collapse
      // Intrinsic barrier shift; the *extracted* (constant-current) shift
      // additionally absorbs the I_DSAT collapse and lands at the paper's
      // observed Delta V_Th = 170 mV.
      ref.delta_vth = 0.112;
      ref.g_gate_s = 0.8 * kGosPathSiemens;
      ref.g_gate_d = 0.2 * kGosPathSiemens;
      break;
    case GateTerminal::kCG:
      ref.isat_scale = 0.55;   // Fig. 3b: milder reduction than PGS
      ref.delta_vth = 0.100;
      ref.g_gate_s = 0.5 * kGosPathSiemens;
      ref.g_gate_d = 0.5 * kGosPathSiemens;
      break;
    case GateTerminal::kPGD:
      ref.isat_scale = 1.07;   // Fig. 3c: slight current increase
      ref.delta_vth = 0.0;     // Fig. 3c: no V_Th impact
      ref.g_gate_s = 0.2 * kGosPathSiemens;
      ref.g_gate_d = 0.8 * kGosPathSiemens;
      break;
  }

  const double s = gos.severity();
  GosElectricalEffect out;
  out.isat_scale = 1.0 + (ref.isat_scale - 1.0) * s;
  out.delta_vth = ref.delta_vth * s;
  out.g_gate_s = ref.g_gate_s * s;
  out.g_gate_d = ref.g_gate_d * s;
  // A shorted dielectric can at worst stop the device, never invert it.
  out.isat_scale = std::max(out.isat_scale, 0.0);
  return out;
}

double break_current_scale(const BreakDefect& brk) {
  const double sev = std::clamp(brk.severity, 0.0, 1.0);
  constexpr double kTunnelResidue = 1e-6;
  return (1.0 - sev) + kTunnelResidue;
}

}  // namespace cpsinw::device
