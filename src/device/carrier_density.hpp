// Channel electron-density model reproducing paper Fig. 4: the density
// collapse caused by hole injection through a gate-oxide short.
//
// Physical narrative (paper Sec. IV-B): in the n-configured device a GOS
// injects holes from the (positively biased) gate into the channel, locally
// depleting electrons.  Injection is strongest near the source because the
// electron-rich source accelerates hole injection; near the drain the
// baseline electron density is already suppressed by saturation pinch-off,
// so even a weaker injection produces a large *relative* dip there.
#pragma once

#include <vector>

#include "device/defects.hpp"
#include "device/params.hpp"

namespace cpsinw::device {

/// Electron-density profile along the channel under saturation bias.
struct DensityProfile {
  std::vector<double> x_nm;        ///< position along the channel [nm]
  std::vector<double> density_cm3; ///< electron density [cm^-3]
};

/// Computes the electron-density profile of a device under the paper's
/// saturation bias (all gates and drain at V_DD).  When a GOS defect is
/// present a localized depletion dip is superimposed at the defect site.
/// @param n number of samples (>= 2)
[[nodiscard]] DensityProfile electron_density_profile(
    const TigParams& params, const DefectState& defects, int n = 205);

/// The scalar "channel electron density" the paper quotes in Fig. 4: the
/// density at the transport-limiting point — the source end for a
/// fault-free device, the GOS site for a defective one.
[[nodiscard]] double reported_density_cm3(const TigParams& params,
                                          const DefectState& defects);

/// Paper Fig. 4 reference values [cm^-3] for comparison printing.
struct Fig4Reference {
  double fault_free = 1.558e19;
  double gos_cg = 1.763e18;
  double gos_pgd = 1.316e18;
  double gos_pgs = 1.426e17;
};

}  // namespace cpsinw::device
