#include "device/table_model.hpp"

#include <array>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace cpsinw::device {

namespace {

double axis_value(double lo, double hi, int points, int i) {
  return lo + (hi - lo) * static_cast<double>(i) /
                  static_cast<double>(points - 1);
}

/// Fractional index of v on a uniform axis, clamped to the grid.
struct AxisPos {
  int i0;
  double t;
};

AxisPos locate(double v, double lo, double hi, int points) {
  const double step = (hi - lo) / static_cast<double>(points - 1);
  double f = (v - lo) / step;
  if (f <= 0.0) return {0, 0.0};
  if (f >= points - 1) return {points - 2, 1.0};
  const int i0 = static_cast<int>(f);
  return {i0, f - i0};
}

}  // namespace

std::size_t TableModel::index(int ig, int is, int id, int iu) const {
  const auto gp = static_cast<std::size_t>(grid_.gate_points);
  const auto up = static_cast<std::size_t>(grid_.vds_points);
  return ((static_cast<std::size_t>(ig) * gp + static_cast<std::size_t>(is)) *
              gp +
          static_cast<std::size_t>(id)) *
             up +
         static_cast<std::size_t>(iu);
}

TableModel TableModel::build(const TigModel& model, const TableGrid& grid) {
  if (grid.gate_points < 2 || grid.vds_points < 2)
    throw std::invalid_argument("TableModel: grid needs >= 2 points per axis");
  if (!(grid.gate_max > grid.gate_min) || !(grid.vds_max > grid.vds_min))
    throw std::invalid_argument("TableModel: empty axis range");

  TableModel tm;
  tm.grid_ = grid;
  tm.mu_ratio_ = model.params().mu_ratio;
  tm.c_gate_ = model.params().c_gate_f;
  tm.c_sd_ = model.params().c_sd_f;
  const std::size_t total = static_cast<std::size_t>(grid.gate_points) *
                            static_cast<std::size_t>(grid.gate_points) *
                            static_cast<std::size_t>(grid.gate_points) *
                            static_cast<std::size_t>(grid.vds_points);
  tm.samples_.resize(total);
  for (int ig = 0; ig < grid.gate_points; ++ig) {
    const double g = axis_value(grid.gate_min, grid.gate_max,
                                grid.gate_points, ig);
    for (int is = 0; is < grid.gate_points; ++is) {
      const double ps = axis_value(grid.gate_min, grid.gate_max,
                                   grid.gate_points, is);
      for (int id = 0; id < grid.gate_points; ++id) {
        const double pd = axis_value(grid.gate_min, grid.gate_max,
                                     grid.gate_points, id);
        for (int iu = 0; iu < grid.vds_points; ++iu) {
          const double u = axis_value(grid.vds_min, grid.vds_max,
                                      grid.vds_points, iu);
          tm.samples_[tm.index(ig, is, id, iu)] =
              model.electron_core(g, ps, pd, u);
        }
      }
    }
  }
  return tm;
}

double TableModel::electron_core(double g, double ps, double pd,
                                 double u) const {
  if (u <= 0.0) return 0.0;
  const AxisPos ag = locate(g, grid_.gate_min, grid_.gate_max,
                            grid_.gate_points);
  const AxisPos as = locate(ps, grid_.gate_min, grid_.gate_max,
                            grid_.gate_points);
  const AxisPos ad = locate(pd, grid_.gate_min, grid_.gate_max,
                            grid_.gate_points);
  const AxisPos au = locate(u, grid_.vds_min, grid_.vds_max,
                            grid_.vds_points);
  double acc = 0.0;
  for (int cg = 0; cg < 2; ++cg) {
    const double wg = cg ? ag.t : 1.0 - ag.t;
    if (wg == 0.0) continue;
    for (int cs = 0; cs < 2; ++cs) {
      const double ws = cs ? as.t : 1.0 - as.t;
      if (ws == 0.0) continue;
      for (int cd = 0; cd < 2; ++cd) {
        const double wd = cd ? ad.t : 1.0 - ad.t;
        if (wd == 0.0) continue;
        for (int cu = 0; cu < 2; ++cu) {
          const double wu = cu ? au.t : 1.0 - au.t;
          if (wu == 0.0) continue;
          acc += wg * ws * wd * wu *
                 samples_[index(ag.i0 + cg, as.i0 + cs, ad.i0 + cd,
                                au.i0 + cu)];
        }
      }
    }
  }
  return acc;
}

double TableModel::ids(const TigBias& b) const {
  const auto branch_sum = [this](double vcg, double vpg_lo, double vpg_hi,
                                 double vlo, double vhi) {
    const double i_e = electron_core(vcg - vlo, vpg_lo - vlo, vpg_hi - vlo,
                                     vhi - vlo);
    const double i_h = electron_core(vhi - vcg, vhi - vpg_hi, vhi - vpg_lo,
                                     vhi - vlo) /
                       mu_ratio_;
    return i_e + i_h;
  };
  if (b.vd >= b.vs) return branch_sum(b.vcg, b.vpgs, b.vpgd, b.vs, b.vd);
  return -branch_sum(b.vcg, b.vpgd, b.vpgs, b.vd, b.vs);
}

void TableModel::save(std::ostream& os) const {
  os << "cpsinw-table-model v1\n";
  os << grid_.gate_min << ' ' << grid_.gate_max << ' ' << grid_.gate_points
     << ' ' << grid_.vds_min << ' ' << grid_.vds_max << ' '
     << grid_.vds_points << '\n';
  os << mu_ratio_ << ' ' << c_gate_ << ' ' << c_sd_ << '\n';
  os.precision(17);  // round-trip exact for IEEE doubles
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    os << samples_[i] << ((i + 1) % 8 == 0 ? '\n' : ' ');
  }
  os << '\n';
}

TableModel TableModel::load(std::istream& is) {
  std::string tag, version;
  is >> tag >> version;
  if (tag != "cpsinw-table-model" || version != "v1")
    throw std::runtime_error("TableModel::load: bad header");
  TableModel tm;
  is >> tm.grid_.gate_min >> tm.grid_.gate_max >> tm.grid_.gate_points >>
      tm.grid_.vds_min >> tm.grid_.vds_max >> tm.grid_.vds_points;
  is >> tm.mu_ratio_ >> tm.c_gate_ >> tm.c_sd_;
  if (!is || tm.grid_.gate_points < 2 || tm.grid_.vds_points < 2)
    throw std::runtime_error("TableModel::load: bad grid");
  const std::size_t total = static_cast<std::size_t>(tm.grid_.gate_points) *
                            static_cast<std::size_t>(tm.grid_.gate_points) *
                            static_cast<std::size_t>(tm.grid_.gate_points) *
                            static_cast<std::size_t>(tm.grid_.vds_points);
  tm.samples_.resize(total);
  for (double& s : tm.samples_) {
    if (!(is >> s)) throw std::runtime_error("TableModel::load: truncated");
  }
  return tm;
}

}  // namespace cpsinw::device
