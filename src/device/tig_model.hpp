// Analytical transport model of the TIG-SiNWFET — the library's substitute
// for the paper's calibrated Sentaurus TCAD deck.
//
// The device is an ambipolar Schottky-barrier FET with three independent
// gates.  The model composes
//   * two logistic Schottky-barrier transparencies (injection side sharp,
//     collection side soft — transport under the drain-side gate is
//     quasi-ballistic, paper Sec. V-A),
//   * an EKV-style control-gate charge term (smooth subthreshold-to-on),
//   * a tanh output characteristic with channel-length modulation,
// for the electron branch, and obtains the hole branch from the exact
// ambipolar voltage-mirror symmetry  I_p(v) = (1/mu_ratio) * I_n(mirror(v)).
//
// The emergent behaviour matches the paper's conduction rule: the device is
// ON iff CG = PGS = PGD (all high: n-mode; all low: p-mode) and OFF iff
// CG xor (PGS and PGD) = 1.
#pragma once

#include "device/defects.hpp"
#include "device/params.hpp"

namespace cpsinw::device {

/// Bias point of a TIG device: absolute terminal voltages [V].
struct TigBias {
  double vcg = 0.0;   ///< control gate
  double vpgs = 0.0;  ///< polarity gate, source side
  double vpgd = 0.0;  ///< polarity gate, drain side
  double vs = 0.0;    ///< source contact
  double vd = 0.0;    ///< drain contact
};

/// Per-terminal currents flowing *into* the device [A]; gate currents are
/// nonzero only in the presence of a gate-oxide short.
struct TigCurrents {
  double into_drain = 0.0;
  double into_source = 0.0;
  double into_cg = 0.0;
  double into_pgs = 0.0;
  double into_pgd = 0.0;
};

/// The TIG-SiNWFET compact device.  Immutable after construction; thread
/// compatible (const methods are safe to call concurrently).
class TigModel {
 public:
  /// @param params calibration set; validated on construction.
  /// @param defects optional manufacturing defects to superimpose.
  /// @throws std::invalid_argument when params are out of range.
  explicit TigModel(TigParams params, DefectState defects = {});

  /// Drain-to-source channel current [A]: conventional current entering the
  /// drain terminal and leaving the source terminal.  Positive when
  /// vd > vs; antisymmetric under source/drain exchange.
  [[nodiscard]] double ids(const TigBias& bias) const;

  /// Channel current plus gate-oxide-short path currents for all five
  /// terminals.  This is what the circuit simulator stamps.
  [[nodiscard]] TigCurrents currents(const TigBias& bias) const;

  /// Electron-branch saturation current at the nominal n-type corner
  /// (all gates and drain at V_DD, source grounded).
  [[nodiscard]] double ids_sat_n() const;

  /// Hole-branch saturation current at the nominal p-type corner.
  [[nodiscard]] double ids_sat_p() const;

  /// Off-state current of the n-configured device (V_CG = 0).
  [[nodiscard]] double ioff_n() const;

  /// Threshold voltage of the n-branch extracted by the constant-current
  /// method (I = 1e-6 A ~ I_sat/50) on the V_CG transfer sweep at
  /// V_DS = V_DD.
  [[nodiscard]] double vth_n_extracted() const;

  [[nodiscard]] const TigParams& params() const { return params_; }
  [[nodiscard]] const DefectState& defects() const { return defects_; }

  /// Electron-branch core current: source grounded, drain at u >= 0.
  /// Exposed for the table compact model, which samples this surface and
  /// reconstructs the hole branch by the ambipolar mirror.
  /// @param g   CG voltage relative to source
  /// @param ps  injection-side PG voltage relative to source
  /// @param pd  collection-side PG voltage relative to source
  /// @param u   drain-source voltage (>= 0)
  [[nodiscard]] double electron_core(double g, double ps, double pd,
                                     double u) const;

 private:

  /// Sum of electron and hole branches for a normalized bias (vd >= vs).
  [[nodiscard]] double branch_sum(double vcg, double vpg_lo, double vpg_hi,
                                  double vlo, double vhi) const;

  /// Saturation-current multiplier contributed by a GOS defect (1.0 when
  /// the device is GOS-free).
  [[nodiscard]] double gos_scale() const {
    return defects_.gos ? gos_.isat_scale : 1.0;
  }

  TigParams params_;
  DefectState defects_;
  GosElectricalEffect gos_;       // zero-initialized when no GOS
  double break_scale_ = 1.0;      // 1.0 when no nanowire break
};

}  // namespace cpsinw::device
