// Double-Gate (DG) SiNWFET adapter.
//
// The paper (Sec. III-A) notes that its fault-modeling methodology carries
// over directly from the three-independent-gate device to the double-gate
// variant [De Marchi et al., IEDM'12]: a DG-SiNWFET has one control gate
// and ONE polarity gate that wraps both Schottky junctions.  Electrically
// this is the TIG device with PGS and PGD tied to the same terminal, which
// is exactly how the Fig. 2 logic gates already operate their devices.
//
// The adapter exposes the three-terminal-gate view (CG, PG, S, D) over the
// TIG transport core and maps DG-specific defects:
//   * a GOS on the single PG covers both junctions: its electrical effect
//     is the *stronger* (source-side) TIG case;
//   * a floating PG detaches both junction gates at once, so the stuck-open
//     threshold of Fig. 5 applies without the PGS/PGD asymmetry.
#pragma once

#include "device/tig_model.hpp"

namespace cpsinw::device {

/// Bias point of a DG device: one polarity gate.
struct DgBias {
  double vcg = 0.0;
  double vpg = 0.0;
  double vs = 0.0;
  double vd = 0.0;

  /// The equivalent TIG bias (both PGs tied).
  [[nodiscard]] TigBias to_tig() const {
    return {.vcg = vcg, .vpgs = vpg, .vpgd = vpg, .vs = vs, .vd = vd};
  }
};

/// DG defect state: the single polarity gate hosts at most one GOS.
struct DgDefectState {
  bool gos_on_pg = false;
  bool gos_on_cg = false;
  double gos_size_nm2 = 25.0;
  std::optional<BreakDefect> nw_break;

  /// Maps to the TIG defect state: a PG short behaves like the worst-case
  /// (source-side) TIG short because the wrapped gate touches the
  /// injection junction.
  [[nodiscard]] DefectState to_tig() const {
    DefectState d;
    if (gos_on_pg) d.gos = GosDefect{GateTerminal::kPGS, gos_size_nm2};
    if (gos_on_cg) d.gos = GosDefect{GateTerminal::kCG, gos_size_nm2};
    d.nw_break = nw_break;
    return d;
  }
};

/// The DG-SiNWFET compact device: a thin adapter over TigModel.
class DgModel {
 public:
  explicit DgModel(TigParams params, DgDefectState defects = {})
      : tig_(params, defects.to_tig()) {}

  /// Drain-source current.
  [[nodiscard]] double ids(const DgBias& bias) const {
    return tig_.ids(bias.to_tig());
  }

  /// Saturation / off currents of the n-configuration.
  [[nodiscard]] double ids_sat_n() const { return tig_.ids_sat_n(); }
  [[nodiscard]] double ioff_n() const { return tig_.ioff_n(); }

  /// The wrapped TIG core (shared calibration and fault behaviour).
  [[nodiscard]] const TigModel& tig() const { return tig_; }

 private:
  TigModel tig_;
};

}  // namespace cpsinw::device
