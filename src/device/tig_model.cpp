#include "device/tig_model.hpp"

#include <cmath>

#include "util/numeric.hpp"

namespace cpsinw::device {

using util::sigmoid;
using util::softplus;

TigModel::TigModel(TigParams params, DefectState defects)
    : params_(params), defects_(defects) {
  params_.validate();
  if (defects_.gos) gos_ = gos_effect(*defects_.gos);
  if (defects_.nw_break) break_scale_ = break_current_scale(*defects_.nw_break);
}

double TigModel::electron_core(double g, double ps, double pd,
                               double u) const {
  if (u <= 0.0) return 0.0;
  const TigParams& p = params_;
  // EKV-style CG charge: exponential subthreshold, linear above threshold.
  const double s = p.s_cg();
  const double vth = p.vth_n + gos_.delta_vth;
  const double q = s * softplus((g - vth) / s);
  // Schottky polarity-gate transparencies.
  const double t_inj = sigmoid((ps - p.pg_onset_inj) / p.pg_slope_inj);
  const double t_col =
      sigmoid((pd - p.pg_onset_col + p.dibl_col * u) / p.pg_slope_col);
  // Output characteristic.
  const double f_ds = std::tanh(u / p.v_dsat) * (1.0 + p.lambda * u);
  // Defect multipliers (1.0 on a fault-free device).
  return p.k_n * q * t_inj * t_col * f_ds * gos_scale() * break_scale_;
}

double TigModel::branch_sum(double vcg, double vpg_lo, double vpg_hi,
                            double vlo, double vhi) const {
  // Electron branch: electrons are injected at the low terminal; the PG
  // adjacent to it is the injection barrier.
  const double i_e = electron_core(vcg - vlo, vpg_lo - vlo, vpg_hi - vlo,
                                   vhi - vlo);
  // Hole branch via the ambipolar mirror: holes are injected at the high
  // terminal; all control voltages invert around it.
  const double i_h = electron_core(vhi - vcg, vhi - vpg_hi, vhi - vpg_lo,
                                   vhi - vlo) /
                     params_.mu_ratio;
  return i_e + i_h;
}

double TigModel::ids(const TigBias& b) const {
  if (b.vd >= b.vs) return branch_sum(b.vcg, b.vpgs, b.vpgd, b.vs, b.vd);
  return -branch_sum(b.vcg, b.vpgd, b.vpgs, b.vd, b.vs);
}

TigCurrents TigModel::currents(const TigBias& b) const {
  TigCurrents out;
  const double i_ch = ids(b);
  out.into_drain = i_ch;
  out.into_source = -i_ch;
  if (defects_.gos && (gos_.g_gate_s > 0.0 || gos_.g_gate_d > 0.0)) {
    // Which physical gate hosts the short determines the leaking terminal.
    double vgate = 0.0;
    double* gate_current = nullptr;
    switch (defects_.gos->location) {
      case GateTerminal::kPGS:
        vgate = b.vpgs;
        gate_current = &out.into_pgs;
        break;
      case GateTerminal::kCG:
        vgate = b.vcg;
        gate_current = &out.into_cg;
        break;
      case GateTerminal::kPGD:
        vgate = b.vpgd;
        gate_current = &out.into_pgd;
        break;
    }
    const double i_gs = gos_.g_gate_s * (vgate - b.vs);
    const double i_gd = gos_.g_gate_d * (vgate - b.vd);
    *gate_current += i_gs + i_gd;
    out.into_source -= i_gs;
    out.into_drain -= i_gd;
  }
  return out;
}

double TigModel::ids_sat_n() const {
  const TigParams& p = params_;
  return ids({.vcg = p.vdd, .vpgs = p.vdd, .vpgd = p.vdd, .vs = 0.0,
              .vd = p.vdd});
}

double TigModel::ids_sat_p() const {
  const TigParams& p = params_;
  // p-type corner: all gates grounded, source at VDD, drain pulled low.
  return -ids({.vcg = 0.0, .vpgs = 0.0, .vpgd = 0.0, .vs = p.vdd, .vd = 0.0});
}

double TigModel::ioff_n() const {
  const TigParams& p = params_;
  return ids({.vcg = 0.0, .vpgs = p.vdd, .vpgd = p.vdd, .vs = 0.0,
              .vd = p.vdd});
}

double TigModel::vth_n_extracted() const {
  const TigParams& p = params_;
  // Constant-current criterion at ~I_sat/50, appropriate for the k_n scale.
  constexpr double kIcrit = 1e-6;
  double lo = 0.0;
  double hi = p.vdd;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double i_mid = ids({.vcg = mid, .vpgs = p.vdd, .vpgd = p.vdd,
                              .vs = 0.0, .vd = p.vdd});
    (i_mid < kIcrit ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace cpsinw::device
