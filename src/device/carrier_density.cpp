#include "device/carrier_density.hpp"

#include <cmath>
#include <stdexcept>

#include "util/numeric.hpp"

namespace cpsinw::device {

namespace {

/// Fault-free electron density at the source contact under saturation
/// (paper Fig. 4 headline value).
constexpr double kSourceDensityCm3 = 1.558e19;

/// Saturation pinch-off: density falls quadratically toward the drain.
constexpr double kPinchFraction = 0.60;

/// Hole-injection depletion exponent E(x) = kFar + kAmp * exp(-x/kLambdaNm):
/// the density at the GOS site is n_base(x) * exp(-E(x)).  The three
/// constants encode the source-proximity enhancement of hole injection and
/// are calibrated to the three GOS cases of Fig. 4 (see DESIGN.md §6).
constexpr double kFar = 1.78;
constexpr double kAmp = 5.77;
constexpr double kLambdaNm = 16.0;

double base_density(double x_nm, double length_nm) {
  const double t = x_nm / length_nm;
  return kSourceDensityCm3 * (1.0 - kPinchFraction * t * t);
}

double depletion_exponent(double x_nm) {
  return kFar + kAmp * std::exp(-x_nm / kLambdaNm);
}

/// Width of the depletion dip around the GOS site [nm].
double dip_sigma_nm(const GosDefect& gos) {
  return 8.0 * std::sqrt(std::max(gos.severity(), 1e-3));
}

}  // namespace

DensityProfile electron_density_profile(const TigParams& params,
                                        const DefectState& defects,
                                        int n) {
  if (n < 2) throw std::invalid_argument("electron_density_profile: n < 2");
  params.validate();
  const double length = params.channel_length_nm();
  DensityProfile out;
  out.x_nm = util::linspace(0.0, length, n);
  out.density_cm3.reserve(out.x_nm.size());

  double x_gos = -1.0;
  double depth = 0.0;
  double sigma = 1.0;
  if (defects.gos) {
    x_gos = params.gate_center_nm(defects.gos->location);
    // Depth so that the dip bottom equals n_base * exp(-E * severity).
    depth = 1.0 - std::exp(-depletion_exponent(x_gos) *
                           std::min(defects.gos->severity(), 1.0));
    sigma = dip_sigma_nm(*defects.gos);
  }

  for (const double x : out.x_nm) {
    double n_e = base_density(x, length);
    if (defects.gos) {
      const double dx = (x - x_gos) / sigma;
      n_e *= 1.0 - depth * std::exp(-0.5 * dx * dx);
    }
    if (defects.nw_break) {
      // A broken wire interrupts the electron population at the break
      // point; model the break at mid-channel.
      const double dx = (x - 0.5 * length) / 2.0;
      const double residue = break_current_scale(*defects.nw_break);
      n_e *= residue + (1.0 - residue) *
                           (1.0 - std::exp(-0.5 * dx * dx) *
                                      std::min(defects.nw_break->severity, 1.0));
    }
    out.density_cm3.push_back(n_e);
  }
  return out;
}

double reported_density_cm3(const TigParams& params,
                            const DefectState& defects) {
  params.validate();
  if (!defects.gos) return kSourceDensityCm3;
  const double x_gos = params.gate_center_nm(defects.gos->location);
  const double n_base = base_density(x_gos, params.channel_length_nm());
  const double e = depletion_exponent(x_gos) *
                   std::min(defects.gos->severity(), 1.0);
  return n_base * std::exp(-e);
}

}  // namespace cpsinw::device
