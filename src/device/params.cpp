#include "device/params.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace cpsinw::device {

const char* to_string(GateTerminal t) {
  switch (t) {
    case GateTerminal::kPGS: return "PGS";
    case GateTerminal::kCG: return "CG";
    case GateTerminal::kPGD: return "PGD";
  }
  return "?";
}

double TigParams::gate_center_nm(GateTerminal t) const {
  switch (t) {
    case GateTerminal::kPGS: return l_pgs_nm / 2.0;
    case GateTerminal::kCG: return l_pgs_nm + l_sp_nm + l_cg_nm / 2.0;
    case GateTerminal::kPGD:
      return l_pgs_nm + l_sp_nm + l_cg_nm + l_sp_nm + l_pgd_nm / 2.0;
  }
  return 0.0;
}

double TigParams::phi_t() const { return util::kThermalVoltage300K; }

double TigParams::subthreshold_swing_mv_dec() const {
  return ss_ideality * phi_t() * std::log(10.0) * 1e3;
}

void TigParams::validate() const {
  auto require = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("TigParams: ") + what);
  };
  require(l_cg_nm > 0 && l_pgs_nm > 0 && l_pgd_nm > 0 && l_sp_nm >= 0,
          "gate/spacer lengths must be positive");
  require(r_nw_nm > 0, "nanowire radius must be positive");
  require(t_ox_nm > 0, "oxide thickness must be positive");
  require(phi_b_ev > 0 && phi_b_ev < 1.2, "Schottky barrier out of range");
  require(vdd > 0, "vdd must be positive");
  require(vth_n > 0 && vth_n < vdd, "vth_n out of range");
  require(vth_p > 0 && vth_p < vdd, "vth_p out of range");
  require(ss_ideality >= 1.0, "subthreshold ideality must be >= 1");
  require(k_n > 0, "k_n must be positive");
  require(mu_ratio >= 1.0, "mu_ratio must be >= 1 (electrons faster)");
  require(pg_slope_inj > 0 && pg_slope_col > 0, "PG slopes must be positive");
  require(pg_onset_inj > 0 && pg_onset_inj < vdd, "pg_onset_inj out of range");
  require(pg_onset_col >= 0 && pg_onset_col < vdd, "pg_onset_col out of range");
  require(v_dsat > 0, "v_dsat must be positive");
  require(lambda >= 0, "lambda must be non-negative");
  require(c_gate_f > 0 && c_sd_f > 0, "capacitances must be positive");
}

}  // namespace cpsinw::device
