// Device-level manufacturing defects of the TIG-SiNWFET (paper Table I and
// Section IV).  A DefectState is attached to a TigModel to obtain the
// defective device characteristics used for inductive fault analysis.
#pragma once

#include <optional>
#include <string>

#include "device/params.hpp"

namespace cpsinw::device {

/// Gate-oxide short: a pinhole through the dielectric of one gate filled
/// with (lightly doped) silicon, creating a conductive path between that
/// gate and the channel (paper Sec. IV-B).
struct GosDefect {
  /// Which gate dielectric is shorted.
  GateTerminal location = GateTerminal::kCG;
  /// Defect cross-section [nm^2]; the paper's TCAD experiment removes a
  /// "tiny cuboid" — 25 nm^2 is our reference size, effects scale with it.
  double size_nm2 = 25.0;

  /// Severity in [0,1]: size relative to the reference cuboid, capped at 4x.
  [[nodiscard]] double severity() const;
};

/// Nanowire break: pattern-transfer / Bosch-etch damage that interrupts the
/// wire (paper Sec. IV-A).  severity = 1 is a full open; fractional values
/// model partial thinning that only limits the driving current.
struct BreakDefect {
  double severity = 1.0;
};

/// Aggregate defect state of one device.  Only single-defect experiments
/// appear in the paper, but both fields may be set simultaneously (needed
/// by the channel-break detection analysis of Sec. V-C, which superimposes
/// a polarity fault on a broken device).
struct DefectState {
  std::optional<GosDefect> gos;
  std::optional<BreakDefect> nw_break;

  [[nodiscard]] bool is_fault_free() const {
    return !gos.has_value() && !nw_break.has_value();
  }

  /// Short diagnostic string, e.g. "GOS@PGS(25nm2)".
  [[nodiscard]] std::string describe() const;
};

/// Electrical consequences of a GOS defect, derived from the defect
/// geometry.  These are the calibration anchors of paper Fig. 3:
///  * GOS@PGS: strong I_DSAT reduction and Delta V_Th = +170 mV — the defect
///    sits next to the electron-rich source, which accelerates hole
///    injection into the channel;
///  * GOS@CG:  moderate I_DSAT reduction, smaller V_Th shift;
///  * GOS@PGD: slight I_DSAT *increase* (field enhancement near the drain
///    under quasi-ballistic transport), no V_Th impact.
struct GosElectricalEffect {
  double isat_scale = 1.0;   ///< multiplier on the saturation current
  double delta_vth = 0.0;    ///< shift of the CG threshold [V]
  double g_gate_s = 0.0;     ///< ohmic gate->source-side path [S]
  double g_gate_d = 0.0;     ///< ohmic gate->drain-side path [S]
};

/// Convenience factory: a defect state with one GOS.
[[nodiscard]] inline DefectState make_gos_state(GateTerminal where,
                                                double size_nm2 = 25.0) {
  DefectState d;
  d.gos = GosDefect{where, size_nm2};
  return d;
}

/// Convenience factory: a defect state with one nanowire break.
[[nodiscard]] inline DefectState make_break_state(double severity = 1.0) {
  DefectState d;
  d.nw_break = BreakDefect{severity};
  return d;
}

/// Computes the electrical effect of a GOS defect at reference severity 1,
/// scaled by GosDefect::severity().
[[nodiscard]] GosElectricalEffect gos_effect(const GosDefect& gos);

/// Current multiplier of a (possibly partial) nanowire break.  A full break
/// leaves only a ~1e-6 tunneling residue.
[[nodiscard]] double break_current_scale(const BreakDefect& brk);

}  // namespace cpsinw::device
