// I-V sweep helpers producing the curves of paper Fig. 3 (and general
// device characterization data for the examples).
#pragma once

#include <vector>

#include "device/tig_model.hpp"
#include "util/series.hpp"

namespace cpsinw::device {

/// Transfer sweep: I_D vs V_CG at fixed V_DS with both polarity gates tied
/// to `vpg` (the paper's n-type transfer curve uses vpg = vds = V_DD).
[[nodiscard]] util::DataSeries transfer_sweep(const TigModel& model,
                                              double vpg, double vds,
                                              double vcg_min, double vcg_max,
                                              int points);

/// Output sweep: I_D vs V_D at fixed V_CG with both polarity gates at
/// `vpg`.  With a GOS defect present this exhibits the paper's negative
/// I_D at low V_D (gate-to-drain injection through the oxide short).
[[nodiscard]] util::DataSeries output_sweep(const TigModel& model,
                                            double vpg, double vcg,
                                            double vd_min, double vd_max,
                                            int points);

/// Summary of a transfer curve used by tests and the Fig. 3 bench.
struct TransferSummary {
  double i_sat = 0.0;    ///< current at the top of the sweep [A]
  double vth = 0.0;      ///< constant-current threshold (I = 1e-8 A) [V]
  double i_off = 0.0;    ///< current at V_CG = 0 [A]
};

/// Extracts saturation current, threshold and off current from a device's
/// n-type transfer characteristic at V_DS = V_DD.
[[nodiscard]] TransferSummary summarize_transfer(const TigModel& model);

}  // namespace cpsinw::device
