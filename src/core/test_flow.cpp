#include "core/test_flow.hpp"

#include "gates/dictionary_cache.hpp"

namespace cpsinw::core {

using atpg::AtpgResult;
using atpg::AtpgStatus;
using faults::Fault;
using faults::FaultSite;

const char* to_string(CoverageMethod method) {
  switch (method) {
    case CoverageMethod::kStuckAtPattern: return "stuck-at pattern";
    case CoverageMethod::kFunctionalPattern: return "functional pattern";
    case CoverageMethod::kIddqPattern: return "IDDQ pattern";
    case CoverageMethod::kTwoPattern: return "two-pattern";
    case CoverageMethod::kChannelBreak: return "channel-break procedure";
    case CoverageMethod::kUncovered: return "uncovered";
  }
  return "?";
}

int TestSuite::covered_count() const {
  int n = 0;
  for (const FaultOutcome& o : outcomes)
    if (o.method != CoverageMethod::kUncovered) ++n;
  return n;
}

int TestSuite::count(CoverageMethod method) const {
  int n = 0;
  for (const FaultOutcome& o : outcomes)
    if (o.method == method) ++n;
  return n;
}

double TestSuite::coverage() const {
  if (outcomes.empty()) return 1.0;
  return static_cast<double>(covered_count()) /
         static_cast<double>(outcomes.size());
}

TestSuite run_test_flow(const logic::Circuit& ckt,
                        const TestFlowOptions& options) {
  const atpg::PodemEngine engine(ckt);
  TestSuite suite;

  faults::FaultListOptions flo;
  flo.collapse = true;
  // The flow targets IDDQ tests unless running classically: stuck-ons that
  // are only logic-equivalent to a stuck-at must then stay in the universe
  // so their IDDQ signature is counted separately.
  flo.observe_iddq = options.observe_iddq && !options.classical_only;
  const std::vector<Fault> universe = generate_fault_list(ckt, flo);

  for (const Fault& f : universe) {
    FaultOutcome outcome;
    outcome.fault = f;

    if (f.site != FaultSite::kGateTransistor) {
      const AtpgResult r = engine.generate_line(f, options.podem);
      outcome.status = r.status;
      if (r.status == AtpgStatus::kDetected) {
        outcome.method = CoverageMethod::kStuckAtPattern;
        suite.logic_patterns.push_back(r.pattern);
      }
      suite.outcomes.push_back(outcome);
      continue;
    }

    // Transistor fault: pick the strongest applicable method.
    const logic::GateInst& g = ckt.gate(f.gate);
    const gates::FaultAnalysis& fa =
        gates::DictionaryCache::global().lookup(g.kind, f.cell_fault);

    if (fa.output_detectable) {
      const AtpgResult r = engine.generate_functional(f, options.podem);
      outcome.status = r.status;
      if (r.status == AtpgStatus::kDetected) {
        outcome.method = CoverageMethod::kFunctionalPattern;
        suite.logic_patterns.push_back(r.pattern);
        suite.outcomes.push_back(outcome);
        continue;
      }
    }
    if (!options.classical_only && fa.iddq_detectable &&
        options.observe_iddq) {
      const AtpgResult r = engine.generate_iddq(f, options.podem);
      outcome.status = r.status;
      if (r.status == AtpgStatus::kDetected) {
        outcome.method = CoverageMethod::kIddqPattern;
        suite.iddq_patterns.push_back(r.pattern);
        suite.outcomes.push_back(outcome);
        continue;
      }
    }
    if (fa.needs_sequence &&
        f.cell_fault.kind == gates::TransistorFault::kStuckOpen) {
      const atpg::TwoPatternResult r =
          atpg::generate_two_pattern(ckt, f, options.podem);
      outcome.status = r.status;
      if (r.status == AtpgStatus::kDetected && r.test) {
        outcome.method = CoverageMethod::kTwoPattern;
        suite.two_pattern_tests.push_back(*r.test);
        suite.outcomes.push_back(outcome);
        continue;
      }
    }
    if (!options.classical_only &&
        f.cell_fault.kind == gates::TransistorFault::kStuckOpen &&
        gates::is_dynamic_polarity(g.kind)) {
      auto test = atpg::derive_cell_test(g.kind, f.cell_fault.transistor);
      if (test) {
        test->gate = f.gate;
        bool pi_fed = true;
        for (int i = 0; i < g.input_count(); ++i)
          if (!ckt.is_primary_input(g.in[static_cast<std::size_t>(i)]))
            pi_fed = false;
        test->pi_accessible = pi_fed;
        const AtpgResult just = engine.justify_gate_cube(
            f.gate, test->local_vector, options.podem);
        if (just.status == AtpgStatus::kDetected) {
          test->pattern = just.pattern;
          outcome.method = CoverageMethod::kChannelBreak;
          outcome.status = AtpgStatus::kDetected;
          suite.channel_break_tests.push_back(*test);
          suite.outcomes.push_back(outcome);
          continue;
        }
      }
    }
    suite.outcomes.push_back(outcome);
  }

  if (options.compact && !suite.logic_patterns.empty()) {
    // Compact only the voltage-observed combinational set; two-pattern and
    // IDDQ tests have their own observation protocols.  The compaction
    // universe is everything those patterns are responsible for: all line
    // faults plus the transistor faults covered by functional patterns.
    std::vector<Fault> comb;
    for (const FaultOutcome& o : suite.outcomes) {
      if (o.fault.site != FaultSite::kGateTransistor)
        comb.push_back(o.fault);
      else if (o.method == CoverageMethod::kFunctionalPattern)
        comb.push_back(o.fault);
    }
    faults::FaultSimOptions fso;
    fso.observe_iddq = false;
    fso.sequential_patterns = false;
    const atpg::CompactionResult cr = atpg::compact_patterns(
        ckt, comb, suite.logic_patterns, fso);
    if (cr.coverage_after >= cr.coverage_before)
      suite.logic_patterns = cr.patterns;
  }
  return suite;
}

}  // namespace cpsinw::core
