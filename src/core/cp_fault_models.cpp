#include "core/cp_fault_models.hpp"

namespace cpsinw::core {

const char* to_string(CpFaultModel model) {
  switch (model) {
    case CpFaultModel::kStuckAt: return "stuck-at";
    case CpFaultModel::kStuckOpen: return "stuck-open";
    case CpFaultModel::kStuckOn: return "stuck-on";
    case CpFaultModel::kDelayFault: return "delay fault";
    case CpFaultModel::kIddq: return "IDDQ";
    case CpFaultModel::kBridge: return "bridging fault";
    case CpFaultModel::kStuckAtNType: return "stuck-at-n-type";
    case CpFaultModel::kStuckAtPType: return "stuck-at-p-type";
    case CpFaultModel::kChannelBreakProcedure:
      return "channel-break procedure";
  }
  return "?";
}

const char* description_of(CpFaultModel model) {
  switch (model) {
    case CpFaultModel::kStuckAt:
      return "line permanently at 0/1; detected by single patterns";
    case CpFaultModel::kStuckOpen:
      return "transistor never conducts; detected by two-pattern tests";
    case CpFaultModel::kStuckOn:
      return "transistor always conducts; detected by IDDQ";
    case CpFaultModel::kDelayFault:
      return "parametric slowdown; detected by transition tests";
    case CpFaultModel::kIddq:
      return "quiescent supply-current observation";
    case CpFaultModel::kBridge:
      return "resistive short between nets";
    case CpFaultModel::kStuckAtNType:
      return "polarity terminals bridged to '1': device forced n-type";
    case CpFaultModel::kStuckAtPType:
      return "polarity terminals bridged to '0': device forced p-type";
    case CpFaultModel::kChannelBreakProcedure:
      return "complement the device polarity via dual-rail inputs; a clean "
             "response to the polarity-fault vector reveals the break";
  }
  return "?";
}

bool is_new_model(CpFaultModel model) {
  switch (model) {
    case CpFaultModel::kStuckAtNType:
    case CpFaultModel::kStuckAtPType:
    case CpFaultModel::kChannelBreakProcedure:
      return true;
    default:
      return false;
  }
}

std::vector<CpFaultModel> recommended_models(
    faults::DefectMechanism mechanism, bool dynamic_polarity) {
  const faults::FaultModelCoverage c =
      faults::coverage_for(mechanism, dynamic_polarity);
  std::vector<CpFaultModel> out;
  if (c.stuck_open) out.push_back(CpFaultModel::kStuckOpen);
  if (c.stuck_on) out.push_back(CpFaultModel::kStuckOn);
  if (c.delay_fault) out.push_back(CpFaultModel::kDelayFault);
  if (c.iddq) out.push_back(CpFaultModel::kIddq);
  if (c.stuck_at_polarity) {
    out.push_back(CpFaultModel::kStuckAtNType);
    out.push_back(CpFaultModel::kStuckAtPType);
  }
  if (c.classic_bridge) out.push_back(CpFaultModel::kBridge);
  if (c.needs_cb_procedure)
    out.push_back(CpFaultModel::kChannelBreakProcedure);
  return out;
}

}  // namespace cpsinw::core
