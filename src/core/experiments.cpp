#include "core/experiments.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "core/campaign_sweep.hpp"
#include "core/test_flow.hpp"
#include "gates/dictionary_cache.hpp"
#include "gates/fault_dictionary.hpp"
#include "logic/benchmarks.hpp"
#include "spice/measure.hpp"
#include "spice/transient.hpp"

namespace cpsinw::core {

using device::DefectState;
using device::GateTerminal;
using device::GosDefect;
using device::TigModel;
using device::TigParams;
using gates::CellCircuit;
using gates::CellCircuitSpec;
using gates::CellKind;
using gates::PgTerminal;
using spice::Waveform;

namespace {

constexpr double kVdd = 1.2;
constexpr double kEdgeTime = 0.3e-9;
constexpr double kSlew = 10e-12;

/// Worst-case static supply current over all fully-specified input states.
double max_static_iddq(const CellCircuitSpec& base) {
  const int n = gates::input_count(base.kind);
  double worst = 0.0;
  for (unsigned v = 0; v < (1u << n); ++v) {
    CellCircuitSpec spec = base;
    spec.inputs = gates::dc_inputs(base.kind, v, kVdd);
    CellCircuit cc = gates::build_cell_circuit(spec);
    const spice::DcResult op = spice::dc_operating_point(cc.ckt);
    if (!op.converged) continue;
    worst = std::max(worst, spice::iddq_total(op));
  }
  return worst;
}

/// Runs a transient on a cell spec and measures the in->out delay of the
/// switching input `sw_input`.
spice::DelayMeasurement measure_delay(const CellCircuitSpec& spec,
                                      int sw_input, double dt,
                                      double t_stop) {
  CellCircuit cc = gates::build_cell_circuit(spec);
  spice::TranOptions opt;
  opt.dt = dt;
  opt.t_stop = t_stop;
  const spice::TranResult tr = spice::transient(cc.ckt, opt);
  if (!tr.converged) return {};
  return spice::propagation_delay(
      tr, cc.ins[static_cast<std::size_t>(sw_input)], cc.out, kVdd / 2.0,
      kEdgeTime * 0.5);
}

}  // namespace

// ----------------------------------------------------------------- Table II

DerivedElectricals derived_electricals() {
  const TigModel m((TigParams()));
  DerivedElectricals out;
  out.ids_sat_n = m.ids_sat_n();
  out.ids_sat_p = m.ids_sat_p();
  out.ioff_n = m.ioff_n();
  out.on_off_ratio = out.ids_sat_n / out.ioff_n;
  out.vth_n = m.vth_n_extracted();
  out.ss_mv_dec = m.params().subthreshold_swing_mv_dec();
  return out;
}

// ------------------------------------------------------------------- Fig. 3

Fig3Data run_fig3(int points) {
  const TigParams params;
  Fig3Data data;

  const auto add_case = [&](const std::string& label,
                            const DefectState& defect) {
    const TigModel model(params, defect);
    Fig3Case c{label,
               device::transfer_sweep(model, kVdd, kVdd, 0.0, kVdd, points),
               device::output_sweep(model, kVdd, kVdd, 0.0, kVdd, points),
               0.0, 0.0, 1.0, 0.0, 0.0};
    const device::TransferSummary s = device::summarize_transfer(model);
    c.i_sat = s.i_sat;
    c.vth = s.vth;
    c.min_output_current =
        *std::min_element(c.output.column(0).begin(),
                          c.output.column(0).end());
    data.cases.push_back(std::move(c));
  };

  add_case("fault-free", {});
  add_case("GOS on PGS", make_gos_state(GateTerminal::kPGS, 25.0));
  add_case("GOS on CG", make_gos_state(GateTerminal::kCG, 25.0));
  add_case("GOS on PGD", make_gos_state(GateTerminal::kPGD, 25.0));

  const Fig3Case& ff = data.cases.front();
  for (Fig3Case& c : data.cases) {
    c.isat_ratio_vs_ff = c.i_sat / ff.i_sat;
    c.delta_vth_vs_ff = c.vth - ff.vth;
  }
  return data;
}

// ------------------------------------------------------------------- Fig. 4

Fig4Data run_fig4() {
  const TigParams params;
  const device::Fig4Reference ref;
  Fig4Data data;

  const auto add_case = [&](const std::string& label,
                            const DefectState& defect, double paper) {
    const device::DensityProfile prof =
        device::electron_density_profile(params, defect);
    util::DataSeries series(label, "x [nm]");
    series.add_column("n_e [cm^-3]");
    for (std::size_t i = 0; i < prof.x_nm.size(); ++i)
      series.add_sample(prof.x_nm[i], {prof.density_cm3[i]});
    data.cases.push_back(Fig4Case{
        label, device::reported_density_cm3(params, defect), paper,
        std::move(series)});
  };

  add_case("fault-free", {}, ref.fault_free);
  add_case("GOS on CG", make_gos_state(GateTerminal::kCG, 25.0),
           ref.gos_cg);
  add_case("GOS on PGD", make_gos_state(GateTerminal::kPGD, 25.0),
           ref.gos_pgd);
  add_case("GOS on PGS", make_gos_state(GateTerminal::kPGS, 25.0),
           ref.gos_pgs);
  return data;
}

// ------------------------------------------------------------------- Fig. 5

namespace {

/// Stimulus/sweep description of one Fig. 5 experiment.
struct Fig5Setup {
  CellKind kind;
  int transistor;
  const char* tlabel;
  int sw_input;                       ///< which input toggles
  std::vector<Waveform> inputs;       ///< transient stimulus
  double vcut_min, vcut_max;
};

std::vector<Fig5Setup> fig5_setups() {
  std::vector<Fig5Setup> s;
  // INV t1 (p pull-up): input falls, output rises through t1.
  s.push_back({CellKind::kInv, 0, "t1", 0,
               {Waveform::step(kVdd, 0.0, kEdgeTime, kSlew)}, 0.0, 0.8});
  // INV t3 (n pull-down): input rises, output falls.
  s.push_back({CellKind::kInv, 1, "t3", 0,
               {Waveform::step(0.0, kVdd, kEdgeTime, kSlew)}, 0.7, 1.4});
  // NAND t1 (p pull-up on A): A falls with B = 1, output rises.
  s.push_back({CellKind::kNand2, 0, "t1", 0,
               {Waveform::step(kVdd, 0.0, kEdgeTime, kSlew),
                Waveform::dc(kVdd)},
               0.0, 0.5});
  // NAND t3 (output-side series n on A): A rises with B = 1, output falls.
  s.push_back({CellKind::kNand2, 2, "t3", 0,
               {Waveform::step(0.0, kVdd, kEdgeTime, kSlew),
                Waveform::dc(kVdd)},
               0.7, 1.3});
  // XOR t1 (pull-up pair, p-mode at A=0,B=1): (1,1)->(0,1), output rises.
  s.push_back({CellKind::kXor2, 0, "t1", 0,
               {Waveform::step(kVdd, 0.0, kEdgeTime, kSlew),
                Waveform::dc(kVdd)},
               0.0, 1.2});
  // XOR t3 (pull-down pair, n-mode at A=1,B=1): (0,1)->(1,1), out falls.
  s.push_back({CellKind::kXor2, 2, "t3", 0,
               {Waveform::step(0.0, kVdd, kEdgeTime, kSlew),
                Waveform::dc(kVdd)},
               0.7, 1.4});
  return s;
}

}  // namespace

Fig5Data run_fig5(const Fig5Options& options) {
  Fig5Data data;
  for (const Fig5Setup& setup : fig5_setups()) {
    for (const PgTerminal terminal :
         {PgTerminal::kPgs, PgTerminal::kPgd}) {
      Fig5Curve curve;
      curve.gate = setup.kind;
      curve.transistor_label = setup.tlabel;
      curve.cut_terminal = terminal;

      // Fault-free reference.
      CellCircuitSpec ff;
      ff.kind = setup.kind;
      ff.inputs = setup.inputs;
      const spice::DelayMeasurement d0 =
          measure_delay(ff, setup.sw_input, options.dt, options.t_stop);
      curve.nominal_delay_s = d0.valid ? d0.delay : std::nan("");
      CellCircuitSpec ff_static = ff;
      curve.nominal_leakage_a = max_static_iddq(ff_static);

      for (int i = 0; i < options.sweep_points; ++i) {
        const double vcut =
            setup.vcut_min + (setup.vcut_max - setup.vcut_min) * i /
                                 (options.sweep_points - 1);
        CellCircuitSpec spec = ff;
        spec.pg_floats.push_back({setup.transistor, terminal, vcut});

        Fig5Point point;
        point.vcut = vcut;
        const spice::DelayMeasurement d =
            measure_delay(spec, setup.sw_input, options.dt, options.t_stop);
        point.delay_s = d.valid ? d.delay : std::nan("");
        point.transition_failed = !d.valid;
        point.leakage_a = max_static_iddq(spec);
        curve.points.push_back(point);
      }
      data.curves.push_back(std::move(curve));
    }
  }
  return data;
}

// ----------------------------------------------------------------- Table III

Table3Data run_table3() {
  Table3Data data;
  for (int t = 0; t < 4; ++t) {
    for (const gates::TransistorFault kind :
         {gates::TransistorFault::kStuckAtNType,
          gates::TransistorFault::kStuckAtPType}) {
      const gates::FaultAnalysis& fa =
          gates::DictionaryCache::global().lookup(CellKind::kXor2, {t, kind});

      Table3Row row;
      row.transistor = t;
      row.kind = kind;
      row.output_detect = fa.output_detectable || fa.marginal_detectable;
      row.leakage_detect = fa.iddq_detectable;
      if (fa.first_output_vector)
        row.detect_vector = *fa.first_output_vector;
      else if (fa.first_iddq_vector)
        row.detect_vector = *fa.first_iddq_vector;

      // SPICE cross-check at the detecting vector.
      CellCircuitSpec good;
      good.kind = CellKind::kXor2;
      good.inputs = gates::dc_inputs(CellKind::kXor2, row.detect_vector,
                                     kVdd);
      CellCircuit cc_good = gates::build_cell_circuit(good);
      const spice::DcResult op_good = spice::dc_operating_point(cc_good.ckt);

      CellCircuitSpec faulty = good;
      faulty.pg_forces.push_back(
          {t, kind == gates::TransistorFault::kStuckAtNType ? kVdd : 0.0});
      CellCircuit cc_f = gates::build_cell_circuit(faulty);
      const spice::DcResult op_f = spice::dc_operating_point(cc_f.ckt);

      if (op_good.converged && op_f.converged) {
        row.iddq_ff_a = spice::iddq_total(op_good);
        row.iddq_faulty_a = spice::iddq_total(op_f);
        row.vout_good = op_good.voltage(cc_good.out);
        row.vout_faulty = op_f.voltage(cc_f.out);
      }
      data.rows.push_back(row);
    }
  }
  return data;
}

// ----------------------------------------------------------------- Sec. V-C

namespace {

/// The four single-input transitions of the XOR2 used for delay checks.
struct XorTransition {
  Waveform a;
  Waveform b;
  int sw_input;
};

std::vector<XorTransition> xor_transitions() {
  return {
      {Waveform::step(0.0, kVdd, kEdgeTime, kSlew), Waveform::dc(kVdd), 0},
      {Waveform::step(kVdd, 0.0, kEdgeTime, kSlew), Waveform::dc(kVdd), 0},
      {Waveform::step(0.0, kVdd, kEdgeTime, kSlew), Waveform::dc(0.0), 0},
      {Waveform::step(kVdd, 0.0, kEdgeTime, kSlew), Waveform::dc(0.0), 0},
  };
}

}  // namespace

Sec5cData run_sec5c() {
  Sec5cData data;
  const DefectState broken = device::make_break_state(1.0);
  const spice::LogicThresholds th;

  for (int t = 0; t < 4; ++t) {
    Sec5cEntry entry;
    entry.transistor = t;

    // --- DC functionality with the broken device. ------------------------
    entry.function_preserved_dc = true;
    for (unsigned v = 0; v < 4; ++v) {
      CellCircuitSpec spec;
      spec.kind = CellKind::kXor2;
      spec.inputs = gates::dc_inputs(CellKind::kXor2, v, kVdd);
      spec.device_defects.push_back({t, broken});
      CellCircuit cc = gates::build_cell_circuit(spec);
      const spice::DcResult op = spice::dc_operating_point(cc.ckt);
      if (!op.converged) {
        entry.function_preserved_dc = false;
        continue;
      }
      const spice::LogicRead read =
          spice::read_logic(op.voltage(cc.out), th.v_lo, th.v_hi);
      const bool expect_one = gates::good_output(CellKind::kXor2, v) != 0;
      if ((expect_one && read != spice::LogicRead::kOne) ||
          (!expect_one && read != spice::LogicRead::kZero))
        entry.function_preserved_dc = false;
    }

    // --- Delay and leakage change. ---------------------------------------
    double worst_delay = 0.0;
    for (const XorTransition& tr : xor_transitions()) {
      CellCircuitSpec intact;
      intact.kind = CellKind::kXor2;
      intact.inputs = {tr.a, tr.b};
      const spice::DelayMeasurement d_ok =
          measure_delay(intact, tr.sw_input, 2e-12, 4e-9);
      CellCircuitSpec faulty = intact;
      faulty.device_defects.push_back({t, broken});
      const spice::DelayMeasurement d_f =
          measure_delay(faulty, tr.sw_input, 2e-12, 4e-9);
      if (d_ok.valid && d_f.valid && d_ok.delay > 0.0)
        worst_delay = std::max(worst_delay,
                               100.0 * (d_f.delay - d_ok.delay) / d_ok.delay);
    }
    entry.worst_delay_increase_pct = worst_delay;

    CellCircuitSpec leak_base;
    leak_base.kind = CellKind::kXor2;
    leak_base.inputs = gates::dc_inputs(CellKind::kXor2, 0, kVdd);
    const double leak_ff = max_static_iddq(leak_base);
    CellCircuitSpec leak_faulty = leak_base;
    leak_faulty.device_defects.push_back({t, broken});
    const double leak_f = max_static_iddq(leak_faulty);
    entry.leakage_change_pct =
        leak_ff > 0.0 ? 100.0 * std::abs(leak_f - leak_ff) / leak_ff : 0.0;

    // --- The paper's polarity-complement detection procedure. -----------
    const auto test = atpg::derive_cell_test(CellKind::kXor2, t);
    entry.cb_test_exists = test.has_value();
    if (test) {
      const atpg::ChannelBreakOutcome cell =
          atpg::evaluate_cell_test(CellKind::kXor2, *test);
      entry.cb_distinguishes_cell = cell.distinguishes();

      // SPICE: apply the rail-inconsistent pattern via input_bars.
      CellCircuitSpec spec;
      spec.kind = CellKind::kXor2;
      spec.inputs.clear();
      spec.input_bars.clear();
      for (int i = 0; i < 2; ++i) {
        const bool hi = (test->rails.true_bits >> i) & 1u;
        const bool bar_hi = (test->rails.bar_bits >> i) & 1u;
        spec.inputs.push_back(Waveform::dc(hi ? kVdd : 0.0));
        spec.input_bars.push_back(Waveform::dc(bar_hi ? kVdd : 0.0));
      }
      CellCircuit cc_i = gates::build_cell_circuit(spec);
      const spice::DcResult op_i = spice::dc_operating_point(cc_i.ckt);
      CellCircuitSpec spec_b = spec;
      spec_b.device_defects.push_back({t, broken});
      CellCircuit cc_b = gates::build_cell_circuit(spec_b);
      const spice::DcResult op_b = spice::dc_operating_point(cc_b.ckt);
      if (op_i.converged && op_b.converged) {
        entry.cb_iddq_intact_a = spice::iddq_total(op_i);
        entry.cb_iddq_broken_a = spice::iddq_total(op_b);
        entry.cb_spice_distinguishes =
            entry.cb_iddq_intact_a > 100.0 * entry.cb_iddq_broken_a;
      }
    }
    data.entries.push_back(entry);
  }
  return data;
}

// --------------------------------------------------- NAND two-pattern set

NandSofData run_nand_sof() {
  // Single NAND2 gate circuit: a, b -> y.
  logic::Circuit ckt;
  const logic::NetId a = ckt.add_primary_input("a");
  const logic::NetId b = ckt.add_primary_input("b");
  const logic::NetId y = ckt.add_net("y");
  ckt.add_gate(CellKind::kNand2, {a, b}, y, "nand");
  ckt.mark_primary_output(y);
  ckt.finalize();

  NandSofData data;
  std::set<std::string> pairs;
  for (int t = 0; t < 4; ++t) {
    auto result = atpg::generate_two_pattern(
        ckt,
        faults::Fault::transistor(0, t,
                                  gates::TransistorFault::kStuckOpen));
    if (result.test) {
      const auto fmt = [](unsigned cube) {
        // Display in the paper's AB order (A first).
        std::string s;
        s += ((cube >> 0) & 1u) ? '1' : '0';
        s += ((cube >> 1) & 1u) ? '1' : '0';
        return s;
      };
      pairs.insert(fmt(result.test->init_cube) + "->" +
                   fmt(result.test->test_cube));
    }
    data.per_transistor.push_back(std::move(result));
  }
  data.distinct_pairs.assign(pairs.begin(), pairs.end());
  return data;
}

// --------------------------------------------------------- GOS detectability

GosDetectData run_gos_detectability() {
  GosDetectData data;

  struct Target {
    CellKind kind;
    int transistor;
    std::vector<Waveform> stimulus;  ///< transition through the device
    int sw_input;
  };
  const std::vector<Target> targets = {
      // INV pull-up (t1): output rise.
      {CellKind::kInv, 0,
       {Waveform::step(kVdd, 0.0, kEdgeTime, kSlew)}, 0},
      // INV pull-down (t3): output fall.
      {CellKind::kInv, 1,
       {Waveform::step(0.0, kVdd, kEdgeTime, kSlew)}, 0},
      // XOR2 pull-up t1: rise through the p-mode path at (1,1)->(0,1).
      {CellKind::kXor2, 0,
       {Waveform::step(kVdd, 0.0, kEdgeTime, kSlew), Waveform::dc(kVdd)},
       0},
      // XOR2 pull-down t3: fall at (0,1)->(1,1).
      {CellKind::kXor2, 2,
       {Waveform::step(0.0, kVdd, kEdgeTime, kSlew), Waveform::dc(kVdd)},
       0},
  };

  for (const Target& target : targets) {
    CellCircuitSpec ff;
    ff.kind = target.kind;
    ff.inputs = target.stimulus;
    const spice::DelayMeasurement d_ff =
        measure_delay(ff, target.sw_input, 2e-12, 4e-9);
    const double leak_ff = max_static_iddq(ff);

    for (const GateTerminal where :
         {GateTerminal::kPGS, GateTerminal::kCG, GateTerminal::kPGD}) {
      CellCircuitSpec faulty = ff;
      faulty.device_defects.push_back(
          {target.transistor, device::make_gos_state(where, 25.0)});
      const spice::DelayMeasurement d_f =
          measure_delay(faulty, target.sw_input, 2e-12, 4e-9);
      const double leak_f = max_static_iddq(faulty);

      GosDetectEntry e;
      e.kind = target.kind;
      e.transistor = target.transistor;
      e.location = where;
      if (d_ff.valid && d_f.valid && d_ff.delay > 0.0)
        e.delay_increase_pct =
            100.0 * (d_f.delay - d_ff.delay) / d_ff.delay;
      else if (d_ff.valid && !d_f.valid)
        e.delay_increase_pct = 1e6;  // transition killed entirely
      e.iddq_ratio = leak_ff > 0.0 ? leak_f / leak_ff : 1.0;
      e.detectable_by_delay = e.delay_increase_pct >= 30.0;
      e.detectable_by_iddq = e.iddq_ratio >= 10.0;
      data.entries.push_back(e);
    }
  }
  return data;
}

// ----------------------------------------------------------- ATPG coverage

AtpgCoverageData run_atpg_coverage() {
  AtpgCoverageData data;
  for (const engine::CircuitJobSpec& named : benchmark_campaign_jobs()) {
    TestFlowOptions classical;
    classical.classical_only = true;
    classical.compact = false;
    const TestSuite base = run_test_flow(named.circuit, classical);

    TestFlowOptions full;
    full.compact = false;
    const TestSuite ext = run_test_flow(named.circuit, full);

    CoverageRow row;
    row.circuit = named.name;
    row.gate_count = named.circuit.gate_count();
    row.transistor_count = named.circuit.transistor_count();
    row.fault_count = static_cast<int>(ext.outcomes.size());
    row.classical_coverage = base.coverage();
    row.full_coverage = ext.coverage();
    row.via_iddq = ext.count(CoverageMethod::kIddqPattern);
    row.via_two_pattern = ext.count(CoverageMethod::kTwoPattern);
    row.via_channel_break = ext.count(CoverageMethod::kChannelBreak);
    data.rows.push_back(row);
  }
  return data;
}

}  // namespace cpsinw::core
