// Formal catalogue of fault models for controllable-polarity circuits —
// the paper's contribution layer.  Classical models (stuck-at, stuck-open,
// stuck-on, delay, bridge, IDDQ) are complemented by the two new models
// (stuck-at-n-type, stuck-at-p-type) and the channel-break detection
// procedure for dynamic-polarity gates.
#pragma once

#include <string>
#include <vector>

#include "faults/ifa.hpp"

namespace cpsinw::core {

/// Every fault model discussed by the paper.
enum class CpFaultModel {
  kStuckAt,             ///< classical line stuck-at-0/1
  kStuckOpen,           ///< transistor stuck-open (two-pattern test)
  kStuckOn,             ///< transistor stuck-on (IDDQ test)
  kDelayFault,          ///< parametric delay degradation
  kIddq,                ///< quiescent-supply-current observation
  kBridge,              ///< classical inter-net bridging fault
  kStuckAtNType,        ///< NEW: polarity terminals bridged to '1'
  kStuckAtPType,        ///< NEW: polarity terminals bridged to '0'
  kChannelBreakProcedure,  ///< NEW: polarity-complement CB detection
};

/// Short model name.
[[nodiscard]] const char* to_string(CpFaultModel model);

/// One-sentence description (used by documentation benches).
[[nodiscard]] const char* description_of(CpFaultModel model);

/// True for the models introduced by the paper.
[[nodiscard]] bool is_new_model(CpFaultModel model);

/// Models recommended to cover a defect mechanism in a given gate family —
/// the paper's conclusion matrix.
[[nodiscard]] std::vector<CpFaultModel> recommended_models(
    faults::DefectMechanism mechanism, bool dynamic_polarity);

}  // namespace cpsinw::core
