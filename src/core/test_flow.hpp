// End-to-end CP test generation flow: classical line stuck-at ATPG plus the
// paper's extensions (functional polarity-fault tests, IDDQ tests,
// two-pattern stuck-open tests for SP gates, channel-break procedure for
// DP gates), with verification by fault simulation and optional
// compaction.
#pragma once

#include <vector>

#include "atpg/channel_break.hpp"
#include "atpg/compaction.hpp"
#include "atpg/podem.hpp"
#include "atpg/two_pattern.hpp"
#include "faults/fault_list.hpp"
#include "faults/fault_sim.hpp"

namespace cpsinw::core {

/// How a fault ended up covered.
enum class CoverageMethod {
  kStuckAtPattern,     ///< classical PODEM pattern
  kFunctionalPattern,  ///< output-observable polarity/stuck-on test
  kIddqPattern,        ///< leakage-observable test (paper Table III)
  kTwoPattern,         ///< stuck-open two-pattern sequence
  kChannelBreak,       ///< the paper's new DP procedure
  kUncovered,          ///< no test found (untestable or aborted)
};

/// Readable method name.
[[nodiscard]] const char* to_string(CoverageMethod method);

/// Per-fault outcome of the flow.
struct FaultOutcome {
  faults::Fault fault;
  CoverageMethod method = CoverageMethod::kUncovered;
  atpg::AtpgStatus status = atpg::AtpgStatus::kUntestable;
};

/// Flow controls.
struct TestFlowOptions {
  atpg::PodemOptions podem;
  bool compact = true;
  bool observe_iddq = true;
  /// Disable the new fault models (baseline comparison: classical flow).
  bool classical_only = false;
};

/// The generated test artifacts.
struct TestSuite {
  std::vector<logic::Pattern> logic_patterns;    ///< voltage-observed tests
  std::vector<logic::Pattern> iddq_patterns;     ///< IDDQ-observed tests
  std::vector<atpg::TwoPatternTest> two_pattern_tests;
  std::vector<atpg::ChannelBreakTest> channel_break_tests;
  std::vector<FaultOutcome> outcomes;

  [[nodiscard]] int covered_count() const;
  [[nodiscard]] int count(CoverageMethod method) const;
  [[nodiscard]] double coverage() const;
};

/// Runs the complete flow over the circuit's fault universe.
[[nodiscard]] TestSuite run_test_flow(const logic::Circuit& ckt,
                                      const TestFlowOptions& options = {});

}  // namespace cpsinw::core
