// Engine-backed benchmark sweeps.  Lives apart from core/experiments.hpp
// so the serial experiment drivers (and the many bench TUs including
// them) stay free of engine headers — engine depends on core only at the
// implementation level, and core exposes the engine only through this
// dedicated header.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/campaign.hpp"

namespace cpsinw::core {

/// Controls for running the benchmark fault sweep through the campaign
/// engine instead of the per-circuit serial loops.
struct CampaignSweepOptions {
  int threads = 1;              ///< 0 = hardware concurrency
  std::size_t shard_size = 64;  ///< faults per work unit
  int random_patterns = 192;
  std::uint64_t seed = 1;
  bool include_bridges = false;
  engine::PatternSourceSpec::Kind pattern_source =
      engine::PatternSourceSpec::Kind::kRandom;
  /// Shard-phase backend (inline / thread pool / subprocess workers /
  /// remote shard servers — kRemote endpoints ride along in this spec).
  /// Every backend produces byte-identical stable report JSON.
  engine::ExecutorSpec executor;
  /// Passed through to CampaignSpec: opt-in telemetry block in the
  /// report JSON, and an optional Chrome trace-event output path.
  bool emit_telemetry = false;
  std::string trace_path;
};

/// The standard benchmark roster of the coverage experiments as campaign
/// jobs (c17, full adder, ripple adder, parity tree, multiplier, ALU
/// slice, TMR voter, XOR3 chain) — the circuit set of run_atpg_coverage.
[[nodiscard]] std::vector<engine::CircuitJobSpec> benchmark_campaign_jobs();

/// Runs the whole-roster fault sweep (every fault x every pattern, all
/// fault models of the paper) through the parallel campaign engine.  The
/// per-job records are bit-identical to a serial FaultSimulator::run over
/// the same universe and patterns, at any thread count.
[[nodiscard]] engine::CampaignReport run_benchmark_campaign(
    const CampaignSweepOptions& options = {});

}  // namespace cpsinw::core
