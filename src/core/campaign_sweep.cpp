#include "core/campaign_sweep.hpp"

#include "logic/benchmarks.hpp"

namespace cpsinw::core {

std::vector<engine::CircuitJobSpec> benchmark_campaign_jobs() {
  std::vector<engine::CircuitJobSpec> jobs;
  jobs.push_back({"c17", logic::c17()});
  jobs.push_back({"full_adder", logic::full_adder()});
  jobs.push_back({"ripple_adder_4", logic::ripple_adder(4)});
  jobs.push_back({"parity_tree_8", logic::parity_tree(8)});
  jobs.push_back({"multiplier_2x2", logic::multiplier_2x2()});
  jobs.push_back({"alu_slice", logic::alu_slice()});
  jobs.push_back({"tmr_voter_3", logic::tmr_voter(3)});
  jobs.push_back({"xor3_chain_9", logic::xor3_parity_chain(9)});
  return jobs;
}

engine::CampaignReport run_benchmark_campaign(
    const CampaignSweepOptions& options) {
  engine::CampaignSpec spec;
  spec.jobs = benchmark_campaign_jobs();
  spec.models.bridge = options.include_bridges;
  spec.patterns.kind = options.pattern_source;
  spec.patterns.random_count = options.random_patterns;
  spec.seed = options.seed;
  spec.shard_size = options.shard_size;
  spec.threads = options.threads;
  spec.executor = options.executor;
  spec.emit_telemetry = options.emit_telemetry;
  spec.trace_path = options.trace_path;
  return engine::run_campaign(spec);
}

}  // namespace cpsinw::core
