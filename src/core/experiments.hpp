// Experiment drivers reproducing every table and figure of the paper's
// evaluation.  Each driver returns plain data so that the benchmark
// binaries can print it and the test suite can assert its invariants.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "atpg/channel_break.hpp"
#include "atpg/two_pattern.hpp"
#include "device/carrier_density.hpp"
#include "device/iv_sweep.hpp"
#include "gates/spice_builder.hpp"
#include "util/series.hpp"

namespace cpsinw::core {

// --------------------------------------------------------------- Table II
/// Derived electrical characteristics of the calibrated device.
struct DerivedElectricals {
  double ids_sat_n = 0.0;
  double ids_sat_p = 0.0;
  double ioff_n = 0.0;
  double on_off_ratio = 0.0;
  double vth_n = 0.0;
  double ss_mv_dec = 0.0;
};

/// Computes the derived electricals of the default (fault-free) device.
[[nodiscard]] DerivedElectricals derived_electricals();

// ---------------------------------------------------------------- Fig. 3
/// One device case of Fig. 3 (fault-free or one GOS location).
struct Fig3Case {
  std::string label;
  util::DataSeries transfer;  ///< I_D vs V_CG at V_DS = V_DD
  util::DataSeries output;    ///< I_D vs V_D at V_CG = V_DD
  double i_sat = 0.0;
  double vth = 0.0;
  double isat_ratio_vs_ff = 1.0;
  double delta_vth_vs_ff = 0.0;
  double min_output_current = 0.0;  ///< negative with a GOS near source/CG
};

struct Fig3Data {
  std::vector<Fig3Case> cases;  ///< fault-free, GOS@PGS, GOS@CG, GOS@PGD
};

/// Reproduces Fig. 3: transfer/output curves of the n-type device with and
/// without a GOS at each gate.
[[nodiscard]] Fig3Data run_fig3(int points = 61);

// ---------------------------------------------------------------- Fig. 4
struct Fig4Case {
  std::string label;
  double reported_cm3 = 0.0;  ///< our model's channel electron density
  double paper_cm3 = 0.0;     ///< the paper's reported value
  util::DataSeries profile;   ///< density along the channel
};

struct Fig4Data {
  std::vector<Fig4Case> cases;
};

/// Reproduces Fig. 4: electron-density collapse for each GOS location.
[[nodiscard]] Fig4Data run_fig4();

// ---------------------------------------------------------------- Fig. 5
/// One sample of a leakage/delay-vs-V_cut curve.
struct Fig5Point {
  double vcut = 0.0;
  double leakage_a = 0.0;        ///< worst-case static supply current
  double delay_s = 0.0;          ///< propagation delay (NaN when failed)
  bool transition_failed = false;///< SOF region: output never switches
};

/// One curve of Fig. 5: a gate, a target transistor, and which PG contact
/// is cut.
struct Fig5Curve {
  gates::CellKind gate = gates::CellKind::kInv;
  std::string transistor_label;
  gates::PgTerminal cut_terminal = gates::PgTerminal::kPgs;
  double nominal_delay_s = 0.0;
  double nominal_leakage_a = 0.0;
  std::vector<Fig5Point> points;
};

struct Fig5Options {
  int sweep_points = 13;
  double dt = 2e-12;
  double t_stop = 3.0e-9;
};

struct Fig5Data {
  std::vector<Fig5Curve> curves;  ///< 3 gates x {t1, t3} x {PGS, PGD}
};

/// Reproduces Fig. 5: floating-PG leakage/delay sweeps on INV, NAND2 and
/// XOR2 for the pull-up (t1) and pull-down (t3) transistors.
[[nodiscard]] Fig5Data run_fig5(const Fig5Options& options = {});

// -------------------------------------------------------------- Table III
/// One row of Table III: a polarity fault on one XOR2 transistor.
struct Table3Row {
  int transistor = 0;  ///< 0..3 (t1..t4)
  gates::TransistorFault kind = gates::TransistorFault::kStuckAtNType;
  unsigned detect_vector = 0;   ///< local input bits (bit0 = A)
  bool leakage_detect = false;
  bool output_detect = false;
  // SPICE cross-check at the detecting vector:
  double iddq_faulty_a = 0.0;
  double iddq_ff_a = 0.0;
  double vout_faulty = 0.0;
  double vout_good = 0.0;
};

struct Table3Data {
  std::vector<Table3Row> rows;  ///< t1..t4 x {stuck-at-n, stuck-at-p}
};

/// Reproduces Table III by exhaustive polarity-fault injection on the
/// 2-input XOR, cross-checked at SPICE level.
[[nodiscard]] Table3Data run_table3();

// ------------------------------------------------------------- Sec. V-C
/// Channel-break behaviour of one XOR2 transistor (masking numbers plus
/// the new detection procedure).
struct Sec5cEntry {
  int transistor = 0;
  bool function_preserved_dc = false;
  double worst_delay_increase_pct = 0.0;
  double leakage_change_pct = 0.0;
  // The paper's new procedure:
  bool cb_test_exists = false;
  bool cb_distinguishes_cell = false;  ///< switch-level verdict
  double cb_iddq_intact_a = 0.0;       ///< SPICE, dual-rail override
  double cb_iddq_broken_a = 0.0;
  bool cb_spice_distinguishes = false;
};

struct Sec5cData {
  std::vector<Sec5cEntry> entries;  ///< t1..t4 of the XOR2 (FO4)
};

/// Reproduces Sec. V-C: masking of channel breaks in the DP XOR2 and the
/// effectiveness of the polarity-complement detection procedure.
[[nodiscard]] Sec5cData run_sec5c();

// ----------------------------------------------- Sec. V-C (NAND SOF set)
struct NandSofData {
  /// Two-pattern ATPG outcome per NAND2 transistor (t1..t4).
  std::vector<atpg::TwoPatternResult> per_transistor;
  /// Distinct (init, test) local vector pairs, formatted "AB->AB".
  std::vector<std::string> distinct_pairs;
};

/// Regenerates the paper's NAND two-pattern stuck-open test set
/// v1=(11->01), v2=(11->10), v3=(00->11).
[[nodiscard]] NandSofData run_nand_sof();

// ------------------------------------------- GOS detectability (conclusion)
/// Circuit-level observability of one GOS defect (paper conclusion: "gate
/// oxide short ... detectable by analyzing the performance parameters
/// like delay and leakage").
struct GosDetectEntry {
  gates::CellKind kind = gates::CellKind::kInv;
  int transistor = 0;
  device::GateTerminal location = device::GateTerminal::kCG;
  double delay_increase_pct = 0.0;  ///< worst transition vs fault-free
  double iddq_ratio = 1.0;          ///< worst-state IDDQ vs fault-free
  bool detectable_by_delay = false; ///< >= 30 % slowdown
  bool detectable_by_iddq = false;  ///< >= 10x supply current
};

struct GosDetectData {
  std::vector<GosDetectEntry> entries;
};

/// Injects a GOS at each gate dielectric of representative SP and DP
/// devices and measures the delay/IDDQ signatures.
[[nodiscard]] GosDetectData run_gos_detectability();

// ----------------------------------------------------- ATPG coverage (ext)
struct CoverageRow {
  std::string circuit;
  int gate_count = 0;
  int transistor_count = 0;
  int fault_count = 0;
  double classical_coverage = 0.0;  ///< without the paper's new models
  double full_coverage = 0.0;       ///< with IDDQ + CB procedures
  int via_iddq = 0;
  int via_two_pattern = 0;
  int via_channel_break = 0;
};

struct AtpgCoverageData {
  std::vector<CoverageRow> rows;
};

/// Extension experiment: full-flow coverage on the benchmark netlists,
/// with and without the paper's new fault models.
[[nodiscard]] AtpgCoverageData run_atpg_coverage();

}  // namespace cpsinw::core
