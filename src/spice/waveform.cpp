#include "spice/waveform.hpp"

#include <stdexcept>

namespace cpsinw::spice {

Waveform Waveform::dc(double level) {
  return Waveform({{0.0, level}});
}

Waveform Waveform::pwl(std::vector<std::pair<double, double>> pts) {
  if (pts.empty())
    throw std::invalid_argument("Waveform::pwl: needs at least one point");
  for (std::size_t i = 1; i < pts.size(); ++i)
    if (!(pts[i].first > pts[i - 1].first))
      throw std::invalid_argument("Waveform::pwl: times must increase");
  return Waveform(std::move(pts));
}

Waveform Waveform::step(double v0, double v1, double t_edge, double t_slew) {
  if (t_slew <= 0.0)
    throw std::invalid_argument("Waveform::step: slew must be positive");
  return pwl({{0.0, v0}, {t_edge, v0}, {t_edge + t_slew, v1}});
}

Waveform Waveform::two_pattern(double v_first, double v_second,
                               double t_switch, double t_slew) {
  if (v_first == v_second) return dc(v_first);
  return step(v_first, v_second, t_switch, t_slew);
}

Waveform Waveform::affine(double scale, double offset) const {
  std::vector<std::pair<double, double>> pts = points_;
  for (auto& [t, v] : pts) v = scale * v + offset;
  return Waveform(std::move(pts));
}

double Waveform::at(double t) const {
  if (points_.size() == 1) return points_.front().second;
  if (t <= points_.front().first) return points_.front().second;
  if (t >= points_.back().first) return points_.back().second;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (t <= points_[i].first) {
      const auto& [t0, v0] = points_[i - 1];
      const auto& [t1, v1] = points_[i];
      const double f = (t - t0) / (t1 - t0);
      return v0 + (v1 - v0) * f;
    }
  }
  return points_.back().second;
}

}  // namespace cpsinw::spice
