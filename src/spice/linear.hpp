// Dense linear algebra for the MNA solver.  Circuits in this library are
// gate-sized (tens of unknowns), so dense LU with partial pivoting is both
// the simplest and the fastest appropriate choice.
#pragma once

#include <vector>

namespace cpsinw::spice {

/// Row-major dense square matrix.
class Matrix {
 public:
  /// Zero-initialized n x n matrix.
  explicit Matrix(int n);

  [[nodiscard]] int size() const { return n_; }

  [[nodiscard]] double& at(int r, int c);
  [[nodiscard]] double at(int r, int c) const;

  /// Sets every entry to zero (reuses storage).
  void clear();

 private:
  int n_;
  std::vector<double> data_;
};

/// Solves A x = b in place by LU decomposition with partial pivoting.
/// @param a coefficient matrix; destroyed during factorization
/// @param b right-hand side; overwritten with the solution
/// @returns false when the matrix is numerically singular
[[nodiscard]] bool lu_solve(Matrix& a, std::vector<double>& b);

}  // namespace cpsinw::spice
