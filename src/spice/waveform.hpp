// Time-dependent source values: DC levels and piecewise-linear waveforms.
#pragma once

#include <utility>
#include <vector>

namespace cpsinw::spice {

/// Value of an independent source as a function of time.  Immutable.
class Waveform {
 public:
  /// Constant level.
  [[nodiscard]] static Waveform dc(double level);

  /// Piecewise-linear waveform through (time, value) points; flat
  /// extrapolation outside the listed range.
  /// @throws std::invalid_argument if times are not strictly increasing.
  [[nodiscard]] static Waveform pwl(std::vector<std::pair<double, double>> pts);

  /// Single edge: holds v0 until t_edge, ramps linearly to v1 over t_slew.
  [[nodiscard]] static Waveform step(double v0, double v1, double t_edge,
                                     double t_slew);

  /// Two-pattern stimulus: v1 until t_switch, then ramps to v2 (used by the
  /// stuck-open tests, paper Sec. V-C).
  [[nodiscard]] static Waveform two_pattern(double v_first, double v_second,
                                            double t_switch, double t_slew);

  /// Value at time t (t < 0 behaves like t = 0).
  [[nodiscard]] double at(double t) const;

  /// True when the waveform never changes (pure DC).
  [[nodiscard]] bool is_dc() const { return points_.size() <= 1; }

  /// Affine value transform: returns a waveform with value
  /// scale * v(t) + offset.  complemented(vdd) = affine(-1, vdd) yields the
  /// dual-rail complement of a logic waveform.
  [[nodiscard]] Waveform affine(double scale, double offset) const;

  /// Dual-rail complement against a supply level.
  [[nodiscard]] Waveform complemented(double vdd) const {
    return affine(-1.0, vdd);
  }

 private:
  explicit Waveform(std::vector<std::pair<double, double>> pts)
      : points_(std::move(pts)) {}
  std::vector<std::pair<double, double>> points_;
};

}  // namespace cpsinw::spice
