// Nonlinear DC operating-point analysis: Newton-Raphson on the MNA system
// with damping and source-stepping continuation.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "spice/netlist.hpp"

namespace cpsinw::spice {

/// Newton iteration controls.
struct NewtonOptions {
  int max_iterations = 200;
  double vntol = 1e-6;        ///< absolute voltage tolerance [V]
  double itol = 1e-11;        ///< absolute branch-current tolerance [A]
  double reltol = 1e-3;       ///< relative tolerance
  double max_vstep = 0.3;     ///< Newton step limit on voltages [V]
  double gmin = 1e-12;        ///< conductance from every node to ground [S]
  bool source_stepping = true;///< enable continuation on non-convergence
};

/// Result of a DC (or single-timepoint) solve.
struct DcResult {
  bool converged = false;
  /// Node voltages indexed by NodeId (index 0 = ground = 0 V).
  std::vector<double> v;
  /// Branch current of each voltage source (same order as
  /// Circuit::vsources()); defined as the current flowing from the positive
  /// terminal through the source to the negative terminal.
  std::vector<double> branch_current;

  /// Voltage of a node.
  [[nodiscard]] double voltage(NodeId n) const {
    return v.at(static_cast<std::size_t>(n));
  }

  /// Current delivered by a source into the circuit (for a V_DD source this
  /// is the supply current, i.e. the IDDQ observable).
  [[nodiscard]] double supply_current(const Circuit& ckt,
                                      std::string_view source_name) const;
};

namespace detail {

/// Linear companion element injected by the transient integrator:
/// a conductance geq between nodes a and b plus an equivalent current
/// source ieq flowing from a to b (current leaving a = geq*(va-vb) - ieq).
struct Companion {
  NodeId a = 0;
  NodeId b = 0;
  double geq = 0.0;
  double ieq = 0.0;
};

/// Solves the MNA system at time `t`, optionally superimposing companion
/// elements and starting from `guess` (sized unknown_count) when provided.
/// `source_scale` scales all source values (used by continuation).
[[nodiscard]] DcResult solve_system(const Circuit& ckt, double t,
                                    const NewtonOptions& opt,
                                    const std::vector<double>* guess,
                                    std::span<const Companion> companions,
                                    double source_scale = 1.0);

}  // namespace detail

/// Computes the DC operating point with all waveforms evaluated at `time`.
/// Falls back to source stepping when plain Newton fails.
/// @param guess optional warm-start unknown vector (unknown_count entries)
[[nodiscard]] DcResult dc_operating_point(const Circuit& ckt,
                                          double time = 0.0,
                                          const NewtonOptions& opt = {},
                                          const std::vector<double>* guess =
                                              nullptr);

}  // namespace cpsinw::spice
