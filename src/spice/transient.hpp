// Transient analysis with trapezoidal integration on fixed time steps.
#pragma once

#include <vector>

#include "spice/dcop.hpp"
#include "spice/netlist.hpp"

namespace cpsinw::spice {

/// Transient controls.
struct TranOptions {
  double t_stop = 1e-9;   ///< end time [s]
  double dt = 1e-12;      ///< fixed step [s]
  NewtonOptions newton;   ///< per-step solver controls
};

/// Sampled transient solution.
struct TranResult {
  bool converged = false;           ///< false if any timepoint failed
  std::vector<double> time;         ///< sample instants [s]
  /// Node waveforms indexed by NodeId: v[node][sample].
  std::vector<std::vector<double>> v;
  /// Branch currents per voltage source: i[src][sample].
  std::vector<std::vector<double>> branch_current;

  /// Waveform of one node.
  [[nodiscard]] const std::vector<double>& node_wave(NodeId n) const {
    return v.at(static_cast<std::size_t>(n));
  }

  /// Final value of one node.
  [[nodiscard]] double final_voltage(NodeId n) const {
    return node_wave(n).back();
  }
};

/// Runs a transient analysis.  The initial condition is the DC operating
/// point at t = 0 (all waveforms evaluated at time zero).
/// @throws std::invalid_argument for non-positive dt or t_stop
[[nodiscard]] TranResult transient(const Circuit& ckt,
                                   const TranOptions& opt);

}  // namespace cpsinw::spice
