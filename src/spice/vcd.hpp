// VCD (Value Change Dump) export of transient results, so waveforms from
// the built-in simulator can be inspected in GTKWave & friends.  Analog
// node voltages are emitted as IEEE-754 real variables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "spice/transient.hpp"

namespace cpsinw::spice {

/// Options for the dump.
struct VcdOptions {
  /// Timescale of the dump; samples are rounded to this resolution.
  double timescale_s = 1e-12;
  std::string module_name = "cpsinw";
};

/// Writes the transient solution of the selected nodes as a VCD file.
/// @param nodes node ids to dump (all non-ground nodes when empty)
/// @throws std::invalid_argument for an empty/failed transient result
void write_vcd(std::ostream& os, const Circuit& ckt, const TranResult& tran,
               const std::vector<NodeId>& nodes = {},
               const VcdOptions& options = {});

}  // namespace cpsinw::spice
