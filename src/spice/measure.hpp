// Measurements on simulation results: propagation delay, static supply
// current (IDDQ) and logic-level classification of analog voltages.
#pragma once

#include <optional>
#include <string_view>

#include "spice/transient.hpp"

namespace cpsinw::spice {

/// A 50%-crossing based propagation-delay measurement.
struct DelayMeasurement {
  bool valid = false;     ///< false when either crossing never happens
  double t_in = 0.0;      ///< input crossing instant [s]
  double t_out = 0.0;     ///< output crossing instant [s]
  double delay = 0.0;     ///< t_out - t_in [s]
};

/// Measures the delay from the first crossing of `v_mid` on `input` after
/// `t_after` to the next crossing of `v_mid` on `output`.
[[nodiscard]] DelayMeasurement propagation_delay(const TranResult& tran,
                                                 NodeId input, NodeId output,
                                                 double v_mid,
                                                 double t_after = 0.0);

/// Static supply current of an operating point: current delivered by the
/// named source into the circuit (absolute value — IDDQ testers measure
/// magnitude).
[[nodiscard]] double iddq(const Circuit& ckt, const DcResult& op,
                          std::string_view vdd_source);

/// Chip-level IDDQ equivalent for cell experiments: the total quiescent
/// current delivered by all sources (positive parts summed).  Pass-device
/// networks (XOR3, MAJ3) can draw crowbar current between *input* drivers
/// rather than the local V_DD rail; on a chip those drivers are themselves
/// supply-powered, so a tester's IDDQ still observes the anomaly.
[[nodiscard]] double iddq_total(const DcResult& op);

/// Three-way logic interpretation of an analog node voltage.
enum class LogicRead { kZero, kOne, kUndefined };

/// Classifies a voltage against the (V_lo, V_hi) logic thresholds.
[[nodiscard]] LogicRead read_logic(double v, double v_lo, double v_hi);

/// Convenience thresholds used across the experiments: 0.45/0.75 of a
/// 1.2 V supply, matching the X-band the paper's gates must clear.
struct LogicThresholds {
  double v_lo = 0.45;
  double v_hi = 0.75;
};

}  // namespace cpsinw::spice
