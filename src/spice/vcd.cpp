#include "spice/vcd.hpp"

#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace cpsinw::spice {

namespace {

/// VCD identifier for variable index i (printable ASCII, base-94).
std::string vcd_id(int i) {
  std::string id;
  do {
    id += static_cast<char>('!' + (i % 94));
    i /= 94;
  } while (i > 0);
  return id;
}

}  // namespace

void write_vcd(std::ostream& os, const Circuit& ckt, const TranResult& tran,
               const std::vector<NodeId>& nodes, const VcdOptions& options) {
  if (tran.time.empty())
    throw std::invalid_argument("write_vcd: empty transient result");
  if (options.timescale_s <= 0.0)
    throw std::invalid_argument("write_vcd: bad timescale");

  std::vector<NodeId> dump = nodes;
  if (dump.empty()) {
    for (NodeId n = 1; n < ckt.node_count(); ++n) dump.push_back(n);
  }

  os << "$timescale " << static_cast<long long>(
            std::llround(options.timescale_s / 1e-12))
     << " ps $end\n";
  os << "$scope module " << options.module_name << " $end\n";
  for (std::size_t i = 0; i < dump.size(); ++i) {
    os << "$var real 64 " << vcd_id(static_cast<int>(i)) << " v("
       << ckt.node_name(dump[i]) << ") $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  std::vector<double> last(dump.size(),
                           std::numeric_limits<double>::quiet_NaN());
  for (std::size_t s = 0; s < tran.time.size(); ++s) {
    bool stamped = false;
    for (std::size_t i = 0; i < dump.size(); ++i) {
      const double v =
          tran.v[static_cast<std::size_t>(dump[i])][s];
      // Emit on first sample and on visible change (>= 0.1 mV).
      if (!std::isnan(last[i]) && std::abs(v - last[i]) < 1e-4) continue;
      if (!stamped) {
        os << '#'
           << static_cast<long long>(
                  std::llround(tran.time[s] / options.timescale_s))
           << '\n';
        stamped = true;
      }
      os << 'r' << v << ' ' << vcd_id(static_cast<int>(i)) << '\n';
      last[i] = v;
    }
  }
  // Final timestamp so viewers show the full span.
  os << '#'
     << static_cast<long long>(
            std::llround(tran.time.back() / options.timescale_s))
     << '\n';
}

}  // namespace cpsinw::spice
