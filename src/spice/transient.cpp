#include "spice/transient.hpp"

#include <cmath>
#include <stdexcept>

#include "util/log.hpp"

namespace cpsinw::spice {

TranResult transient(const Circuit& ckt, const TranOptions& opt) {
  if (opt.dt <= 0.0 || opt.t_stop <= 0.0)
    throw std::invalid_argument("transient: dt and t_stop must be positive");

  TranResult out;
  const int n_nodes = ckt.node_count();
  const std::size_t n_src = ckt.vsources().size();
  out.v.assign(static_cast<std::size_t>(n_nodes), {});
  out.branch_current.assign(n_src, {});

  // Initial condition: DC operating point at t = 0.
  DcResult state = dc_operating_point(ckt, 0.0, opt.newton);
  if (!state.converged) {
    util::log_warn("transient: initial operating point failed");
    out.converged = false;
    return out;
  }

  const auto record = [&](double t, const DcResult& r) {
    out.time.push_back(t);
    for (int i = 0; i < n_nodes; ++i)
      out.v[static_cast<std::size_t>(i)].push_back(
          r.v[static_cast<std::size_t>(i)]);
    for (std::size_t k = 0; k < n_src; ++k)
      out.branch_current[k].push_back(r.branch_current[k]);
  };
  record(0.0, state);

  // Trapezoidal companions: track the capacitor current of the previous
  // accepted step (zero at DC).
  const auto& caps = ckt.capacitors();
  std::vector<double> i_prev(caps.size(), 0.0);

  // Warm-start vector carried between steps.
  const int nv = n_nodes - 1;
  std::vector<double> x(static_cast<std::size_t>(ckt.unknown_count()), 0.0);
  const auto pack = [&](const DcResult& r) {
    for (int i = 0; i < nv; ++i)
      x[static_cast<std::size_t>(i)] = r.v[static_cast<std::size_t>(i + 1)];
    for (std::size_t k = 0; k < n_src; ++k)
      x[static_cast<std::size_t>(nv) + k] = r.branch_current[k];
  };
  pack(state);

  out.converged = true;
  const int steps = static_cast<int>(std::ceil(opt.t_stop / opt.dt));
  std::vector<detail::Companion> comps(caps.size());
  NewtonOptions step_opt = opt.newton;
  step_opt.source_stepping = false;  // warm starts make it unnecessary

  for (int s = 1; s <= steps; ++s) {
    const double t = std::min(static_cast<double>(s) * opt.dt, opt.t_stop);
    const double h = t - out.time.back();
    if (h <= 0.0) break;

    for (std::size_t c = 0; c < caps.size(); ++c) {
      const double geq = 2.0 * caps[c].farads / h;
      const double v_prev =
          state.v[static_cast<std::size_t>(caps[c].a)] -
          state.v[static_cast<std::size_t>(caps[c].b)];
      comps[c] = {caps[c].a, caps[c].b, geq, geq * v_prev + i_prev[c]};
    }

    DcResult next = detail::solve_system(ckt, t, step_opt, &x, comps);
    if (!next.converged) {
      util::log_warn("transient: step failed at t=" + std::to_string(t));
      out.converged = false;
      break;
    }

    for (std::size_t c = 0; c < caps.size(); ++c) {
      const double v_now = next.v[static_cast<std::size_t>(caps[c].a)] -
                           next.v[static_cast<std::size_t>(caps[c].b)];
      i_prev[c] = comps[c].geq * v_now - comps[c].ieq;
    }

    record(t, next);
    state = std::move(next);
    pack(state);
  }
  return out;
}

}  // namespace cpsinw::spice
