#include "spice/netlist.hpp"

#include <stdexcept>

namespace cpsinw::spice {

Circuit::Circuit() {
  names_.emplace_back("0");
  by_name_.emplace("0", 0);
}

NodeId Circuit::node(std::string_view name) {
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(names_.size());
  names_.emplace_back(name);
  by_name_.emplace(std::string(name), id);
  return id;
}

NodeId Circuit::find_node(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end())
    throw std::out_of_range("Circuit: unknown node '" + std::string(name) +
                            "'");
  return it->second;
}

const std::string& Circuit::node_name(NodeId id) const {
  return names_.at(static_cast<std::size_t>(id));
}

void Circuit::check_node(NodeId id) const {
  if (id < 0 || id >= node_count())
    throw std::out_of_range("Circuit: node id out of range");
}

void Circuit::add_resistor(std::string name, NodeId a, NodeId b, double ohms) {
  check_node(a);
  check_node(b);
  if (ohms <= 0.0)
    throw std::invalid_argument("Circuit: resistor must have R > 0");
  resistors_.push_back({std::move(name), a, b, ohms});
}

void Circuit::add_capacitor(std::string name, NodeId a, NodeId b,
                            double farads) {
  check_node(a);
  check_node(b);
  if (farads <= 0.0)
    throw std::invalid_argument("Circuit: capacitor must have C > 0");
  capacitors_.push_back({std::move(name), a, b, farads});
}

void Circuit::add_vsource(std::string name, NodeId pos, NodeId neg,
                          Waveform wave) {
  check_node(pos);
  check_node(neg);
  vsources_.push_back({std::move(name), pos, neg, std::move(wave)});
}

void Circuit::add_tig(std::string name,
                      std::shared_ptr<const device::TigModel> model,
                      NodeId cg, NodeId pgs, NodeId pgd, NodeId s, NodeId d) {
  if (!model) throw std::invalid_argument("Circuit: null TIG model");
  check_node(cg);
  check_node(pgs);
  check_node(pgd);
  check_node(s);
  check_node(d);
  tigs_.push_back({std::move(name), std::move(model), cg, pgs, pgd, s, d});
}

void Circuit::set_vsource_wave(std::string_view name, Waveform wave) {
  for (auto& src : vsources_) {
    if (src.name == name) {
      src.wave = std::move(wave);
      return;
    }
  }
  throw std::out_of_range("Circuit: unknown vsource '" + std::string(name) +
                          "'");
}

int Circuit::vsource_index(std::string_view name) const {
  for (std::size_t i = 0; i < vsources_.size(); ++i)
    if (vsources_[i].name == name) return static_cast<int>(i);
  throw std::out_of_range("Circuit: unknown vsource '" + std::string(name) +
                          "'");
}

}  // namespace cpsinw::spice
