#include "spice/dcop.hpp"

#include <algorithm>
#include <cmath>

#include "spice/linear.hpp"
#include "util/log.hpp"

namespace cpsinw::spice {

double DcResult::supply_current(const Circuit& ckt,
                                std::string_view source_name) const {
  const int idx = ckt.vsource_index(source_name);
  // The branch current flows pos -> neg inside the source; current
  // delivered into the circuit at the positive terminal is its negative.
  return -branch_current.at(static_cast<std::size_t>(idx));
}

namespace detail {

namespace {

/// Index of a node voltage in the unknown vector (-1 for ground).
int vindex(NodeId n) { return n - 1; }

struct Assembler {
  const Circuit& ckt;
  Matrix& jac;
  std::vector<double>& rhs;
  const std::vector<double>& x;  // current guess

  [[nodiscard]] double volt(NodeId n) const {
    return n == 0 ? 0.0 : x[static_cast<std::size_t>(vindex(n))];
  }

  void add_j(NodeId row, NodeId col, double g) {
    if (row == 0 || col == 0) return;
    jac.at(vindex(row), vindex(col)) += g;
  }

  void add_rhs(NodeId row, double value) {
    if (row == 0) return;
    rhs[static_cast<std::size_t>(vindex(row))] += value;
  }

  void stamp_conductance(NodeId a, NodeId b, double g) {
    add_j(a, a, g);
    add_j(b, b, g);
    add_j(a, b, -g);
    add_j(b, a, -g);
  }

  void stamp_gmin(double gmin) {
    const int nv = ckt.node_count() - 1;
    for (int i = 0; i < nv; ++i) jac.at(i, i) += gmin;
  }

  void stamp_resistors() {
    for (const auto& r : ckt.resistors())
      stamp_conductance(r.a, r.b, 1.0 / r.ohms);
  }

  void stamp_companions(std::span<const Companion> companions) {
    for (const auto& c : companions) {
      stamp_conductance(c.a, c.b, c.geq);
      add_rhs(c.a, c.ieq);
      add_rhs(c.b, -c.ieq);
    }
  }

  void stamp_vsources(double t, double scale) {
    const int nv = ckt.node_count() - 1;
    const auto& sources = ckt.vsources();
    for (std::size_t k = 0; k < sources.size(); ++k) {
      const auto& src = sources[k];
      const int row = nv + static_cast<int>(k);
      // Branch current enters the KCL of both terminals.
      if (src.pos != 0) {
        jac.at(vindex(src.pos), row) += 1.0;
        jac.at(row, vindex(src.pos)) += 1.0;
      }
      if (src.neg != 0) {
        jac.at(vindex(src.neg), row) -= 1.0;
        jac.at(row, vindex(src.neg)) -= 1.0;
      }
      rhs[static_cast<std::size_t>(row)] += src.wave.at(t) * scale;
    }
  }

  void stamp_tigs() {
    constexpr double kPerturb = 1e-5;
    for (const auto& dev : ckt.tigs()) {
      const std::array<NodeId, 5> nodes = {dev.cg, dev.pgs, dev.pgd, dev.s,
                                           dev.d};
      device::TigBias bias{.vcg = volt(dev.cg), .vpgs = volt(dev.pgs),
                           .vpgd = volt(dev.pgd), .vs = volt(dev.s),
                           .vd = volt(dev.d)};
      const device::TigCurrents c0 = dev.model->currents(bias);
      const std::array<double, 5> i0 = {c0.into_cg, c0.into_pgs, c0.into_pgd,
                                        c0.into_source, c0.into_drain};
      // Numeric 5x5 Jacobian of terminal currents wrt terminal voltages.
      std::array<std::array<double, 5>, 5> g{};
      for (int j = 0; j < 5; ++j) {
        device::TigBias pb = bias;
        double* field = nullptr;
        switch (j) {
          case 0: field = &pb.vcg; break;
          case 1: field = &pb.vpgs; break;
          case 2: field = &pb.vpgd; break;
          case 3: field = &pb.vs; break;
          case 4: field = &pb.vd; break;
        }
        *field += kPerturb;
        const device::TigCurrents cp = dev.model->currents(pb);
        const std::array<double, 5> ip = {cp.into_cg, cp.into_pgs,
                                          cp.into_pgd, cp.into_source,
                                          cp.into_drain};
        for (int t = 0; t < 5; ++t)
          g[static_cast<std::size_t>(t)][static_cast<std::size_t>(j)] =
              (ip[static_cast<std::size_t>(t)] -
               i0[static_cast<std::size_t>(t)]) /
              kPerturb;
      }
      // Linearized terminal current:
      //   i_t = i0_t + sum_j g[t][j] (v_j - v0_j)
      // KCL row of node(t): ... + i_t = 0  ->  move constants to RHS.
      for (int t = 0; t < 5; ++t) {
        const NodeId nt = nodes[static_cast<std::size_t>(t)];
        if (nt == 0) continue;
        double constant = i0[static_cast<std::size_t>(t)];
        for (int j = 0; j < 5; ++j) {
          const NodeId nj = nodes[static_cast<std::size_t>(j)];
          const double gj =
              g[static_cast<std::size_t>(t)][static_cast<std::size_t>(j)];
          add_j(nt, nj, gj);
          constant -= gj * volt(nj);
        }
        add_rhs(nt, -constant);
      }
    }
  }
};

}  // namespace

DcResult solve_system(const Circuit& ckt, double t, const NewtonOptions& opt,
                      const std::vector<double>* guess,
                      std::span<const Companion> companions,
                      double source_scale) {
  const int n = ckt.unknown_count();
  const int nv = ckt.node_count() - 1;
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  if (guess != nullptr && static_cast<int>(guess->size()) == n) x = *guess;

  Matrix jac(n);
  std::vector<double> rhs(static_cast<std::size_t>(n), 0.0);

  DcResult result;
  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    jac.clear();
    std::fill(rhs.begin(), rhs.end(), 0.0);
    Assembler as{ckt, jac, rhs, x};
    as.stamp_gmin(opt.gmin);
    as.stamp_resistors();
    as.stamp_companions(companions);
    as.stamp_vsources(t, source_scale);
    as.stamp_tigs();

    std::vector<double> x_new = rhs;
    if (!lu_solve(jac, x_new)) {
      util::log_warn("dcop: singular MNA matrix");
      break;
    }

    // Damping: cap the largest voltage move.
    double max_dv = 0.0;
    for (int i = 0; i < nv; ++i)
      max_dv = std::max(max_dv, std::abs(x_new[static_cast<std::size_t>(i)] -
                                         x[static_cast<std::size_t>(i)]));
    double alpha = 1.0;
    if (max_dv > opt.max_vstep) alpha = opt.max_vstep / max_dv;

    bool converged = true;
    for (int i = 0; i < n; ++i) {
      const double xi = x[static_cast<std::size_t>(i)];
      const double xn = xi + alpha * (x_new[static_cast<std::size_t>(i)] - xi);
      const double dx = std::abs(xn - xi);
      const double tol = (i < nv ? opt.vntol : opt.itol) +
                         opt.reltol * std::abs(xn);
      if (dx > tol) converged = false;
      x[static_cast<std::size_t>(i)] = xn;
    }
    if (converged && alpha == 1.0) {
      result.converged = true;
      break;
    }
  }

  result.v.assign(static_cast<std::size_t>(ckt.node_count()), 0.0);
  for (int i = 0; i < nv; ++i)
    result.v[static_cast<std::size_t>(i + 1)] = x[static_cast<std::size_t>(i)];
  result.branch_current.assign(ckt.vsources().size(), 0.0);
  for (std::size_t k = 0; k < ckt.vsources().size(); ++k)
    result.branch_current[k] = x[static_cast<std::size_t>(nv) + k];
  return result;
}

}  // namespace detail

DcResult dc_operating_point(const Circuit& ckt, double time,
                            const NewtonOptions& opt,
                            const std::vector<double>* guess) {
  DcResult r = detail::solve_system(ckt, time, opt, guess, {});
  if (r.converged || !opt.source_stepping) return r;

  // Source-stepping continuation: ramp all sources from 0 to 100 %.
  util::log_info("dcop: falling back to source stepping");
  const int n = ckt.unknown_count();
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  DcResult stage;
  for (int step = 1; step <= 20; ++step) {
    const double scale = static_cast<double>(step) / 20.0;
    stage = detail::solve_system(ckt, time, opt, &x, {}, scale);
    if (!stage.converged) return stage;
    // Re-pack the unknown vector for the next stage's warm start.
    const int nv = ckt.node_count() - 1;
    for (int i = 0; i < nv; ++i)
      x[static_cast<std::size_t>(i)] = stage.v[static_cast<std::size_t>(i + 1)];
    for (std::size_t k = 0; k < ckt.vsources().size(); ++k)
      x[static_cast<std::size_t>(nv) + k] = stage.branch_current[k];
  }
  return stage;
}

}  // namespace cpsinw::spice
