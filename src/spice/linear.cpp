#include "spice/linear.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace cpsinw::spice {

Matrix::Matrix(int n) : n_(n) {
  if (n <= 0) throw std::invalid_argument("Matrix: size must be positive");
  data_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
}

double& Matrix::at(int r, int c) {
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(c)];
}

double Matrix::at(int r, int c) const {
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(c)];
}

void Matrix::clear() { data_.assign(data_.size(), 0.0); }

bool lu_solve(Matrix& a, std::vector<double>& b) {
  const int n = a.size();
  if (static_cast<int>(b.size()) != n)
    throw std::invalid_argument("lu_solve: dimension mismatch");

  for (int k = 0; k < n; ++k) {
    // Partial pivoting.
    int pivot = k;
    double best = std::abs(a.at(k, k));
    for (int r = k + 1; r < n; ++r) {
      const double cand = std::abs(a.at(r, k));
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    if (best < 1e-30) return false;
    if (pivot != k) {
      for (int c = k; c < n; ++c) std::swap(a.at(k, c), a.at(pivot, c));
      std::swap(b[static_cast<std::size_t>(k)],
                b[static_cast<std::size_t>(pivot)]);
    }
    // Elimination.
    const double inv = 1.0 / a.at(k, k);
    for (int r = k + 1; r < n; ++r) {
      const double f = a.at(r, k) * inv;
      if (f == 0.0) continue;
      a.at(r, k) = 0.0;
      for (int c = k + 1; c < n; ++c) a.at(r, c) -= f * a.at(k, c);
      b[static_cast<std::size_t>(r)] -= f * b[static_cast<std::size_t>(k)];
    }
  }
  // Back substitution.
  for (int r = n - 1; r >= 0; --r) {
    double acc = b[static_cast<std::size_t>(r)];
    for (int c = r + 1; c < n; ++c)
      acc -= a.at(r, c) * b[static_cast<std::size_t>(c)];
    b[static_cast<std::size_t>(r)] = acc / a.at(r, r);
  }
  return true;
}

}  // namespace cpsinw::spice
