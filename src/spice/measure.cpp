#include "spice/measure.hpp"

#include <cmath>

namespace cpsinw::spice {

namespace {

/// First instant after `t_after` where the waveform crosses `level`.
/// Returns NaN when no crossing exists.
double first_crossing(const std::vector<double>& t,
                      const std::vector<double>& v, double level,
                      double t_after) {
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (t[i] < t_after) continue;
    const double a = v[i - 1] - level;
    const double b = v[i] - level;
    if ((a <= 0.0 && b > 0.0) || (a >= 0.0 && b < 0.0)) {
      const double f = a / (a - b);
      return t[i - 1] + (t[i] - t[i - 1]) * f;
    }
  }
  return std::nan("");
}

}  // namespace

DelayMeasurement propagation_delay(const TranResult& tran, NodeId input,
                                   NodeId output, double v_mid,
                                   double t_after) {
  DelayMeasurement m;
  const double t_in =
      first_crossing(tran.time, tran.node_wave(input), v_mid, t_after);
  if (std::isnan(t_in)) return m;
  const double t_out =
      first_crossing(tran.time, tran.node_wave(output), v_mid, t_in);
  if (std::isnan(t_out)) return m;
  m.valid = true;
  m.t_in = t_in;
  m.t_out = t_out;
  m.delay = t_out - t_in;
  return m;
}

double iddq(const Circuit& ckt, const DcResult& op,
            std::string_view vdd_source) {
  return std::abs(op.supply_current(ckt, vdd_source));
}

double iddq_total(const DcResult& op) {
  double total = 0.0;
  for (const double branch : op.branch_current) {
    // Branch current flows pos -> neg inside the source; a negative value
    // means the source delivers current into the circuit.
    if (branch < 0.0) total += -branch;
  }
  return total;
}

LogicRead read_logic(double v, double v_lo, double v_hi) {
  if (v <= v_lo) return LogicRead::kZero;
  if (v >= v_hi) return LogicRead::kOne;
  return LogicRead::kUndefined;
}

}  // namespace cpsinw::spice
