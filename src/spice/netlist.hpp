// Circuit netlist for the MNA simulator: nodes, passive elements,
// independent sources and TIG-SiNWFET devices.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "device/tig_model.hpp"
#include "spice/waveform.hpp"

namespace cpsinw::spice {

/// Node identifier; 0 is always ground.
using NodeId = int;

/// Two-terminal linear resistor.
struct Resistor {
  std::string name;
  NodeId a = 0;
  NodeId b = 0;
  double ohms = 0.0;
};

/// Two-terminal linear capacitor (open in DC analysis).
struct Capacitor {
  std::string name;
  NodeId a = 0;
  NodeId b = 0;
  double farads = 0.0;
};

/// Independent voltage source with a waveform; contributes one branch
/// current unknown to the MNA system.
struct VSource {
  std::string name;
  NodeId pos = 0;
  NodeId neg = 0;
  Waveform wave = Waveform::dc(0.0);
};

/// TIG-SiNWFET instance: five terminals plus a (shared) compact model.
struct TigElement {
  std::string name;
  std::shared_ptr<const device::TigModel> model;
  NodeId cg = 0;
  NodeId pgs = 0;
  NodeId pgd = 0;
  NodeId s = 0;
  NodeId d = 0;
};

/// A complete circuit.  Nodes are created by name; elements refer to nodes
/// by id.  The class is a passive container — analyses live in dcop.hpp and
/// transient.hpp.
class Circuit {
 public:
  Circuit();

  /// Returns the ground node (always id 0, name "0").
  [[nodiscard]] NodeId ground() const { return 0; }

  /// Returns the node with the given name, creating it if necessary.
  NodeId node(std::string_view name);

  /// Looks up an existing node.
  /// @throws std::out_of_range when the node does not exist.
  [[nodiscard]] NodeId find_node(std::string_view name) const;

  /// Name of a node id.
  [[nodiscard]] const std::string& node_name(NodeId id) const;

  /// Number of nodes including ground.
  [[nodiscard]] int node_count() const {
    return static_cast<int>(names_.size());
  }

  void add_resistor(std::string name, NodeId a, NodeId b, double ohms);
  void add_capacitor(std::string name, NodeId a, NodeId b, double farads);
  void add_vsource(std::string name, NodeId pos, NodeId neg, Waveform wave);
  void add_tig(std::string name, std::shared_ptr<const device::TigModel> model,
               NodeId cg, NodeId pgs, NodeId pgd, NodeId s, NodeId d);

  /// Replaces the waveform of an existing voltage source.
  /// @throws std::out_of_range when no source has that name.
  void set_vsource_wave(std::string_view name, Waveform wave);

  [[nodiscard]] const std::vector<Resistor>& resistors() const {
    return resistors_;
  }
  [[nodiscard]] const std::vector<Capacitor>& capacitors() const {
    return capacitors_;
  }
  [[nodiscard]] const std::vector<VSource>& vsources() const {
    return vsources_;
  }
  [[nodiscard]] const std::vector<TigElement>& tigs() const { return tigs_; }

  /// Index of a voltage source by name.
  /// @throws std::out_of_range when absent.
  [[nodiscard]] int vsource_index(std::string_view name) const;

  /// Size of the MNA unknown vector: (node_count-1) voltages + one branch
  /// current per voltage source.
  [[nodiscard]] int unknown_count() const {
    return node_count() - 1 + static_cast<int>(vsources_.size());
  }

 private:
  void check_node(NodeId id) const;

  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<VSource> vsources_;
  std::vector<TigElement> tigs_;
};

}  // namespace cpsinw::spice
