#include "gates/fault_dictionary.hpp"

namespace cpsinw::gates {

RowEffect classify_row(const FaultRow& row) {
  const SwitchEval& f = row.faulty;
  if (f.floating) return RowEffect::kFloating;
  const int lv = logic_value(f.out);
  if (lv >= 0 && lv != row.good) return RowEffect::kWrongValue;
  if (lv < 0) return RowEffect::kMarginal;
  return f.contention ? RowEffect::kIddqOnly : RowEffect::kNone;
}

bool FaultAnalysis::equivalent_to(const FaultAnalysis& other) const {
  if (kind != other.kind || rows.size() != other.rows.size()) return false;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SwitchEval& a = rows[i].faulty;
    const SwitchEval& b = other.rows[i].faulty;
    if (a.out != b.out || a.contention != b.contention ||
        a.floating != b.floating)
      return false;
  }
  return true;
}

bool FaultAnalysis::is_benign() const {
  for (const FaultRow& row : rows)
    if (classify_row(row) != RowEffect::kNone) return false;
  return true;
}

FaultAnalysis analyze_fault(CellKind kind, CellFault fault) {
  FaultAnalysis out;
  out.kind = kind;
  out.fault = fault;
  const int n = input_count(kind);
  const unsigned combos = 1u << n;
  out.rows.reserve(combos);
  out.compiled_logic.fill(-1);
  out.compiled_binary = true;
  for (unsigned v = 0; v < combos; ++v) {
    FaultRow row;
    row.input = v;
    row.good = good_output(kind, v);
    row.faulty = eval_switch(kind, v, fault);
    switch (classify_row(row)) {
      case RowEffect::kWrongValue:
        out.output_detectable = true;
        if (!out.first_output_vector) out.first_output_vector = v;
        break;
      case RowEffect::kMarginal:
        out.marginal_detectable = true;
        break;
      case RowEffect::kFloating:
        out.needs_sequence = true;
        break;
      default:
        break;
    }
    if (row.faulty.contention) {
      out.iddq_detectable = true;
      if (!out.first_iddq_vector) out.first_iddq_vector = v;
      out.compiled_contention |= static_cast<std::uint8_t>(1u << v);
    }
    // Compiled faulty-table view for the table-driven kernels.
    const int lv =
        row.faulty.floating ? -2 : logic_value(row.faulty.out);
    out.compiled_logic[v] = static_cast<std::int8_t>(lv);
    if (lv == 1) out.compiled_truth |= static_cast<std::uint8_t>(1u << v);
    if (lv != 0 && lv != 1) out.compiled_binary = false;
    out.rows.push_back(row);
  }
  return out;
}

std::vector<CellFault> enumerate_transistor_faults(CellKind kind) {
  static const TransistorFault kKinds[] = {
      TransistorFault::kStuckOpen, TransistorFault::kStuckOn,
      TransistorFault::kStuckAtNType, TransistorFault::kStuckAtPType};
  std::vector<CellFault> out;
  const auto& tpl = cell(kind);
  out.reserve(tpl.transistors.size() * 4);
  for (std::size_t t = 0; t < tpl.transistors.size(); ++t)
    for (const TransistorFault k : kKinds)
      out.push_back({static_cast<int>(t), k});
  return out;
}

std::vector<FaultAnalysis> all_fault_analyses(CellKind kind) {
  std::vector<FaultAnalysis> out;
  for (const CellFault& f : enumerate_transistor_faults(kind))
    out.push_back(analyze_fault(kind, f));
  return out;
}

}  // namespace cpsinw::gates
