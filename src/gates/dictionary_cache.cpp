#include "gates/dictionary_cache.hpp"

namespace cpsinw::gates {

const FaultAnalysis& DictionaryCache::lookup(CellKind kind,
                                             const CellFault& fault) const {
  const Key key{static_cast<int>(kind), fault.transistor,
                static_cast<int>(fault.kind)};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    it = entries_
             .emplace(key,
                      std::make_unique<FaultAnalysis>(analyze_fault(kind, fault)))
             .first;
  }
  return *it->second;
}

std::size_t DictionaryCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

DictionaryCache& DictionaryCache::global() {
  // Leaked intentionally: references handed out must outlive every static
  // consumer, and there is no teardown ordering to get wrong.
  static DictionaryCache* cache = new DictionaryCache();
  return *cache;
}

}  // namespace cpsinw::gates
