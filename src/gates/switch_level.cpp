#include "gates/switch_level.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <vector>

namespace cpsinw::gates {

namespace {

// Drive strengths (see header).
constexpr double kNStrong = 4.0;
constexpr double kNWeak = 1.0;
constexpr double kPStrong = 2.0;
constexpr double kPWeak = 0.5;

/// Dense net numbering inside one evaluation:
/// 0 = gnd, 1 = vdd, 2..4 = in0..2, 5..7 = in_bar0..2, 8 = out,
/// 9..10 = internal nets.
constexpr int kGndNet = 0;
constexpr int kVddNet = 1;
constexpr int kInBase = 2;
constexpr int kInBarBase = 5;
constexpr int kOutNet = 8;
constexpr int kInternalBase = 9;
constexpr int kMaxNets = 11;

int net_of(const Sig& sig) {
  switch (sig.kind) {
    case Sig::Kind::kGnd: return kGndNet;
    case Sig::Kind::kVdd: return kVddNet;
    case Sig::Kind::kIn: return kInBase + sig.index;
    case Sig::Kind::kInBar: return kInBarBase + sig.index;
    case Sig::Kind::kOut: return kOutNet;
    case Sig::Kind::kInternal: return kInternalBase + sig.index;
  }
  throw std::logic_error("net_of: bad signal");
}

/// Conduction mode of a device at this input assignment.
enum class Mode { kOff, kN, kP, kShort };

Mode conduction_mode(int cg, int pg, TransistorFault fault) {
  switch (fault) {
    case TransistorFault::kStuckOpen: return Mode::kOff;
    case TransistorFault::kStuckOn: return Mode::kShort;
    case TransistorFault::kStuckAtNType: pg = 1; break;
    case TransistorFault::kStuckAtPType: pg = 0; break;
    default: break;
  }
  // Paper's rule: ON iff CG = PGS = PGD (all '1' -> n-mode, all '0' -> p).
  if (cg == 1 && pg == 1) return Mode::kN;
  if (cg == 0 && pg == 0) return Mode::kP;
  return Mode::kOff;
}

/// Strength with which a conducting device passes logic value `v`.
double pass_strength(Mode mode, int v) {
  switch (mode) {
    case Mode::kN: return v == 0 ? kNStrong : kNWeak;
    case Mode::kP: return v == 1 ? kPStrong : kPWeak;
    case Mode::kShort: return v == 0 ? kNStrong : kPStrong;
    case Mode::kOff: return 0.0;
  }
  return 0.0;
}

}  // namespace

const char* to_string(SwitchValue v) {
  switch (v) {
    case SwitchValue::kStrong0: return "0";
    case SwitchValue::kWeak0: return "0(weak)";
    case SwitchValue::kStrong1: return "1";
    case SwitchValue::kWeak1: return "1(weak)";
    case SwitchValue::kX: return "X";
    case SwitchValue::kZ: return "Z";
  }
  return "?";
}

bool is_definite(SwitchValue v) {
  return v == SwitchValue::kStrong0 || v == SwitchValue::kStrong1;
}

int logic_value(SwitchValue v) {
  switch (v) {
    case SwitchValue::kStrong0: return 0;
    case SwitchValue::kStrong1: return 1;
    // An n-mode device passing '1' settles near V_DD - V_barrier (~0.8 V at
    // DC), above the V_hi threshold: a degraded but valid '1'.
    case SwitchValue::kWeak1: return 1;
    // A p-mode device passing '0' stalls inside the X band (~0.7 V): the
    // PG Schottky barrier cuts hole injection before the level is valid.
    case SwitchValue::kWeak0: return -1;
    default: return -1;
  }
}

SwitchEval eval_switch(CellKind kind, unsigned input_bits, CellFault fault) {
  return eval_switch_dual(
      kind, DualRailBits::consistent(input_bits, input_count(kind)), fault);
}

namespace {

struct Edge {
  int a, b;
  Mode mode;
};

/// Resolves one target net given the conducting edge set: widest path
/// (maximum bottleneck strength) from any driver of each value.
SwitchEval resolve_net(int target, const std::array<int, kMaxNets>& value,
                       const std::vector<Edge>& edges) {
  const auto widest = [&](int v) {
    std::array<double, kMaxNets> best{};
    best.fill(0.0);
    for (int n = 0; n < kMaxNets; ++n) {
      if (n == target) continue;  // the resolved net is never its own driver
      if (n == kOutNet || n >= kInternalBase) continue;  // not sources
      if (value[static_cast<std::size_t>(n)] == v)
        best[static_cast<std::size_t>(n)] = 1e9;
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Edge& e : edges) {
        const double w = pass_strength(e.mode, v);
        if (w <= 0.0) continue;
        const double via_a = std::min(best[static_cast<std::size_t>(e.a)], w);
        if (via_a > best[static_cast<std::size_t>(e.b)]) {
          best[static_cast<std::size_t>(e.b)] = via_a;
          changed = true;
        }
        const double via_b = std::min(best[static_cast<std::size_t>(e.b)], w);
        if (via_b > best[static_cast<std::size_t>(e.a)]) {
          best[static_cast<std::size_t>(e.a)] = via_b;
          changed = true;
        }
      }
    }
    return best[static_cast<std::size_t>(target)];
  };

  SwitchEval r;
  r.drive0 = widest(0);
  r.drive1 = widest(1);
  r.contention = r.drive0 > 0.0 && r.drive1 > 0.0;
  r.floating = r.drive0 == 0.0 && r.drive1 == 0.0;
  if (r.floating) {
    r.out = SwitchValue::kZ;
  } else if (r.drive0 > r.drive1) {
    r.out = r.drive0 >= kNStrong ? SwitchValue::kStrong0 : SwitchValue::kWeak0;
  } else if (r.drive1 > r.drive0) {
    r.out = r.drive1 >= kPStrong ? SwitchValue::kStrong1 : SwitchValue::kWeak1;
  } else {
    r.out = SwitchValue::kX;
  }
  return r;
}

}  // namespace

SwitchEval eval_switch_dual(CellKind kind, DualRailBits rails,
                            CellFault fault) {
  const CellTemplate& tpl = cell(kind);
  if (!fault.is_none() &&
      (fault.transistor < 0 ||
       fault.transistor >= static_cast<int>(tpl.transistors.size())))
    throw std::invalid_argument("eval_switch_dual: fault transistor index");

  // Known net values: rails and inputs are drivers; -1 = unresolved.
  // Internal nets that feed gates (the buffer's inter-stage net) resolve by
  // fixpoint iteration below.
  std::array<int, kMaxNets> value{};
  value.fill(-1);
  value[kGndNet] = 0;
  value[kVddNet] = 1;
  for (int i = 0; i < tpl.n_inputs; ++i) {
    value[static_cast<std::size_t>(kInBase + i)] =
        (rails.true_bits >> i) & 1u;
    value[static_cast<std::size_t>(kInBarBase + i)] =
        (rails.bar_bits >> i) & 1u;
  }

  const auto build_edges = [&](bool& unknown_gate) {
    std::vector<Edge> edges;
    edges.reserve(tpl.transistors.size());
    unknown_gate = false;
    for (std::size_t ti = 0; ti < tpl.transistors.size(); ++ti) {
      const TransistorSpec& tr = tpl.transistors[ti];
      const int cg = value[static_cast<std::size_t>(net_of(tr.cg))];
      const int pg = value[static_cast<std::size_t>(net_of(tr.pg))];
      if (cg < 0 || pg < 0) {
        // Gate not resolved (yet): conservatively non-conducting.
        unknown_gate = true;
        continue;
      }
      const TransistorFault tf = (static_cast<int>(ti) == fault.transistor)
                                     ? fault.kind
                                     : TransistorFault::kNone;
      const Mode mode = conduction_mode(cg, pg, tf);
      if (mode != Mode::kOff)
        edges.push_back({net_of(tr.src), net_of(tr.drn), mode});
    }
    return edges;
  };

  // Fixpoint over internal gate nets (at most n_internal + 1 rounds).
  bool unknown_gate = false;
  std::vector<Edge> edges = build_edges(unknown_gate);
  for (int round = 0; round <= tpl.n_internal; ++round) {
    bool changed = false;
    for (int i = 0; i < tpl.n_internal; ++i) {
      const int net = kInternalBase + i;
      if (value[static_cast<std::size_t>(net)] >= 0) continue;
      const SwitchEval r = resolve_net(net, value, edges);
      const int lv = logic_value(r.out);
      if (lv >= 0) {
        value[static_cast<std::size_t>(net)] = lv;
        changed = true;
      }
    }
    if (!changed) break;
    edges = build_edges(unknown_gate);
  }

  SwitchEval result = resolve_net(kOutNet, value, edges);
  if (result.floating && unknown_gate) {
    // An unresolved gate (X/Z internal net) means the output state is
    // unknown rather than a retained charge.
    result.out = SwitchValue::kX;
    result.floating = false;
  }
  return result;
}

}  // namespace cpsinw::gates
