#include "gates/spice_builder.hpp"

#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>

namespace cpsinw::gates {

const char* to_string(PgTerminal t) {
  return t == PgTerminal::kPgs ? "PGS" : "PGD";
}

namespace {

/// Resolves a symbolic cell signal to a circuit node.
struct NodeMap {
  spice::Circuit& ckt;
  spice::NodeId vdd;
  std::vector<spice::NodeId> ins;
  std::vector<spice::NodeId> in_bars;
  std::vector<spice::NodeId> internals;
  spice::NodeId out;

  [[nodiscard]] spice::NodeId resolve(const Sig& sig) const {
    switch (sig.kind) {
      case Sig::Kind::kGnd: return 0;
      case Sig::Kind::kVdd: return vdd;
      case Sig::Kind::kIn:
        return ins.at(static_cast<std::size_t>(sig.index));
      case Sig::Kind::kInBar:
        return in_bars.at(static_cast<std::size_t>(sig.index));
      case Sig::Kind::kOut: return out;
      case Sig::Kind::kInternal:
        return internals.at(static_cast<std::size_t>(sig.index));
    }
    throw std::logic_error("NodeMap::resolve: bad signal");
  }
};

}  // namespace

CellCircuit build_cell_circuit(const CellCircuitSpec& spec) {
  const CellTemplate& tpl = cell(spec.kind);
  spec.params.validate();
  if (static_cast<int>(spec.inputs.size()) != tpl.n_inputs)
    throw std::invalid_argument("build_cell_circuit: input arity mismatch");
  if (!spec.input_bars.empty() &&
      static_cast<int>(spec.input_bars.size()) != tpl.n_inputs)
    throw std::invalid_argument("build_cell_circuit: input_bars arity");
  const int n_devices = static_cast<int>(tpl.transistors.size());
  for (const auto& f : spec.pg_forces)
    if (f.transistor < 0 || f.transistor >= n_devices)
      throw std::invalid_argument("build_cell_circuit: pg_force index");
  for (const auto& f : spec.pg_floats)
    if (f.transistor < 0 || f.transistor >= n_devices)
      throw std::invalid_argument("build_cell_circuit: pg_float index");
  for (const auto& [t, unused] : spec.device_defects)
    if (t < 0 || t >= n_devices)
      throw std::invalid_argument("build_cell_circuit: defect index");

  CellCircuit cc;
  spice::Circuit& ckt = cc.ckt;
  const double vdd = spec.params.vdd;

  NodeMap nm{ckt, ckt.node("vdd"), {}, {}, {}, 0};
  ckt.add_vsource(CellCircuit::vdd_source(), nm.vdd, 0,
                  spice::Waveform::dc(vdd));

  std::set<spice::NodeId> driven = {0, nm.vdd};
  for (int i = 0; i < tpl.n_inputs; ++i) {
    const std::string base = "a" + std::to_string(i);
    const spice::NodeId n_in = ckt.node(base);
    const spice::NodeId n_bar = ckt.node(base + "_b");
    nm.ins.push_back(n_in);
    nm.in_bars.push_back(n_bar);
    driven.insert(n_in);
    driven.insert(n_bar);
    const spice::Waveform& w = spec.inputs[static_cast<std::size_t>(i)];
    ckt.add_vsource("VIN" + std::to_string(i), n_in, 0, w);
    const spice::Waveform bar =
        (!spec.input_bars.empty() &&
         spec.input_bars[static_cast<std::size_t>(i)])
            ? *spec.input_bars[static_cast<std::size_t>(i)]
            : w.complemented(vdd);
    ckt.add_vsource("VINB" + std::to_string(i), n_bar, 0, bar);
  }
  for (int i = 0; i < tpl.n_internal; ++i)
    nm.internals.push_back(ckt.node("m" + std::to_string(i)));
  nm.out = ckt.node("out");
  cc.out = nm.out;
  cc.ins = nm.ins;
  cc.in_bars = nm.in_bars;
  cc.internals = nm.internals;

  // Shared fault-free model; per-device defective models where requested.
  const auto model_ff =
      std::make_shared<const device::TigModel>(spec.params);
  std::map<int, std::shared_ptr<const device::TigModel>> defective;
  for (const auto& [t, defect] : spec.device_defects)
    defective[t] =
        std::make_shared<const device::TigModel>(spec.params, defect);

  // Capacitance accumulated per node from device parasitics.
  std::map<spice::NodeId, double> node_cap;

  for (int ti = 0; ti < n_devices; ++ti) {
    const TransistorSpec& tr = tpl.transistors[static_cast<std::size_t>(ti)];
    const spice::NodeId n_cg = nm.resolve(tr.cg);
    spice::NodeId n_pgs = nm.resolve(tr.pg);
    spice::NodeId n_pgd = n_pgs;
    const spice::NodeId n_s = nm.resolve(tr.src);
    const spice::NodeId n_d = nm.resolve(tr.drn);

    // Polarity bridge: both PG contacts tied to the forced level.
    for (const auto& f : spec.pg_forces) {
      if (f.transistor != ti) continue;
      const std::string nn = "t" + std::to_string(ti) + "_pgf";
      const spice::NodeId forced = ckt.node(nn);
      ckt.add_vsource("VPGF" + std::to_string(ti), forced, 0,
                      spice::Waveform::dc(f.voltage));
      driven.insert(forced);
      n_pgs = forced;
      n_pgd = forced;
    }
    // Open PG contact: the cut terminal floats at V_cut.
    for (const auto& f : spec.pg_floats) {
      if (f.transistor != ti) continue;
      const std::string nn = "t" + std::to_string(ti) + "_cut" +
                             (f.terminal == PgTerminal::kPgs ? "s" : "d");
      const spice::NodeId cut = ckt.node(nn);
      ckt.add_vsource("VCUT" + std::to_string(ti) +
                          (f.terminal == PgTerminal::kPgs ? "S" : "D"),
                      cut, 0, spice::Waveform::dc(f.vcut));
      driven.insert(cut);
      (f.terminal == PgTerminal::kPgs ? n_pgs : n_pgd) = cut;
    }

    const auto it = defective.find(ti);
    const auto& model = it != defective.end() ? it->second : model_ff;
    ckt.add_tig(tr.label, model, n_cg, n_pgs, n_pgd, n_s, n_d);

    const double cg_f = spec.params.c_gate_f;
    const double sd_f = spec.params.c_sd_f;
    node_cap[n_cg] += cg_f;
    node_cap[n_pgs] += cg_f;
    node_cap[n_pgd] += cg_f;
    node_cap[n_s] += sd_f;
    node_cap[n_d] += sd_f;
  }

  // Attach parasitic capacitance to every undriven (floating-capable) node
  // and the lumped load at the output.
  for (const auto& [node, farads] : node_cap) {
    if (driven.count(node) != 0) continue;
    ckt.add_capacitor("Cp_" + ckt.node_name(node), node, 0, farads);
  }
  if (spec.c_load_f > 0.0)
    ckt.add_capacitor("Cload", cc.out, 0, spec.c_load_f);

  return cc;
}

std::vector<spice::Waveform> dc_inputs(CellKind kind, unsigned bits,
                                       double vdd) {
  std::vector<spice::Waveform> out;
  const int n = input_count(kind);
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    out.push_back(spice::Waveform::dc(((bits >> i) & 1u) ? vdd : 0.0));
  return out;
}

}  // namespace cpsinw::gates
