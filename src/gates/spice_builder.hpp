// Builds transistor-level SPICE circuits for single cells, with hooks for
// every defect class of the paper: device defects (GOS, nanowire break),
// polarity-bridge forces (stuck-at-n/p-type) and floating polarity gates
// held at a V_cut level (the Fig. 5 open-fault experiments).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "device/defects.hpp"
#include "device/params.hpp"
#include "gates/cell.hpp"
#include "spice/netlist.hpp"

namespace cpsinw::gates {

/// Which polarity-gate terminal of a device an open fault detaches.
enum class PgTerminal { kPgs, kPgd };

/// Readable terminal name.
[[nodiscard]] const char* to_string(PgTerminal t);

/// Bridge of both polarity-gate contacts of one transistor to a fixed
/// voltage (stuck-at-n-type: V_DD; stuck-at-p-type: GND).
struct PgForce {
  int transistor = 0;
  double voltage = 0.0;
};

/// Open on one polarity-gate contact; the floating node is represented by
/// an ideal source at the coupled voltage V_cut, exactly as the paper's
/// experiments sweep it.
struct PgFloat {
  int transistor = 0;
  PgTerminal terminal = PgTerminal::kPgs;
  double vcut = 0.0;
};

/// Specification of one cell instance to elaborate into a SPICE circuit.
struct CellCircuitSpec {
  CellKind kind = CellKind::kInv;
  device::TigParams params{};
  /// Lumped output load (approximates the paper's FO4 loading).
  double c_load_f = 8e-15;
  /// Input waveforms, one per logical input (values in volts).
  std::vector<spice::Waveform> inputs;
  /// Optional per-input override of the complement rail; by default the
  /// complement is the mirrored waveform.  Supplying an inconsistent rail
  /// realizes the dual-rail test mode of the channel-break algorithm.
  std::vector<std::optional<spice::Waveform>> input_bars;
  /// Fault injections (all optional, freely combinable).
  std::vector<PgForce> pg_forces;
  std::vector<PgFloat> pg_floats;
  std::vector<std::pair<int, device::DefectState>> device_defects;
};

/// The elaborated circuit plus the handles measurements need.
struct CellCircuit {
  spice::Circuit ckt;
  spice::NodeId out = 0;
  std::vector<spice::NodeId> ins;
  std::vector<spice::NodeId> in_bars;
  std::vector<spice::NodeId> internals;

  /// Name of the supply source (IDDQ is measured through it).
  [[nodiscard]] static const char* vdd_source() { return "VDD"; }
};

/// Elaborates a cell circuit.
/// @throws std::invalid_argument on arity mismatches or bad fault indices
[[nodiscard]] CellCircuit build_cell_circuit(const CellCircuitSpec& spec);

/// DC input waveforms realizing a static input vector (bit i = input i).
[[nodiscard]] std::vector<spice::Waveform> dc_inputs(CellKind kind,
                                                     unsigned bits,
                                                     double vdd);

}  // namespace cpsinw::gates
