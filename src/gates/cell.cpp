#include "gates/cell.hpp"

#include <array>
#include <stdexcept>

namespace cpsinw::gates {

const std::vector<CellKind>& all_cell_kinds() {
  static const std::vector<CellKind> kinds = {
      CellKind::kInv,  CellKind::kBuf,  CellKind::kNand2, CellKind::kNor2,
      CellKind::kXor2, CellKind::kXor3, CellKind::kMaj3};
  return kinds;
}

const char* to_string(CellKind kind) {
  switch (kind) {
    case CellKind::kInv: return "INV";
    case CellKind::kBuf: return "BUF";
    case CellKind::kNand2: return "NAND2";
    case CellKind::kNor2: return "NOR2";
    case CellKind::kXor2: return "XOR2";
    case CellKind::kXor3: return "XOR3";
    case CellKind::kMaj3: return "MAJ3";
  }
  return "?";
}

int input_count(CellKind kind) {
  switch (kind) {
    case CellKind::kInv:
    case CellKind::kBuf: return 1;
    case CellKind::kNand2:
    case CellKind::kNor2:
    case CellKind::kXor2: return 2;
    case CellKind::kXor3:
    case CellKind::kMaj3: return 3;
  }
  return 0;
}

bool is_dynamic_polarity(CellKind kind) {
  switch (kind) {
    case CellKind::kXor2:
    case CellKind::kXor3:
    case CellKind::kMaj3: return true;
    default: return false;
  }
}

std::uint8_t good_output(CellKind kind, unsigned input_bits) {
  const unsigned a = input_bits & 1u;
  const unsigned b = (input_bits >> 1) & 1u;
  const unsigned c = (input_bits >> 2) & 1u;
  switch (kind) {
    case CellKind::kInv: return static_cast<std::uint8_t>(a ^ 1u);
    case CellKind::kBuf: return static_cast<std::uint8_t>(a);
    case CellKind::kNand2: return static_cast<std::uint8_t>((a & b) ^ 1u);
    case CellKind::kNor2: return static_cast<std::uint8_t>((a | b) ^ 1u);
    case CellKind::kXor2: return static_cast<std::uint8_t>(a ^ b);
    case CellKind::kXor3: return static_cast<std::uint8_t>(a ^ b ^ c);
    case CellKind::kMaj3:
      return static_cast<std::uint8_t>(((a & b) | (b & c) | (a & c)));
  }
  return 0;
}

namespace {

// --- Static-Polarity cells ------------------------------------------------
// Pull-up devices are p-configured (PG = '0'), pull-down n-configured
// (PG = '1'), exactly as the paper states in Sec. V-A.

CellTemplate make_inv() {
  CellTemplate t;
  t.kind = CellKind::kInv;
  t.name = "INV";
  t.n_inputs = 1;
  t.dynamic_polarity = false;
  t.transistors = {
      {"t1", Sig::in(0), Sig::gnd(), Sig::vdd(), Sig::out()},
      {"t3", Sig::in(0), Sig::vdd(), Sig::gnd(), Sig::out()},
  };
  return t;
}

CellTemplate make_buf() {
  CellTemplate t;
  t.kind = CellKind::kBuf;
  t.name = "BUF";
  t.n_inputs = 1;
  t.dynamic_polarity = false;
  t.n_internal = 1;
  t.transistors = {
      {"t1", Sig::in(0), Sig::gnd(), Sig::vdd(), Sig::internal(0)},
      {"t2", Sig::in(0), Sig::vdd(), Sig::gnd(), Sig::internal(0)},
      {"t3", Sig::internal(0), Sig::gnd(), Sig::vdd(), Sig::out()},
      {"t4", Sig::internal(0), Sig::vdd(), Sig::gnd(), Sig::out()},
  };
  return t;
}

CellTemplate make_nand2() {
  CellTemplate t;
  t.kind = CellKind::kNand2;
  t.name = "NAND2";
  t.n_inputs = 2;
  t.dynamic_polarity = false;
  t.n_internal = 1;
  t.transistors = {
      // Parallel p-type pull-up.
      {"t1", Sig::in(0), Sig::gnd(), Sig::vdd(), Sig::out()},
      {"t2", Sig::in(1), Sig::gnd(), Sig::vdd(), Sig::out()},
      // Series n-type pull-down; t3 adjacent to the output, t4 to ground
      // (the paper observes t3's leakage is dominated by t4).
      {"t3", Sig::in(0), Sig::vdd(), Sig::internal(0), Sig::out()},
      {"t4", Sig::in(1), Sig::vdd(), Sig::gnd(), Sig::internal(0)},
  };
  return t;
}

CellTemplate make_nor2() {
  CellTemplate t;
  t.kind = CellKind::kNor2;
  t.name = "NOR2";
  t.n_inputs = 2;
  t.dynamic_polarity = false;
  t.n_internal = 1;
  t.transistors = {
      // Series p-type pull-up.
      {"t1", Sig::in(0), Sig::gnd(), Sig::vdd(), Sig::internal(0)},
      {"t2", Sig::in(1), Sig::gnd(), Sig::internal(0), Sig::out()},
      // Parallel n-type pull-down.
      {"t3", Sig::in(0), Sig::vdd(), Sig::gnd(), Sig::out()},
      {"t4", Sig::in(1), Sig::vdd(), Sig::gnd(), Sig::out()},
  };
  return t;
}

// --- Dynamic-Polarity cells -----------------------------------------------
// The paper's conduction rule: a device is ON iff CG = PGS = PGD.  A pair
// {CG=X, PG=Y} / {CG=X', PG=Y'} therefore conducts iff X != Y... see
// DESIGN.md 4.2 for the derivation of each pair's conduction condition.

CellTemplate make_xor2() {
  CellTemplate t;
  t.kind = CellKind::kXor2;
  t.name = "XOR2";
  t.n_inputs = 2;
  t.dynamic_polarity = true;
  t.transistors = {
      // Pull-up transmission pair: conducts iff A != B
      // (t1: n-mode at A=1,B=0; p-mode at A=0,B=1 — t2 complementary).
      {"t1", Sig::in_bar(1), Sig::in(0), Sig::vdd(), Sig::out()},
      {"t2", Sig::in(1), Sig::in_bar(0), Sig::vdd(), Sig::out()},
      // Pull-down transmission pair: conducts iff A == B.
      {"t3", Sig::in(1), Sig::in(0), Sig::gnd(), Sig::out()},
      {"t4", Sig::in_bar(1), Sig::in_bar(0), Sig::gnd(), Sig::out()},
  };
  return t;
}

CellTemplate make_xor3() {
  CellTemplate t;
  t.kind = CellKind::kXor3;
  t.name = "XOR3";
  t.n_inputs = 3;
  t.dynamic_polarity = true;
  t.transistors = {
      // Passes C-bar when A != B ...
      {"t1", Sig::in_bar(1), Sig::in(0), Sig::in_bar(2), Sig::out()},
      {"t2", Sig::in(1), Sig::in_bar(0), Sig::in_bar(2), Sig::out()},
      // ... and C when A == B:  A xor B xor C.
      {"t3", Sig::in(1), Sig::in(0), Sig::in(2), Sig::out()},
      {"t4", Sig::in_bar(1), Sig::in_bar(0), Sig::in(2), Sig::out()},
  };
  return t;
}

CellTemplate make_maj3() {
  CellTemplate t;
  t.kind = CellKind::kMaj3;
  t.name = "MAJ3";
  t.n_inputs = 3;
  t.dynamic_polarity = true;
  t.transistors = {
      // Passes C when A != B ...
      {"t1", Sig::in_bar(1), Sig::in(0), Sig::in(2), Sig::out()},
      {"t2", Sig::in(1), Sig::in_bar(0), Sig::in(2), Sig::out()},
      // ... and A when A == B:  MAJ(A,B,C) = (A==B) ? A : C.
      {"t3", Sig::in(1), Sig::in(0), Sig::in(0), Sig::out()},
      {"t4", Sig::in_bar(1), Sig::in_bar(0), Sig::in(0), Sig::out()},
  };
  return t;
}

}  // namespace

const CellTemplate& cell(CellKind kind) {
  static const CellTemplate inv = make_inv();
  static const CellTemplate buf = make_buf();
  static const CellTemplate nand2 = make_nand2();
  static const CellTemplate nor2 = make_nor2();
  static const CellTemplate xor2 = make_xor2();
  static const CellTemplate xor3 = make_xor3();
  static const CellTemplate maj3 = make_maj3();
  switch (kind) {
    case CellKind::kInv: return inv;
    case CellKind::kBuf: return buf;
    case CellKind::kNand2: return nand2;
    case CellKind::kNor2: return nor2;
    case CellKind::kXor2: return xor2;
    case CellKind::kXor3: return xor3;
    case CellKind::kMaj3: return maj3;
  }
  throw std::invalid_argument("cell: unknown kind");
}

const char* to_string(TransistorFault kind) {
  switch (kind) {
    case TransistorFault::kNone: return "none";
    case TransistorFault::kStuckOpen: return "stuck-open";
    case TransistorFault::kStuckOn: return "stuck-on";
    case TransistorFault::kStuckAtNType: return "stuck-at-n-type";
    case TransistorFault::kStuckAtPType: return "stuck-at-p-type";
  }
  return "?";
}

}  // namespace cpsinw::gates
