// Transistor-level templates of the six controllable-polarity logic gates
// of paper Fig. 2: the Static-Polarity family (INV, NAND2, NOR2 — polarity
// gates tied to the rails) and the Dynamic-Polarity family (XOR2, XOR3,
// MAJ3 — polarity gates driven by input signals), plus a two-stage buffer.
//
// Transistor labels follow the paper's positional convention: t1/t2 form
// the pull-up (or first pass pair), t3/t4 the pull-down (or second pair).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cpsinw::gates {

/// Gate types available in the library.
enum class CellKind {
  kInv,
  kBuf,
  kNand2,
  kNor2,
  kXor2,
  kXor3,
  kMaj3,
};

/// All kinds, in a stable order (useful for parameterized tests/benches).
[[nodiscard]] const std::vector<CellKind>& all_cell_kinds();

/// Short cell name ("INV", "XOR2", ...).
[[nodiscard]] const char* to_string(CellKind kind);

/// Number of logical inputs of a cell.
[[nodiscard]] int input_count(CellKind kind);

/// True for Dynamic-Polarity cells (polarity gates driven by inputs).
[[nodiscard]] bool is_dynamic_polarity(CellKind kind);

/// Boolean function of the cell: bit i of `input_bits` is input i.
[[nodiscard]] std::uint8_t good_output(CellKind kind, unsigned input_bits);

/// Symbolic reference to a net inside a cell template.
struct Sig {
  enum class Kind : std::uint8_t {
    kGnd,       ///< ground rail ('0')
    kVdd,       ///< supply rail ('1')
    kIn,        ///< input i (true rail)
    kInBar,     ///< complement of input i (separate physical net)
    kOut,       ///< cell output
    kInternal,  ///< internal net i (series stacks, buffer stage)
  };
  Kind kind = Kind::kGnd;
  int index = 0;

  [[nodiscard]] static Sig gnd() { return {Kind::kGnd, 0}; }
  [[nodiscard]] static Sig vdd() { return {Kind::kVdd, 0}; }
  [[nodiscard]] static Sig in(int i) { return {Kind::kIn, i}; }
  [[nodiscard]] static Sig in_bar(int i) { return {Kind::kInBar, i}; }
  [[nodiscard]] static Sig out() { return {Kind::kOut, 0}; }
  [[nodiscard]] static Sig internal(int i) { return {Kind::kInternal, i}; }

  [[nodiscard]] bool operator==(const Sig&) const = default;
};

/// One TIG transistor inside a cell template.  In all Fig. 2 cells the two
/// polarity gates of a device are tied to the same signal; they remain
/// physically distinct terminals (fault injection can separate them).
/// `src` is the terminal adjacent to PGS.
struct TransistorSpec {
  std::string label;  ///< paper-style name: "t1".."t4"
  Sig cg;
  Sig pg;
  Sig src;
  Sig drn;
};

/// A complete cell template.
struct CellTemplate {
  CellKind kind = CellKind::kInv;
  std::string name;
  int n_inputs = 1;
  bool dynamic_polarity = false;
  int n_internal = 0;  ///< number of internal nets
  std::vector<TransistorSpec> transistors;
};

/// The template of a cell kind (static storage, never mutated).
[[nodiscard]] const CellTemplate& cell(CellKind kind);

/// Transistor-level fault kinds modeled at switch level (paper Secs. V-B,
/// V-C).  Floating-PG defects are analog-parametric and live at the SPICE
/// level (Fig. 5 experiments).
enum class TransistorFault : std::uint8_t {
  kNone,
  kStuckOpen,     ///< channel break: device never conducts
  kStuckOn,       ///< device always conducts (resistive short)
  kStuckAtNType,  ///< polarity contact bridged to '1' (paper's new model)
  kStuckAtPType,  ///< polarity contact bridged to '0' (paper's new model)
};

/// Readable fault name.
[[nodiscard]] const char* to_string(TransistorFault kind);

/// A fault bound to one transistor of a cell.
struct CellFault {
  int transistor = -1;  ///< index into CellTemplate::transistors; -1 = none
  TransistorFault kind = TransistorFault::kNone;

  [[nodiscard]] bool is_none() const {
    return kind == TransistorFault::kNone || transistor < 0;
  }
  [[nodiscard]] bool operator==(const CellFault&) const = default;
};

}  // namespace cpsinw::gates
