// Exhaustive switch-level fault analysis per cell: for every transistor
// fault, the faulty behaviour over all input vectors, plus detectability
// classification.  These dictionaries are what the logic-level fault
// simulator and the functional-fault ATPG consume.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "gates/cell.hpp"
#include "gates/switch_level.hpp"

namespace cpsinw::gates {

/// Behaviour of a faulty cell at one input vector.
struct FaultRow {
  unsigned input = 0;       ///< input combination (bit i = input i)
  std::uint8_t good = 0;    ///< fault-free output
  SwitchEval faulty;        ///< switch-level evaluation with the fault
};

/// How a single row compares against the good machine.
enum class RowEffect {
  kNone,        ///< identical definite value, no contention
  kIddqOnly,    ///< correct output but contention (elevated IDDQ)
  kWrongValue,  ///< definite opposite logic value at the output
  kMarginal,    ///< X or degraded (weak) level at the output
  kFloating,    ///< output floats (sequence-dependent behaviour)
};

/// Classifies one row.
[[nodiscard]] RowEffect classify_row(const FaultRow& row);

/// Complete dictionary entry for (cell, fault).
struct FaultAnalysis {
  CellKind kind = CellKind::kInv;
  CellFault fault;
  std::vector<FaultRow> rows;  ///< 2^n rows in input order

  bool output_detectable = false;    ///< some row is kWrongValue
  bool marginal_detectable = false;  ///< some row is kMarginal
  bool iddq_detectable = false;      ///< some row has contention
  bool needs_sequence = false;       ///< floating rows exist (stuck-open)

  std::optional<unsigned> first_output_vector;  ///< first kWrongValue row
  std::optional<unsigned> first_iddq_vector;    ///< first contention row

  // Compiled faulty-table view, derived once alongside the rows — what the
  // table-driven evaluation kernels consume (see logic::CompiledCircuit).
  // Indexed by the local binary input vector (bit i = input i); only the
  // cell's 2^n low entries/bits are meaningful.
  std::array<std::int8_t, 8> compiled_logic{};  ///< faulty_logic(v) per row
  std::uint8_t compiled_truth = 0;       ///< bit v: faulty output is 1 at v
  std::uint8_t compiled_contention = 0;  ///< bit v: row v contends (IDDQ)
  /// Every row resolves to a definite binary value (no floating rows to
  /// retain, no marginal rows to propagate as X): the fault behaves as a
  /// combinational table substitution, so packed 64-pattern evaluation is
  /// valid.  Equivalent to !needs_sequence && !marginal_detectable.
  bool compiled_binary = false;

  /// 4-valued faulty output for the logic simulator:
  /// 0, 1, -1 = X/marginal, -2 = Z (retains).
  [[nodiscard]] int faulty_logic(unsigned input) const {
    assert(input < rows.size());
    return compiled_logic[input];
  }

  /// True when the fault is behaviourally identical to another analysis
  /// (used for fault collapsing).
  [[nodiscard]] bool equivalent_to(const FaultAnalysis& other) const;

  /// True when the fault has no effect at any input vector (e.g. bridging
  /// a rail-tied polarity gate to the rail it is already tied to): not an
  /// electrical defect at all.
  [[nodiscard]] bool is_benign() const;
};

/// Runs the exhaustive analysis for one fault.
[[nodiscard]] FaultAnalysis analyze_fault(CellKind kind, CellFault fault);

/// Enumerates all distinct transistor faults of a cell
/// (4 fault kinds x transistor count).
[[nodiscard]] std::vector<CellFault> enumerate_transistor_faults(
    CellKind kind);

/// Analyses for every transistor fault of a cell.
[[nodiscard]] std::vector<FaultAnalysis> all_fault_analyses(CellKind kind);

}  // namespace cpsinw::gates
