// Memoized switch-level fault dictionaries.  analyze_fault() re-derives a
// cell's faulty truth table from scratch (2^n switch-level evaluations);
// every fault-simulation, ATPG and collapsing pass used to call it ad hoc,
// re-paying that cost per fault or even per pattern.  DictionaryCache
// derives each (CellKind, CellFault) dictionary exactly once and hands out
// stable references, so a whole campaign — or several campaigns sharing
// the global() instance — reuses one table per distinct fault.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "gates/fault_dictionary.hpp"

namespace cpsinw::gates {

/// Thread-safe memoization of analyze_fault().  Lookups take one mutex
/// acquisition; entries are heap-allocated so returned references stay
/// valid for the cache's lifetime regardless of later insertions.
class DictionaryCache {
 public:
  DictionaryCache() = default;
  DictionaryCache(const DictionaryCache&) = delete;
  DictionaryCache& operator=(const DictionaryCache&) = delete;

  /// The dictionary of (kind, fault), derived on first use.  The returned
  /// reference remains valid until the cache is destroyed.
  [[nodiscard]] const FaultAnalysis& lookup(CellKind kind,
                                            const CellFault& fault) const;

  /// Number of distinct dictionaries derived so far.
  [[nodiscard]] std::size_t size() const;

  /// Process-wide shared instance (never destroyed before exit).  All
  /// library call sites that previously re-derived dictionaries ad hoc go
  /// through this, so campaigns, ATPG and diagnosis share one table set.
  [[nodiscard]] static DictionaryCache& global();

 private:
  using Key = std::tuple<int, int, int>;  ///< (kind, transistor, fault kind)

  mutable std::mutex mutex_;
  /// node-based map: value addresses are stable across insertions.
  mutable std::map<Key, std::unique_ptr<FaultAnalysis>> entries_;
};

}  // namespace cpsinw::gates
