// Switch-level evaluation of CP cells with drive-strength resolution.
//
// This is the discrete abstraction of the analog behaviour that the SPICE
// engine computes: conducting devices form paths from drivers (rails and
// input signals) to the output; each path carries its driver's value with a
// strength determined by the conduction mode and the value being passed:
//
//   n-mode passing '0'  -> strong (4.0)     electrons pull down hard
//   n-mode passing '1'  -> weak   (1.0)     source follower, ~Vdd-Vth level
//   p-mode passing '1'  -> strong (2.0)     mu_p = mu_n / 2
//   p-mode passing '0'  -> weak   (0.5)     degraded-low level
//
// Contention (both values driven) resolves to the stronger side and raises
// the IDDQ flag; equal strengths give X.  No conducting path gives Z (the
// output floats and retains its previous value — the stuck-open memory
// effect that motivates two-pattern testing).
//
// The evaluator accepts *inconsistent dual-rail inputs* (in != not in_bar):
// this is exactly the test-mode capability the paper's channel-break
// detection algorithm exploits (Sec. V-C; DESIGN.md 4.4).
#pragma once

#include <cstdint>

#include "gates/cell.hpp"

namespace cpsinw::gates {

/// Resolved switch-level output value.
enum class SwitchValue : std::uint8_t {
  kStrong0,  ///< full-swing logic 0
  kWeak0,    ///< degraded low level (p-mode passing 0): reads as marginal
  kStrong1,  ///< full-swing logic 1
  kWeak1,    ///< degraded high level (n-mode passing 1)
  kX,        ///< unresolvable contention
  kZ,        ///< floating: retains previous charge
};

/// Readable value name.
[[nodiscard]] const char* to_string(SwitchValue v);

/// True when the value reads as a definite logic level.
[[nodiscard]] bool is_definite(SwitchValue v);

/// Logic interpretation: 0, 1, or -1 for X/Z/marginal.  kWeak1 reads as a
/// (degraded) 1 — the DC level settles near V_DD - V_barrier, above V_hi;
/// kWeak0 reads as marginal — hole injection stalls inside the X band.
[[nodiscard]] int logic_value(SwitchValue v);

/// Full evaluation result.
struct SwitchEval {
  SwitchValue out = SwitchValue::kZ;
  bool contention = false;  ///< simultaneous 0- and 1-paths: elevated IDDQ
  bool floating = false;    ///< no conducting path to the output
  double drive0 = 0.0;      ///< strongest 0-path
  double drive1 = 0.0;      ///< strongest 1-path
};

/// Dual-rail input assignment: bit i of `true_bits` drives input net i,
/// bit i of `bar_bits` drives the complement net.  Consistent operation has
/// bar_bits == ~true_bits (masked); the channel-break procedure deliberately
/// violates this.
struct DualRailBits {
  unsigned true_bits = 0;
  unsigned bar_bits = 0;

  /// Consistent assignment for a plain input vector.
  [[nodiscard]] static DualRailBits consistent(unsigned bits, int n_inputs) {
    const unsigned mask = (1u << n_inputs) - 1u;
    return {bits & mask, ~bits & mask};
  }
};

/// Evaluates a cell with consistent dual-rail inputs.
/// @param input_bits bit i = logical input i
/// @param fault optional transistor fault to superimpose
[[nodiscard]] SwitchEval eval_switch(CellKind kind, unsigned input_bits,
                                     CellFault fault = {});

/// Evaluates a cell with explicit (possibly inconsistent) dual rails.
/// @throws std::invalid_argument for an out-of-range fault transistor
[[nodiscard]] SwitchEval eval_switch_dual(CellKind kind, DualRailBits rails,
                                          CellFault fault = {});

}  // namespace cpsinw::gates
