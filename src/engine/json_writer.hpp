// Minimal append-only JSON writer with one canonical output form: stable
// key order is the caller's responsibility, doubles always format via
// "%.10g", strings escape per RFC 8259.  Shared by the campaign report
// and the shard_io wire protocol so an escaping or float-format change
// can never diverge the two.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>

namespace cpsinw::engine {

class JsonWriter {
 public:
  void key(const std::string& k) {
    comma();
    append_quoted(k);
    out_ += ':';
    fresh_ = true;
  }
  void value(const std::string& v) {
    comma();
    append_quoted(v);
  }
  void value(const char* v) { value(std::string(v)); }
  void value(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
  }
  void value(int v) {
    comma();
    out_ += std::to_string(v);
  }
  void value(double v) {
    comma();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    out_ += buf;
  }
  void value(bool v) {
    comma();
    out_ += v ? "true" : "false";
  }
  void open_object() {
    comma();
    out_ += '{';
    fresh_ = true;
  }
  void close_object() {
    out_ += '}';
    fresh_ = false;
  }
  void open_array() {
    comma();
    out_ += '[';
    fresh_ = true;
  }
  void close_array() {
    out_ += ']';
    fresh_ = false;
  }
  [[nodiscard]] std::string str() && { return std::move(out_); }

 private:
  void comma() {
    if (!fresh_) out_ += ',';
    fresh_ = false;
  }
  /// Strings come from caller-chosen names — escape per RFC 8259.
  void append_quoted(const std::string& s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        case '\r': out_ += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }
  std::string out_;
  bool fresh_ = true;
};

}  // namespace cpsinw::engine
