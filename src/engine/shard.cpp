#include "engine/shard.hpp"

#include <chrono>
#include <optional>
#include <stdexcept>

#include "engine/telemetry.hpp"
#include "logic/logic_sim.hpp"

namespace cpsinw::engine {

const char* to_string(FaultClass cls) {
  switch (cls) {
    case FaultClass::kLineStuckAt: return "line_stuck_at";
    case FaultClass::kPolarity: return "polarity";
    case FaultClass::kStuckOpen: return "stuck_open";
    case FaultClass::kStuckOn: return "stuck_on";
    case FaultClass::kBridge: return "bridge";
  }
  return "?";
}

FaultClass classify(const faults::Fault& fault) {
  if (fault.site != faults::FaultSite::kGateTransistor)
    return FaultClass::kLineStuckAt;
  switch (fault.cell_fault.kind) {
    case gates::TransistorFault::kStuckOpen: return FaultClass::kStuckOpen;
    case gates::TransistorFault::kStuckOn: return FaultClass::kStuckOn;
    case gates::TransistorFault::kStuckAtNType:
    case gates::TransistorFault::kStuckAtPType:
      return FaultClass::kPolarity;
    case gates::TransistorFault::kNone: break;
  }
  throw std::invalid_argument("classify: fault without a kind");
}

std::vector<Shard> make_shards(int job, std::size_t fault_count,
                               std::size_t shard_size,
                               const util::SplitMix64& job_rng) {
  if (shard_size == 0)
    throw std::invalid_argument("make_shards: shard_size must be > 0");
  std::vector<Shard> shards;
  int index = 0;
  for (std::size_t begin = 0; begin < fault_count; begin += shard_size) {
    Shard s;
    s.job = job;
    s.index = index;
    s.begin = begin;
    s.end = std::min(fault_count, begin + shard_size);
    s.rng = job_rng.fork(static_cast<std::uint64_t>(index));
    shards.push_back(s);
    ++index;
  }
  return shards;
}

namespace {

/// Simulates one bridge over the pattern sequence, mirroring the hit
/// semantics of FaultSimulator::simulate_transistor_fault.  The good
/// machine comes from the job's shared context — simulated once per
/// pattern set, serving both the PO comparison and the IDDQ excitation
/// check for every bridge of every shard.
faults::DetectionRecord simulate_bridge_fault(
    const faults::EvalContext& ctx, const faults::BridgeFault& bridge,
    const faults::FaultSimOptions& options) {
  const logic::Circuit& ckt = ctx.circuit();
  faults::DetectionRecord rec;
  for (std::size_t pi = 0; pi < ctx.pattern_count(); ++pi) {
    const logic::SimResult& good = ctx.good(pi);
    bool hit = false;
    if (!rec.detected_output) {
      const std::vector<logic::LogicV> bad =
          faults::simulate_bridge(ckt, bridge, ctx.patterns()[pi]);
      for (const logic::NetId po : ckt.primary_outputs()) {
        const logic::LogicV g = good.value(po);
        const logic::LogicV b = bad[static_cast<std::size_t>(po)];
        if (logic::is_binary(g) && logic::is_binary(b) && g != b) {
          rec.detected_output = true;
          hit = true;
          break;
        }
      }
    }
    if (options.observe_iddq) {
      const logic::LogicV va = good.value(bridge.a);
      const logic::LogicV vb = good.value(bridge.b);
      if (logic::is_binary(va) && logic::is_binary(vb) && va != vb) {
        rec.detected_iddq = true;
        hit = true;
      }
    }
    if (hit && rec.first_pattern < 0)
      rec.first_pattern = static_cast<int>(pi);
    if (rec.first_pattern >= 0 &&
        options.detection_mode == faults::DetectionMode::kFirstOnly)
      break;  // first-only semantics: stop at the first counted detection
    if (rec.detected_output &&
        (rec.detected_iddq || !options.observe_iddq))
      break;  // nothing left to learn about this bridge
  }
  return rec;
}

}  // namespace

ShardResult run_shard(const faults::EvalContext& ctx,
                      const std::vector<CampaignFault>& universe,
                      const Shard& shard, const ShardExecOptions& options) {
  // Every backend funnels through here — the in-process executors against
  // the job's shared context, the shard worker against a context rebuilt
  // from the wire — so this body is the single definition of what a shard
  // computes.
  if (shard.begin > shard.end || shard.end > universe.size())
    throw std::invalid_argument("run_shard: shard range out of bounds");

  const auto t0 = std::chrono::steady_clock::now();
  ShardResult out;
  out.job = shard.job;
  out.index = shard.index;
  out.results.resize(shard.end - shard.begin);

  // Sampling decisions first, in slice order, so the RNG stream consumed
  // per fault is independent of how the work below is batched.
  util::SplitMix64 rng = shard.rng;
  const bool sampling = options.fault_sample_fraction < 1.0;
  for (std::size_t i = shard.begin; i < shard.end; ++i) {
    FaultResult& r = out.results[i - shard.begin];
    r.cls = universe[i].cls;
    if (sampling && !rng.chance(options.fault_sample_fraction))
      r.sampled_out = true;
  }

  // Circuit faults (line + transistor) go through the shared simulator
  // hook in one gathered batch; bridges have their own evaluation.
  std::vector<faults::Fault> gathered;
  std::vector<std::size_t> gathered_slot;
  for (std::size_t i = shard.begin; i < shard.end; ++i) {
    const FaultResult& r = out.results[i - shard.begin];
    if (r.sampled_out || universe[i].cls == FaultClass::kBridge) continue;
    gathered.push_back(universe[i].fault);
    gathered_slot.push_back(i - shard.begin);
  }
  faults::LineBatchStats batch_stats;
  if (!gathered.empty()) {
    const faults::FaultSimulator fsim(ctx.circuit());
    const std::vector<faults::DetectionRecord> records = fsim.run_range(
        ctx, gathered, 0, gathered.size(), options.sim, &batch_stats);
    for (std::size_t k = 0; k < gathered.size(); ++k)
      out.results[gathered_slot[k]].record = records[k];
  }

  for (std::size_t i = shard.begin; i < shard.end; ++i) {
    FaultResult& r = out.results[i - shard.begin];
    if (r.sampled_out || r.cls != FaultClass::kBridge) continue;
    r.record = simulate_bridge_fault(ctx, universe[i].bridge, options.sim);
  }

  out.elapsed_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

  // Fault accounting lands in the process-wide registry in one batch per
  // shard, never inside the fault loops: the packed simulation hot path
  // stays metric-free (and CPSINW_TELEMETRY_OFF compiles even this out).
  CPSINW_TELEM([&] {
    telemetry::Registry& reg = telemetry::Registry::global();
    std::size_t sampled_out = 0;
    std::size_t bridges = 0;
    for (const FaultResult& r : out.results) {
      if (r.sampled_out)
        ++sampled_out;
      else if (r.cls == FaultClass::kBridge)
        ++bridges;
    }
    reg.counter("shard.shards_run").add();
    reg.counter("shard.faults_simulated")
        .add(out.results.size() - sampled_out);
    reg.counter("shard.faults_sampled_out").add(sampled_out);
    reg.counter("shard.bridges_simulated").add(bridges);
    reg.histogram("shard.exec_s").record(out.elapsed_s);
    // Batched line-kernel occupancy: batch_width counts lanes actually
    // occupied (not kBatchLanes per pass), so batch_width /
    // (batch_groups * kBatchLanes) is the mean lane fill across kernel
    // invocations (1.0 = every lane carried a fault).  faults_batched
    // counts each line fault once even when dropping strips re-group it;
    // faults_cpt counts faults resolved by critical-path tracing with no
    // kernel pass at all.  The fill histogram reuses the power-of-two-µs
    // buckets by encoding a group of k faults as 2^(k-1) µs, so fills
    // 1..kBatchLanes land in distinct buckets 1..kBatchLanes of
    // shard.batch_fill.
    reg.counter("engine.faults_batched").add(batch_stats.faults);
    reg.counter("engine.batch_groups").add(batch_stats.groups);
    reg.counter("engine.batch_width").add(batch_stats.lane_slots);
    reg.counter("engine.faults_cpt").add(batch_stats.cpt_faults);
    auto& fill_hist = reg.histogram("shard.batch_fill");
    for (std::size_t k = 0; k < batch_stats.fill.size(); ++k) {
      const double encoded_s = static_cast<double>(1ull << k) * 1e-6;
      for (std::size_t g = 0; g < batch_stats.fill[k]; ++g)
        fill_hist.record(encoded_s);
    }
  }());
  return out;
}

ShardResult run_shard(const logic::Circuit& ckt,
                      const std::vector<CampaignFault>& universe,
                      const std::vector<logic::Pattern>& patterns,
                      const Shard& shard, const ShardExecOptions& options) {
  const faults::EvalContext ctx(ckt, patterns);
  return run_shard(ctx, universe, shard, options);
}

}  // namespace cpsinw::engine
