#include "engine/remote_executor.hpp"

#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "engine/net.hpp"
#include "engine/shard_io.hpp"
#include "engine/telemetry.hpp"
#include "util/log.hpp"

namespace cpsinw::engine {

namespace {

using util::LogLevel;

std::string first_error(const std::vector<std::string>& errors) {
  for (const std::string& e : errors)
    if (!e.empty()) return e;
  return {};
}

std::string endpoint_label(const net::Endpoint& ep) {
  return ep.host + ":" + std::to_string(ep.port);
}

/// Shared endpoint state for one campaign run: in-flight bookkeeping,
/// consecutive-failure counts, and the quarantine flag.  acquire/release
/// only decide *where* a shard attempt runs — results land in canonical
/// slots regardless, so none of this scheduling can change the report.
class EndpointRoster {
 public:
  EndpointRoster(const std::vector<net::Endpoint>& endpoints,
                 int max_in_flight, int quarantine_failures)
      : max_in_flight_(max_in_flight),
        quarantine_failures_(quarantine_failures) {
    states_.reserve(endpoints.size());
    for (const net::Endpoint& ep : endpoints) states_.push_back({ep});
  }

  /// Blocks until some endpoint not in `tried` is live with a free slot,
  /// then claims it (least-loaded first, index as the tie-break).
  /// Returns -1 once every untried endpoint is quarantined — the caller
  /// is out of failover options.
  [[nodiscard]] int acquire(const std::vector<char>& tried) {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      int best = -1;
      bool any_candidate = false;
      for (std::size_t i = 0; i < states_.size(); ++i) {
        if (states_[i].dead || tried[i] != 0) continue;
        any_candidate = true;
        if (states_[i].in_flight >= max_in_flight_) continue;
        if (best < 0 ||
            states_[i].in_flight <
                states_[static_cast<std::size_t>(best)].in_flight)
          best = static_cast<int>(i);
      }
      if (best >= 0) {
        ++states_[static_cast<std::size_t>(best)].in_flight;
        return best;
      }
      if (!any_candidate) return -1;
      cv_.wait(lock);  // candidates exist but are all at capacity
    }
  }

  /// Returns true when this release newly quarantined the endpoint (the
  /// caller owns the one log line / metric tick for that transition).
  bool release(int index, bool success) {
    bool newly_dead = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      State& s = states_[static_cast<std::size_t>(index)];
      --s.in_flight;
      if (success) {
        s.consecutive_failures = 0;
      } else if (!s.dead &&
                 ++s.consecutive_failures >= quarantine_failures_) {
        s.dead = true;  // retired for the rest of the campaign
        newly_dead = true;
      }
    }
    cv_.notify_all();
    return newly_dead;
  }

  [[nodiscard]] const net::Endpoint& endpoint(int index) const {
    return states_[static_cast<std::size_t>(index)].ep;
  }

 private:
  struct State {
    net::Endpoint ep;
    int in_flight = 0;
    int consecutive_failures = 0;
    bool dead = false;
  };

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<State> states_;
  const int max_in_flight_;
  const int quarantine_failures_;
};

/// Closes a socket on every exit path of an exchange.
struct FdCloser {
  int fd;
  ~FdCloser() { close(fd); }
};

/// Per-endpoint metric handles, resolved once per run() (registry lookups
/// take a lock; updates are relaxed atomics).  All null when telemetry is
/// off.
struct EndpointMetrics {
  telemetry::Histogram* connect_s = nullptr;
  telemetry::Histogram* send_s = nullptr;
  telemetry::Histogram* recv_s = nullptr;
  telemetry::Counter* shards_ok = nullptr;
  telemetry::Counter* failures = nullptr;
};

class RemoteExecutor final : public PooledExecutorBase {
 public:
  RemoteExecutor(ExecutorSpec spec, std::vector<net::Endpoint> endpoints,
                 int threads)
      : PooledExecutorBase(threads),
        spec_(std::move(spec)),
        endpoints_(std::move(endpoints)) {}

  [[nodiscard]] const char* name() const override { return "remote"; }

  [[nodiscard]] std::string run(const std::vector<ShardTask>& tasks,
                                const ShardExecOptions& options) override {
    EndpointRoster roster(endpoints_, spec_.remote_max_in_flight,
                          spec_.remote_quarantine_failures);

    // Metric handles are resolved here, once, never in the per-shard path.
    ep_metrics_.assign(endpoints_.size(), EndpointMetrics{});
    queue_wait_s_ = nullptr;
    shard_exec_s_ = nullptr;
    retries_ = failovers_ = quarantines_ = nullptr;
    if (telemetry_ != nullptr) {
      telemetry::Registry& reg = telemetry_->registry;
      queue_wait_s_ = &reg.histogram("remote.queue_wait_s");
      shard_exec_s_ = &reg.histogram("remote.shard_exec_s");
      retries_ = &reg.counter("remote.retries");
      failovers_ = &reg.counter("remote.failovers");
      quarantines_ = &reg.counter("remote.quarantines");
      for (std::size_t i = 0; i < endpoints_.size(); ++i) {
        const std::string label = endpoint_label(endpoints_[i]);
        ep_metrics_[i].connect_s =
            &reg.histogram("remote." + label + ".connect_s");
        ep_metrics_[i].send_s = &reg.histogram("remote." + label + ".send_s");
        ep_metrics_[i].recv_s = &reg.histogram("remote." + label + ".recv_s");
        ep_metrics_[i].shards_ok =
            &reg.counter("remote." + label + ".shards_ok");
        ep_metrics_[i].failures =
            &reg.counter("remote." + label + ".failures");
      }
    }

    std::vector<std::string> errors(tasks.size());
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const ShardTask& task = tasks[t];
      const telemetry::TimePoint enqueued = telemetry::Clock::now();
      pool_.submit([this, &task, &options, &roster, &errors, enqueued, t] {
        if (queue_wait_s_ != nullptr)
          CPSINW_TELEM(queue_wait_s_->record_since(enqueued));
        const telemetry::TimePoint start = telemetry::Clock::now();
        errors[t] = run_one(task, options, roster);
        if (shard_exec_s_ != nullptr)
          CPSINW_TELEM(shard_exec_s_->record_since(start));
        if (trace() != nullptr)
          trace()->add_span("remote:shard j" +
                                std::to_string(task.shard->job) + "." +
                                std::to_string(task.shard->index),
                            "remote", start, telemetry::Clock::now());
      });
    }
    pool_.wait_idle();
    return first_error(errors);
  }

 private:
  /// Runs one shard with failover: each endpoint is attempted at most
  /// once, in roster order of availability, until one answers.  On total
  /// failure the slot is placeholder-filled and the last endpoint's
  /// failure is reported (tagged with the canonical shard identity).
  [[nodiscard]] std::string run_one(const ShardTask& task,
                                    const ShardExecOptions& options,
                                    EndpointRoster& roster) {
    const std::string input = serialize_shard_input(
        task.context->circuit(), task.context->patterns(), *task.universe,
        *task.shard, options);

    std::vector<char> tried(endpoints_.size(), 0);
    std::string last_error;
    int attempts = 0;
    for (int ep = roster.acquire(tried); ep >= 0;
         ep = roster.acquire(tried)) {
      tried[static_cast<std::size_t>(ep)] = 1;
      ++attempts;
      if (attempts > 1) {
        if (retries_ != nullptr) CPSINW_TELEM(retries_->add());
        if (failovers_ != nullptr) CPSINW_TELEM(failovers_->add());
      }
      const std::string error = exchange(ep, roster.endpoint(ep), input, task);
      const bool ok = error.empty();
      EndpointMetrics& m = ep_metrics_[static_cast<std::size_t>(ep)];
      if (ok) {
        if (m.shards_ok != nullptr) CPSINW_TELEM(m.shards_ok->add());
      } else if (m.failures != nullptr) {
        CPSINW_TELEM(m.failures->add());
      }
      if (roster.release(ep, ok)) {
        if (quarantines_ != nullptr) CPSINW_TELEM(quarantines_->add());
        util::log_kv(LogLevel::kWarn, "endpoint_quarantined",
                     {{"endpoint", endpoint_label(roster.endpoint(ep))},
                      {"error", error}});
      }
      if (ok) return {};
      util::log_kv(LogLevel::kInfo, "shard_attempt_failed",
                   {{"endpoint", endpoint_label(roster.endpoint(ep))},
                    {"job", task.shard->job},
                    {"index", task.shard->index},
                    {"attempt", attempts},
                    {"error", error}});
      last_error = endpoint_label(roster.endpoint(ep)) + ": " + error;
    }

    fill_failed_shard(*task.universe, *task.shard,
                      options.fault_sample_fraction, *task.slot);
    if (last_error.empty())
      last_error = "no live endpoints (all quarantined)";
    util::log_kv(LogLevel::kWarn, "shard_failed",
                 {{"job", task.shard->job},
                  {"index", task.shard->index},
                  {"error", last_error}});
    return "remote shard (job " + std::to_string(task.shard->job) +
           ", shard " + std::to_string(task.shard->index) + "): " +
           last_error;
  }

  /// One framed request/response attempt against one endpoint, the whole
  /// conversation under one wall-clock deadline.  Returns "" on success
  /// (the slot is filled) or the failure text.
  [[nodiscard]] std::string exchange(int ep_index, const net::Endpoint& ep,
                                     const std::string& input,
                                     const ShardTask& task) {
    const net::Deadline deadline =
        net::deadline_after(spec_.worker_timeout_s);
    EndpointMetrics& m = ep_metrics_[static_cast<std::size_t>(ep_index)];
    std::string error;

    [[maybe_unused]] const telemetry::TimePoint t_connect =
        telemetry::Clock::now();
    const int fd = net::connect_endpoint(ep, deadline, &error);
    if (m.connect_s != nullptr)
      CPSINW_TELEM(m.connect_s->record_since(t_connect));
    if (fd < 0) return error;
    FdCloser closer{fd};

    [[maybe_unused]] const telemetry::TimePoint t_send =
        telemetry::Clock::now();
    const bool sent = net::send_frame(fd, input, deadline, &error);
    if (m.send_s != nullptr) CPSINW_TELEM(m.send_s->record_since(t_send));
    if (!sent) return "send: " + error;

    std::string output;
    [[maybe_unused]] const telemetry::TimePoint t_recv =
        telemetry::Clock::now();
    const bool received =
        net::recv_frame(fd, &output, deadline, net::kMaxFrameBytes, &error);
    const telemetry::TimePoint t_done = telemetry::Clock::now();
    if (m.recv_s != nullptr)
      CPSINW_TELEM(m.recv_s->record(
          std::chrono::duration<double>(t_done - t_recv).count()));
    if (!received)
      return error.empty() ? "connection closed before a result arrived"
                           : error;

    ShardResult result;
    try {
      result = parse_shard_result(output);
    } catch (const std::exception& e) {
      return std::string("malformed result: ") + e.what();
    }
    const std::string mismatch = check_shard_result(result, *task.shard);
    if (!mismatch.empty()) return mismatch;
    // The server's own clock never enters the trace: its execution span
    // is reconstructed from the reported elapsed time, ending when the
    // reply finished arriving.  It lands on this pool thread's dedicated
    // remote lane (one exchange per thread at a time, so lanes never
    // carry overlapping spans even with several shards in flight on one
    // endpoint); the endpoint identity rides in the category.
    if (trace() != nullptr)
      trace()->add_remote_span(
          "server:run_shard j" + std::to_string(result.job) + "." +
              std::to_string(result.index),
          "remote:" + endpoint_label(ep), t_done, result.elapsed_s,
          telemetry::TraceRecorder::remote_tid(
              telemetry::TraceRecorder::current_tid()));
    *task.slot = std::move(result);
    return {};
  }

  ExecutorSpec spec_;
  std::vector<net::Endpoint> endpoints_;
  std::vector<EndpointMetrics> ep_metrics_;
  telemetry::Histogram* queue_wait_s_ = nullptr;
  telemetry::Histogram* shard_exec_s_ = nullptr;
  telemetry::Counter* retries_ = nullptr;
  telemetry::Counter* failovers_ = nullptr;
  telemetry::Counter* quarantines_ = nullptr;
};

}  // namespace

bool query_server_stats(const std::string& endpoint, double timeout_s,
                        ServerStats* out, std::string* error) {
  net::Endpoint ep;
  try {
    ep = net::parse_endpoint(endpoint);
  } catch (const std::invalid_argument& e) {
    *error = e.what();
    return false;
  }
  const net::Deadline deadline = net::deadline_after(timeout_s);
  const int fd = net::connect_endpoint(ep, deadline, error);
  if (fd < 0) return false;
  FdCloser closer{fd};

  if (!net::send_frame(fd, serialize_stats_request(), deadline, error)) {
    *error = "send: " + *error;
    return false;
  }
  std::string reply;
  if (!net::recv_frame(fd, &reply, deadline, net::kMaxFrameBytes, error)) {
    if (error->empty())
      *error = "connection closed before a stats response arrived";
    return false;
  }
  try {
    *out = parse_stats_response(reply);
  } catch (const std::exception& e) {
    *error = std::string("malformed stats response: ") + e.what();
    return false;
  }
  return true;
}

std::unique_ptr<ShardExecutor> make_remote_executor(const ExecutorSpec& spec,
                                                    int threads) {
  std::vector<net::Endpoint> endpoints;
  try {
    endpoints = net::parse_endpoints(spec.endpoints);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string("make_shard_executor: ") +
                                e.what());
  }
  if (!(spec.worker_timeout_s > 0.0))
    throw std::invalid_argument(
        "make_shard_executor: worker_timeout_s must be > 0");
  if (spec.remote_max_in_flight < 1)
    throw std::invalid_argument(
        "make_shard_executor: remote_max_in_flight must be >= 1");
  if (spec.remote_quarantine_failures < 1)
    throw std::invalid_argument(
        "make_shard_executor: remote_quarantine_failures must be >= 1");
  return std::make_unique<RemoteExecutor>(spec, std::move(endpoints),
                                          threads);
}

}  // namespace cpsinw::engine
