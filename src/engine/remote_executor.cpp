#include "engine/remote_executor.hpp"

#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "engine/net.hpp"
#include "engine/shard_io.hpp"

namespace cpsinw::engine {

namespace {

std::string first_error(const std::vector<std::string>& errors) {
  for (const std::string& e : errors)
    if (!e.empty()) return e;
  return {};
}

/// Shared endpoint state for one campaign run: in-flight bookkeeping,
/// consecutive-failure counts, and the quarantine flag.  acquire/release
/// only decide *where* a shard attempt runs — results land in canonical
/// slots regardless, so none of this scheduling can change the report.
class EndpointRoster {
 public:
  EndpointRoster(const std::vector<net::Endpoint>& endpoints,
                 int max_in_flight, int quarantine_failures)
      : max_in_flight_(max_in_flight),
        quarantine_failures_(quarantine_failures) {
    states_.reserve(endpoints.size());
    for (const net::Endpoint& ep : endpoints) states_.push_back({ep});
  }

  /// Blocks until some endpoint not in `tried` is live with a free slot,
  /// then claims it (least-loaded first, index as the tie-break).
  /// Returns -1 once every untried endpoint is quarantined — the caller
  /// is out of failover options.
  [[nodiscard]] int acquire(const std::vector<char>& tried) {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      int best = -1;
      bool any_candidate = false;
      for (std::size_t i = 0; i < states_.size(); ++i) {
        if (states_[i].dead || tried[i] != 0) continue;
        any_candidate = true;
        if (states_[i].in_flight >= max_in_flight_) continue;
        if (best < 0 ||
            states_[i].in_flight <
                states_[static_cast<std::size_t>(best)].in_flight)
          best = static_cast<int>(i);
      }
      if (best >= 0) {
        ++states_[static_cast<std::size_t>(best)].in_flight;
        return best;
      }
      if (!any_candidate) return -1;
      cv_.wait(lock);  // candidates exist but are all at capacity
    }
  }

  void release(int index, bool success) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      State& s = states_[static_cast<std::size_t>(index)];
      --s.in_flight;
      if (success) {
        s.consecutive_failures = 0;
      } else if (!s.dead &&
                 ++s.consecutive_failures >= quarantine_failures_) {
        s.dead = true;  // retired for the rest of the campaign
      }
    }
    cv_.notify_all();
  }

  [[nodiscard]] const net::Endpoint& endpoint(int index) const {
    return states_[static_cast<std::size_t>(index)].ep;
  }

 private:
  struct State {
    net::Endpoint ep;
    int in_flight = 0;
    int consecutive_failures = 0;
    bool dead = false;
  };

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<State> states_;
  const int max_in_flight_;
  const int quarantine_failures_;
};

/// Closes a socket on every exit path of an exchange.
struct FdCloser {
  int fd;
  ~FdCloser() { close(fd); }
};

class RemoteExecutor final : public PooledExecutorBase {
 public:
  RemoteExecutor(ExecutorSpec spec, std::vector<net::Endpoint> endpoints,
                 int threads)
      : PooledExecutorBase(threads),
        spec_(std::move(spec)),
        endpoints_(std::move(endpoints)) {}

  [[nodiscard]] const char* name() const override { return "remote"; }

  [[nodiscard]] std::string run(const std::vector<ShardTask>& tasks,
                                const ShardExecOptions& options) override {
    EndpointRoster roster(endpoints_, spec_.remote_max_in_flight,
                          spec_.remote_quarantine_failures);
    std::vector<std::string> errors(tasks.size());
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const ShardTask& task = tasks[t];
      pool_.submit([this, &task, &options, &roster, &errors, t] {
        errors[t] = run_one(task, options, roster);
      });
    }
    pool_.wait_idle();
    return first_error(errors);
  }

 private:
  /// Runs one shard with failover: each endpoint is attempted at most
  /// once, in roster order of availability, until one answers.  On total
  /// failure the slot is placeholder-filled and the last endpoint's
  /// failure is reported (tagged with the canonical shard identity).
  [[nodiscard]] std::string run_one(const ShardTask& task,
                                    const ShardExecOptions& options,
                                    EndpointRoster& roster) {
    const std::string input = serialize_shard_input(
        task.context->circuit(), task.context->patterns(), *task.universe,
        *task.shard, options);

    std::vector<char> tried(endpoints_.size(), 0);
    std::string last_error;
    for (int ep = roster.acquire(tried); ep >= 0;
         ep = roster.acquire(tried)) {
      tried[static_cast<std::size_t>(ep)] = 1;
      const std::string error = exchange(roster.endpoint(ep), input, task);
      roster.release(ep, error.empty());
      if (error.empty()) return {};
      last_error = roster.endpoint(ep).host + ":" +
                   std::to_string(roster.endpoint(ep).port) + ": " + error;
    }

    fill_failed_shard(*task.universe, *task.shard, *task.slot);
    if (last_error.empty())
      last_error = "no live endpoints (all quarantined)";
    return "remote shard (job " + std::to_string(task.shard->job) +
           ", shard " + std::to_string(task.shard->index) + "): " +
           last_error;
  }

  /// One framed request/response attempt against one endpoint, the whole
  /// conversation under one wall-clock deadline.  Returns "" on success
  /// (the slot is filled) or the failure text.
  [[nodiscard]] std::string exchange(const net::Endpoint& ep,
                                     const std::string& input,
                                     const ShardTask& task) {
    const net::Deadline deadline =
        net::deadline_after(spec_.worker_timeout_s);
    std::string error;
    const int fd = net::connect_endpoint(ep, deadline, &error);
    if (fd < 0) return error;
    FdCloser closer{fd};

    if (!net::send_frame(fd, input, deadline, &error))
      return "send: " + error;
    std::string output;
    if (!net::recv_frame(fd, &output, deadline, net::kMaxFrameBytes, &error))
      return error.empty() ? "connection closed before a result arrived"
                           : error;

    ShardResult result;
    try {
      result = parse_shard_result(output);
    } catch (const std::exception& e) {
      return std::string("malformed result: ") + e.what();
    }
    const std::string mismatch = check_shard_result(result, *task.shard);
    if (!mismatch.empty()) return mismatch;
    *task.slot = std::move(result);
    return {};
  }

  ExecutorSpec spec_;
  std::vector<net::Endpoint> endpoints_;
};

}  // namespace

std::unique_ptr<ShardExecutor> make_remote_executor(const ExecutorSpec& spec,
                                                    int threads) {
  std::vector<net::Endpoint> endpoints;
  try {
    endpoints = net::parse_endpoints(spec.endpoints);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string("make_shard_executor: ") +
                                e.what());
  }
  if (!(spec.worker_timeout_s > 0.0))
    throw std::invalid_argument(
        "make_shard_executor: worker_timeout_s must be > 0");
  if (spec.remote_max_in_flight < 1)
    throw std::invalid_argument(
        "make_shard_executor: remote_max_in_flight must be >= 1");
  if (spec.remote_quarantine_failures < 1)
    throw std::invalid_argument(
        "make_shard_executor: remote_quarantine_failures must be >= 1");
  return std::make_unique<RemoteExecutor>(spec, std::move(endpoints),
                                          threads);
}

}  // namespace cpsinw::engine
