#include "engine/shard_io.hpp"

#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "engine/json_reader.hpp"
#include "engine/json_writer.hpp"

namespace cpsinw::engine {

namespace {

using Json = JsonWriter;  // shared canonical-form writer (json_writer.hpp)
// Parsing rides on the shared engine/json_reader.hpp reader: every
// malformed input becomes a std::runtime_error with a byte offset, never
// UB — worker output is untrusted by design.

// ------------------------------------------------------------ enum names
// Protocol-owned tables (not the display to_string helpers) so a renamed
// diagnostic string can never silently change the wire format.

const char* site_name(faults::FaultSite site) {
  switch (site) {
    case faults::FaultSite::kNet: return "net";
    case faults::FaultSite::kGateInput: return "input";
    case faults::FaultSite::kGateTransistor: return "transistor";
  }
  return "?";
}

faults::FaultSite parse_site(const std::string& s) {
  if (s == "net") return faults::FaultSite::kNet;
  if (s == "input") return faults::FaultSite::kGateInput;
  if (s == "transistor") return faults::FaultSite::kGateTransistor;
  throw std::runtime_error("shard_io: unknown fault site '" + s + "'");
}

const char* transistor_fault_name(gates::TransistorFault kind) {
  switch (kind) {
    case gates::TransistorFault::kNone: return "none";
    case gates::TransistorFault::kStuckOpen: return "open";
    case gates::TransistorFault::kStuckOn: return "on";
    case gates::TransistorFault::kStuckAtNType: return "ntype";
    case gates::TransistorFault::kStuckAtPType: return "ptype";
  }
  return "?";
}

gates::TransistorFault parse_transistor_fault(const std::string& s) {
  if (s == "none") return gates::TransistorFault::kNone;
  if (s == "open") return gates::TransistorFault::kStuckOpen;
  if (s == "on") return gates::TransistorFault::kStuckOn;
  if (s == "ntype") return gates::TransistorFault::kStuckAtNType;
  if (s == "ptype") return gates::TransistorFault::kStuckAtPType;
  throw std::runtime_error("shard_io: unknown transistor fault '" + s + "'");
}

const char* behavior_name(faults::BridgeBehavior behavior) {
  switch (behavior) {
    case faults::BridgeBehavior::kWiredAnd: return "wired_and";
    case faults::BridgeBehavior::kWiredOr: return "wired_or";
    case faults::BridgeBehavior::kDominantA: return "dominant_a";
    case faults::BridgeBehavior::kDominantB: return "dominant_b";
  }
  return "?";
}

faults::BridgeBehavior parse_behavior(const std::string& s) {
  if (s == "wired_and") return faults::BridgeBehavior::kWiredAnd;
  if (s == "wired_or") return faults::BridgeBehavior::kWiredOr;
  if (s == "dominant_a") return faults::BridgeBehavior::kDominantA;
  if (s == "dominant_b") return faults::BridgeBehavior::kDominantB;
  throw std::runtime_error("shard_io: unknown bridge behavior '" + s + "'");
}

FaultClass parse_fault_class(const std::string& s) {
  for (int c = 0; c < kFaultClassCount; ++c)
    if (s == to_string(static_cast<FaultClass>(c)))
      return static_cast<FaultClass>(c);
  throw std::runtime_error("shard_io: unknown fault class '" + s + "'");
}

gates::CellKind parse_cell_kind(const std::string& s) {
  for (const gates::CellKind kind : gates::all_cell_kinds())
    if (s == gates::to_string(kind)) return kind;
  throw std::runtime_error("shard_io: unknown cell '" + s + "'");
}

logic::LogicV parse_logic_char(char c) {
  switch (c) {
    case '0': return logic::LogicV::k0;
    case '1': return logic::LogicV::k1;
    case 'X': return logic::LogicV::kX;
    case 'Z': return logic::LogicV::kZ;
    default:
      throw std::runtime_error(std::string("shard_io: bad pattern char '") +
                               c + "'");
  }
}

// ----------------------------------------------------------- sub-objects

/// Nets in id order tagged with their driver kind, gates in id order —
/// reconstruction re-issues the same add_* calls and therefore the same
/// ids, which every shipped fault depends on.
void emit_circuit(Json& j, const logic::Circuit& ckt) {
  j.open_object();
  j.key("nets");
  j.open_array();
  for (logic::NetId n = 0; n < ckt.net_count(); ++n) {
    j.open_object();
    j.key("name");
    j.value(ckt.net_name(n));
    j.key("kind");
    if (ckt.is_primary_input(n))
      j.value("pi");
    else if (ckt.constant_of(n) == logic::LogicV::k0)
      j.value("c0");
    else if (ckt.constant_of(n) == logic::LogicV::k1)
      j.value("c1");
    else
      j.value("net");
    j.close_object();
  }
  j.close_array();
  j.key("gates");
  j.open_array();
  for (const logic::GateInst& g : ckt.gates()) {
    j.open_object();
    j.key("cell");
    j.value(gates::to_string(g.kind));
    j.key("out");
    j.value(static_cast<int>(g.out));
    j.key("in");
    j.open_array();
    for (int i = 0; i < g.input_count(); ++i)
      j.value(static_cast<int>(g.in[static_cast<std::size_t>(i)]));
    j.close_array();
    j.key("name");
    j.value(g.name);
    j.close_object();
  }
  j.close_array();
  j.key("outputs");
  j.open_array();
  for (const logic::NetId n : ckt.primary_outputs())
    j.value(static_cast<int>(n));
  j.close_array();
  j.close_object();
}

logic::Circuit parse_circuit(const JsonValue& v) {
  logic::Circuit ckt;
  const std::vector<JsonValue>& nets = v.at("nets").as_array("nets");
  for (std::size_t n = 0; n < nets.size(); ++n) {
    const std::string& name = nets[n].at("name").as_string("net name");
    const std::string& kind = nets[n].at("kind").as_string("net kind");
    logic::NetId id = -1;
    if (kind == "pi")
      id = ckt.add_primary_input(name);
    else if (kind == "c0")
      id = ckt.add_constant(logic::LogicV::k0, name);
    else if (kind == "c1")
      id = ckt.add_constant(logic::LogicV::k1, name);
    else if (kind == "net")
      id = ckt.add_net(name);
    else
      throw std::runtime_error("shard_io: unknown net kind '" + kind + "'");
    if (id != static_cast<logic::NetId>(n))
      throw std::runtime_error("shard_io: net id not preserved");
  }
  for (const JsonValue& gv : v.at("gates").as_array("gates")) {
    std::vector<logic::NetId> ins;
    for (const JsonValue& iv : gv.at("in").as_array("gate inputs"))
      ins.push_back(iv.as_int("gate input"));
    ckt.add_gate(parse_cell_kind(gv.at("cell").as_string("cell")), ins,
                 gv.at("out").as_int("gate out"),
                 gv.at("name").as_string("gate name"));
  }
  for (const JsonValue& ov : v.at("outputs").as_array("outputs"))
    ckt.mark_primary_output(ov.as_int("output"));
  ckt.finalize();
  return ckt;
}

void emit_fault(Json& j, const CampaignFault& cf) {
  j.open_object();
  j.key("cls");
  j.value(to_string(cf.cls));
  if (cf.cls == FaultClass::kBridge) {
    j.key("a");
    j.value(static_cast<int>(cf.bridge.a));
    j.key("b");
    j.value(static_cast<int>(cf.bridge.b));
    j.key("behavior");
    j.value(behavior_name(cf.bridge.behavior));
  } else {
    j.key("site");
    j.value(site_name(cf.fault.site));
    j.key("net");
    j.value(static_cast<int>(cf.fault.net));
    j.key("gate");
    j.value(cf.fault.gate);
    j.key("pin");
    j.value(cf.fault.pin);
    j.key("sa1");
    j.value(cf.fault.stuck_at_one);
    j.key("t");
    j.value(cf.fault.cell_fault.transistor);
    j.key("kind");
    j.value(transistor_fault_name(cf.fault.cell_fault.kind));
  }
  j.close_object();
}

CampaignFault parse_fault(const JsonValue& v) {
  CampaignFault cf;
  cf.cls = parse_fault_class(v.at("cls").as_string("cls"));
  if (cf.cls == FaultClass::kBridge) {
    cf.bridge.a = v.at("a").as_int("bridge a");
    cf.bridge.b = v.at("b").as_int("bridge b");
    cf.bridge.behavior = parse_behavior(v.at("behavior").as_string("behavior"));
  } else {
    cf.fault.site = parse_site(v.at("site").as_string("site"));
    cf.fault.net = v.at("net").as_int("net");
    cf.fault.gate = v.at("gate").as_int("gate");
    cf.fault.pin = v.at("pin").as_int("pin");
    cf.fault.stuck_at_one = v.at("sa1").as_bool("sa1");
    cf.fault.cell_fault.transistor = v.at("t").as_int("t");
    cf.fault.cell_fault.kind =
        parse_transistor_fault(v.at("kind").as_string("kind"));
  }
  return cf;
}

int checked_version(const JsonValue& doc) {
  const int version = doc.at("version").as_int("version");
  if (version != kShardIoVersion)
    throw std::runtime_error("shard_io: protocol version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kShardIoVersion) + ")");
  return version;
}

}  // namespace

std::string context_fingerprint(const logic::Circuit& ckt,
                                const std::vector<logic::Pattern>& patterns) {
  Json j;
  j.open_object();
  j.key("circuit");
  emit_circuit(j, ckt);
  j.key("patterns");
  j.open_array();
  for (const logic::Pattern& p : patterns) {
    std::string s;
    s.reserve(p.size());
    for (const logic::LogicV v : p) s += logic::to_string(v);
    j.value(s);
  }
  j.close_array();
  j.close_object();
  return std::move(j).str();
}

std::uint64_t fingerprint_hash(const std::string& fingerprint) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  for (const char c : fingerprint) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string serialize_shard_input(const logic::Circuit& ckt,
                                  const std::vector<logic::Pattern>& patterns,
                                  const std::vector<CampaignFault>& universe,
                                  const Shard& shard,
                                  const ShardExecOptions& options) {
  if (shard.begin > shard.end || shard.end > universe.size())
    throw std::invalid_argument(
        "serialize_shard_input: shard range out of bounds");
  Json j;
  j.open_object();
  j.key("version");
  j.value(kShardIoVersion);
  j.key("shard");
  j.open_object();
  j.key("job");
  j.value(shard.job);
  j.key("index");
  j.value(shard.index);
  j.key("rng_state");
  j.value(std::to_string(shard.rng.state()));
  j.close_object();
  j.key("options");
  j.open_object();
  j.key("observe_iddq");
  j.value(options.sim.observe_iddq);
  j.key("sequential_patterns");
  j.value(options.sim.sequential_patterns);
  j.key("batch_transistor_faults");
  j.value(options.sim.batch_transistor_faults);
  // Serialized because it changes the records a worker computes.  The
  // work-reduction toggles (drop_detected, critical_path_tracing) are
  // deliberately NOT on the wire: they never change results, so they stay
  // process-local, like batch_line_faults.
  j.key("detection_mode");
  j.value(options.sim.detection_mode == faults::DetectionMode::kFirstOnly
              ? "first_only"
              : "full");
  j.key("fault_sample_fraction");
  j.value(options.fault_sample_fraction);
  j.close_object();
  j.key("circuit");
  emit_circuit(j, ckt);
  j.key("patterns");
  j.open_array();
  for (const logic::Pattern& p : patterns) {
    std::string s;
    s.reserve(p.size());
    for (const logic::LogicV v : p) s += logic::to_string(v);
    j.value(s);
  }
  j.close_array();
  j.key("faults");
  j.open_array();
  for (std::size_t i = shard.begin; i < shard.end; ++i)
    emit_fault(j, universe[i]);
  j.close_array();
  j.close_object();
  return std::move(j).str();
}

ShardWorkInput parse_shard_input(const std::string& text) {
  const JsonValue doc = JsonParser(text).parse();
  checked_version(doc);

  ShardWorkInput input;
  input.circuit = parse_circuit(doc.at("circuit"));

  for (const JsonValue& pv : doc.at("patterns").as_array("patterns")) {
    const std::string& s = pv.as_string("pattern");
    logic::Pattern p;
    p.reserve(s.size());
    for (const char c : s) p.push_back(parse_logic_char(c));
    input.patterns.push_back(std::move(p));
  }

  for (const JsonValue& fv : doc.at("faults").as_array("faults"))
    input.faults.push_back(parse_fault(fv));

  const JsonValue& sv = doc.at("shard");
  input.shard.job = sv.at("job").as_int("job");
  input.shard.index = sv.at("index").as_int("index");
  input.shard.begin = 0;
  input.shard.end = input.faults.size();
  input.shard.rng = util::SplitMix64(sv.at("rng_state").as_u64("rng_state"));

  const JsonValue& ov = doc.at("options");
  input.options.sim.observe_iddq =
      ov.at("observe_iddq").as_bool("observe_iddq");
  input.options.sim.sequential_patterns =
      ov.at("sequential_patterns").as_bool("sequential_patterns");
  input.options.sim.batch_transistor_faults =
      ov.at("batch_transistor_faults").as_bool("batch_transistor_faults");
  input.options.sim.detection_mode =
      ov.at("detection_mode").as_string("detection_mode") == "first_only"
          ? faults::DetectionMode::kFirstOnly
          : faults::DetectionMode::kFull;
  input.options.fault_sample_fraction =
      ov.at("fault_sample_fraction").as_double("fault_sample_fraction");
  return input;
}

std::string serialize_shard_result(const ShardResult& result) {
  Json j;
  j.open_object();
  j.key("version");
  j.value(kShardIoVersion);
  j.key("job");
  j.value(result.job);
  j.key("index");
  j.value(result.index);
  j.key("elapsed_s");
  j.value(result.elapsed_s);
  j.key("results");
  j.open_array();
  for (const FaultResult& r : result.results) {
    j.open_object();
    j.key("cls");
    j.value(to_string(r.cls));
    j.key("sampled_out");
    j.value(r.sampled_out);
    j.key("detected_output");
    j.value(r.record.detected_output);
    j.key("detected_iddq");
    j.value(r.record.detected_iddq);
    j.key("potential");
    j.value(r.record.potential);
    j.key("first_pattern");
    j.value(r.record.first_pattern);
    j.close_object();
  }
  j.close_array();
  j.close_object();
  return std::move(j).str();
}

ShardResult parse_shard_result(const std::string& text) {
  const JsonValue doc = JsonParser(text).parse();
  checked_version(doc);

  ShardResult result;
  result.job = doc.at("job").as_int("job");
  result.index = doc.at("index").as_int("index");
  result.elapsed_s = doc.at("elapsed_s").as_double("elapsed_s");
  for (const JsonValue& rv : doc.at("results").as_array("results")) {
    FaultResult r;
    r.cls = parse_fault_class(rv.at("cls").as_string("cls"));
    r.sampled_out = rv.at("sampled_out").as_bool("sampled_out");
    r.record.detected_output =
        rv.at("detected_output").as_bool("detected_output");
    r.record.detected_iddq = rv.at("detected_iddq").as_bool("detected_iddq");
    r.record.potential = rv.at("potential").as_bool("potential");
    r.record.first_pattern = rv.at("first_pattern").as_int("first_pattern");
    result.results.push_back(r);
  }
  return result;
}

// ------------------------------------------------------------- stats RPC

namespace {

/// Signed 64-bit values travel as decimal strings for the same reason
/// u64 values do; gauges can be negative, so accept one leading '-'.
std::int64_t parse_i64_string(const JsonValue& v, const char* what) {
  const std::string& s = v.as_string(what);
  const std::size_t digits = s.size() > 0 && s[0] == '-' ? 1 : 0;
  if (s.size() == digits ||
      s.find_first_not_of("0123456789", digits) != std::string::npos)
    throw std::runtime_error(std::string("shard_io: ") + what +
                             " is not a decimal i64 string");
  return std::strtoll(s.c_str(), nullptr, 10);
}

}  // namespace

std::string serialize_stats_request() {
  Json j;
  j.open_object();
  j.key("version");
  j.value(kShardIoVersion);
  j.key("request");
  j.value("stats");
  j.close_object();
  return std::move(j).str();
}

bool is_stats_request(const std::string& text) {
  // A stats request is tiny; a shard work document is not.  The length
  // gate keeps classification O(1) on real work frames, so they are only
  // ever parsed once (as shard input).
  constexpr std::size_t kMaxStatsRequestBytes = 256;
  if (text.size() > kMaxStatsRequestBytes) return false;
  try {
    const JsonValue doc = JsonParser(text).parse();
    const JsonValue* req = doc.find("request");
    return req != nullptr && req->type == JsonValue::Type::kString &&
           req->string == "stats" &&
           doc.at("version").as_int("version") == kShardIoVersion;
  } catch (const std::exception&) {
    return false;
  }
}

std::string serialize_stats_response(const ServerStats& stats) {
  Json j;
  j.open_object();
  j.key("version");
  j.value(kShardIoVersion);
  j.key("kind");
  j.value("stats");
  j.key("uptime_s");
  j.value(stats.uptime_s);
  j.key("counters");
  j.open_object();
  for (const telemetry::CounterValue& c : stats.metrics.counters) {
    j.key(c.name);
    j.value(std::to_string(c.value));
  }
  j.close_object();
  j.key("gauges");
  j.open_object();
  for (const telemetry::GaugeValue& g : stats.metrics.gauges) {
    j.key(g.name);
    j.value(std::to_string(g.value));
  }
  j.close_object();
  j.key("histograms");
  j.open_object();
  for (const telemetry::HistogramValue& h : stats.metrics.histograms) {
    j.key(h.name);
    j.open_object();
    j.key("count");
    j.value(std::to_string(h.count));
    j.key("sum_s");
    j.value(h.sum_s);
    j.key("buckets");
    j.open_array();
    for (const std::uint64_t b : h.buckets) j.value(std::to_string(b));
    j.close_array();
    j.close_object();
  }
  j.close_object();
  j.close_object();
  return std::move(j).str();
}

ServerStats parse_stats_response(const std::string& text) {
  const JsonValue doc = JsonParser(text).parse();
  checked_version(doc);
  if (doc.at("kind").as_string("kind") != "stats")
    throw std::runtime_error("shard_io: response kind is not 'stats'");

  ServerStats stats;
  stats.uptime_s = doc.at("uptime_s").as_double("uptime_s");
  const JsonValue& counters = doc.at("counters");
  if (counters.type != JsonValue::Type::kObject)
    throw std::runtime_error("shard_io: counters is not an object");
  for (const auto& [name, v] : counters.object)
    stats.metrics.counters.push_back({name, v.as_u64("counter value")});
  const JsonValue& gauges = doc.at("gauges");
  if (gauges.type != JsonValue::Type::kObject)
    throw std::runtime_error("shard_io: gauges is not an object");
  for (const auto& [name, v] : gauges.object)
    stats.metrics.gauges.push_back({name, parse_i64_string(v, "gauge value")});
  const JsonValue& histograms = doc.at("histograms");
  if (histograms.type != JsonValue::Type::kObject)
    throw std::runtime_error("shard_io: histograms is not an object");
  for (const auto& [name, v] : histograms.object) {
    telemetry::HistogramValue hv;
    hv.name = name;
    hv.count = v.at("count").as_u64("histogram count");
    hv.sum_s = v.at("sum_s").as_double("sum_s");
    for (const JsonValue& b : v.at("buckets").as_array("buckets"))
      hv.buckets.push_back(b.as_u64("histogram bucket"));
    if (hv.buckets.size() !=
        static_cast<std::size_t>(telemetry::Histogram::kBucketCount))
      throw std::runtime_error("shard_io: histogram '" + name + "' carries " +
                               std::to_string(hv.buckets.size()) +
                               " buckets, expected " +
                               std::to_string(telemetry::Histogram::kBucketCount));
    stats.metrics.histograms.push_back(std::move(hv));
  }
  return stats;
}

std::string check_shard_result(const ShardResult& result,
                               const Shard& shard) {
  if (result.job != shard.job || result.index != shard.index)
    return "result identifies shard (job " + std::to_string(result.job) +
           ", shard " + std::to_string(result.index) + "), expected (job " +
           std::to_string(shard.job) + ", shard " +
           std::to_string(shard.index) + ")";
  const std::size_t expected = shard.end - shard.begin;
  if (result.results.size() != expected)
    return "result carries " + std::to_string(result.results.size()) +
           " records for " + std::to_string(expected) + " faults";
  return {};
}

}  // namespace cpsinw::engine
