// Minimal recursive-descent JSON reader shared by everything in the
// engine that consumes untrusted JSON: the shard_io wire documents, the
// server stats responses, and the telemetry trace files the tests
// validate.  Every malformed input becomes a std::runtime_error with a
// byte offset, never UB — peers and workers are untrusted by design.
//
// This is deliberately not a general JSON library: no surrogate pairs,
// numbers decode to double (64-bit integers travel as decimal strings in
// every cpsinw protocol), objects preserve insertion order.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cpsinw::engine {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
  /// @throws std::runtime_error when the key is absent
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  /// Typed accessors; `what` names the field in the error message.
  /// @throws std::runtime_error on a type mismatch (and, for as_int, on a
  ///   non-integral or out-of-range number — a double->int conversion of
  ///   an out-of-range value is UB and the input is untrusted)
  [[nodiscard]] bool as_bool(const char* what) const;
  [[nodiscard]] double as_double(const char* what) const;
  [[nodiscard]] int as_int(const char* what) const;
  [[nodiscard]] const std::string& as_string(const char* what) const;
  /// 64-bit values travel as decimal strings: a double cannot carry a full
  /// uint64_t.
  [[nodiscard]] std::uint64_t as_u64(const char* what) const;
  [[nodiscard]] const std::vector<JsonValue>& as_array(const char* what) const;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses the whole input as one value (trailing bytes are an error).
  /// @throws std::runtime_error naming the byte offset of the problem
  [[nodiscard]] JsonValue parse();

 private:
  [[noreturn]] void fail(const std::string& why) const;
  void skip_ws();
  char peek();
  void expect(char c);
  JsonValue parse_value();
  JsonValue parse_literal(const char* word, JsonValue::Type type, bool b);
  JsonValue parse_number();
  JsonValue parse_string();
  JsonValue parse_array();
  JsonValue parse_object();

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Convenience one-shot: parse `text` or throw.
[[nodiscard]] JsonValue parse_json(const std::string& text);

}  // namespace cpsinw::engine
