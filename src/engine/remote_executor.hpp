// The distributed (kRemote) shard-executor backend: dispatches a
// campaign's universe slices across a configured list of
// cpsinw_shard_server endpoints over TCP, speaking the same shard_io v1
// JSON documents the subprocess backend pipes to a forked worker — one
// net-framed request/response per shard.
//
// Scheduling policy (none of it can affect the answer — slots are filled
// in canonical order upstream):
//   * bounded in-flight shards per endpoint (`remote_max_in_flight`),
//     least-loaded endpoint first;
//   * per-shard wall-clock timeout (`worker_timeout_s`) covering connect,
//     send, and receive of one attempt;
//   * retry-on-another-endpoint failover: a shard that fails on one
//     endpoint is retried on each remaining endpoint before its slot is
//     placeholder-filled;
//   * dead-endpoint quarantine: `remote_quarantine_failures` consecutive
//     failures retire an endpoint for the rest of the campaign, so a
//     downed host costs a few timeouts, not one per shard.
#pragma once

#include <memory>
#include <string>

#include "engine/executor.hpp"
#include "engine/shard_io.hpp"

namespace cpsinw::engine {

/// Builds the kRemote backend (called by make_shard_executor).
/// @throws std::invalid_argument on an empty endpoint list, a malformed
///   `host:port` entry, a non-positive worker_timeout_s, or a
///   non-positive remote_max_in_flight / remote_quarantine_failures
[[nodiscard]] std::unique_ptr<ShardExecutor> make_remote_executor(
    const ExecutorSpec& spec, int threads);

/// Scrapes a live cpsinw_shard_server: one connection, one framed
/// `stats` request, one parsed snapshot.  `endpoint` is a "host:port"
/// string.  Returns true and fills `*out` on success; false with the
/// failure text in `*error` otherwise (never throws on I/O or protocol
/// problems).
[[nodiscard]] bool query_server_stats(const std::string& endpoint,
                                      double timeout_s, ServerStats* out,
                                      std::string* error);

}  // namespace cpsinw::engine
