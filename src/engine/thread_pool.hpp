// Work-stealing thread pool for fault-campaign shards.  Each worker owns a
// deque: it pushes/pops its own work LIFO (cache-warm) and steals FIFO from
// victims (oldest, largest-granularity work first).  The pool guarantees
// nothing about execution order — campaign determinism comes from the
// shard decomposition and the merge order, never from scheduling.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cpsinw::engine {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// @param threads worker count; 0 selects the hardware concurrency
  explicit ThreadPool(int threads);

  /// Drains nothing: outstanding tasks are finished before teardown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task (round-robin across worker deques).  Thread-safe;
  /// tasks may themselves submit.  Exceptions escaping a task are
  /// swallowed by the worker (the pool has no result channel) — tasks
  /// that can fail must capture their own errors, as run_campaign does.
  void submit(Task task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  [[nodiscard]] int thread_count() const {
    return static_cast<int>(threads_.size());
  }

  /// Detected hardware concurrency (>= 1).
  [[nodiscard]] static int hardware_threads();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t index);
  [[nodiscard]] bool try_pop_local(std::size_t index, Task& out);
  [[nodiscard]] bool try_steal(std::size_t thief, Task& out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;  ///< workers sleep here
  std::condition_variable idle_cv_;  ///< wait_idle sleeps here
  std::size_t queued_ = 0;           ///< tasks sitting in deques
  std::size_t pending_ = 0;          ///< queued + executing
  bool stop_ = false;
  std::atomic<std::size_t> next_queue_{0};
};

}  // namespace cpsinw::engine
