// Work-stealing thread pool for fault-campaign shards.  Each worker owns a
// deque: it pushes/pops its own work LIFO (cache-warm) and steals FIFO from
// victims (oldest, largest-granularity work first).  The pool guarantees
// nothing about execution order — campaign determinism comes from the
// shard decomposition and the merge order, never from scheduling.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cpsinw::engine {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// @param threads worker count; 0 selects the hardware concurrency
  explicit ThreadPool(int threads);

  /// Drains nothing: outstanding tasks are finished before teardown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task (round-robin across worker deques).  Thread-safe;
  /// tasks may themselves submit.  An exception escaping a task does not
  /// kill the worker: the first one is captured and exposed through
  /// first_exception() (the rest are dropped) — run_campaign surfaces it
  /// on the campaign report's error slot.
  void submit(Task task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  /// The first exception that escaped a task, or nullptr when every task
  /// returned cleanly.  Sticky for the pool's lifetime; read it after
  /// wait_idle() for a complete answer.
  [[nodiscard]] std::exception_ptr first_exception();

  [[nodiscard]] int thread_count() const {
    return static_cast<int>(threads_.size());
  }

  /// Detected hardware concurrency (>= 1).
  [[nodiscard]] static int hardware_threads();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t index);
  [[nodiscard]] bool try_pop_local(std::size_t index, Task& out);
  [[nodiscard]] bool try_steal(std::size_t thief, Task& out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;  ///< workers sleep here
  std::condition_variable idle_cv_;  ///< wait_idle sleeps here
  std::size_t queued_ = 0;           ///< tasks sitting in deques
  std::size_t pending_ = 0;          ///< queued + executing
  std::exception_ptr first_exception_;  ///< first escaped task exception
  bool stop_ = false;
  std::atomic<std::size_t> next_queue_{0};
};

}  // namespace cpsinw::engine
