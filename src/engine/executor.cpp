#include "engine/executor.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <pthread.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "engine/remote_executor.hpp"
#include "engine/shard_io.hpp"
#include "engine/thread_pool.hpp"

namespace cpsinw::engine {

const char* to_string(ExecutorBackend backend) {
  switch (backend) {
    case ExecutorBackend::kInline: return "inline";
    case ExecutorBackend::kThreadPool: return "thread_pool";
    case ExecutorBackend::kSubprocess: return "subprocess";
    case ExecutorBackend::kRemote: return "remote";
  }
  return "?";
}

void PooledExecutorBase::run_setup(
    const std::vector<std::function<void()>>& tasks) {
  std::exception_ptr first;
  std::mutex mutex;
  for (const std::function<void()>& task : tasks) {
    pool_.submit([&task, &first, &mutex] {
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first) first = std::current_exception();
      }
    });
  }
  pool_.wait_idle();
  if (first) std::rethrow_exception(first);
}

void fill_failed_shard(const std::vector<CampaignFault>& universe,
                       const Shard& shard, double fault_sample_fraction,
                       ShardResult& slot) {
  slot.job = shard.job;
  slot.index = shard.index;
  slot.results.assign(shard.end - shard.begin, {});
  // Exactly the sampling loop of run_shard: same RNG fork, same slice
  // order, one draw per fault.
  util::SplitMix64 rng = shard.rng;
  const bool sampling = fault_sample_fraction < 1.0;
  for (std::size_t i = shard.begin; i < shard.end; ++i) {
    FaultResult& r = slot.results[i - shard.begin];
    r.cls = universe[i].cls;
    if (sampling && !rng.chance(fault_sample_fraction)) r.sampled_out = true;
  }
}

namespace {

/// Picks the error the campaign reports: the first failure in canonical
/// (job, shard) task order, so the surfaced message does not depend on
/// which worker or thread happened to fail first on the wall clock.
std::string first_error(const std::vector<std::string>& errors) {
  for (const std::string& e : errors)
    if (!e.empty()) return e;
  return {};
}

std::string describe_exception(const std::exception_ptr& ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown shard failure";
  }
}

// ---------------------------------------------------------------- inline

/// Adds the per-shard trace span every backend records around a shard's
/// execution window (name materialized only when tracing is live).
void trace_shard_span(telemetry::TraceRecorder* trace, const char* backend,
                      const Shard& shard, telemetry::TimePoint start) {
  if (trace == nullptr) return;
  trace->add_span(std::string(backend) + ":shard j" +
                      std::to_string(shard.job) + "." +
                      std::to_string(shard.index),
                  "shard", start, telemetry::Clock::now());
}

/// Serial reference backend: a plain loop, no pool, no processes.  Exists
/// so every other backend has a zero-dependency implementation to be
/// byte-identical against.
class InlineExecutor final : public ShardExecutor {
 public:
  [[nodiscard]] const char* name() const override { return "inline"; }

  void run_setup(const std::vector<std::function<void()>>& tasks) override {
    for (const std::function<void()>& task : tasks) task();
  }

  [[nodiscard]] std::string run(const std::vector<ShardTask>& tasks,
                                const ShardExecOptions& options) override {
    telemetry::Histogram* exec_s =
        telemetry_ != nullptr
            ? &telemetry_->registry.histogram("inline.shard_exec_s")
            : nullptr;
    std::vector<std::string> errors(tasks.size());
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const ShardTask& task = tasks[t];
      const telemetry::TimePoint start = telemetry::Clock::now();
      try {
        *task.slot =
            run_shard(*task.context, *task.universe, *task.shard, options);
      } catch (...) {
        errors[t] = describe_exception(std::current_exception());
        fill_failed_shard(*task.universe, *task.shard,
                          options.fault_sample_fraction, *task.slot);
      }
      if (exec_s != nullptr) CPSINW_TELEM(exec_s->record_since(start));
      trace_shard_span(trace(), "inline", *task.shard, start);
    }
    return first_error(errors);
  }
};

// ----------------------------------------------------------- thread pool

class ThreadPoolExecutor final : public PooledExecutorBase {
 public:
  using PooledExecutorBase::PooledExecutorBase;

  [[nodiscard]] const char* name() const override { return "thread_pool"; }

  [[nodiscard]] std::string run(const std::vector<ShardTask>& tasks,
                                const ShardExecOptions& options) override {
    // Metric handles are resolved once here; the hot path only touches
    // relaxed atomics.
    telemetry::Histogram* queue_wait_s = nullptr;
    telemetry::Histogram* exec_s = nullptr;
    if (telemetry_ != nullptr) {
      queue_wait_s = &telemetry_->registry.histogram(
          "thread_pool.queue_wait_s");
      exec_s = &telemetry_->registry.histogram("thread_pool.shard_exec_s");
    }
    telemetry::TraceRecorder* const tr = trace();
    std::vector<std::string> errors(tasks.size());
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const ShardTask& task = tasks[t];
      const telemetry::TimePoint enqueued = telemetry::Clock::now();
      pool_.submit([&task, &options, &errors, queue_wait_s, exec_s, tr,
                    enqueued, t] {
        if (queue_wait_s != nullptr)
          CPSINW_TELEM(queue_wait_s->record_since(enqueued));
        const telemetry::TimePoint start = telemetry::Clock::now();
        try {
          *task.slot =
              run_shard(*task.context, *task.universe, *task.shard, options);
        } catch (...) {
          errors[t] = describe_exception(std::current_exception());
          fill_failed_shard(*task.universe, *task.shard,
                            options.fault_sample_fraction, *task.slot);
        }
        if (exec_s != nullptr) CPSINW_TELEM(exec_s->record_since(start));
        trace_shard_span(tr, "thread_pool", *task.shard, start);
      });
    }
    pool_.wait_idle();
    // Belt and braces: anything that slipped past the per-task handlers
    // (it cannot today, but the pool-level capture keeps this
    // future-proof) is treated like a shard failure, not dropped.
    if (first_error(errors).empty() && pool_.first_exception())
      return describe_exception(pool_.first_exception());
    return first_error(errors);
  }
};

// ------------------------------------------------------------ subprocess

/// Runs each shard in a freshly fork/exec'd cpsinw_shard_worker, up to
/// `threads` children at a time.  The parent speaks the shard_io protocol
/// over two pipes with a single poll loop (write stdin while draining
/// stdout — a worker that misbehaves and writes early can never deadlock
/// the campaign) and a hard wall-clock deadline per shard.
class SubprocessExecutor final : public PooledExecutorBase {
 public:
  SubprocessExecutor(ExecutorSpec spec, int threads)
      : PooledExecutorBase(threads), spec_(std::move(spec)) {}

  [[nodiscard]] const char* name() const override { return "subprocess"; }

  [[nodiscard]] std::string run(const std::vector<ShardTask>& tasks,
                                const ShardExecOptions& options) override {
    // Metric handles are resolved once per run; all null when telemetry
    // is off.
    queue_wait_s_ = exec_s_ = fork_exec_s_ = nullptr;
    spawns_ = failures_ = stdin_bytes_ = stdout_bytes_ = nullptr;
    if (telemetry_ != nullptr) {
      telemetry::Registry& reg = telemetry_->registry;
      queue_wait_s_ = &reg.histogram("subprocess.queue_wait_s");
      exec_s_ = &reg.histogram("subprocess.shard_exec_s");
      fork_exec_s_ = &reg.histogram("subprocess.fork_exec_s");
      spawns_ = &reg.counter("subprocess.spawns");
      failures_ = &reg.counter("subprocess.failures");
      stdin_bytes_ = &reg.counter("subprocess.stdin_bytes");
      stdout_bytes_ = &reg.counter("subprocess.stdout_bytes");
    }
    std::vector<std::string> errors(tasks.size());
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const ShardTask& task = tasks[t];
      // Each pool task blocks on one child, so `threads` caps the number
      // of live workers.
      const telemetry::TimePoint enqueued = telemetry::Clock::now();
      pool_.submit([this, &task, &options, &errors, enqueued, t] {
        if (queue_wait_s_ != nullptr)
          CPSINW_TELEM(queue_wait_s_->record_since(enqueued));
        const telemetry::TimePoint start = telemetry::Clock::now();
        errors[t] = run_one(task, options);
        if (exec_s_ != nullptr) CPSINW_TELEM(exec_s_->record_since(start));
        trace_shard_span(trace(), "subprocess", *task.shard, start);
      });
    }
    pool_.wait_idle();
    return first_error(errors);
  }

 private:
  /// Executes one shard in a child process; returns "" or the failure
  /// text.  On any failure the slot is placeholder-filled here.
  [[nodiscard]] std::string run_one(const ShardTask& task,
                                    const ShardExecOptions& options) {
    std::string error = exchange_with_worker(task, options);
    if (!error.empty()) {
      if (failures_ != nullptr) CPSINW_TELEM(failures_->add());
      fill_failed_shard(*task.universe, *task.shard,
                        options.fault_sample_fraction, *task.slot);
      error = "subprocess worker (job " + std::to_string(task.shard->job) +
              ", shard " + std::to_string(task.shard->index) + "): " + error;
    }
    return error;
  }

  [[nodiscard]] std::string exchange_with_worker(
      const ShardTask& task, const ShardExecOptions& options) {
    // A worker that died mid-conversation turns our writes into EPIPE;
    // keep the signal from killing the campaign.  The mask is per-thread
    // and the pool's threads are private to this run.
    sigset_t sigpipe;
    sigemptyset(&sigpipe);
    sigaddset(&sigpipe, SIGPIPE);
    pthread_sigmask(SIG_BLOCK, &sigpipe, nullptr);

    const std::string input = serialize_shard_input(
        task.context->circuit(), task.context->patterns(), *task.universe,
        *task.shard, options);

    // argv must be ready before fork(): only async-signal-safe calls are
    // allowed in the child of a multithreaded process.
    std::vector<std::string> argv_store;
    argv_store.push_back(spec_.worker_path);
    for (const std::string& a : spec_.worker_args) argv_store.push_back(a);
    std::vector<char*> argv;
    for (std::string& a : argv_store) argv.push_back(a.data());
    argv.push_back(nullptr);

    // O_CLOEXEC from birth: pool threads fork concurrently, so a plain
    // pipe() could leak this conversation's fds into a sibling's child —
    // whose inherited copy of our write end would then hold our worker's
    // stdin open past EOF until that sibling exited.  dup2 below clears
    // the flag on the child's own stdio copies.
    int to_child[2];
    int from_child[2];
    if (pipe2(to_child, O_CLOEXEC) != 0)
      return std::string("pipe2: ") + std::strerror(errno);
    if (pipe2(from_child, O_CLOEXEC) != 0) {
      const std::string e = std::string("pipe2: ") + std::strerror(errno);
      close(to_child[0]);
      close(to_child[1]);
      return e;
    }

    [[maybe_unused]] const telemetry::TimePoint t_fork =
        telemetry::Clock::now();
    const pid_t pid = fork();
    if (pid < 0) {
      const std::string e = std::string("fork: ") + std::strerror(errno);
      for (const int fd : {to_child[0], to_child[1], from_child[0],
                           from_child[1]})
        close(fd);
      return e;
    }
    if (pid == 0) {
      dup2(to_child[0], STDIN_FILENO);
      dup2(from_child[1], STDOUT_FILENO);
      for (const int fd : {to_child[0], to_child[1], from_child[0],
                           from_child[1]})
        close(fd);
      execv(argv[0], argv.data());
      _exit(127);  // exec failed (missing or non-executable worker)
    }
    if (fork_exec_s_ != nullptr)
      CPSINW_TELEM(fork_exec_s_->record_since(t_fork));
    if (spawns_ != nullptr) CPSINW_TELEM(spawns_->add());

    close(to_child[0]);
    close(from_child[1]);
    const int in_fd = to_child[1];
    const int out_fd = from_child[0];
    fcntl(in_fd, F_SETFL, O_NONBLOCK);
    fcntl(out_fd, F_SETFL, O_NONBLOCK);

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(
                              spec_.worker_timeout_s);
    std::string output;
    std::size_t written = 0;
    bool stdin_open = true;
    bool timed_out = false;
    bool io_failed = false;

    while (true) {
      struct pollfd fds[2];
      int nfds = 0;
      int write_slot = -1;
      if (stdin_open) {
        fds[nfds] = {in_fd, POLLOUT, 0};
        write_slot = nfds++;
      }
      const int read_slot = nfds;
      fds[nfds++] = {out_fd, POLLIN, 0};

      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline -
                                     std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        timed_out = true;
        break;
      }
      const int rc = poll(fds, static_cast<nfds_t>(nfds),
                          static_cast<int>(remaining.count()));
      if (rc < 0) {
        if (errno == EINTR) continue;
        io_failed = true;
        break;
      }
      if (rc == 0) {
        timed_out = true;
        break;
      }

      if (write_slot >= 0 && fds[write_slot].revents != 0) {
        if ((fds[write_slot].revents & (POLLERR | POLLHUP)) != 0) {
          // Worker hung up its stdin (crashed or done reading early);
          // its exit status tells the real story below.
          close(in_fd);
          stdin_open = false;
        } else {
          const ssize_t n = write(in_fd, input.data() + written,
                                  input.size() - written);
          if (n > 0) {
            written += static_cast<std::size_t>(n);
            if (written == input.size()) {
              close(in_fd);  // EOF tells the worker the document is done
              stdin_open = false;
            }
          } else if (n < 0 && errno != EAGAIN && errno != EINTR) {
            close(in_fd);
            stdin_open = false;
          }
        }
      }
      if (fds[read_slot].revents != 0) {
        char buf[1 << 16];
        const ssize_t n = read(out_fd, buf, sizeof buf);
        if (n > 0) {
          output.append(buf, static_cast<std::size_t>(n));
        } else if (n == 0) {
          break;  // worker closed stdout: conversation over
        } else if (errno != EAGAIN && errno != EINTR) {
          io_failed = true;
          break;
        }
      }
    }
    if (stdin_open) close(in_fd);
    close(out_fd);
    if (stdin_bytes_ != nullptr)
      CPSINW_TELEM(stdin_bytes_->add(written));
    if (stdout_bytes_ != nullptr)
      CPSINW_TELEM(stdout_bytes_->add(output.size()));

    int status = 0;
    if (timed_out) {
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);
      char buf[64];
      std::snprintf(buf, sizeof buf, "timed out after %.3gs (killed)",
                    spec_.worker_timeout_s);
      return buf;
    }
    if (waitpid(pid, &status, 0) < 0)
      return std::string("waitpid: ") + std::strerror(errno);
    if (WIFSIGNALED(status))
      return "killed by signal " + std::to_string(WTERMSIG(status));
    if (WIFEXITED(status) && WEXITSTATUS(status) != 0)
      return "exited with code " + std::to_string(WEXITSTATUS(status));
    if (io_failed) return "pipe I/O failed";

    ShardResult result;
    try {
      result = parse_shard_result(output);
    } catch (const std::exception& e) {
      return std::string("malformed result: ") + e.what();
    }
    const std::string mismatch = check_shard_result(result, *task.shard);
    if (!mismatch.empty()) return mismatch;
    // The worker's execution span is reconstructed from its reported
    // elapsed time, ending when its stdout closed, on this pool thread's
    // dedicated worker lane (children run one at a time per thread, so
    // lanes never carry overlapping spans).
    if (trace() != nullptr)
      trace()->add_remote_span(
          "worker:run_shard j" + std::to_string(result.job) + "." +
              std::to_string(result.index),
          "subprocess", telemetry::Clock::now(), result.elapsed_s,
          telemetry::TraceRecorder::remote_tid(
              telemetry::TraceRecorder::current_tid()));
    *task.slot = std::move(result);
    return {};
  }

  ExecutorSpec spec_;
  telemetry::Histogram* queue_wait_s_ = nullptr;
  telemetry::Histogram* exec_s_ = nullptr;
  telemetry::Histogram* fork_exec_s_ = nullptr;
  telemetry::Counter* spawns_ = nullptr;
  telemetry::Counter* failures_ = nullptr;
  telemetry::Counter* stdin_bytes_ = nullptr;
  telemetry::Counter* stdout_bytes_ = nullptr;
};

}  // namespace

std::unique_ptr<ShardExecutor> make_shard_executor(const ExecutorSpec& spec,
                                                   int threads) {
  switch (spec.backend) {
    case ExecutorBackend::kInline:
      return std::make_unique<InlineExecutor>();
    case ExecutorBackend::kThreadPool:
      return std::make_unique<ThreadPoolExecutor>(threads);
    case ExecutorBackend::kSubprocess:
      if (spec.worker_path.empty())
        throw std::invalid_argument(
            "make_shard_executor: subprocess backend requires worker_path");
      if (!(spec.worker_timeout_s > 0.0))
        throw std::invalid_argument(
            "make_shard_executor: worker_timeout_s must be > 0");
      return std::make_unique<SubprocessExecutor>(spec, threads);
    case ExecutorBackend::kRemote:
      return make_remote_executor(spec, threads);
  }
  throw std::invalid_argument("make_shard_executor: unknown backend");
}

}  // namespace cpsinw::engine
