// Fault-list sharding: the unit of parallelism of a campaign.  A shard is
// a contiguous slice of one job's fault universe plus a forked RNG stream;
// executing it against the job's shared faults::EvalContext produces
// records that depend only on (circuit, universe slice, patterns, shard
// seed) — never on which thread ran it, when, or even in which process
// (the subprocess backend ships a shard through engine/shard_io and gets
// the same bytes back).  All shards of a job read one immutable context:
// patterns are packed and the good machine is simulated once per job, not
// once per shard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "faults/bridge.hpp"
#include "faults/eval_context.hpp"
#include "faults/fault_sim.hpp"
#include "util/rng.hpp"

namespace cpsinw::engine {

/// Fault classes a campaign reports on separately.
enum class FaultClass {
  kLineStuckAt,  ///< classical net/branch stuck-at
  kPolarity,     ///< stuck-at-n-type / stuck-at-p-type (paper's new model)
  kStuckOpen,    ///< channel break
  kStuckOn,      ///< resistive short
  kBridge,       ///< inter-net bridge
};

inline constexpr int kFaultClassCount = 5;

/// Readable class name ("line_stuck_at", ...; stable, used in JSON keys).
[[nodiscard]] const char* to_string(FaultClass cls);

/// Classifies a circuit fault (bridges are classified at construction).
[[nodiscard]] FaultClass classify(const faults::Fault& fault);

/// One fault of a campaign universe: either a circuit fault or a bridge.
struct CampaignFault {
  FaultClass cls = FaultClass::kLineStuckAt;
  faults::Fault fault;          ///< valid unless cls == kBridge
  faults::BridgeFault bridge;   ///< valid when cls == kBridge

  [[nodiscard]] static CampaignFault from_fault(const faults::Fault& f) {
    CampaignFault cf;
    cf.cls = classify(f);
    cf.fault = f;
    return cf;
  }
  [[nodiscard]] static CampaignFault from_bridge(
      const faults::BridgeFault& b) {
    CampaignFault cf;
    cf.cls = FaultClass::kBridge;
    cf.bridge = b;
    return cf;
  }
};

/// A contiguous slice [begin, end) of one job's fault universe.
struct Shard {
  int job = 0;    ///< index into the campaign's jobs
  int index = 0;  ///< shard index within the job
  std::size_t begin = 0;
  std::size_t end = 0;
  /// Forked stream for any stochastic decision inside the shard (fault
  /// sampling).  Depends on (campaign seed, job, index) only, so results
  /// are identical for every thread count.
  util::SplitMix64 rng = util::SplitMix64(0);
};

/// Per-fault outcome, parallel to the shard's slice.
struct FaultResult {
  FaultClass cls = FaultClass::kLineStuckAt;
  faults::DetectionRecord record;
  bool sampled_out = false;  ///< skipped by fault sampling (not simulated)
};

/// Everything one shard produces.
struct ShardResult {
  int job = 0;
  int index = 0;
  std::vector<FaultResult> results;
  double elapsed_s = 0.0;  ///< shard wall clock (reporting only)
};

/// Execution controls shared by every shard of a campaign.
struct ShardExecOptions {
  faults::FaultSimOptions sim;
  /// Simulate each fault with this probability (classic fault sampling for
  /// coverage estimation on huge universes); 1.0 simulates everything.
  double fault_sample_fraction = 1.0;
};

/// Deterministically partitions `fault_count` faults of `job` into shards
/// of at most `shard_size`, forking one RNG stream per shard from
/// `job_rng`.
[[nodiscard]] std::vector<Shard> make_shards(int job,
                                             std::size_t fault_count,
                                             std::size_t shard_size,
                                             const util::SplitMix64& job_rng);

/// Executes one shard against the job's shared evaluation context (the
/// campaign path: the context is built once per job and shared by every
/// shard and thread).
[[nodiscard]] ShardResult run_shard(const faults::EvalContext& ctx,
                                    const std::vector<CampaignFault>& universe,
                                    const Shard& shard,
                                    const ShardExecOptions& options);

/// Convenience wrapper: builds a private context over (ckt, patterns) and
/// runs the shard against it.  Bit-identical to the shared-context path.
[[nodiscard]] ShardResult run_shard(
    const logic::Circuit& ckt, const std::vector<CampaignFault>& universe,
    const std::vector<logic::Pattern>& patterns, const Shard& shard,
    const ShardExecOptions& options);

}  // namespace cpsinw::engine
