#include "engine/campaign.hpp"

#include <chrono>
#include <fstream>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/test_flow.hpp"
#include "engine/telemetry.hpp"
#include "engine/thread_pool.hpp"
#include "faults/fault_list.hpp"
#include "util/log.hpp"

namespace cpsinw::engine {

const char* to_string(PatternSourceSpec::Kind kind) {
  switch (kind) {
    case PatternSourceSpec::Kind::kExplicit: return "explicit";
    case PatternSourceSpec::Kind::kRandom: return "random";
    case PatternSourceSpec::Kind::kAtpg: return "atpg";
  }
  return "?";
}

std::vector<CampaignFault> build_universe(const logic::Circuit& ckt,
                                          const FaultModelSelection& models,
                                          bool observe_iddq) {
  faults::FaultListOptions flo;
  flo.include_line_stuck_at = models.line_stuck_at;
  flo.include_transistor_faults =
      models.polarity || models.stuck_open || models.stuck_on;
  flo.collapse = models.collapse;
  // Stuck-on faults that are logic-equivalent to a line stuck-at still
  // differ in IDDQ signature; the generator keeps them when IDDQ is
  // observed.
  flo.observe_iddq = observe_iddq;

  std::vector<CampaignFault> universe;
  for (const faults::Fault& f : generate_fault_list(ckt, flo)) {
    const CampaignFault cf = CampaignFault::from_fault(f);
    const bool keep = (cf.cls == FaultClass::kLineStuckAt &&
                       models.line_stuck_at) ||
                      (cf.cls == FaultClass::kPolarity && models.polarity) ||
                      (cf.cls == FaultClass::kStuckOpen &&
                       models.stuck_open) ||
                      (cf.cls == FaultClass::kStuckOn && models.stuck_on);
    if (keep) universe.push_back(cf);
  }
  if (models.bridge)
    for (const faults::BridgeFault& b :
         faults::enumerate_adjacent_bridges(ckt))
      universe.push_back(CampaignFault::from_bridge(b));
  return universe;
}

std::vector<logic::Pattern> build_patterns(const logic::Circuit& ckt,
                                           const PatternSourceSpec& source,
                                           util::SplitMix64 job_rng) {
  switch (source.kind) {
    case PatternSourceSpec::Kind::kExplicit:
      return source.explicit_patterns;

    case PatternSourceSpec::Kind::kRandom: {
      if (source.random_count < 1)
        throw std::invalid_argument("build_patterns: random_count >= 1");
      std::vector<logic::Pattern> out;
      out.reserve(static_cast<std::size_t>(source.random_count));
      for (int k = 0; k < source.random_count; ++k) {
        logic::Pattern p(ckt.primary_inputs().size());
        for (logic::LogicV& v : p)
          v = logic::from_bool(job_rng.chance(source.one_probability));
        out.push_back(std::move(p));
      }
      return out;
    }

    case PatternSourceSpec::Kind::kAtpg: {
      core::TestFlowOptions opt;
      opt.compact = source.atpg_compact;
      const core::TestSuite suite = core::run_test_flow(ckt, opt);
      std::vector<logic::Pattern> out = suite.logic_patterns;
      out.insert(out.end(), suite.iddq_patterns.begin(),
                 suite.iddq_patterns.end());
      // Two-pattern tests ride along as consecutive (init, test) pairs so
      // campaigns with sequential_patterns see the retention sequences.
      for (const atpg::TwoPatternTest& t : suite.two_pattern_tests) {
        out.push_back(t.init);
        out.push_back(t.test);
      }
      return out;
    }
  }
  throw std::invalid_argument("build_patterns: unknown source kind");
}

namespace {

/// Everything one job needs, materialized before any shard runs.  The
/// evaluation context (packed patterns + good machine + dictionaries) is
/// built once here and shared read-only by every shard of the job.
struct JobData {
  const CircuitJobSpec* spec = nullptr;
  std::vector<CampaignFault> universe;
  std::unique_ptr<faults::EvalContext> context;
  std::vector<Shard> shards;
  std::vector<ShardResult> results;  ///< slot per shard, filled in parallel
};

}  // namespace

CampaignReport run_campaign(const CampaignSpec& spec) {
  // Telemetry is per-campaign: a private registry (so the report's
  // telemetry block covers exactly this run, even with concurrent
  // campaigns in one process) plus the trace recorder behind trace_path.
  // With both knobs off the executor keeps a null pointer and every
  // instrumentation site short-circuits.
  telemetry::CampaignTelemetry telem;
  const bool telemetry_on = spec.emit_telemetry || !spec.trace_path.empty();
  if (!spec.trace_path.empty()) telem.trace.enable();

  const telemetry::TimePoint t_validate = telemetry::Clock::now();

  // Spec validation happens up front, before any work runs: a malformed
  // spec throws std::invalid_argument with the offending field named,
  // never a downstream failure from deep inside a shard.
  if (spec.fault_sample_fraction <= 0.0 || spec.fault_sample_fraction > 1.0)
    throw std::invalid_argument(
        "run_campaign: fault_sample_fraction must be in (0, 1]");
  if (spec.shard_size == 0)
    throw std::invalid_argument("run_campaign: shard_size must be > 0");
  if (spec.threads < 0)
    throw std::invalid_argument(
        "run_campaign: threads must be >= 0 (0 = hardware concurrency), got " +
        std::to_string(spec.threads));
  // Builds (and therefore validates) the selected backend before the
  // setup phase spends any cycles.
  std::unique_ptr<ShardExecutor> executor =
      make_shard_executor(spec.executor, spec.threads);

  const util::SplitMix64 campaign_rng(spec.seed);

  std::vector<JobData> jobs(spec.jobs.size());
  for (std::size_t j = 0; j < spec.jobs.size(); ++j) {
    jobs[j].spec = &spec.jobs[j];
    if (!jobs[j].spec->circuit.finalized())
      throw std::invalid_argument("run_campaign: circuit not finalized: " +
                                  jobs[j].spec->name);
    // Explicit patterns apply to every job, so a PI-count mismatch is
    // certain to blow up mid-campaign — fail fast, naming the job.
    if (spec.patterns.kind == PatternSourceSpec::Kind::kExplicit) {
      const std::size_t pis = jobs[j].spec->circuit.primary_inputs().size();
      for (std::size_t p = 0; p < spec.patterns.explicit_patterns.size(); ++p)
        if (spec.patterns.explicit_patterns[p].size() != pis)
          throw std::invalid_argument(
              "run_campaign: explicit pattern " + std::to_string(p) +
              " has arity " +
              std::to_string(spec.patterns.explicit_patterns[p].size()) +
              " but job '" + jobs[j].spec->name + "' has " +
              std::to_string(pis) + " primary inputs");
    }
  }

  ShardExecOptions exec;
  exec.sim = spec.sim;
  exec.sim.detection_mode = spec.detection_mode;
  exec.fault_sample_fraction = spec.fault_sample_fraction;

  if (telemetry_on) {
    executor->set_telemetry(&telem);
    telem.registry.histogram("campaign.validate_s")
        .record_since(t_validate);
    telem.trace.add_span("campaign:validate", "phase", t_validate,
                         telemetry::Clock::now());
  }

  const auto t0 = std::chrono::steady_clock::now();

  // ---- Setup phase, one unit per job: universe, patterns (ATPG runs
  // here, so an all-kAtpg campaign generates tests in parallel too) and
  // shard decomposition.  Each job's RNG streams are forked from the
  // campaign seed by job index, so scheduling cannot affect them.  Setup
  // runs on the executor's compute resource (serial for kInline, the one
  // shared pool otherwise); its errors are spec-level problems and still
  // throw — only shard-phase failures degrade to the error slot. ---------
  std::vector<std::function<void()>> setup_tasks;
  setup_tasks.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    setup_tasks.push_back([&jobs, &spec, &campaign_rng, j] {
      JobData& job = jobs[j];
      job.universe = build_universe(job.spec->circuit, spec.models,
                                    spec.sim.observe_iddq);
      job.context = std::make_unique<faults::EvalContext>(
          job.spec->circuit,
          build_patterns(
              job.spec->circuit, spec.patterns,
              campaign_rng.fork(2 * static_cast<std::uint64_t>(j))));
      job.shards = make_shards(
          static_cast<int>(j), job.universe.size(), spec.shard_size,
          campaign_rng.fork(2 * static_cast<std::uint64_t>(j) + 1));
      job.results.resize(job.shards.size());
    });
  }
  const telemetry::TimePoint t_setup = telemetry::Clock::now();
  executor->run_setup(setup_tasks);
  const double setup_s =
      std::chrono::duration<double>(telemetry::Clock::now() - t_setup)
          .count();
  if (telemetry_on) {
    telem.registry.histogram("campaign.setup_s").record(setup_s);
    telem.trace.add_span("campaign:setup", "phase", t_setup,
                         telemetry::Clock::now());
  }

  // ---- Shard phase, delegated to the selected backend.  Tasks are
  // handed over in canonical (job, shard) order and each fills its own
  // pre-sized slot, so the merge below never depends on execution order.
  // A failing shard does not abort the campaign: the backend fills the
  // slot with simulated-but-undetected placeholders (totals stay
  // complete, detections become lower bounds — the contract
  // CampaignReport::error documents) and reports the first failure. ------
  std::vector<ShardTask> tasks;
  int shard_count = 0;
  for (JobData& job : jobs) {
    for (std::size_t s = 0; s < job.shards.size(); ++s) {
      ++shard_count;
      tasks.push_back({job.context.get(), &job.universe, &job.shards[s],
                       &job.results[s]});
    }
  }
  const telemetry::TimePoint t_shards = telemetry::Clock::now();
  const std::string shard_error = executor->run(tasks, exec);
  if (telemetry_on) {
    telem.registry.histogram("campaign.shard_phase_s")
        .record_since(t_shards);
    telem.trace.add_span("campaign:shards", "phase", t_shards,
                         telemetry::Clock::now());
  }

  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // ---- Deterministic merge in (job, shard) order. ------------------------
  const telemetry::TimePoint t_merge = telemetry::Clock::now();
  CampaignReport report;
  report.seed = spec.seed;
  report.shard_size = spec.shard_size;
  report.pattern_source = to_string(spec.patterns.kind);
  report.fault_sample_fraction = spec.fault_sample_fraction;
  report.observe_iddq = spec.sim.observe_iddq;
  report.detection_mode = spec.detection_mode;
  report.error = shard_error;

  double sampled_fault_patterns = 0.0;
  for (const JobData& job : jobs) {
    JobReport jr;
    jr.circuit = job.spec->name;
    jr.gate_count = job.spec->circuit.gate_count();
    jr.transistor_count = job.spec->circuit.transistor_count();
    jr.pattern_count = static_cast<int>(job.context->pattern_count());
    for (const ShardResult& sr : job.results)
      accumulate_shard(jr, sr, jr.pattern_count, spec.sim.observe_iddq);
    sampled_fault_patterns += static_cast<double>(jr.totals().sampled) *
                              static_cast<double>(jr.pattern_count);
    report.jobs.push_back(std::move(jr));
  }

  report.timing.backend = executor->name();
  report.timing.threads =
      spec.executor.backend == ExecutorBackend::kInline
          ? 1
          : (spec.threads > 0 ? spec.threads : ThreadPool::hardware_threads());
  report.timing.shard_count = shard_count;
  report.timing.wall_s = wall_s;
  for (const JobReport& jr : report.jobs)
    report.timing.shard_time_sum_s += jr.shard_time_sum_s;
  report.timing.fault_patterns_per_s =
      wall_s > 0.0 ? sampled_fault_patterns / wall_s : 0.0;
  report.timing.setup_s = setup_s;
  report.timing.merge_s =
      std::chrono::duration<double>(telemetry::Clock::now() - t_merge)
          .count();

  if (telemetry_on) {
    telem.registry.histogram("campaign.merge_s").record(report.timing.merge_s);
    telem.trace.add_span("campaign:merge", "phase", t_merge,
                         telemetry::Clock::now());
  }
  if (spec.emit_telemetry) {
    report.emit_telemetry = true;
    report.telemetry = telem.registry.snapshot();
  }
  if (!spec.trace_path.empty()) {
    // A failing trace write never fails the campaign — the report is the
    // product, the trace is a diagnostic.
    std::ofstream out(spec.trace_path,
                      std::ios::binary | std::ios::trunc);
    out << telem.trace.to_chrome_json() << "\n";
    if (!out)
      util::log_kv(util::LogLevel::kWarn, "trace_write_failed",
                   {{"path", spec.trace_path}});
  }
  return report;
}

}  // namespace cpsinw::engine
