#include "engine/campaign.hpp"

#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "core/test_flow.hpp"
#include "engine/thread_pool.hpp"
#include "faults/fault_list.hpp"

namespace cpsinw::engine {

const char* to_string(PatternSourceSpec::Kind kind) {
  switch (kind) {
    case PatternSourceSpec::Kind::kExplicit: return "explicit";
    case PatternSourceSpec::Kind::kRandom: return "random";
    case PatternSourceSpec::Kind::kAtpg: return "atpg";
  }
  return "?";
}

std::vector<CampaignFault> build_universe(const logic::Circuit& ckt,
                                          const FaultModelSelection& models) {
  faults::FaultListOptions flo;
  flo.include_line_stuck_at = models.line_stuck_at;
  flo.include_transistor_faults =
      models.polarity || models.stuck_open || models.stuck_on;
  flo.collapse = models.collapse;

  std::vector<CampaignFault> universe;
  for (const faults::Fault& f : generate_fault_list(ckt, flo)) {
    const CampaignFault cf = CampaignFault::from_fault(f);
    const bool keep = (cf.cls == FaultClass::kLineStuckAt &&
                       models.line_stuck_at) ||
                      (cf.cls == FaultClass::kPolarity && models.polarity) ||
                      (cf.cls == FaultClass::kStuckOpen &&
                       models.stuck_open) ||
                      (cf.cls == FaultClass::kStuckOn && models.stuck_on);
    if (keep) universe.push_back(cf);
  }
  if (models.bridge)
    for (const faults::BridgeFault& b :
         faults::enumerate_adjacent_bridges(ckt))
      universe.push_back(CampaignFault::from_bridge(b));
  return universe;
}

std::vector<logic::Pattern> build_patterns(const logic::Circuit& ckt,
                                           const PatternSourceSpec& source,
                                           util::SplitMix64 job_rng) {
  switch (source.kind) {
    case PatternSourceSpec::Kind::kExplicit:
      return source.explicit_patterns;

    case PatternSourceSpec::Kind::kRandom: {
      if (source.random_count < 1)
        throw std::invalid_argument("build_patterns: random_count >= 1");
      std::vector<logic::Pattern> out;
      out.reserve(static_cast<std::size_t>(source.random_count));
      for (int k = 0; k < source.random_count; ++k) {
        logic::Pattern p(ckt.primary_inputs().size());
        for (logic::LogicV& v : p)
          v = logic::from_bool(job_rng.chance(source.one_probability));
        out.push_back(std::move(p));
      }
      return out;
    }

    case PatternSourceSpec::Kind::kAtpg: {
      core::TestFlowOptions opt;
      opt.compact = source.atpg_compact;
      const core::TestSuite suite = core::run_test_flow(ckt, opt);
      std::vector<logic::Pattern> out = suite.logic_patterns;
      out.insert(out.end(), suite.iddq_patterns.begin(),
                 suite.iddq_patterns.end());
      // Two-pattern tests ride along as consecutive (init, test) pairs so
      // campaigns with sequential_patterns see the retention sequences.
      for (const atpg::TwoPatternTest& t : suite.two_pattern_tests) {
        out.push_back(t.init);
        out.push_back(t.test);
      }
      return out;
    }
  }
  throw std::invalid_argument("build_patterns: unknown source kind");
}

namespace {

/// Everything one job needs, materialized before any shard runs.  The
/// evaluation context (packed patterns + good machine + dictionaries) is
/// built once here and shared read-only by every shard of the job.
struct JobData {
  const CircuitJobSpec* spec = nullptr;
  std::vector<CampaignFault> universe;
  std::unique_ptr<faults::EvalContext> context;
  std::vector<Shard> shards;
  std::vector<ShardResult> results;  ///< slot per shard, filled in parallel
};

}  // namespace

CampaignReport run_campaign(const CampaignSpec& spec) {
  if (spec.fault_sample_fraction <= 0.0 || spec.fault_sample_fraction > 1.0)
    throw std::invalid_argument(
        "run_campaign: fault_sample_fraction must be in (0, 1]");

  const util::SplitMix64 campaign_rng(spec.seed);

  std::vector<JobData> jobs(spec.jobs.size());
  for (std::size_t j = 0; j < spec.jobs.size(); ++j) {
    jobs[j].spec = &spec.jobs[j];
    if (!jobs[j].spec->circuit.finalized())
      throw std::invalid_argument("run_campaign: circuit not finalized: " +
                                  jobs[j].spec->name);
    // Explicit patterns apply to every job, so a PI-count mismatch is
    // certain to blow up mid-campaign — fail fast, naming the job.
    if (spec.patterns.kind == PatternSourceSpec::Kind::kExplicit) {
      const std::size_t pis = jobs[j].spec->circuit.primary_inputs().size();
      for (std::size_t p = 0; p < spec.patterns.explicit_patterns.size(); ++p)
        if (spec.patterns.explicit_patterns[p].size() != pis)
          throw std::invalid_argument(
              "run_campaign: explicit pattern " + std::to_string(p) +
              " has arity " +
              std::to_string(spec.patterns.explicit_patterns[p].size()) +
              " but job '" + jobs[j].spec->name + "' has " +
              std::to_string(pis) + " primary inputs");
    }
  }

  ShardExecOptions exec;
  exec.sim = spec.sim;
  exec.fault_sample_fraction = spec.fault_sample_fraction;

  const auto t0 = std::chrono::steady_clock::now();
  int shard_count = 0;
  std::exception_ptr first_error;
  std::exception_ptr first_shard_error;
  std::mutex error_mutex;
  {
    ThreadPool pool(spec.threads);

    // ---- Setup phase, one task per job: universe, patterns (ATPG runs
    // here, so an all-kAtpg campaign generates tests in parallel too) and
    // shard decomposition.  Each job's RNG streams are forked from the
    // campaign seed by job index, so scheduling cannot affect them. --------
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      pool.submit([&jobs, j, &spec, &campaign_rng, &first_error,
                   &error_mutex] {
        try {
          JobData& job = jobs[j];
          job.universe = build_universe(job.spec->circuit, spec.models);
          job.context = std::make_unique<faults::EvalContext>(
              job.spec->circuit,
              build_patterns(
                  job.spec->circuit, spec.patterns,
                  campaign_rng.fork(2 * static_cast<std::uint64_t>(j))));
          job.shards = make_shards(
              static_cast<int>(j), job.universe.size(), spec.shard_size,
              campaign_rng.fork(2 * static_cast<std::uint64_t>(j) + 1));
          job.results.resize(job.shards.size());
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    pool.wait_idle();
    if (first_error) std::rethrow_exception(first_error);

    // ---- Shard phase: each shard fills its own pre-sized slot, reading
    // the job's shared context.  A failing shard does not abort the
    // campaign: the first failure is surfaced on the report's error slot
    // and the remaining shards still contribute their records. -------------
    for (JobData& job : jobs) {
      for (std::size_t s = 0; s < job.shards.size(); ++s) {
        ++shard_count;
        pool.submit([&job, s, &exec, &first_shard_error, &error_mutex] {
          try {
            job.results[s] =
                run_shard(*job.context, job.universe, job.shards[s], exec);
          } catch (...) {
            {
              std::lock_guard<std::mutex> lock(error_mutex);
              if (!first_shard_error)
                first_shard_error = std::current_exception();
            }
            // Keep the merge honest: the failed shard's faults stay in
            // the report as simulated-but-undetected, so every detection
            // count and coverage is a lower bound (the contract
            // CampaignReport::error documents).
            const Shard& shard = job.shards[s];
            ShardResult& slot = job.results[s];
            slot.job = shard.job;
            slot.index = shard.index;
            slot.results.assign(shard.end - shard.begin, {});
            for (std::size_t i = shard.begin; i < shard.end; ++i)
              slot.results[i - shard.begin].cls = job.universe[i].cls;
          }
        });
      }
    }
    pool.wait_idle();
    // Belt and braces: anything that slipped past the per-task handlers
    // (it cannot today, but the pool-level capture keeps this future-proof)
    // is treated like a shard failure, not silently dropped.
    if (!first_shard_error) first_shard_error = pool.first_exception();
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // ---- Deterministic merge in (job, shard) order. ------------------------
  CampaignReport report;
  report.seed = spec.seed;
  report.shard_size = spec.shard_size;
  report.pattern_source = to_string(spec.patterns.kind);
  report.fault_sample_fraction = spec.fault_sample_fraction;
  report.observe_iddq = spec.sim.observe_iddq;
  if (first_shard_error) {
    try {
      std::rethrow_exception(first_shard_error);
    } catch (const std::exception& e) {
      report.error = e.what();
    } catch (...) {
      report.error = "unknown shard failure";
    }
  }

  double sampled_fault_patterns = 0.0;
  for (const JobData& job : jobs) {
    JobReport jr;
    jr.circuit = job.spec->name;
    jr.gate_count = job.spec->circuit.gate_count();
    jr.transistor_count = job.spec->circuit.transistor_count();
    jr.pattern_count = static_cast<int>(job.context->pattern_count());
    for (const ShardResult& sr : job.results)
      accumulate_shard(jr, sr, jr.pattern_count, spec.sim.observe_iddq);
    sampled_fault_patterns += static_cast<double>(jr.totals().sampled) *
                              static_cast<double>(jr.pattern_count);
    report.jobs.push_back(std::move(jr));
  }

  report.timing.threads =
      spec.threads > 0 ? spec.threads : ThreadPool::hardware_threads();
  report.timing.shard_count = shard_count;
  report.timing.wall_s = wall_s;
  for (const JobReport& jr : report.jobs)
    report.timing.shard_time_sum_s += jr.shard_time_sum_s;
  report.timing.fault_patterns_per_s =
      wall_s > 0.0 ? sampled_fault_patterns / wall_s : 0.0;
  return report;
}

}  // namespace cpsinw::engine
