// Fault-campaign engine: a whole sweep (circuits x fault models x a
// pattern source) as one first-class object, executed as sharded work
// units on a work-stealing pool and merged into a deterministic
// CampaignReport.  Bit-identical results for every thread count are an
// API guarantee: all stochastic choices flow from per-job / per-shard
// forks of the campaign seed, and the merge order is fixed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/report.hpp"
#include "engine/shard.hpp"
#include "logic/circuit.hpp"

namespace cpsinw::engine {

/// Where a job's patterns come from.
struct PatternSourceSpec {
  enum class Kind {
    kExplicit,  ///< caller-provided patterns (applied to every job)
    kRandom,    ///< seeded random patterns, one stream per job
    kAtpg,      ///< run the full CP test-generation flow per job
  };
  Kind kind = Kind::kRandom;

  // kExplicit:
  std::vector<logic::Pattern> explicit_patterns;

  // kRandom:
  int random_count = 256;
  double one_probability = 0.5;

  // kAtpg:
  bool atpg_compact = true;
};

/// Readable source name ("explicit", "random", "atpg").
[[nodiscard]] const char* to_string(PatternSourceSpec::Kind kind);

/// Which fault models populate the universe.
struct FaultModelSelection {
  bool line_stuck_at = true;
  bool polarity = true;    ///< stuck-at-n-type / stuck-at-p-type
  bool stuck_open = true;  ///< channel break
  bool stuck_on = true;    ///< resistive short
  bool bridge = false;     ///< adjacent-net bridge universe (large!)
  /// Collapse equivalent faults before classification (note: collapsing
  /// runs on the full transistor universe, so a kept representative may
  /// stand for merged faults of a deselected class).
  bool collapse = true;
};

/// One circuit of a campaign.
struct CircuitJobSpec {
  std::string name;
  logic::Circuit circuit;  ///< finalized
};

/// A complete campaign description.
struct CampaignSpec {
  std::vector<CircuitJobSpec> jobs;
  FaultModelSelection models;
  PatternSourceSpec patterns;
  faults::FaultSimOptions sim;
  std::uint64_t seed = 1;
  std::size_t shard_size = 64;  ///< faults per work unit
  int threads = 1;              ///< 0 = hardware concurrency
  double fault_sample_fraction = 1.0;
};

/// Builds the classified fault universe of one circuit (deterministic
/// enumeration order; exposed so tests can reproduce exactly what a
/// campaign simulates).
[[nodiscard]] std::vector<CampaignFault> build_universe(
    const logic::Circuit& ckt, const FaultModelSelection& models);

/// Materializes the pattern set of one job.  `job_rng` is consumed only by
/// the random source (fork it per job as the campaign does).
[[nodiscard]] std::vector<logic::Pattern> build_patterns(
    const logic::Circuit& ckt, const PatternSourceSpec& source,
    util::SplitMix64 job_rng);

/// Runs the campaign.  Shards execute in arbitrary order on the pool; the
/// report they merge into does not depend on that order.
[[nodiscard]] CampaignReport run_campaign(const CampaignSpec& spec);

}  // namespace cpsinw::engine
