// Fault-campaign engine: a whole sweep (circuits x fault models x a
// pattern source) as one first-class object, executed as sharded work
// units on a work-stealing pool and merged into a deterministic
// CampaignReport.  Bit-identical results for every thread count are an
// API guarantee: all stochastic choices flow from per-job / per-shard
// forks of the campaign seed, and the merge order is fixed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/executor.hpp"
#include "engine/report.hpp"
#include "engine/shard.hpp"
#include "logic/circuit.hpp"

namespace cpsinw::engine {

/// Where a job's patterns come from.
struct PatternSourceSpec {
  enum class Kind {
    kExplicit,  ///< caller-provided patterns (applied to every job)
    kRandom,    ///< seeded random patterns, one stream per job
    kAtpg,      ///< run the full CP test-generation flow per job
  };
  Kind kind = Kind::kRandom;

  // kExplicit:
  std::vector<logic::Pattern> explicit_patterns;

  // kRandom:
  int random_count = 256;
  double one_probability = 0.5;

  // kAtpg:
  bool atpg_compact = true;
};

/// Readable source name ("explicit", "random", "atpg").
[[nodiscard]] const char* to_string(PatternSourceSpec::Kind kind);

/// Which fault models populate the universe.
struct FaultModelSelection {
  bool line_stuck_at = true;
  bool polarity = true;    ///< stuck-at-n-type / stuck-at-p-type
  bool stuck_open = true;  ///< channel break
  bool stuck_on = true;    ///< resistive short
  bool bridge = false;     ///< adjacent-net bridge universe (large!)
  /// Collapse equivalent faults before classification (note: collapsing
  /// runs on the full transistor universe, so a kept representative may
  /// stand for merged faults of a deselected class).
  bool collapse = true;
};

/// One circuit of a campaign.
struct CircuitJobSpec {
  std::string name;
  logic::Circuit circuit;  ///< finalized
};

/// A complete campaign description.
struct CampaignSpec {
  std::vector<CircuitJobSpec> jobs;
  FaultModelSelection models;
  PatternSourceSpec patterns;
  faults::FaultSimOptions sim;
  /// Detection semantics for the whole campaign (authoritative: overrides
  /// whatever `sim.detection_mode` holds).  kFull keeps the historical
  /// whole-pattern-set detection flags; kFirstOnly lets every simulation
  /// path stop at the first counted detection, changing the records —
  /// still deterministically merged, and serialized in the report JSON
  /// only when non-default.
  faults::DetectionMode detection_mode = faults::DetectionMode::kFull;
  std::uint64_t seed = 1;
  std::size_t shard_size = 64;  ///< faults per work unit (must be > 0)
  /// Worker threads (kThreadPool), or maximum concurrent child processes
  /// (kSubprocess); 0 = hardware concurrency, ignored by kInline.  Must
  /// not be negative.
  int threads = 1;
  double fault_sample_fraction = 1.0;
  /// How the shard phase executes.  Any backend and any thread count
  /// produce byte-identical stable JSON — the executor only decides
  /// where shards run, never what they compute.
  ExecutorSpec executor;
  /// Opt-in "telemetry" block in the report JSON (counters, gauges,
  /// latency histograms collected by this campaign) plus setup_s/merge_s
  /// in the timing section.  Default off: the stable JSON stays
  /// byte-identical to an uninstrumented run.
  bool emit_telemetry = false;
  /// When non-empty, the campaign records phase/shard/RPC spans and
  /// writes a Chrome trace-event JSON file here on completion (load it
  /// in chrome://tracing or Perfetto).  Empty = no span overhead at all.
  std::string trace_path;
};

/// Builds the classified fault universe of one circuit (deterministic
/// enumeration order; exposed so tests can reproduce exactly what a
/// campaign simulates).  `observe_iddq` must match the campaign's IDDQ
/// observation: it decides whether stuck-on faults that are only
/// logic-equivalent to a line stuck-at may be collapsed onto it.
[[nodiscard]] std::vector<CampaignFault> build_universe(
    const logic::Circuit& ckt, const FaultModelSelection& models,
    bool observe_iddq = false);

/// Materializes the pattern set of one job.  `job_rng` is consumed only by
/// the random source (fork it per job as the campaign does).
[[nodiscard]] std::vector<logic::Pattern> build_patterns(
    const logic::Circuit& ckt, const PatternSourceSpec& source,
    util::SplitMix64 job_rng);

/// Runs the campaign on the backend selected by `spec.executor`.  Shards
/// execute in arbitrary order; the report they merge into does not depend
/// on that order (nor on the backend).
/// @throws std::invalid_argument on a malformed spec (shard_size == 0,
///   negative threads, fault_sample_fraction outside (0, 1], unfinalized
///   circuits, explicit-pattern arity mismatches, a subprocess backend
///   without a worker_path, or a remote backend with an empty endpoint
///   list or a malformed "host:port" entry); per-shard execution failures
///   never throw — they surface on CampaignReport::error
[[nodiscard]] CampaignReport run_campaign(const CampaignSpec& spec);

}  // namespace cpsinw::engine
