#include "engine/json_reader.hpp"

#include <cstdlib>
#include <stdexcept>

namespace cpsinw::engine {

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr)
    throw std::runtime_error("json: missing key '" + key + "'");
  return *v;
}

bool JsonValue::as_bool(const char* what) const {
  if (type != Type::kBool)
    throw std::runtime_error(std::string("json: ") + what + " is not a bool");
  return boolean;
}

double JsonValue::as_double(const char* what) const {
  if (type != Type::kNumber)
    throw std::runtime_error(std::string("json: ") + what +
                             " is not a number");
  return number;
}

int JsonValue::as_int(const char* what) const {
  const double d = as_double(what);
  if (!(d >= -2147483648.0 && d <= 2147483647.0))
    throw std::runtime_error(std::string("json: ") + what +
                             " is out of int range");
  const int i = static_cast<int>(d);
  if (static_cast<double>(i) != d)
    throw std::runtime_error(std::string("json: ") + what +
                             " is not an integer");
  return i;
}

const std::string& JsonValue::as_string(const char* what) const {
  if (type != Type::kString)
    throw std::runtime_error(std::string("json: ") + what +
                             " is not a string");
  return string;
}

std::uint64_t JsonValue::as_u64(const char* what) const {
  const std::string& s = as_string(what);
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
    throw std::runtime_error(std::string("json: ") + what +
                             " is not a decimal u64 string");
  return std::strtoull(s.c_str(), nullptr, 10);
}

const std::vector<JsonValue>& JsonValue::as_array(const char* what) const {
  if (type != Type::kArray)
    throw std::runtime_error(std::string("json: ") + what +
                             " is not an array");
  return array;
}

JsonValue JsonParser::parse() {
  JsonValue v = parse_value();
  skip_ws();
  if (pos_ != text_.size()) fail("trailing characters");
  return v;
}

void JsonParser::fail(const std::string& why) const {
  throw std::runtime_error("json: malformed JSON at byte " +
                           std::to_string(pos_) + ": " + why);
}

void JsonParser::skip_ws() {
  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
      ++pos_;
    else
      break;
  }
}

char JsonParser::peek() {
  skip_ws();
  if (pos_ >= text_.size()) fail("unexpected end of input");
  return text_[pos_];
}

void JsonParser::expect(char c) {
  if (peek() != c) fail(std::string("expected '") + c + "'");
  ++pos_;
}

JsonValue JsonParser::parse_value() {
  const char c = peek();
  switch (c) {
    case '{': return parse_object();
    case '[': return parse_array();
    case '"': return parse_string();
    case 't': return parse_literal("true", JsonValue::Type::kBool, true);
    case 'f': return parse_literal("false", JsonValue::Type::kBool, false);
    case 'n': return parse_literal("null", JsonValue::Type::kNull, false);
    default: return parse_number();
  }
}

JsonValue JsonParser::parse_literal(const char* word, JsonValue::Type type,
                                    bool b) {
  for (const char* p = word; *p != '\0'; ++p, ++pos_)
    if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
  JsonValue v;
  v.type = type;
  v.boolean = b;
  return v;
}

JsonValue JsonParser::parse_number() {
  const std::size_t start = pos_;
  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
        c == 'e' || c == 'E')
      ++pos_;
    else
      break;
  }
  if (pos_ == start) fail("expected a value");
  const std::string slice = text_.substr(start, pos_ - start);
  char* end = nullptr;
  const double d = std::strtod(slice.c_str(), &end);
  if (end == nullptr || *end != '\0') fail("bad number '" + slice + "'");
  JsonValue v;
  v.type = JsonValue::Type::kNumber;
  v.number = d;
  return v;
}

JsonValue JsonParser::parse_string() {
  expect('"');
  JsonValue v;
  v.type = JsonValue::Type::kString;
  while (true) {
    if (pos_ >= text_.size()) fail("unterminated string");
    const char c = text_[pos_++];
    if (c == '"') break;
    if (c != '\\') {
      v.string += c;
      continue;
    }
    if (pos_ >= text_.size()) fail("unterminated escape");
    const char e = text_[pos_++];
    switch (e) {
      case '"': v.string += '"'; break;
      case '\\': v.string += '\\'; break;
      case '/': v.string += '/'; break;
      case 'n': v.string += '\n'; break;
      case 't': v.string += '\t'; break;
      case 'r': v.string += '\r'; break;
      case 'b': v.string += '\b'; break;
      case 'f': v.string += '\f'; break;
      case 'u': {
        if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
        unsigned code = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = text_[pos_++];
          code <<= 4;
          if (h >= '0' && h <= '9')
            code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f')
            code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F')
            code |= static_cast<unsigned>(h - 'A' + 10);
          else
            fail("bad \\u escape");
        }
        // The cpsinw writers only ever escape control characters; reject
        // the rest instead of mis-decoding UTF-16 surrogates.
        if (code > 0xff) fail("unsupported \\u escape");
        v.string += static_cast<char>(code);
        break;
      }
      default: fail("unknown escape");
    }
  }
  return v;
}

JsonValue JsonParser::parse_array() {
  expect('[');
  JsonValue v;
  v.type = JsonValue::Type::kArray;
  if (peek() == ']') {
    ++pos_;
    return v;
  }
  while (true) {
    v.array.push_back(parse_value());
    const char c = peek();
    ++pos_;
    if (c == ']') break;
    if (c != ',') fail("expected ',' or ']'");
  }
  return v;
}

JsonValue JsonParser::parse_object() {
  expect('{');
  JsonValue v;
  v.type = JsonValue::Type::kObject;
  if (peek() == '}') {
    ++pos_;
    return v;
  }
  while (true) {
    JsonValue key = parse_string();
    expect(':');
    v.object.emplace_back(std::move(key.string), parse_value());
    const char c = peek();
    ++pos_;
    if (c == '}') break;
    if (c != ',') fail("expected ',' or '}'");
  }
  return v;
}

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

}  // namespace cpsinw::engine
