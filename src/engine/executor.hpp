// Pluggable shard-executor backends.  A campaign's shard phase is "run
// these shards, deliver every ShardResult into its canonical slot"; how
// that happens — serially in-process, on the work-stealing pool, or
// fanned out to worker processes — is a backend choice that must never
// change the answer.  The campaign JSON is byte-identical across all
// backends (and all thread counts): shards are pure functions of
// (context, universe slice, shard seed), and the merge order is fixed
// upstream of the executor.
//
// Failure contract (all backends): a failing shard never aborts the
// campaign.  Its slot is filled with placeholder simulated-but-undetected
// records (totals stay complete, detections become lower bounds) and the
// first failure in canonical shard order is returned as the error text
// that run_campaign surfaces on CampaignReport::error.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/shard.hpp"
#include "engine/telemetry.hpp"
#include "engine/thread_pool.hpp"

namespace cpsinw::engine {

/// Available shard-phase execution strategies.
enum class ExecutorBackend {
  kInline,      ///< serial in-process loop (zero-dependency reference)
  kThreadPool,  ///< work-stealing in-process pool
  kSubprocess,  ///< fork/exec one cpsinw_shard_worker per shard
  kRemote,      ///< cpsinw_shard_server endpoints over TCP (multi-host)
};

/// Readable backend name ("inline", "thread_pool", "subprocess",
/// "remote").
[[nodiscard]] const char* to_string(ExecutorBackend backend);

/// Backend selection plus the knobs only some backends consume.
struct ExecutorSpec {
  ExecutorBackend backend = ExecutorBackend::kThreadPool;
  /// kSubprocess: path to the cpsinw_shard_worker binary (required).
  std::string worker_path;
  /// kSubprocess: extra argv entries passed to every worker (the failure
  /// injection tests use this; production campaigns leave it empty).
  std::vector<std::string> worker_args;
  /// kSubprocess + kRemote: per-shard wall-clock budget.  A worker that
  /// exceeds it is killed; a remote attempt that exceeds it (connect +
  /// send + receive) is abandoned and failed over.
  double worker_timeout_s = 120.0;
  /// kRemote: cpsinw_shard_server addresses as "host:port" strings
  /// (required, non-empty; each entry must parse).
  std::vector<std::string> endpoints;
  /// kRemote: maximum shards in flight on one endpoint at a time.
  int remote_max_in_flight = 2;
  /// kRemote: consecutive failures after which an endpoint is quarantined
  /// for the rest of the campaign (a downed host costs a few timeouts,
  /// not one per shard).
  int remote_quarantine_failures = 3;
};

/// One unit of shard-phase work: where to read and where to deliver.  All
/// pointers outlive the executor run (they live in the campaign's JobData).
struct ShardTask {
  const faults::EvalContext* context = nullptr;
  const std::vector<CampaignFault>* universe = nullptr;
  const Shard* shard = nullptr;
  ShardResult* slot = nullptr;
};

/// Fills a failed shard's slot with placeholder undetected records so the
/// merged report keeps complete totals (the CampaignReport::error
/// lower-bound contract).  Replays the shard's sampling decisions from its
/// RNG fork so the sampled universe — the coverage denominator — is the
/// same one a successful run would have simulated: a failed shard lowers
/// detection counts, never inflates the denominator.
void fill_failed_shard(const std::vector<CampaignFault>& universe,
                       const Shard& shard, double fault_sample_fraction,
                       ShardResult& slot);

/// Executes the shard phase of a campaign.
class ShardExecutor {
 public:
  virtual ~ShardExecutor() = default;

  /// Stable backend name (reported in the campaign's timing section).
  [[nodiscard]] virtual const char* name() const = 0;

  /// Runs the campaign's per-job setup tasks (universe, patterns, shard
  /// decomposition) on the backend's compute resource: serially for
  /// kInline, on the one shared pool otherwise (the subprocess backend
  /// also sets up in-parent — workers only ever see finished shards).
  /// Setup failures are spec-level problems, not shard failures: the
  /// first exception is rethrown.
  virtual void run_setup(const std::vector<std::function<void()>>& tasks) = 0;

  /// Runs every task, filling `task.slot` in place.  Per-shard failures do
  /// not throw: the failed slot is placeholder-filled and the first
  /// failure message in canonical task order is returned (empty string on
  /// full success).
  [[nodiscard]] virtual std::string run(const std::vector<ShardTask>& tasks,
                                        const ShardExecOptions& options) = 0;

  /// Points the executor at a campaign's telemetry (metric registry +
  /// trace recorder).  Null (the default) disables both: executors must
  /// tolerate a null pointer on every path, so standalone executor use
  /// stays zero-setup.  Call before run_setup/run; the pointee must
  /// outlive the executor run.
  void set_telemetry(telemetry::CampaignTelemetry* telemetry) {
    telemetry_ = telemetry;
  }

 protected:
  /// The campaign's telemetry, or null when telemetry is off.
  telemetry::CampaignTelemetry* telemetry_ = nullptr;

  /// The trace recorder, or null when telemetry/tracing is off.
  [[nodiscard]] telemetry::TraceRecorder* trace() const {
    return telemetry_ != nullptr ? &telemetry_->trace : nullptr;
  }
};

/// Common base of the concurrent backends: one ThreadPool serves both the
/// setup phase and the shard phase (no thread churn between phases; the
/// subprocess and remote backends use the pool's threads to pump their
/// per-shard I/O while setup always runs in-parent).
class PooledExecutorBase : public ShardExecutor {
 public:
  explicit PooledExecutorBase(int threads) : pool_(threads) {}

  void run_setup(const std::vector<std::function<void()>>& tasks) override;

 protected:
  ThreadPool pool_;
};

/// Builds the backend selected by `spec`.  `threads` means: ignored by
/// kInline, worker-thread count for kThreadPool, maximum concurrent child
/// processes for kSubprocess, maximum concurrent shard exchanges for
/// kRemote (0 selects the hardware concurrency).
/// @throws std::invalid_argument for kSubprocess without a worker_path or
///   with a non-positive timeout, and for kRemote with an empty endpoint
///   list, a malformed "host:port" entry, or non-positive
///   timeout/in-flight/quarantine knobs
[[nodiscard]] std::unique_ptr<ShardExecutor> make_shard_executor(
    const ExecutorSpec& spec, int threads);

}  // namespace cpsinw::engine
