#include "engine/report.hpp"

#include <cstdio>

namespace cpsinw::engine {

double ClassStats::coverage() const {
  if (total == 0) return 1.0;   // vacuous: nothing to cover
  if (sampled == 0) return 0.0; // every fault sampled out: no evidence
  return static_cast<double>(detected) / static_cast<double>(sampled);
}

void ClassStats::add(const ClassStats& other) {
  total += other.total;
  sampled += other.sampled;
  detected += other.detected;
  detected_output += other.detected_output;
  iddq_only += other.iddq_only;
  potential += other.potential;
}

ClassStats JobReport::totals() const {
  ClassStats t;
  for (const ClassStats& c : by_class) t.add(c);
  return t;
}

ClassStats CampaignReport::totals() const {
  ClassStats t;
  for (const JobReport& j : jobs) t.add(j.totals());
  return t;
}

void accumulate_shard(JobReport& job, const ShardResult& shard,
                      int pattern_count, bool observe_iddq) {
  for (const FaultResult& r : shard.results) {
    ClassStats& c = job.by_class[static_cast<std::size_t>(r.cls)];
    ++c.total;
    if (r.sampled_out) continue;
    ++c.sampled;
    if (r.record.detected(observe_iddq)) ++c.detected;
    if (r.record.detected_output) ++c.detected_output;
    if (r.record.detected_iddq && !r.record.detected_output) ++c.iddq_only;
    if (r.record.potential) ++c.potential;
    if (r.record.detected(observe_iddq) && r.record.first_pattern >= 0 &&
        pattern_count > 0) {
      int bucket = r.record.first_pattern * kHistogramBuckets / pattern_count;
      if (bucket >= kHistogramBuckets) bucket = kHistogramBuckets - 1;
      ++job.first_detect_histogram[static_cast<std::size_t>(bucket)];
    }
  }
  ++job.shard_count;
  job.shard_time_sum_s += shard.elapsed_s;
}

// ------------------------------------------------------------------- JSON

namespace {

/// Minimal append-only JSON writer with stable formatting: doubles via
/// "%.10g" so equal values always serialize to equal bytes.
class Json {
 public:
  void key(const std::string& k) {
    comma();
    append_quoted(k);
    out_ += ':';
    fresh_ = true;
  }
  void value(const std::string& v) {
    comma();
    append_quoted(v);
  }
  void value(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
  }
  void value(int v) {
    comma();
    out_ += std::to_string(v);
  }
  void value(double v) {
    comma();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    out_ += buf;
  }
  void value(bool v) {
    comma();
    out_ += v ? "true" : "false";
  }
  void open_object() {
    comma();
    out_ += '{';
    fresh_ = true;
  }
  void close_object() {
    out_ += '}';
    fresh_ = false;
  }
  void open_array() {
    comma();
    out_ += '[';
    fresh_ = true;
  }
  void close_array() {
    out_ += ']';
    fresh_ = false;
  }
  [[nodiscard]] std::string str() && { return std::move(out_); }

 private:
  void comma() {
    if (!fresh_) out_ += ',';
    fresh_ = false;
  }
  /// Strings come from caller-chosen job names — escape per RFC 8259.
  void append_quoted(const std::string& s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        case '\r': out_ += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }
  std::string out_;
  bool fresh_ = true;
};

void emit_class_stats(Json& j, const ClassStats& c) {
  j.open_object();
  j.key("total");
  j.value(c.total);
  j.key("sampled");
  j.value(c.sampled);
  j.key("detected");
  j.value(c.detected);
  j.key("detected_output");
  j.value(c.detected_output);
  j.key("iddq_only");
  j.value(c.iddq_only);
  j.key("potential");
  j.value(c.potential);
  j.key("coverage");
  j.value(c.coverage());
  j.close_object();
}

}  // namespace

std::string CampaignReport::to_json(bool include_timing) const {
  Json j;
  j.open_object();
  j.key("seed");
  j.value(static_cast<std::uint64_t>(seed));
  j.key("shard_size");
  j.value(static_cast<std::uint64_t>(shard_size));
  j.key("pattern_source");
  j.value(pattern_source);
  j.key("fault_sample_fraction");
  j.value(fault_sample_fraction);
  j.key("observe_iddq");
  j.value(observe_iddq);
  if (!error.empty()) {
    j.key("error");
    j.value(error);
  }

  j.key("jobs");
  j.open_array();
  for (const JobReport& job : jobs) {
    j.open_object();
    j.key("circuit");
    j.value(job.circuit);
    j.key("gates");
    j.value(job.gate_count);
    j.key("transistors");
    j.value(job.transistor_count);
    j.key("patterns");
    j.value(job.pattern_count);
    j.key("shards");
    j.value(job.shard_count);
    j.key("classes");
    j.open_object();
    for (int c = 0; c < kFaultClassCount; ++c) {
      const ClassStats& stats = job.by_class[static_cast<std::size_t>(c)];
      if (stats.total == 0) continue;
      j.key(to_string(static_cast<FaultClass>(c)));
      emit_class_stats(j, stats);
    }
    j.close_object();
    j.key("totals");
    emit_class_stats(j, job.totals());
    j.key("first_detect_histogram");
    j.open_array();
    for (const int n : job.first_detect_histogram) j.value(n);
    j.close_array();
    j.close_object();
  }
  j.close_array();

  j.key("totals");
  emit_class_stats(j, totals());

  if (include_timing) {
    j.key("timing");
    j.open_object();
    j.key("threads");
    j.value(timing.threads);
    j.key("shard_count");
    j.value(timing.shard_count);
    j.key("wall_s");
    j.value(timing.wall_s);
    j.key("shard_time_sum_s");
    j.value(timing.shard_time_sum_s);
    j.key("fault_patterns_per_s");
    j.value(timing.fault_patterns_per_s);
    j.close_object();
  }
  j.close_object();
  return std::move(j).str();
}

}  // namespace cpsinw::engine
