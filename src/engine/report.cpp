#include "engine/report.hpp"

#include "engine/json_writer.hpp"

namespace cpsinw::engine {

double ClassStats::coverage() const {
  if (total == 0) return 1.0;   // vacuous: nothing to cover
  if (sampled == 0) return 0.0; // every fault sampled out: no evidence
  return static_cast<double>(detected) / static_cast<double>(sampled);
}

void ClassStats::add(const ClassStats& other) {
  total += other.total;
  sampled += other.sampled;
  detected += other.detected;
  detected_output += other.detected_output;
  iddq_only += other.iddq_only;
  potential += other.potential;
}

ClassStats JobReport::totals() const {
  ClassStats t;
  for (const ClassStats& c : by_class) t.add(c);
  return t;
}

ClassStats CampaignReport::totals() const {
  ClassStats t;
  for (const JobReport& j : jobs) t.add(j.totals());
  return t;
}

void accumulate_shard(JobReport& job, const ShardResult& shard,
                      int pattern_count, bool observe_iddq) {
  for (const FaultResult& r : shard.results) {
    ClassStats& c = job.by_class[static_cast<std::size_t>(r.cls)];
    ++c.total;
    if (r.sampled_out) continue;
    ++c.sampled;
    if (r.record.detected(observe_iddq)) ++c.detected;
    if (r.record.detected_output) ++c.detected_output;
    if (r.record.detected_iddq && !r.record.detected_output) ++c.iddq_only;
    if (r.record.potential) ++c.potential;
    if (r.record.detected(observe_iddq) && r.record.first_pattern >= 0 &&
        pattern_count > 0) {
      int bucket = r.record.first_pattern * kHistogramBuckets / pattern_count;
      if (bucket >= kHistogramBuckets) bucket = kHistogramBuckets - 1;
      ++job.first_detect_histogram[static_cast<std::size_t>(bucket)];
    }
  }
  ++job.shard_count;
  job.shard_time_sum_s += shard.elapsed_s;
}

// ------------------------------------------------------------------- JSON

namespace {

using Json = JsonWriter;  // shared canonical-form writer (json_writer.hpp)

void emit_class_stats(Json& j, const ClassStats& c) {
  j.open_object();
  j.key("total");
  j.value(c.total);
  j.key("sampled");
  j.value(c.sampled);
  j.key("detected");
  j.value(c.detected);
  j.key("detected_output");
  j.value(c.detected_output);
  j.key("iddq_only");
  j.value(c.iddq_only);
  j.key("potential");
  j.value(c.potential);
  j.key("coverage");
  j.value(c.coverage());
  j.close_object();
}

}  // namespace

std::string CampaignReport::to_json(bool include_timing) const {
  Json j;
  j.open_object();
  j.key("seed");
  j.value(static_cast<std::uint64_t>(seed));
  j.key("shard_size");
  j.value(static_cast<std::uint64_t>(shard_size));
  j.key("pattern_source");
  j.value(pattern_source);
  j.key("fault_sample_fraction");
  j.value(fault_sample_fraction);
  j.key("observe_iddq");
  j.value(observe_iddq);
  if (detection_mode == faults::DetectionMode::kFirstOnly) {
    j.key("detection_mode");
    j.value("first_only");
  }
  if (!error.empty()) {
    j.key("error");
    j.value(error);
  }

  j.key("jobs");
  j.open_array();
  for (const JobReport& job : jobs) {
    j.open_object();
    j.key("circuit");
    j.value(job.circuit);
    j.key("gates");
    j.value(job.gate_count);
    j.key("transistors");
    j.value(job.transistor_count);
    j.key("patterns");
    j.value(job.pattern_count);
    j.key("shards");
    j.value(job.shard_count);
    j.key("classes");
    j.open_object();
    for (int c = 0; c < kFaultClassCount; ++c) {
      const ClassStats& stats = job.by_class[static_cast<std::size_t>(c)];
      if (stats.total == 0) continue;
      j.key(to_string(static_cast<FaultClass>(c)));
      emit_class_stats(j, stats);
    }
    j.close_object();
    j.key("totals");
    emit_class_stats(j, job.totals());
    j.key("first_detect_histogram");
    j.open_array();
    for (const int n : job.first_detect_histogram) j.value(n);
    j.close_array();
    j.close_object();
  }
  j.close_array();

  j.key("totals");
  emit_class_stats(j, totals());

  if (emit_telemetry) {
    // Same shape as the shard server's stats response: 64-bit values as
    // decimal strings (a double cannot carry a full uint64_t).
    j.key("telemetry");
    j.open_object();
    j.key("counters");
    j.open_object();
    for (const telemetry::CounterValue& c : telemetry.counters) {
      j.key(c.name);
      j.value(std::to_string(c.value));
    }
    j.close_object();
    j.key("gauges");
    j.open_object();
    for (const telemetry::GaugeValue& g : telemetry.gauges) {
      j.key(g.name);
      j.value(std::to_string(g.value));
    }
    j.close_object();
    j.key("histograms");
    j.open_object();
    for (const telemetry::HistogramValue& h : telemetry.histograms) {
      j.key(h.name);
      j.open_object();
      j.key("count");
      j.value(std::to_string(h.count));
      j.key("sum_s");
      j.value(h.sum_s);
      j.key("p50_s");
      j.value(h.quantile_s(0.5));
      j.key("p95_s");
      j.value(h.quantile_s(0.95));
      j.key("buckets");
      j.open_array();
      for (const std::uint64_t b : h.buckets) j.value(std::to_string(b));
      j.close_array();
      j.close_object();
    }
    j.close_object();
    j.close_object();
  }

  if (include_timing) {
    j.key("timing");
    j.open_object();
    j.key("backend");
    j.value(timing.backend);
    j.key("threads");
    j.value(timing.threads);
    j.key("shard_count");
    j.value(timing.shard_count);
    j.key("wall_s");
    j.value(timing.wall_s);
    j.key("shard_time_sum_s");
    j.value(timing.shard_time_sum_s);
    j.key("fault_patterns_per_s");
    j.value(timing.fault_patterns_per_s);
    if (emit_telemetry) {
      j.key("setup_s");
      j.value(timing.setup_s);
      j.key("merge_s");
      j.value(timing.merge_s);
    }
    j.close_object();
  }
  j.close_object();
  return std::move(j).str();
}

}  // namespace cpsinw::engine
