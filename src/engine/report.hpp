// Campaign result aggregation and JSON emission.  Everything outside the
// `timing` section is a pure function of the campaign spec — the JSON of
// the same spec is byte-identical at any thread count AND on any
// execution backend (inline, thread pool, subprocess workers); the
// cross-backend equivalence tests pin that guarantee down.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/shard.hpp"
#include "engine/telemetry.hpp"

namespace cpsinw::engine {

/// First-detect histograms bucket the pattern index into this many bins.
inline constexpr int kHistogramBuckets = 16;

/// Detection statistics of one fault class.
struct ClassStats {
  int total = 0;            ///< faults of this class in the universe
  int sampled = 0;          ///< actually simulated (fault sampling)
  int detected = 0;         ///< per the campaign's observation options
  int detected_output = 0;  ///< definite PO flip
  int iddq_only = 0;        ///< IDDQ anomaly without any PO flip
  int potential = 0;        ///< X reached a PO where good is defined

  /// detected / sampled; 1.0 for an empty class (nothing to cover) but
  /// 0.0 when fault sampling skipped every fault of a non-empty class.
  [[nodiscard]] double coverage() const;

  void add(const ClassStats& other);
};

/// Aggregated result of one circuit job.
struct JobReport {
  std::string circuit;
  int gate_count = 0;
  int transistor_count = 0;
  int pattern_count = 0;
  int shard_count = 0;
  std::array<ClassStats, kFaultClassCount> by_class;
  /// Count of first detections per pattern-index bucket.
  std::array<int, kHistogramBuckets> first_detect_histogram = {};
  double shard_time_sum_s = 0.0;  ///< reporting only, not in stable JSON

  [[nodiscard]] ClassStats totals() const;
};

/// Wall-clock statistics (never part of the deterministic JSON).
struct CampaignTiming {
  std::string backend;  ///< executor backend name ("inline", ...)
  int threads = 0;
  int shard_count = 0;
  double wall_s = 0.0;
  double shard_time_sum_s = 0.0;       ///< total CPU-side shard time
  double fault_patterns_per_s = 0.0;   ///< sampled faults x patterns / wall
  /// Phase breakdown (universe/pattern/shard construction vs the final
  /// deterministic merge).  Serialized only when the report's telemetry
  /// block is on.
  double setup_s = 0.0;
  double merge_s = 0.0;
};

/// The merged result of a whole campaign.
struct CampaignReport {
  std::uint64_t seed = 0;
  std::size_t shard_size = 0;
  std::string pattern_source;
  double fault_sample_fraction = 1.0;
  bool observe_iddq = true;
  /// The campaign's detection semantics.  Serialized (after observe_iddq)
  /// only when kFirstOnly, so default-mode JSON stays byte-identical to
  /// every report ever emitted in full mode.
  faults::DetectionMode detection_mode = faults::DetectionMode::kFull;
  /// First shard-phase task failure (what() text), empty on success.  A
  /// failed shard's slot is filled with default simulated-but-undetected
  /// records (totals stay complete), so a non-empty error marks every
  /// detection count and coverage below as a lower bound.  Serialized into
  /// the stable JSON only when non-empty — successful runs stay
  /// byte-identical.
  std::string error;
  std::vector<JobReport> jobs;
  CampaignTiming timing;
  /// Opt-in (CampaignSpec::emit_telemetry): when true, to_json appends a
  /// "telemetry" block with the campaign's metric snapshot — and only
  /// then, so the default output stays byte-identical across backends,
  /// thread counts, and instrumented vs uninstrumented builds.
  bool emit_telemetry = false;
  telemetry::RegistrySnapshot telemetry;

  [[nodiscard]] bool ok() const { return error.empty(); }
  [[nodiscard]] ClassStats totals() const;

  /// Deterministic JSON (stable key order, fixed float formatting).  With
  /// `include_timing` a trailing "timing" object is appended — only then
  /// does the output depend on the machine and thread count.  With
  /// `emit_telemetry` a "telemetry" object (counters/gauges/histograms)
  /// lands between "totals" and "timing"; its values are runtime-
  /// dependent, like timing.
  [[nodiscard]] std::string to_json(bool include_timing = false) const;
};

/// Folds one shard's results into a job report (the fold is commutative,
/// so any merge order yields the same report; the campaign still merges
/// in shard-index order for clarity).
void accumulate_shard(JobReport& job, const ShardResult& shard,
                      int pattern_count, bool observe_iddq);

}  // namespace cpsinw::engine
