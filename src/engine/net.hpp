// TCP plumbing for the distributed (kRemote) execution backend: endpoint
// parsing, deadline-bounded connect, and the length-prefixed frame that
// carries one shard_io v1 JSON document per direction.
//
// Framing: the subprocess backend delimits its documents with pipe EOF; a
// TCP connection that serves several shards needs explicit boundaries.  A
// frame is one ASCII header line `cpsinw-shard-io/1 <decimal-len>\n`
// followed by exactly <len> payload bytes.  The header carries the
// protocol version (checked on receive, in addition to the version field
// inside the JSON) and lets a receiver reject an oversized declaration
// before reading a single payload byte — remote peers are untrusted by
// design.
//
// Every blocking operation takes an absolute deadline and every failure is
// reported as an error string, never UB or an exception: the remote
// executor degrades failures to CampaignReport::error, so the transport
// must always hand it a message instead of tearing the process down.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include <sys/types.h>

namespace cpsinw::engine::net {

/// Absolute wall-clock budget for one blocking operation.
using Deadline = std::chrono::steady_clock::time_point;

/// Deadline `seconds` from now.
[[nodiscard]] Deadline deadline_after(double seconds);

/// Frame header magic; the trailing integer is the shard_io protocol
/// version (net frames exist only to carry shard_io documents).
inline constexpr const char* kFrameMagic = "cpsinw-shard-io/1";

/// Hard ceiling on a declared frame length.  A campaign shard document
/// (circuit + patterns + universe slice) for the paper's benchmark roster
/// is a few hundred KiB; 64 MiB leaves headroom for production-scale
/// circuits while keeping a lying peer from making us allocate the moon.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 26;

/// A parsed `host:port` worker address.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Parses `host:port` (numeric IPv4 or hostname, port 1..65535).
/// @throws std::invalid_argument naming the malformed text
[[nodiscard]] Endpoint parse_endpoint(const std::string& text);

/// Parses every entry; rejects an empty list.
/// @throws std::invalid_argument
[[nodiscard]] std::vector<Endpoint> parse_endpoints(
    const std::vector<std::string>& texts);

/// Connects to `ep` (non-blocking connect + poll against `deadline`).
/// Returns the connected fd (O_NONBLOCK, CLOEXEC) or -1 with `*error` set.
[[nodiscard]] int connect_endpoint(const Endpoint& ep, Deadline deadline,
                                   std::string* error);

/// Writes one frame (header + payload).  Returns false with `*error` set
/// on I/O failure or a missed deadline.
[[nodiscard]] bool send_frame(int fd, const std::string& payload,
                              Deadline deadline, std::string* error);

/// Reads one frame into `*payload`.  Returns false with `*error` set on
/// malformed/oversized headers, I/O failure, a missed deadline, or a
/// truncated payload.  A clean EOF before the first header byte also
/// returns false but leaves `*error` empty — the idle-connection close a
/// serving loop treats as "client done".
[[nodiscard]] bool recv_frame(int fd, std::string* payload, Deadline deadline,
                              std::size_t max_bytes, std::string* error);

/// Opens a loopback listener (SO_REUSEADDR; port 0 lets the kernel pick).
/// Returns the listening fd or -1 with `*error` set.
[[nodiscard]] int listen_on_loopback(std::uint16_t port, std::string* error);

/// The port a listening fd is bound to (0 on failure).
[[nodiscard]] std::uint16_t local_port(int listen_fd);

/// Blocking accept; returns the connection fd or -1 with `*error` set.
[[nodiscard]] int accept_connection(int listen_fd, std::string* error);

/// A cpsinw_shard_server child on an ephemeral loopback port: fork/exec
/// with `--port 0`, parse the advertised port from its stdout, kill on
/// destruction.  Lets tests and benches stand up real remote endpoints
/// without coordinating port numbers.
class LocalServerProcess {
 public:
  /// @param server_path path to the cpsinw_shard_server binary
  /// @param extra_args appended to argv (failure-injection flags)
  explicit LocalServerProcess(std::string server_path,
                              std::vector<std::string> extra_args = {});
  ~LocalServerProcess();

  LocalServerProcess(const LocalServerProcess&) = delete;
  LocalServerProcess& operator=(const LocalServerProcess&) = delete;

  /// False when spawn or port discovery failed; `error()` says why.
  [[nodiscard]] bool ok() const { return port_ != 0; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// "127.0.0.1:<port>" — the spec string a campaign consumes.
  [[nodiscard]] std::string endpoint() const;
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// SIGKILL + reap now (the destructor does the same).
  void terminate();

 private:
  pid_t pid_ = -1;
  std::uint16_t port_ = 0;
  std::string error_;
};

}  // namespace cpsinw::engine::net
