// Shard/result serialization for the subprocess execution backend.  A
// parent campaign ships one shard of work to a `cpsinw_shard_worker`
// process as a versioned JSON document on stdin and reads a versioned
// `ShardResult` JSON back on stdout.
//
// The circuit encoding preserves net and gate ids exactly (nets in id
// order tagged pi/const/plain, gates in id order) — unlike the .cpn
// exchange format, which renumbers both on read.  Identical ids are what
// make the worker's records bit-identical to an in-process `run_shard`:
// every fault in the shipped universe slice references nets and gates by
// index.
#pragma once

#include <string>
#include <vector>

#include "engine/shard.hpp"
#include "engine/telemetry.hpp"
#include "logic/circuit.hpp"

namespace cpsinw::engine {

/// Protocol version stamped into (and checked on) both documents.
inline constexpr int kShardIoVersion = 1;

/// Everything a worker process needs to execute one shard.  The fault
/// slice is shipped re-based: `faults` holds exactly the universe slice
/// [shard.begin, shard.end), and the reconstructed shard spans
/// [0, faults.size()) while keeping the original job/index identity.
struct ShardWorkInput {
  logic::Circuit circuit;                ///< finalized, ids preserved
  std::vector<logic::Pattern> patterns;  ///< the job's full pattern set
  std::vector<CampaignFault> faults;     ///< the shard's universe slice
  Shard shard;                           ///< begin = 0, end = faults.size()
  ShardExecOptions options;
};

/// Serializes one shard of an in-process campaign for a worker.
[[nodiscard]] std::string serialize_shard_input(
    const logic::Circuit& ckt, const std::vector<logic::Pattern>& patterns,
    const std::vector<CampaignFault>& universe, const Shard& shard,
    const ShardExecOptions& options);

/// Parses a worker's stdin document.
/// @throws std::runtime_error on malformed JSON, an unknown version, or a
///   document that fails circuit finalization
[[nodiscard]] ShardWorkInput parse_shard_input(const std::string& text);

/// Serializes a worker's result for stdout.
[[nodiscard]] std::string serialize_shard_result(const ShardResult& result);

/// Parses a worker's stdout document.
/// @throws std::runtime_error on malformed JSON or an unknown version
[[nodiscard]] ShardResult parse_shard_result(const std::string& text);

/// Stable content fingerprint of a (circuit, pattern set) pair — the
/// memoization key for endpoint-side context caching: two shard work
/// documents share one compiled faults::EvalContext iff their fingerprints
/// are byte-equal.  Uses the exact v1 circuit/pattern encodings, so it
/// covers everything that affects evaluation (net kinds and ids, gate
/// kinds/pins/outputs, PO marks, every pattern value).
[[nodiscard]] std::string context_fingerprint(
    const logic::Circuit& ckt, const std::vector<logic::Pattern>& patterns);

/// 64-bit FNV-1a of a fingerprint (compact form for log lines; the cache
/// itself compares full fingerprints, never hashes).
[[nodiscard]] std::uint64_t fingerprint_hash(const std::string& fingerprint);

// ------------------------------------------------------------- stats RPC
// Besides shard work documents, a cpsinw_shard_server accepts a tiny v1
// `stats` request and answers with a live telemetry snapshot (uptime,
// shards served, context-cache hit counters, per-shard latency
// histograms) so operators and CI can scrape a running endpoint without
// restarting it.

/// Live server telemetry, as served by the `stats` request.
struct ServerStats {
  double uptime_s = 0.0;
  telemetry::RegistrySnapshot metrics;
};

/// The framed `stats` request payload ({"version":1,"request":"stats"}).
[[nodiscard]] std::string serialize_stats_request();

/// True iff `text` is a well-formed v1 stats request.  Cheap on shard
/// work documents: anything beyond a small size ceiling is rejected on
/// length alone, so the server classifies every incoming frame with at
/// most one tiny parse.
[[nodiscard]] bool is_stats_request(const std::string& text);

/// Serializes a stats response (counters/gauges as decimal strings — a
/// double cannot carry a full 64-bit value).
[[nodiscard]] std::string serialize_stats_response(const ServerStats& stats);

/// Parses a stats response.
/// @throws std::runtime_error on malformed JSON or an unknown version
[[nodiscard]] ServerStats parse_stats_response(const std::string& text);

/// Cross-checks a parsed result against the shard it should answer for:
/// identity (job, index) and record count.  Returns "" on a match or the
/// mismatch description — shared by every backend that receives results
/// from another process (a confused worker must never fill the wrong
/// slot or a short slot).
[[nodiscard]] std::string check_shard_result(const ShardResult& result,
                                             const Shard& shard);

}  // namespace cpsinw::engine
