#include "engine/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace cpsinw::engine {

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads) {
  const int n = threads > 0 ? threads : hardware_threads();
  queues_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    threads_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(Task task) {
  const std::size_t slot =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  // Count before publishing: a nested submit's task can be popped and
  // finished the moment it lands in a deque, and its -- must never see the
  // counters pre-increment (underflow, premature wait_idle return).  A
  // worker waking between the increment and the push just re-scans.
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    ++queued_;
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> lock(queues_[slot]->mutex);
    queues_[slot]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

std::exception_ptr ThreadPool::first_exception() {
  std::lock_guard<std::mutex> lock(wake_mutex_);
  return first_exception_;
}

bool ThreadPool::try_pop_local(std::size_t index, Task& out) {
  WorkerQueue& q = *queues_[index];
  std::lock_guard<std::mutex> lock(q.mutex);
  if (q.tasks.empty()) return false;
  out = std::move(q.tasks.back());
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::try_steal(std::size_t thief, Task& out) {
  const std::size_t n = queues_.size();
  for (std::size_t k = 1; k < n; ++k) {
    WorkerQueue& q = *queues_[(thief + k) % n];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (q.tasks.empty()) continue;
    out = std::move(q.tasks.front());
    q.tasks.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  for (;;) {
    Task task;
    if (try_pop_local(index, task) || try_steal(index, task)) {
      {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        --queued_;
      }
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        if (!first_exception_) first_exception_ = std::current_exception();
      }
      bool idle = false;
      {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        idle = (--pending_ == 0);
      }
      if (idle) idle_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (stop_ && queued_ == 0) return;
  }
}

}  // namespace cpsinw::engine
