#include "engine/telemetry.hpp"

#include <algorithm>
#include <cmath>

#include "engine/json_writer.hpp"

namespace cpsinw::engine::telemetry {

// ------------------------------------------------------------ Histogram

double Histogram::bucket_upper_s(int i) {
  if (i <= 0) return 1e-6;
  if (i >= kBucketCount - 1) return 1e9;  // overflow bucket: effectively +inf
  return static_cast<double>(std::uint64_t{1} << i) * 1e-6;
}

int Histogram::bucket_of(double seconds) {
  if (!(seconds > 0.0)) return 0;
  const double us = seconds * 1e6;
  if (us < 1.0) return 0;
  // Bucket i >= 1 covers [2^(i-1), 2^i) microseconds.
  const auto whole = static_cast<std::uint64_t>(us);
  int bit = 0;
  for (std::uint64_t w = whole; w > 1; w >>= 1) ++bit;
  const int bucket = bit + 1;
  return bucket >= kBucketCount ? kBucketCount - 1 : bucket;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (int i = 0; i < kBucketCount; ++i) total += bucket(i);
  return total;
}

double HistogramValue::quantile_s(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target sample (1-based), then walk the cumulative counts.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t seen = 0;
  for (int i = 0; i < static_cast<int>(buckets.size()); ++i) {
    const std::uint64_t in_bucket = buckets[static_cast<std::size_t>(i)];
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= target) {
      const double lo = i == 0 ? 0.0 : Histogram::bucket_upper_s(i - 1);
      const double hi = i == static_cast<int>(buckets.size()) - 1
                            ? Histogram::bucket_upper_s(i - 1) * 2.0
                            : Histogram::bucket_upper_s(i);
      const double frac = static_cast<double>(target - seen) /
                          static_cast<double>(in_bucket);
      return lo + (hi - lo) * frac;
    }
    seen += in_bucket;
  }
  return Histogram::bucket_upper_s(static_cast<int>(buckets.size()) - 1);
}

// ------------------------------------------------------------- Registry

const CounterValue* RegistrySnapshot::find_counter(
    const std::string& name) const {
  for (const CounterValue& c : counters)
    if (c.name == name) return &c;
  return nullptr;
}

const HistogramValue* RegistrySnapshot::find_histogram(
    const std::string& name) const {
  for (const HistogramValue& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

RegistrySnapshot Registry::snapshot() const {
  RegistrySnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_)
    out.counters.push_back({name, c->value()});
  for (const auto& [name, g] : gauges_) out.gauges.push_back({name, g->value()});
  for (const auto& [name, h] : histograms_) {
    HistogramValue hv;
    hv.name = name;
    hv.sum_s = h->sum_s();
    hv.buckets.reserve(Histogram::kBucketCount);
    for (int i = 0; i < Histogram::kBucketCount; ++i) {
      const std::uint64_t b = h->bucket(i);
      hv.buckets.push_back(b);
      hv.count += b;
    }
    out.histograms.push_back(std::move(hv));
  }
  return out;
}

Registry& Registry::global() {
  // Leaked on purpose: metrics are recorded from detached server threads
  // and process-exit paths, so the registry must outlive static
  // destruction order.
  static Registry* g = new Registry();
  return *g;
}

// -------------------------------------------------------- TraceRecorder

TraceRecorder::TraceRecorder() : epoch_(Clock::now()) {}

namespace {

std::atomic<int> g_next_tid{1};

double us_between(TimePoint a, TimePoint b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

}  // namespace

int TraceRecorder::current_tid() {
  thread_local const int tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

int TraceRecorder::remote_tid(int index) {
  // A fixed band well above any realistic local thread count keeps
  // reconstructed remote lanes from colliding with live threads.
  return 1000000 + index;
}

void TraceRecorder::add_span(std::string name, std::string category,
                             TimePoint start, TimePoint end) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.ts_us = us_between(epoch_, start);
  ev.dur_us = us_between(start, end);
  if (ev.dur_us < 0.0) ev.dur_us = 0.0;
  ev.tid = current_tid();
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(ev));
}

void TraceRecorder::add_remote_span(std::string name, std::string category,
                                    TimePoint end, double dur_s, int tid) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.dur_us = dur_s > 0.0 ? dur_s * 1e6 : 0.0;
  ev.ts_us = us_between(epoch_, end) - ev.dur_us;
  if (ev.ts_us < 0.0) ev.ts_us = 0.0;
  ev.tid = tid;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::string TraceRecorder::to_chrome_json() const {
  std::vector<TraceEvent> sorted = events();
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  JsonWriter j;
  j.open_object();
  j.key("traceEvents");
  j.open_array();
  for (const TraceEvent& ev : sorted) {
    j.open_object();
    j.key("name");
    j.value(ev.name);
    j.key("cat");
    j.value(ev.category);
    j.key("ph");
    j.value("X");
    j.key("ts");
    j.value(ev.ts_us);
    j.key("dur");
    j.value(ev.dur_us);
    j.key("pid");
    j.value(1);
    j.key("tid");
    j.value(ev.tid);
    j.close_object();
  }
  j.close_array();
  j.key("displayTimeUnit");
  j.value("ms");
  j.close_object();
  return std::move(j).str();
}

}  // namespace cpsinw::engine::telemetry
