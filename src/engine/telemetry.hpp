// Campaign telemetry substrate: a process-wide (or per-campaign),
// thread-safe registry of named counters, gauges, and fixed-bucket
// latency histograms, plus a span recorder that exports Chrome
// trace-event JSON (loadable in chrome://tracing or Perfetto).
//
// Cost model: metric *lookups* take a mutex (do them once, outside hot
// loops — every engine call site caches the returned reference); metric
// *updates* are single relaxed atomic RMWs, cheap enough to leave on in
// production.  The CPSINW_TELEM macro compiles even those out
// (-DCPSINW_TELEMETRY_OFF) for apples-to-apples kernel benchmarking.
// Span recording takes a mutex per span; spans are shard/phase/RPC
// granularity, never per-fault.
//
// Determinism: nothing in this file feeds the stable CampaignReport
// JSON unless CampaignSpec::emit_telemetry opts in — with the default
// off, campaign output stays byte-identical to an uninstrumented build.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifdef CPSINW_TELEMETRY_OFF
#define CPSINW_TELEM(expr) ((void)0)
#else
/// Wraps a metric update so the packed hot paths can compile telemetry
/// out entirely: CPSINW_TELEM(counter.add(n));
#define CPSINW_TELEM(expr) (expr)
#endif

namespace cpsinw::engine::telemetry {

/// Monotonic clock every span and latency measurement uses.
using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;

/// Monotonically increasing event count.  All operations are relaxed
/// atomics: totals are exact, ordering against other metrics is not
/// promised (snapshots are "recent", not "instantaneous").
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// A value that goes up and down (queue depth, live connections).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Latency histogram with fixed power-of-two buckets: bucket 0 holds
/// samples below 1 us, bucket i (i >= 1) holds [2^(i-1), 2^i) us, and the
/// last bucket overflows upward (~67 s and beyond).  Fixed bounds mean
/// recording is a branch-free index computation plus one relaxed
/// increment, and two histograms merge by adding buckets.
class Histogram {
 public:
  static constexpr int kBucketCount = 28;

  /// Upper bound of bucket i in seconds (+inf for the last bucket,
  /// represented as a very large value).
  [[nodiscard]] static double bucket_upper_s(int i);
  /// Bucket index for a duration in seconds.
  [[nodiscard]] static int bucket_of(double seconds);

  void record(double seconds) {
    buckets_[static_cast<std::size_t>(bucket_of(seconds))].fetch_add(
        1, std::memory_order_relaxed);
    sum_ns_.fetch_add(
        seconds > 0.0 ? static_cast<std::uint64_t>(seconds * 1e9) : 0,
        std::memory_order_relaxed);
  }
  void record_since(TimePoint start) {
    record(std::chrono::duration<double>(Clock::now() - start).count());
  }

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum_s() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  [[nodiscard]] std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
  std::atomic<std::uint64_t> sum_ns_{0};
};

// ----------------------------------------------------------- snapshots

/// One counter's name and value as read at snapshot time.
struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

/// One gauge's name and value as read at snapshot time.
struct GaugeValue {
  std::string name;
  std::int64_t value = 0;
};

/// One histogram's name, totals, and raw buckets as read at snapshot
/// time (quantiles are derived from the frozen buckets, not the live
/// metric).
struct HistogramValue {
  std::string name;
  std::uint64_t count = 0;
  double sum_s = 0.0;
  std::vector<std::uint64_t> buckets;  ///< kBucketCount entries

  /// Quantile estimate (linear interpolation inside the winning bucket).
  /// Returns 0 for an empty histogram.
  [[nodiscard]] double quantile_s(double q) const;
};

/// Point-in-time dump of one registry, sorted by metric name.
struct RegistrySnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  [[nodiscard]] const CounterValue* find_counter(
      const std::string& name) const;
  [[nodiscard]] const HistogramValue* find_histogram(
      const std::string& name) const;
};

/// Named-metric registry.  Lookup creates on first use and returns a
/// reference that stays valid for the registry's lifetime (metrics are
/// node-allocated); cache it outside loops.  `global()` is the
/// process-wide instance the shard server exports through the `stats`
/// request; campaigns additionally carry their own private registry so a
/// report's telemetry block covers exactly one campaign.
class Registry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  [[nodiscard]] RegistrySnapshot snapshot() const;

  [[nodiscard]] static Registry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// ---------------------------------------------------------------- spans

/// One completed interval in a trace ("ph":"X" in the Chrome trace-event
/// format).  Timestamps are microseconds relative to the recorder's
/// epoch.
struct TraceEvent {
  std::string name;
  std::string category;
  double ts_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;
};

/// Collects spans from any number of threads and serializes them as a
/// chrome://tracing-loadable JSON document.  Disabled recorders drop
/// every span with one relaxed load, so instrumentation can stay in
/// place unconditionally.
class TraceRecorder {
 public:
  TraceRecorder();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] TimePoint epoch() const { return epoch_; }

  /// Records [start, end) on the calling thread's lane.
  void add_span(std::string name, std::string category, TimePoint start,
                TimePoint end);
  /// Records a reconstructed remote interval: `dur_s` of work that ended
  /// at local time `end` on lane `tid` (server/worker spans are rebuilt
  /// client-side from the reported elapsed time — the remote clock never
  /// enters the trace, so lanes stay consistent).
  void add_remote_span(std::string name, std::string category, TimePoint end,
                       double dur_s, int tid);

  /// Stable small integer for the calling thread (process-wide).
  [[nodiscard]] static int current_tid();
  /// Lane numbers above any real thread's, for reconstructed remote
  /// spans (`index` 0, 1, ... map to distinct lanes).
  [[nodiscard]] static int remote_tid(int index);

  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}).
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  std::atomic<bool> enabled_{false};
  TimePoint epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// RAII span: records [construction, destruction) on `recorder` when it
/// is non-null and enabled.  The name is only materialized when the span
/// will actually be kept.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, const char* name,
             const char* category = "engine")
      : recorder_(recorder != nullptr && recorder->enabled() ? recorder
                                                             : nullptr),
        name_(name),
        category_(category),
        start_(recorder_ != nullptr ? Clock::now() : TimePoint()) {}
  ScopedSpan(TraceRecorder* recorder, std::string name,
             const char* category = "engine")
      : recorder_(recorder != nullptr && recorder->enabled() ? recorder
                                                             : nullptr),
        dynamic_name_(std::move(name)),
        category_(category),
        start_(recorder_ != nullptr ? Clock::now() : TimePoint()) {}
  ~ScopedSpan() {
    if (recorder_ != nullptr)
      recorder_->add_span(
          name_ != nullptr ? std::string(name_) : std::move(dynamic_name_),
          category_, start_, Clock::now());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  const char* name_ = nullptr;
  std::string dynamic_name_;
  const char* category_;
  TimePoint start_;
};

// ------------------------------------------------------------- campaign

/// Everything one campaign run collects: a private metric registry (so
/// the report's telemetry block covers exactly this campaign, even with
/// concurrent campaigns in the process) and the trace recorder behind
/// CampaignSpec::trace_path.  run_campaign owns one and hands a pointer
/// to the executor; a null pointer means "telemetry off" everywhere.
struct CampaignTelemetry {
  Registry registry;
  TraceRecorder trace;
};

}  // namespace cpsinw::engine::telemetry
