#include "engine/net.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "engine/telemetry.hpp"

namespace cpsinw::engine::net {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Milliseconds until `deadline`, clamped to >= 0; -1 signals "already
/// expired" to the callers' poll loops.
int remaining_ms(Deadline deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  if (left.count() <= 0) return -1;
  return static_cast<int>(left.count());
}

/// Polls `fd` for `events` until the deadline.  Returns true when ready,
/// false with `*error` set on timeout or poll failure.
bool wait_ready(int fd, short events, Deadline deadline, std::string* error) {
  while (true) {
    const int budget = remaining_ms(deadline);
    if (budget < 0) {
      *error = "timed out";
      return false;
    }
    struct pollfd pfd = {fd, events, 0};
    const int rc = poll(&pfd, 1, budget);
    if (rc > 0) return true;
    if (rc == 0) {
      *error = "timed out";
      return false;
    }
    if (errno != EINTR) {
      *error = errno_text("poll");
      return false;
    }
  }
}

/// Writes all of [data, data+len) respecting the deadline.
bool write_all(int fd, const char* data, std::size_t len, Deadline deadline,
               std::string* error) {
  std::size_t done = 0;
  while (done < len) {
    if (!wait_ready(fd, POLLOUT, deadline, error)) return false;
    // MSG_NOSIGNAL: a peer that closed mid-frame must become an error
    // string, not a SIGPIPE that kills the campaign.
    const ssize_t n =
        send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
    } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
               errno != EINTR) {
      *error = errno_text("send");
      return false;
    }
  }
  return true;
}

/// Reads exactly `len` bytes; a premature EOF is an error.
bool read_exact(int fd, std::string* out, std::size_t len, Deadline deadline,
                std::string* error) {
  std::size_t done = 0;
  out->clear();
  out->reserve(len);
  char buf[1 << 16];
  while (done < len) {
    if (!wait_ready(fd, POLLIN, deadline, error)) return false;
    const std::size_t want = std::min(len - done, sizeof buf);
    const ssize_t n = recv(fd, buf, want, 0);
    if (n > 0) {
      out->append(buf, static_cast<std::size_t>(n));
      done += static_cast<std::size_t>(n);
    } else if (n == 0) {
      *error = "connection closed mid-frame (" + std::to_string(done) +
               " of " + std::to_string(len) + " payload bytes)";
      return false;
    } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      *error = errno_text("recv");
      return false;
    }
  }
  return true;
}

void set_nonblock_cloexec(int fd) {
  fcntl(fd, F_SETFL, fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  fcntl(fd, F_SETFD, fcntl(fd, F_GETFD, 0) | FD_CLOEXEC);
}

}  // namespace

Deadline deadline_after(double seconds) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(seconds));
}

Endpoint parse_endpoint(const std::string& text) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos || text.find(':', colon + 1) !=
                                        std::string::npos)
    throw std::invalid_argument("parse_endpoint: '" + text +
                                "' is not host:port");
  const std::string host = text.substr(0, colon);
  const std::string port = text.substr(colon + 1);
  if (host.empty())
    throw std::invalid_argument("parse_endpoint: '" + text +
                                "' has an empty host");
  if (port.empty() || port.size() > 5 ||
      port.find_first_not_of("0123456789") != std::string::npos)
    throw std::invalid_argument("parse_endpoint: '" + text +
                                "' has a malformed port");
  const long value = std::strtol(port.c_str(), nullptr, 10);
  if (value < 1 || value > 65535)
    throw std::invalid_argument("parse_endpoint: '" + text +
                                "' port out of range 1..65535");
  return {host, static_cast<std::uint16_t>(value)};
}

std::vector<Endpoint> parse_endpoints(const std::vector<std::string>& texts) {
  if (texts.empty())
    throw std::invalid_argument(
        "parse_endpoints: remote backend requires at least one endpoint");
  std::vector<Endpoint> out;
  out.reserve(texts.size());
  for (const std::string& t : texts) out.push_back(parse_endpoint(t));
  return out;
}

int connect_endpoint(const Endpoint& ep, Deadline deadline,
                     std::string* error) {
  const std::string where = ep.host + ":" + std::to_string(ep.port);

  struct addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* info = nullptr;
  const std::string port = std::to_string(ep.port);
  const int gai = getaddrinfo(ep.host.c_str(), port.c_str(), &hints, &info);
  if (gai != 0 || info == nullptr) {
    *error = "resolve " + where + ": " + gai_strerror(gai);
    return -1;
  }

  const int fd = socket(info->ai_family,
                        info->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        info->ai_protocol);
  if (fd < 0) {
    *error = errno_text("socket");
    freeaddrinfo(info);
    return -1;
  }

  const int rc = connect(fd, info->ai_addr, info->ai_addrlen);
  freeaddrinfo(info);
  if (rc != 0 && errno != EINPROGRESS) {
    *error = "connect to " + where + ": " + std::strerror(errno);
    close(fd);
    return -1;
  }
  if (rc != 0) {
    std::string wait_error;
    if (!wait_ready(fd, POLLOUT, deadline, &wait_error)) {
      *error = "connect to " + where + ": " + wait_error;
      close(fd);
      return -1;
    }
    int so_error = 0;
    socklen_t len = sizeof so_error;
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      *error = "connect to " + where + ": " +
               std::strerror(so_error != 0 ? so_error : errno);
      close(fd);
      return -1;
    }
  }
  return fd;
}

namespace {

/// Process-wide frame accounting (client and server sides both route
/// every framed exchange through these two functions, so the global
/// registry's net.* counters cover the whole process).  Handles are
/// resolved once; updates are relaxed atomics.
struct NetMetrics {
  telemetry::Counter& frames_sent =
      telemetry::Registry::global().counter("net.frames_sent");
  telemetry::Counter& frames_received =
      telemetry::Registry::global().counter("net.frames_received");
  telemetry::Counter& bytes_sent =
      telemetry::Registry::global().counter("net.bytes_sent");
  telemetry::Counter& bytes_received =
      telemetry::Registry::global().counter("net.bytes_received");
};

[[maybe_unused]] NetMetrics& net_metrics() {  // unused with CPSINW_TELEMETRY_OFF
  static NetMetrics* m = new NetMetrics();  // leaked like the registry
  return *m;
}

}  // namespace

bool send_frame(int fd, const std::string& payload, Deadline deadline,
                std::string* error) {
  std::string frame = std::string(kFrameMagic) + " " +
                      std::to_string(payload.size()) + "\n";
  frame += payload;
  if (!write_all(fd, frame.data(), frame.size(), deadline, error))
    return false;
  CPSINW_TELEM(net_metrics().frames_sent.add());
  CPSINW_TELEM(net_metrics().bytes_sent.add(frame.size()));
  return true;
}

bool recv_frame(int fd, std::string* payload, Deadline deadline,
                std::size_t max_bytes, std::string* error) {
  error->clear();
  payload->clear();

  // Header: read byte-by-byte to the newline so no payload (or following
  // frame) bytes are consumed early.  Headers are ~25 bytes; the ceiling
  // only bounds a peer streaming garbage with no newline in it.
  std::string header;
  constexpr std::size_t kMaxHeader = 64;
  while (true) {
    if (!wait_ready(fd, POLLIN, deadline, error)) return false;
    char c = 0;
    const ssize_t n = recv(fd, &c, 1, 0);
    if (n == 0) {
      if (!header.empty())
        *error = "connection closed mid-header";
      return false;  // empty error on a clean between-frames EOF
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      *error = errno_text("recv");
      return false;
    }
    if (c == '\n') break;
    header += c;
    if (header.size() > kMaxHeader) {
      *error = "frame header exceeds " + std::to_string(kMaxHeader) +
               " bytes (not a cpsinw-shard-io peer?)";
      return false;
    }
  }

  const std::string magic(kFrameMagic);
  if (header.size() < magic.size() + 2 ||
      header.compare(0, magic.size(), magic) != 0 ||
      header[magic.size()] != ' ') {
    *error = "bad frame header '" + header + "'";
    return false;
  }
  const std::string len_text = header.substr(magic.size() + 1);
  if (len_text.empty() ||
      len_text.find_first_not_of("0123456789") != std::string::npos) {
    *error = "bad frame length '" + len_text + "'";
    return false;
  }
  const unsigned long long declared =
      std::strtoull(len_text.c_str(), nullptr, 10);
  if (declared > max_bytes) {
    *error = "declared frame length " + len_text + " exceeds the " +
             std::to_string(max_bytes) + "-byte limit";
    return false;
  }
  if (!read_exact(fd, payload, static_cast<std::size_t>(declared), deadline,
                  error))
    return false;
  CPSINW_TELEM(net_metrics().frames_received.add());
  CPSINW_TELEM(
      net_metrics().bytes_received.add(header.size() + 1 + payload->size()));
  return true;
}

int listen_on_loopback(std::uint16_t port, std::string* error) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = errno_text("socket");
    return -1;
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0) {
    *error = errno_text("bind");
    close(fd);
    return -1;
  }
  if (listen(fd, 64) != 0) {
    *error = errno_text("listen");
    close(fd);
    return -1;
  }
  return fd;
}

std::uint16_t local_port(int listen_fd) {
  struct sockaddr_in addr = {};
  socklen_t len = sizeof addr;
  if (getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
                  &len) != 0)
    return 0;
  return ntohs(addr.sin_port);
}

int accept_connection(int listen_fd, std::string* error) {
  while (true) {
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      set_nonblock_cloexec(fd);
      return fd;
    }
    // ECONNABORTED: the queued client RSTed before we got here — its
    // problem, not the listener's; keep accepting.
    if (errno != EINTR && errno != ECONNABORTED) {
      *error = errno_text("accept");
      return -1;
    }
  }
}

// -------------------------------------------------------- LocalServerProcess

LocalServerProcess::LocalServerProcess(std::string server_path,
                                       std::vector<std::string> extra_args) {
  int out_pipe[2];
  if (pipe2(out_pipe, O_CLOEXEC) != 0) {
    error_ = errno_text("pipe2");
    return;
  }

  std::vector<std::string> argv_store;
  argv_store.push_back(std::move(server_path));
  argv_store.push_back("--port");
  argv_store.push_back("0");
  for (std::string& a : extra_args) argv_store.push_back(std::move(a));
  std::vector<char*> argv;
  for (std::string& a : argv_store) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) {
    error_ = errno_text("fork");
    close(out_pipe[0]);
    close(out_pipe[1]);
    return;
  }
  if (pid == 0) {
    dup2(out_pipe[1], STDOUT_FILENO);
    close(out_pipe[0]);
    close(out_pipe[1]);
    execv(argv[0], argv.data());
    _exit(127);
  }
  close(out_pipe[1]);
  pid_ = pid;

  // The server advertises "cpsinw_shard_server listening on <port>" as its
  // only stdout line; everything after the port parse goes to stderr, so
  // closing the read end below cannot SIGPIPE it.
  std::string banner;
  const Deadline deadline = deadline_after(10.0);
  bool saw_line = false;
  while (!saw_line) {
    std::string wait_error;
    if (!wait_ready(out_pipe[0], POLLIN, deadline, &wait_error)) {
      error_ = "waiting for server banner: " + wait_error;
      break;
    }
    char buf[256];
    const ssize_t n = read(out_pipe[0], buf, sizeof buf);
    if (n <= 0) {
      error_ = "server exited before advertising a port";
      break;
    }
    banner.append(buf, static_cast<std::size_t>(n));
    saw_line = banner.find('\n') != std::string::npos;
  }
  close(out_pipe[0]);
  if (!saw_line) {
    terminate();
    return;
  }

  const std::string needle = "listening on ";
  const std::size_t at = banner.find(needle);
  if (at == std::string::npos) {
    error_ = "unrecognized server banner: " + banner;
    terminate();
    return;
  }
  const long port = std::strtol(banner.c_str() + at + needle.size(),
                                nullptr, 10);
  if (port < 1 || port > 65535) {
    error_ = "server advertised a bad port: " + banner;
    terminate();
    return;
  }
  port_ = static_cast<std::uint16_t>(port);
}

LocalServerProcess::~LocalServerProcess() { terminate(); }

std::string LocalServerProcess::endpoint() const {
  return "127.0.0.1:" + std::to_string(port_);
}

void LocalServerProcess::terminate() {
  if (pid_ > 0) {
    kill(pid_, SIGKILL);
    waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }
  port_ = 0;
}

}  // namespace cpsinw::engine::net
