// Named data series: the exchange format between experiment drivers and the
// benchmark binaries that print figure data (and optionally CSV files).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace cpsinw::util {

/// One curve: an x-axis and one or more named y-columns sharing that axis.
/// Mirrors how each subplot of the paper's figures is organized.
class DataSeries {
 public:
  /// @param name series title (e.g. "Fig5a INV t1")
  /// @param x_label axis label (e.g. "Vcut [V]")
  DataSeries(std::string name, std::string x_label);

  /// Adds an empty y-column; returns its index.
  int add_column(std::string label);

  /// Appends one sample: x plus one value per registered column.
  /// @throws std::invalid_argument if ys arity mismatches columns.
  void add_sample(double x, const std::vector<double>& ys);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<double>& x() const { return x_; }
  [[nodiscard]] const std::vector<double>& column(int idx) const;
  [[nodiscard]] const std::string& column_label(int idx) const;
  [[nodiscard]] int column_count() const { return static_cast<int>(cols_.size()); }
  [[nodiscard]] std::size_t size() const { return x_.size(); }

  /// Writes the series as CSV (header row + samples).
  void write_csv(std::ostream& os) const;

  /// Pretty-prints as an aligned table for terminal output.
  void print(std::ostream& os, int precision = 4) const;

 private:
  std::string name_;
  std::string x_label_;
  std::vector<std::string> labels_;
  std::vector<double> x_;
  std::vector<std::vector<double>> cols_;
};

}  // namespace cpsinw::util
