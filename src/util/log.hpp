// Minimal leveled, structured logging.  The library itself logs only
// through this interface so applications can silence or redirect
// diagnostics.
//
// Two shapes: free-form `log(level, message)` for one-off lines, and
// structured `log_kv(level, event, {fields...})` which renders
// `event key=value ...` — the form every long-running tool (shard
// server/worker) uses so lines stay grep- and machine-friendly.  Either
// way a line is assembled in full and handed to the OS in a single
// write, so concurrent threads never interleave mid-line.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>

namespace cpsinw::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that is emitted (default: kWarn, so the
/// library is quiet unless something is wrong).
void set_log_level(LogLevel level);

/// Returns the current global minimum level.
[[nodiscard]] LogLevel log_level();

/// Parses a --log-level flag value ("debug", "info", "warn", "error").
/// Returns false (and leaves `out` untouched) on anything else.
[[nodiscard]] bool parse_log_level(const std::string& text, LogLevel* out);

/// Emits a message to stderr when `level` >= the global minimum.
void log(LogLevel level, const std::string& message);

/// Convenience wrappers.
void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

/// One key=value pair of a structured log line.  Values are formatted at
/// the call site by the constructors; anything containing spaces,
/// quotes, or '=' is double-quoted (with '\\' escapes) on output so
/// lines stay unambiguous to split.
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)) {}
  LogField(std::string k, const char* v) : key(std::move(k)), value(v) {}
  LogField(std::string k, bool v)
      : key(std::move(k)), value(v ? "true" : "false") {}
  LogField(std::string k, int v)
      : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, long v)
      : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, long long v)
      : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, unsigned v)
      : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, unsigned long v)
      : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, unsigned long long v)
      : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, double v);
};

/// Emits `[cpsinw:LEVEL] event key=value ...` as one atomic stderr write
/// when `level` >= the global minimum.
void log_kv(LogLevel level, const std::string& event,
            std::initializer_list<LogField> fields);

}  // namespace cpsinw::util
