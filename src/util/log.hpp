// Minimal leveled logging.  The library itself logs only through this
// interface so applications can silence or redirect diagnostics.
#pragma once

#include <string>

namespace cpsinw::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that is emitted (default: kWarn, so the
/// library is quiet unless something is wrong).
void set_log_level(LogLevel level);

/// Returns the current global minimum level.
[[nodiscard]] LogLevel log_level();

/// Emits a message to stderr when `level` >= the global minimum.
void log(LogLevel level, const std::string& message);

/// Convenience wrappers.
void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace cpsinw::util
