// Physical constants and unit helpers shared across the library.
#pragma once

namespace cpsinw::util {

/// Boltzmann constant times temperature over elementary charge at 300 K [V].
inline constexpr double kThermalVoltage300K = 0.025852;

/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;

/// Convenience scale factors.
inline constexpr double kNano = 1e-9;
inline constexpr double kPico = 1e-12;
inline constexpr double kFemto = 1e-15;
inline constexpr double kAtto = 1e-18;
inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;
inline constexpr double kKilo = 1e3;

/// Converts seconds to picoseconds.
[[nodiscard]] constexpr double to_ps(double seconds) { return seconds / kPico; }

/// Converts amps to nanoamps.
[[nodiscard]] constexpr double to_na(double amps) { return amps / kNano; }

}  // namespace cpsinw::util
