#include "util/series.hpp"

#include <iomanip>
#include <stdexcept>

namespace cpsinw::util {

DataSeries::DataSeries(std::string name, std::string x_label)
    : name_(std::move(name)), x_label_(std::move(x_label)) {}

int DataSeries::add_column(std::string label) {
  labels_.push_back(std::move(label));
  cols_.emplace_back();
  return static_cast<int>(cols_.size()) - 1;
}

void DataSeries::add_sample(double x, const std::vector<double>& ys) {
  if (ys.size() != cols_.size())
    throw std::invalid_argument("DataSeries: sample arity mismatch");
  x_.push_back(x);
  for (std::size_t i = 0; i < ys.size(); ++i) cols_[i].push_back(ys[i]);
}

const std::vector<double>& DataSeries::column(int idx) const {
  return cols_.at(static_cast<std::size_t>(idx));
}

const std::string& DataSeries::column_label(int idx) const {
  return labels_.at(static_cast<std::size_t>(idx));
}

void DataSeries::write_csv(std::ostream& os) const {
  os << x_label_;
  for (const auto& label : labels_) os << ',' << label;
  os << '\n';
  for (std::size_t i = 0; i < x_.size(); ++i) {
    os << x_[i];
    for (const auto& col : cols_) os << ',' << col[i];
    os << '\n';
  }
}

void DataSeries::print(std::ostream& os, int precision) const {
  os << "# " << name_ << '\n';
  os << std::setw(14) << x_label_;
  for (const auto& label : labels_) os << std::setw(16) << label;
  os << '\n';
  os << std::setprecision(precision);
  for (std::size_t i = 0; i < x_.size(); ++i) {
    os << std::setw(14) << x_[i];
    for (const auto& col : cols_) os << std::setw(16) << col[i];
    os << '\n';
  }
}

}  // namespace cpsinw::util
