#include "util/numeric.hpp"

#include <algorithm>
#include <cmath>

namespace cpsinw::util {

double sigmoid(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

double softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

double clamp_checked(double x, double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("clamp_checked: lo > hi");
  return std::clamp(x, lo, hi);
}

bool approx_equal(double a, double b, double rtol, double atol) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

PiecewiseLinear::PiecewiseLinear(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  if (x_.empty() || x_.size() != y_.size())
    throw std::invalid_argument("PiecewiseLinear: empty or mismatched inputs");
  for (std::size_t i = 1; i < x_.size(); ++i)
    if (!(x_[i] > x_[i - 1]))
      throw std::invalid_argument("PiecewiseLinear: x not strictly increasing");
}

double PiecewiseLinear::operator()(double x) const {
  if (x <= x_.front()) return y_.front();
  if (x >= x_.back()) return y_.back();
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - x_.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - x_[lo]) / (x_[hi] - x_[lo]);
  return lerp(y_[lo], y_[hi], t);
}

std::vector<double> linspace(double lo, double hi, int n) {
  if (n < 2) throw std::invalid_argument("linspace: n must be >= 2");
  std::vector<double> out(static_cast<std::size_t>(n));
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = lo + step * i;
  out.back() = hi;
  return out;
}

std::vector<double> logspace(double lo, double hi, int n) {
  if (lo <= 0.0 || hi <= 0.0)
    throw std::invalid_argument("logspace: bounds must be positive");
  auto lin = linspace(std::log10(lo), std::log10(hi), n);
  for (double& v : lin) v = std::pow(10.0, v);
  return lin;
}

double find_crossing(const std::vector<double>& x, const std::vector<double>& y,
                     double level) {
  if (x.size() != y.size() || x.size() < 2)
    throw std::invalid_argument("find_crossing: bad series");
  for (std::size_t i = 1; i < x.size(); ++i) {
    const double a = y[i - 1] - level;
    const double b = y[i] - level;
    if (a == 0.0) return x[i - 1];
    if ((a < 0.0 && b >= 0.0) || (a > 0.0 && b <= 0.0)) {
      const double t = a / (a - b);
      return lerp(x[i - 1], x[i], t);
    }
  }
  return std::nan("");
}

}  // namespace cpsinw::util
