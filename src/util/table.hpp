// ASCII table printer used by the benchmark binaries to render paper tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace cpsinw::util {

/// Column-aligned ASCII table.  Cells are strings; numeric helpers format
/// with engineering-friendly precision.  Example output:
///
///   +----------+---------+---------+
///   | fault    | vector  | detect  |
///   +----------+---------+---------+
///   | t1 SA-N  | 00      | IDDQ    |
///   +----------+---------+---------+
class AsciiTable {
 public:
  /// Creates a table with the given column headers.
  explicit AsciiTable(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  /// @throws std::invalid_argument on arity mismatch.
  void add_row(std::vector<std::string> cells);

  /// Convenience: starts a new row builder.
  class RowBuilder {
   public:
    explicit RowBuilder(AsciiTable& table) : table_(table) {}
    RowBuilder& cell(std::string text);
    RowBuilder& num(double value, int precision = 4);
    RowBuilder& sci(double value, int precision = 3);
    RowBuilder& boolean(bool value);
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    AsciiTable& table_;
    std::vector<std::string> cells_;
  };

  /// Starts building a row fluently; the row is committed on destruction.
  [[nodiscard]] RowBuilder row() { return RowBuilder(*this); }

  /// Renders the table to a stream.
  void print(std::ostream& os) const;

  /// Renders the table into a string.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double in fixed notation with the given precision.
[[nodiscard]] std::string format_fixed(double value, int precision = 4);

/// Formats a double in scientific notation with the given precision.
[[nodiscard]] std::string format_sci(double value, int precision = 3);

/// Formats a bool as "yes"/"no" (the paper's Table III vocabulary).
[[nodiscard]] std::string format_yes_no(bool value);

}  // namespace cpsinw::util
