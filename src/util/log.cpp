#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace cpsinw::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

/// Hands a fully assembled line to stderr in one call.  stderr is
/// unbuffered, so the single fwrite maps to a single write(2) and
/// concurrent loggers never interleave inside a line.
void write_line(std::string line) {
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

bool needs_quoting(const std::string& v) {
  if (v.empty()) return true;
  for (const char c : v)
    if (c == ' ' || c == '"' || c == '=' || c == '\t' || c == '\n' ||
        c == '\\')
      return true;
  return false;
}

void append_value(std::string& line, const std::string& v) {
  if (!needs_quoting(v)) {
    line += v;
    return;
  }
  line += '"';
  for (const char c : v) {
    switch (c) {
      case '"': line += "\\\""; break;
      case '\\': line += "\\\\"; break;
      case '\n': line += "\\n"; break;
      case '\t': line += "\\t"; break;
      default: line += c;
    }
  }
  line += '"';
}
}  // namespace

LogField::LogField(std::string k, double v) : key(std::move(k)) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  value = buf;
}

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

bool parse_log_level(const std::string& text, LogLevel* out) {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::string line = "[cpsinw:";
  line += level_name(level);
  line += "] ";
  line += message;
  write_line(std::move(line));
}

void log_debug(const std::string& message) { log(LogLevel::kDebug, message); }
void log_info(const std::string& message) { log(LogLevel::kInfo, message); }
void log_warn(const std::string& message) { log(LogLevel::kWarn, message); }
void log_error(const std::string& message) { log(LogLevel::kError, message); }

void log_kv(LogLevel level, const std::string& event,
            std::initializer_list<LogField> fields) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::string line = "[cpsinw:";
  line += level_name(level);
  line += "] ";
  line += event;
  for (const LogField& f : fields) {
    line += ' ';
    line += f.key;
    line += '=';
    append_value(line, f.value);
  }
  write_line(std::move(line));
}

}  // namespace cpsinw::util
