// Smooth numeric primitives used by the analytical device model and the
// circuit simulator.  All functions are branch-free and C1-continuous where
// documented so that Newton iterations converge reliably.
#pragma once

#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

namespace cpsinw::util {

/// Logistic sigmoid 1/(1+exp(-x)), numerically stable for large |x|.
[[nodiscard]] double sigmoid(double x);

/// Softplus ln(1+exp(x)), numerically stable; ~x for large x, ~exp(x) for
/// very negative x.  Used for EKV-style charge linearization.
[[nodiscard]] double softplus(double x);

/// Smooth saturation: tanh(x), exposed for clarity at call sites.
[[nodiscard]] inline double smooth_sat(double x) { return std::tanh(x); }

/// Linear interpolation between a and b with parameter t in [0,1].
[[nodiscard]] constexpr double lerp(double a, double b, double t) {
  return a + (b - a) * t;
}

/// Clamps x into [lo, hi]; throws std::invalid_argument if lo > hi.
[[nodiscard]] double clamp_checked(double x, double lo, double hi);

/// True when |a-b| <= atol + rtol*max(|a|,|b|).
[[nodiscard]] bool approx_equal(double a, double b, double rtol = 1e-9,
                                double atol = 1e-12);

/// Piecewise-linear interpolation over sorted sample points.
/// Outside the sample range the boundary value is extrapolated flat.
class PiecewiseLinear {
 public:
  /// @param x strictly increasing abscissae (size >= 1)
  /// @param y ordinates, same size as x
  /// @throws std::invalid_argument on size mismatch / empty / unsorted x
  PiecewiseLinear(std::vector<double> x, std::vector<double> y);

  /// Evaluates the interpolant at position x.
  [[nodiscard]] double operator()(double x) const;

  [[nodiscard]] std::span<const double> x() const { return x_; }
  [[nodiscard]] std::span<const double> y() const { return y_; }

 private:
  std::vector<double> x_;
  std::vector<double> y_;
};

/// Uniformly spaced grid of n points covering [lo, hi] inclusive (n >= 2).
[[nodiscard]] std::vector<double> linspace(double lo, double hi, int n);

/// Logarithmically spaced grid of n points covering [lo, hi], lo, hi > 0.
[[nodiscard]] std::vector<double> logspace(double lo, double hi, int n);

/// Finds the first x in [lo,hi] where f crosses `level` (rising or falling),
/// refined by bisection on a uniform scan of `steps` intervals.
/// Returns NaN when no crossing exists.
[[nodiscard]] double find_crossing(const std::vector<double>& x,
                                   const std::vector<double>& y, double level);

}  // namespace cpsinw::util
