// Deterministic, seedable random number generation for reproducible
// experiments (defect sampling, workload generation, property sweeps).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace cpsinw::util {

/// SplitMix64: tiny, fast, high-quality 64-bit generator.  Used everywhere a
/// reproducible stream is needed; never use std::rand in this code base.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  constexpr std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Rejection-free modulo is fine here: n is tiny vs 2^64 in our usage.
    return next_u64() % n;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

  /// Derives an independent child stream for parallel work unit `stream`
  /// (shard index, job index, ...).  Forking does not advance the parent,
  /// so sibling forks of the same parent are reproducible in any order;
  /// the double avalanche keeps adjacent stream indices statistically
  /// uncorrelated even though SplitMix64 state increments are tiny.
  [[nodiscard]] constexpr SplitMix64 fork(std::uint64_t stream) const {
    std::uint64_t z = state_ + 0x9e3779b97f4a7c15ULL * (stream + 1);
    z = (z ^ (z >> 33)) * 0xff51afd7ed558ccdULL;
    z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53ULL;
    return SplitMix64(z ^ (z >> 33));
  }

  /// Raw generator state (for serializing a stream across a process
  /// boundary; `SplitMix64(state())` reconstructs an identical stream).
  [[nodiscard]] constexpr std::uint64_t state() const { return state_; }

  /// Gaussian sample via Box-Muller (one fresh pair per call).
  double normal(double mean, double sigma) {
    double u1 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + sigma * r * std::cos(6.283185307179586 * u2);
  }

 private:
  std::uint64_t state_;
};

}  // namespace cpsinw::util
