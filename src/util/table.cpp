#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace cpsinw::util {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty())
    throw std::invalid_argument("AsciiTable: headers must not be empty");
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("AsciiTable: row arity mismatch");
  rows_.push_back(std::move(cells));
}

AsciiTable::RowBuilder& AsciiTable::RowBuilder::cell(std::string text) {
  cells_.push_back(std::move(text));
  return *this;
}

AsciiTable::RowBuilder& AsciiTable::RowBuilder::num(double value,
                                                    int precision) {
  cells_.push_back(format_fixed(value, precision));
  return *this;
}

AsciiTable::RowBuilder& AsciiTable::RowBuilder::sci(double value,
                                                    int precision) {
  cells_.push_back(format_sci(value, precision));
  return *this;
}

AsciiTable::RowBuilder& AsciiTable::RowBuilder::boolean(bool value) {
  cells_.push_back(format_yes_no(value));
  return *this;
}

AsciiTable::RowBuilder::~RowBuilder() {
  if (!cells_.empty()) table_.add_row(std::move(cells_));
}

namespace {

std::vector<std::size_t> column_widths(
    const std::vector<std::string>& headers,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  return widths;
}

void print_rule(std::ostream& os, const std::vector<std::size_t>& widths) {
  os << '+';
  for (const std::size_t w : widths) {
    for (std::size_t i = 0; i < w + 2; ++i) os << '-';
    os << '+';
  }
  os << '\n';
}

void print_cells(std::ostream& os, const std::vector<std::string>& cells,
                 const std::vector<std::size_t>& widths) {
  os << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    const std::string& text = c < cells.size() ? cells[c] : std::string{};
    os << ' ' << text;
    for (std::size_t i = text.size(); i < widths[c] + 1; ++i) os << ' ';
    os << '|';
  }
  os << '\n';
}

}  // namespace

void AsciiTable::print(std::ostream& os) const {
  const auto widths = column_widths(headers_, rows_);
  print_rule(os, widths);
  print_cells(os, headers_, widths);
  print_rule(os, widths);
  for (const auto& row : rows_) print_cells(os, row, widths);
  print_rule(os, widths);
}

std::string AsciiTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string format_fixed(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

std::string format_sci(double value, int precision) {
  std::ostringstream oss;
  oss << std::scientific << std::setprecision(precision) << value;
  return oss.str();
}

std::string format_yes_no(bool value) { return value ? "Yes" : "No"; }

}  // namespace cpsinw::util
