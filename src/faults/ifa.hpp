// Inductive fault analysis (paper Secs. II, IV, Table I): walk the
// TIG-SiNWFET fabrication process, sample the defects each step can
// introduce into a concrete circuit, map every defect to a circuit-level
// fault, and classify which fault model covers it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "faults/fault.hpp"

namespace cpsinw::faults {

/// Fabrication steps of the top-down TIG-SiNWFET process (paper Table I).
enum class ProcessStep {
  kNanowirePatterning,  ///< HSQ-based nanowire patterning
  kBoschEtch,           ///< Bosch-process nanowire formation
  kOxidation,           ///< self-limiting gate-dielectric formation
  kPolyDeposition,      ///< polysilicon polarity/control gates
  kMetallization,       ///< interconnect metal layer(s)
};

/// All steps in fabrication order.
[[nodiscard]] const std::vector<ProcessStep>& all_process_steps();

/// Process outcome description (Table I "Outcome" column).
[[nodiscard]] const char* outcome_of(ProcessStep step);

/// Readable step name.
[[nodiscard]] const char* to_string(ProcessStep step);

/// Physical defect mechanisms (Table I "Possible defects" column).
enum class DefectMechanism {
  kNanowireBreak,
  kGateOxideShort,
  kGateBridge,          ///< bridge between two or more gate terminals
  kInterconnectBridge,  ///< bridge among interconnects
  kFloatingGate,        ///< open on a (polarity) gate contact
};

/// Readable mechanism name.
[[nodiscard]] const char* to_string(DefectMechanism mechanism);

/// Mechanisms each process step can introduce (Table I mapping).
[[nodiscard]] const std::vector<DefectMechanism>& mechanisms_of(
    ProcessStep step);

/// Which fault models cover a defect mechanism — the paper's conclusion
/// matrix (Secs. V-A..V-C): e.g. a nanowire break in an SP gate is a
/// classical stuck-open, but in a DP gate it is masked and needs the new
/// polarity-complement procedure.
struct FaultModelCoverage {
  bool stuck_open = false;
  bool stuck_on = false;
  bool delay_fault = false;
  bool iddq = false;
  bool stuck_at_polarity = false;     ///< the paper's new n/p-type models
  bool classic_bridge = false;
  bool needs_cb_procedure = false;    ///< the paper's new test algorithm
};

/// Coverage classification for a mechanism, depending on the gate family
/// it lands in.
[[nodiscard]] FaultModelCoverage coverage_for(DefectMechanism mechanism,
                                              bool dynamic_polarity);

/// One sampled manufacturing defect mapped into the circuit.
struct SampledDefect {
  ProcessStep step = ProcessStep::kNanowirePatterning;
  DefectMechanism mechanism = DefectMechanism::kNanowireBreak;
  /// The mapped logic-level fault; absent for purely parametric defects
  /// (GOS: delay/IDDQ signature without a functional fault).
  std::optional<Fault> fault;
  bool in_dynamic_polarity_gate = false;
  std::string note;
};

/// Controls of the IFA sampling pass.
struct IfaOptions {
  std::uint64_t seed = 1;
  int sample_count = 1000;
  /// Relative likelihood of each process step contributing a defect
  /// (indexed by ProcessStep order; normalized internally).
  std::vector<double> step_weights = {1.2, 1.4, 1.0, 1.1, 0.9};
};

/// IFA result: the sampled population and aggregate statistics.
struct IfaReport {
  std::vector<SampledDefect> defects;
  std::map<ProcessStep, int> per_step;
  std::map<DefectMechanism, int> per_mechanism;
  int parametric_only = 0;      ///< defects without a functional fault
  int masked_without_cb = 0;    ///< DP channel breaks (need new procedure)
};

/// Runs inductive fault analysis on a circuit.
/// @throws std::invalid_argument on bad options
[[nodiscard]] IfaReport run_ifa(const logic::Circuit& ckt,
                                const IfaOptions& options = {});

}  // namespace cpsinw::faults
