// Cause-effect fault diagnosis: given the tester's observed responses
// (output values and IDDQ flags per applied pattern), rank the candidate
// faults whose simulated behaviour explains the observations.
//
// This is the flip side of the paper's test algorithms: the same
// dictionaries that generate tests predict responses, and the channel-break
// decision rule ("clean response under the polarity-complement stimulus
// means the channel is broken") is a two-candidate special case of the
// general matcher.
#pragma once

#include <span>
#include <vector>

#include "faults/fault_list.hpp"
#include "faults/fault_sim.hpp"

namespace cpsinw::faults {

/// One tester observation: the applied pattern and what was measured.
struct Observation {
  logic::Pattern pattern;
  std::vector<logic::LogicV> outputs;  ///< observed PO values
  bool iddq_elevated = false;          ///< supply-current strobe
};

/// A ranked diagnosis candidate.
struct DiagnosisCandidate {
  Fault fault;
  int matches = 0;       ///< observations fully explained
  int mismatches = 0;    ///< observations contradicting the fault
  double score = 0.0;    ///< matches / total (ties broken by enumeration)

  [[nodiscard]] bool explains_all() const { return mismatches == 0; }
};

/// Builds the observation a fault would produce for a pattern (simulated
/// tester): useful for tests and for generating diagnosis fixtures.
/// Patterns are treated independently (no sequence retention), matching a
/// combinational tester flow.
[[nodiscard]] Observation predict_observation(const logic::Circuit& ckt,
                                              const Fault& fault,
                                              const logic::Pattern& pattern);

/// The fault-free prediction for a pattern.
[[nodiscard]] Observation predict_good_observation(
    const logic::Circuit& ckt, const logic::Pattern& pattern);

/// Ranks every candidate whose simulated responses are consistent with the
/// observations; candidates are ordered by descending score.
/// An X in a simulated output is compatible with any observed value.
[[nodiscard]] std::vector<DiagnosisCandidate> diagnose(
    const logic::Circuit& ckt, std::span<const Observation> observations,
    const std::vector<Fault>& candidates);

}  // namespace cpsinw::faults
