// Fault simulation: 64-pattern-parallel for line stuck-at faults and for
// transistor faults whose dictionaries are purely binary (no floating or
// marginal rows), serial dictionary-based for the rest (with
// floating-output retention across pattern sequences, which is what
// two-pattern stuck-open tests rely on), and IDDQ observation for the
// paper's polarity faults.
//
// All fault-independent work (pattern packing, the good machine, the
// switch-level dictionaries) lives in a faults::EvalContext built once per
// (circuit, pattern set) and shared across the whole fault universe — and,
// in the campaign engine, across every shard of a job.  The context-free
// run/run_range signatures are thin wrappers that build a local context,
// so their behaviour is bit-identical to the historical serial path.
#pragma once

#include <array>
#include <vector>

#include "faults/eval_context.hpp"
#include "faults/fault.hpp"
#include "faults/fault_list.hpp"
#include "logic/logic_sim.hpp"

namespace cpsinw::faults {

/// How a fault was (or was not) detected by a pattern set.
struct DetectionRecord {
  bool detected_output = false;  ///< definite wrong value at some PO
  bool detected_iddq = false;    ///< IDDQ anomaly excited (contention)
  bool potential = false;        ///< X reached a PO where good is defined
  /// Index of the first *counted* detection under the run's observation
  /// options: the first pattern whose hit contributes to detected() with
  /// the run's `observe_iddq` — an IDDQ-only excitation advances it only
  /// when IDDQ observation is on.  -1 when nothing counted.
  int first_pattern = -1;

  [[nodiscard]] bool detected(bool count_iddq) const {
    return detected_output || (count_iddq && detected_iddq);
  }
};

/// What a DetectionRecord promises about patterns after the first counted
/// detection.
enum class DetectionMode {
  /// Flags aggregate over the whole pattern set: detected_output,
  /// detected_iddq and potential reflect every pattern (the historical
  /// semantics; byte-identical reports regardless of work reduction).
  kFull,
  /// Simulation of a fault may stop at its first counted detection:
  /// flags reflect only patterns up to and including that one (exactly
  /// as if the pattern list were truncated there).  Deterministic —
  /// independent of batching, threading and strip schedule — but a
  /// different contract, so campaigns opt in explicitly.
  kFirstOnly,
};

/// Default for the process-local work-reduction switches: on unless the
/// environment sets CPSINW_WORK_REDUCTION=off (the CI equivalence leg).
[[nodiscard]] bool work_reduction_default();

/// Controls for a fault-simulation run.
struct FaultSimOptions {
  /// Count IDDQ anomalies as detections (the paper's polarity faults in
  /// pull-up networks are *only* detectable this way).
  bool observe_iddq = true;
  /// Thread net state across consecutive patterns so floating outputs
  /// retain charge (enables two-pattern stuck-open detection).
  bool sequential_patterns = true;
  /// Evaluate transistor faults with purely binary dictionaries (no
  /// floating/marginal rows) 64 patterns at a time via their faulty-logic
  /// tables.  Bit-identical to the serial path — the switch exists so the
  /// golden-equivalence tests can compare both.
  bool batch_transistor_faults = true;
  /// Evaluate line faults in groups of CompiledCircuit::kBatchLanes
  /// through the multi-fault batch kernel (one forward walk shared by the
  /// whole group) instead of one packed pass per fault per batch.
  /// Bit-identical to the single-fault path — the switch exists for the
  /// equivalence tests and the bench's before/after legs.  Process-local:
  /// deliberately not serialized on the shard_io wire (both settings
  /// produce identical records, so remote workers may pick either).
  bool batch_line_faults = true;
  /// Fault dropping: stop simulating a fault once nothing more can be
  /// learned about it.  Line faults leave the active universe at their
  /// first detecting word (the batched walk refills freed lanes from
  /// pending faults strip by strip); transistor faults stop once every
  /// observable of their dictionary (PO flip, IDDQ excitation) has fired
  /// or is impossible.  In kFull detection mode the records are
  /// bit-identical with dropping on or off, so this stays process-local
  /// (not serialized on the shard_io wire), like batch_line_faults.
  bool drop_detected = work_reduction_default();
  /// Critical-path-tracing fast path: for contexts whose circuit is a
  /// single-output fan-out-free cone (EvalContext::cpt_available()), line
  /// stuck-at detection is deduced from the good-machine planes alone —
  /// no faulty pass at all.  Exact there (no reconvergence can mask), so
  /// records stay bit-identical; process-local like the switches above.
  bool critical_path_tracing = work_reduction_default();
  /// Contract for per-fault flags after the first counted detection (see
  /// DetectionMode).  kFirstOnly is serialized on the shard_io wire — it
  /// changes records, so every worker must agree.
  DetectionMode detection_mode = DetectionMode::kFull;
};

/// Occupancy accounting for the batched line-fault kernel, filled by
/// run_range when a caller passes a sink (the engine shard loop feeds
/// these into the `engine.faults_batched` / `engine.batch_width` counters
/// and the `shard.batch_fill` histogram).
struct LineBatchStats {
  std::size_t faults = 0;      ///< line faults handled (counted once each)
  std::size_t groups = 0;      ///< kernel invocations (strips re-group, so a
                               ///< fault can ride several invocations)
  /// Lanes that actually carried a fault, summed over invocations — NOT
  /// groups x kBatchLanes: a partially filled group contributes only its
  /// occupied lanes, so occupancy = lane_slots / (groups * kBatchLanes).
  std::size_t lane_slots = 0;
  std::size_t words = 0;       ///< pattern words evaluated (post early-exit)
  /// Line faults resolved by critical-path tracing alone (no kernel pass).
  std::size_t cpt_faults = 0;
  /// fill[k]: kernel invocations that carried k+1 faults.
  std::array<std::size_t, logic::CompiledCircuit::kBatchLanes> fill{};

  void merge(const LineBatchStats& o) {
    faults += o.faults;
    groups += o.groups;
    lane_slots += o.lane_slots;
    words += o.words;
    cpt_faults += o.cpt_faults;
    for (std::size_t k = 0; k < fill.size(); ++k) fill[k] += o.fill[k];
  }
};

/// Aggregate result over a fault list.
struct FaultSimReport {
  std::vector<DetectionRecord> records;  ///< parallel to the fault list
  FaultSimOptions options;

  [[nodiscard]] int detected_count() const;
  [[nodiscard]] double coverage() const;  ///< detected / total
};

/// Validates a line stuck-at fault against the circuit and converts it to
/// the compiled-kernel descriptor.  The compiled kernels index with the
/// fault's fields unchecked (asserts in debug), so every path into them
/// funnels through this check — including faults parsed from untrusted
/// shard_io documents.
/// @throws std::invalid_argument on a transistor fault or out-of-range
///   net/gate/pin fields
[[nodiscard]] logic::CompiledCircuit::LineFault checked_line_fault(
    const logic::Circuit& ckt, const Fault& fault);

/// Fault simulator bound to one circuit.
class FaultSimulator {
 public:
  /// @param ckt finalized circuit; must outlive the simulator
  explicit FaultSimulator(const logic::Circuit& ckt);

  /// Simulates all faults against all patterns (builds a local context).
  [[nodiscard]] FaultSimReport run(const std::vector<Fault>& faults,
                                   const std::vector<logic::Pattern>& patterns,
                                   const FaultSimOptions& options = {}) const;

  /// Context-based variant: the good machine, packed words and
  /// dictionaries come from `ctx` (built once, shared by every caller).
  [[nodiscard]] FaultSimReport run(const EvalContext& ctx,
                                   const std::vector<Fault>& faults,
                                   const FaultSimOptions& options = {}) const;

  /// Engine hook: simulates the contiguous sub-range [begin, end) of a
  /// fault list, returning records parallel to that range.  Each fault is
  /// self-contained (line faults via packed batches, transistor faults via
  /// their own retained-state sequence), so concatenating the records of a
  /// partition of [0, size) is bit-identical to one `run` over the whole
  /// list — this is what makes campaign sharding deterministic.
  [[nodiscard]] std::vector<DetectionRecord> run_range(
      const std::vector<Fault>& faults, std::size_t begin, std::size_t end,
      const std::vector<logic::Pattern>& patterns,
      const FaultSimOptions& options = {}) const;

  /// Context-based range hook: what campaign shards actually execute.  All
  /// shards of a job share one EvalContext instead of re-packing patterns
  /// and re-simulating the good machine per shard.  When `stats` is
  /// non-null and the batched line path runs, its occupancy accounting is
  /// merged in.
  [[nodiscard]] std::vector<DetectionRecord> run_range(
      const EvalContext& ctx, const std::vector<Fault>& faults,
      std::size_t begin, std::size_t end, const FaultSimOptions& options = {},
      LineBatchStats* stats = nullptr) const;

  /// Single line-fault / single-pattern check (used by ATPG verification).
  [[nodiscard]] bool line_fault_detected(const Fault& fault,
                                         const logic::Pattern& pattern) const;

  /// Context-based variant for ATPG verification loops: checks the fault
  /// against pattern `pattern_index` of the context without re-packing or
  /// re-simulating the good machine per call.
  [[nodiscard]] bool line_fault_detected(const EvalContext& ctx,
                                         const Fault& fault,
                                         std::size_t pattern_index) const;

  /// Serial simulation of one transistor fault over a pattern sequence.
  [[nodiscard]] DetectionRecord simulate_transistor_fault(
      const Fault& fault, const std::vector<logic::Pattern>& patterns,
      const FaultSimOptions& options = {}) const;

  /// Context-based variant: shares the precomputed good machine; takes the
  /// packed 64-pattern path when the fault's dictionary allows it.
  [[nodiscard]] DetectionRecord simulate_transistor_fault(
      const EvalContext& ctx, const Fault& fault,
      const FaultSimOptions& options = {}) const;

  /// Explicit two-pattern stuck-open check: `init` sets up the output,
  /// `test` exposes the retained (wrong) value.
  [[nodiscard]] bool stuck_open_detected(const Fault& fault,
                                         const logic::Pattern& init,
                                         const logic::Pattern& test) const;

  [[nodiscard]] const logic::Circuit& circuit() const { return ckt_; }

 private:
  /// Packed faulty simulation with a line forced to a constant, written
  /// into `values` — a scratch buffer the callers reuse across faults and
  /// batches (the interpreted predecessor allocated a fresh vector per
  /// fault per batch).
  void packed_line_fault(const std::vector<std::uint64_t>& pi_words,
                         const Fault& fault,
                         std::vector<std::uint64_t>& values) const;

  /// Batched line-fault path of run_range: validates and gathers the line
  /// faults of [begin, end), sorts them by injection position, and feeds
  /// kBatchLanes-sized groups through eval_packed_line_batch, deriving
  /// each fault's DetectionRecord from its detection words.  With
  /// critical-path tracing available the whole range resolves from the
  /// good planes instead; with dropping on, the word range is walked in
  /// strips and detected faults leave the groups between strips (freed
  /// lanes refill from the surviving faults).  All shapes bit-identical.
  void run_line_faults_batched(const EvalContext& ctx,
                               const std::vector<Fault>& faults,
                               std::size_t begin, std::size_t end,
                               const FaultSimOptions& options,
                               std::vector<DetectionRecord>& records,
                               LineBatchStats* stats) const;

  /// Scratch buffers for the packed transistor path, hoisted by run_range
  /// so a whole fault range shares one set of allocations (the plane
  /// kernel's epoch bookkeeping lives in `lanes` and persists across
  /// faults, so reuse also skips its per-call re-zeroing).
  struct TransistorScratch {
    std::vector<std::uint64_t> diff;
    std::vector<std::uint64_t> contention;
    std::vector<std::uint64_t> lanes;
    /// Direct-index memo over (cell kind, transistor, fault kind) for the
    /// context's dictionary lookups: DictionaryCache::lookup takes a
    /// mutex and walks a std::map, which dominated the per-fault cost of
    /// the packed path once the kernels were batched.  Entries stay valid
    /// for the cache's lifetime, so memoizing pointers is safe.
    std::vector<const gates::FaultAnalysis*> dicts;
  };

  /// Dispatching body of simulate_transistor_fault with caller-owned
  /// scratch (the public overload wraps it with a local set).
  [[nodiscard]] DetectionRecord simulate_transistor_scratch(
      const EvalContext& ctx, const Fault& fault,
      const FaultSimOptions& options, TransistorScratch& scratch) const;

  /// Serial retained-state transistor path over the context's patterns.
  [[nodiscard]] DetectionRecord simulate_transistor_serial(
      const EvalContext& ctx, const Fault& fault,
      const gates::FaultAnalysis& fa, const FaultSimOptions& options) const;

  /// Packed transistor path: valid only for dictionaries with all-binary,
  /// non-floating rows (checked by the caller).
  [[nodiscard]] DetectionRecord simulate_transistor_packed(
      const EvalContext& ctx, const Fault& fault,
      const gates::FaultAnalysis& fa, const FaultSimOptions& options,
      TransistorScratch& scratch) const;

  void check_context(const EvalContext& ctx) const;

  const logic::Circuit& ckt_;
  logic::Simulator sim_;
};

}  // namespace cpsinw::faults
