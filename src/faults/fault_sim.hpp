// Fault simulation: 64-pattern-parallel for line stuck-at faults, serial
// dictionary-based for transistor faults (with floating-output retention
// across pattern sequences, which is what two-pattern stuck-open tests
// rely on), and IDDQ observation for the paper's polarity faults.
#pragma once

#include <vector>

#include "faults/fault.hpp"
#include "faults/fault_list.hpp"
#include "logic/logic_sim.hpp"

namespace cpsinw::faults {

/// How a fault was (or was not) detected by a pattern set.
struct DetectionRecord {
  bool detected_output = false;  ///< definite wrong value at some PO
  bool detected_iddq = false;    ///< IDDQ anomaly excited (contention)
  bool potential = false;        ///< X reached a PO where good is defined
  int first_pattern = -1;        ///< index of the first detecting pattern

  [[nodiscard]] bool detected(bool count_iddq) const {
    return detected_output || (count_iddq && detected_iddq);
  }
};

/// Controls for a fault-simulation run.
struct FaultSimOptions {
  /// Count IDDQ anomalies as detections (the paper's polarity faults in
  /// pull-up networks are *only* detectable this way).
  bool observe_iddq = true;
  /// Thread net state across consecutive patterns so floating outputs
  /// retain charge (enables two-pattern stuck-open detection).
  bool sequential_patterns = true;
};

/// Aggregate result over a fault list.
struct FaultSimReport {
  std::vector<DetectionRecord> records;  ///< parallel to the fault list
  FaultSimOptions options;

  [[nodiscard]] int detected_count() const;
  [[nodiscard]] double coverage() const;  ///< detected / total
};

/// Fault simulator bound to one circuit.
class FaultSimulator {
 public:
  /// @param ckt finalized circuit; must outlive the simulator
  explicit FaultSimulator(const logic::Circuit& ckt);

  /// Simulates all faults against all patterns.
  [[nodiscard]] FaultSimReport run(const std::vector<Fault>& faults,
                                   const std::vector<logic::Pattern>& patterns,
                                   const FaultSimOptions& options = {}) const;

  /// Engine hook: simulates the contiguous sub-range [begin, end) of a
  /// fault list, returning records parallel to that range.  Each fault is
  /// self-contained (line faults via packed batches, transistor faults via
  /// their own retained-state sequence), so concatenating the records of a
  /// partition of [0, size) is bit-identical to one `run` over the whole
  /// list — this is what makes campaign sharding deterministic.
  [[nodiscard]] std::vector<DetectionRecord> run_range(
      const std::vector<Fault>& faults, std::size_t begin, std::size_t end,
      const std::vector<logic::Pattern>& patterns,
      const FaultSimOptions& options = {}) const;

  /// Single line-fault / single-pattern check (used by ATPG verification).
  [[nodiscard]] bool line_fault_detected(const Fault& fault,
                                         const logic::Pattern& pattern) const;

  /// Serial simulation of one transistor fault over a pattern sequence.
  [[nodiscard]] DetectionRecord simulate_transistor_fault(
      const Fault& fault, const std::vector<logic::Pattern>& patterns,
      const FaultSimOptions& options = {}) const;

  /// Explicit two-pattern stuck-open check: `init` sets up the output,
  /// `test` exposes the retained (wrong) value.
  [[nodiscard]] bool stuck_open_detected(const Fault& fault,
                                         const logic::Pattern& init,
                                         const logic::Pattern& test) const;

  [[nodiscard]] const logic::Circuit& circuit() const { return ckt_; }

 private:
  /// Packed faulty simulation with a line forced to a constant.
  [[nodiscard]] std::vector<std::uint64_t> simulate_packed_with_line_fault(
      const std::vector<std::uint64_t>& pi_words, const Fault& fault) const;

  const logic::Circuit& ckt_;
  logic::Simulator sim_;
};

}  // namespace cpsinw::faults
