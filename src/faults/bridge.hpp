// Inter-net bridging faults (paper Table I, metallization step: "bridge
// among interconnects"; Sec. II: bridge faults are classically diagnosed
// by IDDQ testing).
//
// Classic four-way model: wired-AND, wired-OR and the two dominant
// bridges.  Voltage detection uses the resolved wired value; IDDQ
// detection only needs the two nets driven to opposite values — the
// shorted drivers then fight and the supply current rises by orders of
// magnitude, exactly like the paper's polarity-bridge observation.
#pragma once

#include <vector>

#include "logic/logic_sim.hpp"

namespace cpsinw::faults {

/// Electrical behaviour of a bridge.
enum class BridgeBehavior {
  kWiredAnd,   ///< both nets read a AND b
  kWiredOr,    ///< both nets read a OR b
  kDominantA,  ///< net a wins: b reads a
  kDominantB,  ///< net b wins: a reads b
};

/// Readable behaviour name.
[[nodiscard]] const char* to_string(BridgeBehavior behavior);

/// A bridge between two distinct nets.
struct BridgeFault {
  logic::NetId a = -1;
  logic::NetId b = -1;
  BridgeBehavior behavior = BridgeBehavior::kWiredAnd;

  [[nodiscard]] bool operator==(const BridgeFault&) const = default;
};

/// Enumerates a layout-plausible bridge universe without layout data:
/// pairs of nets entering the same gate plus each gate's output with each
/// of its inputs (the nets guaranteed to be routed adjacently), with all
/// four behaviours per pair.
[[nodiscard]] std::vector<BridgeFault> enumerate_adjacent_bridges(
    const logic::Circuit& ckt);

/// Simulates the bridged circuit for one pattern.  Bridges that close a
/// feedback loop over the pair are evaluated to a fixpoint; oscillation
/// resolves to X.
/// @returns faulty net values
[[nodiscard]] std::vector<logic::LogicV> simulate_bridge(
    const logic::Circuit& ckt, const BridgeFault& fault,
    const logic::Pattern& pattern);

/// Voltage detection: some PO differs between good and bridged machines.
[[nodiscard]] bool bridge_detected_by_output(const logic::Circuit& ckt,
                                             const BridgeFault& fault,
                                             const logic::Pattern& pattern);

/// IDDQ excitation: the two nets are driven to opposite values.
[[nodiscard]] bool bridge_excited_for_iddq(const logic::Circuit& ckt,
                                           const BridgeFault& fault,
                                           const logic::Pattern& pattern);

}  // namespace cpsinw::faults
